package probgraph

import (
	"probgraph/internal/serve"
	"probgraph/internal/session"
	"probgraph/internal/stream"
)

// --- streaming: online graph mutation (internal/stream) --------------------

// DynamicGraph accepts batched edge insertions and deletions and
// incrementally maintains the per-vertex sketches: an edge arrival costs
// a few hash evaluations (the representations are element-wise
// insertable), a deletion re-sketches only the two touched rows, and
// Freeze publishes the state as an immutable serving Snapshot. This is
// the supported way to serve an evolving graph — rebuilding a PG from
// scratch per change (Build in a loop) re-pays the whole construction
// cost the incremental path amortizes away.
type DynamicGraph = stream.DynamicGraph

// StreamStats is the DynamicGraph's cumulative mutation accounting.
type StreamStats = stream.Stats

// StreamBatchStats reports what one applied batch changed.
type StreamBatchStats = stream.BatchStats

// Feeder publishes ingested batches into a serving Engine: apply →
// Freeze → hot-swap, the serve.Ingestor behind POST /v1/ingest.
type Feeder = stream.Feeder

// Ingestor is the contract behind the engine's /v1/ingest endpoint.
type Ingestor = serve.Ingestor

// IngestResult reports one applied batch and the epoch it produced.
type IngestResult = serve.IngestResult

// NewDynamic builds a DynamicGraph over an initial graph; the sketch
// geometry is pinned from cfg's storage budget against that graph. The
// epoch lifecycle:
//
//	d, _ := probgraph.NewDynamic(g, probgraph.SnapshotConfig{Seed: 42})
//	snap, _ := d.Freeze()                 // epoch 1
//	engine := probgraph.Serve(snap, probgraph.ServeOptions{})
//	engine.EnableIngest(probgraph.NewFeeder(d, engine))
//	// POST /v1/ingest batches now advance epochs under live queries.
func NewDynamic(g *Graph, cfg SnapshotConfig) (*DynamicGraph, error) {
	return stream.New(g, cfg)
}

// NewFeeder wires a DynamicGraph to an Engine; attach the result with
// Engine.EnableIngest.
func NewFeeder(d *DynamicGraph, e *Engine) *Feeder { return stream.NewFeeder(d, e) }

// WithDynamic attaches a refreshed-Session source — typically
// (*DynamicGraph).SessionSource — so Session.Refresh can rebind a
// long-lived analytical Session to the latest frozen epoch without
// rebuilding resident sketches.
func WithDynamic(src func() (*Session, error)) SessionOption {
	return session.WithDynamic(src)
}
