// Benchmark targets mapping one-to-one onto the paper's evaluation
// artifacts (see DESIGN.md §4). Each BenchmarkFigN/BenchmarkTableN runs
// the corresponding experiment driver in its quick configuration; the
// full-size runs are `go run ./cmd/pgbench -exp <name>`.
//
// The micro-benchmarks at the bottom expose the hot kernels the paper's
// performance model rests on (Table IV's per-representation intersection
// costs and Table V's construction costs).
package probgraph_test

import (
	"io"
	"testing"

	"probgraph"
	"probgraph/internal/bench"
	"probgraph/internal/core"
	"probgraph/internal/mining"
)

func quickOpts() bench.Opts {
	return bench.Opts{Quick: true, Runs: 1, Seed: 1, Out: io.Discard}
}

func BenchmarkFig3EstimatorAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4TCClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5FourClique(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TCBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8Strong(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8Weak(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ClusteringScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4IntersectionKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table5(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6WorkDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table6(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7TCEstimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table7(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DistExperiment(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistSimComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DistSimExperiment(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- kernel micro-benchmarks ------------------------------------------------

var benchGraph = probgraph.Kronecker(11, 16, 99)

func BenchmarkKernelExactTC(b *testing.B) {
	o := benchGraph.Orient(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.ExactTC(o, 0)
	}
}

func BenchmarkKernelPGTC_BF(b *testing.B)      { benchPGTC(b, core.BF) }
func BenchmarkKernelPGTC_KHash(b *testing.B)   { benchPGTC(b, core.KHash) }
func BenchmarkKernelPGTC_OneHash(b *testing.B) { benchPGTC(b, core.OneHash) }
func BenchmarkKernelPGTC_KMV(b *testing.B)     { benchPGTC(b, core.KMV) }

func benchPGTC(b *testing.B, kind core.Kind) {
	pg, err := core.Build(benchGraph, core.Config{Kind: kind, Budget: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.PGTC(benchGraph, pg, 0)
	}
}

func BenchmarkKernelBuild_BF(b *testing.B)      { benchBuild(b, core.BF) }
func BenchmarkKernelBuild_KHash(b *testing.B)   { benchBuild(b, core.KHash) }
func BenchmarkKernelBuild_OneHash(b *testing.B) { benchBuild(b, core.OneHash) }
func BenchmarkKernelBuild_KMV(b *testing.B)     { benchBuild(b, core.KMV) }

func benchBuild(b *testing.B, kind core.Kind) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(benchGraph, core.Config{Kind: kind, Budget: 0.25, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelIntCard_BF(b *testing.B) {
	pg, err := core.Build(benchGraph, core.Config{Kind: core.BF, Budget: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += pg.IntCard(0, 1)
	}
	_ = sink
}

func BenchmarkKernelExactIntersect(b *testing.B) {
	u, v := uint32(0), uint32(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += probgraph.Similarity(benchGraph, u, v, probgraph.CommonNeighbors)
	}
	_ = sink
}

func BenchmarkExpVertexSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.VertexSim(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpLinkPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.LinkPred(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelPGTC_HLL(b *testing.B) { benchPGTC(b, core.HLL) }

func BenchmarkKernelPG4Clique_BF(b *testing.B) {
	o := benchGraph.Orient(0)
	pg, err := core.BuildOriented(o, benchGraph.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.PG4Clique(o, pg, 0)
	}
}

func BenchmarkKernelPG4Clique_MHSampled(b *testing.B) {
	o := benchGraph.Orient(0)
	pg, err := core.BuildOriented(o, benchGraph.SizeBits(), core.Config{Kind: core.OneHash, Budget: 0.25, StoreElems: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.PG4Clique(o, pg, 0)
	}
}

func BenchmarkKernelExact4Clique(b *testing.B) {
	o := benchGraph.Orient(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.Exact4Clique(o, 0)
	}
}

func BenchmarkKernelCluster_ExactCN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mining.JarvisPatrickExact(benchGraph, mining.CommonNeighbors, 3, 0)
	}
}

func BenchmarkKernelCluster_BFCN(b *testing.B) {
	pg, err := core.Build(benchGraph, core.Config{Kind: core.BF, Budget: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.JarvisPatrickPG(benchGraph, pg, mining.CommonNeighbors, 3, 0)
	}
}
