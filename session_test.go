package probgraph_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"probgraph"
)

// TestSessionMatchesFlatAPI is the API-redesign acceptance contract:
// sess.Run produces bit-identical results to the corresponding flat
// function for TC, 4-clique, similarity, and clustering on a fixed-seed
// Kronecker graph. One worker keeps the float reductions deterministic.
func TestSessionMatchesFlatAPI(t *testing.T) {
	g := probgraph.Kronecker(9, 10, 42)
	const seed, workers = 7, 1
	cfg := probgraph.Config{Kind: probgraph.BF, Budget: 0.25, Seed: seed, Workers: workers}
	sess, err := probgraph.NewSession(g,
		probgraph.WithSeed(seed), probgraph.WithWorkers(workers), probgraph.WithBudget(0.25))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(k probgraph.Kernel) probgraph.Result {
		t.Helper()
		res, err := sess.Run(ctx, k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		return res
	}

	pg, err := probgraph.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := run(probgraph.TC{Mode: probgraph.Exact}).Value,
		float64(probgraph.ExactTriangleCount(g, workers)); got != want {
		t.Errorf("TC exact: session %v != flat %v", got, want)
	}
	if got, want := run(probgraph.TC{Mode: probgraph.Sketched}).Value,
		probgraph.TriangleCount(g, pg, workers); got != want {
		t.Errorf("TC sketched: session %v != flat %v", got, want)
	}
	if got, want := run(probgraph.KClique{K: 4, Mode: probgraph.Exact}).Value,
		float64(probgraph.ExactFourCliqueCount(g, workers)); got != want {
		t.Errorf("4-clique exact: session %v != flat %v", got, want)
	}
	o := probgraph.Orient(g, workers)
	opg, err := probgraph.BuildOriented(o, g.SizeBits(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := run(probgraph.KClique{K: 4, Mode: probgraph.Sketched}).Value,
		probgraph.FourCliqueCount(o, opg, workers); got != want {
		t.Errorf("4-clique sketched: session %v != flat %v", got, want)
	}
	for _, pair := range [][2]uint32{{3, 9}, {0, 1}, {100, 200}} {
		u, v := pair[0], pair[1]
		if got, want := run(probgraph.VertexSim{U: u, V: v, Measure: probgraph.Jaccard}).Value,
			probgraph.Similarity(g, u, v, probgraph.Jaccard); got != want {
			t.Errorf("sim(%d,%d) exact: session %v != flat %v", u, v, got, want)
		}
		if got, want := run(probgraph.VertexSim{U: u, V: v, Measure: probgraph.Jaccard, Mode: probgraph.Sketched}).Value,
			probgraph.PGSimilarity(g, pg, u, v, probgraph.Jaccard); got != want {
			t.Errorf("sim(%d,%d) sketched: session %v != flat %v", u, v, got, want)
		}
	}
	gotC := run(probgraph.JarvisPatrick{Measure: probgraph.CommonNeighbors, Tau: 2})
	wantC := probgraph.Cluster(g, probgraph.CommonNeighbors, 2, workers)
	if int(gotC.Value) != wantC.NumClusters || len(gotC.Clusters.Kept) != len(wantC.Kept) {
		t.Errorf("cluster exact: session %v/%d != flat %d/%d",
			gotC.Value, len(gotC.Clusters.Kept), wantC.NumClusters, len(wantC.Kept))
	}
	gotPC := run(probgraph.JarvisPatrick{Measure: probgraph.CommonNeighbors, Tau: 2, Mode: probgraph.Sketched})
	wantPC := probgraph.PGCluster(g, pg, probgraph.CommonNeighbors, 2, workers)
	if int(gotPC.Value) != wantPC.NumClusters || len(gotPC.Clusters.Kept) != len(wantPC.Kept) {
		t.Errorf("cluster sketched: session %v/%d != flat %d/%d",
			gotPC.Value, len(gotPC.Clusters.Kept), wantPC.NumClusters, len(wantPC.Kept))
	}
}

// TestSessionCancellation: cancelling mid-kernel on a large Kronecker
// graph returns ctx.Err() promptly (within chunk granularity), far
// before the kernel could have finished.
func TestSessionCancellation(t *testing.T) {
	g := probgraph.Kronecker(13, 24, 2)
	sess, err := probgraph.NewSession(g, probgraph.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = sess.Run(ctx, probgraph.TC{Mode: probgraph.Exact})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled kernel returned after %v", elapsed)
	}
}

// TestSessionConcurrentRuns: concurrent Runs triggering the same lazy
// builds agree exactly (run under -race in CI).
func TestSessionConcurrentRuns(t *testing.T) {
	g := probgraph.Kronecker(9, 8, 11)
	sess, err := probgraph.NewSession(g, probgraph.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	values := make([]float64, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sess.Run(context.Background(), probgraph.TC{Mode: probgraph.Sketched})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			values[i] = res.Value
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if values[i] != values[0] {
			t.Fatalf("goroutine %d saw %v, goroutine 0 saw %v", i, values[i], values[0])
		}
	}
}

// TestFlatFunctionsShareOrientation pins the re-orientation fix: the
// flat counting functions route through the graph's default Session, so
// Orient and the exact counters all observe one cached orientation.
func TestFlatFunctionsShareOrientation(t *testing.T) {
	g := probgraph.Kronecker(8, 8, 5)
	o1 := probgraph.Orient(g, 0)
	o2 := probgraph.Orient(g, 0)
	if o1 != o2 {
		t.Fatal("Orient must return the cached orientation on repeated calls")
	}
	// The counts routed through the same cache agree with each other.
	if probgraph.KCliqueCount(g, 3, 0) != probgraph.ExactTriangleCount(g, 0) {
		t.Fatal("KCliqueCount(3) must equal the triangle count")
	}
	// Degeneracy orientation is cached separately and counts identically.
	od := probgraph.OrientByDegeneracy(g, 0)
	if od == o1 {
		t.Fatal("degeneracy orientation must be distinct from the degree orientation")
	}
}

// TestSessionErrorsNotPanics: misconfiguration surfaces as errors.
func TestSessionErrorsNotPanics(t *testing.T) {
	g := probgraph.Kronecker(7, 6, 1)
	sess, err := probgraph.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Run(ctx, probgraph.VertexSim{U: 1 << 30, V: 0}); err == nil {
		t.Error("out-of-range vertex must error")
	}
	if _, err := sess.Run(ctx, probgraph.KClique{K: 1}); err == nil {
		t.Error("K < 3 must error")
	}
	if _, err := probgraph.NewSession(nil); err == nil {
		t.Error("nil graph must error")
	}
	skh, err := sess.With(probgraph.WithKind(probgraph.KHash))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := skh.Run(ctx, probgraph.KClique{K: 5, Mode: probgraph.Sketched}); err == nil {
		t.Error("sketched 5-clique on kH sketches must error, not panic")
	}
}
