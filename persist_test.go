package probgraph

import (
	"bytes"
	"context"
	"testing"
)

// TestRootArtifactRoundTrip exercises the public persistence façade:
// SaveSnapshot → DecodeArtifact / OpenSnapshotArtifact, with the
// restored snapshot serving the same answers as the original.
func TestRootArtifactRoundTrip(t *testing.T) {
	g := Kronecker(8, 8, 42)
	snap, err := OpenSnapshot(g, SnapshotConfig{Kinds: []Kind{BF, KMV}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	info, err := SaveSnapshot(&buf, snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes != int64(buf.Len()) || len(info.Sections) != 4 { // graph, oriented, pg:BF, pg:KMV
		t.Fatalf("artifact info %+v over %d bytes", info, buf.Len())
	}

	a, info2, err := DecodeArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != g.NumEdges() || len(a.Kinds) != 2 {
		t.Fatalf("decoded artifact shape: %d edges, kinds %v", a.G.NumEdges(), a.Kinds)
	}
	if info2.Bytes != info.Bytes {
		t.Fatalf("decode-side size %d != encode-side %d", info2.Bytes, info.Bytes)
	}

	warm, err := OpenSnapshotArtifact(bytes.NewReader(buf.Bytes()), SnapshotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The restored snapshot's Session answers identically to the
	// original: same sketch bits, same estimate.
	ctx := context.Background()
	want, err := snap.Session(BF)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Session(BF)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := want.Run(ctx, TC{Mode: Sketched})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := got.Run(ctx, TC{Mode: Sketched})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Value != rg.Value {
		t.Fatalf("restored TC %v != original %v", rg.Value, rw.Value)
	}
}
