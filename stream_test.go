package probgraph_test

import (
	"testing"

	"probgraph"
)

// TestStreamingPublicSurface drives the whole streaming lifecycle
// through the public API: dynamic graph, epochs, serving hot-swap,
// ingest through a Feeder, and Session rebinding with Refresh.
func TestStreamingPublicSurface(t *testing.T) {
	g := probgraph.Kronecker(8, 8, 42)
	d, err := probgraph.NewDynamic(g, probgraph.SnapshotConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	engine := probgraph.Serve(snap, probgraph.ServeOptions{Workers: 2})
	defer engine.Close()
	feeder := probgraph.NewFeeder(d, engine)
	engine.EnableIngest(feeder)

	before, err := engine.Query(probgraph.ServeQuery{Op: probgraph.OpLocalTC, U: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Ingest a clique around vertex 1: its local triangle count must rise.
	var add []probgraph.Edge
	for _, e := range [][2]uint32{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}} {
		add = append(add, probgraph.Edge{U: e[0], V: e[1]})
	}
	res, err := feeder.Ingest(add, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch <= snap.Epoch {
		t.Fatalf("ingest epoch %d did not advance past %d", res.Epoch, snap.Epoch)
	}
	after, err := engine.Query(probgraph.ServeQuery{Op: probgraph.OpLocalTC, U: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-swap query served from the old epoch's cache")
	}
	if after.Value <= before.Value {
		t.Fatalf("localtc(1) = %v after densifying, was %v", after.Value, before.Value)
	}

	// Session rebinding follows the stream.
	g0, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := probgraph.NewSession(g0,
		probgraph.WithDynamic(d.SessionSource()), probgraph.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	want := g.NumEdges() + res.Added // some clique edges may pre-exist
	if fresh.Graph().NumEdges() != want {
		t.Fatalf("refreshed session sees %d edges, want %d", fresh.Graph().NumEdges(), want)
	}
}
