// Serving: the online query engine embedded in-process — no HTTP, just
// the snapshot/batcher/cache stack over a Session — used here to score
// link-prediction candidates interactively the way a recommender
// sidecar would. Every query runs under a context deadline: a caller
// that gives up stops paying at the next chunk boundary.
package main

import (
	"context"
	"fmt"
	"time"

	"probgraph"
)

func main() {
	// A clustered power-law graph: communities give 2-hop candidates
	// real common-neighbor signal.
	g := probgraph.HolmeKim(4096, 8, 0.5, 11)
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	// One immutable snapshot: a Session holding the orientation plus
	// Bloom-filter sketches at a 25% budget, built once; every query
	// below runs against it.
	snap, err := probgraph.OpenSnapshot(g, probgraph.SnapshotConfig{
		Kinds:  []probgraph.Kind{probgraph.BF},
		Budget: 0.25,
		Seed:   42,
	})
	if err != nil {
		panic(err)
	}
	engine := probgraph.Serve(snap, probgraph.ServeOptions{})
	defer engine.Close()

	// The Session behind the snapshot answers ad-hoc kernel runs too —
	// here the exact Jaccard the served estimates are compared against.
	sess, err := snap.Session(probgraph.BF)
	if err != nil {
		panic(err)
	}
	exactJaccard := func(u, v uint32) float64 {
		res, err := sess.Run(context.Background(),
			probgraph.VertexSim{U: u, V: v, Measure: probgraph.Jaccard})
		if err != nil {
			panic(err)
		}
		return res.Value
	}

	// Link-prediction candidates for a few vertices: 2-hop non-neighbors
	// ranked by sketch-estimated Jaccard (Listing 5's scoring, online),
	// each request under its own 50ms deadline.
	for _, v := range []uint32{10, 500, 2048} {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		res, err := engine.QueryCtx(ctx, probgraph.ServeQuery{
			Op: probgraph.OpTopK, U: v, K: 3, Measure: probgraph.Jaccard,
		})
		cancel()
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nlink-prediction candidates for vertex %d (degree %d):\n", v, g.Degree(v))
		for _, c := range res.TopK {
			fmt.Printf("  -> %5d  score %.4f  (exact Jaccard %.4f)\n",
				c.V, c.Score, exactJaccard(v, c.V))
		}
	}

	// Point similarity is served through the LRU cache: the second ask
	// for the same (normalized) pair is a hit.
	pair := probgraph.ServeQuery{Op: probgraph.OpSimilarity, U: 10, V: 11, Measure: probgraph.Jaccard}
	first, _ := engine.Query(pair)
	again, _ := engine.Query(pair)
	fmt.Printf("\nsimilarity(10,11) = %.4f (cached on repeat: %v)\n", first.Value, again.Cached)

	// An already-expired deadline is refused before any work happens.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	_, err = engine.QueryCtx(expired, pair)
	cancel()
	fmt.Printf("expired deadline: %v\n", err)

	st := engine.Stats()
	fmt.Printf("engine: %d-entry cache, %.0f%% hit rate, %d batches, %d B of %s sketches resident\n",
		st.Cache.Len, 100*st.Cache.HitRate(), st.Batch.Batches,
		st.SketchBytes[st.DefaultKind], st.DefaultKind)
}
