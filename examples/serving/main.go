// Serving: the online query engine embedded in-process — no HTTP, just
// the snapshot/batcher/cache stack — used here to score link-prediction
// candidates interactively the way a recommender sidecar would.
package main

import (
	"fmt"

	"probgraph"
)

func main() {
	// A clustered power-law graph: communities give 2-hop candidates
	// real common-neighbor signal.
	g := probgraph.HolmeKim(4096, 8, 0.5, 11)
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	// One immutable snapshot: orientation + Bloom-filter sketches at a
	// 25% budget, built once; every query below runs against it.
	snap, err := probgraph.OpenSnapshot(g, probgraph.SnapshotConfig{
		Kinds:  []probgraph.Kind{probgraph.BF},
		Budget: 0.25,
		Seed:   42,
	})
	if err != nil {
		panic(err)
	}
	engine := probgraph.Serve(snap, probgraph.ServeOptions{})
	defer engine.Close()

	// Link-prediction candidates for a few vertices: 2-hop non-neighbors
	// ranked by sketch-estimated Jaccard (Listing 5's scoring, online).
	for _, v := range []uint32{10, 500, 2048} {
		res, err := engine.Query(probgraph.ServeQuery{
			Op: probgraph.OpTopK, U: v, K: 3, Measure: probgraph.Jaccard,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nlink-prediction candidates for vertex %d (degree %d):\n", v, g.Degree(v))
		for _, c := range res.TopK {
			fmt.Printf("  -> %5d  score %.4f  (exact Jaccard %.4f)\n",
				c.V, c.Score, probgraph.Similarity(g, v, c.V, probgraph.Jaccard))
		}
	}

	// Point similarity is served through the LRU cache: the second ask
	// for the same (normalized) pair is a hit.
	pair := probgraph.ServeQuery{Op: probgraph.OpSimilarity, U: 10, V: 11, Measure: probgraph.Jaccard}
	first, _ := engine.Query(pair)
	again, _ := engine.Query(pair)
	fmt.Printf("\nsimilarity(10,11) = %.4f (cached on repeat: %v)\n", first.Value, again.Cached)

	st := engine.Stats()
	fmt.Printf("engine: %d-entry cache, %.0f%% hit rate, %d batches, %d B of %s sketches resident\n",
		st.Cache.Len, 100*st.Cache.HitRate(), st.Batch.Batches,
		st.SketchBytes[st.DefaultKind], st.DefaultKind)
}
