// Similarity screening: the chemical-database use case of §III-A —
// given a compound-similarity graph, find the most similar pairs by
// Jaccard coefficient over shared structural neighbors, comparing every
// ProbGraph estimator against the exact value (the Listing 6 pattern).
package main

import (
	"fmt"
	"sort"

	"probgraph"
)

type scored struct {
	u, v  uint32
	exact float64
}

func main() {
	// A "compound database": near-regular similarity graph, the density
	// class of the paper's chemistry datasets (ch-SiO, ch-Si10H16).
	g := probgraph.ErdosRenyi(3000, 80000, 7)
	fmt.Printf("compound graph: n=%d m=%d avgdeg=%.1f\n\n", g.NumVertices(), g.NumEdges(), g.AvgDegree())

	// Exact screening pass: Jaccard over all adjacent pairs.
	var pairs []scored
	g.Edges(func(u, v uint32) {
		pairs = append(pairs, scored{u, v, probgraph.Similarity(g, u, v, probgraph.Jaccard)})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].exact > pairs[j].exact })
	top := pairs[:10]

	// Sketch the graph once per representation; screening then runs on
	// sketches alone.
	fmt.Printf("%-22s", "top pairs (exact J)")
	kinds := []probgraph.Kind{probgraph.BF, probgraph.KHash, probgraph.OneHash, probgraph.KMV}
	pgs := make([]*probgraph.PG, len(kinds))
	for i, kind := range kinds {
		pg, err := probgraph.Build(g, probgraph.Config{Kind: kind, Budget: 0.33, Seed: 3})
		if err != nil {
			panic(err)
		}
		pgs[i] = pg
		fmt.Printf("%10v", kind)
	}
	fmt.Println()
	for _, p := range top {
		fmt.Printf("(%4d,%4d) J=%.4f  ", p.u, p.v, p.exact)
		for _, pg := range pgs {
			fmt.Printf("%10.4f", probgraph.PGSimilarity(g, pg, p.u, p.v, probgraph.Jaccard))
		}
		fmt.Println()
	}

	// Aggregate screening accuracy: mean absolute Jaccard error across a
	// sample of adjacent pairs.
	fmt.Println("\nmean |J_est - J| over 2000 sampled pairs:")
	for i, pg := range pgs {
		var err float64
		for _, p := range pairs[:2000] {
			d := probgraph.PGSimilarity(g, pg, p.u, p.v, probgraph.Jaccard) - p.exact
			if d < 0 {
				d = -d
			}
			err += d
		}
		fmt.Printf("  %-4v %.4f\n", kinds[i], err/2000)
	}
}
