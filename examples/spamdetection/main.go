// Spam detection: the §III-A observation that "standard and spam sites
// differ in the respective counts of triangles that they belong to",
// turned into a screening pipeline. Legitimate pages live inside densely
// interlinked communities (many triangles); spam pages blast links
// indiscriminately (high degree, few triangles). The per-vertex triangle
// counts — exact and sketch-estimated — separate the two populations.
package main

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"probgraph"
)

func main() {
	// A web-like host graph: legitimate hosts in linked communities...
	const legit, spam = 3000, 60
	base := probgraph.CommunityGraph(legit, 90000, 60, 150, 11)
	edges := base.EdgeList()
	// ...plus spam hosts that link to many random targets (link farms
	// pointing outward, no community structure).
	r := rand.New(rand.NewPCG(99, 0))
	for s := 0; s < spam; s++ {
		spammer := uint32(legit + s)
		for i := 0; i < 60; i++ {
			edges = append(edges, probgraph.Edge{U: uint32(r.IntN(legit)), V: spammer})
		}
	}
	g, err := probgraph.NewGraph(legit+spam, edges)
	if err != nil {
		panic(err)
	}
	fmt.Printf("host graph: n=%d m=%d (%d spam hosts planted)\n\n", g.NumVertices(), g.NumEdges(), spam)

	// Screening score: triangles per adjacent pair (a degree-normalized
	// local clustering signal). Spam hosts score near zero.
	score := func(tri float64, deg int) float64 {
		if deg < 2 {
			return 0
		}
		return tri / float64(deg*(deg-1)/2)
	}

	start := time.Now()
	exactTri := probgraph.LocalTriangleCounts(g, 0)
	exactTime := time.Since(start)

	pg, err := probgraph.Build(g, probgraph.Config{Kind: probgraph.BF, Budget: 0.25, Seed: 3})
	if err != nil {
		panic(err)
	}
	start = time.Now()
	estTri := probgraph.PGLocalTriangleCounts(g, pg, 0)
	estTime := time.Since(start)

	// Rank all hosts by the sketch-based score, flag the bottom `spam`.
	type host struct {
		id uint32
		s  float64
	}
	ranked := make([]host, g.NumVertices())
	for v := range ranked {
		ranked[v] = host{uint32(v), score(estTri[v], g.Degree(uint32(v)))}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s < ranked[j].s })
	caughtPG := 0
	for _, h := range ranked[:spam] {
		if int(h.id) >= legit {
			caughtPG++
		}
	}
	// Same with exact counts, for reference.
	for v := range ranked {
		ranked[v] = host{uint32(v), score(float64(exactTri[v]), g.Degree(uint32(v)))}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s < ranked[j].s })
	caughtExact := 0
	for _, h := range ranked[:spam] {
		if int(h.id) >= legit {
			caughtExact++
		}
	}

	fmt.Printf("exact per-vertex triangles:  %v, flags %d/%d spam hosts\n", exactTime, caughtExact, spam)
	fmt.Printf("sketch per-vertex triangles: %v, flags %d/%d spam hosts (%.1fx faster, +%.0f%% memory)\n",
		estTime, caughtPG, spam, float64(exactTime)/float64(estTime), 100*pg.RelativeMemory())
}
