// Link prediction: the Listing 5 evaluation harness on a collaboration
// network — hide 10% of the edges, score candidate pairs with several
// vertex-similarity measures (Listing 3), and report how many hidden
// links each measure recovers, exactly and with ProbGraph sketches.
package main

import (
	"fmt"
	"time"

	"probgraph"
)

func main() {
	// A citation/collaboration-style preferential-attachment network.
	g := probgraph.BarabasiAlbert(3000, 6, 2024)
	fmt.Printf("collaboration network: n=%d m=%d\n\n", g.NumVertices(), g.NumEdges())

	measures := []struct {
		name string
		m    probgraph.Measure
	}{
		{"CommonNeighbors", probgraph.CommonNeighbors},
		{"Jaccard", probgraph.Jaccard},
		{"AdamicAdar", probgraph.AdamicAdar},
		{"ResourceAlloc", probgraph.ResourceAllocation},
	}

	pgCfg := probgraph.Config{Kind: probgraph.BF, Budget: 0.25, NumHashes: 2, Seed: 5}

	fmt.Printf("%-16s %12s %12s %10s\n", "measure", "exact ef", "PG ef", "PG time")
	for _, ms := range measures {
		exact, err := probgraph.LinkPrediction(g, ms.m, 0.10, 7, nil, 0)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		approx, err := probgraph.LinkPrediction(g, ms.m, 0.10, 7, &pgCfg, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s %11.3f%% %11.3f%% %10v\n",
			ms.name, 100*exact.Efficiency, 100*approx.Efficiency, time.Since(start))
	}

	fmt.Println("\nef = fraction of hidden links recovered among the top-scored candidates")
	fmt.Println("(Listing 5: ef = |E_predict ∩ E_rndm| / |E_rndm|)")
}
