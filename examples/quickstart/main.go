// Quickstart: one Session, every representation. A Session binds the
// graph to cached derived state (orientation, one sketch set per
// representation) and runs each kernel through the same entry point —
// the 30-second tour of the library.
package main

import (
	"context"
	"fmt"
	"math"

	"probgraph"
)

func main() {
	// A modular graph in the style of the paper's biological networks:
	// dense functional communities, skewed degrees, high clustering —
	// the regime where fixed-size sketches shine.
	g := probgraph.CommunityGraph(4096, 160000, 80, 160, 42)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// One Session: 25% storage budget (the paper's typical setting),
	// fixed seed, all cores. Derived state is built lazily and cached.
	sess, err := probgraph.NewSession(g, probgraph.WithBudget(0.25), probgraph.WithSeed(7))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	exact, err := sess.Run(ctx, probgraph.TC{Mode: probgraph.Exact})
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact triangle count: %d  (%v)\n\n", exact.Count(), exact.Elapsed)

	for _, kind := range []probgraph.Kind{probgraph.BF, probgraph.KHash, probgraph.OneHash, probgraph.KMV} {
		// Reconfigured views share the Session's caches: switching the
		// representation builds that sketch set once, nothing else.
		sk, err := sess.With(probgraph.WithKind(kind))
		if err != nil {
			panic(err)
		}
		pg, err := sk.PG(ctx) // pre-build so the timing below is the kernel alone
		if err != nil {
			panic(err)
		}
		res, err := sk.Run(ctx, probgraph.TC{Mode: probgraph.Sketched})
		if err != nil {
			panic(err)
		}
		acc := 100 * (1 - math.Abs(res.Value-exact.Value)/exact.Value)
		fmt.Printf("%-4v est=%9.0f  accuracy=%5.1f%%  time=%-10v speedup=%.1fx  mem=+%.0f%%",
			kind, res.Value, acc, res.Elapsed,
			float64(exact.Elapsed)/float64(res.Elapsed), 100*pg.RelativeMemory())
		if res.Bound > 0 {
			// The theory rides along in the Result: Theorem VII.1's
			// deviation guarantee at 95% confidence.
			fmt.Printf("  |err|<=%.3g @%v%%", res.Bound, 100*res.Confidence)
		}
		fmt.Println()
	}
}
