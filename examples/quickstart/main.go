// Quickstart: sketch a graph with every ProbGraph representation and
// compare the estimated triangle count, runtime, and memory against the
// exact baseline — the 30-second tour of the library.
package main

import (
	"fmt"
	"math"
	"time"

	"probgraph"
)

func main() {
	// A modular graph in the style of the paper's biological networks:
	// dense functional communities, skewed degrees, high clustering —
	// the regime where fixed-size sketches shine.
	g := probgraph.CommunityGraph(4096, 160000, 80, 160, 42)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	start := time.Now()
	exact := probgraph.ExactTriangleCount(g, 0)
	exactTime := time.Since(start)
	fmt.Printf("exact triangle count: %d  (%v)\n\n", exact, exactTime)

	for _, kind := range []probgraph.Kind{probgraph.BF, probgraph.KHash, probgraph.OneHash, probgraph.KMV} {
		// 25% extra memory on top of the CSR, the paper's typical budget.
		pg, err := probgraph.Build(g, probgraph.Config{Kind: kind, Budget: 0.25, Seed: 7})
		if err != nil {
			panic(err)
		}
		start = time.Now()
		est := probgraph.TriangleCount(g, pg, 0)
		estTime := time.Since(start)
		acc := 100 * (1 - math.Abs(est-float64(exact))/float64(exact))
		fmt.Printf("%-4v est=%9.0f  accuracy=%5.1f%%  time=%-10v speedup=%.1fx  mem=+%.0f%%\n",
			kind, est, acc, estTime,
			float64(exactTime)/float64(estTime), 100*pg.RelativeMemory())
	}

	// The theory is executable too: how far can the MinHash TC estimate
	// stray? (Theorem VII.1, 95% confidence.)
	gm := probgraph.MomentsOf(g)
	fmt.Printf("\nThm VII.1: with k=64, |TC_est - TC| <= %.3g at 95%% confidence\n",
		probgraph.TCDeviationMinHash(gm, 64, 0.95))
}
