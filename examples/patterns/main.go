// Patterns: compiled exploration plans over sketch rows. One Session,
// one set of Bloom rows, three ways to count each pattern — exact,
// sketch-pruned exact (bit-identical, fewer adjacency checks), and
// sketch-estimated with a generalized Theorem VII.1 deviation bound.
package main

import (
	"context"
	"fmt"
	"math"

	"probgraph"
)

func main() {
	// The clustered regime the paper targets: dense communities mean
	// plenty of diamonds and 4-cycles, skewed degrees mean the exact
	// adjacency checks the sketch probes replace are expensive.
	g := probgraph.CommunityGraph(4096, 160000, 80, 160, 42)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	sess, err := probgraph.NewSession(g, probgraph.WithBudget(0.25), probgraph.WithSeed(7))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	if _, err := sess.PG(ctx); err != nil { // pre-build: timings below are the kernels alone
		panic(err)
	}

	star3, err := probgraph.StarPattern(3)
	if err != nil {
		panic(err)
	}
	userDefined, err := probgraph.ParsePattern("0-1,1-2,2-3,3-0,0-2") // a diamond, spelled out
	if err != nil {
		panic(err)
	}
	pats := []*probgraph.PatternSpec{
		probgraph.TrianglePattern(),
		probgraph.DiamondPattern(),
		probgraph.FourCyclePattern(),
		star3,
		userDefined,
	}

	for _, p := range pats {
		exact, err := sess.Run(ctx, probgraph.PatternCount{P: p, Mode: probgraph.Exact})
		if err != nil {
			panic(err)
		}
		pruned, err := sess.Run(ctx, probgraph.PatternCount{P: p, Mode: probgraph.Exact, Prune: true})
		if err != nil {
			panic(err)
		}
		if pruned.Value != exact.Value {
			panic("sound pruning must be bit-identical") // the CertainAbsent contract
		}
		est, err := sess.Run(ctx, probgraph.Pattern(p)) // Sketched mode
		if err != nil {
			panic(err)
		}
		acc := 100.0
		if exact.Value != 0 {
			acc = 100 * (1 - math.Abs(est.Value-exact.Value)/exact.Value)
		}
		fmt.Printf("%-22s exact=%12.0f (%v)\n", p, exact.Value, exact.Elapsed)
		fmt.Printf("%22s pruned same count, %d/%d checks probed away (%v)\n", "",
			pruned.PatternStats.SketchPruned,
			pruned.PatternStats.SketchPruned+pruned.PatternStats.EdgeChecks, pruned.Elapsed)
		fmt.Printf("%22s est  =%12.0f  accuracy=%5.1f%%  speedup=%.1fx", "",
			est.Value, acc, float64(exact.Elapsed)/float64(est.Elapsed))
		if est.Bound > 0 {
			fmt.Printf("  |err|<=%.3g @%v%%", est.Bound, 100*est.Confidence)
		}
		fmt.Println()
	}
}
