// Communities: Jarvis–Patrick clustering on a social network with
// planted community structure — the adaptive-web-search use case of
// §III-A (cluster users by shared-neighbor similarity), run exactly and
// with ProbGraph sketches.
package main

import (
	"fmt"
	"time"

	"probgraph"
)

func main() {
	// A "user interaction network": 2000 users in 8 interest communities;
	// users within a community interact densely, across communities
	// rarely.
	const users, communities = 2000, 8
	g := probgraph.PlantedPartition(users, communities, 0.3, 0.001, 99)
	fmt.Printf("social network: n=%d m=%d\n", g.NumVertices(), g.NumEdges())

	// Jarvis–Patrick: two users belong together if they share more than
	// τ common contacts (Listing 4 with Common Neighbors similarity).
	// τ sits between the within-community score (~20) and the
	// cross-community score (~0 exact, a few for the BF estimator whose
	// additive collision bias grows on sparse graphs — §VIII-B).
	const tau = 12.0

	start := time.Now()
	exact := probgraph.Cluster(g, probgraph.CommonNeighbors, tau, 0)
	exactTime := time.Since(start)
	fmt.Printf("\nexact:     %4d clusters, %6d intra-cluster edges  (%v)\n",
		exact.NumClusters, len(exact.Kept), exactTime)

	for _, setup := range []struct {
		name string
		cfg  probgraph.Config
	}{
		{"ProbGraph-BF", probgraph.Config{Kind: probgraph.BF, Budget: 0.25, NumHashes: 1, Seed: 1}},
		{"ProbGraph-1H", probgraph.Config{Kind: probgraph.OneHash, Budget: 0.25, Seed: 1}},
	} {
		pg, err := probgraph.Build(g, setup.cfg)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		approx := probgraph.PGCluster(g, pg, probgraph.CommonNeighbors, tau, 0)
		approxTime := time.Since(start)
		fmt.Printf("%-10s %4d clusters, %6d intra-cluster edges  (%v, %.1fx, +%.0f%% mem)\n",
			setup.name, approx.NumClusters, len(approx.Kept), approxTime,
			float64(exactTime)/float64(approxTime), 100*pg.RelativeMemory())

		// How well do the sketch-based clusters match the planted truth?
		// Check a sample of within-community pairs for label agreement.
		agree, total := 0, 0
		for u := 0; u < users; u += 37 {
			v := u + communities // same community (u mod 8 == v mod 8)
			if v < users {
				total++
				if (approx.Labels[u] == approx.Labels[v]) == (exact.Labels[u] == exact.Labels[v]) {
					agree++
				}
			}
		}
		fmt.Printf("           label agreement with exact on sampled pairs: %d/%d\n", agree, total)
	}
}
