// Streaming: ingest under load. A DynamicGraph receives edge batches
// while a query loop keeps hitting the serving engine; every batch is
// applied to the per-vertex sketches incrementally (a few hash
// evaluations per new edge — no re-sketch of the graph), frozen into an
// immutable epoch, and hot-swapped under the live queries. In-flight
// queries finish on the epoch they started on; the epoch-keyed result
// cache invalidates naturally; not a single query errors across the
// swaps.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"probgraph"
)

func main() {
	// Start from a 70% prefix of a power-law graph; the rest arrives as
	// a live stream of edge batches.
	final := probgraph.Kronecker(12, 16, 42)
	edges := final.EdgeList()
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	cut := len(edges) * 7 / 10
	initial, err := probgraph.NewGraph(final.NumVertices(), edges[:cut])
	if err != nil {
		panic(err)
	}
	streamed := edges[cut:]
	fmt.Printf("initial: n=%d m=%d; streaming %d more edges\n",
		initial.NumVertices(), initial.NumEdges(), len(streamed))

	// The dynamic graph owns the sketches; epoch 1 is its first freeze.
	d, err := probgraph.NewDynamic(initial, probgraph.SnapshotConfig{Budget: 0.25, Seed: 42})
	if err != nil {
		panic(err)
	}
	snap, err := d.Freeze()
	if err != nil {
		panic(err)
	}
	engine := probgraph.Serve(snap, probgraph.ServeOptions{})
	defer engine.Close()
	feeder := probgraph.NewFeeder(d, engine)
	engine.EnableIngest(feeder)

	// Query load: four workers asking similarities and local triangle
	// counts as fast as the engine answers them.
	var queries, errs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			n := uint32(initial.NumVertices())
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := probgraph.ServeQuery{Op: probgraph.OpSimilarity, U: r.Uint32() % n, V: r.Uint32() % n}
				if r.Intn(3) == 0 {
					q = probgraph.ServeQuery{Op: probgraph.OpLocalTC, U: r.Uint32() % n}
				}
				if _, err := engine.Query(q); err != nil {
					errs.Add(1)
				}
				queries.Add(1)
			}
		}(w)
	}

	// The ingest side: 12 batches, one epoch swap each.
	const batches = 12
	chunk := (len(streamed) + batches - 1) / batches
	t0 := time.Now()
	for i := 0; i < len(streamed); i += chunk {
		end := min(i+chunk, len(streamed))
		res, err := feeder.Ingest(streamed[i:end], nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("epoch %2d: +%4d edges (m=%d) published in %.1fms\n",
			res.Epoch, res.Added, res.Edges, res.BuildMS)
		time.Sleep(20 * time.Millisecond) // let queries interleave with the churn
	}
	close(stop)
	wg.Wait()

	st := engine.Stats()
	fmt.Printf("\ningested %d edges across %d hot-swaps in %v\n",
		len(streamed), st.Swaps, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("served %d queries during the churn, %d errors\n", queries.Load(), errs.Load())
	fmt.Printf("final epoch %d: n=%d m=%d (matches the target graph: %v)\n",
		st.Epoch, st.Vertices, st.Edges, st.Edges == final.NumEdges())

	// Long-lived analytical Sessions follow the stream with Refresh.
	g0, err := d.Graph()
	if err != nil {
		panic(err)
	}
	sess, err := probgraph.NewSession(g0,
		probgraph.WithDynamic(d.SessionSource()), probgraph.WithSeed(42))
	if err != nil {
		panic(err)
	}
	sess, err = sess.Refresh() // rebinds to the newest epoch (no-op here: already newest)
	if err != nil {
		panic(err)
	}
	fmt.Printf("refreshed session sees %d edges\n", sess.Graph().NumEdges())
}
