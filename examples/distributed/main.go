// Distributed: the §VIII-F experiment as an application — triangle
// counting over a simulated multi-node cluster, comparing the bytes on
// the wire when remote neighborhoods are shipped as raw CSR lists versus
// as fixed-size ProbGraph sketches.
package main

import (
	"fmt"

	"probgraph"
)

func main() {
	// A skewed power-law graph: hub neighborhoods make the CSR protocol
	// expensive, fixed-size sketches do not care.
	g := probgraph.Kronecker(13, 16, 7)
	o := probgraph.Orient(g, 0)
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())

	pg, err := probgraph.BuildOriented(o, g.SizeBits(), probgraph.Config{
		Kind: probgraph.BF, Budget: 0.5, NumHashes: 1, Est: probgraph.EstBFL, Seed: 3,
	})
	if err != nil {
		panic(err)
	}

	exactCount := float64(probgraph.ExactTriangleCount(g, 0))
	fmt.Printf("%5s %14s %14s %10s %12s\n", "nodes", "CSR bytes", "sketch bytes", "reduction", "sketch err")
	for _, nodes := range []int{2, 4, 8, 16} {
		base, err := probgraph.DistributedTC(g, o, nil, nodes, probgraph.ShipNeighborhoods)
		if err != nil {
			panic(err)
		}
		sk, err := probgraph.DistributedTC(g, o, pg, nodes, probgraph.ShipSketches)
		if err != nil {
			panic(err)
		}
		relErr := 0.0
		if exactCount > 0 {
			relErr = (sk.Count - exactCount) / exactCount
			if relErr < 0 {
				relErr = -relErr
			}
		}
		fmt.Printf("%5d %14d %14d %9.2fx %11.1f%%\n",
			nodes, base.Net.Bytes, sk.Net.Bytes,
			float64(base.Net.Bytes)/float64(sk.Net.Bytes), 100*relErr)
	}
	fmt.Println("\nEvery remote neighborhood fetch ships either the full adjacency")
	fmt.Println("list (4 B/vertex ID) or one fixed-size sketch — the reduction is")
	fmt.Println("the §VIII-F communication saving, growing with node count and skew.")

	// The same cluster machinery runs the vertex-similarity kernel on
	// the community workload of §III-A: every edge is scored at the
	// owner of its lower endpoint, fetching the other endpoint's full
	// neighborhood or full-neighborhood sketch.
	gc := probgraph.CommunityGraph(8192, 160000, 16, 64, 7)
	fullPG, err := probgraph.Build(gc, probgraph.Config{
		Kind: probgraph.BF, Budget: 0.25, NumHashes: 2, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndistributed mean edge Jaccard (community graph: n=%d m=%d):\n",
		gc.NumVertices(), gc.NumEdges())
	fmt.Printf("%5s %14s %14s %10s %12s\n", "nodes", "CSR bytes", "sketch bytes", "reduction", "sketch err")
	for _, nodes := range []int{2, 4, 8, 16} {
		base, err := probgraph.DistributedSimilarity(gc, nil, nodes, probgraph.ShipNeighborhoods, probgraph.Jaccard)
		if err != nil {
			panic(err)
		}
		sk, err := probgraph.DistributedSimilarity(gc, fullPG, nodes, probgraph.ShipSketches, probgraph.Jaccard)
		if err != nil {
			panic(err)
		}
		relErr := 0.0
		if base.Count != 0 {
			relErr = (sk.Count - base.Count) / base.Count
			if relErr < 0 {
				relErr = -relErr
			}
		}
		fmt.Printf("%5d %14d %14d %9.2fx %11.1f%%\n",
			nodes, base.Net.Bytes, sk.Net.Bytes,
			float64(base.Net.Bytes)/float64(sk.Net.Bytes), 100*relErr)
	}
}
