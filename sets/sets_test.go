package sets

import (
	"math"
	"testing"

	"probgraph/internal/stats"
)

// overlapping builds A = [0, sizeA) and B = [sizeA-overlap, ...+sizeB).
func overlapping(sizeA, sizeB, overlap int) (a, b []uint32) {
	for i := 0; i < sizeA; i++ {
		a = append(a, uint32(i))
	}
	for i := 0; i < sizeB; i++ {
		b = append(b, uint32(sizeA-overlap+i))
	}
	return a, b
}

func TestBloomSetEndToEnd(t *testing.T) {
	ka, kb := overlapping(400, 300, 120)
	a := NewBloom(ka, 1<<14, 2, 7)
	b := NewBloom(kb, 1<<14, 2, 7)
	if a.Size() != 400 || b.Size() != 300 {
		t.Fatal("sizes")
	}
	if stats.RelativeError(a.Card(), 400) > 0.1 {
		t.Fatalf("Card = %v", a.Card())
	}
	for _, x := range ka[:50] {
		if !a.Contains(x) {
			t.Fatal("false negative")
		}
	}
	for name, f := range map[string]func(*Bloom) (float64, error){
		"AND": a.Intersection,
		"L":   a.IntersectionL,
		"OR":  a.IntersectionOR,
	} {
		est, err := f(b)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelativeError(est, 120) > 0.25 {
			t.Errorf("%s estimate %v, want ~120", name, est)
		}
	}
	dev, err := a.DeviationAt(b, 0.95)
	if err != nil || dev <= 0 {
		t.Fatalf("deviation: %v %v", dev, err)
	}
}

func TestBloomIncompatible(t *testing.T) {
	a := NewBloom(nil, 1024, 2, 1)
	cases := []*Bloom{
		NewBloom(nil, 2048, 2, 1), // different size
		NewBloom(nil, 1024, 3, 1), // different b
		NewBloom(nil, 1024, 2, 2), // different seed
	}
	for i, c := range cases {
		if _, err := a.Intersection(c); err == nil {
			t.Errorf("case %d: incompatible sketches must error", i)
		}
	}
	if _, err := a.DeviationAt(cases[0], 0.95); err == nil {
		t.Error("deviation on incompatible sketches must error")
	}
}

func TestKHashSetEndToEnd(t *testing.T) {
	ka, kb := overlapping(300, 200, 100)
	a := NewKHash(ka, 128, 3)
	b := NewKHash(kb, 128, 3)
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	trueJ := 100.0 / 400.0
	if math.Abs(j-trueJ) > 0.12 {
		t.Fatalf("Jaccard %v, want ~%v", j, trueJ)
	}
	est, err := a.Intersection(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(est, 100) > 0.4 {
		t.Fatalf("intersection %v, want ~100", est)
	}
	// The 95% bound must cover the observed error (w.h.p.).
	if dev := a.DeviationAt(b, 0.95); math.Abs(est-100) > dev {
		t.Fatalf("error %v exceeds 95%% bound %v", math.Abs(est-100), dev)
	}
	if _, err := a.Jaccard(NewKHash(kb, 64, 3)); err == nil {
		t.Fatal("different k must error")
	}
}

func TestBottomKSetEndToEnd(t *testing.T) {
	ka, kb := overlapping(300, 200, 100)
	a := NewBottomK(ka, 128, 5, true)
	b := NewBottomK(kb, 128, 5, true)
	est, err := a.Intersection(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(est, 100) > 0.35 {
		t.Fatalf("intersection %v, want ~100", est)
	}
	common, err := a.CommonElements(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range common {
		if x < 200 || x >= 300 {
			t.Fatalf("common element %d outside the true intersection", x)
		}
	}
	// Without elements the sample is unavailable.
	na := NewBottomK(ka, 128, 5, false)
	nb := NewBottomK(kb, 128, 5, false)
	if _, err := na.CommonElements(nb); err == nil {
		t.Fatal("CommonElements without keepElems must error")
	}
	if _, err := a.Jaccard(NewBottomK(kb, 128, 6, true)); err == nil {
		t.Fatal("different seed must error")
	}
	if a.DeviationAt(b, 0.9) <= 0 {
		t.Fatal("deviation must be positive")
	}
}

func TestKMVSetEndToEnd(t *testing.T) {
	ka, kb := overlapping(500, 400, 200)
	a := NewKMV(ka, 128, 9)
	b := NewKMV(kb, 128, 9)
	if stats.RelativeError(a.Card(), 500) > 0.25 {
		t.Fatalf("Card %v", a.Card())
	}
	u, err := a.UnionCard(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(u, 700) > 0.25 {
		t.Fatalf("UnionCard %v, want ~700", u)
	}
	est, err := a.Intersection(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(est, 200) > 0.6 {
		t.Fatalf("intersection %v, want ~200", est)
	}
	if cov := a.CardCoverage(250); cov < 0.9 {
		t.Fatalf("wide interval coverage %v", cov)
	}
	if _, err := a.Intersection(NewKMV(kb, 64, 9)); err == nil {
		t.Fatal("different k must error")
	}
}

func TestHLLSetEndToEnd(t *testing.T) {
	ka, kb := overlapping(3000, 2500, 1000)
	a := NewHLL(ka, 11, 13)
	b := NewHLL(kb, 11, 13)
	if stats.RelativeError(a.Card(), 3000) > 0.1 {
		t.Fatalf("Card %v", a.Card())
	}
	u, err := a.UnionCard(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(u, 4500) > 0.1 {
		t.Fatalf("UnionCard %v, want ~4500", u)
	}
	est, err := a.Intersection(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(est, 1000) > 0.5 {
		t.Fatalf("intersection %v, want ~1000", est)
	}
	if _, err := a.Intersection(NewHLL(kb, 10, 13)); err == nil {
		t.Fatal("different precision must error")
	}
}

func TestEmptySets(t *testing.T) {
	empty := NewBloom(nil, 1024, 2, 1)
	if empty.Card() != 0 || empty.Size() != 0 {
		t.Fatal("empty Bloom")
	}
	ek := NewKHash(nil, 16, 1)
	full := NewKHash([]uint32{1, 2, 3}, 16, 1)
	if j, _ := ek.Jaccard(full); j != 0 {
		t.Fatal("empty k-Hash Jaccard")
	}
	eb := NewBottomK(nil, 16, 1, false)
	if est, _ := eb.Intersection(NewBottomK([]uint32{1}, 16, 1, false)); est != 0 {
		t.Fatal("empty bottom-k intersection")
	}
	if NewKMV(nil, 16, 1).Card() != 0 {
		t.Fatal("empty KMV")
	}
}
