// Package sets exposes ProbGraph's probabilistic set representations for
// arbitrary sets of 32-bit keys — the §IV framing of the paper, whose
// estimators and bounds "are of interest beyond graph analytics". Each
// type sketches one set; two sketches built with the same seed (and
// geometry) can be intersected, unioned, and compared, with the same
// estimators the graph algorithms use, plus per-estimate concentration
// bounds.
//
//	a := sets.NewBloom(keysA, 4096, 2, 7)
//	b := sets.NewBloom(keysB, 4096, 2, 7)
//	est, _ := a.Intersection(b)            // |A∩B| estimate (Eq. 2)
//	dev := a.DeviationAt(b, 0.95)          // Chebyshev bound on the error
package sets

import (
	"fmt"

	"probgraph/internal/estimator"
	"probgraph/internal/hash"
	"probgraph/internal/sketch"
)

// Bloom sketches one set as a Bloom filter (§II-D).
type Bloom struct {
	f    *sketch.Bloom
	size int
	seed uint64
}

// NewBloom builds a Bloom filter of nbits bits and b hash functions over
// the elements, seeded for reproducibility. Sets meant to be compared
// must share nbits, b, and seed.
func NewBloom(elems []uint32, nbits, b int, seed uint64) *Bloom {
	f := sketch.NewBloom(nbits, b, seed)
	for _, x := range elems {
		f.Add(x)
	}
	return &Bloom{f: f, size: len(elems), seed: seed}
}

// Size returns the exact number of inserted elements.
func (s *Bloom) Size() int { return s.size }

// Card estimates the set size from the filter alone (Eq. 1, Swamidass).
func (s *Bloom) Card() float64 { return s.f.EstimateCard() }

// Contains answers a membership query (no false negatives).
func (s *Bloom) Contains(x uint32) bool { return s.f.Contains(x) }

// compatible verifies two Bloom sketches share geometry and hash family.
func (s *Bloom) compatible(o *Bloom) error {
	if s.f.SizeBits() != o.f.SizeBits() || s.f.B() != o.f.B() || s.seed != o.seed {
		return fmt.Errorf("sets: incompatible Bloom sketches (bits %d/%d, b %d/%d, seed %d/%d)",
			s.f.SizeBits(), o.f.SizeBits(), s.f.B(), o.f.B(), s.seed, o.seed)
	}
	return nil
}

// Intersection estimates |A∩B| with the AND estimator (Eq. 2).
func (s *Bloom) Intersection(o *Bloom) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return s.f.InterANDOf(o.f), nil
}

// IntersectionL estimates |A∩B| with the limiting estimator (Eq. 4).
func (s *Bloom) IntersectionL(o *Bloom) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return s.f.InterLOf(o.f), nil
}

// IntersectionOR estimates |A∩B| with the union-based estimator
// (Eq. 29), using the exact set sizes.
func (s *Bloom) IntersectionOR(o *Bloom) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return s.f.InterOROf(o.f, s.size, o.size), nil
}

// DeviationAt returns the deviation t such that the AND estimate is
// within t of the truth with the given confidence (Eq. 3 inverted; uses
// the current estimate for the plug-in principle of §A-B).
func (s *Bloom) DeviationAt(o *Bloom, conf float64) (float64, error) {
	est, err := s.Intersection(o)
	if err != nil {
		return 0, err
	}
	return estimator.BFDeviation(int(est+0.5), s.f.SizeBits(), s.f.B(), conf), nil
}

// KHash sketches one set as a k-Hash MinHash signature (§IV-C): the MLE
// estimator with exponential concentration.
type KHash struct {
	sig  sketch.KHashSig
	size int
	k    int
	seed uint64
}

// NewKHash builds a k-function MinHash signature over the elements.
func NewKHash(elems []uint32, k int, seed uint64) *KHash {
	fam := hash.NewFamily(seed, k)
	return &KHash{
		sig:  sketch.KHashSignature(elems, fam, make(sketch.KHashSig, fam.K())),
		size: len(elems),
		k:    fam.K(),
		seed: seed,
	}
}

// Size returns the exact number of elements.
func (s *KHash) Size() int { return s.size }

func (s *KHash) compatible(o *KHash) error {
	if s.k != o.k || s.seed != o.seed {
		return fmt.Errorf("sets: incompatible k-Hash sketches (k %d/%d, seed %d/%d)", s.k, o.k, s.seed, o.seed)
	}
	return nil
}

// Jaccard estimates J(A, B) = |A∩B|/|A∪B| (unbiased, Bin(k, J)).
func (s *KHash) Jaccard(o *KHash) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.KHashJaccard(s.sig, o.sig), nil
}

// Intersection estimates |A∩B| via Eq. (5).
func (s *KHash) Intersection(o *KHash) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.KHashInter(s.sig, o.sig, s.size, o.size), nil
}

// DeviationAt returns the Prop. IV.2 deviation at the given confidence:
// t = (|A|+|B|)·sqrt(ln(2/(1-conf))/(2k)).
func (s *KHash) DeviationAt(o *KHash, conf float64) float64 {
	return estimator.MinHashDeviation(s.size, o.size, s.k, conf)
}

// BottomK sketches one set as a 1-Hash bottom-k MinHash (§IV-D).
type BottomK struct {
	s    sketch.BottomK
	size int
	k    int
	seed uint64
}

// NewBottomK builds the bottom-k sketch; keepElems retains element IDs
// so CommonElements can expose a uniform sample of the intersection.
func NewBottomK(elems []uint32, k int, seed uint64, keepElems bool) *BottomK {
	fam := hash.NewFamily(seed, 1)
	fn := func(x uint32) uint64 { return fam.Hash(0, x) }
	return &BottomK{s: sketch.OneHashSketch(elems, k, fn, keepElems), size: len(elems), k: k, seed: seed}
}

// Size returns the exact number of elements.
func (s *BottomK) Size() int { return s.size }

func (s *BottomK) compatible(o *BottomK) error {
	if s.k != o.k || s.seed != o.seed {
		return fmt.Errorf("sets: incompatible bottom-k sketches (k %d/%d, seed %d/%d)", s.k, o.k, s.seed, o.seed)
	}
	return nil
}

// Jaccard estimates J(A, B) with the union-restricted bottom-k estimator.
func (s *BottomK) Jaccard(o *BottomK) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.OneHashJaccard(s.s, o.s, s.k), nil
}

// Intersection estimates |A∩B| (§IV-D).
func (s *BottomK) Intersection(o *BottomK) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.OneHashInter(s.s, o.s, s.k, s.size, o.size), nil
}

// CommonElements returns the element IDs present in both sketches — a
// uniform sample of A∩B (requires keepElems on both sides).
func (s *BottomK) CommonElements(o *BottomK) ([]uint32, error) {
	if err := s.compatible(o); err != nil {
		return nil, err
	}
	if s.s.Elems == nil || o.s.Elems == nil {
		return nil, fmt.Errorf("sets: CommonElements requires sketches built with keepElems")
	}
	return sketch.CommonElems(s.s, o.s, nil), nil
}

// DeviationAt returns the Prop. IV.3 deviation at the given confidence.
func (s *BottomK) DeviationAt(o *BottomK, conf float64) float64 {
	return estimator.MinHashDeviation(s.size, o.size, s.k, conf)
}

// KMV sketches one set with K-Minimum-Values (§IX).
type KMV struct {
	s    sketch.KMV
	size int
	k    int
	seed uint64
}

// NewKMV builds the KMV sketch over the elements.
func NewKMV(elems []uint32, k int, seed uint64) *KMV {
	fam := hash.NewFamily(seed, 1)
	fn := func(x uint32) uint64 { return fam.Hash(0, x) }
	return &KMV{s: sketch.NewKMV(elems, k, fn), size: len(elems), k: k, seed: seed}
}

// Size returns the exact number of elements.
func (s *KMV) Size() int { return s.size }

// Card estimates |A| from the sketch alone (Eq. 39).
func (s *KMV) Card() float64 { return s.s.Card(s.k) }

func (s *KMV) compatible(o *KMV) error {
	if s.k != o.k || s.seed != o.seed {
		return fmt.Errorf("sets: incompatible KMV sketches (k %d/%d, seed %d/%d)", s.k, o.k, s.seed, o.seed)
	}
	return nil
}

// UnionCard estimates |A∪B| from the merged sketch.
func (s *KMV) UnionCard(o *KMV) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.Union(s.s, o.s, s.k).Card(s.k), nil
}

// Intersection estimates |A∩B| by inclusion–exclusion with exact sizes
// (Eq. 41).
func (s *KMV) Intersection(o *KMV) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.InterKMV(s.s, o.s, s.k, s.size, o.size), nil
}

// CardCoverage evaluates Prop. A.7: the probability that the size
// estimate lands within t of the truth.
func (s *KMV) CardCoverage(t float64) float64 {
	return estimator.KMVCardInterval(s.size, s.k, t)
}

// HLL sketches one set with HyperLogLog (the §X extension).
type HLL struct {
	s    *sketch.HLL
	fam  *hash.Family
	size int
	seed uint64
}

// NewHLL builds a HyperLogLog with 2^p registers over the elements.
func NewHLL(elems []uint32, p uint8, seed uint64) *HLL {
	fam := hash.NewFamily(seed, 1)
	h := sketch.NewHLL(p)
	for _, x := range elems {
		h.Add(fam.Hash(0, x))
	}
	return &HLL{s: h, fam: fam, size: len(elems), seed: seed}
}

// Size returns the exact number of elements.
func (s *HLL) Size() int { return s.size }

// Card returns the HyperLogLog cardinality estimate.
func (s *HLL) Card() float64 { return s.s.Card() }

func (s *HLL) compatible(o *HLL) error {
	if s.s.P != o.s.P || s.seed != o.seed {
		return fmt.Errorf("sets: incompatible HLL sketches (p %d/%d, seed %d/%d)", s.s.P, o.s.P, s.seed, o.seed)
	}
	return nil
}

// UnionCard estimates |A∪B| via register-wise max.
func (s *HLL) UnionCard(o *HLL) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.UnionHLL(s.s, o.s).Card(), nil
}

// Intersection estimates |A∩B| by inclusion–exclusion with exact sizes.
func (s *HLL) Intersection(o *HLL) (float64, error) {
	if err := s.compatible(o); err != nil {
		return 0, err
	}
	return sketch.InterHLL(s.s, o.s, s.size, o.size), nil
}
