package probgraph_test

import (
	"bytes"
	"math"
	"testing"

	"probgraph"
)

// TestEndToEndTriangleCounting exercises the full public pipeline: build,
// sketch, estimate, compare against the exact baseline, check the bound.
func TestEndToEndTriangleCounting(t *testing.T) {
	g := probgraph.Kronecker(10, 12, 42)
	exact := probgraph.ExactTriangleCount(g, 0)
	if exact == 0 {
		t.Fatal("kronecker graph should contain triangles")
	}
	for _, kind := range []probgraph.Kind{probgraph.BF, probgraph.KHash, probgraph.OneHash} {
		pg, err := probgraph.Build(g, probgraph.Config{Kind: kind, Budget: 0.25, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		est := probgraph.TriangleCount(g, pg, 0)
		relErr := math.Abs(est-float64(exact)) / float64(exact)
		if relErr > 0.5 {
			t.Errorf("%v: est %.0f vs exact %d (rel err %.3f)", kind, est, exact, relErr)
		}
		if pg.RelativeMemory() > 0.30 {
			t.Errorf("%v: memory %.3f exceeds budget", kind, pg.RelativeMemory())
		}
	}
}

func TestEndToEndFourClique(t *testing.T) {
	g := probgraph.Kronecker(9, 12, 5)
	exact := probgraph.ExactFourCliqueCount(g, 0)
	if exact == 0 {
		t.Skip("no 4-cliques in this instance")
	}
	o := probgraph.Orient(g, 0)
	pg, err := probgraph.BuildOriented(o, g.SizeBits(), probgraph.Config{Kind: probgraph.BF, Budget: 0.33, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	est := probgraph.FourCliqueCount(o, pg, 0)
	if relErr := math.Abs(est-float64(exact)) / float64(exact); relErr > 0.6 {
		t.Errorf("4-clique est %.0f vs exact %d", est, exact)
	}
	if got, want := probgraph.KCliqueCount(g, 4, 0), exact; got != want {
		t.Fatalf("KCliqueCount(4) = %d, want %d", got, want)
	}
}

func TestEndToEndClustering(t *testing.T) {
	g := probgraph.PlantedPartition(100, 4, 0.5, 0.01, 11)
	exact := probgraph.Cluster(g, probgraph.CommonNeighbors, 3, 0)
	pg, err := probgraph.Build(g, probgraph.Config{Kind: probgraph.BF, Budget: 0.33, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	approx := probgraph.PGCluster(g, pg, probgraph.CommonNeighbors, 3, 0)
	if len(exact.Kept) == 0 || len(approx.Kept) == 0 {
		t.Fatal("degenerate clustering")
	}
	if approx.NumClusters < 1 || approx.NumClusters > g.NumVertices() {
		t.Fatalf("cluster count out of range: %d", approx.NumClusters)
	}
}

func TestEndToEndSimilarity(t *testing.T) {
	g := probgraph.Complete(20)
	pg, err := probgraph.Build(g, probgraph.Config{Kind: probgraph.OneHash, K: 32, Seed: 1, StoreElems: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []probgraph.Measure{probgraph.Jaccard, probgraph.Overlap,
		probgraph.CommonNeighbors, probgraph.TotalNeighbors,
		probgraph.AdamicAdar, probgraph.ResourceAllocation} {
		exact := probgraph.Similarity(g, 0, 1, m)
		approx := probgraph.PGSimilarity(g, pg, 0, 1, m)
		// k=32 >= d=19: lossless sketches, estimates must be exact.
		if math.Abs(exact-approx) > 1e-9 {
			t.Errorf("%v: exact %v vs PG %v (lossless sketch)", m, exact, approx)
		}
	}
}

func TestEndToEndLinkPrediction(t *testing.T) {
	g := probgraph.Complete(15)
	res, err := probgraph.LinkPrediction(g, probgraph.CommonNeighbors, 0.1, 3, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency != 1 {
		t.Fatalf("complete-graph link prediction must be perfect: %+v", res)
	}
	cfg := probgraph.Config{Kind: probgraph.BF, Budget: 0.33, Seed: 9}
	res2, err := probgraph.LinkPrediction(g, probgraph.CommonNeighbors, 0.1, 3, &cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Efficiency < 0.5 {
		t.Fatalf("PG link prediction efficiency %v", res2.Efficiency)
	}
}

func TestEndToEndClusteringCoefficient(t *testing.T) {
	g := probgraph.Complete(16)
	if got := probgraph.ClusteringCoefficient(g, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CC(K16) = %v", got)
	}
	pg, err := probgraph.Build(g, probgraph.Config{Kind: probgraph.BF, Budget: 0.33, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := probgraph.PGClusteringCoefficient(g, pg, 0); math.Abs(got-1) > 0.3 {
		t.Fatalf("PG CC(K16) = %v", got)
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := probgraph.BarabasiAlbert(100, 3, 7)
	var buf bytes.Buffer
	if err := probgraph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := probgraph.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("edge list round trip")
	}
	var bin bytes.Buffer
	if err := probgraph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g3, err := probgraph.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != g.NumVertices() {
		t.Fatal("binary round trip")
	}
}

func TestBoundsArePublic(t *testing.T) {
	g := probgraph.Kronecker(8, 8, 1)
	gm := probgraph.MomentsOf(g)
	if gm.M != g.NumEdges() || gm.MaxDegree == 0 {
		t.Fatalf("moments: %+v", gm)
	}
	if d := probgraph.MinHashDeviation(100, 100, 64, 0.95); d <= 0 {
		t.Fatal("deviation must be positive")
	}
	if tail := probgraph.TCBoundMinHash(gm, 64, 1e12); tail > 1e-6 {
		t.Fatalf("huge deviation must have tiny tail: %v", tail)
	}
	if cov := probgraph.KMVCardInterval(1000, 64, 500); cov < 0.9 {
		t.Fatalf("wide KMV interval coverage %v", cov)
	}
}

func TestPublicIntCardAndJaccard(t *testing.T) {
	g := probgraph.Complete(25)
	pg, err := probgraph.Build(g, probgraph.Config{Kind: probgraph.BF, Budget: 0.33, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if est := pg.IntCard(0, 1); math.Abs(est-23)/23 > 0.3 {
		t.Fatalf("IntCard = %v, want ~23", est)
	}
	if j := pg.Jaccard(0, 1); j < 0.4 || j > 1.3 {
		t.Fatalf("Jaccard = %v, want ~0.92", j)
	}
}

func TestEndToEndKCliqueAndHLL(t *testing.T) {
	g := probgraph.Complete(18)
	o := probgraph.Orient(g, 0)
	pg, err := probgraph.BuildOriented(o, g.SizeBits(), probgraph.Config{Kind: probgraph.BF, Budget: 0.33, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(probgraph.KCliqueCount(g, 5, 0))
	est, err := probgraph.PGKCliqueCount(o, pg, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact)/exact > 0.5 {
		t.Fatalf("5-clique est %v vs exact %v", est, exact)
	}
	if _, err := probgraph.PGKCliqueCount(o, pg, 2, 0); err == nil {
		t.Fatal("k=2 must error")
	}

	hll, err := probgraph.Build(g, probgraph.Config{Kind: probgraph.HLL, K: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := hll.IntCard(0, 1); math.Abs(got-16) > 8 {
		t.Fatalf("HLL IntCard = %v, want ~16", got)
	}
}

func TestEndToEndDistributed(t *testing.T) {
	g := probgraph.Kronecker(9, 8, 5)
	o := probgraph.Orient(g, 0)
	exact := float64(probgraph.ExactTriangleCount(g, 0))
	res, err := probgraph.DistributedTC(g, o, nil, 4, probgraph.ShipNeighborhoods)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != exact {
		t.Fatalf("distributed exact %v != %v", res.Count, exact)
	}
	pg, err := probgraph.BuildOriented(o, g.SizeBits(), probgraph.Config{Kind: probgraph.BF, Budget: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := probgraph.DistributedTC(g, o, pg, 4, probgraph.ShipSketches)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Net.Bytes >= res.Net.Bytes {
		t.Fatalf("sketch bytes %d should undercut CSR bytes %d", sk.Net.Bytes, res.Net.Bytes)
	}
}
