package probgraph

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target); reference-style
// links are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// docFiles returns every tracked markdown file at the repo root and
// under docs/ (the documentation the README index promises).
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; test must run from the repo root")
	}
	return files
}

// TestDocsRelativeLinks fails on any relative markdown link whose
// target does not exist, so renames and deletions cannot silently
// strand the documentation graph.
func TestDocsRelativeLinks(t *testing.T) {
	for _, f := range docFiles(t) {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; availability is not this test's job
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure intra-document anchor
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", f, m[1], resolved)
			}
		}
	}
}

// TestReadmeIndexesDocs pins the README "Documentation" index: every
// file in docs/ must be linked from the README, so new documents
// cannot land unindexed.
func TestReadmeIndexesDocs(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("docs/ holds no markdown files")
	}
	for _, d := range docs {
		if !strings.Contains(string(readme), "("+d+")") {
			t.Errorf("README.md does not link %s", d)
		}
	}
}

// TestReadmeMentionsCommands pins that every cmd/* binary is at least
// mentioned in the README, so new tools cannot ship undocumented.
func TestReadmeMentionsCommands(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(readme), e.Name()) {
			t.Errorf("README.md does not mention cmd/%s", e.Name())
		}
	}
}
