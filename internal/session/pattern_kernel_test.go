package session

import (
	"context"
	"math"
	"sync"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pattern"
)

func TestPatternKernelExact(t *testing.T) {
	g := graph.Kronecker(9, 10, 42)
	s := newSession(t, g, WithSeed(7), WithWorkers(2))

	// The triangle plan must agree exactly with the dedicated TC kernel.
	tri := mustRun(t, s, PatternCount{P: pattern.Triangle(), Mode: Exact})
	tc := mustRun(t, s, TC{Mode: Exact})
	if tri.Value != tc.Value {
		t.Errorf("triangle plan %v != TC kernel %v", tri.Value, tc.Value)
	}
	if tri.PatternStats == nil || tri.PatternStats.Embeddings != int64(tri.Value) {
		t.Errorf("missing or inconsistent pattern stats: %+v", tri.PatternStats)
	}
	if tri.Bound != 0 || tri.Confidence != 0 {
		t.Error("exact mode must not claim a bound")
	}
}

// TestPatternKernelPrunedBitIdentity: through the Session, for every
// sketch kind, sketch-pruned exact-verify returns the same count as
// exact-only for every builtin.
func TestPatternKernelPrunedBitIdentity(t *testing.T) {
	g := graph.Kronecker(8, 8, 3)
	base := newSession(t, g, WithSeed(7), WithWorkers(2))
	star4, err := pattern.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	pats := []*pattern.Pattern{
		pattern.Triangle(), pattern.Diamond(), pattern.FourPath(), pattern.FourCycle(), star4,
	}
	for _, p := range pats {
		want := mustRun(t, base, PatternCount{P: p, Mode: Exact}).Value
		for _, kind := range []core.Kind{core.BF, core.KHash, core.OneHash, core.KMV, core.HLL} {
			s, err := base.With(WithKind(kind))
			if err != nil {
				t.Fatal(err)
			}
			res := mustRun(t, s, PatternCount{P: p, Mode: Exact, Prune: true})
			if res.Value != want {
				t.Errorf("%v/%s: pruned %v != exact %v", kind, p, res.Value, want)
			}
			if res.Kind != kind {
				t.Errorf("%v/%s: result kind %v", kind, p, res.Kind)
			}
		}
	}
}

func TestPatternKernelSketched(t *testing.T) {
	g := graph.Kronecker(9, 12, 4)
	base := newSession(t, g, WithSeed(7), WithWorkers(2))
	exact := mustRun(t, base, PatternCount{P: pattern.Diamond(), Mode: Exact}).Value

	for _, kind := range []core.Kind{core.BF, core.KHash, core.OneHash} {
		s, err := base.With(WithKind(kind))
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, s, PatternCount{P: pattern.Diamond(), Mode: Sketched})
		if res.Mode != Sketched || res.Kind != kind {
			t.Fatalf("%v: result %+v", kind, res)
		}
		if res.Bound <= 0 || res.Confidence != 0.95 {
			t.Errorf("%v: pairwise-closing plan must carry a bound, got %v@%v", kind, res.Bound, res.Confidence)
		}
		if res.PatternStats.EstPairs == 0 {
			t.Errorf("%v: no estimator calls recorded", kind)
		}
		if res.Value <= 0 {
			t.Errorf("%v: estimate %v", kind, res.Value)
		}
		_ = exact // accuracy is pinned in internal/pattern; here we pin plumbing
	}

	// KMV/HLL carry no pattern bound theory.
	for _, kind := range []core.Kind{core.KMV, core.HLL} {
		s, err := base.With(WithKind(kind))
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, s, PatternCount{P: pattern.Diamond(), Mode: Sketched})
		if res.Bound != 0 || res.Confidence != 0 {
			t.Errorf("%v: unexpected bound %v@%v", kind, res.Bound, res.Confidence)
		}
	}

	// Tree-closing plans estimate exactly and report no bound.
	res := mustRun(t, base, PatternCount{P: pattern.FourPath(), Mode: Sketched})
	exactPath := mustRun(t, base, PatternCount{P: pattern.FourPath(), Mode: Exact}).Value
	if math.Abs(res.Value-exactPath) > 1e-6*math.Max(1, exactPath) {
		t.Errorf("4path estimate %v != exact %v", res.Value, exactPath)
	}
	if res.Bound != 0 {
		t.Errorf("tree-closing plan claimed bound %v", res.Bound)
	}
}

// TestPatternKernelTriangleBoundShape: on the triangle the pattern
// bound machinery must reduce to the TC shape — same inputs, union
// bound instead of joint concentration, so never tighter than the
// dedicated TC bound but finite and positive.
func TestPatternKernelTriangleBoundShape(t *testing.T) {
	g := graph.Kronecker(9, 10, 5)
	s := newSession(t, g, WithSeed(7), WithWorkers(1), WithKind(core.KHash))
	pat := mustRun(t, s, PatternCount{P: pattern.Triangle(), Mode: Sketched})
	tc := mustRun(t, s, TC{Mode: Sketched})
	if pat.Bound < tc.Bound {
		t.Errorf("union-bound pattern deviation %v tighter than joint TC deviation %v", pat.Bound, tc.Bound)
	}
	if pat.PatternStats.EstPairs != int64(g.NumEdges()) {
		t.Errorf("triangle estimate made %d pair calls, want m=%d", pat.PatternStats.EstPairs, g.NumEdges())
	}
}

func TestPatternKernelErrors(t *testing.T) {
	g := graph.ErdosRenyi(50, 200, 1)
	s := newSession(t, g)
	if _, err := s.Run(context.Background(), PatternCount{Mode: Exact}); err == nil {
		t.Error("nil pattern must error")
	}
	if _, err := s.Run(context.Background(), PatternCount{P: pattern.Triangle(), Mode: Mode(9)}); err == nil {
		t.Error("bad mode must error")
	}
	clique5, err := pattern.Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), PatternCount{P: clique5, Mode: Sketched}); err == nil {
		t.Error("clique5 estimate must error (closing level beyond IntCard3)")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, PatternCount{P: pattern.Triangle(), Mode: Exact}); err == nil {
		t.Error("cancelled ctx must error")
	}
}

// TestPatternKernelConcurrentRuns is the satellite race test: many
// goroutines Run pattern kernels (mixed modes, both lazily building
// sketch state) on one shared Session. Run under -race in CI.
func TestPatternKernelConcurrentRuns(t *testing.T) {
	g := graph.Kronecker(8, 8, 9)
	s := newSession(t, g, WithSeed(7), WithWorkers(2))
	star3, err := pattern.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	kernels := []Kernel{
		PatternCount{P: pattern.Triangle(), Mode: Exact},
		PatternCount{P: pattern.Diamond(), Mode: Exact, Prune: true},
		PatternCount{P: pattern.FourCycle(), Mode: Sketched},
		PatternCount{P: star3, Mode: Sketched},
		TC{Mode: Sketched},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(kernels))
	for i := 0; i < 4; i++ {
		for _, k := range kernels {
			wg.Add(1)
			go func(k Kernel) {
				defer wg.Done()
				if _, err := s.Run(context.Background(), k); err != nil {
					errs <- err
				}
			}(k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Deterministic across the chaos: a fresh identical session agrees.
	fresh := newSession(t, g, WithSeed(7), WithWorkers(2))
	a := mustRun(t, s, PatternCount{P: pattern.FourCycle(), Mode: Sketched})
	b := mustRun(t, fresh, PatternCount{P: pattern.FourCycle(), Mode: Sketched})
	if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
		t.Errorf("sketched value %v != fresh session %v", a.Value, b.Value)
	}
}
