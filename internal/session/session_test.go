package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
)

func newSession(t *testing.T, g *graph.Graph, opts ...Option) *Session {
	t.Helper()
	s, err := New(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t *testing.T, s *Session, k Kernel) Result {
	t.Helper()
	res, err := s.Run(context.Background(), k)
	if err != nil {
		t.Fatalf("%s: %v", k.Name(), err)
	}
	return res
}

// TestRunMatchesFlatKernels pins the bit-identity contract: Run produces
// exactly the value the corresponding free function produces on the same
// graph, seed, and configuration. Single worker keeps the float
// reductions deterministic.
func TestRunMatchesFlatKernels(t *testing.T) {
	g := graph.Kronecker(9, 10, 42)
	const seed, workers = 7, 1
	s := newSession(t, g, WithSeed(seed), WithWorkers(workers), WithBudget(0.25))

	o := g.Orient(workers)
	if got, want := mustRun(t, s, TC{Mode: Exact}).Value, float64(mining.ExactTC(o, workers)); got != want {
		t.Errorf("TC exact: %v != flat %v", got, want)
	}
	if got, want := mustRun(t, s, KClique{K: 4, Mode: Exact}).Value, float64(mining.Exact4Clique(o, workers)); got != want {
		t.Errorf("4-clique exact: %v != flat %v", got, want)
	}
	if got, want := mustRun(t, s, KClique{K: 5, Mode: Exact}).Value, float64(mining.ExactKClique(o, 5, workers)); got != want {
		t.Errorf("5-clique exact: %v != flat %v", got, want)
	}

	for _, kind := range []core.Kind{core.BF, core.KHash, core.OneHash, core.KMV} {
		sk, err := s.With(WithKind(kind))
		if err != nil {
			t.Fatal(err)
		}
		pg, err := core.Build(g, core.Config{Kind: kind, Budget: 0.25, Seed: seed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := mustRun(t, sk, TC{Mode: Sketched})
		if want := mining.PGTC(g, pg, workers); got.Value != want {
			t.Errorf("%v TC sketched: %v != flat %v", kind, got.Value, want)
		}
		if got.Kind != kind || got.Mode != Sketched {
			t.Errorf("%v TC sketched: result labeled %v/%v", kind, got.Kind, got.Mode)
		}
		if got, want := mustRun(t, sk, VertexSim{U: 3, V: 9, Measure: mining.Jaccard, Mode: Sketched}).Value,
			mining.PGSimilarity(g, pg, 3, 9, mining.Jaccard); got != want {
			t.Errorf("%v similarity sketched: %v != flat %v", kind, got, want)
		}
		gotC := mustRun(t, sk, JarvisPatrick{Measure: mining.CommonNeighbors, Tau: 2, Mode: Sketched})
		wantC := mining.JarvisPatrickPG(g, pg, mining.CommonNeighbors, 2, workers)
		if int(gotC.Value) != wantC.NumClusters || len(gotC.Clusters.Kept) != len(wantC.Kept) {
			t.Errorf("%v cluster sketched: %v clusters / %d kept != flat %d / %d",
				kind, gotC.Value, len(gotC.Clusters.Kept), wantC.NumClusters, len(wantC.Kept))
		}
	}

	// Sketched 4-clique over oriented BF sketches.
	opg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, Seed: seed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustRun(t, s, KClique{K: 4, Mode: Sketched}).Value, mining.PG4Clique(o, opg, workers); got != want {
		t.Errorf("4-clique sketched: %v != flat %v", got, want)
	}

	// Exact similarity and clustering.
	if got, want := mustRun(t, s, VertexSim{U: 3, V: 9, Measure: mining.Jaccard}).Value,
		mining.ExactSimilarity(g, 3, 9, mining.Jaccard); got != want {
		t.Errorf("similarity exact: %v != flat %v", got, want)
	}
	gotC := mustRun(t, s, JarvisPatrick{Measure: mining.CommonNeighbors, Tau: 2})
	wantC := mining.JarvisPatrickExact(g, mining.CommonNeighbors, 2, workers)
	if int(gotC.Value) != wantC.NumClusters {
		t.Errorf("cluster exact: %v != flat %d", gotC.Value, wantC.NumClusters)
	}

	// Link prediction: exact and sketched share the Session seed.
	gotL := mustRun(t, s, LinkPred{Measure: mining.CommonNeighbors, RemoveFrac: 0.1})
	wantL, err := mining.EvaluateLinkPrediction(g, mining.CommonNeighbors, 0.1, seed, nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	if gotL.LinkPred.Hits != wantL.Hits || gotL.Value != wantL.Efficiency {
		t.Errorf("linkpred exact: %+v != flat %+v", gotL.LinkPred, wantL)
	}

	// Local TC, whole-graph and single-vertex, against the flat forms.
	locals := mustRun(t, s, LocalTCAll{Mode: Exact})
	wantLocals := mining.LocalTC(g, workers)
	for v, c := range wantLocals {
		if locals.Locals[v] != float64(c) {
			t.Fatalf("localtc-all: vertex %d: %v != %d", v, locals.Locals[v], c)
		}
	}
	one := mustRun(t, s, LocalTC{U: 5, Mode: Exact})
	if one.Value != float64(wantLocals[5]) {
		t.Errorf("localtc(5): %v != %d", one.Value, wantLocals[5])
	}
	if got, want := mustRun(t, s, ClusteringCoeff{Mode: Exact}).Value, mining.LocalClusteringCoefficient(g, workers); got != want {
		t.Errorf("cc exact: %v != flat %v", got, want)
	}
}

func TestRunDistKernels(t *testing.T) {
	g := graph.Kronecker(8, 8, 3)
	s := newSession(t, g, WithSeed(5), WithWorkers(2))
	exact := mustRun(t, s, DistTC{Nodes: 4, Ship: dist.ShipNeighborhoods})
	if exact.Mode != Exact || exact.Net == nil || exact.Net.Bytes == 0 {
		t.Fatalf("dist-tc exact: %+v", exact)
	}
	o := g.Orient(2)
	if want := float64(mining.ExactTC(o, 2)); exact.Value != want {
		t.Errorf("dist-tc exact count %v, want %v", exact.Value, want)
	}
	sk := mustRun(t, s, DistTC{Nodes: 4, Ship: dist.ShipSketches})
	if sk.Mode != Sketched || sk.Net == nil || sk.Net.Bytes >= exact.Net.Bytes {
		t.Errorf("dist-tc sketched: mode %v, bytes %d vs exact %d", sk.Mode, sk.Net.Bytes, exact.Net.Bytes)
	}
	sim := mustRun(t, s, DistSim{Nodes: 4, Ship: dist.ShipSketches, Measure: mining.Jaccard})
	if sim.Mode != Sketched || sim.Net == nil {
		t.Errorf("dist-sim: %+v", sim)
	}
	if _, err := s.Run(context.Background(), DistSim{Nodes: 4, Ship: dist.ShipSketches, Measure: mining.AdamicAdar}); err == nil {
		t.Error("weighted measure must not be distributable")
	}
}

func TestRunValidationErrors(t *testing.T) {
	g := graph.Kronecker(7, 6, 1)
	s := newSession(t, g, WithWorkers(1))
	cases := []Kernel{
		TC{Mode: Mode(9)},
		KClique{K: 2},
		VertexSim{U: 1 << 30, V: 0},
		VertexSim{U: 0, V: 1, Measure: mining.Measure(99)},
		JarvisPatrick{Measure: mining.Measure(-1)},
		LinkPred{Measure: mining.Jaccard, RemoveFrac: 2},
		LocalTC{U: 1 << 30},
	}
	for _, k := range cases {
		if _, err := s.Run(context.Background(), k); err == nil {
			t.Errorf("%T %+v: expected an error", k, k)
		}
	}
	// Sketched k-clique (k != 4) needs Bloom filters — an error, not a panic.
	skh, err := s.With(WithKind(core.KHash))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := skh.Run(context.Background(), KClique{K: 5, Mode: Sketched}); err == nil {
		t.Error("PG k-clique on kH sketches must error")
	}
	if _, err := New(nil); err == nil {
		t.Error("New(nil) must error")
	}
	if _, err := New(g, WithBudget(2)); err == nil {
		t.Error("budget > 1 must error")
	}
	if _, err := s.Run(context.Background(), nil); err == nil {
		t.Error("nil kernel must error")
	}
}

// TestConcurrentRunsShareOneBuild exercises lazy-build idempotence: many
// concurrent Runs needing the same derived state agree exactly, under
// the race detector.
func TestConcurrentRunsShareOneBuild(t *testing.T) {
	g := graph.Kronecker(9, 8, 11)
	s := newSession(t, g, WithSeed(3), WithWorkers(2))
	const goroutines = 16
	values := make([]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kernels := []Kernel{
				TC{Mode: Sketched},
				KClique{K: 4, Mode: Sketched},
				VertexSim{U: 1, V: 2, Measure: mining.Jaccard, Mode: Sketched},
			}
			res, err := s.Run(context.Background(), kernels[i%len(kernels)])
			values[i], errs[i] = res.Value, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if j := i % 3; values[i] != values[j] {
			t.Errorf("goroutine %d: value %v differs from goroutine %d's %v", i, values[i], j, values[j])
		}
	}
	// Exactly two sketch builds can be resident: the full and the
	// oriented BF PG of the single configuration used above.
	if got := len(s.st.pgs); got != 2 {
		t.Errorf("state holds %d PGs, want 2 (full + oriented)", got)
	}
	if b := s.ResidentBytes(); b[core.BF.String()] == 0 {
		t.Errorf("ResidentBytes = %v, want BF bytes > 0", b)
	}
}

func TestRunCancellation(t *testing.T) {
	// Big enough that the exact kernel takes a while; the cancelled run
	// must come back orders of magnitude faster than completion.
	g := graph.Kronecker(13, 24, 2)
	s := newSession(t, g, WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.Run(ctx, TC{Mode: Exact})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	// A pre-cancelled context never starts the kernel.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.Run(ctx2, TC{Mode: Exact}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
}

func TestWithSharesState(t *testing.T) {
	g := graph.Kronecker(8, 8, 9)
	s := newSession(t, g, WithSeed(1), WithWorkers(1))
	mustRun(t, s, TC{Mode: Sketched})
	// A reconfigured view with only the worker count changed maps to the
	// same sketch build; a different seed maps to a new one.
	sw, err := s.With(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, sw, TC{Mode: Sketched})
	if got := len(s.st.pgs); got != 1 {
		t.Fatalf("worker-only reconfiguration rebuilt: %d PGs resident", got)
	}
	s2, err := s.With(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, s2, TC{Mode: Sketched})
	if got := len(s.st.pgs); got != 2 {
		t.Fatalf("seed reconfiguration did not build: %d PGs resident", got)
	}
	if s.Graph() != g || s2.Graph() != g {
		t.Fatal("sessions must share the graph")
	}
}

func TestResultMetadata(t *testing.T) {
	g := graph.Kronecker(8, 8, 4)
	s := newSession(t, g, WithKind(core.KHash), WithSeed(2), WithWorkers(1))
	res := mustRun(t, s, TC{Mode: Sketched})
	if res.Kernel != "tc" || res.Elapsed <= 0 {
		t.Errorf("metadata: %+v", res)
	}
	if res.Bound <= 0 || res.Confidence != 0.95 {
		t.Errorf("kH TC must carry a Thm VII.1 bound, got %v @ %v", res.Bound, res.Confidence)
	}
	if res.Count() != mining.RoundCount(res.Value) {
		t.Errorf("Count() = %d", res.Count())
	}
	exact := mustRun(t, s, TC{Mode: Exact})
	if exact.Bound != 0 || exact.Confidence != 0 {
		t.Errorf("exact TC must carry no bound: %+v", exact)
	}
}

// TestFullSketchSharedAcrossOrientations: full-neighborhood sketches are
// orientation-independent, so views differing only in WithOrientation
// share one build; oriented sketches key on their ordering.
func TestFullSketchSharedAcrossOrientations(t *testing.T) {
	g := graph.Kronecker(8, 8, 9)
	s := newSession(t, g, WithWorkers(1))
	ctx := context.Background()
	pg1, err := s.PG(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := s.With(WithOrientation(OrientDegeneracy))
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := sd.PG(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pg1 != pg2 {
		t.Fatal("full sketches must be shared across orientation views")
	}
	o1, err := s.OrientedPG(ctx)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := sd.OrientedPG(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Fatal("oriented sketches of different orderings must be distinct")
	}
}
