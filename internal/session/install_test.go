package session

import (
	"context"
	"fmt"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// TestInstallPG: a prebuilt PG seeds the cache (subsequent PG calls
// return it without building), mismatched installs are rejected, and an
// already-built slot wins over a late install.
func TestInstallPG(t *testing.T) {
	g := graph.Kronecker(7, 8, 1)
	sess, err := New(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := core.Build(g, core.Config{Kind: core.BF, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.InstallPG(pg)
	if err != nil || got != pg {
		t.Fatalf("install: %v, %v", got, err)
	}
	cached, err := sess.PG(context.Background())
	if err != nil || cached != pg {
		t.Fatal("PG() must return the installed sketch")
	}

	// A second install after the slot is occupied returns the resident PG.
	pg2, _ := core.Build(g, core.Config{Kind: core.BF, Seed: 5})
	got2, err := sess.InstallPG(pg2)
	if err != nil || got2 != pg {
		t.Fatal("late install must yield the resident PG")
	}

	// Mismatches are rejected.
	if _, err := sess.InstallPG(nil); err == nil {
		t.Fatal("nil install must error")
	}
	wrongKind, _ := core.Build(g, core.Config{Kind: core.KHash, Seed: 5})
	if _, err := sess.InstallPG(wrongKind); err == nil {
		t.Fatal("kind mismatch must error")
	}
	wrongSeed, _ := core.Build(g, core.Config{Kind: core.BF, Seed: 6})
	if _, err := sess.InstallPG(wrongSeed); err == nil {
		t.Fatal("seed mismatch must error")
	}
	small := graph.Kronecker(6, 8, 1)
	wrongN, _ := core.Build(small, core.Config{Kind: core.BF, Seed: 5})
	if _, err := sess.InstallPG(wrongN); err == nil {
		t.Fatal("vertex-count mismatch must error")
	}
}

// TestInstallOriented mirrors TestInstallPG for the orientation slot.
func TestInstallOriented(t *testing.T) {
	g := graph.Kronecker(7, 8, 2)
	sess, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	o := g.Orient(0)
	got, err := sess.InstallOriented(o)
	if err != nil || got != o {
		t.Fatalf("install: %v", err)
	}
	cached, err := sess.Oriented(context.Background())
	if err != nil || cached != o {
		t.Fatal("Oriented() must return the installed orientation")
	}
	if _, err := sess.InstallOriented(nil); err == nil {
		t.Fatal("nil install must error")
	}
	small := graph.Kronecker(6, 8, 2)
	if _, err := sess.InstallOriented(small.Orient(0)); err == nil {
		t.Fatal("vertex-count mismatch must error")
	}
}

// TestRefresh: without a source Refresh errors; with one it follows the
// source's graph and keeps the configuration (including the source).
func TestRefresh(t *testing.T) {
	g1 := graph.Kronecker(7, 8, 3)
	g2 := graph.Kronecker(7, 8, 4)

	plain, err := New(g1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Refresh(); err == nil {
		t.Fatal("Refresh without WithDynamic must error")
	}

	cur, err := New(g1)
	if err != nil {
		t.Fatal(err)
	}
	src := func() (*Session, error) { return cur, nil }
	sess, err := New(g1, WithDynamic(src), WithKind(core.KHash), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	same, err := sess.Refresh()
	if err != nil || same != sess {
		t.Fatalf("same-graph Refresh must return the receiver: %v", err)
	}

	cur, err = New(g2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if fresh == sess || fresh.Graph() != g2 {
		t.Fatal("Refresh must rebind to the source's new graph")
	}
	if fresh.Kind() != core.KHash || fresh.Seed() != 9 {
		t.Fatal("Refresh must keep the receiver's configuration")
	}
	// The refreshed session can refresh again (the source travels along).
	if again, err := fresh.Refresh(); err != nil || again != fresh {
		t.Fatalf("chained Refresh: %v", err)
	}

	// Source errors surface.
	bad, err := New(g1, WithDynamic(func() (*Session, error) { return nil, fmt.Errorf("boom") }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Refresh(); err == nil {
		t.Fatal("source error must surface")
	}
}
