package session

import (
	"context"
	"fmt"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/estimator"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/obs"
	"probgraph/internal/pattern"
)

// Mode selects between the exact CSR baseline and the ProbGraph sketch
// estimator of a kernel. The zero value is Exact.
type Mode int

const (
	// Exact runs the tuned CSR baseline.
	Exact Mode = iota
	// Sketched runs the PG-enhanced kernel over the Session's sketches.
	Sketched
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Sketched:
		return "sketched"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

func (m Mode) valid() bool { return m == Exact || m == Sketched }

// Result is the typed outcome of one kernel run: the scalar value, the
// Theorem VII.1 error bound where the theory provides one, wall-clock
// timing, and the kernel-specific payloads.
type Result struct {
	// Kernel and Mode echo what ran; Kind is the sketch representation
	// used (Sketched runs only).
	Kernel string
	Mode   Mode
	Kind   core.Kind

	// Value is the kernel's scalar result: the (estimated) count for the
	// counting kernels, the similarity score, the cluster count, the
	// link-prediction efficiency, the mean edge similarity for DistSim.
	Value float64

	// Bound is the half-width of the theoretical deviation guarantee at
	// Confidence (|result − truth| ≤ Bound with probability ≥ Confidence),
	// from internal/estimator; both are zero when no bound applies.
	Bound      float64
	Confidence float64

	// Elapsed is the kernel's wall-clock time, excluding cached derived
	// state that was already resident but including builds this run
	// triggered.
	Elapsed time.Duration

	// Kernel-specific payloads (nil/empty unless that kernel ran).
	Clusters *mining.Clustering
	LinkPred *mining.LinkPredResult
	Locals   []float64
	Net      *dist.NetStats
	// PatternStats carries the pattern kernel's execution counters
	// (candidates, sketch prunes, estimator calls).
	PatternStats *pattern.Stats
}

// Count rounds the non-negative Value to the nearest integer count.
func (r Result) Count() int64 { return mining.RoundCount(r.Value) }

// Kernel is one mining problem, ready to Run on a Session. Kernel values
// are plain structs (TC, KClique, VertexSim, ...); their zero values run
// the exact baseline.
type Kernel interface {
	// Name returns the kernel's short name for logs and bench records.
	Name() string

	run(ctx context.Context, s *Session) (Result, error)
}

// Run executes one kernel under the Session's configuration with
// cooperative cancellation: ctx is observed at the chunk boundaries of
// every parallel loop, and a cancelled run returns ctx.Err() within one
// chunk. (The explicit single-worker configuration runs each loop as
// one chunk to keep float results bit-identical to the flat API, so
// there cancellation is observed only between loops.) Derived state
// (orientation, sketches) is built lazily and cached; misconfiguration
// (out-of-range vertices, bad K, unsupported sketch/kernel
// combinations) is reported as an error, never a panic.
func (s *Session) Run(ctx context.Context, k Kernel) (Result, error) {
	if k == nil {
		return Result{}, fmt.Errorf("session: nil kernel")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "session/"+k.Name())
	res, err := k.run(ctx, s)
	if err != nil {
		sp.Attr("error", err.Error())
		sp.End()
		obs.Default().Counter("probgraph_session_kernel_errors_total",
			"Kernel runs that returned an error, by kernel.",
			obs.L("kernel", k.Name())).Inc()
		return Result{}, err
	}
	res.Kernel = k.Name()
	res.Elapsed = time.Since(start)
	sp.Attr("mode", res.Mode.String())
	sp.End()
	kernelHist(k.Name(), res.Mode).Record(res.Elapsed)
	return res, nil
}

// errMode rejects modes outside {Exact, Sketched}.
func errMode(kernel string, m Mode) error {
	return fmt.Errorf("session: %s: unknown mode %v", kernel, m)
}

// checkVertex validates a vertex ID against the Session's graph.
func (s *Session) checkVertex(v uint32) error {
	if n := s.st.g.NumVertices(); int64(v) >= int64(n) {
		return fmt.Errorf("session: vertex %d out of range [0,%d)", v, n)
	}
	return nil
}

// checkMeasure validates a Listing 3 measure.
func checkMeasure(m mining.Measure) error {
	if m < mining.Jaccard || m > mining.ResourceAllocation {
		return fmt.Errorf("session: unknown measure %d", int(m))
	}
	return nil
}

// tcBound evaluates the Theorem VII.1 deviation bound for the
// representation that produced the estimate, at 95% confidence. The
// k-Hash statement is exponential in k; the Bloom statement comes from
// the Prop. IV.1 MSE via Chebyshev and is valid only under its
// b·Δ ≤ 0.499·B·ln B precondition. The other representations have no TC
// bound in the paper and report zero.
func (s *Session) tcBound(pg *core.PG) (bound, conf float64) {
	const confidence = 0.95
	gm := s.Moments()
	switch pg.Cfg.Kind {
	case core.KHash:
		return estimator.TCDeviationMinHash(gm, pg.Cfg.K, confidence), confidence
	case core.BF:
		if t, valid := estimator.TCDeviationBF(gm, pg.Cfg.BloomBits, pg.Cfg.NumHashes, confidence); valid {
			return t, confidence
		}
	}
	return 0, 0
}

// TC is the triangle-counting kernel (Listing 1 / §VII).
type TC struct {
	Mode Mode
}

// Name implements Kernel.
func (TC) Name() string { return "tc" }

func (k TC) run(ctx context.Context, s *Session) (Result, error) {
	switch k.Mode {
	case Exact:
		o, err := s.Oriented(ctx)
		if err != nil {
			return Result{}, err
		}
		tc, err := mining.ExactTCCtx(ctx, o, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Exact, Value: float64(tc)}, nil
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		est, err := mining.PGTCCtx(ctx, s.st.g, pg, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		res := Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: est}
		_, bsp := obs.StartSpan(ctx, "bound/tc")
		res.Bound, res.Confidence = s.tcBound(pg)
		bsp.End()
		return res, nil
	}
	return Result{}, errMode("tc", k.Mode)
}

// PatternCount is the pattern-mining kernel: embeddings of a small
// query pattern (internal/pattern builtins or pattern.Parse edge
// lists) counted via a compiled symmetry-broken exploration plan.
// Exact mode enumerates; with Prune set, candidate extensions are
// pre-filtered by sound sketch membership rejects first, keeping the
// count bit-identical while skipping exact adjacency work. Sketched
// mode closes every partial embedding with a sketch intersection
// estimate (Listings 1/2 generalized) and reports the generalized
// Thm VII.1 bound where the theory provides one (pairwise-closing
// plans on BF/kH/1H; tree-closing plans are exact by construction).
type PatternCount struct {
	P     *pattern.Pattern
	Mode  Mode
	Prune bool
}

// Name implements Kernel.
func (PatternCount) Name() string { return "pattern" }

func (k PatternCount) run(ctx context.Context, s *Session) (Result, error) {
	if k.P == nil {
		return Result{}, fmt.Errorf("session: pattern kernel needs a pattern (see pattern.Parse)")
	}
	if !k.Mode.valid() {
		return Result{}, errMode("pattern", k.Mode)
	}
	pl, err := pattern.Compile(k.P)
	if err != nil {
		return Result{}, err
	}
	switch k.Mode {
	case Exact:
		var pg *core.PG
		if k.Prune {
			if pg, err = s.PG(ctx); err != nil {
				return Result{}, err
			}
		}
		n, st, err := pattern.CountExact(ctx, s.st.g, pl, pg, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		res := Result{Mode: Exact, Value: float64(n), PatternStats: &st}
		if pg != nil {
			res.Kind = pg.Cfg.Kind
		}
		return res, nil
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		est, st, err := pattern.CountEstimate(ctx, s.st.g, pl, pg, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		res := Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: est, PatternStats: &st}
		_, bsp := obs.StartSpan(ctx, "bound/pattern")
		res.Bound, res.Confidence = s.patternBound(pl, st, pg)
		bsp.End()
		return res, nil
	}
	return Result{}, errMode("pattern", k.Mode)
}

// patternBound evaluates the generalized Thm VII.1 deviation for one
// estimate run. Only pairwise closing estimators carry the theory:
// plans that closed through IntCard3 (triple back-edges) or made no
// estimator calls at all report no bound.
func (s *Session) patternBound(pl *pattern.Plan, st pattern.Stats, pg *core.PG) (bound, conf float64) {
	const confidence = 0.95
	if st.EstPairs == 0 || st.EstTriples > 0 {
		return 0, 0
	}
	switch pg.Cfg.Kind {
	case core.BF:
		gm := s.Moments()
		if t, valid := estimator.PatternDeviationBF(st.EstPairs, int64(pl.RelaxF),
			gm.MaxDegree, pg.Cfg.BloomBits, pg.Cfg.NumHashes, confidence); valid {
			return t, confidence
		}
	case core.KHash, core.OneHash:
		return estimator.PatternDeviationMinHash(st.SumSizes, st.EstPairs,
			int64(pl.RelaxF), pg.Cfg.K, confidence), confidence
	}
	return 0, 0
}

// KClique is the k-clique counting kernel (Listing 2 and its
// generalization); K = 4 runs the paper's reformulated 4-clique path.
// Sketched counting requires Bloom filters for K != 4.
type KClique struct {
	K    int
	Mode Mode
}

// Name implements Kernel.
func (KClique) Name() string { return "kclique" }

func (k KClique) run(ctx context.Context, s *Session) (Result, error) {
	if k.K < 3 {
		return Result{}, fmt.Errorf("session: kclique needs K >= 3, got %d", k.K)
	}
	if !k.Mode.valid() {
		// Reject before the orientation build: a misconfigured request
		// must not pay (or cache) any work.
		return Result{}, errMode("kclique", k.Mode)
	}
	o, err := s.Oriented(ctx)
	if err != nil {
		return Result{}, err
	}
	switch k.Mode {
	case Exact:
		var ck int64
		if k.K == 4 {
			ck, err = mining.Exact4CliqueCtx(ctx, o, s.cfg.workers)
		} else {
			ck, err = mining.ExactKCliqueCtx(ctx, o, k.K, s.cfg.workers)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Exact, Value: float64(ck)}, nil
	case Sketched:
		pg, err := s.OrientedPG(ctx)
		if err != nil {
			return Result{}, err
		}
		var est float64
		if k.K == 4 {
			est, err = mining.PG4CliqueCtx(ctx, o, pg, s.cfg.workers)
		} else {
			est, err = mining.PGKCliqueCtx(ctx, o, pg, k.K, s.cfg.workers)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: est}, nil
	}
	return Result{}, errMode("kclique", k.Mode)
}

// VertexSim scores one vertex pair with a Listing 3 similarity measure.
type VertexSim struct {
	U, V    uint32
	Measure mining.Measure
	Mode    Mode
}

// Name implements Kernel.
func (VertexSim) Name() string { return "similarity" }

func (k VertexSim) run(ctx context.Context, s *Session) (Result, error) {
	if err := s.checkVertex(k.U); err != nil {
		return Result{}, err
	}
	if err := s.checkVertex(k.V); err != nil {
		return Result{}, err
	}
	if err := checkMeasure(k.Measure); err != nil {
		return Result{}, err
	}
	switch k.Mode {
	case Exact:
		return Result{Mode: Exact, Value: mining.ExactSimilarity(s.st.g, k.U, k.V, k.Measure)}, nil
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		v := mining.PGSimilarity(s.st.g, pg, k.U, k.V, k.Measure)
		return Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: v}, nil
	}
	return Result{}, errMode("similarity", k.Mode)
}

// JarvisPatrick is the Listing 4 clustering kernel: edges scoring above
// Tau survive, clusters are the connected components of the kept graph.
type JarvisPatrick struct {
	Measure mining.Measure
	Tau     float64
	Mode    Mode
}

// Name implements Kernel.
func (JarvisPatrick) Name() string { return "cluster" }

func (k JarvisPatrick) run(ctx context.Context, s *Session) (Result, error) {
	if err := checkMeasure(k.Measure); err != nil {
		return Result{}, err
	}
	switch k.Mode {
	case Exact:
		c, err := mining.JarvisPatrickExactCtx(ctx, s.st.g, k.Measure, k.Tau, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Exact, Value: float64(c.NumClusters), Clusters: c}, nil
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		c, err := mining.JarvisPatrickPGCtx(ctx, s.st.g, pg, k.Measure, k.Tau, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: float64(c.NumClusters), Clusters: c}, nil
	}
	return Result{}, errMode("cluster", k.Mode)
}

// LinkPred is the Listing 5 link-prediction harness: RemoveFrac of the
// edges are hidden (0 means the standard 10%), candidates are scored on
// the sparsified graph, and the recovery efficiency is reported. The
// Session's seed drives the edge removal, so exact and sketched runs of
// one Session hide the same edges.
type LinkPred struct {
	Measure    mining.Measure
	RemoveFrac float64
	Mode       Mode
}

// Name implements Kernel.
func (LinkPred) Name() string { return "linkpred" }

func (k LinkPred) run(ctx context.Context, s *Session) (Result, error) {
	if err := checkMeasure(k.Measure); err != nil {
		return Result{}, err
	}
	frac := k.RemoveFrac
	if frac == 0 {
		frac = 0.1
	}
	if frac < 0 || frac > 1 {
		return Result{}, fmt.Errorf("session: linkpred remove fraction %v outside (0,1]", frac)
	}
	var pgCfg *core.Config
	switch k.Mode {
	case Exact:
	case Sketched:
		cfg := s.coreConfig()
		pgCfg = &cfg
	default:
		return Result{}, errMode("linkpred", k.Mode)
	}
	r, err := mining.EvaluateLinkPredictionCtx(ctx, s.st.g, k.Measure, frac, s.cfg.seed, pgCfg, s.cfg.workers)
	if err != nil {
		return Result{}, err
	}
	res := Result{Mode: k.Mode, Value: r.Efficiency, LinkPred: r}
	if k.Mode == Sketched {
		res.Kind = s.cfg.kind
	}
	return res, nil
}

// LocalTC counts the triangles through one vertex — the §III-A spam /
// community signal, served per-vertex by the online engine.
type LocalTC struct {
	U    uint32
	Mode Mode
}

// Name implements Kernel.
func (LocalTC) Name() string { return "localtc" }

func (k LocalTC) run(ctx context.Context, s *Session) (Result, error) {
	if err := s.checkVertex(k.U); err != nil {
		return Result{}, err
	}
	g := s.st.g
	nv := g.Neighbors(k.U)
	switch k.Mode {
	case Exact:
		var c int64
		for _, u := range nv {
			c += int64(graph.IntersectCount(nv, g.Neighbors(u)))
		}
		return Result{Mode: Exact, Value: float64(c / 2)}, nil
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		var c float64
		if len(nv) > 0 {
			c = pg.IntCardSum(k.U, nv, make([]int32, len(nv)))
		}
		return Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: c / 2}, nil
	}
	return Result{}, errMode("localtc", k.Mode)
}

// LocalTCAll computes the triangles through every vertex; Locals carries
// the per-vertex counts and Value their sum over 3 (the implied global
// triangle count).
type LocalTCAll struct {
	Mode Mode
}

// Name implements Kernel.
func (LocalTCAll) Name() string { return "localtc-all" }

func (k LocalTCAll) run(ctx context.Context, s *Session) (Result, error) {
	var locals []float64
	res := Result{Mode: k.Mode}
	switch k.Mode {
	case Exact:
		counts, err := mining.LocalTCCtx(ctx, s.st.g, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		locals = make([]float64, len(counts))
		for i, c := range counts {
			locals[i] = float64(c)
		}
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		locals, err = mining.PGLocalTCCtx(ctx, s.st.g, pg, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		res.Kind = pg.Cfg.Kind
	default:
		return Result{}, errMode("localtc-all", k.Mode)
	}
	var sum float64
	for _, c := range locals {
		sum += c
	}
	res.Locals = locals
	res.Value = sum / 3 // every triangle is local to exactly three vertices
	return res, nil
}

// ClusteringCoeff computes the average local clustering coefficient.
type ClusteringCoeff struct {
	Mode Mode
}

// Name implements Kernel.
func (ClusteringCoeff) Name() string { return "cc" }

func (k ClusteringCoeff) run(ctx context.Context, s *Session) (Result, error) {
	switch k.Mode {
	case Exact:
		cc, err := mining.LocalClusteringCoefficientCtx(ctx, s.st.g, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Exact, Value: cc}, nil
	case Sketched:
		pg, err := s.PG(ctx)
		if err != nil {
			return Result{}, err
		}
		cc, err := mining.PGLocalClusteringCoefficientCtx(ctx, s.st.g, pg, s.cfg.workers)
		if err != nil {
			return Result{}, err
		}
		return Result{Mode: Sketched, Kind: pg.Cfg.Kind, Value: cc}, nil
	}
	return Result{}, errMode("cc", k.Mode)
}

// DistTC runs triangle counting over the simulated distributed-memory
// cluster of internal/dist; Ship selects the §VIII-F wire protocol (the
// mode follows it: ShipNeighborhoods is exact, ShipSketches estimates
// over the Session's oriented sketches). Net carries the byte accounting.
type DistTC struct {
	Nodes int
	Ship  dist.Mode
}

// Name implements Kernel.
func (DistTC) Name() string { return "dist-tc" }

func (k DistTC) run(ctx context.Context, s *Session) (Result, error) {
	o, err := s.Oriented(ctx)
	if err != nil {
		return Result{}, err
	}
	res := Result{Mode: Exact}
	var pg *core.PG
	if k.Ship == dist.ShipSketches {
		if pg, err = s.OrientedPG(ctx); err != nil {
			return Result{}, err
		}
		res.Mode, res.Kind = Sketched, pg.Cfg.Kind
	}
	r, err := dist.TCCtx(ctx, s.st.g, o, pg, k.Nodes, k.Ship)
	if err != nil {
		return Result{}, err
	}
	res.Value, res.Net = r.Count, &r.Net
	return res, nil
}

// DistSim runs distributed mean edge similarity over the simulated
// cluster; only the counting measures are distributable (§VIII-F).
type DistSim struct {
	Nodes   int
	Ship    dist.Mode
	Measure mining.Measure
}

// Name implements Kernel.
func (DistSim) Name() string { return "dist-sim" }

func (k DistSim) run(ctx context.Context, s *Session) (Result, error) {
	if err := checkMeasure(k.Measure); err != nil {
		return Result{}, err
	}
	res := Result{Mode: Exact}
	var pg *core.PG
	if k.Ship == dist.ShipSketches {
		var err error
		if pg, err = s.PG(ctx); err != nil {
			return Result{}, err
		}
		res.Mode, res.Kind = Sketched, pg.Cfg.Kind
	}
	r, err := dist.SimCtx(ctx, s.st.g, pg, k.Nodes, k.Ship, k.Measure)
	if err != nil {
		return Result{}, err
	}
	res.Value, res.Net = r.Count, &r.Net
	return res, nil
}
