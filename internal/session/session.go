// Package session implements the unified ProbGraph entry point: a
// Session binds one immutable Graph to lazily-built, cached derived
// state — the degree- and degeneracy-ordered orientations, one PG per
// distinct sketch configuration (Kind, Budget, Seed, ...), and the
// degree moments the Theorem VII.1 bounds consume — and runs every
// mining kernel, exact or sketched, through one context-aware call:
//
//	sess, _ := session.New(g, session.WithBudget(0.25), session.WithSeed(42))
//	res, err := sess.Run(ctx, session.TC{Mode: session.Sketched})
//
// Derived state is built at most once per Session regardless of how many
// concurrent Run calls need it (callers needing the same artifact share
// one build), and a Session reconfigured with With shares its parent's
// caches, so flipping the sketch kind or the worker count never rebuilds
// what is already resident. Kernel results are bit-identical to the
// corresponding free functions of internal/mining on the same inputs:
// the Session only adds caching, validation, and cancellation around
// them.
package session

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"probgraph/internal/core"
	"probgraph/internal/estimator"
	"probgraph/internal/graph"
	"probgraph/internal/kernels"
	"probgraph/internal/obs"
)

// OrientKind selects which cached orientation the counting kernels use.
type OrientKind int

const (
	// OrientDegree is the degree ordering of Listings 1–2 (the default).
	OrientDegree OrientKind = iota
	// OrientDegeneracy is the k-core peeling order, which bounds every
	// oriented out-degree by the graph's degeneracy.
	OrientDegeneracy
)

// String returns the orientation name.
func (o OrientKind) String() string {
	switch o {
	case OrientDegree:
		return "degree"
	case OrientDegeneracy:
		return "degeneracy"
	}
	return fmt.Sprintf("OrientKind(%d)", int(o))
}

// config is a Session's view of the sketch and execution parameters.
// Sessions copy it on With, so reconfigured views are independent.
type config struct {
	workers    int
	seed       uint64
	kind       core.Kind
	est        core.Estimator
	budget     float64
	numHashes  int
	sketchK    int
	storeElems bool
	orient     OrientKind
	source     func() (*Session, error)
}

// Option configures a Session (functional options).
type Option func(*config)

// WithWorkers bounds kernel and build parallelism (<=0: all cores).
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithSeed sets the seed driving every hash family and the link
// prediction edge removal; identical seeds reproduce results exactly.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithKind selects the sketch representation (default core.BF).
func WithKind(k core.Kind) Option { return func(c *config) { c.kind = k } }

// WithEstimator selects the |X∩Y| estimator within the representation.
func WithEstimator(e core.Estimator) Option { return func(c *config) { c.est = e } }

// WithBudget sets the storage budget s ∈ (0, 1] (default 0.25).
func WithBudget(s float64) Option { return func(c *config) { c.budget = s } }

// WithNumHashes sets the Bloom hash-function count b (default 2).
func WithNumHashes(b int) Option { return func(c *config) { c.numHashes = b } }

// WithSketchK fixes the MinHash/KMV sketch size instead of deriving it
// from the budget.
func WithSketchK(k int) Option { return func(c *config) { c.sketchK = k } }

// WithStoreElems makes 1-Hash sketches retain element IDs, enabling the
// sample-based weighted measures and the sampled 4-clique path.
func WithStoreElems(on bool) Option { return func(c *config) { c.storeElems = on } }

// WithOrientation selects the orientation the counting kernels run over
// (default OrientDegree, matching the flat API).
func WithOrientation(o OrientKind) Option { return func(c *config) { c.orient = o } }

// WithDynamic attaches a source of refreshed Sessions — typically
// (*stream.DynamicGraph).SessionSource — so Refresh can rebind this
// Session to the latest frozen epoch of an evolving graph. The source is
// expected to return a Session whose caches already hold the epoch's
// incrementally-maintained sketches, so a refreshed Session never pays a
// from-scratch build for resident state.
func WithDynamic(src func() (*Session, error)) Option {
	return func(c *config) { c.source = src }
}

// cell is a build-once cache slot: every caller shares one build and its
// outcome, which is what makes concurrent lazy construction idempotent.
type cell[T any] struct {
	once sync.Once
	done atomic.Bool // set after the build completes; gates peek
	val  T
	err  error
}

func (c *cell[T]) get(build func() (T, error)) (T, error) {
	c.once.Do(func() {
		c.val, c.err = build()
		c.done.Store(true)
	})
	return c.val, c.err
}

// peek returns the built value without triggering a build.
func (c *cell[T]) peek() (T, bool) {
	var zero T
	if !c.done.Load() {
		return zero, false
	}
	return c.val, true
}

// pgKey identifies one distinct sketch build. Two Sessions over the same
// state that agree on every field share the resident PG.
type pgKey struct {
	kind       core.Kind
	est        core.Estimator
	budget     float64
	numHashes  int
	sketchK    int
	storeElems bool
	seed       uint64
	oriented   bool
	orient     OrientKind
}

// state is the shared cache behind one graph: all Sessions derived from
// the same New call point at one state, whatever their configuration.
type state struct {
	g *graph.Graph

	mu       sync.Mutex
	oriented map[OrientKind]*cell[*graph.Oriented]
	pgs      map[pgKey]*cell[*core.PG]
	moments  cell[estimator.GraphMoments]
}

// Session is the unified entry point: an immutable graph plus cached
// derived state, configured by functional options. Sessions are safe for
// concurrent use; With produces cheap reconfigured views sharing the
// same caches.
type Session struct {
	st  *state
	cfg config
}

// New binds a Session to a graph. The zero configuration uses all cores,
// Bloom filters at the default 25% budget, seed 0, and the degree
// orientation — matching the flat package-level API.
func New(g *graph.Graph, opts ...Option) (*Session, error) {
	if g == nil {
		return nil, fmt.Errorf("session: nil graph")
	}
	cfg := config{kind: core.BF}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Session{
		st: &state{
			g:        g,
			oriented: make(map[OrientKind]*cell[*graph.Oriented]),
			pgs:      make(map[pgKey]*cell[*core.PG]),
		},
		cfg: cfg,
	}, nil
}

func (c config) validate() error {
	if c.budget < 0 || c.budget > 1 {
		return fmt.Errorf("session: budget s=%v outside [0,1]", c.budget)
	}
	if c.sketchK < 0 {
		return fmt.Errorf("session: sketch k=%d must be non-negative", c.sketchK)
	}
	switch c.orient {
	case OrientDegree, OrientDegeneracy:
	default:
		return fmt.Errorf("session: unknown orientation %v", c.orient)
	}
	return nil
}

// With returns a Session sharing this one's graph and cached derived
// state under a modified configuration. Artifacts the new configuration
// maps to the same build (e.g. only the worker count changed) stay
// shared; others are built lazily on first use.
func (s *Session) With(opts ...Option) (*Session, error) {
	ns := &Session{st: s.st, cfg: s.cfg}
	for _, o := range opts {
		o(&ns.cfg)
	}
	if err := ns.cfg.validate(); err != nil {
		return nil, err
	}
	return ns, nil
}

// Graph returns the bound graph.
func (s *Session) Graph() *graph.Graph { return s.st.g }

// Workers returns the configured worker bound (<=0: all cores).
func (s *Session) Workers() int { return s.cfg.workers }

// Kind returns the configured sketch representation.
func (s *Session) Kind() core.Kind { return s.cfg.kind }

// Seed returns the configured seed.
func (s *Session) Seed() uint64 { return s.cfg.seed }

// coreConfig assembles the core.Config of this Session's sketch builds.
func (s *Session) coreConfig() core.Config {
	return core.Config{
		Kind:       s.cfg.kind,
		Est:        s.cfg.est,
		Budget:     s.cfg.budget,
		NumHashes:  s.cfg.numHashes,
		K:          s.cfg.sketchK,
		StoreElems: s.cfg.storeElems,
		Seed:       s.cfg.seed,
		Workers:    s.cfg.workers,
	}
}

func (s *Session) key(oriented bool) pgKey {
	k := pgKey{
		kind:       s.cfg.kind,
		est:        s.cfg.est,
		budget:     s.cfg.budget,
		numHashes:  s.cfg.numHashes,
		sketchK:    s.cfg.sketchK,
		storeElems: s.cfg.storeElems,
		seed:       s.cfg.seed,
		oriented:   oriented,
	}
	// Full-neighborhood sketches do not depend on any orientation, so
	// sessions differing only in WithOrientation share them; only the
	// oriented builds key on the ordering they sketched.
	if oriented {
		k.orient = s.cfg.orient
	}
	return k
}

// Oriented returns the configured orientation, building and caching it
// on first use. The build itself is not cancellable (it is one parallel
// pass); ctx gates only whether it starts.
func (s *Session) Oriented(ctx context.Context) (*graph.Oriented, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s.st.mu.Lock()
	c, ok := s.st.oriented[s.cfg.orient]
	if !ok {
		c = &cell[*graph.Oriented]{}
		s.st.oriented[s.cfg.orient] = c
	}
	s.st.mu.Unlock()
	orient, workers := s.cfg.orient, s.cfg.workers
	return c.get(func() (*graph.Oriented, error) {
		// The build runs once per Session state; the leader's context
		// carries the span, so a trace shows who paid for the build.
		_, sp := obs.StartSpan(ctx, "build/orient")
		defer sp.End()
		sp.Attr("orient", orient.String())
		if orient == OrientDegeneracy {
			return s.st.g.OrientBy(s.st.g.DegeneracyRank(), workers), nil
		}
		return s.st.g.Orient(workers), nil
	})
}

// PG returns the full-neighborhood ProbGraph of the current sketch
// configuration, building and caching it on first use.
func (s *Session) PG(ctx context.Context) (*core.PG, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	c := s.pgCell(s.key(false))
	return c.get(func() (*core.PG, error) {
		_, sp := obs.StartSpan(ctx, "build/pg")
		defer sp.End()
		sp.Attr("kind", s.cfg.kind.String())
		// One arena per build: the sketch rows land in a single
		// contiguous slab, which the batched kernels stream in order.
		return core.BuildArena(s.st.g, s.coreConfig(), new(kernels.Arena))
	})
}

// OrientedPG returns the oriented-neighborhood ProbGraph (the clique
// kernels' input), building the orientation first if needed.
func (s *Session) OrientedPG(ctx context.Context) (*core.PG, error) {
	o, err := s.Oriented(ctx)
	if err != nil {
		return nil, err
	}
	c := s.pgCell(s.key(true))
	return c.get(func() (*core.PG, error) {
		_, sp := obs.StartSpan(ctx, "build/pg-oriented")
		defer sp.End()
		sp.Attr("kind", s.cfg.kind.String())
		return core.BuildOrientedArena(o, s.st.g.SizeBits(), s.coreConfig(), new(kernels.Arena))
	})
}

func (s *Session) pgCell(k pgKey) *cell[*core.PG] {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	c, ok := s.st.pgs[k]
	if !ok {
		c = &cell[*core.PG]{}
		s.st.pgs[k] = c
	}
	return c
}

// Moments returns the graph's degree moments (cached), the quantities
// the Theorem VII.1 error bounds consume.
func (s *Session) Moments() estimator.GraphMoments {
	v, _ := s.st.moments.get(func() (estimator.GraphMoments, error) {
		g := s.st.g
		degs := make([]int, g.NumVertices())
		for v := range degs {
			degs[v] = g.Degree(uint32(v))
		}
		return estimator.Moments(degs, g.NumEdges()), nil
	})
	return v
}

// ResidentBytes reports the memory of every sketch currently cached in
// the Session's state, keyed by the sketch kind's name (duplicate kinds
// under different parameters accumulate).
func (s *Session) ResidentBytes() map[string]int64 {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	out := make(map[string]int64, len(s.st.pgs))
	for k, c := range s.st.pgs {
		if pg, ok := c.peek(); ok && pg != nil {
			out[k.kind.String()] += pg.MemoryBytes()
		}
	}
	return out
}

// Refresh rebinds the Session to the dynamic source's current epoch (see
// WithDynamic): it returns a Session over the source's graph and shared
// caches under the receiver's configuration. When the source still serves
// the same graph, the receiver itself is returned and every resident
// artifact is kept; after an epoch change the returned Session shares the
// source's caches (the new epoch's installed sketches) instead. Without a
// source, Refresh reports an error.
func (s *Session) Refresh() (*Session, error) {
	if s.cfg.source == nil {
		return nil, fmt.Errorf("session: Refresh needs a WithDynamic source")
	}
	ns, err := s.cfg.source()
	if err != nil {
		return nil, fmt.Errorf("session: refresh: %w", err)
	}
	if ns == nil {
		return nil, fmt.Errorf("session: refresh: dynamic source returned no Session")
	}
	if ns.st == s.st || ns.st.g == s.st.g {
		return s, nil
	}
	// Keep the receiver's configuration (including the source, so the
	// refreshed Session can refresh again) over the new epoch's caches.
	return &Session{st: ns.st, cfg: s.cfg}, nil
}

// InstallPG seeds the Session's cache with a prebuilt full-neighborhood
// ProbGraph — the hand-off from incremental maintenance (stream) to
// serving: a Freeze installs its maintained sketches so no query ever
// pays a from-scratch build. The returned PG is the resident one: the
// argument if the slot was empty, the already-built PG otherwise. The PG
// must cover the Session's graph and match its kind and seed; the caller
// vouches for the remaining parameters (a maintained sketch's derived
// geometry is pinned at its own creation, not re-derived here).
func (s *Session) InstallPG(pg *core.PG) (*core.PG, error) {
	if pg == nil {
		return nil, fmt.Errorf("session: install of nil PG")
	}
	if pg.NumVertices() != s.st.g.NumVertices() {
		return nil, fmt.Errorf("session: installed PG covers %d vertices, graph has %d",
			pg.NumVertices(), s.st.g.NumVertices())
	}
	if pg.Cfg.Kind != s.cfg.kind || pg.Cfg.Seed != s.cfg.seed {
		return nil, fmt.Errorf("session: installed PG is (%v, seed %d), session wants (%v, seed %d)",
			pg.Cfg.Kind, pg.Cfg.Seed, s.cfg.kind, s.cfg.seed)
	}
	c := s.pgCell(s.key(false))
	return c.get(func() (*core.PG, error) { return pg, nil })
}

// InstallOriented seeds the Session's cache for the configured
// orientation with a prebuilt one. Returns the resident orientation
// (the argument, or an earlier build that won the slot).
func (s *Session) InstallOriented(o *graph.Oriented) (*graph.Oriented, error) {
	if o == nil {
		return nil, fmt.Errorf("session: install of nil orientation")
	}
	if o.NumVertices() != s.st.g.NumVertices() {
		return nil, fmt.Errorf("session: installed orientation covers %d vertices, graph has %d",
			o.NumVertices(), s.st.g.NumVertices())
	}
	s.st.mu.Lock()
	c, ok := s.st.oriented[s.cfg.orient]
	if !ok {
		c = &cell[*graph.Oriented]{}
		s.st.oriented[s.cfg.orient] = c
	}
	s.st.mu.Unlock()
	return c.get(func() (*graph.Oriented, error) { return o, nil })
}

// ctxErr tolerates a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
