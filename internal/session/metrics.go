package session

import (
	"sync"

	"probgraph/internal/obs"
)

// kernelHists caches the per-(kernel, mode) latency histograms so the
// hot Run path pays one sync.Map read instead of rendering registry
// labels on every kernel call.
var kernelHists sync.Map // "tc/sketched" → *obs.Hist

// kernelHist returns the shared wall-clock histogram of one kernel/mode
// combination, registered on the default registry on first use.
func kernelHist(kernel string, mode Mode) *obs.Hist {
	key := kernel + "/" + mode.String()
	if h, ok := kernelHists.Load(key); ok {
		return h.(*obs.Hist)
	}
	h := obs.Default().Histogram("probgraph_session_kernel_seconds",
		"Kernel wall-clock time, by kernel and mode.",
		obs.L("kernel", kernel), obs.L("mode", mode.String()))
	actual, _ := kernelHists.LoadOrStore(key, h)
	return actual.(*obs.Hist)
}
