// Package par provides the parallel building blocks used throughout
// ProbGraph: a dynamic parallel-for (the Go analogue of the paper's
// "[in par]" OpenMP loops, §VI-B), parallel sum reductions, and explicit
// worker-count control so the scaling experiments (Fig. 8/9) can sweep
// thread counts deterministically.
//
// Scheduling is dynamic: workers pull fixed-size chunks from a shared
// atomic counter. This mirrors OpenMP's schedule(dynamic) and is what
// gives the exact CSR baselines a fair chance on skewed-degree graphs;
// ProbGraph's fixed-size sketches then remove the residual imbalance
// within a chunk (Fig. 1, panel 5).
//
// Every loop has a context-aware variant (ForCtx, ForChunkedCtx,
// ReduceInt64Ctx, ReduceFloat64Ctx) that observes cancellation at chunk
// boundaries: no new chunk is started after the context is cancelled,
// chunks already in flight run to completion, and the first observed
// ctx.Err() is returned. A context whose Done channel is nil (such as
// context.Background()) adds no overhead to the hot path.
//
// Contract: scheduling is nondeterministic but chunk boundaries are
// not — a chunked loop partitions [0, n) identically for every worker
// count, which is what lets callers build bit-identical float results
// on top of dynamic scheduling: compute per-chunk partials, merge them
// in chunk order (see internal/pattern's chunkSize contract). Callers
// passing an explicit chunk size must pass a positive one or use
// chunk <= 0 to select the automatic size; workers <= 0 means
// DefaultWorkers().
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the runtime's GOMAXPROCS setting.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Chunk computes a reasonable chunk size for n items across w workers:
// enough chunks for dynamic balancing (≈8 per worker) without excessive
// contention on the shared counter.
func Chunk(n, w int) int {
	c := n / (w * 8)
	if c < 1 {
		c = 1
	}
	return c
}

// For runs body(i) for every i in [0, n) using the given number of
// workers (<=0 means DefaultWorkers). Iterations must be independent;
// body must synchronize any shared writes itself.
func For(n, workers int, body func(i int)) {
	ForCtx(context.Background(), n, workers, body)
}

// ForCtx is For with cooperative cancellation: after ctx is cancelled no
// new chunk is started, and ctx.Err() is returned. Chunks already in
// flight finish, so the latency of cancellation is one chunk.
func ForCtx(ctx context.Context, n, workers int, body func(i int)) error {
	return ForChunkedCtx(ctx, n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body(lo, hi) over disjoint chunks covering [0, n).
// chunk <= 0 selects an automatic size. Each worker pulls chunks from a
// shared atomic cursor until the range is exhausted.
func ForChunked(n, workers, chunk int, body func(lo, hi int)) {
	ForChunkedCtx(context.Background(), n, workers, chunk, body)
}

// ForChunkedCtx is ForChunked with cooperative cancellation at chunk
// boundaries. It returns nil when every chunk ran, ctx.Err() when
// cancellation cut the loop short. A single worker always runs the
// range as ForChunked's one body(0, n) chunk — whatever the context —
// so single-worker results are bit-identical to the non-ctx form;
// cancellation is then observed only before the run starts.
func ForChunkedCtx(ctx context.Context, n, workers, chunk int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	done := ctxDone(ctx)
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		if Cancelled(done) {
			return ctx.Err()
		}
		body(0, n)
		return nil
	}
	if chunk <= 0 {
		chunk = Chunk(n, workers)
	}
	var stopped atomic.Bool
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if Cancelled(done) {
					stopped.Store(true)
					return
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	if stopped.Load() {
		return ctx.Err()
	}
	return nil
}

// SumInt64 computes sum over i in [0,n) of body(i) in parallel, combining
// per-worker partial sums (no atomics on the hot path).
func SumInt64(n, workers int, body func(i int) int64) int64 {
	return ReduceInt64(n, workers, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += body(i)
		}
		return s
	})
}

// SumFloat64 is SumInt64 for float64 bodies. The combination order of
// partial sums is nondeterministic; callers needing bit-exact
// reproducibility should use a single worker.
func SumFloat64(n, workers int, body func(i int) float64) float64 {
	return ReduceFloat64(n, workers, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += body(i)
		}
		return s
	})
}

// ReduceInt64 computes the sum of body(lo,hi) over disjoint chunks
// covering [0,n), in parallel.
func ReduceInt64(n, workers int, body func(lo, hi int) int64) int64 {
	v, _ := reduceCtx(context.Background(), n, workers, body)
	return v
}

// ReduceInt64Ctx is ReduceInt64 with cooperative cancellation at chunk
// boundaries; on cancellation it returns 0 and ctx.Err().
func ReduceInt64Ctx(ctx context.Context, n, workers int, body func(lo, hi int) int64) (int64, error) {
	return reduceCtx(ctx, n, workers, body)
}

// ReduceFloat64 is ReduceInt64 for float64 partials.
func ReduceFloat64(n, workers int, body func(lo, hi int) float64) float64 {
	v, _ := reduceCtx(context.Background(), n, workers, body)
	return v
}

// ReduceFloat64Ctx is ReduceFloat64 with cooperative cancellation at
// chunk boundaries; on cancellation it returns 0 and ctx.Err().
func ReduceFloat64Ctx(ctx context.Context, n, workers int, body func(lo, hi int) float64) (float64, error) {
	return reduceCtx(ctx, n, workers, body)
}

// reduceCtx is the shared implementation behind the typed reductions:
// per-worker private partial sums, combined in worker-index order. A
// single worker always evaluates the range as one body(0, n) call so
// its summation grouping — and therefore the float result — is
// bit-identical whether or not the context is cancellable (the
// single-worker configuration is exactly the one chosen for
// deterministic results); cancellation is then observed only before
// the run starts.
func reduceCtx[T int64 | float64](ctx context.Context, n, workers int, body func(lo, hi int) T) (T, error) {
	var zero T
	if n <= 0 {
		return zero, nil
	}
	done := ctxDone(ctx)
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		if Cancelled(done) {
			return zero, ctx.Err()
		}
		return body(0, n), nil
	}
	chunk := Chunk(n, workers)
	var stopped atomic.Bool
	partial := make([]T, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var s T
			for {
				if Cancelled(done) {
					stopped.Store(true)
					break
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				s += body(lo, hi)
			}
			partial[w] = s
		}(w)
	}
	wg.Wait()
	if stopped.Load() {
		return zero, ctx.Err()
	}
	var total T
	for _, s := range partial {
		total += s
	}
	return total, nil
}

// ctxDone returns ctx.Done(), tolerating a nil context.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Cancelled polls a done channel (ctx.Done()) without blocking — the
// chunk-boundary cancellation check, shared by every loop here and by
// the simulated distributed workers. A nil channel costs one comparison.
func Cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ExclusiveScan replaces counts with its exclusive prefix sum in place and
// returns the grand total. Used by CSR construction (offsets from degrees).
func ExclusiveScan(counts []int64) int64 {
	var run int64
	for i, c := range counts {
		counts[i] = run
		run += c
	}
	return run
}
