// Package par provides the parallel building blocks used throughout
// ProbGraph: a dynamic parallel-for (the Go analogue of the paper's
// "[in par]" OpenMP loops, §VI-B), parallel sum reductions, and explicit
// worker-count control so the scaling experiments (Fig. 8/9) can sweep
// thread counts deterministically.
//
// Scheduling is dynamic: workers pull fixed-size chunks from a shared
// atomic counter. This mirrors OpenMP's schedule(dynamic) and is what
// gives the exact CSR baselines a fair chance on skewed-degree graphs;
// ProbGraph's fixed-size sketches then remove the residual imbalance
// within a chunk (Fig. 1, panel 5).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the runtime's GOMAXPROCS setting.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Chunk computes a reasonable chunk size for n items across w workers:
// enough chunks for dynamic balancing (≈8 per worker) without excessive
// contention on the shared counter.
func Chunk(n, w int) int {
	c := n / (w * 8)
	if c < 1 {
		c = 1
	}
	return c
}

// For runs body(i) for every i in [0, n) using the given number of
// workers (<=0 means DefaultWorkers). Iterations must be independent;
// body must synchronize any shared writes itself.
func For(n, workers int, body func(i int)) {
	ForChunked(n, workers, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body(lo, hi) over disjoint chunks covering [0, n).
// chunk <= 0 selects an automatic size. Each worker pulls chunks from a
// shared atomic cursor until the range is exhausted.
func ForChunked(n, workers, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	if chunk <= 0 {
		chunk = Chunk(n, workers)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// SumInt64 computes sum over i in [0,n) of body(i) in parallel, combining
// per-worker partial sums (no atomics on the hot path).
func SumInt64(n, workers int, body func(i int) int64) int64 {
	return ReduceInt64(n, workers, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += body(i)
		}
		return s
	})
}

// SumFloat64 is SumInt64 for float64 bodies. The combination order of
// partial sums is nondeterministic; callers needing bit-exact
// reproducibility should use a single worker.
func SumFloat64(n, workers int, body func(i int) float64) float64 {
	return ReduceFloat64(n, workers, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += body(i)
		}
		return s
	})
}

// ReduceInt64 computes the sum of body(lo,hi) over disjoint chunks
// covering [0,n), in parallel.
func ReduceInt64(n, workers int, body func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return body(0, n)
	}
	chunk := Chunk(n, workers)
	partial := make([]int64, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var s int64
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				s += body(lo, hi)
			}
			partial[w] = s
		}(w)
	}
	wg.Wait()
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// ReduceFloat64 is ReduceInt64 for float64 partials.
func ReduceFloat64(n, workers int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return body(0, n)
	}
	chunk := Chunk(n, workers)
	partial := make([]float64, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var s float64
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				s += body(lo, hi)
			}
			partial[w] = s
		}(w)
	}
	wg.Wait()
	var total float64
	for _, s := range partial {
		total += s
	}
	return total
}

// ExclusiveScan replaces counts with its exclusive prefix sum in place and
// returns the grand total. Used by CSR construction (offsets from degrees).
func ExclusiveScan(counts []int64) int64 {
	var run int64
	for i, c := range counts {
		counts[i] = run
		run += c
	}
	return run
}
