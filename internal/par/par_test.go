package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 100, 1001} {
			seen := make([]atomic.Int32, n)
			For(n, workers, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	n := 1000
	var total atomic.Int64
	ForChunked(n, 4, 7, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("covered %d of %d items", total.Load(), n)
	}
}

func TestSumInt64MatchesSerial(t *testing.T) {
	n := 12345
	want := int64(n) * int64(n-1) / 2
	for _, workers := range []int{1, 3, 8} {
		got := SumInt64(n, workers, func(i int) int64 { return int64(i) })
		if got != want {
			t.Fatalf("workers=%d: sum=%d want %d", workers, got, want)
		}
	}
}

func TestSumFloat64MatchesSerial(t *testing.T) {
	n := 4096
	got := SumFloat64(n, 5, func(i int) float64 { return 1.0 })
	if got != float64(n) {
		t.Fatalf("sum=%v want %v", got, float64(n))
	}
}

func TestReduceInt64ChunksDisjoint(t *testing.T) {
	n := 999
	got := ReduceInt64(n, 6, func(lo, hi int) int64 { return int64(hi - lo) })
	if got != int64(n) {
		t.Fatalf("reduce=%d want %d", got, n)
	}
}

func TestReduceFloatSingleWorkerDeterministic(t *testing.T) {
	n := 100
	a := ReduceFloat64(n, 1, func(lo, hi int) float64 { return float64(hi - lo) })
	b := ReduceFloat64(n, 1, func(lo, hi int) float64 { return float64(hi - lo) })
	if a != b || a != float64(n) {
		t.Fatalf("got %v, %v", a, b)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-5, 4, func(int) { ran = true })
	if ran {
		t.Fatal("body must not run for n<=0")
	}
	if SumInt64(0, 4, func(int) int64 { return 1 }) != 0 {
		t.Fatal("empty sum must be 0")
	}
	if ReduceFloat64(-1, 4, func(int, int) float64 { return 1 }) != 0 {
		t.Fatal("empty reduce must be 0")
	}
}

func TestChunkAtLeastOne(t *testing.T) {
	if Chunk(1, 64) < 1 {
		t.Fatal("chunk must be >= 1")
	}
	if Chunk(1_000_000, 4) < 1 {
		t.Fatal("chunk must be >= 1")
	}
}

func TestExclusiveScan(t *testing.T) {
	counts := []int64{3, 0, 2, 5}
	total := ExclusiveScan(counts)
	want := []int64{0, 3, 3, 5}
	if total != 10 {
		t.Fatalf("total=%d", total)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("scan=%v want %v", counts, want)
		}
	}
}

// Property: parallel sum equals the closed form for arbitrary n, workers.
func TestSumProperty(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 5000)
		ww := int(w%16) + 1
		got := SumInt64(nn, ww, func(i int) int64 { return int64(i) })
		return got == int64(nn)*int64(nn-1)/2 || nn == 0 && got == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SumInt64(1024, 4, func(i int) int64 { return int64(i) })
	}
}
