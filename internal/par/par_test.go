package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 16} {
		for _, n := range []int{0, 1, 2, 100, 1001} {
			seen := make([]atomic.Int32, n)
			For(n, workers, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	n := 1000
	var total atomic.Int64
	ForChunked(n, 4, 7, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("covered %d of %d items", total.Load(), n)
	}
}

func TestSumInt64MatchesSerial(t *testing.T) {
	n := 12345
	want := int64(n) * int64(n-1) / 2
	for _, workers := range []int{1, 3, 8} {
		got := SumInt64(n, workers, func(i int) int64 { return int64(i) })
		if got != want {
			t.Fatalf("workers=%d: sum=%d want %d", workers, got, want)
		}
	}
}

func TestSumFloat64MatchesSerial(t *testing.T) {
	n := 4096
	got := SumFloat64(n, 5, func(i int) float64 { return 1.0 })
	if got != float64(n) {
		t.Fatalf("sum=%v want %v", got, float64(n))
	}
}

func TestReduceInt64ChunksDisjoint(t *testing.T) {
	n := 999
	got := ReduceInt64(n, 6, func(lo, hi int) int64 { return int64(hi - lo) })
	if got != int64(n) {
		t.Fatalf("reduce=%d want %d", got, n)
	}
}

func TestReduceFloatSingleWorkerDeterministic(t *testing.T) {
	n := 100
	a := ReduceFloat64(n, 1, func(lo, hi int) float64 { return float64(hi - lo) })
	b := ReduceFloat64(n, 1, func(lo, hi int) float64 { return float64(hi - lo) })
	if a != b || a != float64(n) {
		t.Fatalf("got %v, %v", a, b)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	For(-5, 4, func(int) { ran = true })
	if ran {
		t.Fatal("body must not run for n<=0")
	}
	if SumInt64(0, 4, func(int) int64 { return 1 }) != 0 {
		t.Fatal("empty sum must be 0")
	}
	if ReduceFloat64(-1, 4, func(int, int) float64 { return 1 }) != 0 {
		t.Fatal("empty reduce must be 0")
	}
}

func TestChunkAtLeastOne(t *testing.T) {
	if Chunk(1, 64) < 1 {
		t.Fatal("chunk must be >= 1")
	}
	if Chunk(1_000_000, 4) < 1 {
		t.Fatal("chunk must be >= 1")
	}
}

func TestExclusiveScan(t *testing.T) {
	counts := []int64{3, 0, 2, 5}
	total := ExclusiveScan(counts)
	want := []int64{0, 3, 3, 5}
	if total != 10 {
		t.Fatalf("total=%d", total)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("scan=%v want %v", counts, want)
		}
	}
}

// Property: parallel sum equals the closed form for arbitrary n, workers.
func TestSumProperty(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 5000)
		ww := int(w%16) + 1
		got := SumInt64(nn, ww, func(i int) int64 { return int64(i) })
		return got == int64(nn)*int64(nn-1)/2 || nn == 0 && got == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForCtxUncancelledMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 777
		seen := make([]atomic.Int32, n)
		if err := ForCtx(context.Background(), n, workers, func(i int) { seen[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		err := ForCtx(ctx, 100_000, workers, func(int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		// At most a few chunks may have started before the first check.
		if ran.Load() == 100_000 {
			t.Fatalf("workers=%d: loop ran to completion despite cancelled ctx", workers)
		}
	}
}

func TestForCtxCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 1 << 16
	var ran atomic.Int64
	err := ForChunkedCtx(ctx, n, 4, 64, func(lo, hi int) {
		if ran.Add(int64(hi-lo)) > 1024 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if ran.Load() == int64(n) {
		t.Fatal("loop ran every chunk despite mid-run cancellation")
	}
}

func TestReduceCtxUncancelledMatchesReduce(t *testing.T) {
	n := 12345
	want := ReduceInt64(n, 4, func(lo, hi int) int64 { return int64(hi - lo) })
	got, err := ReduceInt64Ctx(context.Background(), n, 4, func(lo, hi int) int64 { return int64(hi - lo) })
	if err != nil || got != want {
		t.Fatalf("got %d, %v; want %d, nil", got, err, want)
	}
	f, err := ReduceFloat64Ctx(context.Background(), n, 1, func(lo, hi int) float64 { return float64(hi - lo) })
	if err != nil || f != float64(n) {
		t.Fatalf("got %v, %v; want %v, nil", f, err, float64(n))
	}
}

// TestSingleWorkerBitIdenticalUnderCancellableCtx pins the determinism
// contract: with one worker, a cancellable (but uncancelled) context
// must not change the summation grouping, so float results are
// bit-identical to the non-ctx form.
func TestSingleWorkerBitIdenticalUnderCancellableCtx(t *testing.T) {
	n := 10007
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	want := ReduceFloat64(n, 1, body)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := ReduceFloat64Ctx(ctx, n, 1, body)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cancellable ctx changed the single-worker result: %v != %v", got, want)
	}
}

func TestReduceCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := ReduceInt64Ctx(ctx, 1<<20, 4, func(lo, hi int) int64 { return int64(hi - lo) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if got != 0 {
		t.Fatalf("cancelled reduce returned %d, want 0", got)
	}
	// Single worker with a cancellable context must also observe it.
	_, err = ReduceFloat64Ctx(ctx, 1<<20, 1, func(lo, hi int) float64 { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("single worker err=%v, want context.Canceled", err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SumInt64(1024, 4, func(i int) int64 { return int64(i) })
	}
}
