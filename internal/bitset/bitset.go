// Package bitset provides dense bit vectors tuned for the ProbGraph Bloom
// filter kernels: fixed-size vectors, bitwise AND/OR, and fused
// "combine + popcount" operations that never materialize the intermediate
// vector. On amd64, math/bits.OnesCount64 compiles to the POPCNT
// instruction, so AndCount is the scalar equivalent of the paper's
// SIMD AND + popcnt pipeline (§VI).
//
// Contract: a Bits is a plain []uint64 with bit i at word i/64, position
// i%64; binary operations require equal lengths and never allocate. The
// fused counting kernels delegate to internal/kernels — the set-algebra
// engine of docs/KERNELS.md — so their results are bit-identical to the
// batched multi-row variants used by the mining hot paths.
package bitset

import (
	"math/bits"

	"probgraph/internal/kernels"
)

// WordBits is the number of bits per storage word (the paper's W).
const WordBits = 64

// Bits is a dense bit vector. The zero value is an empty vector.
// Bit i lives in word i/64 at position i%64. Vectors used together in
// binary operations must have the same length.
type Bits []uint64

// New returns a zeroed bit vector with capacity for at least nbits bits,
// rounded up to a whole number of 64-bit words.
func New(nbits int) Bits {
	if nbits <= 0 {
		return Bits{}
	}
	return make(Bits, (nbits+WordBits-1)/WordBits)
}

// Words returns the number of 64-bit words in b.
func (b Bits) Words() int { return len(b) }

// Len returns the capacity of b in bits.
func (b Bits) Len() int { return len(b) * WordBits }

// Set sets bit i to one. It panics if i is out of range, matching slice
// indexing semantics.
func (b Bits) Set(i int) { b[i/WordBits] |= 1 << (uint(i) % WordBits) }

// Clear sets bit i to zero.
func (b Bits) Clear(i int) { b[i/WordBits] &^= 1 << (uint(i) % WordBits) }

// Get reports whether bit i is set.
func (b Bits) Get(i int) bool { return b[i/WordBits]&(1<<(uint(i)%WordBits)) != 0 }

// Reset zeroes every word of b in place.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Clone returns a copy of b.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// Count returns the number of set bits (population count) in b.
func (b Bits) Count() int {
	return kernels.PopCount(b)
}

// AndCount returns the population count of a AND b without materializing
// the intersection vector. This is the hot kernel behind the BF estimator
// |X∩Y|_AND (Eq. 2): O(B/W) work, one pass, no allocation.
func AndCount(a, b Bits) int {
	return kernels.AndCount(a, b)
}

// OrCount returns the population count of a OR b without materializing the
// union vector; used by the OR estimator (Eq. 29).
func OrCount(a, b Bits) int {
	return kernels.OrCount(a, b)
}

// And3Count returns popcount(a AND b AND c); the 4-clique inner kernel,
// where B_{C3} = B_u AND B_v is combined with B_w on the fly.
func And3Count(a, b, c Bits) int {
	return kernels.AndCount3(a, b, c)
}

// And stores a AND b into dst. dst may alias a or b.
func And(dst, a, b Bits) {
	kernels.And(dst, a, b)
}

// Or stores a OR b into dst. dst may alias a or b.
func Or(dst, a, b Bits) {
	kernels.Or(dst, a, b)
}

// Equal reports whether a and b have identical length and contents.
func Equal(a, b Bits) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Ones appends the indices of all set bits in b to out and returns it.
func (b Bits) Ones(out []int) []int {
	for w, word := range b {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			out = append(out, w*WordBits+t)
			word &= word - 1
		}
	}
	return out
}
