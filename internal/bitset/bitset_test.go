package bitset

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewRounding(t *testing.T) {
	cases := []struct{ nbits, words int }{
		{0, 0}, {-5, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := New(c.nbits).Words(); got != c.words {
			t.Errorf("New(%d).Words() = %d, want %d", c.nbits, got, c.words)
		}
	}
}

func TestSetGetClear(t *testing.T) {
	b := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		b.Set(i)
	}
	for _, i := range idx {
		if !b.Get(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if b.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(idx))
	}
	for _, i := range idx {
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d should be cleared", i)
		}
	}
	if b.Count() != 0 {
		t.Fatalf("Count after clears = %d, want 0", b.Count())
	}
}

func TestReset(t *testing.T) {
	b := New(130)
	for i := 0; i < 130; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(100)
	a.Set(7)
	c := a.Clone()
	c.Set(8)
	if a.Get(8) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(7) {
		t.Fatal("Clone missing original bit")
	}
}

// randomBits returns a vector of w words filled from rng.
func randomBits(rng *rand.Rand, w int) Bits {
	b := make(Bits, w)
	for i := range b {
		b[i] = rng.Uint64()
	}
	return b
}

func naiveCount(b Bits) int {
	n := 0
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) {
			n++
		}
	}
	return n
}

func TestCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for w := 0; w <= 9; w++ {
		b := randomBits(rng, w)
		if got, want := b.Count(), naiveCount(b); got != want {
			t.Fatalf("w=%d: Count=%d naive=%d", w, got, want)
		}
	}
}

func TestFusedOpsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for w := 0; w <= 11; w++ {
		a, b := randomBits(rng, w), randomBits(rng, w)
		and := make(Bits, w)
		And(and, a, b)
		or := make(Bits, w)
		Or(or, a, b)
		if AndCount(a, b) != and.Count() {
			t.Fatalf("w=%d: AndCount mismatch", w)
		}
		if OrCount(a, b) != or.Count() {
			t.Fatalf("w=%d: OrCount mismatch", w)
		}
		c := randomBits(rng, w)
		and3 := make(Bits, w)
		And(and3, and, c)
		if And3Count(a, b, c) != and3.Count() {
			t.Fatalf("w=%d: And3Count mismatch", w)
		}
	}
}

func TestAndAliasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a, b := randomBits(rng, 5), randomBits(rng, 5)
	want := make(Bits, 5)
	And(want, a, b)
	got := a.Clone()
	And(got, got, b) // dst aliases a
	if !Equal(got, want) {
		t.Fatal("And with aliased dst differs")
	}
}

func TestEqual(t *testing.T) {
	a := New(128)
	b := New(128)
	if !Equal(a, b) {
		t.Fatal("zero vectors should be equal")
	}
	b.Set(100)
	if Equal(a, b) {
		t.Fatal("differing vectors reported equal")
	}
	if Equal(a, New(64)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestOnes(t *testing.T) {
	b := New(192)
	want := []int{0, 5, 63, 64, 100, 191}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Ones(nil)
	if len(got) != len(want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", got, want)
		}
	}
}

// Property: Count(a) + Count(b) == AndCount(a,b) + OrCount(a,b)
// (inclusion–exclusion at the bit level).
func TestInclusionExclusionProperty(t *testing.T) {
	f := func(aw, bw []uint64) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		a, b := Bits(aw[:n]), Bits(bw[:n])
		return a.Count()+b.Count() == AndCount(a, b)+OrCount(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AndCount is symmetric and bounded by min(Count(a), Count(b)).
func TestAndCountBoundsProperty(t *testing.T) {
	f := func(aw, bw []uint64) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		a, b := Bits(aw[:n]), Bits(bw[:n])
		ab := AndCount(a, b)
		if ab != AndCount(b, a) {
			return false
		}
		ca, cb := a.Count(), b.Count()
		m := ca
		if cb < m {
			m = cb
		}
		return ab <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: popcount of each word agrees with bits.OnesCount64 summed.
func TestCountAgainstStdlibProperty(t *testing.T) {
	f := func(ws []uint64) bool {
		want := 0
		for _, w := range ws {
			want += bits.OnesCount64(w)
		}
		return Bits(ws).Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount1Kbit(b *testing.B) { benchAndCount(b, 1024) }
func BenchmarkAndCount8Kbit(b *testing.B) { benchAndCount(b, 8192) }

func benchAndCount(b *testing.B, nbits int) {
	rng := rand.New(rand.NewPCG(7, 8))
	x := randomBits(rng, nbits/64)
	y := randomBits(rng, nbits/64)
	b.SetBytes(int64(nbits / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = AndCount(x, y)
	}
}

var sink int
