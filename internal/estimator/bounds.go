// Package estimator implements the statistical theory of ProbGraph as
// executable formulas: the MSE and concentration bounds of §IV (Props.
// IV.1–IV.3, Eq. 3, 6, 7), the general linear-class BF bound (Prop. A.2),
// the triangle-count bounds of Theorem VII.1, and the KMV beta-function
// bounds (Props. A.7–A.9). Each bound is available in two directions:
// the tail probability at a deviation t, and the inverted form (the
// deviation guaranteed at a target confidence), which is what callers use
// to report error bars.
package estimator

import (
	"math"

	"probgraph/internal/stats"
)

// BFMSEBound evaluates the Prop. IV.1 upper bound on the mean squared
// error of the AND estimator (and of Eq. 1):
//
//	(e^{I·b/(B-1)}·B/b² − B/b² − I/b)
//
// where I = |X∩Y| and B = B_{X∩Y}. Valid when b·I ≤ 0.499·B·ln B and
// b = o(√B); Valid reports whether the precondition holds.
func BFMSEBound(inter, sizeBits, b int) (bound float64, valid bool) {
	B := float64(sizeBits)
	bf := float64(b)
	I := float64(inter)
	valid = bf*I <= 0.499*B*math.Log(B) && sizeBits > 1
	bound = math.Exp(I*bf/(B-1))*B/(bf*bf) - B/(bf*bf) - I/bf
	if bound < 0 {
		bound = 0
	}
	return bound, valid
}

// BFTail evaluates Eq. (3): the Chebyshev tail bound
// P(|est − I| ≥ t) ≤ MSE/t², capped at 1.
func BFTail(inter, sizeBits, b int, t float64) float64 {
	if t <= 0 {
		return 1
	}
	mse, _ := BFMSEBound(inter, sizeBits, b)
	return math.Min(1, mse/(t*t))
}

// BFDeviation inverts Eq. (3): the deviation t such that the estimator is
// within t of the truth with probability at least conf.
func BFDeviation(inter, sizeBits, b int, conf float64) float64 {
	mse, _ := BFMSEBound(inter, sizeBits, b)
	return math.Sqrt(mse / (1 - conf))
}

// BFLinearMSEBound evaluates Prop. A.2 for the linear estimator class
// δ·B₁ (which includes the L estimator with δ = 1/b): the bias² + variance
// bound
//
//	[I − δB(1−e^{−Ib/B})]² + δ²B[e^{−Ib/B} − (1 + Ib/B)e^{−2Ib/B}]
//
// with I the true cardinality. Unlike Prop. IV.1 it needs no
// preconditions.
func BFLinearMSEBound(inter, sizeBits, b int, delta float64) float64 {
	B := float64(sizeBits)
	I := float64(inter)
	lam := I * float64(b) / B
	bias := I - delta*B*(1-math.Exp(-lam))
	variance := delta * delta * B * (math.Exp(-lam) - (1+lam)*math.Exp(-2*lam))
	if variance < 0 {
		variance = 0
	}
	return bias*bias + variance
}

// BFLinearTail is the Chebyshev tail for the linear estimator class.
func BFLinearTail(inter, sizeBits, b int, delta, t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Min(1, BFLinearMSEBound(inter, sizeBits, b, delta)/(t*t))
}

// MinHashTail evaluates the exponential bounds of Props. IV.2/IV.3
// (identical for k-Hash and 1-Hash):
//
//	P(|est − |X∩Y|| ≥ t) ≤ 2·exp(−2kt²/(|X|+|Y|)²)
func MinHashTail(sizeX, sizeY, k int, t float64) float64 {
	if t <= 0 {
		return 1
	}
	s := float64(sizeX + sizeY)
	if s == 0 {
		return 0
	}
	return math.Min(1, 2*math.Exp(-2*float64(k)*t*t/(s*s)))
}

// MinHashDeviation inverts Props. IV.2/IV.3: the deviation t guaranteed
// with probability conf, t = (|X|+|Y|)·sqrt(ln(2/(1−conf))/(2k)).
func MinHashDeviation(sizeX, sizeY, k int, conf float64) float64 {
	s := float64(sizeX + sizeY)
	return s * math.Sqrt(math.Log(2/(1-conf))/(2*float64(k)))
}

// --- Theorem VII.1: triangle count bounds ----------------------------------

// GraphMoments carries the degree-sequence quantities the TC bounds need.
type GraphMoments struct {
	M         int     // number of undirected edges
	MaxDegree int     // Δ
	SumDeg2   float64 // Σ_v d(v)²
	SumDeg3   float64 // Σ_v d(v)³
}

// TCBoundBF evaluates the Bloom-filter statement of Theorem VII.1:
//
//	P(|TC − T̂C_AND| ≥ t) ≤ 2m²·(e^{Δb/(B−1)}·B/b² − B/b² − Δ/b) / (9t²)
//
// valid when b·Δ ≤ 0.499·B·ln B.
func TCBoundBF(gm GraphMoments, sizeBits, b int, t float64) (tail float64, valid bool) {
	if t <= 0 {
		return 1, true
	}
	mse, valid := BFMSEBound(gm.MaxDegree, sizeBits, b)
	m := float64(gm.M)
	return math.Min(1, 2*m*m*mse/(9*t*t)), valid
}

// TCBoundMinHash evaluates the first MinHash statement of Theorem VII.1:
//
//	P(|TC − T̂C| ≥ t) ≤ 2·exp(−18kt²/(Σ_v d(v)²)²)
func TCBoundMinHash(gm GraphMoments, k int, t float64) float64 {
	if t <= 0 {
		return 1
	}
	s := gm.SumDeg2
	if s == 0 {
		return 0
	}
	return math.Min(1, 2*math.Exp(-18*float64(k)*t*t/(s*s)))
}

// TCBoundMinHashDegree evaluates the degree-refined MinHash statement
// (via Vizing's theorem, Thm. A.6):
//
//	P(|TC − T̂C| ≥ t) ≤ 2·exp(−9kt²/(4(Δ+1)·Σ_v d(v)³))
func TCBoundMinHashDegree(gm GraphMoments, k int, t float64) float64 {
	if t <= 0 {
		return 1
	}
	den := 4 * float64(gm.MaxDegree+1) * gm.SumDeg3
	if den == 0 {
		return 0
	}
	return math.Min(1, 2*math.Exp(-9*float64(k)*t*t/den))
}

// TCDeviationMinHash inverts TCBoundMinHash at confidence conf.
func TCDeviationMinHash(gm GraphMoments, k int, conf float64) float64 {
	return gm.SumDeg2 * math.Sqrt(math.Log(2/(1-conf))/(18*float64(k)))
}

// TCDeviationBF inverts TCBoundBF at confidence conf: the deviation t
// with P(|TC − T̂C_AND| ≥ t) ≤ 1 − conf, i.e. t = m·√(2·MSE/(9(1−conf))).
// valid mirrors the Prop. IV.1 precondition b·Δ ≤ 0.499·B·ln B.
func TCDeviationBF(gm GraphMoments, sizeBits, b int, conf float64) (t float64, valid bool) {
	mse, valid := BFMSEBound(gm.MaxDegree, sizeBits, b)
	if !valid || conf >= 1 {
		return 0, valid
	}
	m := float64(gm.M)
	return m * math.Sqrt(2*mse/(9*(1-conf))), valid
}

// --- Pattern-count bounds (Thm. VII.1 generalized) --------------------------
//
// A compiled pattern plan (internal/pattern) estimates its count as
// (1/F)·Σ_{i=1..P} Î_i, where each Î_i is one closing-level pairwise
// intersection estimate and F is the symmetry relaxation factor. The
// bounds below generalize the TC statements (P = m, F = 3 recovers the
// triangle shapes) to arbitrary P and F.

// PatternDeviationBF bounds the BF-backed pattern estimate at
// confidence conf. Each term's MSE is bounded by BFMSEBound at the
// maximum degree (Prop. IV.1), so by Cauchy–Schwarz
// E[(Σδ_i)²] ≤ P²·MSE(Δ) and Chebyshev gives
//
//	t = (P/F)·√(MSE(Δ)/(1−conf))
//
// valid mirrors the Prop. IV.1 precondition b·Δ ≤ 0.499·B·ln B.
func PatternDeviationBF(terms, relax int64, maxDeg, sizeBits, b int, conf float64) (t float64, valid bool) {
	mse, valid := BFMSEBound(maxDeg, sizeBits, b)
	if !valid || conf >= 1 || terms <= 0 || relax <= 0 {
		return 0, valid
	}
	return float64(terms) / float64(relax) * math.Sqrt(mse/(1-conf)), valid
}

// PatternDeviationMinHash bounds the MinHash-backed (kH or 1H: Props.
// IV.2 and IV.3 give the same Hoeffding shape) pattern estimate:
// each term deviates by ε·(|N_u|+|N_v|) with probability ≤ 2e^(−2kε²),
// so a union bound at per-term failure (1−conf)/P gives
//
//	t = (sumSizes/F)·√(ln(2P/(1−conf))/(2k))
//
// with sumSizes = Σ_i (|N_uᵢ|+|N_vᵢ|), collected during the run. More
// conservative than the McDiarmid argument behind TCDeviationMinHash
// (union bound vs joint concentration), but valid for any plan.
func PatternDeviationMinHash(sumSizes float64, terms, relax int64, k int, conf float64) float64 {
	if terms <= 0 || relax <= 0 || sumSizes <= 0 || k <= 0 || conf >= 1 {
		return 0
	}
	return sumSizes / float64(relax) * math.Sqrt(math.Log(2*float64(terms)/(1-conf))/(2*float64(k)))
}

// --- KMV bounds (Props. A.7–A.9) -------------------------------------------

// KMVCardInterval evaluates Prop. A.7: the probability that the KMV size
// estimator lands within t of the true size,
//
//	P(||X̂|−|X|| ≤ t) = I_u(k, |X|−k+1) − I_l(k, |X|−k+1)
//
// with u = (k−1)/(|X|−t), l = (k−1)/(|X|+t) and I the regularized
// incomplete beta function.
func KMVCardInterval(size, k int, t float64) float64 {
	if size < k || k < 2 {
		return 1 // sketch enumerates the set exactly
	}
	N := float64(size)
	a := float64(k)
	bb := N - a + 1
	u := (a - 1) / (N - t)
	l := (a - 1) / (N + t)
	if t >= N {
		u = 1
	}
	hi := stats.RegIncBeta(a, bb, clamp01(u))
	lo := stats.RegIncBeta(a, bb, clamp01(l))
	return hi - lo
}

// KMVInterTail evaluates Prop. A.9: with exact |X| and |Y| the
// intersection error equals the union-size error, so
//
//	P(||X∩Y|̂ − |X∩Y|| ≥ t) = 1 − KMVCardInterval(|X∪Y|, k, t).
func KMVInterTail(sizeUnion, k int, t float64) float64 {
	return 1 - KMVCardInterval(sizeUnion, k, t)
}

// KMVInterTailUnionBound evaluates Prop. A.8: the three-way union bound
// for the variant that also estimates |X| and |Y|.
func KMVInterTailUnionBound(sizeX, sizeY, sizeUnion, k int, t float64) float64 {
	p := (1 - KMVCardInterval(sizeX, k, t/3)) +
		(1 - KMVCardInterval(sizeY, k, t/3)) +
		(1 - KMVCardInterval(sizeUnion, k, t/3))
	return math.Min(1, p)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Moments derives GraphMoments from a degree sequence.
func Moments(degrees []int, m int) GraphMoments {
	gm := GraphMoments{M: m}
	for _, d := range degrees {
		df := float64(d)
		gm.SumDeg2 += df * df
		gm.SumDeg3 += df * df * df
		if d > gm.MaxDegree {
			gm.MaxDegree = d
		}
	}
	return gm
}
