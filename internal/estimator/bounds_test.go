package estimator

import (
	"math"
	"testing"

	"probgraph/internal/hash"
	"probgraph/internal/sketch"
	"probgraph/internal/stats"
)

func TestBFMSEBoundValidity(t *testing.T) {
	// Small load: precondition holds, bound positive and finite.
	mse, valid := BFMSEBound(50, 8192, 2)
	if !valid {
		t.Fatal("precondition should hold for light load")
	}
	if mse <= 0 || math.IsInf(mse, 0) || math.IsNaN(mse) {
		t.Fatalf("mse = %v", mse)
	}
	// Heavy load: precondition violated.
	if _, valid := BFMSEBound(1_000_000, 256, 4); valid {
		t.Fatal("precondition must fail for overloaded filter")
	}
}

func TestBFMSEBoundGrowsWithLoad(t *testing.T) {
	a, _ := BFMSEBound(10, 8192, 2)
	b, _ := BFMSEBound(200, 8192, 2)
	if b <= a {
		t.Fatalf("MSE bound should grow with |X∩Y|: %v vs %v", a, b)
	}
}

func TestBFTailBehaviour(t *testing.T) {
	if BFTail(50, 8192, 2, 0) != 1 {
		t.Fatal("t=0 must give trivial bound 1")
	}
	small := BFTail(50, 8192, 2, 10)
	large := BFTail(50, 8192, 2, 100)
	if large >= small {
		t.Fatalf("tail must shrink with t: %v vs %v", small, large)
	}
	if small > 1 || large < 0 {
		t.Fatal("tail out of [0,1]")
	}
}

func TestBFDeviationInversion(t *testing.T) {
	d := BFDeviation(50, 8192, 2, 0.95)
	// Plugging the deviation back in gives a tail of at most 5%.
	if tail := BFTail(50, 8192, 2, d); tail > 0.05+1e-9 {
		t.Fatalf("inversion: tail at returned deviation = %v", tail)
	}
}

func TestBFLinearMSEBound(t *testing.T) {
	// For delta = 1/b, bound is finite and nonnegative everywhere,
	// including regimes where Prop. IV.1's precondition fails.
	for _, inter := range []int{0, 10, 1000, 100000} {
		v := BFLinearMSEBound(inter, 1024, 2, 0.5)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("inter=%d: bound %v", inter, v)
		}
	}
	if BFLinearTail(100, 1024, 2, 0.5, 0) != 1 {
		t.Fatal("t=0")
	}
}

func TestMinHashTailExponential(t *testing.T) {
	// Doubling k must square the bound ratio (pure exponential in k);
	// t chosen large enough that neither bound hits the cap at 1.
	t1 := MinHashTail(100, 100, 32, 40)
	t2 := MinHashTail(100, 100, 64, 40)
	if math.Abs(t2-t1*t1/2) > 1e-12 {
		t.Fatalf("not exponential in k: %v vs %v", t2, t1*t1/2)
	}
	if MinHashTail(100, 100, 32, 0) != 1 {
		t.Fatal("t=0")
	}
	if MinHashTail(0, 0, 32, 5) != 0 {
		t.Fatal("empty sets: estimator is exact")
	}
}

func TestMinHashDeviationInversion(t *testing.T) {
	d := MinHashDeviation(300, 200, 64, 0.9)
	if tail := MinHashTail(300, 200, 64, d); math.Abs(tail-0.1) > 1e-9 {
		t.Fatalf("inversion: tail = %v, want 0.10", tail)
	}
}

// Empirical validation of Prop. IV.2: the measured deviation of the
// k-Hash estimator should stay within the 95% bound (the bound is loose,
// so violations should be very rare).
func TestMinHashBoundHoldsEmpirically(t *testing.T) {
	const sizeX, sizeY, overlap, k = 120, 100, 40, 64
	xs := make([]uint32, sizeX)
	for i := range xs {
		xs[i] = uint32(i)
	}
	ys := make([]uint32, sizeY)
	for i := range ys {
		ys[i] = uint32(sizeX - overlap + i)
	}
	bound := MinHashDeviation(sizeX, sizeY, k, 0.95)
	violations := 0
	const trials = 200
	for seed := uint64(0); seed < trials; seed++ {
		fam := hash.NewFamily(seed, k)
		a := sketch.KHashSignature(xs, fam, make(sketch.KHashSig, k))
		b := sketch.KHashSignature(ys, fam, make(sketch.KHashSig, k))
		est := sketch.KHashInter(a, b, sizeX, sizeY)
		if math.Abs(est-overlap) > bound {
			violations++
		}
	}
	if violations > trials/20 {
		t.Fatalf("bound violated %d/%d times (allowed 5%%)", violations, trials)
	}
}

func TestTCBoundBF(t *testing.T) {
	gm := GraphMoments{M: 1000, MaxDegree: 50, SumDeg2: 4e4, SumDeg3: 1e6}
	tail, valid := TCBoundBF(gm, 1<<16, 2, 500)
	if !valid {
		t.Fatal("precondition should hold")
	}
	if tail < 0 || tail > 1 {
		t.Fatalf("tail = %v", tail)
	}
	if tt, _ := TCBoundBF(gm, 1<<16, 2, 0); tt != 1 {
		t.Fatal("t=0")
	}
}

func TestTCBoundMinHashMonotonicity(t *testing.T) {
	gm := GraphMoments{M: 1000, MaxDegree: 50, SumDeg2: 4e4, SumDeg3: 1e6}
	if TCBoundMinHash(gm, 64, 2000) >= TCBoundMinHash(gm, 64, 200)+1e-15 &&
		TCBoundMinHash(gm, 64, 200) < 1 {
		t.Fatal("tail must shrink with t")
	}
	if TCBoundMinHash(gm, 128, 2000) > TCBoundMinHash(gm, 64, 2000) {
		t.Fatal("tail must shrink with k")
	}
	d := TCDeviationMinHash(gm, 64, 0.95)
	if tail := TCBoundMinHash(gm, 64, d); tail > 0.05+1e-9 {
		t.Fatalf("inversion: %v", tail)
	}
	if TCBoundMinHashDegree(gm, 64, 100) < 0 || TCBoundMinHashDegree(gm, 64, 100) > 1 {
		t.Fatal("degree-refined bound out of range")
	}
	if TCBoundMinHashDegree(gm, 64, 0) != 1 {
		t.Fatal("t=0")
	}
}

func TestKMVCardInterval(t *testing.T) {
	// Wider tolerance → higher coverage probability; t→∞ → 1.
	p1 := KMVCardInterval(1000, 64, 50)
	p2 := KMVCardInterval(1000, 64, 200)
	if p2 <= p1 {
		t.Fatalf("coverage must grow with t: %v vs %v", p1, p2)
	}
	if p := KMVCardInterval(1000, 64, 1e9); math.Abs(p-1) > 1e-6 {
		t.Fatalf("huge t coverage = %v", p)
	}
	// Small sets are exact.
	if KMVCardInterval(10, 64, 1) != 1 {
		t.Fatal("size < k is exact")
	}
}

func TestKMVInterTails(t *testing.T) {
	tail := KMVInterTail(500, 64, 100)
	if tail < 0 || tail > 1 {
		t.Fatalf("tail = %v", tail)
	}
	ub := KMVInterTailUnionBound(300, 300, 500, 64, 100)
	if ub < 0 || ub > 1 {
		t.Fatalf("union bound = %v", ub)
	}
	// Prop. A.9 (exact sizes) should be at most the A.8 union bound for
	// the same total deviation.
	if tail > ub+1e-9 && ub < 1 {
		t.Fatalf("exact-size bound %v worse than union bound %v", tail, ub)
	}
}

// Empirical validation of Prop. A.9 at 90%: measured KMV union-size error
// exceeds the inverted bound in at most ~10% of trials.
func TestKMVBoundHoldsEmpirically(t *testing.T) {
	const size, k = 800, 64
	xs := make([]uint32, size)
	for i := range xs {
		xs[i] = uint32(i)
	}
	// Find t with coverage ~0.9 by bisection.
	lo, hi := 0.0, float64(size)
	for it := 0; it < 60; it++ {
		mid := (lo + hi) / 2
		if KMVCardInterval(size, k, mid) < 0.9 {
			lo = mid
		} else {
			hi = mid
		}
	}
	tBound := hi
	violations := 0
	const trials = 300
	for seed := uint64(0); seed < trials; seed++ {
		fam := hash.NewFamily(seed, 1)
		s := sketch.NewKMV(xs, k, func(x uint32) uint64 { return fam.Hash(0, x) })
		if math.Abs(s.Card(k)-size) > tBound {
			violations++
		}
	}
	if violations > trials*15/100 {
		t.Fatalf("KMV bound violated %d/%d times at 90%%", violations, trials)
	}
}

func TestMoments(t *testing.T) {
	gm := Moments([]int{1, 2, 3}, 3)
	if gm.MaxDegree != 3 || gm.SumDeg2 != 14 || gm.SumDeg3 != 36 || gm.M != 3 {
		t.Fatalf("moments = %+v", gm)
	}
	empty := Moments(nil, 0)
	if empty.MaxDegree != 0 || empty.SumDeg2 != 0 {
		t.Fatal("empty moments")
	}
}

func TestBFMSEBoundHoldsOnDirectFilter(t *testing.T) {
	// Prop. IV.1/A.1 bounds the estimator applied to a Bloom filter that
	// actually represents X∩Y. Build that filter directly and measure the
	// MSE of Eq. (1); the (1+o(1)) factor motivates 2x slack.
	const sizeBits, b, inter = 1 << 15, 2, 80
	var se []float64
	for seed := uint64(0); seed < 80; seed++ {
		f := sketch.NewBloom(sizeBits, b, seed)
		for i := 0; i < inter; i++ {
			f.Add(uint32(i))
		}
		d := f.EstimateCard() - inter
		se = append(se, d*d)
	}
	measured := stats.Mean(se)
	bound, valid := BFMSEBound(inter, sizeBits, b)
	if !valid {
		t.Fatal("expected valid regime")
	}
	if measured > 2*bound {
		t.Fatalf("measured MSE %v exceeds bound %v", measured, bound)
	}
}

func TestANDApproximationInflatesError(t *testing.T) {
	// The practical estimator uses B_X AND B_Y ≈ B_{X∩Y} (§IV-B), which
	// "may somewhat increase the false positive probability": its MSE is
	// allowed to exceed the direct-filter bound, but must stay in the same
	// ballpark relative to the truth (the Fig. 3 accuracy story).
	const sizeBits, b, sizeX, sizeY, overlap = 1 << 15, 2, 200, 200, 80
	var errs []float64
	for seed := uint64(0); seed < 40; seed++ {
		fx := sketch.NewBloom(sizeBits, b, seed)
		fy := sketch.NewBloom(sizeBits, b, seed)
		for i := 0; i < sizeX; i++ {
			fx.Add(uint32(i))
		}
		for i := 0; i < sizeY; i++ {
			fy.Add(uint32(sizeX - overlap + i))
		}
		errs = append(errs, stats.RelativeError(fx.InterANDOf(fy), overlap))
	}
	if m := stats.Mean(errs); m > 0.10 {
		t.Fatalf("practical AND estimator mean relative error %.3f", m)
	}
}

func TestPatternDeviationBF(t *testing.T) {
	d, valid := PatternDeviationBF(1000, 3, 50, 1<<16, 2, 0.95)
	if !valid || d <= 0 {
		t.Fatalf("d=%v valid=%v", d, valid)
	}
	// Triangle shape: P = m terms, F = 3. More terms → looser bound;
	// higher confidence → looser bound; smaller filter → invalid.
	if d2, _ := PatternDeviationBF(2000, 3, 50, 1<<16, 2, 0.95); d2 <= d {
		t.Fatal("bound must grow with the number of terms")
	}
	if d2, _ := PatternDeviationBF(1000, 3, 50, 1<<16, 2, 0.99); d2 <= d {
		t.Fatal("bound must grow with confidence")
	}
	if d2, _ := PatternDeviationBF(1000, 6, 50, 1<<16, 2, 0.95); d2 >= d {
		t.Fatal("bound must shrink with the relaxation factor")
	}
	if _, valid := PatternDeviationBF(1000, 3, 1<<20, 256, 2, 0.95); valid {
		t.Fatal("overloaded filter must be invalid (Prop. IV.1 precondition)")
	}
	if d, _ := PatternDeviationBF(0, 3, 50, 1<<16, 2, 0.95); d != 0 {
		t.Fatal("no terms, no bound")
	}
}

func TestPatternDeviationMinHash(t *testing.T) {
	d := PatternDeviationMinHash(4e4, 1000, 3, 64, 0.95)
	if d <= 0 {
		t.Fatalf("d=%v", d)
	}
	if d2 := PatternDeviationMinHash(4e4, 1000, 3, 256, 0.95); d2 >= d {
		t.Fatal("bound must shrink with k")
	}
	if d2 := PatternDeviationMinHash(4e4, 2000, 3, 64, 0.95); d2 <= d {
		t.Fatal("bound must grow with the union-bound term count")
	}
	if d2 := PatternDeviationMinHash(4e4, 1000, 6, 64, 0.95); d2 >= d {
		t.Fatal("bound must shrink with the relaxation factor")
	}
	if PatternDeviationMinHash(0, 1000, 3, 64, 0.95) != 0 ||
		PatternDeviationMinHash(4e4, 0, 3, 64, 0.95) != 0 {
		t.Fatal("degenerate inputs must give no bound")
	}
	// The union-bound shape is strictly looser than the joint
	// McDiarmid TC bound at the same inputs (same sumSizes = SumDeg2,
	// terms = m, relax = 3): ln(2P/δ)/2 ≥ ln(2/δ)/18 for any P ≥ 1.
	gm := GraphMoments{M: 1000, SumDeg2: 4e4}
	joint := TCDeviationMinHash(gm, 64, 0.95)
	if union := PatternDeviationMinHash(gm.SumDeg2, int64(gm.M), 3, 64, 0.95); union < joint {
		t.Fatalf("union bound %v tighter than joint bound %v", union, joint)
	}
}
