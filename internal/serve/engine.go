package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/mining"
	"probgraph/internal/obs"
	"probgraph/internal/par"
	"probgraph/internal/pattern"
	"probgraph/internal/session"
)

// Op identifies a query operation.
type Op uint8

const (
	// OpTC is the snapshot-wide triangle-count estimate (§VII).
	OpTC Op = iota + 1
	// OpLocalTC estimates the triangles through vertex U.
	OpLocalTC
	// OpSimilarity scores the vertex pair (U, V) with Measure.
	OpSimilarity
	// OpTopK returns the K best link-prediction candidates for U: 2-hop
	// non-neighbors ranked by Measure (Listing 5's scoring step, online).
	OpTopK
	// OpNeighbors returns the exact adjacency list of U.
	OpNeighbors
	// OpPattern is the snapshot-wide pattern-count estimate: Pattern
	// names a builtin or edge-list spec (internal/pattern), evaluated
	// through the compiled exploration plan with sketch-closed
	// estimation and the generalized Thm VII.1 bound in Result.Bound.
	OpPattern

	opMax
)

// String returns the wire name of the operation.
func (op Op) String() string {
	switch op {
	case OpTC:
		return "tc"
	case OpLocalTC:
		return "localtc"
	case OpSimilarity:
		return "similarity"
	case OpTopK:
		return "topk"
	case OpNeighbors:
		return "neighbors"
	case OpPattern:
		return "pattern"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// ParseOp parses a wire operation name.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tc", "triangles":
		return OpTC, nil
	case "localtc", "ltc":
		return OpLocalTC, nil
	case "similarity", "sim":
		return OpSimilarity, nil
	case "topk", "linkpred":
		return OpTopK, nil
	case "neighbors", "neigh":
		return OpNeighbors, nil
	case "pattern", "pat":
		return OpPattern, nil
	}
	return 0, fmt.Errorf("serve: unknown op %q", s)
}

// ParseMeasure parses a Listing 3 measure name (as printed by
// mining.Measure.String, case-insensitively, plus short aliases).
func ParseMeasure(s string) (mining.Measure, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "jaccard", "j":
		return mining.Jaccard, nil
	case "overlap", "o":
		return mining.Overlap, nil
	case "commonneighbors", "common", "cn":
		return mining.CommonNeighbors, nil
	case "totalneighbors", "total", "tn":
		return mining.TotalNeighbors, nil
	case "adamicadar", "aa":
		return mining.AdamicAdar, nil
	case "resourceallocation", "ra":
		return mining.ResourceAllocation, nil
	}
	return 0, fmt.Errorf("serve: unknown measure %q", s)
}

// ParseKind parses a sketch-kind name — the wire-layer companion of
// ParseOp and ParseMeasure, delegating to core.ParseKind.
func ParseKind(s string) (core.Kind, error) { return core.ParseKind(s) }

// Query is one typed request against a snapshot. The zero Measure is
// Jaccard; an empty Kind uses the snapshot's default representation.
// Queries are normalized (symmetric pairs ordered, irrelevant fields
// zeroed, Kind canonicalized) before they reach the cache and batcher,
// so equivalent requests share one cache line and coalesce.
type Query struct {
	Op      Op
	U, V    uint32
	K       int
	Measure mining.Measure
	Kind    string
	// Pattern is the OpPattern spec (builtin name or edge list);
	// normalized to the canonical pattern string.
	Pattern string
}

// Scored is a ranked candidate vertex.
type Scored struct {
	V     uint32  `json:"v"`
	Score float64 `json:"score"`
}

// Result is a query answer. Slices it carries alias engine-owned or
// cached storage and must be treated as read-only.
type Result struct {
	Value float64 `json:"value"`
	// Bound is the deviation guarantee carried by estimates that have
	// one (currently OpPattern): |value − truth| ≤ bound with 95%
	// probability. Zero when no theory applies.
	Bound     float64  `json:"bound,omitempty"`
	TopK      []Scored `json:"topk,omitempty"`
	Neighbors []uint32 `json:"neighbors,omitempty"`
	Cached    bool     `json:"cached"`
	// Degraded marks an answer computed under reduced redundancy — a
	// cluster router that failed over a dead shard or merged a gather
	// with shards missing sets it; a single-process engine never does.
	Degraded bool   `json:"degraded,omitempty"`
	Err      string `json:"-"`
}

// Options tunes an Engine. Zero values: GOMAXPROCS workers, batches of
// 64 coalesced within 200µs, a 65536-entry cache. Negative values
// disable the feature: CacheSize < 0 turns caching off, MaxDelay < 0
// makes the batcher take only already-queued requests.
type Options struct {
	Workers   int
	MaxBatch  int
	MaxDelay  time.Duration
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	switch {
	case o.MaxDelay == 0:
		o.MaxDelay = 200 * time.Microsecond
	case o.MaxDelay < 0:
		o.MaxDelay = 0 // no wait: batch whatever is queued right now
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1 << 16
	}
	return o
}

// tcCell lazily materializes the snapshot-wide TC estimate per kind.
// One leader computes under its own context while followers wait on
// their own — a follower's deadline fires on time even mid-leader-run,
// and a leader cut short by its requester's deadline caches nothing
// (the next request takes over as leader).
type tcCell struct {
	mu       sync.Mutex
	ready    bool
	val      float64
	building chan struct{} // non-nil while a leader computes; closed when it finishes
}

// patCell memoizes one (kind, pattern) whole-graph estimate per epoch,
// with the same leader/follower protocol as tcCell but carrying the
// full Result (value plus deviation bound).
type patCell struct {
	mu       sync.Mutex
	ready    bool
	val      Result
	building chan struct{} // non-nil while a leader computes; closed when it finishes
}

// patCellCap bounds the per-epoch pattern memo: beyond this many
// distinct (kind, pattern) keys, new patterns still compute — they just
// get an unshared cell and stop growing the epoch's map. Serving mixes
// use a handful of named patterns, so the cap exists only to keep an
// adversarial spec stream from holding the epoch's memory hostage.
const patCellCap = 256

// serving is one epoch's complete evaluation state: the snapshot plus
// the per-kind memoized TC cells, the (kind, pattern) memo, and Session
// views derived from it. Queries capture one serving pointer at entry
// and use it end to end, so an Engine.Swap mid-query is invisible:
// in-flight work finishes on the epoch it started on.
type serving struct {
	snap    *Snapshot
	workers int
	tc      map[core.Kind]*tcCell
	sess    map[core.Kind]*session.Session // per-kind Session views, engine workers

	patMu sync.Mutex
	pat   map[string]*patCell // "kind|canonical-pattern" → memo cell

	// refs counts reasons the epoch's storage must stay readable: 1 for
	// the engine while this is (or was) its current serving, plus one
	// per in-flight query that captured it. When the count drains to
	// zero — the epoch was swapped out AND the last query on it finished
	// — the snapshot's backing resource is released (for a zero-copy
	// snapshot, the munmap). This is what makes a hot-swap safe over
	// mmap: rows are never unmapped while any query can still read them.
	refs atomic.Int64
}

// newServing derives the evaluation state of one snapshot.
func newServing(s *Snapshot, workers int) *serving {
	sv := &serving{
		snap:    s,
		workers: workers,
		tc:      make(map[core.Kind]*tcCell, len(s.kinds)),
		sess:    make(map[core.Kind]*session.Session, len(s.kinds)),
		pat:     make(map[string]*patCell),
	}
	sv.refs.Store(1) // the engine's reference, dropped at swap-out or Close
	for _, k := range s.kinds {
		sv.tc[k] = &tcCell{}
		if sess, err := buildEngineSession(s, k, workers); err == nil {
			sv.sess[k] = sess
		}
	}
	return sv
}

// acquire takes a query-lifetime reference. It fails only when the
// serving has fully drained (swapped out, last query done, storage
// possibly already released) — the caller must re-load Engine.cur and
// retry on the fresh epoch.
func (sv *serving) acquire() bool {
	for {
		r := sv.refs.Load()
		if r <= 0 {
			return false
		}
		if sv.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops one reference; the last one out closes the snapshot's
// backing resource.
func (sv *serving) release() {
	if sv.refs.Add(-1) == 0 {
		_ = sv.snap.Close()
	}
}

// acquireServing loads the current epoch and takes a query reference on
// it, retrying when a concurrent Swap drains the loaded epoch between
// Load and acquire. An acquire can only fail if the epoch was swapped
// out after the Load, so each retry observes a strictly newer epoch and
// the loop terminates; the bound is pure paranoia. Persistent failure
// means the engine is closed.
func (e *Engine) acquireServing() (*serving, error) {
	for i := 0; i < 64; i++ {
		sv := e.cur.Load()
		if sv.acquire() {
			return sv, nil
		}
		if e.closed.Load() {
			break
		}
	}
	return nil, ErrClosed
}

// patCellFor returns the memo cell for (kind, canonical spec), creating
// it on demand. Past patCellCap distinct keys the cell is returned
// unregistered — correct, just not shared.
func (sv *serving) patCellFor(kind core.Kind, spec string) *patCell {
	key := kind.String() + "|" + spec
	sv.patMu.Lock()
	defer sv.patMu.Unlock()
	if c, ok := sv.pat[key]; ok {
		return c
	}
	c := &patCell{}
	if len(sv.pat) < patCellCap {
		sv.pat[key] = c
	}
	return c
}

// Engine serves queries against an immutable snapshot: cache in front,
// coalescing batcher behind, sketch kernels at the bottom. The snapshot
// is hot-swappable (Swap) for streaming ingest: epochs change atomically
// under load, and the epoch-keyed result cache invalidates old answers
// for free. Safe for concurrent use; Close releases the worker pool.
type Engine struct {
	cur  atomic.Pointer[serving]
	opts Options

	cache *lru
	b     *batcher

	ingest                atomic.Pointer[Ingestor]
	swaps                 atomic.Int64
	ingestOK, ingestErr   atomic.Int64
	persistOK, persistErr atomic.Int64
	lastPersistErr        atomic.Pointer[string]
	opCounts              [opMax]countErr
	opHists               [opMax]*Hist // slot 0 unused (malformed ops carry no latency)
	start                 time.Time
	closed                atomic.Bool
}

// countErr pairs per-op served/error counters.
type countErr struct {
	ok, errs atomic.Int64
}

// New starts an engine over the snapshot.
func New(s *Snapshot, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:  opts,
		cache: newLRU(opts.CacheSize),
		start: time.Now(),
	}
	for op := Op(1); op < opMax; op++ {
		e.opHists[op] = NewHist()
	}
	e.cur.Store(newServing(s, opts.Workers))
	workers := opts.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	e.b = newBatcher(e.eval, workers, opts.MaxBatch, opts.MaxDelay)
	return e
}

// Snapshot returns the snapshot the engine currently serves.
func (e *Engine) Snapshot() *Snapshot { return e.cur.Load().snap }

// Swap atomically replaces the served snapshot and returns the one it
// displaced. In-flight queries complete against the epoch they captured
// at entry (snapshots are immutable, so the old epoch stays fully
// answerable); new queries see the new epoch immediately; cached results
// are keyed by epoch, so stale answers can never be served and old
// entries age out of the LRU naturally.
func (e *Engine) Swap(s *Snapshot) (*Snapshot, error) {
	if s == nil {
		return nil, fmt.Errorf("serve: swap of nil snapshot")
	}
	old := e.cur.Swap(newServing(s, e.opts.Workers))
	e.swaps.Add(1)
	// Drop the engine's reference on the displaced epoch. Its backing
	// storage (an mmap, for zero-copy snapshots) is released the moment
	// the last in-flight query on it finishes — possibly right here, if
	// none are running.
	old.release()
	return old.snap, nil
}

// Swaps reports how many snapshot hot-swaps the engine has performed.
func (e *Engine) Swaps() int64 { return e.swaps.Load() }

// EnableIngest attaches the handler behind POST /v1/ingest — typically a
// stream.Feeder, which applies the batch to a DynamicGraph, freezes the
// new epoch and Swaps it in. Until called, ingest requests are refused.
func (e *Engine) EnableIngest(ing Ingestor) {
	if ing == nil {
		return
	}
	e.ingest.Store(&ing)
}

// ingestor returns the attached Ingestor, or nil.
func (e *Engine) ingestor() Ingestor {
	if p := e.ingest.Load(); p != nil {
		return *p
	}
	return nil
}

// ErrClosed is returned by queries submitted after Close.
var ErrClosed = errors.New("serve: engine closed")

// Close stops the batcher workers and releases the engine's reference
// on the current serving epoch — for a zero-copy snapshot, that unmaps
// the artifact once the last in-flight query drains. In-flight Query
// calls complete; queries submitted afterwards fail with ErrClosed.
// Idempotent. Close must not race Swap.
func (e *Engine) Close() {
	e.b.close()
	if e.closed.CompareAndSwap(false, true) {
		e.cur.Load().release()
	}
}

// Query answers one request without a deadline: normalize, consult the
// cache, then batch. See QueryCtx for the cancellable form.
func (e *Engine) Query(q Query) (Result, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx answers one request under the caller's context — typically
// the HTTP request context, so a disconnected or timed-out client stops
// paying for its evaluation at the next chunk boundary. Cancelled
// evaluations are never cached.
func (e *Engine) QueryCtx(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		// An already-dead context is refused up front — even a cache hit
		// would be an answer nobody is waiting for.
		e.count(q.Op, err)
		return Result{}, err
	}
	// Capture one epoch's serving state for the query's whole lifetime:
	// a concurrent Swap must never mix epochs within one evaluation.
	sv, err := e.acquireServing()
	if err != nil {
		e.count(q.Op, err)
		return Result{}, err
	}
	defer sv.release()
	q, kind, err := normalize(sv, q)
	if err != nil {
		e.count(q.Op, err)
		return Result{}, err
	}
	// Past normalize, q.Op is a valid operation: record its service
	// latency (cache hits included — sub-µs hits are what the windowed
	// percentiles are for) and trace it when a tracer rides the context.
	t0 := time.Now()
	defer func() { e.opHists[q.Op].Record(time.Since(t0)) }()
	ctx, sp := obs.StartSpan(ctx, "query/"+q.Op.String())
	defer sp.End()
	// Whole-graph kernels bypass the point-query batcher: memoized per
	// epoch, leader/follower under the requesters' own deadlines.
	if q.Op == OpTC {
		v, err := snapshotTC(ctx, sv, kind)
		if err != nil {
			sp.Attr("error", err.Error())
			e.count(q.Op, err)
			return Result{}, err
		}
		e.count(q.Op, nil)
		return Result{Value: v}, nil
	}
	if q.Op == OpPattern {
		r, err := snapshotPattern(ctx, sv, kind, q.Pattern)
		if err != nil {
			sp.Attr("error", err.Error())
			e.count(q.Op, err)
			return Result{}, err
		}
		e.count(q.Op, nil)
		return r, nil
	}
	key := cacheKey{epoch: sv.snap.Epoch, q: q}
	if r, ok := e.cache.get(key); ok {
		sp.Attr("cache", "hit")
		r.Cached = true
		e.count(q.Op, nil)
		return r, nil
	}
	bctx, bsp := obs.StartSpan(ctx, "batch")
	r := e.b.do(bctx, sv, q)
	bsp.End()
	if r.Err != "" {
		// If the requester's own context died while the query was queued
		// or evaluating, report the typed context error — callers (and
		// the HTTP status mapping) must be able to tell their timeout
		// from an invalid request.
		err := ctx.Err()
		if err == nil {
			err = errors.New(r.Err)
		}
		sp.Attr("error", err.Error())
		e.count(q.Op, err)
		return Result{}, err
	}
	e.cache.put(key, r)
	e.count(q.Op, nil)
	return r, nil
}

// snapshotTC memoizes the snapshot-wide TC estimate per kind, evaluated
// through the snapshot's Session with the requester's deadline. The
// whole-graph kernel is the engine's one heavyweight query, so it
// bypasses the point-query batcher: the first request leads the
// computation, concurrent requests wait under their own contexts, and
// every later request is a cheap memoized read. The cells live on the
// serving, so a swapped epoch starts fresh and an old epoch's leader
// never publishes into the new one.
func snapshotTC(ctx context.Context, sv *serving, kind core.Kind) (float64, error) {
	cell := sv.tc[kind]
	for {
		cell.mu.Lock()
		if cell.ready {
			v := cell.val
			cell.mu.Unlock()
			return v, nil
		}
		if cell.building == nil {
			// Become the leader. The cell is released via defer so a
			// panic escaping the kernel cannot wedge followers forever
			// (they retry as leaders); only a clean run is cached.
			finished := make(chan struct{})
			cell.building = finished
			cell.mu.Unlock()

			var v float64
			var err error
			completed := false
			func() {
				defer func() {
					cell.mu.Lock()
					cell.building = nil
					if completed && err == nil {
						cell.ready, cell.val = true, v
					}
					cell.mu.Unlock()
					close(finished)
				}()
				v, err = leadTC(ctx, sv, kind)
				completed = true
			}()
			return v, err
		}
		// Follow: wait for the leader under our own context. A leader
		// that failed (e.g. its requester hung up) caches nothing, so
		// loop and take over.
		finished := cell.building
		cell.mu.Unlock()
		select {
		case <-finished:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// leadTC runs the whole-graph TC kernel as the cell leader.
func leadTC(ctx context.Context, sv *serving, kind core.Kind) (float64, error) {
	sess, err := sv.sessionFor(kind)
	if err != nil {
		return 0, err
	}
	res, err := sess.Run(ctx, session.TC{Mode: session.Sketched})
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// snapshotPattern memoizes the whole-graph pattern estimate per (kind,
// canonical pattern spec) with the same leader/follower protocol as
// snapshotTC. spec is already canonical (normalize parsed it).
func snapshotPattern(ctx context.Context, sv *serving, kind core.Kind, spec string) (Result, error) {
	cell := sv.patCellFor(kind, spec)
	for {
		cell.mu.Lock()
		if cell.ready {
			r := cell.val
			cell.mu.Unlock()
			return r, nil
		}
		if cell.building == nil {
			finished := make(chan struct{})
			cell.building = finished
			cell.mu.Unlock()

			var r Result
			var err error
			completed := false
			func() {
				defer func() {
					cell.mu.Lock()
					cell.building = nil
					if completed && err == nil {
						cell.ready, cell.val = true, r
					}
					cell.mu.Unlock()
					close(finished)
				}()
				r, err = leadPattern(ctx, sv, kind, spec)
				completed = true
			}()
			return r, err
		}
		finished := cell.building
		cell.mu.Unlock()
		select {
		case <-finished:
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
}

// leadPattern runs the pattern kernel as the cell leader. Serving always
// answers in estimated mode — the whole point of the sketch layer — so
// the result carries the generalized Thm VII.1 bound when one applies.
func leadPattern(ctx context.Context, sv *serving, kind core.Kind, spec string) (Result, error) {
	p, err := pattern.Parse(spec)
	if err != nil {
		return Result{}, err
	}
	sess, err := sv.sessionFor(kind)
	if err != nil {
		return Result{}, err
	}
	res, err := sess.Run(ctx, session.PatternCount{P: p, Mode: session.Sketched})
	if err != nil {
		return Result{}, err
	}
	return Result{Value: res.Value, Bound: res.Bound}, nil
}

// sessionFor returns the serving's Session view for a resident kind; a
// kind missing from the construction-time map (its build errored) is
// retried here so the caller sees the real error, not a misleading
// not-resident one.
func (sv *serving) sessionFor(kind core.Kind) (*session.Session, error) {
	if sess, ok := sv.sess[kind]; ok {
		return sess, nil
	}
	return buildEngineSession(sv.snap, kind, sv.workers)
}

// buildEngineSession derives the engine's per-kind Session view: the
// snapshot's view of the kind, bounded by the engine's worker option.
func buildEngineSession(s *Snapshot, kind core.Kind, workers int) (*session.Session, error) {
	sess, err := s.Session(kind)
	if err != nil {
		return nil, err
	}
	return sess.With(session.WithWorkers(workers))
}

// normalize validates a query against one epoch's snapshot and rewrites
// it to canonical form so the cache and the batcher's coalescer see
// equivalent requests as equal.
func normalize(sv *serving, q Query) (Query, core.Kind, error) {
	kind := sv.snap.DefaultKind()
	if q.Kind != "" {
		k, err := ParseKind(q.Kind)
		if err != nil {
			return q, 0, err
		}
		if sv.snap.PG(k) == nil {
			return q, 0, fmt.Errorf("serve: sketch kind %v not resident in snapshot", k)
		}
		kind = k
	}
	q.Kind = kind.String()
	if q.Measure < mining.Jaccard || q.Measure > mining.ResourceAllocation {
		return q, 0, fmt.Errorf("serve: unknown measure %d", int(q.Measure))
	}
	n := uint32(sv.snap.G.NumVertices())
	checkV := func(v uint32) error {
		if v >= n {
			return fmt.Errorf("serve: vertex %d out of range [0,%d)", v, n)
		}
		return nil
	}
	if q.Op != OpPattern {
		q.Pattern = ""
	}
	switch q.Op {
	case OpTC:
		q.U, q.V, q.K, q.Measure = 0, 0, 0, 0
	case OpPattern:
		p, err := pattern.Parse(q.Pattern)
		if err != nil {
			return q, 0, err
		}
		// Canonical spec: aliases and edge-list orderings of the same
		// pattern share one memo cell (and router answer).
		q.Pattern = p.String()
		q.U, q.V, q.K, q.Measure = 0, 0, 0, 0
	case OpLocalTC, OpNeighbors:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		q.V, q.K, q.Measure = 0, 0, 0
	case OpSimilarity:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		if err := checkV(q.V); err != nil {
			return q, 0, err
		}
		// The counting measures are symmetric in both definition and
		// estimator, so (v,u) shares (u,v)'s cache line. The weighted
		// estimators (Adamic–Adar, Resource Allocation) are not exactly
		// symmetric on sample-based sketches — their fallback streams
		// u's neighborhood — so those keep their argument order.
		if q.U > q.V && q.Measure.Counting() {
			q.U, q.V = q.V, q.U
		}
		q.K = 0
	case OpTopK:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		if q.K <= 0 {
			q.K = 10
		}
		if q.K > 1000 {
			q.K = 1000
		}
		q.V = 0
	default:
		return q, 0, fmt.Errorf("serve: unknown op %d", int(q.Op))
	}
	return q, kind, nil
}

// eval computes one normalized point query on the epoch captured at
// Query entry (batcher side), through that snapshot's Session with the
// requester's deadline.
func (e *Engine) eval(ctx context.Context, sv *serving, q Query) Result {
	ctx, sp := obs.StartSpan(ctx, "eval/"+q.Op.String())
	defer sp.End()
	kind, err := ParseKind(q.Kind)
	if err != nil {
		return Result{Err: err.Error()}
	}
	sess, err := sv.sessionFor(kind)
	if err != nil {
		return Result{Err: err.Error()}
	}
	switch q.Op {
	case OpLocalTC:
		res, err := sess.Run(ctx, session.LocalTC{U: q.U, Mode: session.Sketched})
		if err != nil {
			return Result{Err: err.Error()}
		}
		return Result{Value: res.Value}
	case OpSimilarity:
		res, err := sess.Run(ctx, session.VertexSim{U: q.U, V: q.V, Measure: q.Measure, Mode: session.Sketched})
		if err != nil {
			return Result{Err: err.Error()}
		}
		return Result{Value: res.Value}
	case OpNeighbors:
		return Result{Neighbors: sv.snap.G.Neighbors(q.U)}
	case OpTopK:
		return topK(ctx, sv.snap, sv.snap.pgs[kind], q)
	}
	return Result{Err: fmt.Sprintf("serve: op %v is not a point query", q.Op)}
}

// topK scores every 2-hop non-neighbor of q.U with the sketch similarity
// and returns the K best — the online form of Listing 5's candidate
// scoring (a positive common-neighbor score implies a 2-hop path, so no
// candidate is lost for the counting measures). The candidate set of a
// hub can be large, so the context is observed once per 1-hop neighbor.
func topK(ctx context.Context, snap *Snapshot, pg *core.PG, q Query) Result {
	g := snap.G
	v := q.U
	done := ctx.Done()
	seen := map[uint32]struct{}{v: {}}
	for _, u := range g.Neighbors(v) {
		seen[u] = struct{}{}
	}
	var scored []Scored
	for _, u := range g.Neighbors(v) {
		select {
		case <-done:
			return Result{Err: ctx.Err().Error()}
		default:
		}
		for _, w := range g.Neighbors(u) {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			scored = append(scored, Scored{V: w, Score: mining.PGSimilarity(g, pg, v, w, q.Measure)})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].V < scored[j].V
	})
	if len(scored) > q.K {
		scored = scored[:q.K:q.K]
	}
	return Result{TopK: scored}
}

func (e *Engine) count(op Op, err error) {
	if op >= opMax {
		op = 0 // slot 0 accumulates malformed-op traffic
	}
	if err != nil {
		e.opCounts[op].errs.Add(1)
	} else {
		e.opCounts[op].ok.Add(1)
	}
}
