package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/mining"
	"probgraph/internal/par"
	"probgraph/internal/session"
)

// Op identifies a query operation.
type Op uint8

const (
	// OpTC is the snapshot-wide triangle-count estimate (§VII).
	OpTC Op = iota + 1
	// OpLocalTC estimates the triangles through vertex U.
	OpLocalTC
	// OpSimilarity scores the vertex pair (U, V) with Measure.
	OpSimilarity
	// OpTopK returns the K best link-prediction candidates for U: 2-hop
	// non-neighbors ranked by Measure (Listing 5's scoring step, online).
	OpTopK
	// OpNeighbors returns the exact adjacency list of U.
	OpNeighbors

	opMax
)

// String returns the wire name of the operation.
func (op Op) String() string {
	switch op {
	case OpTC:
		return "tc"
	case OpLocalTC:
		return "localtc"
	case OpSimilarity:
		return "similarity"
	case OpTopK:
		return "topk"
	case OpNeighbors:
		return "neighbors"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// ParseOp parses a wire operation name.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tc", "triangles":
		return OpTC, nil
	case "localtc", "ltc":
		return OpLocalTC, nil
	case "similarity", "sim":
		return OpSimilarity, nil
	case "topk", "linkpred":
		return OpTopK, nil
	case "neighbors", "neigh":
		return OpNeighbors, nil
	}
	return 0, fmt.Errorf("serve: unknown op %q", s)
}

// ParseMeasure parses a Listing 3 measure name (as printed by
// mining.Measure.String, case-insensitively, plus short aliases).
func ParseMeasure(s string) (mining.Measure, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "jaccard", "j":
		return mining.Jaccard, nil
	case "overlap", "o":
		return mining.Overlap, nil
	case "commonneighbors", "common", "cn":
		return mining.CommonNeighbors, nil
	case "totalneighbors", "total", "tn":
		return mining.TotalNeighbors, nil
	case "adamicadar", "aa":
		return mining.AdamicAdar, nil
	case "resourceallocation", "ra":
		return mining.ResourceAllocation, nil
	}
	return 0, fmt.Errorf("serve: unknown measure %q", s)
}

// ParseKind parses a sketch-kind name — the wire-layer companion of
// ParseOp and ParseMeasure, delegating to core.ParseKind.
func ParseKind(s string) (core.Kind, error) { return core.ParseKind(s) }

// Query is one typed request against a snapshot. The zero Measure is
// Jaccard; an empty Kind uses the snapshot's default representation.
// Queries are normalized (symmetric pairs ordered, irrelevant fields
// zeroed, Kind canonicalized) before they reach the cache and batcher,
// so equivalent requests share one cache line and coalesce.
type Query struct {
	Op      Op
	U, V    uint32
	K       int
	Measure mining.Measure
	Kind    string
}

// Scored is a ranked candidate vertex.
type Scored struct {
	V     uint32  `json:"v"`
	Score float64 `json:"score"`
}

// Result is a query answer. Slices it carries alias engine-owned or
// cached storage and must be treated as read-only.
type Result struct {
	Value     float64  `json:"value"`
	TopK      []Scored `json:"topk,omitempty"`
	Neighbors []uint32 `json:"neighbors,omitempty"`
	Cached    bool     `json:"cached"`
	Err       string   `json:"-"`
}

// Options tunes an Engine. Zero values: GOMAXPROCS workers, batches of
// 64 coalesced within 200µs, a 65536-entry cache. Negative values
// disable the feature: CacheSize < 0 turns caching off, MaxDelay < 0
// makes the batcher take only already-queued requests.
type Options struct {
	Workers   int
	MaxBatch  int
	MaxDelay  time.Duration
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	switch {
	case o.MaxDelay == 0:
		o.MaxDelay = 200 * time.Microsecond
	case o.MaxDelay < 0:
		o.MaxDelay = 0 // no wait: batch whatever is queued right now
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1 << 16
	}
	return o
}

// tcCell lazily materializes the snapshot-wide TC estimate per kind.
// One leader computes under its own context while followers wait on
// their own — a follower's deadline fires on time even mid-leader-run,
// and a leader cut short by its requester's deadline caches nothing
// (the next request takes over as leader).
type tcCell struct {
	mu       sync.Mutex
	ready    bool
	val      float64
	building chan struct{} // non-nil while a leader computes; closed when it finishes
}

// Engine serves queries against one immutable snapshot: cache in front,
// coalescing batcher behind, sketch kernels at the bottom. Safe for
// concurrent use; Close releases the worker pool.
type Engine struct {
	snap *Snapshot
	opts Options

	cache *lru
	b     *batcher
	tc    map[core.Kind]*tcCell
	sess  map[core.Kind]*session.Session // per-kind Session views, engine workers

	opCounts [opMax]countErr
	start    time.Time
}

// countErr pairs per-op served/error counters.
type countErr struct {
	ok, errs atomic.Int64
}

// New starts an engine over the snapshot.
func New(s *Snapshot, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		snap:  s,
		opts:  opts,
		cache: newLRU(opts.CacheSize),
		tc:    make(map[core.Kind]*tcCell, len(s.kinds)),
		sess:  make(map[core.Kind]*session.Session, len(s.kinds)),
		start: time.Now(),
	}
	for _, k := range s.kinds {
		e.tc[k] = &tcCell{}
		if sess, err := buildEngineSession(s, k, opts.Workers); err == nil {
			e.sess[k] = sess
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	e.b = newBatcher(e.eval, workers, opts.MaxBatch, opts.MaxDelay)
	return e
}

// Snapshot returns the snapshot the engine serves.
func (e *Engine) Snapshot() *Snapshot { return e.snap }

// Close stops the batcher workers. In-flight Query calls complete.
func (e *Engine) Close() { e.b.close() }

// Query answers one request without a deadline: normalize, consult the
// cache, then batch. See QueryCtx for the cancellable form.
func (e *Engine) Query(q Query) (Result, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx answers one request under the caller's context — typically
// the HTTP request context, so a disconnected or timed-out client stops
// paying for its evaluation at the next chunk boundary. Cancelled
// evaluations are never cached.
func (e *Engine) QueryCtx(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		// An already-dead context is refused up front — even a cache hit
		// would be an answer nobody is waiting for.
		e.count(q.Op, err)
		return Result{}, err
	}
	q, kind, err := e.normalize(q)
	if err != nil {
		e.count(q.Op, err)
		return Result{}, err
	}
	if q.Op == OpTC {
		v, err := e.snapshotTC(ctx, kind)
		if err != nil {
			e.count(q.Op, err)
			return Result{}, err
		}
		e.count(q.Op, nil)
		return Result{Value: v}, nil
	}
	key := cacheKey{epoch: e.snap.Epoch, q: q}
	if r, ok := e.cache.get(key); ok {
		r.Cached = true
		e.count(q.Op, nil)
		return r, nil
	}
	r := e.b.do(ctx, q)
	if r.Err != "" {
		// If the requester's own context died while the query was queued
		// or evaluating, report the typed context error — callers (and
		// the HTTP status mapping) must be able to tell their timeout
		// from an invalid request.
		err := ctx.Err()
		if err == nil {
			err = fmt.Errorf("%s", r.Err)
		}
		e.count(q.Op, err)
		return Result{}, err
	}
	e.cache.put(key, r)
	e.count(q.Op, nil)
	return r, nil
}

// snapshotTC memoizes the snapshot-wide TC estimate per kind, evaluated
// through the snapshot's Session with the requester's deadline. The
// whole-graph kernel is the engine's one heavyweight query, so it
// bypasses the point-query batcher: the first request leads the
// computation, concurrent requests wait under their own contexts, and
// every later request is a cheap memoized read.
func (e *Engine) snapshotTC(ctx context.Context, kind core.Kind) (float64, error) {
	cell := e.tc[kind]
	for {
		cell.mu.Lock()
		if cell.ready {
			v := cell.val
			cell.mu.Unlock()
			return v, nil
		}
		if cell.building == nil {
			// Become the leader. The cell is released via defer so a
			// panic escaping the kernel cannot wedge followers forever
			// (they retry as leaders); only a clean run is cached.
			finished := make(chan struct{})
			cell.building = finished
			cell.mu.Unlock()

			var v float64
			var err error
			completed := false
			func() {
				defer func() {
					cell.mu.Lock()
					cell.building = nil
					if completed && err == nil {
						cell.ready, cell.val = true, v
					}
					cell.mu.Unlock()
					close(finished)
				}()
				v, err = e.leadTC(ctx, kind)
				completed = true
			}()
			return v, err
		}
		// Follow: wait for the leader under our own context. A leader
		// that failed (e.g. its requester hung up) caches nothing, so
		// loop and take over.
		finished := cell.building
		cell.mu.Unlock()
		select {
		case <-finished:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// leadTC runs the whole-graph TC kernel as the cell leader.
func (e *Engine) leadTC(ctx context.Context, kind core.Kind) (float64, error) {
	sess, err := e.sessionFor(kind)
	if err != nil {
		return 0, err
	}
	res, err := sess.Run(ctx, session.TC{Mode: session.Sketched})
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// sessionFor returns the engine's Session view for a resident kind; a
// kind missing from the construction-time map (its build errored) is
// retried here so the caller sees the real error, not a misleading
// not-resident one.
func (e *Engine) sessionFor(kind core.Kind) (*session.Session, error) {
	if sess, ok := e.sess[kind]; ok {
		return sess, nil
	}
	return buildEngineSession(e.snap, kind, e.opts.Workers)
}

// buildEngineSession derives the engine's per-kind Session view: the
// snapshot's view of the kind, bounded by the engine's worker option.
func buildEngineSession(s *Snapshot, kind core.Kind, workers int) (*session.Session, error) {
	sess, err := s.Session(kind)
	if err != nil {
		return nil, err
	}
	return sess.With(session.WithWorkers(workers))
}

// normalize validates a query and rewrites it to canonical form so the
// cache and the batcher's coalescer see equivalent requests as equal.
func (e *Engine) normalize(q Query) (Query, core.Kind, error) {
	kind := e.snap.DefaultKind()
	if q.Kind != "" {
		k, err := ParseKind(q.Kind)
		if err != nil {
			return q, 0, err
		}
		if e.snap.PG(k) == nil {
			return q, 0, fmt.Errorf("serve: sketch kind %v not resident in snapshot", k)
		}
		kind = k
	}
	q.Kind = kind.String()
	if q.Measure < mining.Jaccard || q.Measure > mining.ResourceAllocation {
		return q, 0, fmt.Errorf("serve: unknown measure %d", int(q.Measure))
	}
	n := uint32(e.snap.G.NumVertices())
	checkV := func(v uint32) error {
		if v >= n {
			return fmt.Errorf("serve: vertex %d out of range [0,%d)", v, n)
		}
		return nil
	}
	switch q.Op {
	case OpTC:
		q.U, q.V, q.K, q.Measure = 0, 0, 0, 0
	case OpLocalTC, OpNeighbors:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		q.V, q.K, q.Measure = 0, 0, 0
	case OpSimilarity:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		if err := checkV(q.V); err != nil {
			return q, 0, err
		}
		// The counting measures are symmetric in both definition and
		// estimator, so (v,u) shares (u,v)'s cache line. The weighted
		// estimators (Adamic–Adar, Resource Allocation) are not exactly
		// symmetric on sample-based sketches — their fallback streams
		// u's neighborhood — so those keep their argument order.
		if q.U > q.V && q.Measure.Counting() {
			q.U, q.V = q.V, q.U
		}
		q.K = 0
	case OpTopK:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		if q.K <= 0 {
			q.K = 10
		}
		if q.K > 1000 {
			q.K = 1000
		}
		q.V = 0
	default:
		return q, 0, fmt.Errorf("serve: unknown op %d", int(q.Op))
	}
	return q, kind, nil
}

// eval computes one normalized point query on the snapshot (batcher
// side), through the snapshot's Session with the requester's deadline.
func (e *Engine) eval(ctx context.Context, q Query) Result {
	kind, err := ParseKind(q.Kind)
	if err != nil {
		return Result{Err: err.Error()}
	}
	sess, err := e.sessionFor(kind)
	if err != nil {
		return Result{Err: err.Error()}
	}
	switch q.Op {
	case OpLocalTC:
		res, err := sess.Run(ctx, session.LocalTC{U: q.U, Mode: session.Sketched})
		if err != nil {
			return Result{Err: err.Error()}
		}
		return Result{Value: res.Value}
	case OpSimilarity:
		res, err := sess.Run(ctx, session.VertexSim{U: q.U, V: q.V, Measure: q.Measure, Mode: session.Sketched})
		if err != nil {
			return Result{Err: err.Error()}
		}
		return Result{Value: res.Value}
	case OpNeighbors:
		return Result{Neighbors: e.snap.G.Neighbors(q.U)}
	case OpTopK:
		return e.topK(ctx, e.snap.pgs[kind], q)
	}
	return Result{Err: fmt.Sprintf("serve: op %v is not a point query", q.Op)}
}

// topK scores every 2-hop non-neighbor of q.U with the sketch similarity
// and returns the K best — the online form of Listing 5's candidate
// scoring (a positive common-neighbor score implies a 2-hop path, so no
// candidate is lost for the counting measures). The candidate set of a
// hub can be large, so the context is observed once per 1-hop neighbor.
func (e *Engine) topK(ctx context.Context, pg *core.PG, q Query) Result {
	g := e.snap.G
	v := q.U
	done := ctx.Done()
	seen := map[uint32]struct{}{v: {}}
	for _, u := range g.Neighbors(v) {
		seen[u] = struct{}{}
	}
	var scored []Scored
	for _, u := range g.Neighbors(v) {
		select {
		case <-done:
			return Result{Err: ctx.Err().Error()}
		default:
		}
		for _, w := range g.Neighbors(u) {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			scored = append(scored, Scored{V: w, Score: mining.PGSimilarity(g, pg, v, w, q.Measure)})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].V < scored[j].V
	})
	if len(scored) > q.K {
		scored = scored[:q.K:q.K]
	}
	return Result{TopK: scored}
}

func (e *Engine) count(op Op, err error) {
	if op >= opMax {
		op = 0 // slot 0 accumulates malformed-op traffic
	}
	if err != nil {
		e.opCounts[op].errs.Add(1)
	} else {
		e.opCounts[op].ok.Add(1)
	}
}
