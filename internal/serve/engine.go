package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/mining"
	"probgraph/internal/par"
)

// Op identifies a query operation.
type Op uint8

const (
	// OpTC is the snapshot-wide triangle-count estimate (§VII).
	OpTC Op = iota + 1
	// OpLocalTC estimates the triangles through vertex U.
	OpLocalTC
	// OpSimilarity scores the vertex pair (U, V) with Measure.
	OpSimilarity
	// OpTopK returns the K best link-prediction candidates for U: 2-hop
	// non-neighbors ranked by Measure (Listing 5's scoring step, online).
	OpTopK
	// OpNeighbors returns the exact adjacency list of U.
	OpNeighbors

	opMax
)

// String returns the wire name of the operation.
func (op Op) String() string {
	switch op {
	case OpTC:
		return "tc"
	case OpLocalTC:
		return "localtc"
	case OpSimilarity:
		return "similarity"
	case OpTopK:
		return "topk"
	case OpNeighbors:
		return "neighbors"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// ParseOp parses a wire operation name.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tc", "triangles":
		return OpTC, nil
	case "localtc", "ltc":
		return OpLocalTC, nil
	case "similarity", "sim":
		return OpSimilarity, nil
	case "topk", "linkpred":
		return OpTopK, nil
	case "neighbors", "neigh":
		return OpNeighbors, nil
	}
	return 0, fmt.Errorf("serve: unknown op %q", s)
}

// ParseMeasure parses a Listing 3 measure name (as printed by
// mining.Measure.String, case-insensitively, plus short aliases).
func ParseMeasure(s string) (mining.Measure, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "jaccard", "j":
		return mining.Jaccard, nil
	case "overlap", "o":
		return mining.Overlap, nil
	case "commonneighbors", "common", "cn":
		return mining.CommonNeighbors, nil
	case "totalneighbors", "total", "tn":
		return mining.TotalNeighbors, nil
	case "adamicadar", "aa":
		return mining.AdamicAdar, nil
	case "resourceallocation", "ra":
		return mining.ResourceAllocation, nil
	}
	return 0, fmt.Errorf("serve: unknown measure %q", s)
}

// ParseKind parses a sketch-kind name — the wire-layer companion of
// ParseOp and ParseMeasure, delegating to core.ParseKind.
func ParseKind(s string) (core.Kind, error) { return core.ParseKind(s) }

// Query is one typed request against a snapshot. The zero Measure is
// Jaccard; an empty Kind uses the snapshot's default representation.
// Queries are normalized (symmetric pairs ordered, irrelevant fields
// zeroed, Kind canonicalized) before they reach the cache and batcher,
// so equivalent requests share one cache line and coalesce.
type Query struct {
	Op      Op
	U, V    uint32
	K       int
	Measure mining.Measure
	Kind    string
}

// Scored is a ranked candidate vertex.
type Scored struct {
	V     uint32  `json:"v"`
	Score float64 `json:"score"`
}

// Result is a query answer. Slices it carries alias engine-owned or
// cached storage and must be treated as read-only.
type Result struct {
	Value     float64  `json:"value"`
	TopK      []Scored `json:"topk,omitempty"`
	Neighbors []uint32 `json:"neighbors,omitempty"`
	Cached    bool     `json:"cached"`
	Err       string   `json:"-"`
}

// Options tunes an Engine. Zero values: GOMAXPROCS workers, batches of
// 64 coalesced within 200µs, a 65536-entry cache. Negative values
// disable the feature: CacheSize < 0 turns caching off, MaxDelay < 0
// makes the batcher take only already-queued requests.
type Options struct {
	Workers   int
	MaxBatch  int
	MaxDelay  time.Duration
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	switch {
	case o.MaxDelay == 0:
		o.MaxDelay = 200 * time.Microsecond
	case o.MaxDelay < 0:
		o.MaxDelay = 0 // no wait: batch whatever is queued right now
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1 << 16
	}
	return o
}

// tcCell lazily materializes the snapshot-wide TC estimate per kind.
type tcCell struct {
	once sync.Once
	val  float64
}

// Engine serves queries against one immutable snapshot: cache in front,
// coalescing batcher behind, sketch kernels at the bottom. Safe for
// concurrent use; Close releases the worker pool.
type Engine struct {
	snap *Snapshot
	opts Options

	cache *lru
	b     *batcher
	tc    map[core.Kind]*tcCell

	opCounts [opMax]countErr
	start    time.Time
}

// countErr pairs per-op served/error counters.
type countErr struct {
	ok, errs atomic.Int64
}

// New starts an engine over the snapshot.
func New(s *Snapshot, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		snap:  s,
		opts:  opts,
		cache: newLRU(opts.CacheSize),
		tc:    make(map[core.Kind]*tcCell, len(s.kinds)),
		start: time.Now(),
	}
	for _, k := range s.kinds {
		e.tc[k] = &tcCell{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	e.b = newBatcher(e.eval, workers, opts.MaxBatch, opts.MaxDelay)
	return e
}

// Snapshot returns the snapshot the engine serves.
func (e *Engine) Snapshot() *Snapshot { return e.snap }

// Close stops the batcher workers. In-flight Query calls complete.
func (e *Engine) Close() { e.b.close() }

// Query answers one request: normalize, consult the cache, then batch.
func (e *Engine) Query(q Query) (Result, error) {
	q, kind, err := e.normalize(q)
	if err != nil {
		e.count(q.Op, err)
		return Result{}, err
	}
	if q.Op == OpTC {
		cell := e.tc[kind]
		cell.once.Do(func() {
			cell.val = mining.PGTC(e.snap.G, e.snap.pgs[kind], e.opts.Workers)
		})
		e.count(q.Op, nil)
		return Result{Value: cell.val}, nil
	}
	key := cacheKey{epoch: e.snap.Epoch, q: q}
	if r, ok := e.cache.get(key); ok {
		r.Cached = true
		e.count(q.Op, nil)
		return r, nil
	}
	r := e.b.do(q)
	if r.Err != "" {
		err := fmt.Errorf("%s", r.Err)
		e.count(q.Op, err)
		return Result{}, err
	}
	e.cache.put(key, r)
	e.count(q.Op, nil)
	return r, nil
}

// normalize validates a query and rewrites it to canonical form so the
// cache and the batcher's coalescer see equivalent requests as equal.
func (e *Engine) normalize(q Query) (Query, core.Kind, error) {
	kind := e.snap.DefaultKind()
	if q.Kind != "" {
		k, err := ParseKind(q.Kind)
		if err != nil {
			return q, 0, err
		}
		if e.snap.PG(k) == nil {
			return q, 0, fmt.Errorf("serve: sketch kind %v not resident in snapshot", k)
		}
		kind = k
	}
	q.Kind = kind.String()
	if q.Measure < mining.Jaccard || q.Measure > mining.ResourceAllocation {
		return q, 0, fmt.Errorf("serve: unknown measure %d", int(q.Measure))
	}
	n := uint32(e.snap.G.NumVertices())
	checkV := func(v uint32) error {
		if v >= n {
			return fmt.Errorf("serve: vertex %d out of range [0,%d)", v, n)
		}
		return nil
	}
	switch q.Op {
	case OpTC:
		q.U, q.V, q.K, q.Measure = 0, 0, 0, 0
	case OpLocalTC, OpNeighbors:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		q.V, q.K, q.Measure = 0, 0, 0
	case OpSimilarity:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		if err := checkV(q.V); err != nil {
			return q, 0, err
		}
		// The counting measures are symmetric in both definition and
		// estimator, so (v,u) shares (u,v)'s cache line. The weighted
		// estimators (Adamic–Adar, Resource Allocation) are not exactly
		// symmetric on sample-based sketches — their fallback streams
		// u's neighborhood — so those keep their argument order.
		if q.U > q.V && q.Measure.Counting() {
			q.U, q.V = q.V, q.U
		}
		q.K = 0
	case OpTopK:
		if err := checkV(q.U); err != nil {
			return q, 0, err
		}
		if q.K <= 0 {
			q.K = 10
		}
		if q.K > 1000 {
			q.K = 1000
		}
		q.V = 0
	default:
		return q, 0, fmt.Errorf("serve: unknown op %d", int(q.Op))
	}
	return q, kind, nil
}

// eval computes one normalized point query on the snapshot (batcher side).
func (e *Engine) eval(q Query) Result {
	kind, err := ParseKind(q.Kind)
	if err != nil {
		return Result{Err: err.Error()}
	}
	g, pg := e.snap.G, e.snap.pgs[kind]
	switch q.Op {
	case OpLocalTC:
		var c float64
		for _, u := range g.Neighbors(q.U) {
			c += pg.IntCard(q.U, u)
		}
		return Result{Value: c / 2}
	case OpSimilarity:
		return Result{Value: mining.PGSimilarity(g, pg, q.U, q.V, q.Measure)}
	case OpNeighbors:
		return Result{Neighbors: g.Neighbors(q.U)}
	case OpTopK:
		return Result{TopK: e.topK(pg, q)}
	}
	return Result{Err: fmt.Sprintf("serve: op %v is not a point query", q.Op)}
}

// topK scores every 2-hop non-neighbor of q.U with the sketch similarity
// and returns the K best — the online form of Listing 5's candidate
// scoring (a positive common-neighbor score implies a 2-hop path, so no
// candidate is lost for the counting measures).
func (e *Engine) topK(pg *core.PG, q Query) []Scored {
	g := e.snap.G
	v := q.U
	seen := map[uint32]struct{}{v: {}}
	for _, u := range g.Neighbors(v) {
		seen[u] = struct{}{}
	}
	var scored []Scored
	for _, u := range g.Neighbors(v) {
		for _, w := range g.Neighbors(u) {
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			scored = append(scored, Scored{V: w, Score: mining.PGSimilarity(g, pg, v, w, q.Measure)})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].V < scored[j].V
	})
	if len(scored) > q.K {
		scored = scored[:q.K:q.K]
	}
	return scored
}

func (e *Engine) count(op Op, err error) {
	if op >= opMax {
		op = 0 // slot 0 accumulates malformed-op traffic
	}
	if err != nil {
		e.opCounts[op].errs.Add(1)
	} else {
		e.opCounts[op].ok.Add(1)
	}
}
