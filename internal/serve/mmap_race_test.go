package serve

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/pgio"
)

// saveArtifactFile writes the snapshot to a .pg file and returns its
// path — the fixture for every mmap-serving test.
func saveArtifactFile(t *testing.T, s *Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.pg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMmapServingIdentity: an engine over a zero-copy snapshot answers
// Float64bits-identically to one over the heap decode of the same file,
// and reports its mode in /v1/stats.
func TestMmapServingIdentity(t *testing.T) {
	path := saveArtifactFile(t, testSnapshot(t, core.BF, core.KMV))

	mm, err := OpenArtifactMmap(path, SnapshotConfig{Workers: 4})
	if err != nil {
		t.Fatalf("OpenArtifactMmap: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := OpenArtifact(f, SnapshotConfig{Workers: 4})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	em := newTestEngine(t, mm)
	eh := newTestEngine(t, heap)
	st := em.Stats()
	if st.DecodeMode != mm.Mode {
		t.Fatalf("stats decode_mode %q, snapshot mode %q", st.DecodeMode, mm.Mode)
	}
	if mm.Mode == pgio.ModeMmap && st.MappedBytes <= 0 {
		t.Fatalf("mmap snapshot reports mapped_bytes %d", st.MappedBytes)
	}
	n := uint32(heap.G.NumVertices())
	for i := uint32(0); i < 64; i++ {
		q := Query{Op: OpSimilarity, U: (i * 37) % n, V: (i*101 + 13) % n}
		rm, err := em.Query(q)
		if err != nil {
			t.Fatalf("mmap %v: %v", q, err)
		}
		rh, err := eh.Query(q)
		if err != nil {
			t.Fatalf("heap %v: %v", q, err)
		}
		if math.Float64bits(rm.Value) != math.Float64bits(rh.Value) {
			t.Fatalf("%v: mmap answer %v differs from heap %v", q, rm.Value, rh.Value)
		}
	}
}

// TestMmapSwapUnderLoad is the epoch-retirement contract, run under the
// race detector in CI: queries hammer the engine while mmap-backed
// snapshots are hot-swapped in, so retiring epochs unmap concurrently
// with evaluation. Every answer must stay bit-correct (a query that read
// unmapped rows would fault or corrupt), and each retired snapshot's
// mapping must actually be released once its last query drains — the
// leak check for the refcount plumbing.
func TestMmapSwapUnderLoad(t *testing.T) {
	path := saveArtifactFile(t, testSnapshot(t, core.BF))

	first, err := OpenArtifactMmap(path, SnapshotConfig{Workers: 4})
	if err != nil {
		t.Fatalf("OpenArtifactMmap: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := OpenArtifact(f, SnapshotConfig{Workers: 4})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	eh := newTestEngine(t, heap)

	n := uint32(heap.G.NumVertices())
	const probes = 32
	want := make([]uint64, probes)
	for i := uint32(0); i < probes; i++ {
		r, err := eh.Query(Query{Op: OpSimilarity, U: (i * 37) % n, V: (i*101 + 13) % n})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = math.Float64bits(r.Value)
	}

	e := New(first, Options{Workers: 4, CacheSize: -1}) // no cache: every query walks the rows
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				p := i % probes
				r, err := e.Query(Query{Op: OpSimilarity, U: (p * 37) % n, V: (p*101 + 13) % n})
				if err != nil {
					errc <- err
					return
				}
				if math.Float64bits(r.Value) != want[p] {
					t.Errorf("probe %d: got bits %x, want %x", p, math.Float64bits(r.Value), want[p])
					return
				}
			}
		}(uint32(w))
	}

	retired := make([]*Snapshot, 0, 8)
	for s := 0; s < 8; s++ {
		next, err := OpenArtifactMmap(path, SnapshotConfig{Workers: 4})
		if err != nil {
			t.Fatalf("swap %d: %v", s, err)
		}
		old, err := e.Swap(next)
		if err != nil {
			t.Fatalf("swap %d: %v", s, err)
		}
		retired = append(retired, old)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("query under swap: %v", err)
	default:
	}

	// Every retired epoch has drained: its mapping must be gone.
	for i, s := range retired {
		if s.closer != nil {
			t.Fatalf("retired snapshot %d (epoch %d) still holds its mapping", i, s.Epoch)
		}
	}
	last := e.Snapshot()
	e.Close()
	e.Close() // idempotent, and the second must not double-release
	if last.closer != nil {
		t.Fatal("Close did not release the final epoch's mapping")
	}
	if _, err := e.Query(Query{Op: OpSimilarity, U: 1, V: 2}); err != ErrClosed {
		t.Fatalf("query after Close: got %v, want ErrClosed", err)
	}
}
