package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// WireQuery is the JSON request body of POST /v1/query.
type WireQuery struct {
	Op      string `json:"op"`
	U       uint32 `json:"u"`
	V       uint32 `json:"v"`
	K       int    `json:"k,omitempty"`
	Measure string `json:"measure,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Pattern string `json:"pattern,omitempty"`
}

// ToQuery converts the wire form to a typed Query.
func (w WireQuery) ToQuery() (Query, error) {
	op, err := ParseOp(w.Op)
	if err != nil {
		return Query{}, err
	}
	m, err := ParseMeasure(w.Measure)
	if err != nil {
		return Query{}, err
	}
	return Query{Op: op, U: w.U, V: w.V, K: w.K, Measure: m, Kind: w.Kind, Pattern: w.Pattern}, nil
}

// FromQuery converts a typed Query to its wire form.
func FromQuery(q Query) WireQuery {
	return WireQuery{
		Op: q.Op.String(), U: q.U, V: q.V, K: q.K,
		Measure: q.Measure.String(), Kind: q.Kind, Pattern: q.Pattern,
	}
}

// wireError is the JSON error envelope (non-200 responses).
type wireError struct {
	Error string `json:"error"`
}

// Querier answers one typed query — the serving surface behind POST
// /v1/query. Engine implements it in-process; cluster.Router implements
// it by routing to shards, which is how pgrouter serves the same /v1/*
// API pgserve does.
type Querier interface {
	QueryCtx(ctx context.Context, q Query) (Result, error)
}

// StatusCoder lets an error pick its own HTTP status — the hook typed
// transport errors (e.g. a cluster with no live shards) use to surface
// as 503 instead of the default 400. Checked via errors.As, so wrapped
// errors carry their status through.
type StatusCoder interface {
	error
	HTTPStatus() int
}

// QueryHandler serves POST /v1/query against any Querier: decode, query
// under the request context, map the error taxonomy onto HTTP statuses.
func QueryHandler(qr Querier) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var wq WireQuery
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&wq); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding query: %w", err))
			return
		}
		q, err := wq.ToQuery()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// The request context carries the client's disconnect and any
		// server write deadline: a gone client stops paying for its
		// evaluation at the next chunk boundary.
		res, err := qr.QueryCtx(r.Context(), q)
		if err != nil {
			var sc StatusCoder
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				httpError(w, http.StatusGatewayTimeout, err)
			case errors.Is(err, context.Canceled):
				// The client is gone; the status is for the access log.
				httpError(w, http.StatusServiceUnavailable, err)
			case errors.As(err, &sc):
				httpError(w, sc.HTTPStatus(), err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	}
}

// Handler exposes the engine over HTTP JSON:
//
//	POST /v1/query   {"op":"similarity","u":3,"v":9,"measure":"jaccard"} → Result
//	POST /v1/ingest  {"add":[[1,2],[2,3]],"del":[[0,7]]} → IngestResult (needs EnableIngest)
//	GET  /v1/stats   → Stats
//	GET  /healthz    → "ok"
func Handler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", e.handleIngest)
	mux.HandleFunc("POST /v1/query", QueryHandler(e))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(wireError{Error: err.Error()})
}

// HTTPDoer returns a query function that round-trips through a server's
// /v1/query endpoint — the client side used by pgload and the in-process
// serving benchmark. base is e.g. "http://127.0.0.1:8080"; a nil client
// uses http.DefaultClient.
func HTTPDoer(client *http.Client, base string) func(Query) (Result, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := base + "/v1/query"
	return func(q Query) (Result, error) {
		body, err := json.Marshal(FromQuery(q))
		if err != nil {
			return Result{}, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return Result{}, err
		}
		defer func() {
			io.Copy(io.Discard, resp.Body) // drain so the conn is reused
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			var we wireError
			if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Error != "" {
				return Result{}, fmt.Errorf("server: %s", we.Error)
			}
			return Result{}, fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return Result{}, err
		}
		return res, nil
	}
}

// FetchStats GETs and decodes a server's /v1/stats.
func FetchStats(client *http.Client, base string) (Stats, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return Stats{}, err
	}
	return s, nil
}
