package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherCoalescing fires many concurrent clients asking the same
// query at a slow evaluator: all must get the answer, and the evaluator
// must run far fewer times than there are clients.
func TestBatcherCoalescing(t *testing.T) {
	var evals atomic.Int64
	b := newBatcher(func(_ context.Context, _ *serving, q Query) Result {
		evals.Add(1)
		time.Sleep(2 * time.Millisecond) // window for requests to pile up
		return Result{Value: float64(q.U)}
	}, 2, 64, time.Millisecond)
	defer b.close()

	const clients = 64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := b.do(context.Background(), testServing(), Query{Op: OpLocalTC, U: 7})
			if r.Err != "" || r.Value != 7 {
				t.Errorf("coalesced result = %+v", r)
			}
		}()
	}
	wg.Wait()
	if n := evals.Load(); n >= clients {
		t.Fatalf("identical queries evaluated %d times for %d clients — no coalescing", n, clients)
	}
	if b.nQueries.Load() != clients {
		t.Fatalf("batcher saw %d queries, want %d", b.nQueries.Load(), clients)
	}
	if b.nCoalesced.Load() == 0 {
		t.Fatal("no queries were coalesced")
	}
}

// TestBatcherFanout checks distinct queries inside one batch each get
// their own answer.
func TestBatcherFanout(t *testing.T) {
	b := newBatcher(func(_ context.Context, _ *serving, q Query) Result {
		return Result{Value: float64(q.U) * 2}
	}, 4, 16, 500*time.Microsecond)
	defer b.close()

	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := b.do(context.Background(), testServing(), Query{Op: OpLocalTC, U: uint32(i)})
			if r.Err != "" || r.Value != float64(i)*2 {
				t.Errorf("query %d got %+v", i, r)
			}
		}(i)
	}
	wg.Wait()
}

// TestBatcherMaxBatch checks batches never exceed the configured bound.
func TestBatcherMaxBatch(t *testing.T) {
	b := newBatcher(func(_ context.Context, _ *serving, q Query) Result {
		time.Sleep(100 * time.Microsecond)
		return Result{}
	}, 1, 4, time.Millisecond)
	defer b.close()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.do(context.Background(), testServing(), Query{Op: OpLocalTC, U: uint32(i)})
		}(i)
	}
	wg.Wait()
	if got := b.nQueries.Load(); got != 40 {
		t.Fatalf("saw %d queries, want 40", got)
	}
	if got := b.nBatches.Load(); got < 10 {
		t.Fatalf("40 distinct queries with maxBatch=4 need >= 10 batches, got %d", got)
	}
}

// TestBatcherClosedDo checks submissions after close fail cleanly.
func TestBatcherClosedDo(t *testing.T) {
	b := newBatcher(func(_ context.Context, _ *serving, q Query) Result { return Result{} }, 1, 4, time.Millisecond)
	b.close()
	if r := b.do(context.Background(), testServing(), Query{Op: OpLocalTC}); r.Err == "" {
		t.Fatal("do on closed batcher should report an error")
	}
}

// testServing is a minimal serving for batcher-only tests: the batcher
// reads just the epoch for its per-epoch coalescing key.
func testServing() *serving {
	return &serving{snap: &Snapshot{Epoch: 1}}
}
