package serve

import (
	"time"

	"probgraph/internal/obs"
)

// RegisterMetrics exposes the engine's live state on an obs.Registry for
// Prometheus scraping. Every value is func-backed: the scrape reads the
// same atomics /v1/stats reads, at scrape time, so the two surfaces can
// never disagree and no counter is maintained twice. Gauges that depend
// on the served snapshot go through e.cur.Load(), so they track epoch
// hot-swaps automatically.
//
// The per-kind sketch gauges are registered for the kinds resident at
// registration time — the stable set for an engine whose snapshots come
// from one streaming configuration. A kind absent from a later epoch
// reads 0.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("probgraph_serve_epoch",
		"Epoch of the snapshot currently being served.",
		func() float64 { return float64(e.cur.Load().snap.Epoch) })
	r.CounterFunc("probgraph_serve_swaps_total",
		"Snapshot hot-swaps performed.",
		func() float64 { return float64(e.swaps.Load()) })
	r.GaugeFunc("probgraph_serve_uptime_seconds",
		"Seconds since the engine started.",
		func() float64 { return time.Since(e.start).Seconds() })

	r.GaugeFunc("probgraph_serve_vertices",
		"Vertices in the served snapshot.",
		func() float64 { return float64(e.cur.Load().snap.G.NumVertices()) })
	r.GaugeFunc("probgraph_serve_edges",
		"Edges in the served snapshot.",
		func() float64 { return float64(e.cur.Load().snap.G.NumEdges()) })
	r.GaugeFunc("probgraph_serve_csr_bytes",
		"Resident bytes of the exact CSR adjacency.",
		func() float64 { return float64((e.cur.Load().snap.G.SizeBits() + 7) / 8) })
	r.GaugeFunc("probgraph_serve_mapped_bytes",
		"Bytes of the read-only artifact mapping backing the served snapshot; 0 for heap snapshots.",
		func() float64 { return float64(e.cur.Load().snap.MappedBytes) })
	r.GaugeFunc("probgraph_serve_decode_mode",
		"How the served snapshot's state was loaded; constant 1, mode in the label.",
		func() float64 { return 1 },
		obs.L("mode", e.cur.Load().snap.Mode))
	r.CounterFunc("probgraph_process_major_faults_total",
		"Cumulative major page faults of the serving process — the paging cost of out-of-core (mmap) graphs.",
		func() float64 { return float64(obs.MajorFaults()) })
	for _, k := range e.cur.Load().snap.kinds {
		kind := k.String()
		r.GaugeFunc("probgraph_serve_sketch_bytes",
			"Resident sketch bytes in the served snapshot, by kind.",
			func() float64 { return float64(e.cur.Load().snap.SketchBytes()[kind]) },
			obs.L("kind", kind))
	}

	r.CounterFunc("probgraph_serve_cache_hits_total",
		"Result cache hits.",
		func() float64 { return float64(e.cache.hits.Load()) })
	r.CounterFunc("probgraph_serve_cache_misses_total",
		"Result cache misses.",
		func() float64 { return float64(e.cache.misses.Load()) })
	r.GaugeFunc("probgraph_serve_cache_entries",
		"Entries currently resident in the result cache.",
		func() float64 { return float64(e.cache.len()) })

	r.CounterFunc("probgraph_serve_batches_total",
		"Batches dispatched by the coalescing batcher.",
		func() float64 { return float64(e.b.nBatches.Load()) })
	r.CounterFunc("probgraph_serve_batch_queries_total",
		"Point queries that went through the batcher.",
		func() float64 { return float64(e.b.nQueries.Load()) })
	r.CounterFunc("probgraph_serve_coalesced_total",
		"Queries answered by another identical query's evaluation.",
		func() float64 { return float64(e.b.nCoalesced.Load()) })

	for _, res := range []struct {
		name string
		c    func() float64
	}{
		{"ok", func() float64 { return float64(e.ingestOK.Load()) }},
		{"error", func() float64 { return float64(e.ingestErr.Load()) }},
	} {
		r.CounterFunc("probgraph_serve_ingest_total",
			"Ingest batches accepted/refused, by result.",
			res.c, obs.L("result", res.name))
	}
	for _, res := range []struct {
		name string
		c    func() float64
	}{
		{"ok", func() float64 { return float64(e.persistOK.Load()) }},
		{"error", func() float64 { return float64(e.persistErr.Load()) }},
	} {
		r.CounterFunc("probgraph_serve_persist_total",
			"Durable-epoch persist outcomes, by result.",
			res.c, obs.L("result", res.name))
	}

	for op := Op(1); op < opMax; op++ {
		name := op.String()
		r.CounterFunc("probgraph_serve_requests_total",
			"Queries served, by op and result.",
			func() float64 { return float64(e.opCounts[op].ok.Load()) },
			obs.L("op", name), obs.L("result", "ok"))
		r.CounterFunc("probgraph_serve_requests_total",
			"Queries served, by op and result.",
			func() float64 { return float64(e.opCounts[op].errs.Load()) },
			obs.L("op", name), obs.L("result", "error"))
		r.RegisterHistogram("probgraph_serve_latency_seconds",
			"Query service latency, by op (cache hits included).",
			e.opHists[op], obs.L("op", name))
	}
	// Slot 0 is malformed-op traffic; it carries no latency histogram.
	r.CounterFunc("probgraph_serve_requests_total",
		"Queries served, by op and result.",
		func() float64 { return float64(e.opCounts[0].ok.Load()) },
		obs.L("op", "unknown"), obs.L("result", "ok"))
	r.CounterFunc("probgraph_serve_requests_total",
		"Queries served, by op and result.",
		func() float64 { return float64(e.opCounts[0].errs.Load()) },
		obs.L("op", "unknown"), obs.L("result", "error"))
}
