package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// pending is one in-flight point query awaiting its result, tagged with
// the requester's context so a batch can evaluate under the deadline of
// a waiter that is still interested, and with the serving state captured
// at Query entry so a snapshot hot-swap never moves queued work onto a
// different epoch.
type pending struct {
	ctx context.Context
	sv  *serving
	q   Query
	res chan Result // buffered(1); exactly one send per request
}

// batcher coalesces point queries into batches for a fixed worker pool.
// A collector goroutine gathers up to maxBatch requests (waiting at most
// maxDelay after the first), then hands the batch to a worker. Within a
// batch, identical normalized queries are evaluated once and fanned out
// to every waiter — concurrent clients asking for the same similarity
// pay for one sketch intersection.
type batcher struct {
	eval     func(context.Context, *serving, Query) Result
	in       chan *pending
	batches  chan []*pending
	maxBatch int
	maxDelay time.Duration
	done     chan struct{}
	closing  sync.Once
	wg       sync.WaitGroup

	nBatches   atomic.Int64
	nQueries   atomic.Int64
	nCoalesced atomic.Int64
}

// newBatcher starts the collector and `workers` evaluation workers.
func newBatcher(eval func(context.Context, *serving, Query) Result, workers, maxBatch int, maxDelay time.Duration) *batcher {
	if workers < 1 {
		workers = 1
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		eval:     eval,
		in:       make(chan *pending, 4*maxBatch),
		batches:  make(chan []*pending, workers),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		done:     make(chan struct{}),
	}
	b.wg.Add(1 + workers)
	go b.collect()
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// do submits one query and blocks for its result, the requester's
// context, or engine shutdown — whichever comes first. An abandoned
// pending still receives exactly one (buffered) send from its batch, so
// nothing leaks.
func (b *batcher) do(ctx context.Context, sv *serving, q Query) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &pending{ctx: ctx, sv: sv, q: q, res: make(chan Result, 1)}
	select {
	case b.in <- p:
	case <-ctx.Done():
		return Result{Err: ctx.Err().Error()}
	case <-b.done:
		return Result{Err: "serve: engine closed"}
	}
	select {
	case r := <-p.res:
		return r
	case <-ctx.Done():
		return Result{Err: ctx.Err().Error()}
	case <-b.done:
		// The batch holding p may still answer; prefer it if already there.
		select {
		case r := <-p.res:
			return r
		default:
			return Result{Err: "serve: engine closed"}
		}
	}
}

// collect gathers requests into batches.
func (b *batcher) collect() {
	defer b.wg.Done()
	defer close(b.batches)
	var timer *time.Timer
	for {
		var first *pending
		select {
		case first = <-b.in:
		case <-b.done:
			return
		}
		batch := append(make([]*pending, 0, b.maxBatch), first)
		if b.maxDelay > 0 && b.maxBatch > 1 {
			if timer == nil {
				timer = time.NewTimer(b.maxDelay)
			} else {
				timer.Reset(b.maxDelay)
			}
		gather:
			for len(batch) < b.maxBatch {
				select {
				case p := <-b.in:
					batch = append(batch, p)
				case <-timer.C:
					break gather
				case <-b.done:
					b.dispatch(batch)
					return
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
			// No delay budget: take whatever is already queued.
			for len(batch) < b.maxBatch {
				select {
				case p := <-b.in:
					batch = append(batch, p)
				default:
					goto full
				}
			}
		full:
		}
		b.dispatch(batch)
	}
}

// dispatch hands a batch to the worker pool (inline on shutdown races).
func (b *batcher) dispatch(batch []*pending) {
	select {
	case b.batches <- batch:
	case <-b.done:
		b.run(batch) // answer stragglers instead of dropping them
	}
}

// worker evaluates batches until the collector closes the feed.
func (b *batcher) worker() {
	defer b.wg.Done()
	for batch := range b.batches {
		b.run(batch)
	}
}

// groupKey coalesces identical normalized queries within one epoch;
// requests that captured different epochs around a hot-swap evaluate
// separately, each against its own snapshot.
type groupKey struct {
	epoch uint64
	q     Query
}

// run evaluates one batch, coalescing identical queries.
func (b *batcher) run(batch []*pending) {
	b.nBatches.Add(1)
	b.nQueries.Add(int64(len(batch)))
	groups := make(map[groupKey][]*pending, len(batch))
	order := make([]groupKey, 0, len(batch))
	for _, p := range batch {
		k := groupKey{epoch: p.sv.snap.Epoch, q: p.q}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	b.nCoalesced.Add(int64(len(batch) - len(order)))
	for _, k := range order {
		b.evalGroup(k.q, groups[k])
	}
}

// evalGroup answers every waiter of one coalesced query. The shared
// evaluation runs under the first still-live waiter's context; waiters
// whose own context is already cancelled get their cancellation error
// without paying for the eval. If the chosen context is cancelled
// mid-eval while other waiters remain interested, the eval is retried
// for them — one leader's disconnect must not poison its coalesced
// peers.
func (b *batcher) evalGroup(q Query, waiters []*pending) {
	for len(waiters) > 0 {
		live := make([]*pending, 0, len(waiters))
		for _, p := range waiters {
			if err := p.ctx.Err(); err != nil {
				p.res <- Result{Err: err.Error()}
				continue
			}
			live = append(live, p)
		}
		if len(live) == 0 {
			return
		}
		leader := live[0]
		r := b.eval(leader.ctx, leader.sv, q)
		if r.Err != "" && leader.ctx.Err() != nil && len(live) > 1 {
			leader.res <- r
			waiters = live[1:]
			continue
		}
		for _, p := range live {
			p.res <- r
		}
		return
	}
}

// close stops the batcher and waits for all workers to drain.
func (b *batcher) close() {
	b.closing.Do(func() { close(b.done) })
	b.wg.Wait()
}
