package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/obs"
)

// scrape fetches and parses a Prometheus text exposition into a flat
// series → value map ("name{labels}" keys, headers skipped).
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape: content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("scrape: malformed line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("scrape: value of %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsConsistentWithStats is the integration contract of the
// observability layer: after traffic, every counter exposed on /metrics
// must agree exactly with the corresponding /v1/stats field, because
// both read the same engine atomics. The test drives real HTTP through
// both surfaces.
func TestMetricsConsistentWithStats(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	mux := http.NewServeMux()
	mux.Handle("/", Handler(e))
	mux.Handle("GET /metrics", obs.Handler(reg))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	do := HTTPDoer(nil, srv.URL)
	n := uint32(s.G.NumVertices())
	for i := uint32(0); i < 200; i++ {
		q := Query{Op: OpSimilarity, U: i % n, V: (i*7 + 1) % n}
		switch i % 4 {
		case 1:
			q = Query{Op: OpLocalTC, U: i % n}
		case 2:
			q = Query{Op: OpNeighbors, U: i % n}
		case 3:
			q = Query{Op: OpTopK, U: i % n, K: 5}
		}
		if _, err := do(q); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := do(Query{Op: OpTC}); err != nil {
		t.Fatalf("tc: %v", err)
	}
	// One invalid request lands in the error counters.
	if _, err := do(Query{Op: OpSimilarity, U: n + 100, V: 0}); err == nil {
		t.Fatal("out-of-range query succeeded")
	}

	stats, err := FetchStats(nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	series := scrape(t, srv.URL+"/metrics")

	want := func(key string, v float64) {
		t.Helper()
		got, ok := series[key]
		if !ok {
			t.Fatalf("/metrics is missing %s", key)
		}
		if got != v {
			t.Fatalf("%s = %v on /metrics, %v on /v1/stats", key, got, v)
		}
	}
	want("probgraph_serve_epoch", float64(stats.Epoch))
	want("probgraph_serve_vertices", float64(stats.Vertices))
	want("probgraph_serve_edges", float64(stats.Edges))
	want("probgraph_serve_csr_bytes", float64(stats.CSRBytes))
	want(`probgraph_serve_sketch_bytes{kind="BF"}`, float64(stats.SketchBytes["BF"]))
	want("probgraph_serve_cache_hits_total", float64(stats.Cache.Hits))
	want("probgraph_serve_cache_misses_total", float64(stats.Cache.Misses))
	want("probgraph_serve_batches_total", float64(stats.Batch.Batches))
	want("probgraph_serve_batch_queries_total", float64(stats.Batch.Queries))
	want("probgraph_serve_coalesced_total", float64(stats.Batch.Coalesced))
	for op, os := range stats.Ops {
		want(fmt.Sprintf(`probgraph_serve_requests_total{op=%q,result="ok"}`, op), float64(os.OK))
		want(fmt.Sprintf(`probgraph_serve_requests_total{op=%q,result="error"}`, op), float64(os.Errors))
		if op == "unknown" {
			continue
		}
		// The latency histogram records every request that passed
		// validation: at least every OK, at most every request.
		key := fmt.Sprintf(`probgraph_serve_latency_seconds_count{op=%q}`, op)
		if c := series[key]; c < float64(os.OK) || c > float64(os.OK+os.Errors) {
			t.Fatalf("%s = %v, want within [%d, %d]", key, c, os.OK, os.OK+os.Errors)
		}
	}
	if stats.Ops["similarity"].OK == 0 || stats.Ops["similarity"].Errors == 0 {
		t.Fatalf("similarity traffic not counted: %+v", stats.Ops["similarity"])
	}
	// The quantile satellite: ops with traffic expose non-zero p50 ≤ p99 ≤ max.
	for op, os := range stats.Ops {
		if os.OK == 0 {
			continue
		}
		if os.MaxUS <= 0 || os.P50US > os.P99US || os.P99US > os.MaxUS {
			t.Fatalf("%s quantiles inconsistent: %+v", op, os)
		}
	}
}

// TestStatsOpsJSONShape checks the /v1/stats wire shape: per-op entries
// carry the quantile fields, and malformed-op traffic is reported under
// "unknown" by the single stats loop.
func TestStatsOpsJSONShape(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	if _, err := e.Query(Query{Op: OpSimilarity, U: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(Query{Op: Op(200), U: 1}); err == nil {
		t.Fatal("bogus op succeeded")
	}
	st := e.Stats()
	if st.Ops["unknown"].Errors != 1 {
		t.Fatalf("unknown-op traffic not folded into stats: %+v", st.Ops)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"p50_us"`) {
		t.Fatalf("stats JSON lacks quantiles: %s", raw)
	}
}
