package serve

import (
	"time"

	"probgraph/internal/obs"
)

// CacheStats is the result cache's observable state.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Len    int   `json:"len"`
	Cap    int   `json:"cap"`
}

// HitRate returns hits / (hits+misses), 0 when idle.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// BatchStats is the request batcher's observable state.
type BatchStats struct {
	Batches   int64 `json:"batches"`
	Queries   int64 `json:"queries"`
	Coalesced int64 `json:"coalesced"` // queries answered by another entry's eval
}

// MeanSize returns the average batch size, 0 when idle.
func (b BatchStats) MeanSize() float64 {
	if b.Batches == 0 {
		return 0
	}
	return float64(b.Queries) / float64(b.Batches)
}

// OpStats is one operation's served/error counts plus its lifetime
// latency quantiles in microseconds (absent for the ingest/persist
// counters, which have no latency histogram).
type OpStats struct {
	OK     int64   `json:"ok"`
	Errors int64   `json:"errors"`
	P50US  float64 `json:"p50_us,omitempty"`
	P90US  float64 `json:"p90_us,omitempty"`
	P99US  float64 `json:"p99_us,omitempty"`
	MaxUS  float64 `json:"max_us,omitempty"`
}

// ArtifactStats reports the binary artifact a snapshot was restored
// from: total file size and per-section payload bytes — the on-disk
// counterpart of the resident SketchBytes.
type ArtifactStats struct {
	Bytes    int64            `json:"bytes"`
	Sections map[string]int64 `json:"sections"`
}

// Stats is the /v1/stats payload: snapshot shape, resident sketch
// memory, cache and batcher effectiveness, per-op traffic, and the
// streaming counters (current epoch, hot-swaps performed, ingest
// traffic, durable-epoch persist outcomes).
type Stats struct {
	Epoch            uint64             `json:"epoch"`
	Swaps            int64              `json:"swaps"`
	Ingest           OpStats            `json:"ingest"`
	Persist          OpStats            `json:"persist"`
	LastPersistError string             `json:"last_persist_error,omitempty"`
	Vertices         int                `json:"vertices"`
	Edges            int                `json:"edges"`
	Kinds            []string           `json:"kinds"`
	DefaultKind      string             `json:"default_kind"`
	CSRBytes         int64              `json:"csr_bytes"`
	SketchBytes      map[string]int64   `json:"sketch_bytes"`
	DecodeMode       string             `json:"decode_mode"`
	MappedBytes      int64              `json:"mapped_bytes,omitempty"`
	MajorFaults      int64              `json:"major_faults,omitempty"`
	Artifact         *ArtifactStats     `json:"artifact,omitempty"`
	Cache            CacheStats         `json:"cache"`
	Batch            BatchStats         `json:"batch"`
	Ops              map[string]OpStats `json:"ops"`
	UptimeSec        float64            `json:"uptime_sec"`
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	sv := e.cur.Load()
	s := Stats{
		Epoch:       sv.snap.Epoch,
		Swaps:       e.swaps.Load(),
		Ingest:      OpStats{OK: e.ingestOK.Load(), Errors: e.ingestErr.Load()},
		Persist:     OpStats{OK: e.persistOK.Load(), Errors: e.persistErr.Load()},
		Vertices:    sv.snap.G.NumVertices(),
		Edges:       sv.snap.G.NumEdges(),
		DefaultKind: sv.snap.DefaultKind().String(),
		CSRBytes:    (sv.snap.G.SizeBits() + 7) / 8,
		SketchBytes: sv.snap.SketchBytes(),
		DecodeMode:  sv.snap.Mode,
		MappedBytes: sv.snap.MappedBytes,
		MajorFaults: obs.MajorFaults(),
		Cache: CacheStats{
			Hits:   e.cache.hits.Load(),
			Misses: e.cache.misses.Load(),
			Len:    e.cache.len(),
			Cap:    e.cache.cap,
		},
		Batch: BatchStats{
			Batches:   e.b.nBatches.Load(),
			Queries:   e.b.nQueries.Load(),
			Coalesced: e.b.nCoalesced.Load(),
		},
		Ops:       make(map[string]OpStats, int(opMax)),
		UptimeSec: time.Since(e.start).Seconds(),
	}
	if msg := e.lastPersistErr.Load(); msg != nil {
		s.LastPersistError = *msg
	}
	if fi := sv.snap.Artifact; fi != nil {
		s.Artifact = &ArtifactStats{Bytes: fi.Bytes, Sections: fi.SectionBytes()}
	}
	for _, k := range sv.snap.kinds {
		s.Kinds = append(s.Kinds, k.String())
	}
	// One loop over every counter slot: slot 0 accumulates malformed-op
	// traffic under the name "unknown", the rest use their wire names.
	for op := Op(0); op < opMax; op++ {
		ok, errs := e.opCounts[op].ok.Load(), e.opCounts[op].errs.Load()
		if ok+errs == 0 {
			continue
		}
		name := "unknown"
		if op != 0 {
			name = op.String()
		}
		os := OpStats{OK: ok, Errors: errs}
		if h := e.opHists[op]; h != nil && h.Count() > 0 {
			const us = float64(time.Microsecond)
			os.P50US = float64(h.Quantile(0.50)) / us
			os.P90US = float64(h.Quantile(0.90)) / us
			os.P99US = float64(h.Quantile(0.99)) / us
			os.MaxUS = float64(h.Max()) / us
		}
		s.Ops[name] = os
	}
	return s
}
