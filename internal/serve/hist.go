// Package serve is the online half of the reproduction: it turns the
// resident ProbGraph representation into a query server. A Snapshot owns
// an immutable Graph + orientation + one PG per configured sketch kind;
// an Engine answers typed point queries (local triangle counts, vertex
// similarity, link-prediction candidates) through a coalescing request
// batcher and an LRU result cache; Handler exposes the engine over HTTP
// JSON; RunLoad is the closed/open-loop load driver that measures it.
//
// The fixed-size sketches are what make serving viable: every similarity
// answer costs one O(B/64) (or O(k)) intersection regardless of the
// degrees involved, so tail latency does not blow up on hub vertices the
// way exact CSR merges do.
package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram resolution: values keep subBits significant bits, giving
// buckets within 1/2^subBits (~1.6%) of the recorded value — the
// HDR-histogram log-linear layout with a fixed footprint.
const (
	histSubBits = 6
	histSubSize = 1 << histSubBits
	// Largest index is bucketOf(MaxInt64): major 63-histSubBits, so the
	// table holds (64-histSubBits) major rows of histSubSize buckets.
	histBuckets = (64 - histSubBits) * histSubSize
)

// Hist is a concurrent fixed-footprint latency histogram: log-linear
// buckets (HDR style), atomic recording, quantile reads. The zero value
// is NOT ready; use NewHist.
type Hist struct {
	buckets []int64 // atomic
	count   int64   // atomic
	sum     int64   // atomic, ns
	max     int64   // atomic, ns
}

// NewHist returns an empty histogram covering [0, ~2^63) nanoseconds.
func NewHist() *Hist {
	return &Hist{buckets: make([]int64, histBuckets)}
}

// bucketOf maps a nanosecond value to its log-linear bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubSize {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // MSB position, >= histSubBits
	major := exp - histSubBits + 1
	minor := int(u>>(exp-histSubBits)) - histSubSize
	return major<<histSubBits + minor
}

// bucketValue is the inverse of bucketOf: the lower bound of bucket i.
func bucketValue(i int) int64 {
	if i < histSubSize {
		return int64(i)
	}
	major := i >> histSubBits
	minor := i & (histSubSize - 1)
	return int64(histSubSize+minor) << (major - 1)
}

// Record adds one latency observation. Safe for concurrent use.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	atomic.AddInt64(&h.buckets[bucketOf(ns)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, ns)
	for {
		m := atomic.LoadInt64(&h.max)
		if ns <= m || atomic.CompareAndSwapInt64(&h.max, m, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return atomic.LoadInt64(&h.count) }

// Max returns the largest recorded value.
func (h *Hist) Max() time.Duration { return time.Duration(atomic.LoadInt64(&h.max)) }

// Mean returns the arithmetic mean of all observations.
func (h *Hist) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&h.sum) / n)
}

// Quantile returns the q-quantile (q in [0,1]) to bucket resolution.
// Concurrent Records move the answer but never corrupt it.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.buckets {
		cum += atomic.LoadInt64(&h.buckets[i])
		if cum >= target {
			return time.Duration(bucketValue(i))
		}
	}
	return h.Max()
}
