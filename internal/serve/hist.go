// Package serve is the online half of the reproduction: it turns the
// resident ProbGraph representation into a query server. A Snapshot owns
// an immutable Graph + orientation + one PG per configured sketch kind;
// an Engine answers typed point queries (local triangle counts, vertex
// similarity, link-prediction candidates) through a coalescing request
// batcher and an LRU result cache; Handler exposes the engine over HTTP
// JSON; RunLoad is the closed/open-loop load driver that measures it.
//
// The fixed-size sketches are what make serving viable: every similarity
// answer costs one O(B/64) (or O(k)) intersection regardless of the
// degrees involved, so tail latency does not blow up on hub vertices the
// way exact CSR merges do.
package serve

import "probgraph/internal/obs"

// Hist is the concurrent fixed-footprint latency histogram. The
// implementation lives in internal/obs so the serving layer, the load
// driver and the metrics registry share one histogram (including the
// snapshot/delta machinery behind windowed percentiles); serve keeps the
// name as an alias for its existing callers.
type Hist = obs.Hist

// NewHist returns an empty histogram covering [0, ~2^63) nanoseconds.
func NewHist() *Hist { return obs.NewHist() }
