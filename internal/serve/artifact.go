package serve

import (
	"fmt"
	"io"

	"probgraph/internal/core"
	"probgraph/internal/pgio"
)

// This file is the warm-start path of the serving layer: Save writes a
// snapshot's derived state (graph, orientation, every resident sketch
// set) as a pgio artifact, and OpenArtifact boots a snapshot straight
// from one — no edge-list parsing, no re-orientation, no re-sketching.
// A server restarted from an artifact answers every query bit-for-bit
// like the server that wrote it.

// Save writes the snapshot as a binary artifact: the CSR graph, the
// orientation, and one PG section per resident sketch kind, in the
// snapshot's kind order (so the restored default kind matches). The
// returned FileInfo carries per-section sizes and CRCs.
func (s *Snapshot) Save(w io.Writer) (*pgio.FileInfo, error) {
	a := &pgio.Artifact{
		G:     s.G,
		O:     s.O,
		Kinds: s.kinds,
		PGs:   s.pgs,
	}
	info, err := pgio.Encode(w, a)
	if err != nil {
		return nil, fmt.Errorf("serve: saving snapshot: %w", err)
	}
	return info, nil
}

// OpenArtifact boots a snapshot from an artifact written by Save (or by
// pgpack): the decoded orientation and sketches are installed into a
// fresh Session, so the only work is IO and validation. cfg.Kinds
// selects which resident kinds to serve (default: all, in artifact
// order; a requested kind the artifact does not carry is refused with
// pgio.ErrMismatch). Sketch geometry, seed, and estimator come from the
// artifact itself — of cfg, only Kinds, Workers, and a non-auto Est
// override are honored, since everything else is already baked into the
// stored bits.
func OpenArtifact(r io.Reader, cfg SnapshotConfig) (*Snapshot, error) {
	a, info, err := pgio.DecodeWithInfo(r)
	if err != nil {
		return nil, err
	}
	return OpenDecoded(a, info, cfg)
}

// OpenDecoded is OpenArtifact over an already-decoded artifact — the
// path for callers (pgserve) that decode once and reuse the result for
// both serving and streaming restart. info may be nil; when set it is
// surfaced as the snapshot's Artifact summary.
func OpenDecoded(a *pgio.Artifact, info *pgio.FileInfo, cfg SnapshotConfig) (*Snapshot, error) {
	restored, err := ConfigFromArtifact(a, cfg)
	if err != nil {
		return nil, err
	}
	snap, err := OpenWith(a.G, restored, a.O, a.PGs)
	if err != nil {
		return nil, err
	}
	snap.Artifact = info
	snap.Mode = pgio.ModeCopy
	return snap, nil
}

// OpenArtifactMmap boots a snapshot zero-copy: the artifact file is
// mapped read-only (pgio.Mmap) and the snapshot's CSR arrays and sketch
// rows alias the mapping — cold start pays page-table setup plus one CRC
// sweep instead of a heap copy, and every process serving the same file
// shares its resident pages through the page cache. The snapshot owns
// the mapping: the engine unmaps it at epoch retirement, after the last
// in-flight query on the epoch drains (Snapshot.Close). Falls back
// transparently to the copying decoder (Mode == pgio.ModeCopy, nothing
// to unmap) for v1 files and platforms without mmap.
//
// One behavioral caveat a caller must respect: the resident PGs of a
// mapped snapshot are borrowed (core.PG.Borrowed) and refuse mutation
// with core.ErrBorrowed — a streaming restart that wants to keep
// ingesting must Clone them (stream.NewWith already does).
func OpenArtifactMmap(path string, cfg SnapshotConfig) (*Snapshot, error) {
	m, err := pgio.Mmap(path)
	if err != nil {
		return nil, err
	}
	snap, err := OpenDecoded(m.A, m.Info, cfg)
	if err != nil {
		_ = m.Close()
		return nil, err
	}
	snap.Mode = m.Mode()
	snap.MappedBytes = m.MappedBytes()
	if m.Mode() == pgio.ModeMmap {
		snap.closer = m
	}
	return snap, nil
}

// ConfigFromArtifact derives the SnapshotConfig a decoded artifact
// serves under: build parameters (budget, hash count, element storage)
// and seed from the artifact's sketches — so anything built lazily later
// derives the same geometry the resident sketches carry — kind order
// from base.Kinds when set (validated against residency) else the
// artifact's section order, workers from base, and base.Est overriding
// the stored estimator when non-auto (the estimator is query-time
// dispatch, not stored bits, so overriding it is safe). Also used by the
// streaming restart path, which rebuilds a DynamicGraph around the same
// state.
func ConfigFromArtifact(a *pgio.Artifact, base SnapshotConfig) (SnapshotConfig, error) {
	if len(a.Kinds) == 0 {
		return SnapshotConfig{}, fmt.Errorf("serve: artifact carries no sketch sections: %w", pgio.ErrMismatch)
	}
	kinds := base.Kinds
	if len(kinds) == 0 {
		kinds = a.Kinds
	}
	for _, k := range kinds {
		if a.PGs[k] == nil {
			return SnapshotConfig{}, fmt.Errorf("serve: sketch kind %v not resident in artifact (has %v): %w",
				k, a.Kinds, pgio.ErrMismatch)
		}
	}
	ref := a.PGs[kinds[0]].Cfg
	for _, k := range kinds[1:] {
		c := a.PGs[k].Cfg
		if c.Seed != ref.Seed || c.Budget != ref.Budget || c.NumHashes != ref.NumHashes || c.StoreElems != ref.StoreElems {
			return SnapshotConfig{}, fmt.Errorf("serve: artifact sketches disagree on build parameters (%v vs %v): %w",
				kinds[0], k, pgio.ErrMismatch)
		}
	}
	est := ref.Est
	if base.Est != core.EstAuto {
		est = base.Est
		for _, k := range kinds {
			a.PGs[k].Cfg.Est = est // query-time dispatch follows the override
		}
	}
	return SnapshotConfig{
		Kinds:      kinds,
		Est:        est,
		Budget:     ref.Budget,
		NumHashes:  ref.NumHashes,
		StoreElems: ref.StoreElems,
		Seed:       ref.Seed,
		Workers:    base.Workers,
	}, nil
}
