package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probgraph/internal/graph"
)

// TestEngineSwap: swapping snapshots under an engine changes the served
// epoch atomically, the displaced snapshot is returned, and the
// epoch-keyed cache never serves an old epoch's answer.
func TestEngineSwap(t *testing.T) {
	g1 := graph.Kronecker(7, 8, 1)
	g2 := graph.Kronecker(8, 8, 2) // different shape entirely
	s1, err := Open(g1, SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(g2, SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(s1, Options{Workers: 2})
	defer e.Close()

	q := Query{Op: OpSimilarity, U: 1, V: 2}
	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if c, err := e.Query(q); err != nil || !c.Cached {
		t.Fatalf("repeat query should hit the cache: %+v, %v", c, err)
	}

	old, err := e.Swap(s2)
	if err != nil {
		t.Fatal(err)
	}
	if old != s1 {
		t.Fatal("Swap must return the displaced snapshot")
	}
	if e.Snapshot() != s2 {
		t.Fatal("engine must serve the new snapshot")
	}
	st := e.Stats()
	if st.Epoch != s2.Epoch || st.Swaps != 1 || st.Vertices != g2.NumVertices() {
		t.Fatalf("stats after swap: %+v", st)
	}

	// First query on the new epoch must be a miss (epoch-keyed cache),
	// answered against the new snapshot.
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("old epoch's cache line served after swap")
	}
	want, err := Open(g2, SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	we := New(want, Options{Workers: 2})
	defer we.Close()
	wr, err := we.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Value != wr.Value {
		t.Fatalf("post-swap answer %v, want %v (old epoch answered %v)", r2.Value, wr.Value, r1.Value)
	}

	if _, err := e.Swap(nil); err == nil {
		t.Fatal("Swap(nil) must error")
	}
}

// fakeIngestor counts batches and reports a fixed epoch.
type fakeIngestor struct {
	adds, dels int
	calls      int
}

func (f *fakeIngestor) Ingest(add, del []graph.Edge) (IngestResult, error) {
	f.calls++
	f.adds += len(add)
	f.dels += len(del)
	return IngestResult{Epoch: 99, Added: len(add), Removed: len(del)}, nil
}

// TestIngestHTTP: /v1/ingest refuses without an Ingestor (501), and
// round-trips batches through HTTPIngestDoer once enabled.
func TestIngestHTTP(t *testing.T) {
	g := graph.Kronecker(7, 8, 3)
	s, err := Open(g, SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(s, Options{Workers: 2})
	defer e.Close()
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()

	do := HTTPIngestDoer(srv.Client(), srv.URL)
	add := []graph.Edge{{U: 1, V: 9}, {U: 2, V: 7}}
	if _, err := do(add, nil); err == nil {
		t.Fatal("ingest without EnableIngest must fail")
	}

	fi := &fakeIngestor{}
	e.EnableIngest(fi)
	res, err := do(add, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Epoch != 99 || res.Added != 2 || res.Removed != 1 {
		t.Fatalf("ingest result %+v", res)
	}
	if fi.calls != 1 || fi.adds != 2 || fi.dels != 1 {
		t.Fatalf("ingestor saw %+v", fi)
	}
	st := e.Stats()
	if st.Ingest.OK != 1 || st.Ingest.Errors != 0 {
		t.Fatalf("ingest counters %+v (the pre-enable refusal is config state, not ingest traffic)", st.Ingest)
	}

	// A batch-fault error (wrapped ErrBadBatch) answers 400, not 500.
	e.EnableIngest(&badBatchIngestor{})
	resp, err := srv.Client().Post(srv.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"add":[[0,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-batch ingest answered HTTP %d, want 400", resp.StatusCode)
	}
}

// badBatchIngestor always rejects the batch as the client's fault.
type badBatchIngestor struct{}

func (badBatchIngestor) Ingest(add, del []graph.Edge) (IngestResult, error) {
	return IngestResult{}, fmt.Errorf("cap exceeded: %w", ErrBadBatch)
}
