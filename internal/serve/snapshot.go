package serve

import (
	"fmt"
	"sync/atomic"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// SnapshotConfig parameterizes Open. Zero values mean: Kinds = [BF],
// the core package's default 25% budget, hash count 2, derived k.
type SnapshotConfig struct {
	// Kinds lists the sketch representations to build, one resident PG
	// each; Kinds[0] is the default for queries that don't name one.
	Kinds []core.Kind

	// Budget, NumHashes, K, StoreElems and Seed are passed through to
	// core.Config for every built PG, so a snapshot answer is bit-for-bit
	// the answer core.Build with the same (Kind, Budget, Seed) gives.
	Budget     float64
	NumHashes  int
	K          int
	StoreElems bool
	Seed       uint64

	// Workers bounds build parallelism (<=0: GOMAXPROCS).
	Workers int
}

// epochCounter hands out process-unique snapshot epochs.
var epochCounter atomic.Uint64

// Snapshot is the immutable unit of serving: a graph, its degree
// orientation, and one ProbGraph per configured sketch kind, built once
// at load time. Engines and caches key everything by Epoch, so a new
// snapshot (e.g. after a graph refresh) invalidates old answers for free.
type Snapshot struct {
	Epoch uint64
	G     *graph.Graph
	O     *graph.Oriented
	Cfg   SnapshotConfig

	kinds []core.Kind // deduplicated build order; kinds[0] = default
	pgs   map[core.Kind]*core.PG
}

// Open builds a snapshot: orientation plus all configured sketches.
func Open(g *graph.Graph, cfg SnapshotConfig) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []core.Kind{core.BF}
	}
	s := &Snapshot{
		Epoch: epochCounter.Add(1),
		G:     g,
		O:     g.Orient(cfg.Workers),
		Cfg:   cfg,
		pgs:   make(map[core.Kind]*core.PG, len(cfg.Kinds)),
	}
	for _, k := range cfg.Kinds {
		if _, dup := s.pgs[k]; dup {
			continue
		}
		pg, err := core.Build(g, core.Config{
			Kind:       k,
			Budget:     cfg.Budget,
			NumHashes:  cfg.NumHashes,
			K:          cfg.K,
			StoreElems: cfg.StoreElems,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: building %v sketches: %w", k, err)
		}
		s.pgs[k] = pg
		s.kinds = append(s.kinds, k)
	}
	return s, nil
}

// Kinds returns the resident sketch kinds in build order.
func (s *Snapshot) Kinds() []core.Kind { return s.kinds }

// DefaultKind is the representation used when a query names none.
func (s *Snapshot) DefaultKind() core.Kind { return s.kinds[0] }

// PG returns the resident ProbGraph for kind, or nil if not built.
func (s *Snapshot) PG(k core.Kind) *core.PG { return s.pgs[k] }

// SketchBytes reports the resident sketch storage per kind — the
// observable form of the paper's storage budget s.
func (s *Snapshot) SketchBytes() map[string]int64 {
	out := make(map[string]int64, len(s.kinds))
	for _, k := range s.kinds {
		out[k.String()] = s.pgs[k].MemoryBytes()
	}
	return out
}
