package serve

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
	"probgraph/internal/session"
)

// SnapshotConfig parameterizes Open. Zero values mean: Kinds = [BF],
// the core package's default 25% budget, hash count 2, derived k, the
// per-representation default estimator.
type SnapshotConfig struct {
	// Kinds lists the sketch representations to build, one resident PG
	// each; Kinds[0] is the default for queries that don't name one.
	Kinds []core.Kind

	// Est, Budget, NumHashes, K, StoreElems and Seed configure the
	// underlying Session, so a snapshot answer is bit-for-bit the answer
	// core.Build with the same (Kind, Est, Budget, Seed) gives.
	Est        core.Estimator
	Budget     float64
	NumHashes  int
	K          int
	StoreElems bool
	Seed       uint64

	// Workers bounds build parallelism (<=0: GOMAXPROCS).
	Workers int
}

// epochCounter hands out process-unique snapshot epochs.
var epochCounter atomic.Uint64

// Snapshot is the immutable unit of serving: a Session over the graph
// with the orientation and one ProbGraph per configured sketch kind
// built eagerly at load time (online traffic must never pay a sketch
// build). Engines and caches key everything by Epoch, so a new snapshot
// (e.g. after a graph refresh) invalidates old answers for free.
type Snapshot struct {
	Epoch uint64
	G     *graph.Graph
	O     *graph.Oriented
	Cfg   SnapshotConfig

	// Artifact is the structural summary of the binary artifact this
	// snapshot was restored from (OpenArtifact sets it; nil for
	// snapshots built from scratch). Surfaced in /v1/stats so operators
	// can see what the warm start cost on disk and on the wire.
	Artifact *pgio.FileInfo

	// Mode reports how the snapshot's state came to be: ModeBuild
	// (sketched from the graph), pgio.ModeCopy (heap-decoded artifact),
	// or pgio.ModeMmap (zero-copy over a read-only mapping). Surfaced in
	// /v1/stats as decode_mode.
	Mode string

	// MappedBytes is the size of the read-only mapping backing a
	// zero-copy snapshot; 0 otherwise.
	MappedBytes int64

	sess  *session.Session // base Session, configured for kinds[0]
	kinds []core.Kind      // deduplicated build order; kinds[0] = default
	pgs   map[core.Kind]*core.PG

	// closer releases the resource backing the snapshot's borrowed
	// arrays (the mmap). The engine's epoch retirement calls Close when
	// the last in-flight query drains; nil for heap snapshots.
	closer io.Closer
}

// ModeBuild marks a snapshot whose sketches were built from the graph
// (no artifact involved); pgio.ModeCopy and pgio.ModeMmap cover the
// artifact paths.
const ModeBuild = "build"

// Close releases the resource backing the snapshot (the mmap of a
// zero-copy open); afterwards every borrowed CSR array and sketch row is
// invalid. Idempotent, nil-safe for heap snapshots. Callers almost never
// invoke this directly — the engine does, when the retiring epoch's last
// in-flight query drains.
func (s *Snapshot) Close() error {
	c := s.closer
	s.closer = nil
	if c == nil {
		return nil
	}
	return c.Close()
}

// DetachCloser removes and returns the snapshot's backing closer, or
// nil. After a detach, Close is a no-op and the caller owns the
// mapping's lifetime — the cluster shard path uses this, because it
// serves raw rows outside engine query brackets and must hold the
// mapping until the whole shard shuts down.
func (s *Snapshot) DetachCloser() io.Closer {
	c := s.closer
	s.closer = nil
	return c
}

// Open builds a snapshot: a Session plus the eagerly-built orientation
// and all configured sketches.
func Open(g *graph.Graph, cfg SnapshotConfig) (*Snapshot, error) {
	return OpenWith(g, cfg, nil, nil)
}

// OpenWith builds a snapshot around prebuilt artifacts: a non-nil
// orientation and any per-kind full-neighborhood PGs are installed into
// the snapshot's Session instead of being rebuilt — the hand-off from
// stream.DynamicGraph.Freeze, whose incrementally-maintained sketches
// make a new epoch visible without a from-scratch sketch pass. Kinds
// without a prebuilt PG are built eagerly as in Open. Prebuilt artifacts
// must be immutable for the snapshot's lifetime (Freeze clones them).
func OpenWith(g *graph.Graph, cfg SnapshotConfig, o *graph.Oriented, prebuilt map[core.Kind]*core.PG) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []core.Kind{core.BF}
	}
	base, err := session.New(g,
		session.WithKind(cfg.Kinds[0]),
		session.WithEstimator(cfg.Est),
		session.WithBudget(cfg.Budget),
		session.WithNumHashes(cfg.NumHashes),
		session.WithSketchK(cfg.K),
		session.WithStoreElems(cfg.StoreElems),
		session.WithSeed(cfg.Seed),
		session.WithWorkers(cfg.Workers),
	)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Snapshot{
		Epoch: epochCounter.Add(1),
		G:     g,
		Cfg:   cfg,
		Mode:  ModeBuild,
		sess:  base,
		pgs:   make(map[core.Kind]*core.PG, len(cfg.Kinds)),
	}
	ctx := context.Background()
	if o != nil {
		if _, err := base.InstallOriented(o); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if s.O, err = base.Oriented(ctx); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	for _, k := range cfg.Kinds {
		if _, dup := s.pgs[k]; dup {
			continue
		}
		ks, err := base.With(session.WithKind(k))
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		var pg *core.PG
		if pb := prebuilt[k]; pb != nil {
			if pg, err = ks.InstallPG(pb); err != nil {
				return nil, fmt.Errorf("serve: installing %v sketches: %w", k, err)
			}
		} else if pg, err = ks.PG(ctx); err != nil {
			return nil, fmt.Errorf("serve: building %v sketches: %w", k, err)
		}
		s.pgs[k] = pg
		s.kinds = append(s.kinds, k)
	}
	return s, nil
}

// Session returns the snapshot's Session view for the given resident
// kind — the evaluation entry point the engine's kernels run through.
func (s *Snapshot) Session(k core.Kind) (*session.Session, error) {
	if s.pgs[k] == nil {
		return nil, fmt.Errorf("serve: sketch kind %v not resident in snapshot", k)
	}
	return s.sess.With(session.WithKind(k))
}

// Kinds returns the resident sketch kinds in build order.
func (s *Snapshot) Kinds() []core.Kind { return s.kinds }

// DefaultKind is the representation used when a query names none.
func (s *Snapshot) DefaultKind() core.Kind { return s.kinds[0] }

// PG returns the resident ProbGraph for kind, or nil if not built.
func (s *Snapshot) PG(k core.Kind) *core.PG { return s.pgs[k] }

// SketchBytes reports the resident sketch storage per kind — the
// observable form of the paper's storage budget s.
func (s *Snapshot) SketchBytes() map[string]int64 {
	out := make(map[string]int64, len(s.kinds))
	for _, k := range s.kinds {
		out[k.String()] = s.pgs[k].MemoryBytes()
	}
	return out
}
