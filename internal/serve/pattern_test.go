package serve

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/pattern"
	"probgraph/internal/session"
)

func mustPattern(t *testing.T, spec string) *pattern.Pattern {
	t.Helper()
	p, err := pattern.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPatternQuery pins the serving contract: a pattern query answers
// with the Sketched PatternCount kernel's estimate and bound, evaluated
// with the engine's worker count (parallel reduction order is part of
// the exact value).
func TestPatternQuery(t *testing.T) {
	s := testSnapshot(t, core.BF, core.KHash)
	e := newTestEngine(t, s)
	for _, kind := range []core.Kind{core.BF, core.KHash} {
		sess, err := s.Session(kind)
		if err != nil {
			t.Fatal(err)
		}
		sess, err = sess.With(session.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []string{"triangle", "diamond", "4cycle"} {
			res, err := e.Query(Query{Op: OpPattern, Pattern: spec, Kind: kind.String()})
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, spec, err)
			}
			want, err := sess.Run(context.Background(), session.PatternCount{Mode: session.Sketched, P: mustPattern(t, spec)})
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(res.Value) != math.Float64bits(want.Value) {
				t.Errorf("%v/%s: served %v, kernel %v", kind, spec, res.Value, want.Value)
			}
			if res.Bound != want.Bound || res.Bound <= 0 {
				t.Errorf("%v/%s: served bound %v, kernel %v", kind, spec, res.Bound, want.Bound)
			}
		}
	}
}

// TestPatternMemoization: equivalent specs share one per-epoch cell, so
// repeats and aliases answer identically (and the canonical form is
// what normalize computed, not the alias).
func TestPatternMemoization(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	first, err := e.Query(Query{Op: OpPattern, Pattern: "diamond"})
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range []string{"diamond", "triangle-with-chord", "0-1,0-2,0-3,1-2,2-3", "2-0, 1-0,0-3,2-1,3-2"} {
		res, err := e.Query(Query{Op: OpPattern, Pattern: alias})
		if err != nil {
			t.Fatalf("%q: %v", alias, err)
		}
		if math.Float64bits(res.Value) != math.Float64bits(first.Value) || res.Bound != first.Bound {
			t.Errorf("%q: %v@%v, first answer %v@%v", alias, res.Value, res.Bound, first.Value, first.Bound)
		}
	}
	// A swap starts a fresh epoch with an empty memo — same snapshot
	// content, so the recomputed answer must still agree.
	if _, err := e.Swap(testSnapshot(t, core.BF)); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(Query{Op: OpPattern, Pattern: "diamond"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Value) != math.Float64bits(first.Value) {
		t.Errorf("post-swap answer %v, want %v", res.Value, first.Value)
	}
}

// TestPatternNormalize: the spec canonicalizes, irrelevant fields zero,
// and non-pattern ops drop a stray Pattern field so it cannot split
// their cache lines.
func TestPatternNormalize(t *testing.T) {
	s := testSnapshot(t, core.BF)
	sv := newServing(s, 1)
	q, _, err := normalize(sv, Query{Op: OpPattern, Pattern: "tri", U: 9, V: 3, K: 5, Measure: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q.Pattern != "triangle" || q.U != 0 || q.V != 0 || q.K != 0 || q.Measure != 0 {
		t.Errorf("normalized pattern query: %+v", q)
	}
	q, _, err = normalize(sv, Query{Op: OpSimilarity, U: 1, V: 2, Pattern: "triangle"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Pattern != "" {
		t.Errorf("similarity kept pattern %q", q.Pattern)
	}
	for _, bad := range []string{"", "0-0", "nosuch", "0-1,2-3"} {
		if _, _, err := normalize(sv, Query{Op: OpPattern, Pattern: bad}); err == nil {
			t.Errorf("pattern %q: want error", bad)
		}
	}
}

// TestPatternHTTP round-trips a pattern query through the real HTTP
// surface, the same path pgload and the cluster smoke test use.
func TestPatternHTTP(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()
	do := HTTPDoer(nil, srv.URL)

	direct, err := e.Query(Query{Op: OpPattern, Pattern: "4cycle"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := do(Query{Op: OpPattern, Pattern: "4cycle"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != direct.Value || res.Bound != direct.Bound {
		t.Errorf("HTTP answer %v@%v, direct %v@%v", res.Value, res.Bound, direct.Value, direct.Bound)
	}
	if _, err := do(Query{Op: OpPattern, Pattern: "0-0"}); err == nil {
		t.Error("malformed pattern must surface as an HTTP error")
	}
	// Wire form carries the spec both ways.
	wq := FromQuery(Query{Op: OpPattern, Pattern: "diamond"})
	if wq.Pattern != "diamond" || wq.Op != "pattern" {
		t.Errorf("wire form %+v", wq)
	}
	back, err := wq.ToQuery()
	if err != nil {
		t.Fatal(err)
	}
	if back.Op != OpPattern || back.Pattern != "diamond" {
		t.Errorf("round-trip %+v", back)
	}
}

// TestPatternInLoadMix: RunLoad generates pattern queries when the mix
// weights them, and they serve without errors.
func TestPatternInLoadMix(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	mix, err := ParseMix("similarity:2,pattern:1")
	if err != nil {
		t.Fatal(err)
	}
	if mix[OpPattern] != 1 {
		t.Fatalf("mix = %v", mix)
	}
	rep, err := RunLoad(LoadOpts{
		Workers: 2, Duration: 150 * time.Millisecond, Mix: mix,
		Pattern: "diamond", Vertices: s.G.NumVertices(), Seed: 1,
	}, func(q Query) (Result, error) { return e.Query(q) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Queries == 0 {
		t.Fatalf("load report: %+v", rep)
	}
	st := e.Stats()
	if st.Ops["pattern"].OK == 0 {
		t.Error("no pattern queries reached the engine")
	}
}
