package serve

import (
	"fmt"
	mrand "math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/mining"
	"probgraph/internal/obs"
)

// LoadOpts configures RunLoad, the closed/open-loop query driver.
type LoadOpts struct {
	// Workers is the number of concurrent client goroutines (default 4).
	Workers int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// QPS > 0 drives an open loop: a shared token bucket admits queries
	// at the target rate regardless of response times. 0 runs closed
	// loop: every worker issues back-to-back.
	QPS float64
	// Mix weights the operations generated (default: similarity 6,
	// localtc 2, neighbors 1, topk 1). Zero-weight ops never fire.
	Mix map[Op]float64
	// Measure scores similarity/topk queries (default Jaccard).
	Measure mining.Measure
	// TopK is the k of generated topk queries (default 10).
	TopK int
	// Pattern is the spec of generated pattern queries (default
	// "triangle"); only fires when the mix gives OpPattern weight.
	Pattern string
	// Vertices is the id universe queries draw from (required > 0).
	Vertices int
	// Zipf > 1 skews vertex picks with a Zipf(s) law — hot vertices get
	// hot, which is what makes the result cache earn its keep. 0 picks
	// uniformly.
	Zipf float64
	// Seed makes the generated query stream reproducible.
	Seed uint64
	// Interval > 0 emits a LoadWindow to OnWindow every Interval: the
	// queries, errors and latency distribution of just that window,
	// computed as histogram snapshot deltas. A final partial window is
	// emitted when the run ends.
	Interval time.Duration
	// OnWindow receives the per-interval windows. Called from a single
	// reporting goroutine; ignored when Interval is 0.
	OnWindow func(LoadWindow)
}

// LoadWindow is one reporting interval of a load run: counts and latency
// for the queries completed within the window only.
type LoadWindow struct {
	Index   int           // 0-based window number
	Start   time.Duration // window start, as an offset from the run start
	Elapsed time.Duration // actual window length
	Queries int64
	Errors  int64
	Hist    *obs.HistSnapshot // latency of this window's queries
}

// Throughput returns the window's completed queries per second.
func (w LoadWindow) Throughput() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.Queries) / w.Elapsed.Seconds()
}

// String formats the window the way pgload prints interval lines.
func (w LoadWindow) String() string {
	return fmt.Sprintf("t=%4.1fs  %7d q (%8.1f q/s)  %3d err  p50 %-10v p99 %-10v max %v",
		(w.Start + w.Elapsed).Seconds(), w.Queries, w.Throughput(), w.Errors,
		w.Hist.Quantile(0.50), w.Hist.Quantile(0.99), w.Hist.Max())
}

// DefaultMix is the query mix used when LoadOpts.Mix is nil.
func DefaultMix() map[Op]float64 {
	return map[Op]float64{OpSimilarity: 6, OpLocalTC: 2, OpNeighbors: 1, OpTopK: 1}
}

// ParseMix parses a "similarity:6,localtc:2,topk:1" weight list.
func ParseMix(s string) (map[Op]float64, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	mix := make(map[Op]float64)
	for _, part := range strings.Split(s, ",") {
		name, wstr, found := strings.Cut(part, ":")
		w := 1.0
		if found {
			var err error
			w, err = strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("serve: bad mix weight %q", part)
			}
		}
		op, err := ParseOp(name)
		if err != nil {
			return nil, err
		}
		mix[op] += w
	}
	return mix, nil
}

// LoadReport is the outcome of a load run.
type LoadReport struct {
	Queries int64
	Errors  int64
	Elapsed time.Duration
	Hist    *Hist // service latency per query
}

// Throughput returns completed queries per second.
func (r *LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// String formats the report the way pgload prints it.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"%d queries in %.2fs (%.1f q/s), %d errors\nlatency: p50 %v  p90 %v  p99 %v  p99.9 %v  max %v",
		r.Queries, r.Elapsed.Seconds(), r.Throughput(), r.Errors,
		r.Hist.Quantile(0.50), r.Hist.Quantile(0.90), r.Hist.Quantile(0.99),
		r.Hist.Quantile(0.999), r.Hist.Max())
}

// tokenBucket is the open-loop rate limiter: a reservation-style bucket
// (a take may go negative and returns the debt as a wait time), so
// concurrent workers never herd on the same token.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	burst := rate / 50 // 20ms of headroom absorbs scheduler jitter
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// take reserves one token and returns how long the caller must wait
// before acting on it.
func (tb *tokenBucket) take() time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens--
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// RunLoad drives `do` with a reproducible random query stream for
// opts.Duration and reports throughput and latency. `do` is either an
// in-process engine call or an HTTPDoer; it must be safe for concurrent
// use. Latency is measured per call from token grant (open loop) or
// call start (closed loop).
func RunLoad(opts LoadOpts, do func(Query) (Result, error)) (*LoadReport, error) {
	if opts.Vertices <= 0 {
		return nil, fmt.Errorf("serve: load needs a positive vertex universe")
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.TopK <= 0 {
		opts.TopK = 10
	}
	if opts.Pattern == "" {
		opts.Pattern = "triangle"
	}
	mix := opts.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	ops, cum, err := cumWeights(mix)
	if err != nil {
		return nil, err
	}

	var tb *tokenBucket
	if opts.QPS > 0 {
		tb = newTokenBucket(opts.QPS)
	}
	hist := NewHist()
	var queries, errors atomic.Int64
	start := time.Now()
	deadline := start.Add(opts.Duration)

	// Windowed reporting: a single goroutine ticks at opts.Interval and
	// emits the delta since the previous snapshot — workers only record
	// into the shared histogram, so reporting costs them nothing.
	stopWindows := make(chan struct{})
	var windowWG sync.WaitGroup
	if opts.Interval > 0 && opts.OnWindow != nil {
		windowWG.Add(1)
		go func() {
			defer windowWG.Done()
			ticker := time.NewTicker(opts.Interval)
			defer ticker.Stop()
			var prev *obs.HistSnapshot
			var prevQ, prevE int64
			index := 0
			last := start
			emit := func(now time.Time) {
				snap := hist.Snapshot()
				q, e := queries.Load(), errors.Load()
				opts.OnWindow(LoadWindow{
					Index:   index,
					Start:   last.Sub(start),
					Elapsed: now.Sub(last),
					Queries: q - prevQ,
					Errors:  e - prevE,
					Hist:    snap.Sub(prev),
				})
				prev, prevQ, prevE, last = snap, q, e, now
				index++
			}
			for {
				select {
				case now := <-ticker.C:
					emit(now)
				case <-stopWindows:
					// Final partial window, so no completed query goes
					// unreported.
					if now := time.Now(); now.After(last) {
						emit(now)
					}
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(opts.Seed) + int64(w)*0x9e3779b9))
			var zipf *mrand.Zipf
			if opts.Zipf > 1 && opts.Vertices > 1 {
				zipf = mrand.NewZipf(rng, opts.Zipf, 1, uint64(opts.Vertices-1))
			}
			vertex := func() uint32 {
				if zipf != nil {
					return uint32(zipf.Uint64())
				}
				return uint32(rng.Intn(opts.Vertices))
			}
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if tb != nil {
					if d := tb.take(); d > 0 {
						if now.Add(d).After(deadline) {
							return
						}
						time.Sleep(d)
					}
				}
				q := Query{Op: pickOp(rng.Float64(), ops, cum), Measure: opts.Measure}
				switch q.Op {
				case OpSimilarity:
					q.U, q.V = vertex(), vertex()
				case OpTopK:
					q.U, q.K = vertex(), opts.TopK
				case OpPattern:
					q.Pattern = opts.Pattern
				default:
					q.U = vertex()
				}
				t0 := time.Now()
				_, err := do(q)
				hist.Record(time.Since(t0))
				queries.Add(1)
				if err != nil {
					errors.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopWindows)
	windowWG.Wait()
	return &LoadReport{
		Queries: queries.Load(),
		Errors:  errors.Load(),
		Elapsed: time.Since(start),
		Hist:    hist,
	}, nil
}

// cumWeights flattens a mix into parallel op/cumulative-weight slices.
func cumWeights(mix map[Op]float64) ([]Op, []float64, error) {
	ops := make([]Op, 0, len(mix))
	for op, w := range mix {
		if w > 0 {
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		return nil, nil, fmt.Errorf("serve: empty query mix")
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	cum := make([]float64, len(ops))
	var total float64
	for i, op := range ops {
		total += mix[op]
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return ops, cum, nil
}

// pickOp selects the op whose cumulative weight bracket contains r.
func pickOp(r float64, ops []Op, cum []float64) Op {
	for i, c := range cum {
		if r < c {
			return ops[i]
		}
	}
	return ops[len(ops)-1]
}
