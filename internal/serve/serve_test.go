package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
)

func testSnapshot(t *testing.T, kinds ...core.Kind) *Snapshot {
	t.Helper()
	g := graph.Kronecker(9, 8, 7)
	s, err := Open(g, SnapshotConfig{Kinds: kinds, Budget: 0.25, Seed: 99})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func newTestEngine(t *testing.T, s *Snapshot) *Engine {
	t.Helper()
	e := New(s, Options{Workers: 4})
	t.Cleanup(e.Close)
	return e
}

// TestSimilarityMatchesKernel is the serving contract of the issue: a
// sketch-served Similarity answer must equal mining.PGSimilarity for the
// same (Kind, Budget, seed) — including against an independently built
// PG, since identical seeds reproduce sketches bit-for-bit.
func TestSimilarityMatchesKernel(t *testing.T) {
	s := testSnapshot(t, core.BF, core.OneHash, core.KMV)
	e := newTestEngine(t, s)
	// An independent build with the snapshot's config must agree exactly.
	indep, err := core.Build(s.G, core.Config{Kind: core.BF, Budget: 0.25, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	measures := []mining.Measure{
		mining.Jaccard, mining.Overlap, mining.CommonNeighbors,
		mining.TotalNeighbors, mining.AdamicAdar, mining.ResourceAllocation,
	}
	n := uint32(s.G.NumVertices())
	for _, kind := range []string{"BF", "1H", "KMV"} {
		pg := s.PG(mustKind(t, kind))
		for i := uint32(0); i < 50; i++ {
			u, v := (i*37)%n, (i*101+13)%n
			for _, m := range measures {
				res, err := e.Query(Query{Op: OpSimilarity, U: u, V: v, Measure: m, Kind: kind})
				if err != nil {
					t.Fatalf("%s sim(%d,%d,%v): %v", kind, u, v, m, err)
				}
				want := mining.PGSimilarity(s.G, pg, u, v, m)
				if res.Value != want {
					t.Fatalf("%s sim(%d,%d,%v) = %v, kernel says %v", kind, u, v, m, res.Value, want)
				}
				if kind == "BF" {
					if ind := mining.PGSimilarity(s.G, indep, u, v, m); res.Value != ind {
						t.Fatalf("served %v != independent same-seed build %v", res.Value, ind)
					}
				}
			}
		}
	}
}

func mustKind(t *testing.T, s string) core.Kind {
	t.Helper()
	k, err := ParseKind(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestLocalTCAndTC checks the per-vertex and global triangle queries
// against the batch kernels they reimplement.
func TestLocalTCAndTC(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	pg := s.PG(core.BF)
	wantLocal := mining.PGLocalTC(s.G, pg, 4)
	for _, v := range []uint32{0, 1, 17, 200} {
		res, err := e.Query(Query{Op: OpLocalTC, U: v})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != wantLocal[v] {
			t.Fatalf("localtc(%d) = %v, want %v", v, res.Value, wantLocal[v])
		}
	}
	res, err := e.Query(Query{Op: OpTC})
	if err != nil {
		t.Fatal(err)
	}
	// Same worker count as the engine: parallel float reduction order
	// is part of the exact value.
	if want := mining.PGTC(s.G, pg, 4); res.Value != want {
		t.Fatalf("tc = %v, want %v", res.Value, want)
	}
}

// TestTopK checks candidate generation: ranked by score, no self, no
// existing neighbors, scores match the similarity kernel.
func TestTopK(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	pg := s.PG(core.BF)
	v := uint32(3)
	res, err := e.Query(Query{Op: OpTopK, U: v, K: 8, Measure: mining.Jaccard})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 || len(res.TopK) > 8 {
		t.Fatalf("topk returned %d candidates", len(res.TopK))
	}
	for i, c := range res.TopK {
		if c.V == v {
			t.Fatal("topk proposed the query vertex itself")
		}
		if s.G.HasEdge(v, c.V) {
			t.Fatalf("topk proposed existing edge (%d,%d)", v, c.V)
		}
		if want := mining.PGSimilarity(s.G, pg, v, c.V, mining.Jaccard); c.Score != want {
			t.Fatalf("topk score %v, kernel says %v", c.Score, want)
		}
		if i > 0 && c.Score > res.TopK[i-1].Score {
			t.Fatal("topk not sorted by descending score")
		}
	}
}

// TestNeighbors checks the exact adjacency passthrough.
func TestNeighbors(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	res, err := e.Query(Query{Op: OpNeighbors, U: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := s.G.Neighbors(5)
	if len(res.Neighbors) != len(want) {
		t.Fatalf("neighbors(5): %d ids, want %d", len(res.Neighbors), len(want))
	}
	for i := range want {
		if res.Neighbors[i] != want[i] {
			t.Fatalf("neighbors mismatch at %d", i)
		}
	}
}

// TestCacheHits checks hit accounting, the Cached flag, and that a
// cached answer is byte-identical to the first computation; symmetric
// pairs must share a cache line.
func TestCacheHits(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	q := Query{Op: OpSimilarity, U: 9, V: 4, Measure: mining.Jaccard}
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first answer claims to be cached")
	}
	// The swapped pair must hit the same line (similarity is symmetric).
	again, err := e.Query(Query{Op: OpSimilarity, U: 4, V: 9, Measure: mining.Jaccard})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Value != first.Value {
		t.Fatalf("swapped pair: cached=%v value=%v, want cached copy of %v", again.Cached, again.Value, first.Value)
	}
	st := e.Stats()
	if st.Cache.Hits < 1 {
		t.Fatalf("cache hits = %d, want >= 1", st.Cache.Hits)
	}
}

// TestLRUCache unit-tests the cache: eviction order and counters.
func TestLRUCache(t *testing.T) {
	c := newLRU(2)
	k := func(u uint32) cacheKey { return cacheKey{epoch: 1, q: Query{Op: OpLocalTC, U: u}} }
	c.put(k(1), Result{Value: 1})
	c.put(k(2), Result{Value: 2})
	if _, ok := c.get(k(1)); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("expected hit on key 1")
	}
	c.put(k(3), Result{Value: 3}) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("key 2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("key 1 should have survived")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Fatal("key 3 should be resident")
	}
	if c.hits.Load() != 3 || c.misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 3/1", c.hits.Load(), c.misses.Load())
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Epoch is part of the key: a new snapshot never reads old lines.
	if _, ok := c.get(cacheKey{epoch: 2, q: Query{Op: OpLocalTC, U: 1}}); ok {
		t.Fatal("cross-epoch hit")
	}
}

// TestDisabledCache checks CacheSize < 0 really disables caching.
func TestDisabledCache(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := New(s, Options{Workers: 2, CacheSize: -1})
	t.Cleanup(e.Close)
	q := Query{Op: OpSimilarity, U: 9, V: 4, Measure: mining.Jaccard}
	for i := 0; i < 3; i++ {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("disabled cache served a hit")
		}
	}
	if st := e.Stats(); st.Cache.Hits != 0 || st.Cache.Len != 0 {
		t.Fatalf("disabled cache has state: %+v", st.Cache)
	}
}

// TestValidation checks that malformed queries are rejected before they
// reach the batcher.
func TestValidation(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	bad := []Query{
		{Op: OpLocalTC, U: uint32(s.G.NumVertices())},    // vertex out of range
		{Op: OpSimilarity, U: 0, V: 1 << 30},             // vertex out of range
		{Op: 99, U: 0},                                   // unknown op
		{Op: OpSimilarity, U: 0, V: 1, Measure: 42},      // unknown measure
		{Op: OpSimilarity, U: 0, V: 1, Kind: "HLL"},      // kind not resident
		{Op: OpSimilarity, U: 0, V: 1, Kind: "nonsense"}, // kind unparsable
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Fatalf("query %+v should have been rejected", q)
		}
	}
	st := e.Stats()
	var errs int64
	for _, op := range st.Ops {
		errs += op.Errors
	}
	if errs != int64(len(bad)) {
		t.Fatalf("error count = %d, want %d", errs, len(bad))
	}
}

// TestConcurrentLoad runs the closed-loop driver in-process: the whole
// stack (cache, batcher, kernels) under -race, with every op in the mix.
func TestConcurrentLoad(t *testing.T) {
	s := testSnapshot(t, core.BF, core.OneHash)
	e := newTestEngine(t, s)
	mix := DefaultMix()
	mix[OpTC] = 0.5
	rep, err := RunLoad(LoadOpts{
		Workers:  8,
		Duration: 300 * time.Millisecond,
		Mix:      mix,
		Vertices: s.G.NumVertices(),
		Zipf:     1.3,
		Seed:     5,
	}, e.Query)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run produced %d errors", rep.Errors)
	}
	if rep.Queries == 0 {
		t.Fatal("load run produced no queries")
	}
	if rep.Hist.Count() != rep.Queries {
		t.Fatalf("histogram count %d != queries %d", rep.Hist.Count(), rep.Queries)
	}
	st := e.Stats()
	if st.Batch.Queries == 0 {
		t.Fatal("no queries went through the batcher")
	}
	if st.Cache.Hits == 0 {
		t.Fatal("zipf-skewed load should produce cache hits")
	}
}

// TestOpenLoopRate checks the token bucket paces an open-loop run near
// its target.
func TestOpenLoopRate(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	rep, err := RunLoad(LoadOpts{
		Workers:  4,
		Duration: 500 * time.Millisecond,
		QPS:      400,
		Vertices: s.G.NumVertices(),
		Seed:     5,
	}, e.Query)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Throughput(); got > 800 || got < 100 {
		t.Fatalf("open-loop throughput %.0f q/s far from 400 target", got)
	}
}

// TestHTTPRoundTrip exercises the full wire path: handler, doer, stats,
// health, and error mapping.
func TestHTTPRoundTrip(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()
	do := HTTPDoer(srv.Client(), srv.URL)

	res, err := do(Query{Op: OpSimilarity, U: 2, V: 11, Measure: mining.Jaccard})
	if err != nil {
		t.Fatal(err)
	}
	want := mining.PGSimilarity(s.G, s.PG(core.BF), 2, 11, mining.Jaccard)
	if res.Value != want {
		t.Fatalf("http similarity %v, want %v", res.Value, want)
	}
	if _, err := do(Query{Op: OpLocalTC, U: 1 << 30}); err == nil {
		t.Fatal("out-of-range vertex should fail over HTTP")
	}
	st, err := FetchStats(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices != s.G.NumVertices() || st.SketchBytes["BF"] <= 0 {
		t.Fatalf("stats payload wrong: %+v", st)
	}
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestEngineClose checks shutdown is idempotent and safe while idle.
func TestEngineClose(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := New(s, Options{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.Query(Query{Op: OpLocalTC, U: uint32(i)})
		}(i)
	}
	wg.Wait()
	e.Close()
	e.Close() // idempotent
	if _, err := e.Query(Query{Op: OpLocalTC, U: 400}); err == nil {
		// A closed engine may still serve from cache; uncached point
		// queries must error rather than hang.
		t.Fatal("uncached query on closed engine should error")
	}
}

// TestQueryCtxCancellation: a cancelled request context fails fast, is
// not cached, and does not poison later requests for the same answer.
func TestQueryCtxCancellation(t *testing.T) {
	s := testSnapshot(t, core.BF)
	e := newTestEngine(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryCtx(ctx, Query{Op: OpTC}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TC err = %v, want context.Canceled", err)
	}
	if _, err := e.QueryCtx(ctx, Query{Op: OpSimilarity, U: 1, V: 2}); err == nil {
		t.Fatal("cancelled similarity must error")
	}
	// The cancelled TC run must not have been memoized: a live request
	// computes the true value.
	res, err := e.QueryCtx(context.Background(), Query{Op: OpTC})
	if err != nil {
		t.Fatalf("TC after cancellation: %v", err)
	}
	want := mining.PGTC(s.G, s.PG(core.BF), 4)
	if res.Value != want {
		t.Fatalf("TC = %v, want %v", res.Value, want)
	}
	// And the cancelled similarity was not cached as an answer.
	r2, err := e.QueryCtx(context.Background(), Query{Op: OpSimilarity, U: 1, V: 2})
	if err != nil || r2.Cached {
		t.Fatalf("similarity after cancellation: %+v, %v (must be a fresh miss)", r2, err)
	}
}

// TestBatcherLeaderCancellation: a cancelled leader in a coalesced group
// must not poison its peers — they get a real answer.
func TestBatcherLeaderCancellation(t *testing.T) {
	cancelledCtx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	b := newBatcher(func(ctx context.Context, _ *serving, q Query) Result {
		calls.Add(1)
		if err := ctx.Err(); err != nil {
			return Result{Err: err.Error()}
		}
		return Result{Value: 42}
	}, 1, 8, time.Millisecond)
	defer b.close()
	cancel()

	// Build one coalesced group by hand: a cancelled leader and a live peer.
	lead := &pending{ctx: cancelledCtx, sv: testServing(), q: Query{Op: OpLocalTC, U: 1}, res: make(chan Result, 1)}
	peer := &pending{ctx: context.Background(), sv: testServing(), q: Query{Op: OpLocalTC, U: 1}, res: make(chan Result, 1)}
	b.run([]*pending{lead, peer})
	if r := <-lead.res; r.Err == "" {
		t.Fatalf("cancelled leader got %+v, want its cancellation error", r)
	}
	if r := <-peer.res; r.Err != "" || r.Value != 42 {
		t.Fatalf("live peer got %+v, want the real answer", r)
	}
}
