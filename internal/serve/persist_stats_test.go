package serve

import (
	"net/http/httptest"
	"testing"

	"probgraph/internal/graph"
)

// persistingIngestor stubs a durable-epoch feeder: every batch succeeds,
// but the persist hook's outcome is scripted per call.
type persistingIngestor struct {
	epoch uint64
	errs  []string // per-call persist error ("" = persisted cleanly)
}

func (p *persistingIngestor) Ingest(add, del []graph.Edge) (IngestResult, error) {
	p.epoch++
	res := IngestResult{Epoch: p.epoch, Added: len(add)}
	i := int(p.epoch) - 1
	if i < len(p.errs) && p.errs[i] != "" {
		res.PersistErr = p.errs[i]
	} else {
		res.Persisted = true
	}
	return res, nil
}

// TestPersistCountersInStats is the satellite-fix contract: epoch
// persist failures, previously unreportable, now flow through the
// Ingestor result into /v1/stats — successes and failures counted, the
// last failure message retained.
func TestPersistCountersInStats(t *testing.T) {
	g := graph.Kronecker(7, 8, 3)
	s, err := Open(g, SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(s, Options{Workers: 2})
	defer e.Close()
	e.EnableIngest(&persistingIngestor{errs: []string{"", "disk full", ""}})
	srv := httptest.NewServer(Handler(e))
	defer srv.Close()

	do := HTTPIngestDoer(srv.Client(), srv.URL)
	var results []IngestResult
	for i := 0; i < 3; i++ {
		res, err := do([]graph.Edge{{U: 0, V: uint32(i + 1)}}, nil)
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		results = append(results, res)
	}
	if !results[0].Persisted || results[0].PersistErr != "" {
		t.Fatalf("batch 0 should persist cleanly: %+v", results[0])
	}
	if results[1].Persisted || results[1].PersistErr != "disk full" {
		t.Fatalf("batch 1 must report its persist failure over the wire: %+v", results[1])
	}

	st := e.Stats()
	if st.Ingest.OK != 3 || st.Ingest.Errors != 0 {
		t.Fatalf("ingest counters %+v", st.Ingest)
	}
	if st.Persist.OK != 2 || st.Persist.Errors != 1 {
		t.Fatalf("persist counters %+v, want 2 ok / 1 error", st.Persist)
	}
	if st.LastPersistError != "disk full" {
		t.Fatalf("last persist error %q, want %q", st.LastPersistError, "disk full")
	}
}
