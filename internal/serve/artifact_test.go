package serve

import (
	"bytes"
	"errors"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
)

// TestOpenArtifactAnswersIdentically is the warm-start contract: a
// server booted from an artifact answers every query class exactly like
// the server that wrote the artifact — same TC estimate, same point
// answers, same default kind.
func TestOpenArtifactAnswersIdentically(t *testing.T) {
	cold := testSnapshot(t, core.BF, core.OneHash, core.KMV)
	var buf bytes.Buffer
	info, err := cold.Save(&buf)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if info.Bytes != int64(buf.Len()) {
		t.Fatalf("Save reported %d bytes, wrote %d", info.Bytes, buf.Len())
	}
	warm, err := OpenArtifact(bytes.NewReader(buf.Bytes()), SnapshotConfig{Workers: 4})
	if err != nil {
		t.Fatalf("OpenArtifact: %v", err)
	}
	if warm.DefaultKind() != cold.DefaultKind() {
		t.Fatalf("default kind %v after restore, want %v", warm.DefaultKind(), cold.DefaultKind())
	}
	if len(warm.Kinds()) != len(cold.Kinds()) {
		t.Fatalf("restored %v kinds, want %v", warm.Kinds(), cold.Kinds())
	}

	ec := newTestEngine(t, cold)
	ew := newTestEngine(t, warm)
	n := uint32(cold.G.NumVertices())
	queries := []Query{
		{Op: OpTC},
		{Op: OpTC, Kind: "1H"},
		{Op: OpLocalTC, U: 3},
		{Op: OpNeighbors, U: 5},
		{Op: OpTopK, U: 2, K: 5},
	}
	for i := uint32(0); i < 40; i++ {
		queries = append(queries,
			Query{Op: OpSimilarity, U: (i * 37) % n, V: (i*101 + 13) % n},
			Query{Op: OpSimilarity, U: (i * 37) % n, V: (i*101 + 13) % n, Kind: "KMV"},
		)
	}
	for _, q := range queries {
		rc, err := ec.Query(q)
		if err != nil {
			t.Fatalf("cold %v: %v", q, err)
		}
		rw, err := ew.Query(q)
		if err != nil {
			t.Fatalf("warm %v: %v", q, err)
		}
		if rc.Value != rw.Value || len(rc.TopK) != len(rw.TopK) || len(rc.Neighbors) != len(rw.Neighbors) {
			t.Fatalf("%v: warm answer %+v differs from cold %+v", q, rw, rc)
		}
		for i := range rc.TopK {
			if rc.TopK[i] != rw.TopK[i] {
				t.Fatalf("%v: topk[%d] differs: %+v vs %+v", q, i, rw.TopK[i], rc.TopK[i])
			}
		}
	}
}

// TestOpenArtifactKindSelection covers subsetting and mismatch: serving
// a subset of resident kinds works, a kind the artifact lacks is a
// typed ErrMismatch.
func TestOpenArtifactKindSelection(t *testing.T) {
	cold := testSnapshot(t, core.BF, core.OneHash)
	var buf bytes.Buffer
	if _, err := cold.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sub, err := OpenArtifact(bytes.NewReader(buf.Bytes()), SnapshotConfig{Kinds: []core.Kind{core.OneHash}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.DefaultKind() != core.OneHash || len(sub.Kinds()) != 1 {
		t.Fatalf("subset restore got kinds %v", sub.Kinds())
	}
	_, err = OpenArtifact(bytes.NewReader(buf.Bytes()), SnapshotConfig{Kinds: []core.Kind{core.HLL}})
	if !errors.Is(err, pgio.ErrMismatch) {
		t.Fatalf("missing kind must be ErrMismatch, got %v", err)
	}
}

// TestOpenArtifactRejectsSketchless pins the no-sketch case: a
// graph-only artifact cannot boot a serving snapshot.
func TestOpenArtifactRejectsSketchless(t *testing.T) {
	var buf bytes.Buffer
	if _, err := pgio.Encode(&buf, &pgio.Artifact{G: graph.Complete(8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifact(bytes.NewReader(buf.Bytes()), SnapshotConfig{}); !errors.Is(err, pgio.ErrMismatch) {
		t.Fatalf("sketchless artifact must be ErrMismatch, got %v", err)
	}
}

// TestStatsArtifactField asserts the /v1/stats surfacing: an
// artifact-booted engine reports total and per-section artifact bytes
// alongside the resident SketchBytes; a from-scratch engine omits them.
func TestStatsArtifactField(t *testing.T) {
	cold := testSnapshot(t, core.BF)
	if s := newTestEngine(t, cold).Stats(); s.Artifact != nil {
		t.Fatalf("from-scratch snapshot reports artifact stats %+v", s.Artifact)
	}
	var buf bytes.Buffer
	if _, err := cold.Save(&buf); err != nil {
		t.Fatal(err)
	}
	size := int64(buf.Len())
	warm, err := OpenArtifact(bytes.NewReader(buf.Bytes()), SnapshotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestEngine(t, warm).Stats()
	if s.Artifact == nil {
		t.Fatal("artifact-booted snapshot reports no artifact stats")
	}
	if s.Artifact.Bytes != size {
		t.Fatalf("artifact bytes %d, file is %d", s.Artifact.Bytes, size)
	}
	for _, sec := range []string{"graph", "oriented", "pg:BF"} {
		if s.Artifact.Sections[sec] <= 0 {
			t.Fatalf("section %q missing from artifact stats %+v", sec, s.Artifact.Sections)
		}
	}
	if len(s.SketchBytes) == 0 || s.SketchBytes["BF"] <= 0 {
		t.Fatalf("resident sketch bytes lost on warm start: %+v", s.SketchBytes)
	}
}
