package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheKey identifies a cached answer: the normalized query plus the
// snapshot epoch it was computed against, so a swapped snapshot can
// never serve stale results.
type cacheKey struct {
	epoch uint64
	q     Query
}

// lru is a mutex-protected LRU result cache with hit/miss counters.
// Results stored in it are treated as immutable by every reader.
type lru struct {
	mu    sync.Mutex
	cap   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type lruEntry struct {
	key cacheKey
	res Result
}

// newLRU returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every lookup misses, every insert is dropped).
func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		items: make(map[cacheKey]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *lru) get(key cacheKey) (Result, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return Result{}, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var res Result
	if ok {
		c.order.MoveToFront(el)
		// Copy under the lock: put may overwrite this entry's Result
		// when concurrent misses on the same key both insert.
		res = el.Value.(*lruEntry).res
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Result{}, false
	}
	c.hits.Add(1)
	return res, true
}

// put inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (c *lru) put(key cacheKey, res Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
