package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"probgraph/internal/graph"
)

// ErrBadBatch marks an Ingest failure caused by the batch itself — a
// malformed or cap-violating request rather than a server fault.
// Implementations wrap it (fmt.Errorf("...: %w", serve.ErrBadBatch)) so
// the HTTP layer can answer 400 instead of 500.
var ErrBadBatch = errors.New("bad ingest batch")

// Ingestor applies one batch of edge mutations to the served graph and
// makes the resulting epoch visible — the contract behind POST
// /v1/ingest. The canonical implementation is stream.Feeder: apply the
// batch to a DynamicGraph (incremental sketch maintenance), Freeze the
// new epoch, and Swap it into the engine. Implementations must be safe
// for concurrent use; batches are applied in some serialized order.
type Ingestor interface {
	Ingest(add, del []graph.Edge) (IngestResult, error)
}

// IngestResult reports one applied batch: the epoch it produced, the
// post-batch graph shape, how many mutations took effect, the
// freeze+swap latency the batch paid, and — when the DynamicGraph has a
// persist hook — whether this epoch made it to durable storage. A
// persist failure does not fail the batch (the epoch is live in
// memory), but it must be visible: PersistErr carries the failure and
// the engine counts it into /v1/stats.
type IngestResult struct {
	Epoch      uint64  `json:"epoch"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Added      int     `json:"added"`
	Removed    int     `json:"removed"`
	BuildMS    float64 `json:"build_ms"`
	Persisted  bool    `json:"persisted,omitempty"`
	PersistErr string  `json:"persist_err,omitempty"`
}

// WireIngest is the JSON request body of POST /v1/ingest: edge pairs to
// add and to delete. Self loops and already-present (resp. absent)
// edges are ignored; endpoints beyond the current vertex count grow the
// graph.
type WireIngest struct {
	Add [][2]uint32 `json:"add,omitempty"`
	Del [][2]uint32 `json:"del,omitempty"`
}

// Edges converts the wire pairs to typed edge lists.
func (w WireIngest) Edges() (add, del []graph.Edge) {
	add = make([]graph.Edge, len(w.Add))
	for i, p := range w.Add {
		add[i] = graph.Edge{U: p[0], V: p[1]}
	}
	del = make([]graph.Edge, len(w.Del))
	for i, p := range w.Del {
		del[i] = graph.Edge{U: p[0], V: p[1]}
	}
	return add, del
}

// handleIngest is the POST /v1/ingest endpoint: decode the batch, hand
// it to the engine's Ingestor, and report the new epoch. Without an
// attached Ingestor (a static snapshot server) it answers 501.
func (e *Engine) handleIngest(w http.ResponseWriter, r *http.Request) {
	ing := e.ingestor()
	if ing == nil {
		httpError(w, http.StatusNotImplemented,
			fmt.Errorf("serve: ingest not enabled on this server (start pgserve with -stream)"))
		return
	}
	var wi WireIngest
	// Ingest batches are bulkier than queries: allow up to 16 MiB.
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<24)).Decode(&wi); err != nil {
		e.ingestErr.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding ingest batch: %w", err))
		return
	}
	add, del := wi.Edges()
	res, err := ing.Ingest(add, del)
	if err != nil {
		e.ingestErr.Add(1)
		code := http.StatusInternalServerError
		if errors.Is(err, ErrBadBatch) {
			code = http.StatusBadRequest // the batch's fault, not the server's
		}
		httpError(w, code, err)
		return
	}
	e.ingestOK.Add(1)
	e.countPersist(res)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// countPersist folds one batch's durable-epoch outcome into the
// engine's persist counters (see Stats.Persist).
func (e *Engine) countPersist(res IngestResult) {
	switch {
	case res.PersistErr != "":
		e.persistErr.Add(1)
		msg := res.PersistErr
		e.lastPersistErr.Store(&msg)
	case res.Persisted:
		e.persistOK.Add(1)
	}
}

// HTTPIngestDoer returns a function that round-trips edge batches
// through a server's /v1/ingest endpoint — the client side used by
// pgload's mixed ingest/query mode. A nil client uses
// http.DefaultClient.
func HTTPIngestDoer(client *http.Client, base string) func(add, del []graph.Edge) (IngestResult, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := base + "/v1/ingest"
	return func(add, del []graph.Edge) (IngestResult, error) {
		wi := WireIngest{
			Add: make([][2]uint32, len(add)),
			Del: make([][2]uint32, len(del)),
		}
		for i, e := range add {
			wi.Add[i] = [2]uint32{e.U, e.V}
		}
		for i, e := range del {
			wi.Del[i] = [2]uint32{e.U, e.V}
		}
		body, err := json.Marshal(wi)
		if err != nil {
			return IngestResult{}, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return IngestResult{}, err
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			var we wireError
			if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Error != "" {
				return IngestResult{}, fmt.Errorf("server: %s", we.Error)
			}
			return IngestResult{}, fmt.Errorf("server: HTTP %d", resp.StatusCode)
		}
		var res IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return IngestResult{}, err
		}
		return res, nil
	}
}
