package serve

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistBucketRoundTrip checks the log-linear index math: every
// bucket's lower bound maps back to that bucket, and indices are
// monotone in the value.
func TestHistBucketRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(bucketValue(i)); got != i {
			t.Fatalf("bucketOf(bucketValue(%d)) = %d", i, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		if b >= histBuckets {
			t.Fatalf("bucket %d out of range for value %d", b, v)
		}
		prev = b
	}
}

// TestHistQuantiles records a known distribution and checks quantiles
// land within the histogram's ~1.6% bucket resolution.
func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.9, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.95)
		hi := time.Duration(float64(tc.want) * 1.05)
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %v, want within 5%% of %v", tc.q, got, tc.want)
		}
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

// TestHistConcurrent hammers Record from many goroutines under -race.
func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1.0) > h.Max() {
		t.Fatal("q1.0 exceeds max")
	}
}
