package graph

// KCore computes the core number of every vertex (the largest k such
// that the vertex belongs to a subgraph of minimum degree k) with the
// linear-time bucket peeling algorithm of Matula–Beck. The degeneracy of
// the graph is the maximum core number.
//
// The clique-counting literature the paper builds on (Danisch et al.,
// Eden et al.) orients edges by the peeling order: it bounds every
// oriented out-degree by the degeneracy, which is much smaller than the
// maximum degree on real graphs and tightens the Listing 2 work bounds.
func (g *Graph) KCore() (core []int32, degeneracy int32) {
	n := g.NumVertices()
	core = make([]int32, n)
	if n == 0 {
		return core, 0
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by current degree.
	binStart := make([]int32, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := int32(1); i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int32, n)   // position of vertex in vert
	vert := make([]uint32, n) // vertices sorted by degree
	fill := append([]int32(nil), binStart...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = uint32(v)
		fill[deg[v]]++
	}
	// Peel in degree order.
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		if deg[v] > degeneracy {
			degeneracy = deg[v]
		}
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				// Move u one bucket down: swap with the first vertex of
				// its current bucket, then shrink the bucket.
				du := deg[u]
				pu := pos[u]
				pw := binStart[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				binStart[du]++
				deg[u]--
			}
		}
	}
	return core, degeneracy
}

// DegeneracyRank returns the peeling-order rank: rank[v] < rank[u] means
// v was peeled first. Ties inside a core level are broken by peel time,
// so the order is a valid degeneracy ordering: every vertex has at most
// `degeneracy` neighbors ranked after it.
func (g *Graph) DegeneracyRank() []int32 {
	n := g.NumVertices()
	rank := make([]int32, n)
	if n == 0 {
		return rank
	}
	// Re-run peeling, recording the removal order.
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	binStart := make([]int32, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := int32(1); i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int32, n)
	vert := make([]uint32, n)
	fill := append([]int32(nil), binStart...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = uint32(v)
		fill[deg[v]]++
	}
	for i := 0; i < n; i++ {
		v := vert[i]
		rank[v] = int32(i)
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				du := deg[u]
				pu := pos[u]
				pw := binStart[du]
				w := vert[pw]
				if u != w {
					vert[pu], vert[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				binStart[du]++
				deg[u]--
			}
		}
	}
	return rank
}
