package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a whitespace-separated edge list
// (one "u v" pair per line, u < v) preceded by a "# n m" header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v uint32) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses a whitespace-separated edge list. Lines starting
// with '#' or '%' are comments; a comment of the form "# n m" fixes the
// vertex count, otherwise n is max vertex ID + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '#' || text[0] == '%' {
			fields := strings.Fields(strings.TrimLeft(text, "#% "))
			if len(fields) >= 2 {
				if hn, err1 := strconv.Atoi(fields[0]); err1 == nil {
					if _, err2 := strconv.Atoi(fields[1]); err2 == nil && hn > n {
						n = hn
					}
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", line, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", line, fields[1], err)
		}
		edges = append(edges, Edge{uint32(u), uint32(v)})
		if int(u)+1 > n {
			n = int(u) + 1
		}
		if int(v)+1 > n {
			n = int(v) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return FromEdges(n, edges)
}

// binaryMagic identifies the binary CSR file format.
const binaryMagic = 0x50474353 // "PGCS"

// WriteBinary writes the CSR arrays in a compact little-endian binary
// format for fast reloading of large generated graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{binaryMagic, uint64(g.NumVertices()), uint64(len(g.Neigh))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Neigh); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, adjLen := int(hdr[1]), int(hdr[2])
	g := &Graph{
		Offsets: make([]int64, n+1),
		Neigh:   make([]uint32, adjLen),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: binary offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Neigh); err != nil {
		return nil, fmt.Errorf("graph: binary adjacency: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
