package graph

import (
	"fmt"
	"math/rand/v2"
)

// rng constructs a deterministic PCG generator from a seed.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Kronecker generates a power-law graph with 2^scale vertices and
// approximately edgeFactor·2^scale undirected edges using the R-MAT /
// stochastic Kronecker recursion (Leskovec et al.), the synthetic model
// of the paper's evaluation (§VIII-A). The default Graph500 initiator
// (a,b,c) = (0.57, 0.19, 0.19) yields highly skewed degrees, which is
// exactly the load-balancing stress case discussed for Fig. 8.
func Kronecker(scale int, edgeFactor int, seed uint64) *Graph {
	return KroneckerABC(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// KroneckerABC is Kronecker with an explicit initiator matrix
// [[a, b], [c, 1-a-b-c]].
func KroneckerABC(scale, edgeFactor int, a, b, c float64, seed uint64) *Graph {
	n := 1 << uint(scale)
	m := edgeFactor * n
	r := rng(seed)
	edges := make([]Edge, 0, m)
	ab := a + b
	abc := a + b + c
	for i := 0; i < m; i++ {
		var u, v uint32
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < ab:
				v |= 1 << uint(bit)
			case p < abc:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: kronecker generator produced invalid edges: " + err.Error())
	}
	return g
}

// ErdosRenyi generates G(n, m): m distinct uniform random edges. For
// dense requests (more than half of all pairs — the near-complete
// econ/DIMACS stand-ins) it samples the complement instead, so rejection
// sampling never degenerates.
func ErdosRenyi(n, m int, seed uint64) *Graph {
	r := rng(seed)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	if int64(m) > maxEdges/2 {
		return erdosRenyiDense(n, m, maxEdges, r)
	}
	seen := make(map[uint64]struct{}, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		u := uint32(r.IntN(n))
		v := uint32(r.IntN(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{u, v})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: ER generator produced invalid edges: " + err.Error())
	}
	return g
}

// erdosRenyiDense picks the pairs to *exclude* and emits the rest.
func erdosRenyiDense(n, m int, maxEdges int64, r *rand.Rand) *Graph {
	exclude := make(map[uint64]struct{}, maxEdges-int64(m))
	for int64(len(exclude)) < maxEdges-int64(m) {
		u := uint32(r.IntN(n))
		v := uint32(r.IntN(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		exclude[uint64(u)<<32|uint64(v)] = struct{}{}
	}
	edges := make([]Edge, 0, m)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if _, skip := exclude[uint64(u)<<32|uint64(v)]; !skip {
				edges = append(edges, Edge{uint32(u), uint32(v)})
			}
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: dense ER generator produced invalid edges: " + err.Error())
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// vertex attaches to k existing vertices chosen proportionally to degree,
// producing the heavy-tailed degree distributions typical of the paper's
// biological and social datasets.
func BarabasiAlbert(n, k int, seed uint64) *Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	r := rng(seed)
	// Repeated-endpoint list: choosing a uniform element of `targets`
	// samples a vertex proportionally to its current degree.
	targets := make([]uint32, 0, 2*n*k)
	edges := make([]Edge, 0, n*k)
	// Seed clique on k+1 vertices.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			edges = append(edges, Edge{uint32(u), uint32(v)})
			targets = append(targets, uint32(u), uint32(v))
		}
	}
	chosen := make(map[uint32]struct{}, k)
	for v := k + 1; v < n; v++ {
		clear(chosen)
		for len(chosen) < k {
			chosen[targets[r.IntN(len(targets))]] = struct{}{}
		}
		for u := range chosen {
			edges = append(edges, Edge{u, uint32(v)})
			targets = append(targets, u, uint32(v))
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: BA generator produced invalid edges: " + err.Error())
	}
	return g
}

// HolmeKim generates a power-law graph with tunable clustering: the
// Holme–Kim model is Barabási–Albert preferential attachment where each
// subsequent edge performs triad formation with probability pt (attach
// to a random neighbor of the previously chosen target, closing a
// triangle). Real biological and social networks combine heavy-tailed
// degrees with high clustering; this is their stand-in generator.
func HolmeKim(n, k int, pt float64, seed uint64) *Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	r := rng(seed)
	targets := make([]uint32, 0, 2*n*k)
	edges := make([]Edge, 0, n*k)
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			edges = append(edges, Edge{uint32(u), uint32(v)})
			targets = append(targets, uint32(u), uint32(v))
		}
	}
	adj := make([][]uint32, n) // incremental adjacency for triad formation
	for u := 0; u <= k; u++ {
		for v := 0; v <= k; v++ {
			if u != v {
				adj[u] = append(adj[u], uint32(v))
			}
		}
	}
	chosen := make(map[uint32]struct{}, k)
	for v := k + 1; v < n; v++ {
		clear(chosen)
		var prev uint32
		first := true
		for len(chosen) < k {
			var u uint32
			if !first && r.Float64() < pt && len(adj[prev]) > 0 {
				// Triad formation: a neighbor of the previous target.
				u = adj[prev][r.IntN(len(adj[prev]))]
			} else {
				u = targets[r.IntN(len(targets))]
			}
			if u == uint32(v) {
				continue
			}
			if _, dup := chosen[u]; dup {
				// Fall back to preferential attachment to guarantee progress.
				u = targets[r.IntN(len(targets))]
				if u == uint32(v) {
					continue
				}
				if _, dup2 := chosen[u]; dup2 {
					continue
				}
			}
			chosen[u] = struct{}{}
			prev = u
			first = false
		}
		for u := range chosen {
			edges = append(edges, Edge{u, uint32(v)})
			targets = append(targets, u, uint32(v))
			adj[u] = append(adj[u], uint32(v))
			adj[v] = append(adj[v], u)
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: Holme-Kim generator produced invalid edges: " + err.Error())
	}
	return g
}

// CommunityGraph generates a modular graph in the style of gene
// functional-association networks: vertices are partitioned into
// communities with sizes drawn uniformly from [minC, maxC], each
// community is filled as dense G(n_i, p_in) with p_in chosen so within
// edges account for ~90% of targetM, and the remaining ~10% are uniform
// cross edges. The result combines skewed degrees with the very high
// clustering of the paper's bio/chem datasets — per-edge neighborhood
// intersections are large, which is the regime ProbGraph's BF estimators
// are designed for.
func CommunityGraph(n, targetM, minC, maxC int, seed uint64) *Graph {
	if minC < 2 {
		minC = 2
	}
	if maxC < minC {
		maxC = minC
	}
	r := rng(seed)
	// Partition vertices into communities.
	var bounds []int // community start offsets
	for at := 0; at < n; {
		bounds = append(bounds, at)
		at += minC + r.IntN(maxC-minC+1)
	}
	bounds = append(bounds, n)
	// Within-pair capacity determines p_in for the within-edge budget.
	var withinPairs float64
	for i := 0; i+1 < len(bounds); i++ {
		size := bounds[i+1] - bounds[i]
		withinPairs += float64(size*(size-1)) / 2
	}
	withinBudget := 0.9 * float64(targetM)
	pin := 1.0
	if withinPairs > 0 {
		pin = withinBudget / withinPairs
	}
	if pin > 0.9 {
		pin = 0.9
	}
	var edges []Edge
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				if r.Float64() < pin {
					edges = append(edges, Edge{uint32(u), uint32(v)})
				}
			}
		}
	}
	// Cross edges: the remaining budget, uniform at random.
	cross := targetM - len(edges)
	for c := 0; c < cross; c++ {
		u := uint32(r.IntN(n))
		v := uint32(r.IntN(n))
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: community generator produced invalid edges: " + err.Error())
	}
	return g
}

// PlantedPartition generates a graph with `communities` equally sized
// groups: within-group edges appear with probability pin, cross-group
// edges with pout. Used by the clustering experiments, which need real
// community structure for Jarvis–Patrick to find.
func PlantedPartition(n, communities int, pin, pout float64, seed uint64) *Graph {
	if communities < 1 {
		communities = 1
	}
	r := rng(seed)
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if u%communities == v%communities {
				p = pin
			}
			if r.Float64() < p {
				edges = append(edges, Edge{uint32(u), uint32(v)})
			}
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic("graph: planted partition generator produced invalid edges: " + err.Error())
	}
	return g
}

// mustFromEdges builds a graph from programmatically generated edges.
func mustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("graph: deterministic generator: %v", err))
	}
	return g
}

// Complete returns K_n; TC(K_n) = C(n,3) and C4(K_n) = C(n,4), the
// closed forms the counting tests verify against.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{uint32(u), uint32(v)})
		}
	}
	return mustFromEdges(n, edges)
}

// Cycle returns the n-cycle (triangle-free for n > 3).
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for u := 0; u < n; u++ {
		edges = append(edges, Edge{uint32(u), uint32((u + 1) % n)})
	}
	return mustFromEdges(n, edges)
}

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for u := 0; u+1 < n; u++ {
		edges = append(edges, Edge{uint32(u), uint32(u + 1)})
	}
	return mustFromEdges(n, edges)
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{0, uint32(v)})
	}
	return mustFromEdges(n, edges)
}

// Grid returns the rows×cols grid graph (triangle-free).
func Grid(rows, cols int) *Graph {
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return mustFromEdges(rows*cols, edges)
}
