package graph

import "testing"

func TestKCoreClosedForms(t *testing.T) {
	// K_n: every vertex has core number n-1.
	core, degen := Complete(6).KCore()
	for v, c := range core {
		if c != 5 {
			t.Fatalf("K6 core[%d] = %d, want 5", v, c)
		}
	}
	if degen != 5 {
		t.Fatalf("K6 degeneracy = %d", degen)
	}
	// A tree has degeneracy 1.
	if _, d := Star(10).KCore(); d != 1 {
		t.Fatalf("star degeneracy = %d", d)
	}
	if _, d := Path(10).KCore(); d != 1 {
		t.Fatalf("path degeneracy = %d", d)
	}
	// A cycle has degeneracy 2.
	if _, d := Cycle(10).KCore(); d != 2 {
		t.Fatalf("cycle degeneracy = %d", d)
	}
	// Empty graph.
	g, _ := FromEdges(0, nil)
	if _, d := g.KCore(); d != 0 {
		t.Fatal("empty degeneracy")
	}
}

func TestKCoreKitePlusTail(t *testing.T) {
	// K4 with a pendant path: clique vertices have core 3, path core 1.
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}}
	g, err := FromEdges(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	core, degen := g.KCore()
	want := []int32{3, 3, 3, 3, 1, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
	if degen != 3 {
		t.Fatalf("degeneracy = %d", degen)
	}
}

func TestDegeneracyRankBoundsOutDegree(t *testing.T) {
	// The defining property: orienting by the degeneracy rank bounds
	// every out-degree by the degeneracy.
	for _, g := range []*Graph{
		Kronecker(9, 12, 3),
		BarabasiAlbert(400, 5, 7),
		CommunityGraph(300, 8000, 20, 60, 9),
	} {
		_, degen := g.KCore()
		rank := g.DegeneracyRank()
		o := g.OrientBy(rank, 0)
		if got := o.MaxOutDegree(); int32(got) > degen {
			t.Fatalf("max out-degree %d exceeds degeneracy %d", got, degen)
		}
		// Still a valid orientation: every edge exactly once.
		total := 0
		for v := 0; v < o.NumVertices(); v++ {
			total += o.OutDegree(uint32(v))
		}
		if total != g.NumEdges() {
			t.Fatalf("oriented edges %d != m %d", total, g.NumEdges())
		}
	}
}

func TestTriangleCountInvariantUnderOrdering(t *testing.T) {
	// TC is the same under the degree and degeneracy orientations (it
	// counts each triangle exactly once either way).
	g := Kronecker(9, 14, 5)
	byDegree := g.Orient(0)
	byCore := g.OrientBy(g.DegeneracyRank(), 0)
	tcD := countOriented(byDegree)
	tcC := countOriented(byCore)
	if tcD != tcC {
		t.Fatalf("TC differs across orderings: %d vs %d", tcD, tcC)
	}
}

func countOriented(o *Oriented) int {
	total := 0
	for v := 0; v < o.NumVertices(); v++ {
		nv := o.NPlus(uint32(v))
		for _, u := range nv {
			total += IntersectCount(nv, o.NPlus(u))
		}
	}
	return total
}

func TestDegeneracyVsDegreeOrderingWidth(t *testing.T) {
	// On skewed graphs the degeneracy orientation has a much smaller
	// maximum out-degree than the raw maximum degree.
	g := Kronecker(11, 16, 1)
	_, degen := g.KCore()
	if int(degen)*4 > g.MaxDegree() {
		t.Skipf("graph not skewed enough: degeneracy %d vs maxdeg %d", degen, g.MaxDegree())
	}
	o := g.OrientBy(g.DegeneracyRank(), 0)
	if o.MaxOutDegree() >= g.MaxDegree() {
		t.Fatalf("degeneracy orientation did not shrink widths: %d vs %d",
			o.MaxOutDegree(), g.MaxDegree())
	}
}
