package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// failWriter fails after `allow` bytes — the failure-injection harness
// for the IO paths.
type failWriter struct {
	allow   int
	written int
}

var errInjected = errors.New("injected write failure")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.allow {
		can := w.allow - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, errInjected
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteEdgeListFailurePaths(t *testing.T) {
	g := Complete(12)
	// Fail at several byte offsets: header, mid-body, near the end.
	for _, allow := range []int{0, 3, 50, 200} {
		err := WriteEdgeList(&failWriter{allow: allow}, g)
		if err == nil {
			t.Fatalf("allow=%d: expected write error", allow)
		}
	}
	// A large enough budget succeeds.
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBinaryFailurePaths(t *testing.T) {
	g := Complete(12)
	for _, allow := range []int{0, 8, 24, 100} {
		if err := WriteBinary(&failWriter{allow: allow}, g); err == nil {
			t.Fatalf("allow=%d: expected write error", allow)
		}
	}
}

func TestReadBinaryCorruptions(t *testing.T) {
	g := Kronecker(6, 4, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every structural boundary.
	for _, cut := range []int{0, 7, 23, 24, 60, len(good) - 1} {
		if cut >= len(good) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("cut=%d: expected error", cut)
		}
	}
	// Corrupt the adjacency to break CSR invariants (validated on read).
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted adjacency must fail validation")
	}
}

func TestReadEdgeListHugeLine(t *testing.T) {
	// Long comment lines must not break the scanner buffer sizing.
	long := "# " + strings.Repeat("x", 1<<16) + "\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("edge after long comment lost")
	}
}

func TestValidateDetectsBreakage(t *testing.T) {
	g := Complete(4)
	// Break symmetry by hand.
	g.Neigh[0] = 3 // duplicate entry destroys strict sortedness
	if err := g.Validate(); err == nil {
		t.Fatal("validation must detect broken sortedness")
	}
	// Out-of-range neighbor.
	g2 := Complete(4)
	g2.Neigh[0] = 99
	if err := g2.Validate(); err == nil {
		t.Fatal("validation must detect out-of-range neighbor")
	}
	// Offset corruption.
	g3 := Complete(4)
	g3.Offsets[1] = 100
	if err := g3.Validate(); err == nil {
		t.Fatal("validation must detect bad offsets")
	}
}
