package graph

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 || g.Degree(3) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Fatal("HasEdge wrong")
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1 (dups and loops removed)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Fatal("isolated vertex should have degree 0")
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative n must fail")
	}
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph invariants")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := Complete(5)
	count := 0
	g.Edges(func(u, v uint32) {
		if u >= v {
			t.Fatalf("edge %d-%d not normalized", u, v)
		}
		count++
	})
	if count != 10 {
		t.Fatalf("K5 has %d edges, want 10", count)
	}
	if len(g.EdgeList()) != 10 {
		t.Fatal("EdgeList length")
	}
}

func TestDeterministicGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"K6", Complete(6), 6, 15},
		{"C5", Cycle(5), 5, 5},
		{"P7", Path(7), 7, 6},
		{"S9", Star(9), 9, 8},
		{"G3x4", Grid(3, 4), 12, 17},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.n || c.g.NumEdges() != c.m {
			t.Errorf("%s: n=%d m=%d, want %d %d", c.name, c.g.NumVertices(), c.g.NumEdges(), c.n, c.m)
		}
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	if Star(9).MaxDegree() != 8 {
		t.Fatal("star center degree")
	}
}

func TestRandomGeneratorsValidAndDeterministic(t *testing.T) {
	k1 := Kronecker(8, 8, 7)
	k2 := Kronecker(8, 8, 7)
	k3 := Kronecker(8, 8, 8)
	if err := k1.Validate(); err != nil {
		t.Fatal(err)
	}
	if k1.NumEdges() != k2.NumEdges() {
		t.Fatal("same seed must reproduce the graph")
	}
	if k1.NumEdges() == k3.NumEdges() && bytes.Equal(encodeNeigh(k1), encodeNeigh(k3)) {
		t.Fatal("different seeds should differ")
	}

	er := ErdosRenyi(100, 300, 1)
	if er.NumEdges() != 300 {
		t.Fatalf("ER m=%d, want 300", er.NumEdges())
	}
	if err := er.Validate(); err != nil {
		t.Fatal(err)
	}
	// Requesting more edges than possible clamps.
	tiny := ErdosRenyi(4, 100, 1)
	if tiny.NumEdges() != 6 {
		t.Fatalf("clamped ER m=%d, want 6", tiny.NumEdges())
	}

	ba := BarabasiAlbert(200, 3, 5)
	if err := ba.Validate(); err != nil {
		t.Fatal(err)
	}
	if ba.NumEdges() < 3*(200-4) {
		t.Fatalf("BA too few edges: %d", ba.NumEdges())
	}

	pp := PlantedPartition(60, 3, 0.5, 0.02, 11)
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func encodeNeigh(g *Graph) []byte {
	var buf bytes.Buffer
	for _, v := range g.Neigh {
		buf.WriteByte(byte(v))
	}
	return buf.Bytes()
}

func TestSizeBits(t *testing.T) {
	g := Complete(4) // n=4, 2m=12 entries, offsets 5
	if got := g.SizeBits(); got != 64*(12+5) {
		t.Fatalf("SizeBits = %d", got)
	}
}

func TestDegreeRankRespectsDegrees(t *testing.T) {
	g := Star(6) // center 0 has degree 5, leaves degree 1
	rank := g.DegreeRank()
	for v := 1; v < 6; v++ {
		if rank[v] >= rank[0] {
			t.Fatalf("leaf %d ranked above center", v)
		}
	}
}

func TestOrientInvariants(t *testing.T) {
	g := Kronecker(7, 8, 3)
	o := g.Orient(2)
	// Every edge appears exactly once across all N+ lists.
	total := 0
	for v := 0; v < o.NumVertices(); v++ {
		np := o.NPlus(uint32(v))
		total += len(np)
		for i, u := range np {
			if o.Rank[v] >= o.Rank[u] {
				t.Fatalf("N+ of %d contains lower-ranked %d", v, u)
			}
			if i > 0 && np[i-1] >= u {
				t.Fatalf("N+ of %d not sorted", v)
			}
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("sum |N+| = %d, want m = %d", total, g.NumEdges())
	}
	if o.MaxOutDegree() > g.MaxDegree() {
		t.Fatal("out degree cannot exceed degree")
	}
}

func TestIntersections(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9, 11}
	b := []uint32{2, 3, 4, 7, 10, 11, 12}
	if got := IntersectCount(a, b); got != 3 {
		t.Fatalf("IntersectCount = %d, want 3", got)
	}
	out := Intersect(a, b, nil)
	want := []uint32{3, 7, 11}
	if len(out) != 3 || out[0] != want[0] || out[1] != want[1] || out[2] != want[2] {
		t.Fatalf("Intersect = %v", out)
	}
	if got := UnionCount(a, b); got != 10 {
		t.Fatalf("UnionCount = %d, want 10", got)
	}
	if IntersectCount(nil, b) != 0 || IntersectCount(a, nil) != 0 {
		t.Fatal("empty intersections")
	}
}

func TestGallopMatchesMergeProperty(t *testing.T) {
	f := func(araw, braw []uint32, skew uint8) bool {
		a := sortedDedup(araw)
		b := sortedDedup(braw)
		// Inflate b to force the galloping path sometimes.
		if skew%2 == 0 {
			for i := uint32(0); i < 1000; i++ {
				b = append(b, 1<<20+i)
			}
		}
		m := MergeCount(a, b)
		g1 := GallopCount(a, b)
		ad := IntersectCount(a, b)
		return m == g1 && m == ad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortedDedup(xs []uint32) []uint32 {
	seen := map[uint32]struct{}{}
	var out []uint32
	for _, x := range xs {
		x %= 4096
		if _, ok := seen[x]; !ok {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Property: sum of degrees equals 2m for random edge lists.
func TestHandshakeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(50) + 2
		edges := make([]Edge, rng.IntN(200))
		for i := range edges {
			edges[i] = Edge{uint32(rng.IntN(n)), uint32(rng.IntN(n))}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(uint32(v))
		}
		if sum != 2*g.NumEdges() {
			t.Fatalf("handshake: Σd=%d, 2m=%d", sum, 2*g.NumEdges())
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Kronecker(6, 6, 9)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if !bytes.Equal(encodeNeigh(g), encodeNeigh(g2)) {
		t.Fatal("adjacency changed in round trip")
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	in := "% comment\n# 10 2\n0 1\n\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// Malformed inputs.
	for _, bad := range []string{"0\n", "a b\n", "1 x\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := BarabasiAlbert(150, 4, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeNeigh(g), encodeNeigh(g2)) || g2.NumVertices() != g.NumVertices() {
		t.Fatal("binary round trip changed graph")
	}
	// Corrupt magic.
	raw := buf.Bytes()
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, g); err != nil {
		t.Fatal(err)
	}
	b := buf2.Bytes()
	b[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted magic should fail")
	}
	// Truncated stream.
	if _, err := ReadBinary(bytes.NewReader(raw[:10])); err == nil {
		t.Fatal("truncated stream should fail")
	}
}

func BenchmarkIntersectMergeSimilar(b *testing.B) {
	a := seq(0, 2000, 2)
	c := seq(1, 2000, 2)
	for i := 0; i < b.N; i++ {
		benchSink = IntersectCount(a, c)
	}
}

func BenchmarkIntersectGallopSkewed(b *testing.B) {
	a := seq(0, 64, 1)
	c := seq(0, 100000, 1)
	for i := 0; i < b.N; i++ {
		benchSink = IntersectCount(a, c)
	}
}

func seq(start, n, step int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(start + i*step)
	}
	return out
}

var benchSink int
