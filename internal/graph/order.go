package graph

import (
	"sort"

	"probgraph/internal/par"
)

// DegreeRank computes the vertex order R of Listings 1–2: R(v) < R(u)
// implies d_v <= d_u, with vertex ID breaking ties so the order is total
// and deterministic. rank[v] is the position of v in the order.
func (g *Graph) DegreeRank() []int32 {
	n := g.NumVertices()
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for pos, v := range order {
		rank[v] = int32(pos)
	}
	return rank
}

// Oriented is the degree-ordered DAG orientation of a graph: N+_v holds
// the neighbors u of v with R(v) < R(u), sorted by vertex ID. Every
// undirected edge appears exactly once, and every triangle has exactly
// one "apex" vertex pointing at its two higher-ranked corners — the
// standard node-iterator trick (Listing 1, line 3).
type Oriented struct {
	Offsets []int64
	Neigh   []uint32
	Rank    []int32
}

// Orient builds the N+ adjacency under the degree ranking, in parallel.
func (g *Graph) Orient(workers int) *Oriented {
	return g.OrientBy(g.DegreeRank(), workers)
}

// OrientBy builds the N+ adjacency under an arbitrary total-order rank.
// Pass DegeneracyRank for the degeneracy orientation, which bounds every
// |N+_v| by the graph's degeneracy (the ordering of the clique-counting
// literature the paper builds on).
func (g *Graph) OrientBy(rank []int32, workers int) *Oriented {
	n := g.NumVertices()
	counts := make([]int64, n+1)
	par.For(n, workers, func(v int) {
		var c int64
		for _, u := range g.Neighbors(uint32(v)) {
			if rank[v] < rank[u] {
				c++
			}
		}
		counts[v] = c
	})
	total := par.ExclusiveScan(counts)
	neigh := make([]uint32, total)
	par.For(n, workers, func(v int) {
		w := counts[v]
		for _, u := range g.Neighbors(uint32(v)) {
			if rank[v] < rank[u] {
				neigh[w] = u
				w++
			}
		}
	})
	return &Oriented{Offsets: counts, Neigh: neigh, Rank: rank}
}

// NumVertices returns n.
func (o *Oriented) NumVertices() int { return len(o.Offsets) - 1 }

// NPlus returns N+_v, sorted by vertex ID, aliasing internal storage.
func (o *Oriented) NPlus(v uint32) []uint32 {
	return o.Neigh[o.Offsets[v]:o.Offsets[v+1]]
}

// OutDegree returns |N+_v|.
func (o *Oriented) OutDegree(v uint32) int {
	return int(o.Offsets[v+1] - o.Offsets[v])
}

// MaxOutDegree returns the largest |N+_v|; for degree orderings this is
// O(sqrt(m)) on real graphs, which bounds the counting work.
func (o *Oriented) MaxOutDegree() int {
	d := 0
	for v := 0; v < o.NumVertices(); v++ {
		if dv := o.OutDegree(uint32(v)); dv > d {
			d = dv
		}
	}
	return d
}
