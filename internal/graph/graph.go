// Package graph implements the exact graph substrate of ProbGraph: the
// Compressed Sparse Row representation (§II-A), degree orderings and the
// oriented N+ adjacency used by the counting algorithms (Listings 1–2),
// tuned exact set intersections (merge and galloping, Fig. 1 panel 2),
// synthetic graph generators (including the Kronecker model used in the
// paper's synthetic evaluation), and graph IO.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"probgraph/internal/par"
)

// Graph is an undirected simple graph in CSR form. Neighborhoods are
// stored as contiguous, strictly increasing runs of vertex IDs; the
// Offsets array has n+1 entries so that the neighborhood of v is
// Neigh[Offsets[v]:Offsets[v+1]] (§II-A).
type Graph struct {
	Offsets []int64  // length n+1
	Neigh   []uint32 // length 2m, sorted within each neighborhood

	// derived is an opaque slot for lazily-attached per-graph derived
	// state (the root package's default Session). Keeping it on the
	// graph gives the cache exactly the graph's lifetime: collect the
	// graph and its derived state goes with it, with nothing pinned in
	// package-level maps.
	derived atomic.Value
}

// Derived returns the graph's opaque derived-state slot, initializing
// it with build on first use. Concurrent first callers may race to
// build; exactly one value wins and is returned to everyone (build must
// therefore be cheap — expensive construction belongs behind the
// returned value's own lazy machinery).
func (g *Graph) Derived(build func() any) any {
	if v := g.derived.Load(); v != nil {
		return v
	}
	v := build()
	if !g.derived.CompareAndSwap(nil, v) {
		return g.derived.Load()
	}
	return v
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Neigh) / 2 }

// Degree returns d_v.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns N_v as a sorted slice aliasing the CSR storage;
// callers must not modify it.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.Neigh[g.Offsets[v]:g.Offsets[v+1]]
}

// MaxDegree returns d, the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.NumVertices(); v++ {
		if dv := g.Degree(uint32(v)); dv > d {
			d = dv
		}
	}
	return d
}

// AvgDegree returns the average degree 2m/n (the paper's d̄ = m/n counts
// each undirected edge once per endpoint pair; we report 2m/n, the mean
// of the degree sequence).
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.Neigh)) / float64(n)
}

// HasEdge reports whether {u, v} is an edge, via binary search on the
// smaller neighborhood.
func (g *Graph) HasEdge(u, v uint32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nu := g.Neighbors(u)
	i := sort.Search(len(nu), func(i int) bool { return nu[i] >= v })
	return i < len(nu) && nu[i] == v
}

// Edges calls fn(u, v) once for every undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v uint32)) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			if uint32(u) < v {
				fn(uint32(u), v)
			}
		}
	}
}

// EdgeList materializes the undirected edge list with U < V, in CSR order.
func (g *Graph) EdgeList() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	g.Edges(func(u, v uint32) { edges = append(edges, Edge{u, v}) })
	return edges
}

// SizeBits returns the CSR footprint in bits: 64·(2m + n + 1), the
// baseline against which the storage budget s is defined (§V-A). The
// implementation stores neighbor IDs in 32 bits, but the budget follows
// the paper's word-based accounting.
func (g *Graph) SizeBits() int64 {
	return 64 * int64(len(g.Neigh)+len(g.Offsets))
}

// Validate checks the CSR invariants: monotone offsets, sorted
// duplicate-free neighborhoods, no self loops, and symmetry.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph: missing offsets array")
	}
	if g.Offsets[0] != 0 || g.Offsets[n] != int64(len(g.Neigh)) {
		return fmt.Errorf("graph: offsets do not span the adjacency array")
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		if g.Offsets[v] < 0 || g.Offsets[v+1] > int64(len(g.Neigh)) {
			return fmt.Errorf("graph: offsets of vertex %d outside the adjacency array", v)
		}
		nv := g.Neighbors(uint32(v))
		for i, w := range nv {
			if int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == uint32(v) {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if i > 0 && nv[i-1] >= w {
				return fmt.Errorf("graph: neighborhood of %d not strictly sorted", v)
			}
			if !g.HasEdge(w, uint32(v)) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", v, w)
			}
		}
	}
	return nil
}

// Edge is an undirected edge; builders normalize so that U < V.
type Edge struct{ U, V uint32 }

// FromEdges builds a CSR graph on n vertices from an arbitrary edge list.
// Self loops are dropped, duplicates (in either orientation) are merged,
// and neighborhoods are sorted. Vertices outside [0, n) are rejected.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge %d-%d out of range [0,%d)", e.U, e.V, n)
		}
	}
	// Count directed degree (both orientations), skipping self loops.
	counts := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		counts[e.U]++
		counts[e.V]++
	}
	total := par.ExclusiveScan(counts[:n+1])
	neigh := make([]uint32, total)
	fill := make([]int64, n)
	copy(fill, counts[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		neigh[fill[e.U]] = e.V
		fill[e.U]++
		neigh[fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &Graph{Offsets: counts, Neigh: neigh}
	g.sortAndDedup()
	return g, nil
}

// sortAndDedup sorts each neighborhood and removes duplicate edges,
// compacting the adjacency array.
func (g *Graph) sortAndDedup() {
	n := g.NumVertices()
	// Sort neighborhoods in parallel; dedup in place per vertex.
	newLen := make([]int64, n+1)
	par.For(n, 0, func(v int) {
		nv := g.Neighbors(uint32(v))
		sort.Slice(nv, func(i, j int) bool { return nv[i] < nv[j] })
		w := 0
		for i, x := range nv {
			if i == 0 || x != nv[i-1] {
				nv[w] = x
				w++
			}
		}
		newLen[v] = int64(w)
	})
	total := par.ExclusiveScan(newLen)
	if total == int64(len(g.Neigh)) {
		return // nothing removed
	}
	compact := make([]uint32, total)
	for v := 0; v < n; v++ {
		length := newLen[v+1] - newLen[v]
		copy(compact[newLen[v]:newLen[v]+length], g.Neigh[g.Offsets[v]:g.Offsets[v]+length])
	}
	g.Offsets = newLen
	g.Neigh = compact
}
