package graph

import "probgraph/internal/kernels"

// The exact CSR intersection kernels live in internal/kernels (the
// set-algebra engine, docs/KERNELS.md); these wrappers keep graph the
// API surface the baselines and the ablation study call. The adaptive
// dispatch gallops when len(small)*kernels.GallopFactor < len(big)
// (Fig. 1, panel 2: merge for similar sizes, galloping for skewed
// pairs), and the count is exact either way.

// IntersectCount returns |a ∩ b| for two strictly sorted slices, choosing
// adaptively between merge and galloping. This is the tuned exact kernel
// the CSR baselines use everywhere.
func IntersectCount(a, b []uint32) int {
	return kernels.IntersectCount(a, b)
}

// MergeCount is the two-pointer linear merge: O(|a|+|b|). Exposed for
// the ablation study of the adaptive strategy.
func MergeCount(a, b []uint32) int {
	return kernels.MergeCount(a, b)
}

// GallopCount looks each element of the smaller set up in the larger one
// by exponential-then-binary search: O(|a|·log|b|). The smaller set must
// be passed first. Exposed for the ablation study.
func GallopCount(a, b []uint32) int {
	return kernels.GallopCount(a, b)
}

// Intersect appends a ∩ b (sorted) to out and returns it; used where the
// elements themselves are needed (the C3 list in 4-clique counting).
// In-place use is supported: out may be a[:0] or b[:0].
func Intersect(a, b []uint32, out []uint32) []uint32 {
	return kernels.Intersect(a, b, out)
}

// UnionCount returns |a ∪ b| for sorted slices via the identity
// |a|+|b|-|a∩b|.
func UnionCount(a, b []uint32) int {
	return kernels.UnionCount(a, b)
}
