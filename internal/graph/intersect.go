package graph

import "sort"

// gallopThreshold selects galloping when the size ratio between the two
// sorted sets exceeds this factor; below it, the linear merge wins
// (Fig. 1, panel 2: merge for similar sizes, galloping for skewed pairs).
const gallopThreshold = 32

// IntersectCount returns |a ∩ b| for two strictly sorted slices, choosing
// adaptively between merge and galloping. This is the tuned exact kernel
// the CSR baselines use everywhere.
func IntersectCount(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopThreshold*len(a) {
		return GallopCount(a, b)
	}
	return MergeCount(a, b)
}

// MergeCount is the two-pointer linear merge: O(|a|+|b|). Exposed for
// the ablation study of the adaptive strategy.
func MergeCount(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			c++
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return c
}

// GallopCount looks each element of the smaller set up in the larger one
// by exponential-then-binary search: O(|a|·log|b|). The smaller set must
// be passed first. Exposed for the ablation study.
func GallopCount(a, b []uint32) int {
	c := 0
	lo := 0
	for _, x := range a {
		// Exponential probe from the previous position.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi
			hi += step
			step *= 2
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo, hi].
		sub := b[lo:hi]
		k := sort.Search(len(sub), func(i int) bool { return sub[i] >= x })
		lo += k
		if lo < len(b) && b[lo] == x {
			c++
			lo++
		}
		if lo >= len(b) {
			break
		}
	}
	return c
}

// Intersect appends a ∩ b (sorted) to out and returns it; used where the
// elements themselves are needed (the C3 list in 4-clique counting).
func Intersect(a, b []uint32, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			out = append(out, ai)
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return out
}

// UnionCount returns |a ∪ b| for sorted slices via the identity
// |a|+|b|-|a∩b|.
func UnionCount(a, b []uint32) int {
	return len(a) + len(b) - IntersectCount(a, b)
}
