package graph

import (
	"testing"
)

func TestHolmeKimValidAndClustered(t *testing.T) {
	g := HolmeKim(1000, 6, 0.8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 6*(1000-7)/2 {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
	// Triad formation must produce more triangles than plain BA at the
	// same size (the whole point of the model).
	ba := BarabasiAlbert(1000, 6, 3)
	tHK := countTriangles(g)
	tBA := countTriangles(ba)
	if tHK <= tBA {
		t.Fatalf("Holme-Kim triangles %d <= BA %d", tHK, tBA)
	}
	// Determinism.
	g2 := HolmeKim(1000, 6, 0.8, 3)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("same seed must reproduce")
	}
	// Degenerate parameters clamp.
	tiny := HolmeKim(1, 0, 0.5, 1)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

// countTriangles is a local exact reference (avoids importing mining).
func countTriangles(g *Graph) int {
	o := g.Orient(0)
	total := 0
	for v := 0; v < o.NumVertices(); v++ {
		nv := o.NPlus(uint32(v))
		for _, u := range nv {
			total += IntersectCount(nv, o.NPlus(u))
		}
	}
	return total
}

func TestCommunityGraphStructure(t *testing.T) {
	g := CommunityGraph(1000, 30000, 40, 120, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge budget approximately met (within 20%).
	if m := g.NumEdges(); m < 24000 || m > 36000 {
		t.Fatalf("m = %d, want ~30000", m)
	}
	// High clustering: far more triangles than an ER graph of equal size.
	er := ErdosRenyi(1000, g.NumEdges(), 7)
	if countTriangles(g) < 3*countTriangles(er) {
		t.Fatalf("community graph not clustered: %d vs ER %d",
			countTriangles(g), countTriangles(er))
	}
	// Parameter clamps.
	small := CommunityGraph(50, 100, 0, -1, 1)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDensePath(t *testing.T) {
	// More than half of all pairs: the complement-sampling path.
	n := 60
	maxE := n * (n - 1) / 2
	for _, m := range []int{maxE * 3 / 4, maxE - 1, maxE} {
		g := ErdosRenyi(n, m, 9)
		if g.NumEdges() != m {
			t.Fatalf("dense ER m=%d, want %d", g.NumEdges(), m)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly complete.
	full := ErdosRenyi(10, 45, 1)
	if full.NumEdges() != 45 || full.MaxDegree() != 9 {
		t.Fatal("complete ER")
	}
}

func TestKroneckerABCCustomInitiator(t *testing.T) {
	// A uniform initiator (0.25 each) behaves like sparse ER: low skew.
	uni := KroneckerABC(9, 8, 0.25, 0.25, 0.25, 5)
	skewed := Kronecker(9, 8, 5)
	if err := uni.Validate(); err != nil {
		t.Fatal(err)
	}
	if uni.MaxDegree() >= skewed.MaxDegree() {
		t.Fatalf("uniform initiator should have lower max degree: %d vs %d",
			uni.MaxDegree(), skewed.MaxDegree())
	}
}
