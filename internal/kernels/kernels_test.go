package kernels

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Scalar references: the naive one-word-at-a-time formulations the
// unrolled kernels must match bit for bit.

func refPop(a []uint64) int {
	n := 0
	for _, w := range a {
		n += bits.OnesCount64(w)
	}
	return n
}

func refAnd(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

func refOr(a, b []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] | b[i])
	}
	return n
}

func refAnd3(a, b, c []uint64) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return n
}

func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = rng.Uint64() & rng.Uint64() // ~25% density, like sketch rows
	}
	return w
}

// TestUnrolledTails pins the 4x-unrolled loops against the scalar
// reference at every word-tail length class len%4 in {0,1,2,3},
// including the empty row.
func TestUnrolledTails(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 64, 65} {
		a, b, c := randWords(rng, n), randWords(rng, n), randWords(rng, n)
		if got, want := PopCount(a), refPop(a); got != want {
			t.Errorf("PopCount n=%d: got %d want %d", n, got, want)
		}
		if got, want := AndCount(a, b), refAnd(a, b); got != want {
			t.Errorf("AndCount n=%d: got %d want %d", n, got, want)
		}
		if got, want := OrCount(a, b), refOr(a, b); got != want {
			t.Errorf("OrCount n=%d: got %d want %d", n, got, want)
		}
		if got, want := AndCount3(a, b, c), refAnd3(a, b, c); got != want {
			t.Errorf("AndCount3 n=%d: got %d want %d", n, got, want)
		}
	}
}

// TestAndCountShorterFirst pins the documented contract that only the
// first len(a) words participate when b is longer.
func TestAndCountShorterFirst(t *testing.T) {
	a := []uint64{^uint64(0), ^uint64(0)}
	b := []uint64{1, 2, ^uint64(0), ^uint64(0)}
	if got := AndCount(a, b); got != 2 {
		t.Fatalf("AndCount short a: got %d want 2", got)
	}
}

func TestAndOr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randWords(rng, 7), randWords(rng, 7)
	dst := make([]uint64, 7)
	And(dst, a, b)
	for i := range a {
		if dst[i] != a[i]&b[i] {
			t.Fatalf("And word %d mismatch", i)
		}
	}
	Or(dst, a, b)
	for i := range a {
		if dst[i] != a[i]|b[i] {
			t.Fatalf("Or word %d mismatch", i)
		}
	}
	// Aliasing: dst == a.
	acopy := append([]uint64(nil), a...)
	And(a, a, b)
	for i := range a {
		if a[i] != acopy[i]&b[i] {
			t.Fatalf("And aliased word %d mismatch", i)
		}
	}
}

// TestAndCountMany pins the batched kernel against per-candidate
// AndCount across every stride specialization (2 and 4 words) and the
// generic path, including empty candidate lists and tile boundaries.
func TestAndCountMany(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, words := range []int{1, 2, 3, 4, 5, 8} {
		const rows = 300 // > 4 tiles of 64
		slab := randWords(rng, rows*words)
		src := randWords(rng, words)
		for _, nc := range []int{0, 1, TileRows - 1, TileRows, TileRows + 1, rows} {
			ids := make([]uint32, nc)
			for i := range ids {
				ids[i] = uint32(rng.Intn(rows))
			}
			out := make([]int32, nc)
			AndCountMany(src, slab, words, ids, out)
			for i, id := range ids {
				want := int32(refAnd(src, slab[int(id)*words:int(id)*words+words]))
				if out[i] != want {
					t.Fatalf("words=%d nc=%d cand %d: got %d want %d", words, nc, i, out[i], want)
				}
			}
		}
	}
}
