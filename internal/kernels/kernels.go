// Package kernels is the set-algebra engine at the bottom of the
// ProbGraph stack: a small, SISA-style instruction set of intersection
// primitives that every representation (Bloom bit vectors, sorted CSR
// adjacency lists, fixed-stride sketch rows) routes through. The
// contract is strict: every function here is pure data-plane code — no
// allocation on any hot path, no dependency beyond math/bits, and
// results that are bit-identical to the naive scalar formulation
// (word-level AND+popcount kernels count exactly the same bits; the
// adaptive exact kernels return exactly the same counts and elements
// regardless of which strategy fires). Callers own all buffers; batched
// variants write into caller-provided out slices so a tile's worth of
// results costs zero allocations. See docs/KERNELS.md for the full ISA
// mapping and the per-representation dispatch table.
package kernels

import "math/bits"

// TileRows is the number of candidate rows processed per cache block by
// the batched kernels. 64 rows of a typical 256-bit sketch row is 16 KiB
// — within L1 on every target — so the source row and one tile stay
// resident while streaming the slab.
const TileRows = 64

// PopCount returns the population count of a (4x-unrolled).
func PopCount(a []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]) +
			bits.OnesCount64(a[i+1]) +
			bits.OnesCount64(a[i+2]) +
			bits.OnesCount64(a[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i])
	}
	return n
}

// AndCount returns popcount(a AND b) without materializing the
// intersection vector: the fused AND+POPCNT pipeline of the paper's BF
// estimator, 4x unrolled. len(b) must be >= len(a); only the first
// len(a) words participate.
func AndCount(a, b []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// OrCount returns popcount(a OR b), 4x unrolled; the union-side kernel
// behind the OR estimator.
func OrCount(a, b []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]|b[i]) +
			bits.OnesCount64(a[i+1]|b[i+1]) +
			bits.OnesCount64(a[i+2]|b[i+2]) +
			bits.OnesCount64(a[i+3]|b[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] | b[i])
	}
	return n
}

// AndCount3 returns popcount(a AND b AND c) in one fused 4x-unrolled
// pass — the three-row kernel behind IntCard3 (4-clique inner loop),
// replacing three pairwise calls with a single sweep.
func AndCount3(a, b, c []uint64) int {
	n := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		n += bits.OnesCount64(a[i]&b[i]&c[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]&c[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]&c[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3]&c[i+3])
	}
	for ; i < len(a); i++ {
		n += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return n
}

// And stores a AND b into dst. dst may alias a or b.
func And(dst, a, b []uint64) {
	for i := range a {
		dst[i] = a[i] & b[i]
	}
}

// Or stores a OR b into dst. dst may alias a or b.
func Or(dst, a, b []uint64) {
	for i := range a {
		dst[i] = a[i] | b[i]
	}
}

// AndCountMany is the batched multi-row intersect: it ANDs one source
// row against many candidate rows drawn from a fixed-stride slab and
// writes popcount(src AND row(id)) to out[i] for each ids[i]. The
// source row is loaded once per batch instead of once per edge — for
// strides up to 8 words (64–512-bit rows: every evaluated sketch
// geometry) it is held in registers while candidate rows stream by;
// wider strides walk candidates in TileRows cache blocks.
//
// slab holds rows at uniform stride words (row v = slab[v*words:]);
// len(src) must be >= words and len(out) >= len(ids). Results are
// bit-identical to calling AndCount(src[:words], row) per candidate.
func AndCountMany(src []uint64, slab []uint64, words int, ids []uint32, out []int32) {
	out = out[:len(ids)]
	switch words {
	case 1:
		s0 := src[0]
		for i, id := range ids {
			out[i] = int32(bits.OnesCount64(s0 & slab[id]))
		}
	case 2:
		s0, s1 := src[0], src[1]
		for i, id := range ids {
			base := int(id) * 2
			r := slab[base : base+2]
			out[i] = int32(bits.OnesCount64(s0&r[0]) + bits.OnesCount64(s1&r[1]))
		}
	case 3:
		s0, s1, s2 := src[0], src[1], src[2]
		for i, id := range ids {
			base := int(id) * 3
			r := slab[base : base+3]
			out[i] = int32(bits.OnesCount64(s0&r[0]) +
				bits.OnesCount64(s1&r[1]) +
				bits.OnesCount64(s2&r[2]))
		}
	case 4:
		s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
		for i, id := range ids {
			base := int(id) * 4
			r := slab[base : base+4]
			out[i] = int32(bits.OnesCount64(s0&r[0]) +
				bits.OnesCount64(s1&r[1]) +
				bits.OnesCount64(s2&r[2]) +
				bits.OnesCount64(s3&r[3]))
		}
	case 5:
		s0, s1, s2, s3, s4 := src[0], src[1], src[2], src[3], src[4]
		for i, id := range ids {
			base := int(id) * 5
			r := slab[base : base+5]
			out[i] = int32(bits.OnesCount64(s0&r[0]) +
				bits.OnesCount64(s1&r[1]) +
				bits.OnesCount64(s2&r[2]) +
				bits.OnesCount64(s3&r[3]) +
				bits.OnesCount64(s4&r[4]))
		}
	case 6:
		s0, s1, s2, s3, s4, s5 := src[0], src[1], src[2], src[3], src[4], src[5]
		for i, id := range ids {
			base := int(id) * 6
			r := slab[base : base+6]
			out[i] = int32(bits.OnesCount64(s0&r[0]) +
				bits.OnesCount64(s1&r[1]) +
				bits.OnesCount64(s2&r[2]) +
				bits.OnesCount64(s3&r[3]) +
				bits.OnesCount64(s4&r[4]) +
				bits.OnesCount64(s5&r[5]))
		}
	case 7:
		s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
		s4, s5, s6 := src[4], src[5], src[6]
		for i, id := range ids {
			base := int(id) * 7
			r := slab[base : base+7]
			out[i] = int32(bits.OnesCount64(s0&r[0]) +
				bits.OnesCount64(s1&r[1]) +
				bits.OnesCount64(s2&r[2]) +
				bits.OnesCount64(s3&r[3]) +
				bits.OnesCount64(s4&r[4]) +
				bits.OnesCount64(s5&r[5]) +
				bits.OnesCount64(s6&r[6]))
		}
	case 8:
		s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
		s4, s5, s6, s7 := src[4], src[5], src[6], src[7]
		for i, id := range ids {
			base := int(id) * 8
			r := slab[base : base+8]
			out[i] = int32(bits.OnesCount64(s0&r[0]) +
				bits.OnesCount64(s1&r[1]) +
				bits.OnesCount64(s2&r[2]) +
				bits.OnesCount64(s3&r[3]) +
				bits.OnesCount64(s4&r[4]) +
				bits.OnesCount64(s5&r[5]) +
				bits.OnesCount64(s6&r[6]) +
				bits.OnesCount64(s7&r[7]))
		}
	default:
		s := src[:words]
		for t := 0; t < len(ids); t += TileRows {
			end := t + TileRows
			if end > len(ids) {
				end = len(ids)
			}
			for i := t; i < end; i++ {
				out[i] = int32(AndCount(s, slab[int(ids[i])*words:]))
			}
		}
	}
}
