package kernels

// GallopFactor selects galloping when len(a)*GallopFactor < len(b) for
// the smaller set a; below that ratio the linear merge's sequential
// access wins. 8 was tuned on Kronecker degree distributions — skewed
// hub/leaf pairs gallop, near-equal-degree pairs merge.
const GallopFactor = 8

// IntersectCount returns |a ∩ b| for two strictly sorted slices,
// choosing adaptively between merge and galloping. The count is exact
// and independent of which strategy fires.
func IntersectCount(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(a)*GallopFactor < len(b) {
		return GallopCount(a, b)
	}
	return MergeCount(a, b)
}

// MergeCount is the two-pointer linear merge: O(|a|+|b|). Exposed for
// the ablation study of the adaptive strategy.
func MergeCount(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			c++
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return c
}

// GallopCount looks each element of the smaller set up in the larger
// one by exponential-then-binary search: O(|a|·log|b|). The smaller set
// must be passed first. Exposed for the ablation study.
func GallopCount(a, b []uint32) int {
	c := 0
	lo := 0
	for _, x := range a {
		// Exponential probe from the previous position.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi
			hi += step
			step *= 2
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search for the first b[k] >= x in [lo, hi).
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(b) && b[lo] == x {
			c++
			lo++
		}
		if lo >= len(b) {
			break
		}
	}
	return c
}

// Intersect appends a ∩ b (sorted) to out and returns it. In-place use
// is supported: out may be a[:0] or b[:0], because the write cursor
// never passes either read cursor; any other overlap of out's spare
// capacity with a or b is the caller's responsibility.
func Intersect(a, b []uint32, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			out = append(out, ai)
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return out
}

// UnionCount returns |a ∪ b| for sorted slices via |a|+|b|-|a∩b|.
func UnionCount(a, b []uint32) int {
	return len(a) + len(b) - IntersectCount(a, b)
}
