package kernels

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func sortedSet(rng *rand.Rand, n, universe int) []uint32 {
	seen := map[uint32]bool{}
	for len(seen) < n {
		seen[uint32(rng.Intn(universe))] = true
	}
	out := make([]uint32, 0, n)
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func refIntersect(a, b []uint32) []uint32 {
	in := map[uint32]bool{}
	for _, x := range a {
		in[x] = true
	}
	var out []uint32
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

// TestExactStrategiesAgree randomizes set sizes across the adaptive
// threshold and pins merge, gallop, and the adaptive dispatch to the
// same exact count.
func TestExactStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		na, nb := rng.Intn(60), rng.Intn(600)
		a := sortedSet(rng, na, 1000)
		b := sortedSet(rng, nb, 1000)
		want := len(refIntersect(a, b))
		if got := MergeCount(a, b); got != want {
			t.Fatalf("MergeCount: got %d want %d", got, want)
		}
		small, big := a, b
		if len(small) > len(big) {
			small, big = big, small
		}
		if got := GallopCount(small, big); got != want {
			t.Fatalf("GallopCount: got %d want %d", got, want)
		}
		if got := IntersectCount(a, b); got != want {
			t.Fatalf("IntersectCount: got %d want %d", got, want)
		}
		if got := IntersectCount(b, a); got != want {
			t.Fatalf("IntersectCount swapped: got %d want %d", got, want)
		}
		if got, wantU := UnionCount(a, b), len(a)+len(b)-want; got != wantU {
			t.Fatalf("UnionCount: got %d want %d", got, wantU)
		}
	}
}

func TestExactEmpty(t *testing.T) {
	b := []uint32{1, 2, 3}
	if IntersectCount(nil, b) != 0 || IntersectCount(b, nil) != 0 || IntersectCount(nil, nil) != 0 {
		t.Fatal("empty intersection must be 0")
	}
	if got := Intersect(nil, b, nil); len(got) != 0 {
		t.Fatalf("Intersect(nil, b): got %v", got)
	}
	if UnionCount(nil, b) != 3 {
		t.Fatal("UnionCount(nil, b) != 3")
	}
}

func TestIntersectElements(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a := sortedSet(rng, rng.Intn(50), 200)
		b := sortedSet(rng, rng.Intn(50), 200)
		want := refIntersect(a, b)
		got := Intersect(a, b, nil)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Intersect: got %v want %v", got, want)
		}
	}
}

// TestIntersectInPlace pins the documented aliasing contract: out may
// be a[:0] or b[:0] and the result is still exact.
func TestIntersectInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		a := sortedSet(rng, 1+rng.Intn(50), 200)
		b := sortedSet(rng, 1+rng.Intn(50), 200)
		want := refIntersect(a, b)

		aCopy := append([]uint32(nil), a...)
		got := Intersect(aCopy, b, aCopy[:0])
		if len(got) != len(want) {
			t.Fatalf("in-place into a: got %v want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("in-place into a: got %v want %v", got, want)
			}
		}

		bCopy := append([]uint32(nil), b...)
		got = Intersect(a, bCopy, bCopy[:0])
		if len(got) != len(want) {
			t.Fatalf("in-place into b: got %v want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("in-place into b: got %v want %v", got, want)
			}
		}
	}
}

func TestArena(t *testing.T) {
	var a Arena
	a.Reserve64(10)
	x := a.Uint64s(4)
	y := a.Uint64s(6)
	if len(x) != 4 || cap(x) != 4 || len(y) != 6 || cap(y) != 6 {
		t.Fatalf("bad lens/caps: %d/%d %d/%d", len(x), cap(x), len(y), cap(y))
	}
	for _, v := range append(append([]uint64{}, x...), y...) {
		if v != 0 {
			t.Fatal("arena memory not zeroed")
		}
	}
	// One reservation, two carves: accounting must show a single slab.
	if a.Bytes() != 80 {
		t.Fatalf("Bytes: got %d want 80", a.Bytes())
	}
	// Writes must not bleed across allocations.
	for i := range x {
		x[i] = ^uint64(0)
	}
	for _, v := range y {
		if v != 0 {
			t.Fatal("write to x bled into y")
		}
	}
	// Other element types.
	u := a.Uint32s(3)
	i3 := a.Int32s(3)
	b8 := a.Uint8s(3)
	if len(u) != 3 || len(i3) != 3 || len(b8) != 3 {
		t.Fatal("bad typed alloc lengths")
	}
	// Unreserved growth still serves requests larger than the slab.
	big := a.Uint64s(arenaMin + 5)
	if len(big) != arenaMin+5 {
		t.Fatal("large alloc failed")
	}
}
