package kernels

// Arena is a bump allocator for epoch-lifetime kernel data: CSR arrays
// and fixed-stride sketch rows carved out of a few large slabs so the
// rows a tile streams over are physically adjacent, and so a whole
// epoch's layout can later be dropped (or mmapped) wholesale.
//
// Invariants:
//   - every returned slice is contiguous, zeroed, and has cap == len
//     (full slice expressions), so an append can never bleed into a
//     neighboring allocation;
//   - two allocations of the same element type made back-to-back are
//     adjacent in memory whenever they fit the current slab — Reserve*
//     first with the epoch's exact totals and adjacency is guaranteed;
//   - arena memory is never recycled: there is no free and no reset.
//     Drop the Arena (and everything carved from it) to release the
//     epoch.
//
// The zero value is ready to use. An Arena is not safe for concurrent
// allocation; builds allocate single-threaded.
type Arena struct {
	u64 []uint64
	u32 []uint32
	i32 []int32
	u8  []uint8

	bytes int64
}

// arenaMin is the minimum slab size in elements for unreserved growth.
const arenaMin = 1 << 14

// Reserve64 ensures the next n uint64 elements come from one slab.
func (a *Arena) Reserve64(n int) {
	if n > len(a.u64) {
		a.u64 = make([]uint64, n)
		a.bytes += int64(n) * 8
	}
}

// Reserve32 ensures the next n uint32 elements come from one slab.
func (a *Arena) Reserve32(n int) {
	if n > len(a.u32) {
		a.u32 = make([]uint32, n)
		a.bytes += int64(n) * 4
	}
}

// ReserveI32 ensures the next n int32 elements come from one slab.
func (a *Arena) ReserveI32(n int) {
	if n > len(a.i32) {
		a.i32 = make([]int32, n)
		a.bytes += int64(n) * 4
	}
}

// Reserve8 ensures the next n uint8 elements come from one slab.
func (a *Arena) Reserve8(n int) {
	if n > len(a.u8) {
		a.u8 = make([]uint8, n)
		a.bytes += int64(n)
	}
}

// Uint64s returns a zeroed contiguous []uint64 of length n.
func (a *Arena) Uint64s(n int) []uint64 {
	if n > len(a.u64) {
		c := n
		if c < arenaMin {
			c = arenaMin
		}
		a.u64 = make([]uint64, c)
		a.bytes += int64(c) * 8
	}
	s := a.u64[:n:n]
	a.u64 = a.u64[n:]
	return s
}

// Uint32s returns a zeroed contiguous []uint32 of length n.
func (a *Arena) Uint32s(n int) []uint32 {
	if n > len(a.u32) {
		c := n
		if c < arenaMin {
			c = arenaMin
		}
		a.u32 = make([]uint32, c)
		a.bytes += int64(c) * 4
	}
	s := a.u32[:n:n]
	a.u32 = a.u32[n:]
	return s
}

// Int32s returns a zeroed contiguous []int32 of length n.
func (a *Arena) Int32s(n int) []int32 {
	if n > len(a.i32) {
		c := n
		if c < arenaMin {
			c = arenaMin
		}
		a.i32 = make([]int32, c)
		a.bytes += int64(c) * 4
	}
	s := a.i32[:n:n]
	a.i32 = a.i32[n:]
	return s
}

// Uint8s returns a zeroed contiguous []uint8 of length n.
func (a *Arena) Uint8s(n int) []uint8 {
	if n > len(a.u8) {
		c := n
		if c < arenaMin {
			c = arenaMin
		}
		a.u8 = make([]uint8, c)
		a.bytes += int64(c)
	}
	s := a.u8[:n:n]
	a.u8 = a.u8[n:]
	return s
}

// Bytes returns the total bytes reserved by this arena so far.
func (a *Arena) Bytes() int64 { return a.bytes }
