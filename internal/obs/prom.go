package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// promBounds are the histogram bucket upper bounds used for exposition,
// in seconds. Internally histograms keep ~1.6%-resolution log-linear
// buckets; exposition coarsens them onto this fixed ladder (the fine
// bucket's lower bound picks its le bin), which keeps the text format
// small and scrape-friendly while the /v1/stats quantiles retain full
// resolution.
var promBounds = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// WritePrometheus renders the registry in the Prometheus text exposition format
// (version 0.0.4). Families and series are emitted in sorted order, so
// output is deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		if len(keys) > 0 {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		}
		for _, key := range keys {
			s := f.series[key]
			switch {
			case s.h != nil:
				writeHist(bw, f.name, s.labels, s.h.Snapshot())
			case s.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, fmtFloat(s.g.Value()))
			case s.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, fmtFloat(s.fn()))
			}
		}
		f.mu.RUnlock()
	}
	return bw.Flush()
}

// writeHist renders one histogram series: cumulative le buckets over the
// promBounds ladder, then _sum (seconds) and _count.
func writeHist(w io.Writer, name, labels string, s *HistSnapshot) {
	bins := make([]int64, len(promBounds)+1) // last bin is +Inf
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		sec := float64(bucketValue(i)) / float64(time.Second)
		bin := sort.SearchFloat64s(promBounds, sec)
		bins[bin] += c
	}
	var cum int64
	for i, bound := range promBounds {
		cum += bins[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", fmtFloat(bound)), cum)
	}
	cum += bins[len(promBounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(float64(s.sum)/float64(time.Second)))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.count)
}

// mergeLabel appends one label pair to an already-rendered label set.
func mergeLabel(labels, k, v string) string {
	if labels == "" {
		return "{" + k + `="` + v + `"}`
	}
	return labels[:len(labels)-1] + "," + k + `="` + v + `"}`
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics in the text exposition
// format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
