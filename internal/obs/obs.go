// Package obs is the repro's dependency-free observability layer: a
// concurrent metrics registry (counters, gauges, histograms) with
// Prometheus text-format exposition, and a lightweight context-propagated
// span tracer with a ring-buffered slow-trace journal.
//
// The package exists because ProbGraph's value proposition is quantified
// trade-offs — speedup vs accuracy bound, sketch bytes vs exact bytes —
// and those numbers are only operable when every layer reports through
// one source of truth. serve, stream, session, dist, and core all
// register here; pgserve exposes the result at /metrics and /v1/trace.
//
// Design constraints, in order:
//
//   - Zero dependencies (stdlib only), so every internal package may
//     import obs without cycles or go.mod growth.
//   - Hot-path cost bounded by one atomic add (counters, histogram
//     records) — instrumentation rides the query path, so it is gated by
//     the same pgci perf budget as the kernels themselves.
//   - Tracing is free when off: StartSpan on a context without a tracer
//     is a context lookup and a nil return; all Span methods are
//     nil-receiver safe.
package obs

import "strings"

// Label is one static metric dimension, fixed at registration time.
// Series of one family are keyed by their rendered label sets.
type Label struct {
	Key, Value string
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// renderLabels renders a label set in Prometheus text form
// (`{k="v",k2="v2"}`), empty for no labels. Labels are rendered in the
// order given; callers that want one series per logical identity must
// pass them in a fixed order (all call sites here do).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
