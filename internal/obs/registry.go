package obs

import (
	"fmt"
	"sort"
	"sync"
)

// metric kinds, in Prometheus TYPE vocabulary.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one (name, labels) time series: exactly one of the value
// fields is set. fn-backed series are read at scrape time, which is how
// the registry exposes state that already lives in engine atomics
// without double counting.
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	h      *Hist
	fn     func() float64
}

// family is every series of one metric name, sharing help and type.
type family struct {
	name, help, typ string

	mu     sync.RWMutex
	series map[string]*series
	order  []string // registration-stable keys, sorted at exposition
}

// Registry is a concurrent, name-keyed metrics registry. Metrics are
// registered (or looked up) by name and static label set; registering
// the same (name, labels) twice returns the same metric, so packages may
// idempotently declare what they export. Registering one name under two
// different types panics — that is a programming error, not input.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry behind Default.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the process-wide registry — what cmd binaries expose
// at /metrics and what package-scoped instrumentation (dist, session)
// records into. Libraries with per-instance state (serve.Engine,
// stream.DynamicGraph) take an explicit registry instead.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// fam returns (creating if needed) the family of one name, enforcing
// type and help consistency.
func (r *Registry) fam(name, help, typ string) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// get returns the series of one label set, creating it with mk on first
// use. Returns the resident series either way.
func (f *family) get(labels []Label, mk func() *series) *series {
	key := renderLabels(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = mk()
		s.labels = key
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// replace installs (or overwrites) a fn-backed series. Func metrics read
// live state owned elsewhere, so re-registration (e.g. a test building a
// second engine against one registry) is last-writer-wins rather than
// an error.
func (f *family) replace(labels []Label, fn func() float64) {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.series[key]; s != nil {
		s.fn = fn
		return
	}
	f.series[key] = &series{labels: key, fn: fn}
	f.order = append(f.order, key)
}

// Counter returns the counter of (name, labels), registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.fam(name, help, typeCounter).get(labels, func() *series { return &series{c: &Counter{}} })
	if s.c == nil {
		panic(fmt.Sprintf("obs: metric %q%s is not a plain counter", name, renderLabels(labels)))
	}
	return s.c
}

// Gauge returns the gauge of (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.fam(name, help, typeGauge).get(labels, func() *series { return &series{g: &Gauge{}} })
	if s.g == nil {
		panic(fmt.Sprintf("obs: metric %q%s is not a plain gauge", name, renderLabels(labels)))
	}
	return s.g
}

// Histogram returns the histogram of (name, labels), registering it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Hist {
	s := r.fam(name, help, typeHistogram).get(labels, func() *series { return &series{h: NewHist()} })
	if s.h == nil {
		panic(fmt.Sprintf("obs: metric %q%s is not a histogram", name, renderLabels(labels)))
	}
	return s.h
}

// RegisterHistogram exposes an existing histogram (e.g. an engine-owned
// per-op latency hist) under (name, labels). Re-registration replaces
// the exposed histogram.
func (r *Registry) RegisterHistogram(name, help string, h *Hist, labels ...Label) {
	f := r.fam(name, help, typeHistogram)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.series[key]; s != nil {
		s.h = h
		return
	}
	f.series[key] = &series{labels: key, h: h}
	f.order = append(f.order, key)
}

// GaugeFunc exposes fn as a gauge read at scrape time. Re-registration
// replaces the callback (last writer wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.fam(name, help, typeGauge).replace(labels, fn)
}

// CounterFunc exposes fn as a counter read at scrape time; fn must be
// monotone non-decreasing. Re-registration replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.fam(name, help, typeCounter).replace(labels, fn)
}

// families returns a sorted snapshot of the registered families.
func (r *Registry) families() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
