package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram resolution: values keep subBits significant bits, giving
// buckets within 1/2^subBits (~1.6%) of the recorded value — the
// HDR-histogram log-linear layout with a fixed footprint. (Generalized
// out of internal/serve so every layer shares one latency histogram.)
const (
	histSubBits = 6
	histSubSize = 1 << histSubBits
	// Largest index is bucketOf(MaxInt64): major 63-histSubBits, so the
	// table holds (64-histSubBits) major rows of histSubSize buckets.
	histBuckets = (64 - histSubBits) * histSubSize
)

// Hist is a concurrent fixed-footprint latency histogram: log-linear
// buckets (HDR style), atomic recording, quantile reads, and cheap
// snapshots whose differences give windowed percentiles. The zero value
// is NOT ready; use NewHist.
type Hist struct {
	buckets []int64 // atomic
	count   int64   // atomic
	sum     int64   // atomic, ns
	max     int64   // atomic, ns
}

// NewHist returns an empty histogram covering [0, ~2^63) nanoseconds.
func NewHist() *Hist {
	return &Hist{buckets: make([]int64, histBuckets)}
}

// bucketOf maps a nanosecond value to its log-linear bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubSize {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // MSB position, >= histSubBits
	major := exp - histSubBits + 1
	minor := int(u>>(exp-histSubBits)) - histSubSize
	return major<<histSubBits + minor
}

// bucketValue is the inverse of bucketOf: the lower bound of bucket i.
func bucketValue(i int) int64 {
	if i < histSubSize {
		return int64(i)
	}
	major := i >> histSubBits
	minor := i & (histSubSize - 1)
	return int64(histSubSize+minor) << (major - 1)
}

// Record adds one latency observation. Safe for concurrent use.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	atomic.AddInt64(&h.buckets[bucketOf(ns)], 1)
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, ns)
	for {
		m := atomic.LoadInt64(&h.max)
		if ns <= m || atomic.CompareAndSwapInt64(&h.max, m, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return atomic.LoadInt64(&h.count) }

// Max returns the largest recorded value.
func (h *Hist) Max() time.Duration { return time.Duration(atomic.LoadInt64(&h.max)) }

// Mean returns the arithmetic mean of all observations.
func (h *Hist) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(atomic.LoadInt64(&h.sum) / n)
}

// Quantile returns the q-quantile (q in [0,1]) to bucket resolution.
// Concurrent Records move the answer but never corrupt it.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.buckets {
		cum += atomic.LoadInt64(&h.buckets[i])
		if cum >= target {
			return time.Duration(bucketValue(i))
		}
	}
	return h.Max()
}

// HistSnapshot is an owned copy of a histogram's state at one moment.
// Subtracting two snapshots of the same histogram (Sub) yields the
// window between them, which is how pgload reports per-interval
// percentiles instead of lifetime ones.
type HistSnapshot struct {
	buckets []int64
	count   int64 // Σ buckets, internally consistent with Quantile
	sum     int64
	max     int64 // lifetime max (windows: resolution-bounded, see Sub)
}

// Snapshot copies the histogram's current state. Each bucket is read
// atomically; under concurrent Records the copy is a slightly-torn but
// monotone view — per-bucket counts never exceed the live histogram's,
// so deltas are never negative. The snapshot's Count is the sum of the
// buckets it read (internally consistent with its Quantile), which may
// trail the live Count by in-flight records.
func (h *Hist) Snapshot() *HistSnapshot {
	s := &HistSnapshot{buckets: make([]int64, histBuckets)}
	for i := range h.buckets {
		b := atomic.LoadInt64(&h.buckets[i])
		s.buckets[i] = b
		s.count += b
	}
	s.sum = atomic.LoadInt64(&h.sum)
	s.max = atomic.LoadInt64(&h.max)
	return s
}

// Sub returns the window between prev and s (s must be the later
// snapshot of the same histogram; a nil prev means "since zero"). The
// window's Max is reconstructed from its highest non-empty bucket, so it
// is accurate to bucket resolution (~1.6%) rather than exact.
func (s *HistSnapshot) Sub(prev *HistSnapshot) *HistSnapshot {
	d := &HistSnapshot{buckets: make([]int64, histBuckets)}
	hi := -1
	for i := range s.buckets {
		v := s.buckets[i]
		if prev != nil {
			v -= prev.buckets[i]
		}
		if v < 0 {
			v = 0 // torn snapshots can't produce negatives, but stay safe
		}
		d.buckets[i] = v
		d.count += v
		if v > 0 {
			hi = i
		}
	}
	d.sum = s.sum
	if prev != nil {
		d.sum -= prev.sum
	}
	if hi >= 0 {
		d.max = bucketValue(hi)
	}
	return d
}

// Count returns the snapshot's observation count.
func (s *HistSnapshot) Count() int64 { return s.count }

// Max returns the snapshot's largest value (bucket-resolution for
// windowed snapshots produced by Sub).
func (s *HistSnapshot) Max() time.Duration { return time.Duration(s.max) }

// Mean returns the snapshot's arithmetic mean.
func (s *HistSnapshot) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.sum / s.count)
}

// Quantile returns the snapshot's q-quantile to bucket resolution.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	target := int64(q*float64(s.count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.count {
		target = s.count
	}
	var cum int64
	for i, b := range s.buckets {
		cum += b
		if cum >= target {
			return time.Duration(bucketValue(i))
		}
	}
	return time.Duration(s.max)
}
