package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically-increasing metric. The zero value is ready
// to use; registry-created counters are shared per (name, labels).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; safe for concurrent use).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
