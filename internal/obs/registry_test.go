package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryIdempotent checks that registering the same (name, labels)
// returns the same metric, and distinct labels get distinct series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "requests", L("op", "tc"))
	b := r.Counter("requests_total", "requests", L("op", "tc"))
	c := r.Counter("requests_total", "requests", L("op", "sim"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
	a.Inc()
	a.Add(2)
	if b.Value() != 3 || c.Value() != 0 {
		t.Fatalf("counter values: shared=%d other=%d", b.Value(), c.Value())
	}
}

// TestRegistryTypeMismatchPanics checks that reusing a name under a
// different metric type is rejected loudly.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestRegistryConcurrent exercises concurrent registration and use of
// one name from many goroutines under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", "c", L("w", string(rune('a'+w%4)))).Inc()
				r.Gauge("g", "g").Set(float64(i))
				r.Histogram("h_seconds", "h").Record(time.Duration(i))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c_total", "c", L("w", l)).Value()
	}
	if total != 8*500 {
		t.Fatalf("counters total %d, want %d", total, 8*500)
	}
	if r.Histogram("h_seconds", "h").Count() != 8*500 {
		t.Fatalf("hist count %d", r.Histogram("h_seconds", "h").Count())
	}
}

// TestPromExposition renders a small registry and checks the text
// format: HELP/TYPE headers, sorted series, histogram buckets, and
// escaped label values.
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pg_requests_total", "Requests served.", L("op", "tc")).Add(7)
	r.Counter("pg_requests_total", "Requests served.", L("op", "sim")).Add(3)
	r.Gauge("pg_epoch", "Current epoch.").Set(42)
	r.GaugeFunc("pg_live", "Live check.", func() float64 { return 1.5 })
	h := r.Histogram("pg_latency_seconds", "Latency.", L("op", "tc"))
	h.Record(30 * time.Microsecond) // lands in the le=5e-05 bin
	h.Record(2 * time.Millisecond)  // lands in the le=0.0025 bin
	r.Counter("pg_escaped_total", "Escapes.", L("path", `a"b\c`)).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pg_requests_total Requests served.",
		"# TYPE pg_requests_total counter",
		`pg_requests_total{op="sim"} 3`,
		`pg_requests_total{op="tc"} 7`,
		"# TYPE pg_epoch gauge",
		"pg_epoch 42",
		"pg_live 1.5",
		"# TYPE pg_latency_seconds histogram",
		`pg_latency_seconds_bucket{op="tc",le="5e-05"} 1`,
		`pg_latency_seconds_bucket{op="tc",le="0.0025"} 2`,
		`pg_latency_seconds_bucket{op="tc",le="+Inf"} 2`,
		`pg_latency_seconds_count{op="tc"} 2`,
		`pg_escaped_total{path="a\"b\\c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Series of one family are sorted: sim before tc.
	if strings.Index(out, `pg_requests_total{op="sim"}`) > strings.Index(out, `pg_requests_total{op="tc"}`) {
		t.Fatal("series not sorted within family")
	}
}

// TestRegisterHistogramExposesExisting checks that an externally-owned
// histogram (e.g. an engine per-op hist) is scraped through the
// registry.
func TestRegisterHistogramExposesExisting(t *testing.T) {
	r := NewRegistry()
	h := NewHist()
	h.Record(time.Millisecond)
	r.RegisterHistogram("ext_seconds", "External.", h, L("op", "x"))
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `ext_seconds_count{op="x"} 1`) {
		t.Fatalf("external histogram not exposed:\n%s", sb.String())
	}
}
