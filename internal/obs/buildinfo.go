package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the binary's embedded version identity, read from the Go
// build metadata (module version and VCS stamping).
type BuildInfo struct {
	Module    string // main module path
	Version   string // module version ("(devel)" for source builds)
	Revision  string // VCS revision, "unknown" when not stamped
	Time      string // VCS commit time, "" when not stamped
	Modified  bool   // working tree was dirty at build time
	GoVersion string
}

// ReadBuildInfo extracts the build identity via
// runtime/debug.ReadBuildInfo. Fields missing from the build (e.g. `go
// run`, no VCS stamping) degrade to "unknown" rather than erroring.
func ReadBuildInfo() BuildInfo {
	b := BuildInfo{
		Module:    "probgraph",
		Version:   "(devel)",
		Revision:  "unknown",
		GoVersion: runtime.Version(),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Path != "" {
		b.Module = info.Main.Path
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// ShortRevision returns the abbreviated VCS revision.
func (b BuildInfo) ShortRevision() string {
	if len(b.Revision) > 12 {
		return b.Revision[:12]
	}
	return b.Revision
}

// VersionString renders the one-line `-version` output of the cmd
// binaries.
func VersionString(binary string) string {
	b := ReadBuildInfo()
	dirty := ""
	if b.Modified {
		dirty = "+dirty"
	}
	s := fmt.Sprintf("%s %s (%s%s, %s)", binary, b.Version, b.ShortRevision(), dirty, b.GoVersion)
	if b.Time != "" {
		s += " built from " + b.Time
	}
	return s
}

// RegisterBuildInfo exports the build identity as the constant metric
//
//	probgraph_build_info{revision,version,goversion,modified} 1
//
// so a fleet's running versions are queryable from /metrics.
func RegisterBuildInfo(r *Registry) {
	b := ReadBuildInfo()
	r.GaugeFunc("probgraph_build_info",
		"Build identity of the running binary; constant 1.",
		func() float64 { return 1 },
		L("revision", b.ShortRevision()),
		L("version", b.Version),
		L("goversion", b.GoVersion),
		L("modified", fmt.Sprintf("%t", b.Modified)),
	)
}

// RegisterRuntimeMetrics exports Go runtime health gauges: goroutine
// count, heap bytes, total GC cycles. Reads happen at scrape time.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
}
