package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistBucketRoundTrip checks the log-linear index math: every
// bucket's lower bound maps back to that bucket, bucketValue is the
// left inverse of bucketOf, and indices are monotone in the value.
func TestHistBucketRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		if got := bucketOf(bucketValue(i)); got != i {
			t.Fatalf("bucketOf(bucketValue(%d)) = %d", i, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		if b >= histBuckets {
			t.Fatalf("bucket %d out of range for value %d", b, v)
		}
		prev = b
	}
	// Every value in a bucket's range maps to that bucket: the lower
	// bound of bucket i+1 is the first value beyond bucket i.
	for _, i := range []int{0, 1, histSubSize - 1, histSubSize, 1000, histBuckets - 2} {
		lo, next := bucketValue(i), bucketValue(i+1)
		if bucketOf(lo) != i || bucketOf(next-1) != i {
			t.Fatalf("bucket %d range [%d,%d) maps to [%d,%d]",
				i, lo, next, bucketOf(lo), bucketOf(next-1))
		}
	}
}

// TestHistQuantiles records a known distribution and checks quantiles
// land within the histogram's ~1.6% bucket resolution.
func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.9, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.95)
		hi := time.Duration(float64(tc.want) * 1.05)
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %v, want within 5%% of %v", tc.q, got, tc.want)
		}
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

// TestHistConcurrentRecordQuantile hammers Record from many goroutines
// while a reader takes quantiles and snapshots throughout — the
// Record-vs-Quantile race is exercised under -race, and reads must stay
// within the recorded value range the whole time.
func TestHistConcurrentRecordQuantile(t *testing.T) {
	h := NewHist()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(1+(w*perWriter+i)%100000) * time.Nanosecond)
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, q := range []float64{0, 0.5, 0.99, 1} {
				if v := h.Quantile(q); v < 0 || (h.Count() > 0 && v > h.Max()+time.Microsecond) {
					t.Errorf("quantile %v out of range: %v (max %v)", q, v, h.Max())
					return
				}
			}
			s := h.Snapshot()
			if s.Count() > h.Count() {
				t.Errorf("snapshot count %d exceeds live count %d", s.Count(), h.Count())
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", h.Count(), writers*perWriter)
	}
}

// TestHistSnapshotDelta checks windowed percentiles: the delta between
// two snapshots sees only the observations recorded between them.
func TestHistSnapshotDelta(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond) // slow era
	}
	s1 := h.Snapshot()
	if s1.Count() != 100 {
		t.Fatalf("snapshot count = %d", s1.Count())
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Nanosecond) // fast era
	}
	s2 := h.Snapshot()

	win := s2.Sub(s1)
	if win.Count() != 1000 {
		t.Fatalf("window count = %d, want 1000", win.Count())
	}
	// The window's p50 must reflect the fast era (~500ns), even though
	// the lifetime histogram is dominated by the earlier slow records.
	if p50 := win.Quantile(0.5); p50 > 2*time.Microsecond {
		t.Fatalf("window p50 = %v, want ~500ns", p50)
	}
	if life := s2.Quantile(0.5); life < 10*time.Nanosecond {
		t.Fatalf("lifetime p50 = %v unexpectedly small", life)
	}
	// Window max is bucket-resolution: within ~2% of 1000ns.
	if m := win.Max(); m < 980*time.Nanosecond || m > 1020*time.Nanosecond {
		t.Fatalf("window max = %v, want ~1µs", m)
	}
	// since-zero delta equals the snapshot itself.
	if all := s2.Sub(nil); all.Count() != s2.Count() || all.Quantile(0.99) != s2.Quantile(0.99) {
		t.Fatalf("Sub(nil) diverges from snapshot")
	}
}

// TestHistSnapshotDeltaConcurrent takes snapshot deltas while writers
// are live: no window may see a negative count, and consecutive windows
// must account for every record exactly once.
func TestHistSnapshotDeltaConcurrent(t *testing.T) {
	h := NewHist()
	const writers, perWriter = 4, 20000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}()
	}
	var windows int64
	prev := (*HistSnapshot)(nil)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot()
		win := s.Sub(prev)
		if win.Count() < 0 {
			t.Fatalf("negative window count %d", win.Count())
		}
		windows += win.Count()
		prev = s
		select {
		case <-done:
			// One final window after all writers stopped.
			win = h.Snapshot().Sub(prev)
			windows += win.Count()
			if windows != writers*perWriter {
				t.Fatalf("windows account for %d records, want %d", windows, writers*perWriter)
			}
			return
		default:
		}
	}
}
