package obs

import (
	"os"
	"strconv"
	"strings"
)

// Process storage counters for the zero-copy serving path: a mapped
// artifact's pages are faulted in on first touch, so major faults and
// resident set are the observable cost (and benefit) of mmap serving —
// a cold mmap start trades the heap decode's upfront copy for faults
// amortized over query traffic, and warm restarts against a page-cached
// file fault almost nothing.

// MajorFaults reports the process's cumulative major page fault count
// (faults that required IO), from /proc/self/stat. Returns 0 on
// platforms without procfs — a missing counter, not an error, since
// callers are metrics gauges.
func MajorFaults() int64 {
	return procSelfStatField(11)
}

// ResidentBytes reports the process's resident set size in bytes, from
// /proc/self/stat. Returns 0 on platforms without procfs.
func ResidentBytes() int64 {
	return procSelfStatField(23) * int64(os.Getpagesize())
}

// procSelfStatField returns the 0-based idx'th field of /proc/self/stat,
// counting from pid as field 0. The comm field (1) may itself contain
// spaces and parentheses, so parsing restarts after the LAST ')'.
func procSelfStatField(idx int) int64 {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0
	}
	s := string(b)
	close := strings.LastIndexByte(s, ')')
	if close < 0 {
		return 0
	}
	// Fields after comm: state is field 2, so the split index shifts by 2.
	fields := strings.Fields(s[close+1:])
	i := idx - 2
	if i < 0 || i >= len(fields) {
		return 0
	}
	v, err := strconv.ParseInt(fields[i], 10, 64)
	if err != nil {
		return 0
	}
	return v
}
