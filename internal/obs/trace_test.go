package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestSpanNoTracerIsNoop checks the off switch: without a tracer on the
// context, StartSpan returns a nil span whose methods are all safe.
func TestSpanNoTracerIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "root")
	if sp != nil {
		t.Fatal("span without tracer should be nil")
	}
	sp.Attr("k", "v") // must not panic
	sp.End()
	if _, child := StartSpan(ctx, "child"); child != nil {
		t.Fatal("child of a no-op span should be nil")
	}
}

// TestTracerJournal records nested spans and checks the journal captures
// the root, its children with sane offsets, and attributes.
func TestTracerJournal(t *testing.T) {
	tr := NewTracer(0, 8) // threshold 0: journal everything
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "session/tc")
	root.Attr("kind", "BF")
	cctx, child := StartSpan(ctx, "build/pg")
	time.Sleep(2 * time.Millisecond)
	if _, grand := StartSpan(cctx, "build/orient"); grand != nil {
		grand.End()
	}
	child.End()
	root.End()

	total, slow := tr.Totals()
	if total != 1 || slow != 1 {
		t.Fatalf("totals = (%d, %d), want (1, 1)", total, slow)
	}
	traces := tr.Slow()
	if len(traces) != 1 {
		t.Fatalf("journal has %d traces", len(traces))
	}
	got := traces[0]
	if got.Name != "session/tc" || got.Dur < 2*time.Millisecond {
		t.Fatalf("root = %q dur %v", got.Name, got.Dur)
	}
	if got.Attrs["kind"] != "BF" {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
	var names []string
	for _, s := range got.Spans {
		names = append(names, s.Name)
		if s.Start < 0 || s.Dur < 0 || s.Start+s.Dur > got.Dur+time.Millisecond {
			t.Fatalf("span %q outside trace: start %v dur %v (trace %v)", s.Name, s.Start, s.Dur, got.Dur)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "build/pg") || !strings.Contains(joined, "build/orient") {
		t.Fatalf("span names = %v", names)
	}
}

// TestTracerThresholdAndRing checks that fast traces are counted but not
// journaled, and the ring keeps only the newest slow traces.
func TestTracerThresholdAndRing(t *testing.T) {
	tr := NewTracer(time.Hour, 2)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "fast")
		sp.End()
	}
	if total, slow := tr.Totals(); total != 3 || slow != 0 {
		t.Fatalf("totals = (%d, %d)", total, slow)
	}
	if len(tr.Slow()) != 0 {
		t.Fatal("fast traces journaled")
	}

	tr = NewTracer(0, 2)
	ctx = WithTracer(context.Background(), tr)
	for _, name := range []string{"a", "b", "c"} {
		_, sp := StartSpan(ctx, name)
		sp.End()
	}
	traces := tr.Slow()
	if len(traces) != 2 || traces[0].Name != "b" || traces[1].Name != "c" {
		names := make([]string, len(traces))
		for i, x := range traces {
			names[i] = x.Name
		}
		t.Fatalf("ring = %v, want [b c]", names)
	}
	if traces[0].ID >= traces[1].ID {
		t.Fatalf("IDs not increasing: %d, %d", traces[0].ID, traces[1].ID)
	}
}

// TestBuildInfo checks the -version plumbing degrades gracefully and the
// build_info metric always renders.
func TestBuildInfo(t *testing.T) {
	b := ReadBuildInfo()
	if b.GoVersion == "" || b.Revision == "" {
		t.Fatalf("build info incomplete: %+v", b)
	}
	v := VersionString("pgtest")
	if !strings.HasPrefix(v, "pgtest ") || !strings.Contains(v, b.GoVersion) {
		t.Fatalf("version string %q", v)
	}
	r := NewRegistry()
	RegisterBuildInfo(r)
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"probgraph_build_info{", "} 1\n", "go_goroutines"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
