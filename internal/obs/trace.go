package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects completed traces into a fixed-size ring, keeping only
// those whose root span meets the slow threshold — a slow-query journal,
// not a firehose. It is installed on a context (WithTracer) and picked
// up by StartSpan at each instrumented layer; requests running without a
// tracer pay one context lookup and allocate nothing.
type Tracer struct {
	threshold time.Duration
	cap       int

	total atomic.Int64 // root spans finished
	slow  atomic.Int64 // root spans at/over threshold

	mu   sync.Mutex
	ring []*Trace // newest-last circular buffer
	next int
	id   uint64
}

// DefaultTraceRing is the journal capacity used when NewTracer is given
// a non-positive ring size.
const DefaultTraceRing = 64

// NewTracer returns a tracer keeping the last ringSize traces whose root
// duration is >= threshold. A non-positive threshold journals every
// trace (useful in tests and smoke runs).
func NewTracer(threshold time.Duration, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	return &Tracer{threshold: threshold, cap: ringSize}
}

// Threshold returns the slow-trace threshold.
func (t *Tracer) Threshold() time.Duration { return t.threshold }

// Totals reports how many root spans finished and how many met the
// threshold.
func (t *Tracer) Totals() (total, slow int64) {
	return t.total.Load(), t.slow.Load()
}

// Slow returns the journaled traces, oldest first.
func (t *Tracer) Slow() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	if len(t.ring) < t.cap {
		out = out[:len(t.ring)]
	}
	return out
}

// finish folds one completed root trace into the journal.
func (t *Tracer) finish(tr *Trace) {
	t.total.Add(1)
	if tr.Dur < t.threshold {
		return
	}
	t.slow.Add(1)
	t.mu.Lock()
	t.id++
	tr.ID = t.id
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, tr)
		t.next = len(t.ring) % t.cap
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % t.cap
	}
	t.mu.Unlock()
}

// SpanRec is one completed child span within a trace: its name, depth
// below the root, offset from the trace start, and duration.
type SpanRec struct {
	Name    string        `json:"name"`
	Depth   int           `json:"depth"`
	StartUS float64       `json:"start_us"`
	DurUS   float64       `json:"dur_us"`
	Start   time.Duration `json:"-"`
	Dur     time.Duration `json:"-"`
}

// Trace is one completed root span with its recorded children and
// attributes — the unit of the /v1/trace journal.
type Trace struct {
	ID    uint64            `json:"id"`
	Name  string            `json:"name"`
	Begin time.Time         `json:"begin"`
	DurUS float64           `json:"dur_us"`
	Dur   time.Duration     `json:"-"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Spans []SpanRec         `json:"spans,omitempty"`

	tracer *Tracer
	mu     sync.Mutex
}

// Span is one timed phase of a trace. A nil Span (no tracer on the
// context) is a valid no-op receiver for every method, so call sites
// never branch on whether tracing is active.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	depth int
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer installs a tracer on the context; nil tracers install
// nothing.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// StartSpan begins a span. If the context already carries a span, the
// new one is its child within the same trace; otherwise, if the context
// carries a tracer, a new root trace begins; otherwise the returned
// Span is nil (a no-op) and the context is unchanged. End completes the
// span; a root End hands the trace to its tracer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		sp := &Span{tr: parent.tr, name: name, start: time.Now(), depth: parent.depth + 1}
		return context.WithValue(ctx, spanKey, sp), sp
	}
	t, ok := ctx.Value(tracerKey).(*Tracer)
	if !ok || t == nil {
		return ctx, nil
	}
	now := time.Now()
	sp := &Span{
		tr:    &Trace{Name: name, Begin: now, tracer: t},
		name:  name,
		start: now,
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// Attr records a key=value attribute on the span's trace (visible in
// the journal). Nil-safe.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.tr.Attrs == nil {
		s.tr.Attrs = make(map[string]string, 4)
	}
	s.tr.Attrs[key] = value
	s.tr.mu.Unlock()
}

// End completes the span. Child spans append their record to the trace;
// the root span stamps the trace duration and journals it. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if s.depth == 0 {
		s.tr.Dur = d
		s.tr.DurUS = float64(d) / float64(time.Microsecond)
		s.tr.tracer.finish(s.tr)
		return
	}
	off := s.start.Sub(s.tr.Begin)
	s.tr.mu.Lock()
	s.tr.Spans = append(s.tr.Spans, SpanRec{
		Name:    s.name,
		Depth:   s.depth,
		Start:   off,
		Dur:     d,
		StartUS: float64(off) / float64(time.Microsecond),
		DurUS:   float64(d) / float64(time.Microsecond),
	})
	s.tr.mu.Unlock()
}
