package sketch

import (
	"math"
	"testing"

	"probgraph/internal/hash"
	"probgraph/internal/stats"
)

// ranges builds X=[0,sizeX) and Y=[sizeX-overlap, sizeX-overlap+sizeY).
func ranges(sizeX, sizeY, overlap int) (xs, ys []uint32) {
	for i := 0; i < sizeX; i++ {
		xs = append(xs, uint32(i))
	}
	for i := 0; i < sizeY; i++ {
		ys = append(ys, uint32(sizeX-overlap+i))
	}
	return xs, ys
}

func trueJaccard(sizeX, sizeY, overlap int) float64 {
	return float64(overlap) / float64(sizeX+sizeY-overlap)
}

func TestKHashIdenticalSets(t *testing.T) {
	fam := hash.NewFamily(1, 64)
	xs, _ := ranges(100, 0, 0)
	a := KHashSignature(xs, fam, make(KHashSig, 64))
	b := KHashSignature(xs, fam, make(KHashSig, 64))
	if KHashJaccard(a, b) != 1 {
		t.Fatal("identical sets must have Ĵ = 1")
	}
	if got := KHashInter(a, b, 100, 100); got != 100 {
		t.Fatalf("self-intersection = %v, want 100", got)
	}
}

func TestKHashDisjointSets(t *testing.T) {
	fam := hash.NewFamily(2, 64)
	xs, ys := ranges(100, 100, 0)
	a := KHashSignature(xs, fam, make(KHashSig, 64))
	b := KHashSignature(ys, fam, make(KHashSig, 64))
	if j := KHashJaccard(a, b); j > 0.05 {
		t.Fatalf("disjoint Ĵ = %v", j)
	}
}

func TestKHashEmptySets(t *testing.T) {
	fam := hash.NewFamily(3, 16)
	empty := KHashSignature(nil, fam, make(KHashSig, 16))
	other := KHashSignature([]uint32{1, 2, 3}, fam, make(KHashSig, 16))
	if KHashJaccard(empty, empty) != 0 {
		t.Fatal("two empty sets must estimate Ĵ = 0 (sentinel skip)")
	}
	if KHashJaccard(empty, other) != 0 {
		t.Fatal("empty vs nonempty must be 0")
	}
	if KHashInter(empty, other, 0, 3) != 0 {
		t.Fatal("intersection with empty set must be 0")
	}
	if KHashJaccard(KHashSig{}, KHashSig{}) != 0 {
		t.Fatal("zero-length signature")
	}
}

func TestKHashUnbiasedJaccard(t *testing.T) {
	// Average Ĵ over many independent families should approach J
	// (|M_X∩M_Y| ~ Bin(k, J), §IV-C).
	const sizeX, sizeY, overlap, k = 60, 40, 20, 32
	xs, ys := ranges(sizeX, sizeY, overlap)
	want := trueJaccard(sizeX, sizeY, overlap)
	var sum float64
	const trials = 150
	for seed := uint64(0); seed < trials; seed++ {
		fam := hash.NewFamily(seed, k)
		a := KHashSignature(xs, fam, make(KHashSig, k))
		b := KHashSignature(ys, fam, make(KHashSig, k))
		sum += KHashJaccard(a, b)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("mean Ĵ = %.4f, true J = %.4f", got, want)
	}
}

func TestInterFromJaccard(t *testing.T) {
	if InterFromJaccard(0, 10, 10) != 0 {
		t.Fatal("J=0")
	}
	if got := InterFromJaccard(1, 10, 10); got != 10 {
		t.Fatalf("J=1 gives %v, want 10", got)
	}
	if InterFromJaccard(-0.5, 10, 10) != 0 {
		t.Fatal("negative J clamps to 0")
	}
	// J = 1/3 with |X|=|Y|=10, overlap 5: 1/3/(4/3)·20 = 5.
	if got := InterFromJaccard(1.0/3, 10, 10); math.Abs(got-5) > 1e-12 {
		t.Fatalf("J=1/3 gives %v, want 5", got)
	}
}

func sketchPair(sizeX, sizeY, overlap, k int, seed uint64, keep bool) (BottomK, BottomK) {
	fam := hash.NewFamily(seed, 1)
	fn := func(x uint32) uint64 { return fam.Hash(0, x) }
	xs, ys := ranges(sizeX, sizeY, overlap)
	return OneHashSketch(xs, k, fn, keep), OneHashSketch(ys, k, fn, keep)
}

func TestOneHashSketchInvariants(t *testing.T) {
	a, _ := sketchPair(100, 0, 0, 16, 1, true)
	if len(a.Hashes) != 16 || len(a.Elems) != 16 {
		t.Fatalf("sketch size %d, want 16", len(a.Hashes))
	}
	for i := 1; i < len(a.Hashes); i++ {
		if a.Hashes[i-1] > a.Hashes[i] {
			t.Fatal("sketch not sorted")
		}
	}
	// Small set: sketch is the whole set.
	small, _ := sketchPair(5, 0, 0, 16, 1, false)
	if len(small.Hashes) != 5 {
		t.Fatalf("small-set sketch has %d entries, want 5", len(small.Hashes))
	}
	if small.Elems != nil {
		t.Fatal("keepElems=false must not allocate Elems")
	}
}

func TestOneHashExactWhenSketchCoversSets(t *testing.T) {
	// d <= k: the union-restricted estimator is exact.
	a, b := sketchPair(10, 8, 4, 32, 5, false)
	if got := OneHashInter(a, b, 32, 10, 8); math.Abs(got-4) > 1e-9 {
		t.Fatalf("covered-set intersection = %v, want exactly 4", got)
	}
}

func TestOneHashIdenticalAndDisjoint(t *testing.T) {
	same1, same2 := sketchPair(200, 200, 200, 24, 9, false)
	if j := OneHashJaccard(same1, same2, 24); j != 1 {
		t.Fatalf("identical sets Ĵ = %v", j)
	}
	d1, d2 := sketchPair(200, 200, 0, 24, 9, false)
	if j := OneHashJaccard(d1, d2, 24); j > 0.1 {
		t.Fatalf("disjoint Ĵ = %v", j)
	}
}

func TestOneHashAccuracy(t *testing.T) {
	const sizeX, sizeY, overlap, k = 300, 250, 100, 64
	var errs, errsSimple []float64
	for seed := uint64(0); seed < 40; seed++ {
		a, b := sketchPair(sizeX, sizeY, overlap, k, seed, false)
		errs = append(errs, stats.RelativeError(OneHashInter(a, b, k, sizeX, sizeY), overlap))
		errsSimple = append(errsSimple, stats.RelativeError(OneHashInterSimple(a, b, k, sizeX, sizeY), overlap))
	}
	if m := stats.Mean(errs); m > 0.20 {
		t.Fatalf("union-restricted 1H mean error %.3f", m)
	}
	// The plain /k variant is biased upward for unequal set sizes (it
	// counts common values outside the union's bottom-k); it must still be
	// in the right ballpark, and strictly worse than union-restricted.
	mSimple := stats.Mean(errsSimple)
	if mSimple > 0.6 {
		t.Fatalf("simple 1H mean error %.3f", mSimple)
	}
	if mSimple < stats.Mean(errs) {
		t.Logf("note: simple variant beat union-restricted (%.3f < %.3f)", mSimple, stats.Mean(errs))
	}
}

func TestOneHashConsistency(t *testing.T) {
	// Error decreases as k grows (§A-5 consistency).
	const sizeX, sizeY, overlap = 400, 400, 150
	meanErr := func(k int) float64 {
		var errs []float64
		for seed := uint64(0); seed < 30; seed++ {
			a, b := sketchPair(sizeX, sizeY, overlap, k, seed, false)
			errs = append(errs, stats.RelativeError(OneHashInter(a, b, k, sizeX, sizeY), overlap))
		}
		return stats.Mean(errs)
	}
	if small, large := meanErr(8), meanErr(256); large > small {
		t.Fatalf("1H error grew with k: %.3f (k=8) -> %.3f (k=256)", small, large)
	}
}

func TestOneHashCommonAndElems(t *testing.T) {
	a, b := sketchPair(10, 8, 4, 32, 5, true)
	if c := OneHashCommon(a, b); c != 4 {
		t.Fatalf("common = %d, want 4", c)
	}
	elems := CommonElems(a, b, nil)
	if len(elems) != 4 {
		t.Fatalf("CommonElems = %v", elems)
	}
	// The shared range is [6,10).
	for _, e := range elems {
		if e < 6 || e >= 10 {
			t.Fatalf("unexpected common element %d", e)
		}
	}
}

func TestOneHashEdgeCases(t *testing.T) {
	empty := BottomK{}
	a, _ := sketchPair(10, 0, 0, 8, 1, false)
	if OneHashJaccard(empty, empty, 8) != 0 {
		t.Fatal("empty/empty")
	}
	if OneHashInter(a, empty, 8, 10, 0) != 0 {
		t.Fatal("vs empty")
	}
	if OneHashJaccard(a, a, 0) != 0 {
		t.Fatal("k=0 guarded")
	}
	if s := OneHashSketch(nil, 0, func(uint32) uint64 { return 0 }, false); len(s.Hashes) != 0 {
		t.Fatal("empty input must give empty sketch")
	}
}
