package sketch

import (
	"math/rand/v2"
	"sort"
	"testing"

	"probgraph/internal/hash"
)

func TestBottomKSelectMatchesSort(t *testing.T) {
	fam := hash.NewFamily(3, 1)
	fn := func(x uint32) uint64 { return fam.Hash(0, x) }
	elems := make([]uint32, 400)
	for i := range elems {
		elems[i] = uint32(i * 3)
	}
	for _, k := range []int{1, 5, 256, 500} {
		got := OneHashSketch(elems, k, fn, true)
		// reference: sort all hashes
		all := make([]uint64, len(elems))
		for i, x := range elems {
			all[i] = fn(x)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got.Hashes) != len(want) {
			t.Fatalf("k=%d: len %d want %d", k, len(got.Hashes), len(want))
		}
		for i := range want {
			if got.Hashes[i] != want[i] {
				t.Fatalf("k=%d: idx %d: %d != %d", k, i, got.Hashes[i], want[i])
			}
			if fn(got.Elems[i]) != got.Hashes[i] {
				t.Fatalf("k=%d: elem misaligned at %d", k, i)
			}
		}
	}
}

// Property: heap-based bottom-k selection matches the sorted reference
// for arbitrary value streams (regression for the siftDown depth bug).
func TestBottomKSelectBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 3000; trial++ {
		n := rng.IntN(30) + 1
		k := rng.IntN(10) + 1
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.IntN(100))
		}
		es := make([]uint32, n)
		for i := range es {
			es[i] = uint32(i)
		}
		fn := func(x uint32) uint64 { return vals[x] }
		hs, _ := bottomKSelect(es, k, fn, make([]uint64, 0, k), nil)
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		want := append([]uint64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) > k {
			want = want[:k]
		}
		for i := range want {
			if hs[i] != want[i] {
				t.Fatalf("n=%d k=%d vals=%v: got %v want %v", n, k, vals, hs, want)
			}
		}
	}
}
