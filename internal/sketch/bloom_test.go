package sketch

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"probgraph/internal/stats"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	f := NewBloom(1024, 3, 1)
	for x := uint32(0); x < 100; x++ {
		f.Add(x * 7)
	}
	for x := uint32(0); x < 100; x++ {
		if !f.Contains(x * 7) {
			t.Fatalf("false negative for %d", x*7)
		}
	}
}

func TestBloomNoFalseNegativesProperty(t *testing.T) {
	check := func(elems []uint32, b uint8, seed uint64) bool {
		f := NewBloom(512, int(b%4)+1, seed)
		for _, x := range elems {
			f.Add(x)
		}
		for _, x := range elems {
			if !f.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRateApprox(t *testing.T) {
	// Insert 200 elements into a 2048-bit filter with b=2 and measure the
	// FP rate on 10k absent keys; it should be near the analytic rate.
	const nbits, b, card = 2048, 2, 200
	f := NewBloom(nbits, b, 7)
	for x := uint32(0); x < card; x++ {
		f.Add(x)
	}
	fp := 0
	const probes = 10000
	for x := uint32(1 << 20); x < 1<<20+probes; x++ {
		if f.Contains(x) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := FalsePositiveRate(card, nbits, b)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("measured FP rate %.4f, analytic %.4f", got, want)
	}
}

func TestBloomGeometryClamp(t *testing.T) {
	f := NewBloom(1, 0, 3)
	if f.SizeBits() != 64 || f.B() != 1 {
		t.Fatalf("clamp: size=%d b=%d", f.SizeBits(), f.B())
	}
}

func TestCardEstimatorEdgeCases(t *testing.T) {
	if CardSwamidass(0, 256, 2) != 0 {
		t.Fatal("empty filter must estimate 0")
	}
	// Saturated filter stays finite (the §A-3 divergence fix).
	if v := CardSwamidass(256, 256, 2); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("saturated estimator diverged: %v", v)
	}
	if CardPapapetrou(0, 256, 2) != 0 {
		t.Fatal("Papapetrou empty")
	}
	if v := CardPapapetrou(256, 256, 2); math.IsInf(v, 0) {
		t.Fatalf("Papapetrou saturated diverged: %v", v)
	}
	if CardLinear(10, 2) != 5 {
		t.Fatal("linear estimator")
	}
}

func TestCardEstimatorAccuracy(t *testing.T) {
	// Eq. (1) should land close to the true size for a comfortably sized
	// filter; average over seeds to smooth hash noise.
	const card, nbits, b = 300, 8192, 2
	var errs []float64
	for seed := uint64(0); seed < 20; seed++ {
		f := NewBloom(nbits, b, seed)
		for x := uint32(0); x < card; x++ {
			f.Add(x)
		}
		errs = append(errs, stats.RelativeError(f.EstimateCard(), card))
	}
	if m := stats.Mean(errs); m > 0.05 {
		t.Fatalf("mean relative error of Eq.(1) = %.3f, want < 0.05", m)
	}
}

// buildPair creates Bloom filters for two overlapping integer ranges.
func buildPair(nbits, b int, seed uint64, sizeX, sizeY, overlap int) (*Bloom, *Bloom) {
	fx := NewBloom(nbits, b, seed)
	fy := NewBloom(nbits, b, seed) // same family: required for AND/OR estimators
	for i := 0; i < sizeX; i++ {
		fx.Add(uint32(i))
	}
	for i := 0; i < sizeY; i++ {
		fy.Add(uint32(sizeX - overlap + i))
	}
	return fx, fy
}

func TestInterEstimatorsAccuracy(t *testing.T) {
	const nbits, b = 16384, 2
	const sizeX, sizeY, overlap = 400, 300, 120
	var errAND, errL, errOR []float64
	for seed := uint64(0); seed < 20; seed++ {
		fx, fy := buildPair(nbits, b, seed, sizeX, sizeY, overlap)
		errAND = append(errAND, stats.RelativeError(fx.InterANDOf(fy), overlap))
		errL = append(errL, stats.RelativeError(fx.InterLOf(fy), overlap))
		errOR = append(errOR, stats.RelativeError(fx.InterOROf(fy, sizeX, sizeY), overlap))
	}
	for name, errs := range map[string][]float64{"AND": errAND, "L": errL, "OR": errOR} {
		if m := stats.Mean(errs); m > 0.15 {
			t.Errorf("%s estimator mean relative error %.3f, want < 0.15", name, m)
		}
	}
}

func TestInterANDConsistency(t *testing.T) {
	// Consistency (§A-4): error decreases as the filter grows.
	const sizeX, sizeY, overlap = 400, 300, 120
	meanErr := func(nbits int) float64 {
		var errs []float64
		for seed := uint64(0); seed < 15; seed++ {
			fx, fy := buildPair(nbits, 2, seed, sizeX, sizeY, overlap)
			errs = append(errs, stats.RelativeError(fx.InterANDOf(fy), overlap))
		}
		return stats.Mean(errs)
	}
	small, large := meanErr(2048), meanErr(65536)
	if large > small {
		t.Fatalf("error grew with sketch size: %f (2Kb) -> %f (64Kb)", small, large)
	}
}

func TestInterDisjointSetsNearZero(t *testing.T) {
	const nbits, b = 32768, 2
	fx, fy := buildPair(nbits, b, 3, 300, 300, 0)
	if est := fx.InterANDOf(fy); est > 25 {
		t.Fatalf("disjoint AND estimate too high: %v", est)
	}
	if est := fx.InterOROf(fy, 300, 300); est > 25 {
		t.Fatalf("disjoint OR estimate too high: %v", est)
	}
}

func TestInterAND3(t *testing.T) {
	const nbits, b = 32768, 2
	fx := NewBloom(nbits, b, 5)
	fy := NewBloom(nbits, b, 5)
	fz := NewBloom(nbits, b, 5)
	// X = [0,300), Y = [100,400), Z = [200,500): triple overlap [200,300).
	for i := 0; i < 300; i++ {
		fx.Add(uint32(i))
		fy.Add(uint32(100 + i))
		fz.Add(uint32(200 + i))
	}
	est := InterAND3(fx.Bits(), fy.Bits(), fz.Bits(), nbits, b)
	if stats.RelativeError(est, 100) > 0.25 {
		t.Fatalf("triple intersection estimate %v, want ~100", est)
	}
}

func TestInterORNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		fx := NewBloom(1024, 2, seed)
		fy := NewBloom(1024, 2, seed)
		nx, ny := rng.IntN(50), rng.IntN(50)
		for i := 0; i < nx; i++ {
			fx.Add(uint32(rng.IntN(1000)))
		}
		for i := 0; i < ny; i++ {
			fy.Add(uint32(rng.IntN(1000)))
		}
		return fx.InterOROf(fy, nx, ny) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateBounds(t *testing.T) {
	if FalsePositiveRate(0, 1024, 2) != 0 {
		t.Fatal("empty filter FP rate must be 0")
	}
	if p := FalsePositiveRate(100000, 64, 2); p < 0.99 {
		t.Fatalf("overloaded filter FP rate %v, want ~1", p)
	}
	if FalsePositiveRate(10, 0, 2) != 1 {
		t.Fatal("degenerate size")
	}
}
