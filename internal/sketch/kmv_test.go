package sketch

import (
	"math"
	"testing"

	"probgraph/internal/hash"
	"probgraph/internal/stats"
)

func kmvPair(sizeX, sizeY, overlap, k int, seed uint64) (KMV, KMV) {
	fam := hash.NewFamily(seed, 1)
	fn := func(x uint32) uint64 { return fam.Hash(0, x) }
	xs, ys := ranges(sizeX, sizeY, overlap)
	return NewKMV(xs, k, fn), NewKMV(ys, k, fn)
}

func TestKMVSortedAndBounded(t *testing.T) {
	a, _ := kmvPair(500, 0, 0, 32, 1)
	if len(a.Hashes) != 32 {
		t.Fatalf("sketch size %d", len(a.Hashes))
	}
	for i := 1; i < len(a.Hashes); i++ {
		if a.Hashes[i-1] >= a.Hashes[i] {
			t.Fatal("KMV not strictly sorted")
		}
	}
}

func TestKMVSmallSetExact(t *testing.T) {
	a, _ := kmvPair(10, 0, 0, 64, 1)
	if got := a.Card(64); got != 10 {
		t.Fatalf("small set Card = %v, want exact 10", got)
	}
	empty := NewKMV(nil, 8, func(uint32) uint64 { return 0 })
	if empty.Card(8) != 0 {
		t.Fatal("empty set Card must be 0")
	}
}

func TestKMVCardAccuracy(t *testing.T) {
	const size, k = 2000, 128
	var errs []float64
	for seed := uint64(0); seed < 30; seed++ {
		a, _ := kmvPair(size, 0, 0, k, seed)
		errs = append(errs, stats.RelativeError(a.Card(k), size))
	}
	if m := stats.Mean(errs); m > 0.12 {
		t.Fatalf("KMV Card mean relative error %.3f", m)
	}
}

func TestKMVUnionProperties(t *testing.T) {
	a, b := kmvPair(300, 300, 100, 64, 3)
	u := Union(a, b, 64)
	if len(u.Hashes) != 64 {
		t.Fatalf("union sketch size %d", len(u.Hashes))
	}
	for i := 1; i < len(u.Hashes); i++ {
		if u.Hashes[i-1] >= u.Hashes[i] {
			t.Fatal("union not strictly sorted (duplicates must merge)")
		}
	}
	// Union of a sketch with itself is itself.
	self := Union(a, a, 64)
	for i := range self.Hashes {
		if self.Hashes[i] != a.Hashes[i] {
			t.Fatal("self-union changed sketch")
		}
	}
}

func TestKMVInterAccuracy(t *testing.T) {
	const sizeX, sizeY, overlap, k = 400, 350, 150, 128
	var errs []float64
	for seed := uint64(0); seed < 30; seed++ {
		a, b := kmvPair(sizeX, sizeY, overlap, k, seed)
		errs = append(errs, stats.RelativeError(InterKMV(a, b, k, sizeX, sizeY), overlap))
	}
	if m := stats.Mean(errs); m > 0.25 {
		t.Fatalf("KMV intersection mean relative error %.3f", m)
	}
}

func TestKMVInterClamps(t *testing.T) {
	// Disjoint sets: estimate must be >= 0.
	a, b := kmvPair(200, 200, 0, 32, 5)
	if est := InterKMV(a, b, 32, 200, 200); est < 0 {
		t.Fatalf("negative estimate %v", est)
	}
	// Identical sets: estimate clamps to min size.
	c, d := kmvPair(200, 200, 200, 32, 5)
	if est := InterKMV(c, d, 32, 200, 200); est > 200 {
		t.Fatalf("estimate %v exceeds min size", est)
	}
	if est := InterKMVEstimatedSizes(c, d, 32); est < 0 {
		t.Fatalf("estimated-sizes variant negative: %v", est)
	}
}

func TestKMVSmallSetsExactIntersection(t *testing.T) {
	// Both sets within k: union sketch enumerates X∪Y, so the result is
	// exact.
	a, b := kmvPair(20, 15, 8, 64, 7)
	if got := InterKMV(a, b, 64, 20, 15); math.Abs(got-8) > 1e-9 {
		t.Fatalf("small-set KMV intersection = %v, want 8", got)
	}
}

func TestHLLCardAccuracy(t *testing.T) {
	fam := hash.NewFamily(11, 1)
	for _, size := range []int{100, 5000} {
		s := NewHLL(10)
		for i := 0; i < size; i++ {
			s.Add(fam.Hash(0, uint32(i)))
		}
		if err := stats.RelativeError(s.Card(), float64(size)); err > 0.1 {
			t.Fatalf("HLL size %d: relative error %.3f", size, err)
		}
	}
}

func TestHLLUnionAndIntersection(t *testing.T) {
	fam := hash.NewFamily(13, 1)
	const sizeX, sizeY, overlap = 3000, 2500, 1000
	xs, ys := ranges(sizeX, sizeY, overlap)
	a, b := NewHLL(11), NewHLL(11)
	for _, x := range xs {
		a.Add(fam.Hash(0, x))
	}
	for _, y := range ys {
		b.Add(fam.Hash(0, y))
	}
	u := UnionHLL(a, b)
	if err := stats.RelativeError(u.Card(), float64(sizeX+sizeY-overlap)); err > 0.1 {
		t.Fatalf("HLL union error %.3f", err)
	}
	if err := stats.RelativeError(InterHLL(a, b, sizeX, sizeY), overlap); err > 0.35 {
		t.Fatalf("HLL intersection error %.3f", err)
	}
}

func TestHLLClamps(t *testing.T) {
	if NewHLL(0).P != 4 || NewHLL(30).P != 16 {
		t.Fatal("precision clamp")
	}
	a, b := NewHLL(8), NewHLL(8)
	if InterHLL(a, b, 0, 0) != 0 {
		t.Fatal("empty HLL intersection")
	}
}
