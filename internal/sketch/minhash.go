package sketch

import (
	"math"
	"sort"

	"probgraph/internal/hash"
)

// EmptySlot is the sentinel stored in a k-Hash signature position when
// the underlying set is empty (min over the empty set).
const EmptySlot = math.MaxUint64

// KHashSig is the k-Hash MinHash signature of a set (§II-D): position i
// holds min_{x∈X} h_i(x). Two sets' signatures agree at position i
// exactly when their h_i-minimizing elements coincide (up to 64-bit hash
// collisions), so agreement counting realizes |M_X ∩ M_Y| of §IV-C.
type KHashSig []uint64

// KHashSignature fills out (length k = fam.K()) with the signature of the
// element set; out is returned for convenience. An empty set yields all
// EmptySlot sentinels.
func KHashSignature(elems []uint32, fam *hash.Family, out KHashSig) KHashSig {
	for i := range out {
		out[i] = EmptySlot
	}
	for _, x := range elems {
		for i := 0; i < fam.K(); i++ {
			if h := fam.Hash(i, x); h < out[i] {
				out[i] = h
			}
		}
	}
	return out
}

// KHashAgreement counts signature positions where a and b agree, skipping
// positions where both are empty (so two empty sets have Jaccard 0 rather
// than a spurious 1).
func KHashAgreement(a, b KHashSig) int {
	c := 0
	for i := range a {
		if a[i] == b[i] && a[i] != EmptySlot {
			c++
		}
	}
	return c
}

// KHashJaccard is the unbiased Jaccard estimator Ĵ = |M_X∩M_Y|/k (§IV-C);
// |M_X∩M_Y| ~ Bin(k, J).
func KHashJaccard(a, b KHashSig) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(KHashAgreement(a, b)) / float64(len(a))
}

// InterFromJaccard applies the §IV-C transform
// |X∩Y| = Ĵ/(1+Ĵ)·(|X|+|Y|) (Eq. 5), shared by the k-Hash and 1-Hash
// estimators. It inherits MLE invariance from Ĵ for k-Hash.
func InterFromJaccard(j float64, sizeX, sizeY int) float64 {
	if j <= 0 {
		return 0
	}
	return j / (1 + j) * float64(sizeX+sizeY)
}

// KHashInter is the full Eq. (5) estimator over two signatures.
func KHashInter(a, b KHashSig, sizeX, sizeY int) float64 {
	return InterFromJaccard(KHashJaccard(a, b), sizeX, sizeY)
}

// --- 1-Hash (bottom-k) ------------------------------------------------------

// BottomK is the 1-Hash sketch M¹_X (§II-D): the min(k, |X|) smallest
// values of a single hash function over the set, sorted ascending.
// Elems optionally carries the element IDs aligned with Hashes, which the
// weighted similarity estimators (Adamic–Adar, Resource Allocation) use
// to evaluate functions of the sampled intersection.
type BottomK struct {
	Hashes []uint64
	Elems  []uint32
}

// OneHashSketch builds the bottom-k sketch of the element set using hash
// function fn. If keepElems is set, element IDs are retained alongside.
// Selection uses a bounded max-heap: O(d log k) work and O(k) memory per
// sketch, realizing the Table V construction cost (one hash evaluation
// per element, no materialization of the full hash list).
func OneHashSketch(elems []uint32, k int, fn func(uint32) uint64, keepElems bool) BottomK {
	if k < 1 {
		k = 1
	}
	size := min(k, len(elems))
	s := BottomK{Hashes: make([]uint64, 0, size)}
	if keepElems {
		s.Elems = make([]uint32, 0, size)
	}
	var ids []uint32
	if keepElems {
		ids = s.Elems
	}
	hs, ids := bottomKSelect(elems, k, fn, s.Hashes, ids)
	s.Hashes = hs
	if keepElems {
		s.Elems = ids
	}
	sortAligned(s.Hashes, s.Elems)
	return s
}

// bottomKSelect maintains a max-heap of the k smallest hashes seen so
// far; ids (may be nil) tracks the originating elements alongside.
func bottomKSelect(elems []uint32, k int, fn func(uint32) uint64, hs []uint64, ids []uint32) ([]uint64, []uint32) {
	keep := ids != nil
	for _, x := range elems {
		h := fn(x)
		if len(hs) < k {
			hs = append(hs, h)
			if keep {
				ids = append(ids, x)
			}
			if len(hs) == k {
				// Heapify once full.
				for i := k/2 - 1; i >= 0; i-- {
					siftDown(hs, ids, i)
				}
			}
			continue
		}
		if h >= hs[0] {
			continue
		}
		hs[0] = h
		if keep {
			ids[0] = x
		}
		siftDown(hs, ids, 0)
	}
	return hs, ids
}

// siftDown restores the max-heap property at index i.
func siftDown(hs []uint64, ids []uint32, i int) {
	n := len(hs)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && hs[l] > hs[largest] {
			largest = l
		}
		if r < n && hs[r] > hs[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		hs[i], hs[largest] = hs[largest], hs[i]
		if ids != nil {
			ids[i], ids[largest] = ids[largest], ids[i]
		}
		i = largest
	}
}

// sortAligned sorts hs ascending, permuting ids (if non-nil) alongside.
func sortAligned(hs []uint64, ids []uint32) {
	if ids == nil {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
		return
	}
	idx := make([]int, len(hs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return hs[idx[i]] < hs[idx[j]] })
	outH := make([]uint64, len(hs))
	outI := make([]uint32, len(ids))
	for p, i := range idx {
		outH[p] = hs[i]
		outI[p] = ids[i]
	}
	copy(hs, outH)
	copy(ids, outI)
}

// OneHashCommon counts hash values present in both sketches (sorted-merge
// intersection, O(k)); this is |M¹_X ∩ M¹_Y| of §IV-D.
func OneHashCommon(a, b BottomK) int {
	i, j, c := 0, 0, 0
	for i < len(a.Hashes) && j < len(b.Hashes) {
		switch {
		case a.Hashes[i] == b.Hashes[j]:
			c++
			i++
			j++
		case a.Hashes[i] < b.Hashes[j]:
			i++
		default:
			j++
		}
	}
	return c
}

// OneHashJaccardSimple is the paper's §IV-D estimator Ĵ = |M¹_X∩M¹_Y|/k.
func OneHashJaccardSimple(a, b BottomK, k int) float64 {
	if k < 1 {
		return 0
	}
	return float64(OneHashCommon(a, b)) / float64(k)
}

// OneHashJaccard is the union-restricted bottom-k estimator: among the k
// smallest distinct hashes of the merged sketches (equivalently, the
// bottom-k sketch of X∪Y), count those present in both sketches and
// divide by the number inspected. It agrees with the hypergeometric model
// |M¹∩| ~ Hyper(|X∪Y|, |X∩Y|, k) exactly and degrades gracefully to the
// exact Jaccard when both sets fit in the sketch (d ≤ k), which matters
// for low-degree vertices.
func OneHashJaccard(a, b BottomK, k int) float64 {
	if k < 1 {
		return 0
	}
	i, j, taken, both := 0, 0, 0, 0
	for taken < k && (i < len(a.Hashes) || j < len(b.Hashes)) {
		switch {
		case j >= len(b.Hashes) || (i < len(a.Hashes) && a.Hashes[i] < b.Hashes[j]):
			i++
		case i >= len(a.Hashes) || b.Hashes[j] < a.Hashes[i]:
			j++
		default: // equal: in both sketches
			both++
			i++
			j++
		}
		taken++
	}
	if taken == 0 {
		return 0
	}
	return float64(both) / float64(taken)
}

// OneHashInter is the §IV-D intersection estimator with the
// union-restricted Jaccard.
func OneHashInter(a, b BottomK, k, sizeX, sizeY int) float64 {
	return InterFromJaccard(OneHashJaccard(a, b, k), sizeX, sizeY)
}

// OneHashInterSimple is the §IV-D estimator using the plain /k Jaccard.
func OneHashInterSimple(a, b BottomK, k, sizeX, sizeY int) float64 {
	return InterFromJaccard(OneHashJaccardSimple(a, b, k), sizeX, sizeY)
}

// CommonElems appends to out the element IDs present in both sketches
// (requires sketches built with keepElems); the sampled intersection that
// weighted similarity measures sum over.
func CommonElems(a, b BottomK, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a.Hashes) && j < len(b.Hashes) {
		switch {
		case a.Hashes[i] == b.Hashes[j]:
			if a.Elems != nil {
				out = append(out, a.Elems[i])
			}
			i++
			j++
		case a.Hashes[i] < b.Hashes[j]:
			i++
		default:
			j++
		}
	}
	return out
}
