// Package sketch implements the probabilistic set representations at the
// center of ProbGraph (§II-D, §IV, §IX): Bloom filters, the two MinHash
// variants (k-Hash and 1-Hash/bottom-k), K-Minimum-Values, and a
// HyperLogLog extension, together with all the |X|, |X∪Y| and |X∩Y|
// estimators the paper defines or compares against.
//
// The estimator arithmetic is exposed both as methods on sketch structs
// (for arbitrary sets, §IV's framing) and as standalone functions over
// raw sketch storage, which is what internal/core's flat per-vertex
// arrays call into.
package sketch

import (
	"math"

	"probgraph/internal/bitset"
	"probgraph/internal/hash"
)

// Bloom is a Bloom filter: an l-bit vector and b hash functions (§II-D).
// Construct with NewBloom; the zero value is not usable.
type Bloom struct {
	bits bitset.Bits
	fam  *hash.Family
	b    int
}

// NewBloom returns an empty Bloom filter with nbits bits (rounded up to a
// multiple of 64) and b hash functions drawn from the seed.
func NewBloom(nbits, b int, seed uint64) *Bloom {
	if nbits < bitset.WordBits {
		nbits = bitset.WordBits
	}
	if b < 1 {
		b = 1
	}
	return &Bloom{bits: bitset.New(nbits), fam: hash.NewFamily(seed, b), b: b}
}

// Add inserts x: sets the b bits h_1(x)..h_b(x).
func (f *Bloom) Add(x uint32) {
	AddToBits(f.bits, x, f.fam)
}

// AddToBits inserts x into a raw Bloom bit vector using every function of
// fam; the flat-storage construction path of internal/core.
func AddToBits(bits bitset.Bits, x uint32, fam *hash.Family) {
	n := bits.Len()
	for i := 0; i < fam.K(); i++ {
		bits.Set(hash.Range(fam.Hash(i, x), n))
	}
}

// Contains reports whether x may be in the set: true can be a false
// positive, false is always correct (no false negatives).
func (f *Bloom) Contains(x uint32) bool {
	return BitsContain(f.bits, x, f.fam)
}

// BitsContain is Contains over raw storage.
func BitsContain(bits bitset.Bits, x uint32, fam *hash.Family) bool {
	n := bits.Len()
	for i := 0; i < fam.K(); i++ {
		if !bits.Get(hash.Range(fam.Hash(i, x), n)) {
			return false
		}
	}
	return true
}

// Bits exposes the underlying bit vector (shared, not a copy).
func (f *Bloom) Bits() bitset.Bits { return f.bits }

// B returns the number of hash functions b.
func (f *Bloom) B() int { return f.b }

// SizeBits returns the filter size B_X in bits.
func (f *Bloom) SizeBits() int { return f.bits.Len() }

// Ones returns B_{X,1}, the number of set bits.
func (f *Bloom) Ones() int { return f.bits.Count() }

// --- single-set estimators ------------------------------------------------

// CardSwamidass evaluates Eq. (1), the Swamidass–Baldi size estimator
// |X|_S = -(B/b)·ln(1 - B₁/B), with the paper's divergence fix (§A-3):
// a saturated filter (B₁ = B) is treated as B₁ = B-1 so the estimator
// stays finite.
func CardSwamidass(ones, sizeBits, b int) float64 {
	if ones <= 0 {
		return 0
	}
	if ones >= sizeBits {
		ones = sizeBits - 1
	}
	B := float64(sizeBits)
	return -B / float64(b) * math.Log(1-float64(ones)/B)
}

// CardPapapetrou evaluates the alternative single-set estimator of
// Papapetrou et al. used as a comparison baseline in §VIII:
// |X| = -ln(1 - B₁/B) / (b·ln(1 - 1/B)).
func CardPapapetrou(ones, sizeBits, b int) float64 {
	if ones <= 0 {
		return 0
	}
	if ones >= sizeBits {
		ones = sizeBits - 1
	}
	B := float64(sizeBits)
	return math.Log(1-float64(ones)/B) / (float64(b) * math.Log(1-1/B))
}

// CardLinear evaluates the limiting estimator |X|_L = B₁/b (Eq. 20/21),
// the B→∞ simplification of Eq. (1).
func CardLinear(ones, b int) float64 {
	return float64(ones) / float64(b)
}

// EstimateCard applies Eq. (1) to this filter.
func (f *Bloom) EstimateCard() float64 {
	return CardSwamidass(f.Ones(), f.SizeBits(), f.b)
}

// --- intersection estimators ----------------------------------------------

// InterAND evaluates Eq. (2): the AND estimator applies Eq. (1) to the
// bitwise AND of the two filters, B_{X∩Y} ≈ B_X AND B_Y. The two filters
// must have equal size and share the same hash family.
func InterAND(a, b bitset.Bits, sizeBits, bHashes int) float64 {
	return CardSwamidass(bitset.AndCount(a, b), sizeBits, bHashes)
}

// InterL evaluates Eq. (4): the limiting estimator ones(AND)/b, i.e. the
// number of ones in the intersection filter rescaled by 1/b.
func InterL(a, b bitset.Bits, bHashes int) float64 {
	return CardLinear(bitset.AndCount(a, b), bHashes)
}

// InterOR evaluates Eq. (29), the Swamidass union-based estimator:
// |X∩Y|_OR = |X| + |Y| + (B/b)·ln(1 - ones(OR)/B). Exact set sizes are
// supplied by the caller (vertex degrees are free in graph mining).
func InterOR(a, b bitset.Bits, sizeBits, bHashes, sizeX, sizeY int) float64 {
	ones := bitset.OrCount(a, b)
	if ones >= sizeBits {
		ones = sizeBits - 1
	}
	B := float64(sizeBits)
	est := float64(sizeX) + float64(sizeY) + B/float64(bHashes)*math.Log(1-float64(ones)/B)
	if est < 0 {
		return 0
	}
	return est
}

// InterAND3 estimates |X∩Y∩Z| by applying Eq. (1) to the three-way AND;
// the 4-clique inner kernel (B_w AND B_{C3} with B_{C3} = B_u AND B_v).
func InterAND3(a, b, c bitset.Bits, sizeBits, bHashes int) float64 {
	return CardSwamidass(bitset.And3Count(a, b, c), sizeBits, bHashes)
}

// InterANDOf computes Eq. (2) for this filter against another.
func (f *Bloom) InterANDOf(g *Bloom) float64 {
	return InterAND(f.bits, g.bits, f.SizeBits(), f.b)
}

// InterLOf computes Eq. (4) for this filter against another.
func (f *Bloom) InterLOf(g *Bloom) float64 {
	return InterL(f.bits, g.bits, f.b)
}

// InterOROf computes Eq. (29); sizeX and sizeY are the exact set sizes.
func (f *Bloom) InterOROf(g *Bloom, sizeX, sizeY int) float64 {
	return InterOR(f.bits, g.bits, f.SizeBits(), f.b, sizeX, sizeY)
}

// FalsePositiveRate returns the classic approximation of the false
// positive probability p_f = (1 - e^{-b·card/B})^b for a filter of this
// geometry holding card elements.
func FalsePositiveRate(card, sizeBits, b int) float64 {
	if sizeBits <= 0 {
		return 1
	}
	inner := 1 - math.Exp(-float64(b)*float64(card)/float64(sizeBits))
	return math.Pow(inner, float64(b))
}
