package sketch

import (
	"math"
	"math/bits"
)

// HLL is a HyperLogLog cardinality sketch: 2^p single-byte registers
// holding the maximum leading-zero rank observed per substream. The
// paper names HyperLogLog as the natural next representation to plug
// into ProbGraph (§X); this implementation provides the same estimator
// surface as the other sketches: Card, Union (register-wise max), and
// intersection by inclusion–exclusion.
type HLL struct {
	Reg []uint8
	P   uint8
}

// NewHLL returns an empty HyperLogLog with 2^p registers (4 <= p <= 16).
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HLL{Reg: make([]uint8, 1<<p), P: p}
}

// Add inserts a 64-bit hash of an element: the top p bits select the
// register, the rank of the remainder updates it.
func (s *HLL) Add(h uint64) {
	idx := h >> (64 - s.P)
	rest := h<<s.P | 1<<(uint(s.P)-1) // guarantee termination of rank scan
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > s.Reg[idx] {
		s.Reg[idx] = rank
	}
}

// alpha is the standard bias-correction constant.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Card returns the HyperLogLog cardinality estimate with the standard
// small-range (linear counting) correction.
func (s *HLL) Card() float64 {
	m := len(s.Reg)
	var sum float64
	zeros := 0
	for _, r := range s.Reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha(m) * float64(m) * float64(m) / sum
	if e <= 2.5*float64(m) && zeros > 0 {
		return float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return e
}

// UnionHLL returns the register-wise max of two sketches, the exact
// sketch of the union.
func UnionHLL(a, b *HLL) *HLL {
	u := &HLL{Reg: make([]uint8, len(a.Reg)), P: a.P}
	for i := range u.Reg {
		u.Reg[i] = max(a.Reg[i], b.Reg[i])
	}
	return u
}

// InterHLL estimates |X∩Y| by inclusion–exclusion with exact sizes,
// clamped to the feasible range, mirroring InterKMV.
func InterHLL(a, b *HLL, sizeX, sizeY int) float64 {
	est := float64(sizeX+sizeY) - UnionHLL(a, b).Card()
	if est < 0 {
		return 0
	}
	if lim := float64(min(sizeX, sizeY)); est > lim {
		return lim
	}
	return est
}
