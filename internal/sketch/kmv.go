package sketch

import (
	"sort"

	"probgraph/internal/hash"
)

// KMV is the K-Minimum-Values sketch of §IX: the k smallest hash values
// of a set under a single hash function mapping to (0,1], stored sorted
// ascending as raw 64-bit hashes (converted to the unit interval only
// inside the estimators). Unlike the 1-Hash MinHash, the sketch stores
// hashes, not elements.
type KMV struct {
	Hashes []uint64
}

// NewKMV builds the KMV sketch of the element set with the given hash
// function and size bound k, via bounded-heap selection (O(d log k)).
func NewKMV(elems []uint32, k int, fn func(uint32) uint64) KMV {
	if k < 1 {
		k = 1
	}
	hs, _ := bottomKSelect(elems, k, fn, make([]uint64, 0, min(k, len(elems))), nil)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	// Drop duplicate hash values (distinct-value semantics).
	w := 0
	for i, h := range hs {
		if i == 0 || h != hs[i-1] {
			hs[w] = h
			w++
		}
	}
	return KMV{Hashes: hs[:w]}
}

// Card estimates |X| via Eq. (39): (k-1)/max(K_X) with hashes read as
// points in (0,1]. When the sketch is not full (|X| < k), every element
// is present and the exact count is returned.
func (s KMV) Card(k int) float64 {
	n := len(s.Hashes)
	if n == 0 {
		return 0
	}
	if n < k {
		return float64(n)
	}
	return float64(k-1) / hash.Unit(s.Hashes[n-1])
}

// Union returns the KMV sketch of X ∪ Y: the k smallest distinct hashes
// of the merged sketches (§IX).
func Union(a, b KMV, k int) KMV {
	if k < 1 {
		k = 1
	}
	out := make([]uint64, 0, k)
	i, j := 0, 0
	for len(out) < k && (i < len(a.Hashes) || j < len(b.Hashes)) {
		switch {
		case j >= len(b.Hashes) || (i < len(a.Hashes) && a.Hashes[i] < b.Hashes[j]):
			out = append(out, a.Hashes[i])
			i++
		case i >= len(a.Hashes) || b.Hashes[j] < a.Hashes[i]:
			out = append(out, b.Hashes[j])
			j++
		default:
			out = append(out, a.Hashes[i])
			i++
			j++
		}
	}
	return KMV{Hashes: out}
}

// InterKMV estimates |X∩Y| by inclusion–exclusion with the exact set
// sizes (Eq. 41): |X| + |Y| - |X∪Y|_KMV, clamped to the feasible range
// [0, min(|X|,|Y|)].
func InterKMV(a, b KMV, k, sizeX, sizeY int) float64 {
	u := Union(a, b, k)
	// If the union sketch is not full, it enumerates X∪Y exactly.
	est := float64(sizeX+sizeY) - u.Card(k)
	if est < 0 {
		return 0
	}
	if lim := float64(min(sizeX, sizeY)); est > lim {
		return lim
	}
	return est
}

// InterKMVEstimatedSizes is Eq. (40): the variant that also estimates
// |X| and |Y| from the individual sketches instead of using exact sizes.
func InterKMVEstimatedSizes(a, b KMV, k int) float64 {
	u := Union(a, b, k)
	est := a.Card(k) + b.Card(k) - u.Card(k)
	if est < 0 {
		return 0
	}
	return est
}
