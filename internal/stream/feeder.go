package stream

import (
	"sync"
	"time"

	"probgraph/internal/graph"
	"probgraph/internal/serve"
)

// Feeder wires a DynamicGraph to a serving Engine: each ingested batch
// is applied to the graph (incremental sketch maintenance), frozen into
// a new epoch, and hot-swapped into the engine — the serve.Ingestor
// behind POST /v1/ingest. Batches are serialized so epochs publish in
// apply order.
type Feeder struct {
	mu sync.Mutex
	d  *DynamicGraph
	e  *serve.Engine
}

// NewFeeder returns a Feeder; attach it with e.EnableIngest(f).
func NewFeeder(d *DynamicGraph, e *serve.Engine) *Feeder {
	return &Feeder{d: d, e: e}
}

// Ingest implements serve.Ingestor: apply → freeze (+persist) → swap.
// A persist-hook failure does not fail the batch — the epoch is live in
// memory — but it is reported in the result, so the HTTP layer's stats
// and the ingesting client both see that durability lagged.
func (f *Feeder) Ingest(add, del []graph.Edge) (serve.IngestResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t0 := time.Now()
	st, err := f.d.ApplyBatch(add, del)
	if err != nil {
		return serve.IngestResult{}, err
	}
	snap, ps, err := f.d.FreezePersist()
	if err != nil {
		return serve.IngestResult{}, err
	}
	if _, err := f.e.Swap(snap); err != nil {
		return serve.IngestResult{}, err
	}
	res := serve.IngestResult{
		Epoch:     snap.Epoch,
		Vertices:  snap.G.NumVertices(),
		Edges:     snap.G.NumEdges(),
		Added:     st.Added,
		Removed:   st.Removed,
		BuildMS:   float64(time.Since(t0)) / float64(time.Millisecond),
		Persisted: ps.Attempted && ps.Err == nil,
	}
	if ps.Err != nil {
		res.PersistErr = ps.Err.Error()
	}
	return res, nil
}
