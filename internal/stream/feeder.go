package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/serve"
)

// Feeder wires a DynamicGraph to a serving Engine: each ingested batch
// is applied to the graph (incremental sketch maintenance), frozen into
// a new epoch, and hot-swapped into the engine — the serve.Ingestor
// behind POST /v1/ingest. Batches are serialized so epochs publish in
// apply order.
type Feeder struct {
	mu sync.Mutex
	d  *DynamicGraph
	e  *serve.Engine

	tracer atomic.Pointer[obs.Tracer]

	batches     atomic.Int64
	lastSwapNS  atomic.Int64 // unix nanos of the last published epoch
	lastBuildNS atomic.Int64 // apply→swap latency of the last batch
}

// NewFeeder returns a Feeder; attach it with e.EnableIngest(f).
func NewFeeder(d *DynamicGraph, e *serve.Engine) *Feeder {
	return &Feeder{d: d, e: e}
}

// SetTracer attaches a span tracer: every subsequent Ingest emits an
// "ingest" root span with apply/freeze/persist/swap children, journaled
// by the tracer when the batch exceeds its slow threshold.
func (f *Feeder) SetTracer(t *obs.Tracer) { f.tracer.Store(t) }

// RegisterMetrics exposes the feeder's ingest-lag view: batches
// published, seconds since the last published epoch (the serving
// staleness a reader of this feed observes), and the last batch's
// apply→swap build time.
func (f *Feeder) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("probgraph_stream_ingest_batches_total",
		"Batches ingested and published by the feeder.",
		func() float64 { return float64(f.batches.Load()) })
	r.GaugeFunc("probgraph_stream_ingest_lag_seconds",
		"Seconds since the feeder last published an epoch; -1 before the first.",
		func() float64 {
			last := f.lastSwapNS.Load()
			if last == 0 {
				return -1
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	r.GaugeFunc("probgraph_stream_last_build_seconds",
		"Apply→freeze→swap latency of the most recent ingested batch.",
		func() float64 { return float64(f.lastBuildNS.Load()) / float64(time.Second) })
}

// Ingest implements serve.Ingestor: apply → freeze (+persist) → swap.
// A persist-hook failure does not fail the batch — the epoch is live in
// memory — but it is reported in the result, so the HTTP layer's stats
// and the ingesting client both see that durability lagged.
func (f *Feeder) Ingest(add, del []graph.Edge) (serve.IngestResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ctx := context.Background()
	if t := f.tracer.Load(); t != nil {
		ctx = obs.WithTracer(ctx, t)
	}
	ctx, sp := obs.StartSpan(ctx, "ingest")
	defer sp.End()
	t0 := time.Now()
	_, asp := obs.StartSpan(ctx, "ingest/apply")
	st, err := f.d.ApplyBatch(add, del)
	asp.End()
	if err != nil {
		sp.Attr("error", err.Error())
		return serve.IngestResult{}, err
	}
	snap, ps, err := f.d.FreezePersistCtx(ctx)
	if err != nil {
		sp.Attr("error", err.Error())
		return serve.IngestResult{}, err
	}
	_, ssp := obs.StartSpan(ctx, "ingest/swap")
	_, err = f.e.Swap(snap)
	ssp.End()
	if err != nil {
		sp.Attr("error", err.Error())
		return serve.IngestResult{}, err
	}
	elapsed := time.Since(t0)
	f.batches.Add(1)
	f.lastSwapNS.Store(time.Now().UnixNano())
	f.lastBuildNS.Store(int64(elapsed))
	res := serve.IngestResult{
		Epoch:     snap.Epoch,
		Vertices:  snap.G.NumVertices(),
		Edges:     snap.G.NumEdges(),
		Added:     st.Added,
		Removed:   st.Removed,
		BuildMS:   float64(elapsed) / float64(time.Millisecond),
		Persisted: ps.Attempted && ps.Err == nil,
	}
	if ps.Err != nil {
		res.PersistErr = ps.Err.Error()
	}
	return res, nil
}
