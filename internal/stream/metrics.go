package stream

import "probgraph/internal/obs"

// RegisterMetrics exposes the DynamicGraph's mutation counters, shape
// gauges, freeze latency and the memory of every maintained sketch set
// on an obs.Registry. Everything is func-backed against the same state
// Stats() reads, so /metrics and Stats can never disagree. The
// maintained PGs are stable pointers for the DynamicGraph's lifetime,
// so their memory gauges track growth and re-sketching in place.
func (d *DynamicGraph) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("probgraph_stream_batches_total",
		"Mutation batches applied.",
		func() float64 { return float64(d.Stats().Batches) })
	r.CounterFunc("probgraph_stream_edges_added_total",
		"Edge insertions that took effect.",
		func() float64 { return float64(d.Stats().EdgesAdded) })
	r.CounterFunc("probgraph_stream_edges_removed_total",
		"Edge deletions that took effect.",
		func() float64 { return float64(d.Stats().EdgesRemoved) })
	r.CounterFunc("probgraph_stream_rows_resketched_total",
		"Vertex rows rebuilt by the deletion path.",
		func() float64 { return float64(d.Stats().RowsResketched) })
	r.CounterFunc("probgraph_stream_vertices_grown_total",
		"New vertices introduced by ingested batches.",
		func() float64 { return float64(d.Stats().VerticesGrown) })
	r.GaugeFunc("probgraph_stream_vertices",
		"Current (unfrozen) vertex count.",
		func() float64 { return float64(d.NumVertices()) })
	r.GaugeFunc("probgraph_stream_edges",
		"Current (unfrozen) undirected edge count.",
		func() float64 { return float64(d.NumEdges()) })
	r.GaugeFunc("probgraph_stream_epoch",
		"Latest frozen epoch; 0 before the first freeze.",
		func() float64 {
			if snap := d.frozen.Load(); snap != nil {
				return float64(snap.Epoch)
			}
			return 0
		})
	r.CounterFunc("probgraph_stream_persists_total",
		"Durable-epoch persist outcomes, by result.",
		func() float64 { return float64(d.Stats().Persists) },
		obs.L("result", "ok"))
	r.CounterFunc("probgraph_stream_persists_total",
		"Durable-epoch persist outcomes, by result.",
		func() float64 { return float64(d.Stats().PersistErrors) },
		obs.L("result", "error"))
	r.RegisterHistogram("probgraph_stream_freeze_seconds",
		"Freeze latency: CSR + orientation + sketch clones per epoch.",
		d.freezeHist)
	for _, k := range d.kinds {
		d.pgs[k].RegisterMemoryGauges(r, obs.L("kind", k.String()))
	}
}
