package stream

import (
	"context"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/serve"
	"probgraph/internal/session"
)

// testSplit deterministically splits a graph's edges into an initial
// prefix and a streamed suffix.
func testSplit(g *graph.Graph, frac float64, seed int64) (initial *graph.Graph, streamed []graph.Edge) {
	edges := g.EdgeList()
	rng := mrand.New(mrand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	k := int(frac * float64(len(edges)))
	if k < 1 {
		k = 1
	}
	initial, err := graph.FromEdges(g.NumVertices(), edges[:k])
	if err != nil {
		panic(err)
	}
	return initial, edges[k:]
}

// requirePGEqual asserts two PGs are bit-identical: same sizes and the
// same sketch row contents for their representation.
func requirePGEqual(t *testing.T, got, want *core.PG, label string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: n=%d, want %d", label, got.NumVertices(), want.NumVertices())
	}
	n := got.NumVertices()
	for v := 0; v < n; v++ {
		u := uint32(v)
		if got.SetSize(u) != want.SetSize(u) {
			t.Fatalf("%s: size[%d]=%d, want %d", label, v, got.SetSize(u), want.SetSize(u))
		}
		switch got.Cfg.Kind {
		case core.BF:
			a, b := got.BloomRow(u), want.BloomRow(u)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: bloom row %d differs at word %d: %x vs %x", label, v, i, a[i], b[i])
				}
			}
		case core.KHash:
			a, b := got.KHashRow(u), want.KHashRow(u)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: khash row %d differs at slot %d", label, v, i)
				}
			}
		case core.OneHash, core.KMV:
			a, b := got.BottomKRow(u), want.BottomKRow(u)
			if len(a.Hashes) != len(b.Hashes) {
				t.Fatalf("%s: bottomk row %d len %d, want %d", label, v, len(a.Hashes), len(b.Hashes))
			}
			for i := range a.Hashes {
				if a.Hashes[i] != b.Hashes[i] {
					t.Fatalf("%s: bottomk row %d differs at %d", label, v, i)
				}
			}
			if (a.Elems == nil) != (b.Elems == nil) {
				t.Fatalf("%s: row %d elems presence differs", label, v)
			}
			for i := range a.Elems {
				if a.Elems[i] != b.Elems[i] {
					t.Fatalf("%s: row %d elems differ at %d", label, v, i)
				}
			}
		case core.HLL:
			a, b := got.HLLRow(u), want.HLLRow(u)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: hll row %d differs at register %d", label, v, i)
				}
			}
		}
	}
}

// streamConfigs enumerates the representations under test.
func streamConfigs() []serve.SnapshotConfig {
	return []serve.SnapshotConfig{
		{Kinds: []core.Kind{core.BF}, Seed: 42},
		{Kinds: []core.Kind{core.KHash}, Seed: 42},
		{Kinds: []core.Kind{core.OneHash}, Seed: 42},
		{Kinds: []core.Kind{core.OneHash}, Seed: 42, StoreElems: true},
		{Kinds: []core.Kind{core.KMV}, Seed: 42},
		{Kinds: []core.Kind{core.HLL}, Seed: 42},
	}
}

// TestIncrementalBitIdentity: after streaming a suffix of the edges in
// batches, every maintained sketch must be bit-identical to a
// from-scratch build of the final graph with the same pinned geometry —
// the correctness contract that carries the paper's whole accuracy
// machinery (Thm VII.1 included) over to the streaming layer unchanged.
func TestIncrementalBitIdentity(t *testing.T) {
	final := graph.Kronecker(9, 8, 7)
	initial, streamed := testSplit(final, 0.7, 1)
	for _, cfg := range streamConfigs() {
		label := cfg.Kinds[0].String()
		if cfg.StoreElems {
			label += "+elems"
		}
		d, err := New(initial, cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", label, err)
		}
		for i := 0; i < len(streamed); i += 97 {
			end := min(i+97, len(streamed))
			if _, err := d.ApplyBatch(streamed[i:end], nil); err != nil {
				t.Fatalf("%s: ApplyBatch: %v", label, err)
			}
		}
		kind := cfg.Kinds[0]
		got := d.pgs[kind]
		bulk, err := core.Build(final, got.Cfg) // same resolved geometry
		if err != nil {
			t.Fatalf("%s: bulk build: %v", label, err)
		}
		requirePGEqual(t, got, bulk, label)
	}
}

// TestBatchSplitInvariance: the maintained sketch state must not depend
// on how the stream is chopped into batches (merge associativity of the
// underlying set representations).
func TestBatchSplitInvariance(t *testing.T) {
	final := graph.Kronecker(8, 8, 11)
	initial, streamed := testSplit(final, 0.5, 2)
	cfg := serve.SnapshotConfig{Kinds: []core.Kind{core.BF, core.OneHash}, Seed: 9}
	var ref *DynamicGraph
	for _, chunk := range []int{1, 13, len(streamed)} {
		d, err := New(initial, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(streamed); i += chunk {
			end := min(i+chunk, len(streamed))
			if _, err := d.ApplyBatch(streamed[i:end], nil); err != nil {
				t.Fatal(err)
			}
		}
		if ref == nil {
			ref = d
			continue
		}
		for _, k := range d.kinds {
			requirePGEqual(t, d.pgs[k], ref.pgs[k], fmt.Sprintf("chunk=%d kind=%v", chunk, k))
		}
	}
}

// TestDeletions: deletions re-sketch only the touched rows, and the
// result matches a from-scratch build of the post-deletion graph for
// every representation. A delete/re-add round trip must also restore
// the original sketch exactly.
func TestDeletions(t *testing.T) {
	final := graph.Kronecker(8, 8, 3)
	edges := final.EdgeList()
	rng := mrand.New(mrand.NewSource(5))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	drop := edges[:len(edges)/10]
	kept := edges[len(edges)/10:]
	reduced, err := graph.FromEdges(final.NumVertices(), kept)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range streamConfigs() {
		label := cfg.Kinds[0].String()
		if cfg.StoreElems {
			label += "+elems"
		}
		d, err := New(final, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := d.ApplyBatch(nil, drop)
		if err != nil {
			t.Fatal(err)
		}
		if st.Removed != len(drop) {
			t.Fatalf("%s: removed %d, want %d", label, st.Removed, len(drop))
		}
		if st.Resketched == 0 {
			t.Fatalf("%s: deletions must re-sketch affected rows", label)
		}
		kind := cfg.Kinds[0]
		bulk, err := core.Build(reduced, d.pgs[kind].Cfg)
		if err != nil {
			t.Fatal(err)
		}
		requirePGEqual(t, d.pgs[kind], bulk, label+" after delete")

		// Re-adding the dropped edges restores the original graph's state.
		if _, err := d.ApplyBatch(drop, nil); err != nil {
			t.Fatal(err)
		}
		orig, err := core.Build(final, d.pgs[kind].Cfg)
		if err != nil {
			t.Fatal(err)
		}
		requirePGEqual(t, d.pgs[kind], orig, label+" after re-add")
	}
}

// TestAddDeleteSameBatch: a batch adding and deleting the same edge nets
// to "absent" (additions apply first, deletions win).
func TestAddDeleteSameBatch(t *testing.T) {
	g := graph.Complete(4)
	d, err := New(g, serve.SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := graph.Edge{U: 0, V: 5} // new vertex too
	st, err := d.ApplyBatch([]graph.Edge{e}, []graph.Edge{e})
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 || st.Removed != 1 {
		t.Fatalf("stats = %+v, want one add and one remove", st)
	}
	if d.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count drifted: %d vs %d", d.NumEdges(), g.NumEdges())
	}
	snapG, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if snapG.HasEdge(0, 5) {
		t.Fatal("edge added and deleted in one batch must be absent")
	}
}

// TestGrowthCap: a batch naming an absurd vertex ID must be rejected
// whole (dense IDs mean allocating every intermediate row — one tiny
// malicious ingest body must not OOM the server), leaving state intact.
func TestGrowthCap(t *testing.T) {
	g := graph.Kronecker(7, 6, 1)
	d, err := New(g, serve.SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, m := d.NumVertices(), d.NumEdges()
	_, err = d.ApplyBatch([]graph.Edge{{U: 0, V: 1<<32 - 1}}, nil)
	if err == nil {
		t.Fatal("batch beyond MaxGrow must be rejected")
	}
	if d.NumVertices() != n || d.NumEdges() != m {
		t.Fatalf("rejected batch mutated state: n %d→%d, m %d→%d", n, d.NumVertices(), m, d.NumEdges())
	}
	// Self loops never grow the universe, even with huge IDs under the cap
	// check (they are dropped before growth accounting).
	huge := uint32(1<<31 - 1)
	if _, err := d.ApplyBatch([]graph.Edge{{U: huge, V: huge}}, nil); err != nil {
		t.Fatalf("self loop must not trip the growth cap: %v", err)
	}
	if d.NumVertices() != n {
		t.Fatal("self loop grew the universe")
	}
	// Raising the cap admits the growth.
	d.MaxGrow = 1 << 30
	if _, err := d.ApplyBatch([]graph.Edge{{U: 0, V: uint32(n) + 100}}, nil); err != nil {
		t.Fatalf("growth within a raised cap: %v", err)
	}
	if d.NumVertices() != n+101 {
		t.Fatalf("n = %d after growth, want %d", d.NumVertices(), n+101)
	}
}

// TestGrowth: edges to unseen vertex IDs grow the universe; sketches of
// the grown graph match a from-scratch build.
func TestGrowth(t *testing.T) {
	base := graph.Kronecker(7, 6, 13)
	n := base.NumVertices()
	var extra []graph.Edge
	rng := mrand.New(mrand.NewSource(17))
	for i := 0; i < 64; i++ {
		extra = append(extra, graph.Edge{
			U: uint32(rng.Intn(n)),
			V: uint32(n + rng.Intn(32)),
		})
	}
	for _, cfg := range streamConfigs() {
		kind := cfg.Kinds[0]
		d, err := New(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := d.ApplyBatch(extra, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Grown == 0 {
			t.Fatal("expected vertex growth")
		}
		finalEdges := append(base.EdgeList(), extra...)
		final, err := graph.FromEdges(d.NumVertices(), finalEdges)
		if err != nil {
			t.Fatal(err)
		}
		bulk, err := core.Build(final, d.pgs[kind].Cfg)
		if err != nil {
			t.Fatal(err)
		}
		requirePGEqual(t, d.pgs[kind], bulk, "grown "+kind.String())
	}
}

// TestFreezeValidCSR: frozen graphs satisfy every CSR invariant and
// reflect exactly the applied mutations.
func TestFreezeValidCSR(t *testing.T) {
	final := graph.Kronecker(8, 8, 19)
	initial, streamed := testSplit(final, 0.6, 3)
	d, err := New(initial, serve.SnapshotConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(streamed, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.G.Validate(); err != nil {
		t.Fatalf("frozen CSR invalid: %v", err)
	}
	if snap.G.NumEdges() != final.NumEdges() || snap.G.NumVertices() != final.NumVertices() {
		t.Fatalf("frozen shape (%d, %d) != final (%d, %d)",
			snap.G.NumVertices(), snap.G.NumEdges(), final.NumVertices(), final.NumEdges())
	}
	for v := 0; v < final.NumVertices(); v++ {
		a, b := snap.G.Neighbors(uint32(v)), final.Neighbors(uint32(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree %d, want %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

// TestFrozenSnapshotAnswers: a frozen epoch answers through the serving
// engine with values bit-identical to a statically-opened snapshot of
// the same graph (no query pays a sketch rebuild, and the installed
// incremental sketches are the ones consulted).
func TestFrozenSnapshotAnswers(t *testing.T) {
	final := graph.Kronecker(8, 8, 23)
	initial, streamed := testSplit(final, 0.7, 6)
	cfg := serve.SnapshotConfig{Kinds: []core.Kind{core.BF}, Seed: 42}
	d, err := New(initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(streamed, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	// The static reference: a from-scratch sketch build of the final
	// graph with the DynamicGraph's pinned geometry (the budget-derived
	// Bloom size follows the *initial* CSR by design, so a plain Open of
	// the final graph would size its filters differently).
	bulk, err := core.Build(snap.G, d.pgs[core.BF].Cfg)
	if err != nil {
		t.Fatal(err)
	}
	static, err := serve.OpenWith(snap.G, cfg, nil, map[core.Kind]*core.PG{core.BF: bulk})
	if err != nil {
		t.Fatal(err)
	}
	e1 := serve.New(snap, serve.Options{Workers: 2})
	defer e1.Close()
	e2 := serve.New(static, serve.Options{Workers: 2})
	defer e2.Close()
	for _, q := range []serve.Query{
		{Op: serve.OpTC},
		{Op: serve.OpLocalTC, U: 3},
		{Op: serve.OpSimilarity, U: 1, V: 2},
		{Op: serve.OpTopK, U: 5, K: 4},
	} {
		r1, err1 := e1.Query(q)
		r2, err2 := e2.Query(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("op %v: errs %v, %v", q.Op, err1, err2)
		}
		if r1.Value != r2.Value || len(r1.TopK) != len(r2.TopK) {
			t.Fatalf("op %v: frozen answer %+v != static answer %+v", q.Op, r1, r2)
		}
	}
}

// TestFeederHotSwap: ingesting through the Feeder under concurrent query
// load must advance epochs with zero query errors — the hot-swap
// contract (in-flight queries finish on their captured epoch, new ones
// see the new epoch).
func TestFeederHotSwap(t *testing.T) {
	final := graph.Kronecker(8, 8, 29)
	initial, streamed := testSplit(final, 0.5, 8)
	d, err := New(initial, serve.SnapshotConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap0, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.New(snap0, serve.Options{Workers: 2})
	defer eng.Close()
	feeder := NewFeeder(d, eng)
	eng.EnableIngest(feeder)

	stop := make(chan struct{})
	var qerrs, queries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(w)))
			n := uint32(initial.NumVertices())
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := serve.Query{Op: serve.OpSimilarity, U: rng.Uint32() % n, V: rng.Uint32() % n}
				if rng.Intn(4) == 0 {
					q = serve.Query{Op: serve.OpLocalTC, U: rng.Uint32() % n}
				}
				if _, err := eng.Query(q); err != nil {
					qerrs.Add(1)
				}
				queries.Add(1)
			}
		}(w)
	}

	const batches = 8
	chunk := (len(streamed) + batches - 1) / batches
	var lastEpoch uint64
	for i := 0; i < len(streamed); i += chunk {
		end := min(i+chunk, len(streamed))
		res, err := feeder.Ingest(streamed[i:end], nil)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if res.Epoch <= lastEpoch {
			t.Fatalf("epoch did not advance: %d after %d", res.Epoch, lastEpoch)
		}
		lastEpoch = res.Epoch
	}
	close(stop)
	wg.Wait()

	if qerrs.Load() != 0 {
		t.Fatalf("%d/%d queries errored across hot-swaps", qerrs.Load(), queries.Load())
	}
	st := eng.Stats()
	if st.Epoch != lastEpoch {
		t.Fatalf("engine serves epoch %d, want %d", st.Epoch, lastEpoch)
	}
	if st.Swaps == 0 {
		t.Fatal("no swaps recorded")
	}
	// The final epoch answers like a from-scratch sketch build of the
	// final graph under the DynamicGraph's pinned geometry.
	bulk, err := core.Build(eng.Snapshot().G, d.pgs[core.BF].Cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serve.OpenWith(eng.Snapshot().G, serve.SnapshotConfig{Seed: 1}, nil,
		map[core.Kind]*core.PG{core.BF: bulk})
	if err != nil {
		t.Fatal(err)
	}
	we := serve.New(want, serve.Options{Workers: 2})
	defer we.Close()
	r1, err1 := eng.Query(serve.Query{Op: serve.OpTC})
	r2, err2 := we.Query(serve.Query{Op: serve.OpTC})
	if err1 != nil || err2 != nil || r1.Value != r2.Value {
		t.Fatalf("post-swap TC %v (%v) != static TC %v (%v)", r1.Value, err1, r2.Value, err2)
	}
}

// TestConcurrentFreezeDuringIngest hammers ApplyBatch, Freeze and Stats
// from concurrent goroutines; run under -race this is the data-race
// certificate for the RWMutex + clone design. Every frozen snapshot must
// be a valid CSR at some batch boundary.
func TestConcurrentFreezeDuringIngest(t *testing.T) {
	final := graph.Kronecker(8, 8, 31)
	initial, streamed := testSplit(final, 0.4, 12)
	d, err := New(initial, serve.SnapshotConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(stop)
		for i := 0; i < len(streamed); i += 64 {
			end := min(i+64, len(streamed))
			if _, err := d.ApplyBatch(streamed[i:end], nil); err != nil {
				t.Errorf("ApplyBatch: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // freezers + readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := d.Freeze()
				if err != nil {
					t.Errorf("Freeze: %v", err)
					return
				}
				if err := snap.G.Validate(); err != nil {
					t.Errorf("mid-ingest freeze produced invalid CSR: %v", err)
					return
				}
				_ = d.Stats()
			}
		}()
	}
	wg.Wait()
	// After the dust settles the final freeze matches the final graph.
	snap, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if snap.G.NumEdges() != final.NumEdges() {
		t.Fatalf("final frozen edges %d, want %d", snap.G.NumEdges(), final.NumEdges())
	}
}

// TestSessionRefresh: a Session with a dynamic source follows epochs —
// unchanged source returns the receiver, a new epoch returns a Session
// over the new graph that reuses the installed sketches.
func TestSessionRefresh(t *testing.T) {
	final := graph.Kronecker(8, 8, 37)
	initial, streamed := testSplit(final, 0.6, 14)
	d, err := New(initial, serve.SnapshotConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g0, err := d.Graph() // freezes epoch 1
	if err != nil {
		t.Fatal(err)
	}
	sess, err := session.New(g0, session.WithDynamic(d.SessionSource()), session.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	same, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if same != sess {
		t.Fatal("Refresh with no new epoch must return the receiver")
	}
	if _, err := d.ApplyBatch(streamed, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Freeze(); err != nil {
		t.Fatal(err)
	}
	fresh, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if fresh == sess {
		t.Fatal("Refresh after a new epoch must rebind")
	}
	if fresh.Graph().NumEdges() != final.NumEdges() {
		t.Fatalf("refreshed graph has %d edges, want %d", fresh.Graph().NumEdges(), final.NumEdges())
	}
	res, err := fresh.Run(context.Background(), session.TC{Mode: session.Sketched})
	if err != nil {
		t.Fatal(err)
	}
	// A second run must hit the installed sketch cache and agree exactly.
	res2, err := fresh.Run(context.Background(), session.TC{Mode: session.Sketched})
	if err != nil || res.Value != res2.Value {
		t.Fatalf("refreshed session TC unstable: %v vs %v (%v)", res.Value, res2.Value, err)
	}
	// Refresh keeps working from the refreshed session.
	again, err := fresh.Refresh()
	if err != nil || again != fresh {
		t.Fatalf("second Refresh: %v, %v", again, err)
	}
}
