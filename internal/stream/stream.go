// Package stream implements streaming graph updates for ProbGraph: a
// DynamicGraph accepts batched edge insertions and deletions and
// incrementally maintains one per-vertex sketch set per configured
// representation, exploiting the property at the center of the paper —
// probabilistic set representations are element-wise insertable and
// mergeable — so an edge arrival costs a few hash evaluations instead of
// a whole-graph re-sketch.
//
// Epochs are the unit of visibility. Mutations accumulate invisibly in
// the DynamicGraph; Freeze materializes the current state as an
// immutable serve.Snapshot (CSR graph + orientation + cloned sketches),
// which serve.Engine.Swap publishes atomically under live query load.
// The epoch-keyed result cache invalidates naturally, and in-flight
// queries finish on the epoch they started on.
//
// Mutation semantics:
//
//   - Insertions are incremental for every representation: Bloom filters
//     OR in the new element's bits, k-Hash signatures take per-slot
//     minima, 1-Hash/KMV sketches insert into the sorted bottom-k
//     prefix, HLL takes register maxima. All of these are
//     order-independent, so the maintained sketch is bit-identical to a
//     from-scratch build of the final neighborhood (for KMV: up to
//     64-bit hash collisions between distinct neighbors, where the bulk
//     path's truncate-then-dedup can keep one fewer slot).
//   - Deletions have no element-wise form on any of these sketches
//     (Bloom bits and HLL registers are shared between elements), so a
//     deletion re-sketches only the two affected endpoint rows from
//     their remaining neighbors — O(d) per touched vertex, amortized per
//     batch, never a whole-graph rebuild.
//   - Within one batch, additions are applied before deletions, so a
//     batch that both adds and deletes the same edge nets to "absent".
//   - Endpoints beyond the current vertex count grow the graph; new
//     vertices start with empty neighborhoods and empty sketch rows.
//
// Sketch row geometry (Bloom filter size, MinHash k) is pinned when the
// DynamicGraph is created, derived from the initial graph's storage
// budget; it does not drift as the graph grows. The relative-memory
// accounting of each frozen epoch is restated against that epoch's CSR
// size.
package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/serve"
	"probgraph/internal/session"
)

// DefaultMaxGrow bounds how many new vertices one batch may introduce.
// Vertex IDs are dense indices: an edge naming vertex 4e9 on a 1k-vertex
// graph would force allocation of every intermediate row, so a single
// tiny (or malicious) /v1/ingest body could otherwise OOM the server.
const DefaultMaxGrow = 1 << 20

// DynamicGraph is a mutable graph with incrementally-maintained
// per-vertex sketches. All methods are safe for concurrent use:
// ApplyBatch serializes writers, Freeze snapshots under a read lock, so
// freezing during ingest sees a consistent batch boundary.
type DynamicGraph struct {
	cfg   serve.SnapshotConfig
	kinds []core.Kind

	// MaxGrow caps the vertex-universe growth a single batch may cause
	// (default DefaultMaxGrow; set before serving traffic). Batches whose
	// endpoints exceed the cap are rejected whole, never half-applied.
	MaxGrow int

	mu  sync.RWMutex
	adj [][]uint32 // sorted, duplicate-free neighbor lists
	m   int64      // undirected edge count

	pgs map[core.Kind]*core.PG // maintained full-neighborhood sketches

	batches, added, removed, resketched, grown int64

	frozen atomic.Pointer[serve.Snapshot] // latest completed Freeze

	// freezeHist times the freeze (CSR + orientation + clone) path; it
	// backs the probgraph_stream_freeze_seconds metric.
	freezeHist *obs.Hist

	// Durable-epoch state: an optional hook run after every successful
	// Freeze (see SetPersist). pmu serializes persists and orders them by
	// epoch, so a slow write of an old epoch can never clobber a newer
	// one on disk.
	pmu            sync.Mutex
	persistFn      func(*serve.Snapshot) error
	persistedEpoch uint64
	persists       int64
	persistErrs    int64
	lastPersistErr string
}

// BatchStats reports what one ApplyBatch changed.
type BatchStats struct {
	// Added and Removed count the edges that actually took effect
	// (self loops, duplicates and absent deletions are skipped).
	Added, Removed int
	// Resketched counts the vertex rows rebuilt by the deletion path.
	Resketched int
	// Grown is how many new vertices the batch introduced.
	Grown int
}

// Stats is the DynamicGraph's cumulative observable state.
type Stats struct {
	Vertices       int
	Edges          int64
	Batches        int64
	EdgesAdded     int64
	EdgesRemoved   int64
	RowsResketched int64
	VerticesGrown  int64
	Epoch          uint64 // latest frozen epoch; 0 before the first Freeze

	// Durable-epoch accounting (zero without a SetPersist hook):
	// epochs persisted, persist failures, and the latest failure text.
	Persists         int64
	PersistErrors    int64
	LastPersistError string
}

// New builds a DynamicGraph over an initial graph. The sketch geometry
// (Bloom filter size, MinHash k) is derived once from cfg's storage
// budget against g's CSR size and stays fixed for the DynamicGraph's
// lifetime, so incremental state remains comparable across epochs. The
// initial graph must have at least one vertex (the budget-derived
// geometry is meaningless on an empty universe); it may have no edges.
func New(g *graph.Graph, cfg serve.SnapshotConfig) (*DynamicGraph, error) {
	return NewWith(g, cfg, nil)
}

// NewWith is New with prebuilt full-neighborhood sketches — the warm
// restart path: a server resuming from a persisted epoch hands the
// artifact's decoded sketches in so no kind is rebuilt from scratch.
// Each prebuilt PG must cover g and match cfg's kind and seed, and must
// sketch the full neighborhoods of g (the restart invariant: degrees
// and stored set sizes agree). Prebuilt sketches are cloned — the
// DynamicGraph mutates its resident state, and the caller's artifact
// stays reusable. Kinds without a prebuilt entry are built as in New.
func NewWith(g *graph.Graph, cfg serve.SnapshotConfig, prebuilt map[core.Kind]*core.PG) (*DynamicGraph, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("stream: initial graph must have at least one vertex (sketch geometry derives from its storage budget)")
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []core.Kind{core.BF}
	}
	n := g.NumVertices()
	d := &DynamicGraph{
		cfg:        cfg,
		MaxGrow:    DefaultMaxGrow,
		adj:        make([][]uint32, n),
		m:          int64(g.NumEdges()),
		pgs:        make(map[core.Kind]*core.PG, len(cfg.Kinds)),
		freezeHist: obs.NewHist(),
	}
	for v := 0; v < n; v++ {
		nv := g.Neighbors(uint32(v))
		d.adj[v] = append(make([]uint32, 0, len(nv)+2), nv...)
	}
	for _, k := range cfg.Kinds {
		if _, dup := d.pgs[k]; dup {
			continue
		}
		var pg *core.PG
		if pb := prebuilt[k]; pb != nil {
			if err := validatePrebuilt(g, cfg, k, pb); err != nil {
				return nil, err
			}
			pg = pb.Clone()
		} else {
			var err error
			if pg, err = core.Build(g, d.coreConfig(k)); err != nil {
				return nil, fmt.Errorf("stream: building %v sketches: %w", k, err)
			}
		}
		d.pgs[k] = pg
		d.kinds = append(d.kinds, k)
	}
	return d, nil
}

// validatePrebuilt checks the warm-restart invariants of one handed-in
// sketch set (mirroring session.InstallPG, plus the full-neighborhood
// degree check only the streaming layer needs).
func validatePrebuilt(g *graph.Graph, cfg serve.SnapshotConfig, k core.Kind, pb *core.PG) error {
	if pb.NumVertices() != g.NumVertices() {
		return fmt.Errorf("stream: prebuilt %v sketches cover %d vertices, graph has %d",
			k, pb.NumVertices(), g.NumVertices())
	}
	if pb.Cfg.Kind != k || pb.Cfg.Seed != cfg.Seed {
		return fmt.Errorf("stream: prebuilt sketches are (%v, seed %d), config wants (%v, seed %d)",
			pb.Cfg.Kind, pb.Cfg.Seed, k, cfg.Seed)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if pb.SetSize(uint32(v)) != g.Degree(uint32(v)) {
			return fmt.Errorf("stream: prebuilt %v sketch of vertex %d covers %d elements, degree is %d — NewWith needs full-neighborhood sketches",
				k, v, pb.SetSize(uint32(v)), g.Degree(uint32(v)))
		}
	}
	return nil
}

// coreConfig assembles the sketch build configuration for one kind,
// mirroring what a Session with the same SnapshotConfig would build so
// frozen epochs answer bit-for-bit like a static serve.Open.
func (d *DynamicGraph) coreConfig(k core.Kind) core.Config {
	return core.Config{
		Kind:       k,
		Est:        d.cfg.Est,
		Budget:     d.cfg.Budget,
		NumHashes:  d.cfg.NumHashes,
		K:          d.cfg.K,
		StoreElems: d.cfg.StoreElems,
		Seed:       d.cfg.Seed,
		Workers:    d.cfg.Workers,
	}
}

// Kinds returns the maintained sketch representations in build order.
func (d *DynamicGraph) Kinds() []core.Kind { return d.kinds }

// ApplyBatch applies one batch of edge mutations: additions first, then
// deletions (see the package documentation for the exact semantics).
// Sketches are maintained in the same critical section, so a concurrent
// Freeze always observes a batch boundary, never a half-applied batch.
func (d *DynamicGraph) ApplyBatch(add, del []graph.Edge) (BatchStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var st BatchStats

	// Grow the vertex universe to cover every added endpoint (self loops
	// are dropped and must not grow anything), bounded by MaxGrow: IDs
	// are dense indices, so an absurd endpoint means allocating every
	// intermediate row — refuse the batch instead of dying on it.
	maxV := len(d.adj)
	for _, e := range add {
		if e.U == e.V {
			continue
		}
		if int(e.U) >= maxV {
			maxV = int(e.U) + 1
		}
		if int(e.V) >= maxV {
			maxV = int(e.V) + 1
		}
	}
	if grow := maxV - len(d.adj); grow > d.MaxGrow {
		return BatchStats{}, fmt.Errorf(
			"stream: batch grows the vertex universe by %d (n=%d → %d), beyond the MaxGrow cap %d: %w",
			grow, len(d.adj), maxV, d.MaxGrow, serve.ErrBadBatch)
	}
	if maxV > len(d.adj) {
		st.Grown = maxV - len(d.adj)
		d.adj = append(d.adj, make([][]uint32, maxV-len(d.adj))...)
		for _, pg := range d.pgs {
			// NewWith clones every prebuilt PG, so d.pgs are always owned
			// and growable; a borrowed PG here is an invariant violation.
			if err := pg.Grow(maxV); err != nil {
				return BatchStats{}, fmt.Errorf("stream: growing %v sketches: %w", pg.Cfg.Kind, err)
			}
		}
	}

	// Adjacency first: dedup against the current graph and within the
	// batch, so the sketch layer only ever sees genuinely new neighbors.
	newEdges := make([]graph.Edge, 0, len(add))
	for _, e := range add {
		if e.U == e.V {
			continue
		}
		if !insertSorted(&d.adj[e.U], e.V) {
			continue // already present
		}
		insertSorted(&d.adj[e.V], e.U)
		newEdges = append(newEdges, e)
	}
	var dirty map[uint32]struct{}
	for _, e := range del {
		if e.U == e.V || int(e.U) >= len(d.adj) || int(e.V) >= len(d.adj) {
			continue
		}
		if !removeSorted(&d.adj[e.U], e.V) {
			continue // not an edge
		}
		removeSorted(&d.adj[e.V], e.U)
		if dirty == nil {
			dirty = make(map[uint32]struct{}, 2*len(del))
		}
		dirty[e.U] = struct{}{}
		dirty[e.V] = struct{}{}
		st.Removed++
	}
	st.Added = len(newEdges)
	d.m += int64(st.Added) - int64(st.Removed)

	// Sketch maintenance: element-wise inserts for clean endpoints, a
	// single re-sketch for each deletion-dirtied row (covering any
	// same-batch inserts it also received).
	for _, k := range d.kinds {
		pg := d.pgs[k]
		for _, e := range newEdges {
			if _, bad := dirty[e.U]; !bad {
				if err := pg.AddNeighbor(e.U, e.V); err != nil {
					return BatchStats{}, fmt.Errorf("stream: inserting into %v sketches: %w", k, err)
				}
			}
			if _, bad := dirty[e.V]; !bad {
				if err := pg.AddNeighbor(e.V, e.U); err != nil {
					return BatchStats{}, fmt.Errorf("stream: inserting into %v sketches: %w", k, err)
				}
			}
		}
		for v := range dirty {
			if err := pg.ResketchRow(v, d.adj[v]); err != nil {
				return BatchStats{}, fmt.Errorf("stream: re-sketching row %d of %v sketches: %w", v, k, err)
			}
		}
	}
	st.Resketched = len(dirty)

	d.batches++
	d.added += int64(st.Added)
	d.removed += int64(st.Removed)
	d.resketched += int64(st.Resketched)
	d.grown += int64(st.Grown)
	return st, nil
}

// SetPersist installs the durable-epoch hook: fn runs after every
// successful Freeze with the just-published snapshot (PersistFile is the
// canonical hook, writing a pgio artifact a restarted server resumes
// from via NewWith). A hook failure never fails the freeze — the epoch
// is live in memory either way — but it is counted in Stats, kept as
// LastPersistError, and reported per call by FreezePersist, which is how
// the serving layer's /v1/stats learns about it. Set the hook before the
// first Freeze so every epoch, including the first, is durable.
func (d *DynamicGraph) SetPersist(fn func(*serve.Snapshot) error) {
	d.pmu.Lock()
	d.persistFn = fn
	d.pmu.Unlock()
}

// PersistStatus reports the durable-epoch outcome of one freeze.
type PersistStatus struct {
	// Attempted is true when a persist hook ran for this freeze. It is
	// false without a SetPersist hook, and also when a concurrent freeze
	// already persisted a newer epoch (persists are ordered by epoch, so
	// a superseded snapshot is skipped rather than written backwards).
	Attempted bool
	// Err is the hook's failure, nil on success.
	Err error
}

// Freeze materializes the current state as an immutable serving
// snapshot: the CSR graph, a fresh orientation (orientation depends on
// the global degree ranking, so it is rebuilt per epoch — the amortized
// part of the batch cost), and clones of the maintained sketches
// installed into the snapshot's Session so no query pays a sketch
// build. Ingest may continue concurrently; the snapshot observes a
// consistent batch boundary. With a SetPersist hook the epoch is also
// written to durable storage; use FreezePersist to observe that
// outcome (Freeze only records it in Stats).
func (d *DynamicGraph) Freeze() (*serve.Snapshot, error) {
	snap, _, err := d.FreezePersist()
	return snap, err
}

// FreezePersist is Freeze plus the persist outcome of this epoch — the
// form the ingest path uses so each batch can report whether it reached
// durable storage.
func (d *DynamicGraph) FreezePersist() (*serve.Snapshot, PersistStatus, error) {
	return d.FreezePersistCtx(context.Background())
}

// FreezePersistCtx is FreezePersist under a caller context, which exists
// so a tracer riding the context (obs.WithTracer) sees the freeze and
// persist phases as separate spans. The context does not cancel the
// freeze — an epoch is published whole or not at all.
func (d *DynamicGraph) FreezePersistCtx(ctx context.Context) (*serve.Snapshot, PersistStatus, error) {
	_, fsp := obs.StartSpan(ctx, "stream/freeze")
	snap, err := d.freeze()
	fsp.End()
	if err != nil {
		return nil, PersistStatus{}, err
	}
	_, psp := obs.StartSpan(ctx, "stream/persist")
	ps := d.runPersist(snap)
	psp.End()
	return snap, ps, nil
}

func (d *DynamicGraph) freeze() (*serve.Snapshot, error) {
	t0 := time.Now()
	defer func() { d.freezeHist.Record(time.Since(t0)) }()
	d.mu.RLock()
	g := d.csr()
	clones := make(map[core.Kind]*core.PG, len(d.pgs))
	for k, pg := range d.pgs {
		clones[k] = pg.Clone()
	}
	d.mu.RUnlock()

	// Restate each clone's relative-memory accounting against this
	// epoch's CSR size; the heavy work below runs outside the lock.
	bits := g.SizeBits()
	for _, pg := range clones {
		pg.SetCSRBits(bits)
	}
	o := g.Orient(d.cfg.Workers)
	snap, err := serve.OpenWith(g, d.cfg, o, clones)
	if err != nil {
		return nil, fmt.Errorf("stream: freeze: %w", err)
	}
	// Publish as the latest epoch; concurrent freezes race benignly and
	// the numerically-largest epoch wins.
	for {
		old := d.frozen.Load()
		if old != nil && old.Epoch >= snap.Epoch {
			break
		}
		if d.frozen.CompareAndSwap(old, snap) {
			break
		}
	}
	return snap, nil
}

// runPersist runs the configured persist hook for one published epoch,
// serialized and epoch-ordered under pmu, and folds the outcome into
// the durability counters.
func (d *DynamicGraph) runPersist(snap *serve.Snapshot) PersistStatus {
	d.pmu.Lock()
	defer d.pmu.Unlock()
	if d.persistFn == nil || snap.Epoch <= d.persistedEpoch {
		return PersistStatus{}
	}
	err := d.persistFn(snap)
	if err != nil {
		d.persistErrs++
		d.lastPersistErr = err.Error()
		return PersistStatus{Attempted: true, Err: err}
	}
	d.persists++
	d.persistedEpoch = snap.Epoch
	return PersistStatus{Attempted: true}
}

// Snapshot returns the latest frozen snapshot, freezing the current
// state on first use.
func (d *DynamicGraph) Snapshot() (*serve.Snapshot, error) {
	if s := d.frozen.Load(); s != nil {
		return s, nil
	}
	return d.Freeze()
}

// Graph returns the latest frozen epoch's immutable CSR graph (freezing
// on first use). Mutations applied since the last Freeze are not
// visible — call Freeze to publish them.
func (d *DynamicGraph) Graph() (*graph.Graph, error) {
	s, err := d.Snapshot()
	if err != nil {
		return nil, err
	}
	return s.G, nil
}

// SessionSource adapts the DynamicGraph to session.WithDynamic: each
// call returns the latest frozen epoch's Session, whose caches already
// hold the incrementally-maintained sketches. Combined with
// Session.Refresh, long-lived analytical sessions follow the stream:
//
//	sess, _ := session.New(g0, session.WithDynamic(d.SessionSource()))
//	...
//	sess, _ = sess.Refresh() // rebind to the newest epoch
func (d *DynamicGraph) SessionSource() func() (*session.Session, error) {
	return func() (*session.Session, error) {
		snap, err := d.Snapshot()
		if err != nil {
			return nil, err
		}
		return snap.Session(snap.DefaultKind())
	}
}

// Stats returns the cumulative mutation counters and current shape.
func (d *DynamicGraph) Stats() Stats {
	d.mu.RLock()
	s := Stats{
		Vertices:       len(d.adj),
		Edges:          d.m,
		Batches:        d.batches,
		EdgesAdded:     d.added,
		EdgesRemoved:   d.removed,
		RowsResketched: d.resketched,
		VerticesGrown:  d.grown,
	}
	d.mu.RUnlock()
	if snap := d.frozen.Load(); snap != nil {
		s.Epoch = snap.Epoch
	}
	d.pmu.Lock()
	s.Persists, s.PersistErrors, s.LastPersistError = d.persists, d.persistErrs, d.lastPersistErr
	d.pmu.Unlock()
	return s
}

// NumVertices returns the current (unfrozen) vertex count.
func (d *DynamicGraph) NumVertices() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.adj)
}

// NumEdges returns the current (unfrozen) undirected edge count.
func (d *DynamicGraph) NumEdges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int(d.m)
}

// csr materializes the adjacency as an immutable CSR graph; callers hold
// at least a read lock.
func (d *DynamicGraph) csr() *graph.Graph {
	n := len(d.adj)
	offsets := make([]int64, n+1)
	var total int64
	for v := 0; v < n; v++ {
		offsets[v] = total
		total += int64(len(d.adj[v]))
	}
	offsets[n] = total
	neigh := make([]uint32, total)
	for v := 0; v < n; v++ {
		copy(neigh[offsets[v]:], d.adj[v])
	}
	return &graph.Graph{Offsets: offsets, Neigh: neigh}
}

// insertSorted inserts x into the sorted slice at *s, reporting whether
// it was absent (false = duplicate, slice unchanged).
func insertSorted(s *[]uint32, x uint32) bool {
	a := *s
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	if i < len(a) && a[i] == x {
		return false
	}
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = x
	*s = a
	return true
}

// removeSorted deletes x from the sorted slice at *s, reporting whether
// it was present.
func removeSorted(s *[]uint32, x uint32) bool {
	a := *s
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	if i >= len(a) || a[i] != x {
		return false
	}
	*s = append(a[:i], a[i+1:]...)
	return true
}
