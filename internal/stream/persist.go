package stream

import (
	"fmt"
	"os"
	"path/filepath"

	"probgraph/internal/serve"
)

// PersistFile returns the canonical durable-epoch hook for SetPersist:
// each frozen snapshot is written as a pgio artifact to path, via a
// temporary file in the same directory, fsynced, and renamed into place
// — so the file at path is always one complete, checksummed epoch, even
// across a crash mid-write. A restarted server resumes from it:
//
//	a, _, _ := pgio.DecodeWithInfo(f)
//	cfg, _  := serve.ConfigFromArtifact(a, base)
//	d, _    := stream.NewWith(a.G, cfg, a.PGs)   // no sketch rebuild
//	snap, _ := d.Freeze()
func PersistFile(path string) func(*serve.Snapshot) error {
	return func(s *serve.Snapshot) error {
		dir := filepath.Dir(path)
		tmp, err := os.CreateTemp(dir, ".pg-epoch-*")
		if err != nil {
			return fmt.Errorf("stream: persisting epoch %d: %w", s.Epoch, err)
		}
		defer os.Remove(tmp.Name()) // no-op after a successful rename
		if _, err := s.Save(tmp); err != nil {
			tmp.Close()
			return fmt.Errorf("stream: persisting epoch %d: %w", s.Epoch, err)
		}
		// The rename only makes durability claims the data can back.
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("stream: persisting epoch %d: %w", s.Epoch, err)
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("stream: persisting epoch %d: %w", s.Epoch, err)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			return fmt.Errorf("stream: persisting epoch %d: %w", s.Epoch, err)
		}
		return nil
	}
}
