package stream

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

// TestDurableEpochRestart is the durability contract end to end: ingest
// advances epochs with persist-on-freeze enabled, the process "dies",
// and a fresh DynamicGraph rebuilt from the persisted artifact resumes
// with bit-identical sketches and identical query answers — without
// rebuilding any sketch from scratch.
func TestDurableEpochRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.pg")
	g0 := graph.Kronecker(8, 8, 11)
	cfg := serve.SnapshotConfig{Kinds: []core.Kind{core.BF, core.OneHash}, Seed: 5}
	d, err := New(g0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SetPersist(PersistFile(path))

	// A few epochs of churn: adds, deletes, growth.
	if _, err := d.ApplyBatch([]graph.Edge{{U: 1, V: 99}, {U: 2, V: 300}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch([]graph.Edge{{U: 0, V: 77}}, []graph.Edge{{U: 1, V: 99}}); err != nil {
		t.Fatal(err)
	}
	last, ps, err := d.FreezePersist()
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Attempted || ps.Err != nil {
		t.Fatalf("persist outcome %+v, want clean attempt", ps)
	}
	if st := d.Stats(); st.Persists != 2 || st.PersistErrors != 0 {
		t.Fatalf("persist counters %+v", st)
	}

	// "Restart": decode the artifact and rebuild the dynamic state.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, _, err := pgio.DecodeWithInfo(f)
	if err != nil {
		t.Fatalf("decoding persisted epoch: %v", err)
	}
	restoredCfg, err := serve.ConfigFromArtifact(a, serve.SnapshotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewWith(a.G, restoredCfg, a.PGs)
	if err != nil {
		t.Fatalf("NewWith from artifact: %v", err)
	}
	snap2, err := d2.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	// The resumed epoch is the persisted one, bit for bit.
	if !reflect.DeepEqual(snap2.G.Offsets, last.G.Offsets) || !reflect.DeepEqual(snap2.G.Neigh, last.G.Neigh) {
		t.Fatal("resumed graph differs from the persisted epoch")
	}
	for _, k := range cfg.Kinds {
		want, got := last.PG(k), snap2.PG(k)
		if !reflect.DeepEqual(want.Raw().Sizes, got.Raw().Sizes) {
			t.Fatalf("%v: resumed set sizes differ", k)
		}
		n := uint32(snap2.G.NumVertices())
		for i := uint32(0); i < 100; i++ {
			u, v := (i*31)%n, (i*97+7)%n
			if want.IntCard(u, v) != got.IntCard(u, v) {
				t.Fatalf("%v: IntCard(%d,%d) differs after restart", k, u, v)
			}
		}
	}

	// And the stream keeps flowing after the restart: mutations on the
	// resumed state maintain sketches bit-identically to a bulk build.
	if _, err := d2.ApplyBatch([]graph.Edge{{U: 3, V: 200}}, nil); err != nil {
		t.Fatal(err)
	}
	snap3, err := d2.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.Build(snap3.G, snap3.PG(core.BF).Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Raw().Bits, snap3.PG(core.BF).Raw().Bits) {
		t.Fatal("post-restart incremental maintenance diverged from a bulk build")
	}
}

// TestPersistFailureSurfaces pins the previously-unreportable failure
// mode: a failing persist hook keeps the freeze alive but shows up in
// FreezePersist, the Stats counters, and the Feeder's IngestResult.
func TestPersistFailureSurfaces(t *testing.T) {
	g := graph.Kronecker(7, 6, 3)
	d, err := New(g, serve.SnapshotConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	calls := 0
	d.SetPersist(func(*serve.Snapshot) error { calls++; return boom })

	snap, ps, err := d.FreezePersist()
	if err != nil || snap == nil {
		t.Fatalf("persist failure must not fail the freeze: snap=%v err=%v", snap, err)
	}
	if !ps.Attempted || !errors.Is(ps.Err, boom) {
		t.Fatalf("persist outcome %+v, want the hook's error", ps)
	}
	if st := d.Stats(); st.PersistErrors != 1 || st.Persists != 0 || st.LastPersistError != "disk full" {
		t.Fatalf("stats %+v", st)
	}

	eng := serve.New(snap, serve.Options{Workers: 2})
	defer eng.Close()
	res, err := NewFeeder(d, eng).Ingest([]graph.Edge{{U: 0, V: 5}}, nil)
	if err != nil {
		t.Fatalf("ingest with failing persist must still apply: %v", err)
	}
	if res.Persisted || res.PersistErr != "disk full" {
		t.Fatalf("ingest result %+v must carry the persist failure", res)
	}
	if calls != 2 {
		t.Fatalf("persist hook ran %d times, want 2", calls)
	}

	// Recovery: a later freeze with a healthy hook persists again.
	d.SetPersist(func(*serve.Snapshot) error { return nil })
	if _, ps, err := d.FreezePersist(); err != nil || ps.Err != nil || !ps.Attempted {
		t.Fatalf("recovered persist outcome %+v err=%v", ps, err)
	}
	if st := d.Stats(); st.Persists != 1 || st.PersistErrors != 2 {
		t.Fatalf("post-recovery stats %+v", st)
	}
}

// TestPersistFileAtomicity: a hook failure mid-write leaves the previous
// epoch's file intact (write-to-temp + rename), and no temp litter.
func TestPersistFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.pg")
	g := graph.Kronecker(7, 6, 3)
	d, err := New(g, serve.SnapshotConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.SetPersist(PersistFile(path))
	if _, err := d.Freeze(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Point the hook at an unwritable location: failure, file untouched.
	d.SetPersist(PersistFile(filepath.Join(dir, "no-such-dir", "g.pg")))
	if _, err := d.ApplyBatch([]graph.Edge{{U: 0, V: 3}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ps, err := d.FreezePersist(); err != nil || ps.Err == nil {
		t.Fatalf("expected persist failure, got ps=%+v err=%v", ps, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(good, after) {
		t.Fatal("failed persist damaged the previous epoch's artifact")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "g.pg" {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

// TestNewWithValidation pins the warm-restart guardrails.
func TestNewWithValidation(t *testing.T) {
	g := graph.Kronecker(7, 6, 3)
	cfg := serve.SnapshotConfig{Kinds: []core.Kind{core.BF}, Seed: 2}
	pg, err := core.Build(g, core.Config{Kind: core.BF, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWith(g, cfg, map[core.Kind]*core.PG{core.BF: pg}); err != nil {
		t.Fatalf("valid prebuilt rejected: %v", err)
	}
	wrongSeed, err := core.Build(g, core.Config{Kind: core.BF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWith(g, cfg, map[core.Kind]*core.PG{core.BF: wrongSeed}); err == nil {
		t.Fatal("seed-mismatched prebuilt accepted")
	}
	small, err := core.Build(graph.Complete(4), core.Config{Kind: core.BF, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWith(g, cfg, map[core.Kind]*core.PG{core.BF: small}); err == nil {
		t.Fatal("wrong-graph prebuilt accepted")
	}
	oriented, err := core.BuildOriented(g.Orient(0), g.SizeBits(), core.Config{Kind: core.BF, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWith(g, cfg, map[core.Kind]*core.PG{core.BF: oriented}); err == nil {
		t.Fatal("oriented sketches accepted as full-neighborhood state")
	}

	// The prebuilt sketches are cloned: mutating the resumed state must
	// not write through into the caller's artifact.
	d, err := NewWith(g, cfg, map[core.Kind]*core.PG{core.BF: pg})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]uint64(nil), pg.Raw().Bits...)
	if _, err := d.ApplyBatch([]graph.Edge{{U: 0, V: 1000}}, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, pg.Raw().Bits) {
		t.Fatal("NewWith aliased the caller's sketch storage")
	}
}
