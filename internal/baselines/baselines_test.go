package baselines

import (
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/stats"
)

func exactTC(g *graph.Graph) float64 {
	return float64(mining.ExactTC(g.Orient(0), 0))
}

func TestDoulionDegenerateP(t *testing.T) {
	g := graph.Complete(10)
	if DoulionTC(g, 0, 1, 2) != 0 {
		t.Fatal("p=0")
	}
	if got := DoulionTC(g, 1, 1, 2); got != 120 {
		t.Fatalf("p=1 must be exact: %v", got)
	}
	if got := DoulionTC(g, 1.5, 1, 2); got != 120 {
		t.Fatalf("p>1 clamps to exact: %v", got)
	}
}

func TestDoulionApproxUnbiased(t *testing.T) {
	g := graph.Kronecker(9, 12, 7)
	want := exactTC(g)
	var ests []float64
	for seed := uint64(0); seed < 30; seed++ {
		ests = append(ests, DoulionTC(g, 0.5, seed, 0))
	}
	if got := stats.Mean(ests); stats.RelativeError(got, want) > 0.15 {
		t.Fatalf("Doulion mean estimate %.0f, exact %.0f", got, want)
	}
}

func TestColorfulDegenerate(t *testing.T) {
	g := graph.Complete(10)
	if got := ColorfulTC(g, 1, 1, 2); got != 120 {
		t.Fatalf("1 color keeps everything: %v", got)
	}
	if got := ColorfulTC(g, 0, 1, 2); got != 120 {
		t.Fatalf("0 colors treated as exact: %v", got)
	}
}

func TestColorfulApproxUnbiased(t *testing.T) {
	g := graph.Kronecker(9, 12, 7)
	want := exactTC(g)
	var ests []float64
	for seed := uint64(0); seed < 40; seed++ {
		ests = append(ests, ColorfulTC(g, 2, seed, 0))
	}
	if got := stats.Mean(ests); stats.RelativeError(got, want) > 0.2 {
		t.Fatalf("Colorful mean estimate %.0f, exact %.0f", got, want)
	}
}

func TestReducedExecution(t *testing.T) {
	g := graph.Kronecker(9, 12, 3)
	o := g.Orient(0)
	want := exactTC(g)
	if got := ReducedExecutionTC(o, 1, 1, 0); got != want {
		t.Fatalf("frac=1 must be exact: %v vs %v", got, want)
	}
	if ReducedExecutionTC(o, 0, 1, 0) != 0 {
		t.Fatal("frac=0")
	}
	var ests []float64
	for seed := uint64(0); seed < 30; seed++ {
		ests = append(ests, ReducedExecutionTC(o, 0.5, seed, 0))
	}
	// Heuristic: mean should be in the ballpark but no guarantee; allow
	// a generous band, which is the paper's point about heuristics.
	if got := stats.Mean(ests); stats.RelativeError(got, want) > 0.3 {
		t.Fatalf("ReducedExecution mean %.0f, exact %.0f", got, want)
	}
}

func TestPartialProcessing(t *testing.T) {
	g := graph.Kronecker(9, 12, 5)
	o := g.Orient(0)
	want := exactTC(g)
	if got := PartialProcessingTC(o, 1, 1, 0); got != want {
		t.Fatalf("frac=1 must be exact: %v vs %v", got, want)
	}
	if PartialProcessingTC(o, 0, 1, 0) != 0 {
		t.Fatal("frac=0")
	}
	var ests []float64
	for seed := uint64(0); seed < 30; seed++ {
		ests = append(ests, PartialProcessingTC(o, 0.6, seed, 0))
	}
	if got := stats.Mean(ests); stats.RelativeError(got, want) > 0.4 {
		t.Fatalf("PartialProcessing mean %.0f, exact %.0f", got, want)
	}
}

func TestAutoApproxFullFractionExact(t *testing.T) {
	// With frac=1 both variants process every vertex: exact count.
	g := graph.Kronecker(8, 10, 9)
	want := exactTC(g)
	if got := AutoApprox1TC(g, 1, 1, 0); got != want {
		t.Fatalf("AutoApprox1 frac=1: %v vs %v", got, want)
	}
	if got := AutoApprox2TC(g, 1, 1, 0); got != want {
		t.Fatalf("AutoApprox2 frac=1: %v vs %v", got, want)
	}
	if AutoApprox1TC(g, 0, 1, 0) != 0 || AutoApprox2TC(g, 0, 1, 0) != 0 {
		t.Fatal("frac=0")
	}
}

func TestAutoApproxSampledBallpark(t *testing.T) {
	g := graph.Kronecker(9, 12, 11)
	want := exactTC(g)
	var e1, e2 []float64
	for seed := uint64(0); seed < 20; seed++ {
		e1 = append(e1, AutoApprox1TC(g, 0.5, seed, 0))
		e2 = append(e2, AutoApprox2TC(g, 0.5, seed, 0))
	}
	if got := stats.Mean(e1); stats.RelativeError(got, want) > 0.4 {
		t.Fatalf("AutoApprox1 mean %.0f, exact %.0f", got, want)
	}
	if got := stats.Mean(e2); stats.RelativeError(got, want) > 0.4 {
		t.Fatalf("AutoApprox2 mean %.0f, exact %.0f", got, want)
	}
}

func TestEmptyGraphAllBaselines(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := g.Orient(0)
	if DoulionTC(g, 0.5, 1, 1) != 0 ||
		ColorfulTC(g, 4, 1, 1) != 0 ||
		ReducedExecutionTC(o, 0.5, 1, 1) != 0 ||
		PartialProcessingTC(o, 0.5, 1, 1) != 0 ||
		AutoApprox1TC(g, 0.5, 1, 1) != 0 ||
		AutoApprox2TC(g, 0.5, 1, 1) != 0 {
		t.Fatal("empty graph must give 0 everywhere")
	}
}

func TestTriangleFreeGraphs(t *testing.T) {
	g := graph.Grid(8, 8)
	o := g.Orient(0)
	if DoulionTC(g, 0.7, 1, 1) != 0 ||
		ColorfulTC(g, 3, 1, 1) != 0 ||
		ReducedExecutionTC(o, 0.5, 1, 1) != 0 ||
		AutoApprox1TC(g, 0.5, 1, 1) != 0 {
		t.Fatal("triangle-free graph must estimate 0")
	}
}
