// Package baselines implements the competing approximate triangle-count
// schemes the evaluation compares ProbGraph against (§VIII-C/D, Fig. 6):
// the theoretically grounded Doulion (edge sampling) and Colorful TC
// (color sparsification), and the guarantee-free heuristics Reduced
// Execution, Partial Graph Processing, and two Auto-Approximation
// variants built on a deliberately faithful vertex-centric abstraction
// (whose per-message overhead is exactly why the paper measures them as
// slower than tuned exact baselines).
package baselines

import (
	"math/rand/v2"
	"sort"

	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/par"
)

// DoulionTC estimates TC by keeping every edge independently with
// probability p, counting triangles exactly on the sparsified graph, and
// rescaling by 1/p³ (Tsourakakis et al.). Asymptotically unbiased and
// consistent, no exponential bounds (Table VII).
func DoulionTC(g *graph.Graph, p float64, seed uint64, workers int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return float64(mining.ExactTC(g.Orient(workers), workers))
	}
	r := rand.New(rand.NewPCG(seed, 0xd0041107))
	var kept []graph.Edge
	g.Edges(func(u, v uint32) {
		if r.Float64() < p {
			kept = append(kept, graph.Edge{U: u, V: v})
		}
	})
	sub, err := graph.FromEdges(g.NumVertices(), kept)
	if err != nil {
		// Kept edges are a subset of a valid graph; this cannot happen.
		panic("baselines: doulion sparsification: " + err.Error())
	}
	tc := mining.ExactTC(sub.Orient(workers), workers)
	return float64(tc) / (p * p * p)
}

// ColorfulTC estimates TC with the colorful sparsification of Pagh &
// Tsourakakis: vertices get a uniform color in [N]; only monochromatic
// edges survive; a triangle survives iff all three corners share a color
// (probability 1/N²), so the sparsified count is rescaled by N².
func ColorfulTC(g *graph.Graph, colors int, seed uint64, workers int) float64 {
	if colors <= 1 {
		return float64(mining.ExactTC(g.Orient(workers), workers))
	}
	r := rand.New(rand.NewPCG(seed, 0xc0102f01))
	color := make([]uint16, g.NumVertices())
	for i := range color {
		color[i] = uint16(r.IntN(colors))
	}
	var kept []graph.Edge
	g.Edges(func(u, v uint32) {
		if color[u] == color[v] {
			kept = append(kept, graph.Edge{U: u, V: v})
		}
	})
	sub, err := graph.FromEdges(g.NumVertices(), kept)
	if err != nil {
		panic("baselines: colorful sparsification: " + err.Error())
	}
	tc := mining.ExactTC(sub.Orient(workers), workers)
	return float64(tc) * float64(colors) * float64(colors)
}

// ReducedExecutionTC is the "Reduced Execution" heuristic of Singh &
// Nasre: run only a random fraction of the outer node-iterator loop and
// extrapolate linearly. No accuracy guarantees.
func ReducedExecutionTC(o *graph.Oriented, frac float64, seed uint64, workers int) float64 {
	n := o.NumVertices()
	if n == 0 {
		return 0
	}
	if frac >= 1 {
		return float64(mining.ExactTC(o, workers))
	}
	if frac <= 0 {
		return 0
	}
	r := rand.New(rand.NewPCG(seed, 0x4ed0ce))
	perm := r.Perm(n)
	cut := int(frac * float64(n))
	if cut < 1 {
		cut = 1
	}
	picked := perm[:cut]
	sum := par.ReduceInt64(len(picked), workers, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			v := uint32(picked[i])
			nv := o.NPlus(v)
			for _, u := range nv {
				s += int64(graph.IntersectCount(nv, o.NPlus(u)))
			}
		}
		return s
	})
	return float64(sum) * float64(n) / float64(cut)
}

// PartialProcessingTC is the "Partial Graph Processing" heuristic: each
// vertex processes only a random fraction of its oriented neighborhood.
// A triangle needs both corners in the apex's sample and the closing
// vertex in the middle corner's sample, so the count is rescaled by
// 1/frac³. No accuracy guarantees.
func PartialProcessingTC(o *graph.Oriented, frac float64, seed uint64, workers int) float64 {
	n := o.NumVertices()
	if n == 0 {
		return 0
	}
	if frac >= 1 {
		return float64(mining.ExactTC(o, workers))
	}
	if frac <= 0 {
		return 0
	}
	// Sample each oriented adjacency list once, up front (deterministic
	// per seed), keeping lists sorted.
	sampled := make([][]uint32, n)
	par.For(n, workers, func(v int) {
		nv := o.NPlus(uint32(v))
		r := rand.New(rand.NewPCG(seed, uint64(v)))
		var keep []uint32
		for _, u := range nv {
			if r.Float64() < frac {
				keep = append(keep, u)
			}
		}
		sampled[v] = keep
	})
	sum := par.ReduceInt64(n, workers, func(lo, hi int) int64 {
		var s int64
		for v := lo; v < hi; v++ {
			sv := sampled[v]
			for _, u := range sv {
				s += int64(graph.IntersectCount(sv, sampled[u]))
			}
		}
		return s
	})
	return float64(sum) / (frac * frac * frac)
}

// vcMessage is one unit of vertex-centric communication: the
// Auto-Approximation schemes of Shang & Yu operate in a purely
// vertex-centric model, where neighborhoods arrive as materialized
// per-edge messages rather than shared CSR slices. Materializing these
// messages is the abstraction's intrinsic overhead; the paper measures
// it as making AutoApprox slower than the exact tuned baselines, and
// this implementation reproduces that honestly rather than shortcutting
// through the CSR.
type vcMessage struct {
	src     uint32
	payload []uint32 // copy of the sender's neighbor list
}

// autoApproxGather counts, for one vertex, triangles closed by its
// received messages (vertex-centric gather phase).
func autoApproxGather(g *graph.Graph, v uint32, inbox []vcMessage) int64 {
	nv := g.Neighbors(v)
	var tri int64
	for _, msg := range inbox {
		if msg.src <= v {
			continue // count each apex pair once
		}
		for _, w := range msg.payload {
			if w <= msg.src {
				continue
			}
			if idx := sort.Search(len(nv), func(i int) bool { return nv[i] >= w }); idx < len(nv) && nv[idx] == w {
				tri++
			}
		}
	}
	return tri
}

// autoApproxProcess runs the vertex-centric superstep for the given
// vertices: every processed vertex receives one message per incident
// edge carrying the sender's full neighbor list (scatter), then gathers.
func autoApproxProcess(g *graph.Graph, vertices []uint32, workers int) int64 {
	return par.ReduceInt64(len(vertices), workers, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			v := vertices[i]
			nv := g.Neighbors(v)
			inbox := make([]vcMessage, 0, len(nv))
			for _, u := range nv {
				// Message payloads are copies: the vertex-centric runtime
				// cannot hand out shared CSR slices.
				payload := append([]uint32(nil), g.Neighbors(u)...)
				inbox = append(inbox, vcMessage{src: u, payload: payload})
			}
			s += autoApproxGather(g, v, inbox)
		}
		return s
	})
}

// AutoApprox1TC is Auto-Approximation variant 1: process a uniform
// random fraction of vertices vertex-centrically and extrapolate
// linearly by vertex count.
func AutoApprox1TC(g *graph.Graph, frac float64, seed uint64, workers int) float64 {
	n := g.NumVertices()
	if n == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	r := rand.New(rand.NewPCG(seed, 0xaa1))
	perm := r.Perm(n)
	cut := int(frac * float64(n))
	if cut < 1 {
		cut = 1
	}
	picked := make([]uint32, cut)
	for i := 0; i < cut; i++ {
		picked[i] = uint32(perm[i])
	}
	count := autoApproxProcess(g, picked, workers)
	return float64(count) * float64(n) / float64(cut)
}

// AutoApprox2TC is variant 2: degree-stratified sampling — vertices are
// bucketed by degree and sampled per bucket, extrapolating each stratum
// separately, which reduces the variance on skewed graphs.
func AutoApprox2TC(g *graph.Graph, frac float64, seed uint64, workers int) float64 {
	n := g.NumVertices()
	if n == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	// Buckets by log2(degree).
	buckets := make(map[int][]uint32)
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		b := 0
		for dd := d; dd > 1; dd >>= 1 {
			b++
		}
		buckets[b] = append(buckets[b], uint32(v))
	}
	r := rand.New(rand.NewPCG(seed, 0xaa2))
	var est float64
	for _, vs := range buckets {
		r.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		cut := int(frac * float64(len(vs)))
		if cut < 1 {
			cut = 1
		}
		count := autoApproxProcess(g, vs[:cut], workers)
		est += float64(count) * float64(len(vs)) / float64(cut)
	}
	return est
}
