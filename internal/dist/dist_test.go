package dist

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
)

func TestBlockPartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {10, 10}, {10, 16}, {1024, 7}, {1023, 16},
	} {
		pt := BlockPartition(tc.n, tc.p)
		covered := 0
		for i := 0; i < tc.p; i++ {
			lo, hi := pt.Block(i)
			if hi < lo {
				t.Fatalf("n=%d p=%d: block %d inverted [%d,%d)", tc.n, tc.p, i, lo, hi)
			}
			if int(hi-lo) > tc.n/tc.p+1 {
				t.Fatalf("n=%d p=%d: block %d unbalanced [%d,%d)", tc.n, tc.p, i, lo, hi)
			}
			for v := lo; v < hi; v++ {
				if pt.Owner(v) != i {
					t.Fatalf("n=%d p=%d: Owner(%d)=%d, in block %d", tc.n, tc.p, v, pt.Owner(v), i)
				}
				covered++
			}
		}
		if covered != tc.n {
			t.Fatalf("n=%d p=%d: blocks cover %d vertices", tc.n, tc.p, covered)
		}
	}
}

// testGraphs returns the graphs the kernel tests sweep: a skewed
// power-law graph, a dense clique, and a hub-and-spoke star with a
// triangle fan (extreme skew).
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	star := make([]graph.Edge, 0, 64)
	for v := uint32(1); v < 33; v++ {
		star = append(star, graph.Edge{U: 0, V: v})
	}
	for v := uint32(1); v < 32; v++ {
		star = append(star, graph.Edge{U: v, V: v + 1}) // fan: 0-v-(v+1) triangles
	}
	sg, err := graph.FromEdges(33, star)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"kron":   graph.Kronecker(9, 10, 31),
		"clique": graph.Complete(24),
		"star":   sg,
	}
}

func TestTCShipNeighborhoodsIsExact(t *testing.T) {
	for name, g := range testGraphs(t) {
		o := g.Orient(0)
		want := mining.ExactTC(o, 0)
		for _, nodes := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
			res, err := TC(g, o, nil, nodes, ShipNeighborhoods)
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, nodes, err)
			}
			if int64(res.Count) != want {
				t.Fatalf("%s P=%d: count=%v, exact=%d", name, nodes, res.Count, want)
			}
			if nodes == 1 && res.Net.Bytes != 0 {
				t.Fatalf("%s: single node generated %d network bytes", name, res.Net.Bytes)
			}
		}
	}
}

func TestTCShipSketchesAccuracy(t *testing.T) {
	// The quick Kronecker graph and sketch configuration of the §VIII-F
	// experiment: the estimate must stay within 10% and be identical for
	// every node count (the distributed sum is just a re-association of
	// the single-machine one).
	g := graph.Kronecker(10, 12, 701)
	o := g.Orient(0)
	exact := float64(mining.ExactTC(o, 0))
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 1, Est: core.EstBFL, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	var first float64
	for i, nodes := range []int{1, 2, 4, 8, 16} {
		res, err := TC(g, o, pg, nodes, ShipSketches)
		if err != nil {
			t.Fatalf("P=%d: %v", nodes, err)
		}
		if rel := math.Abs(res.Count-exact) / exact; rel > 0.10 {
			t.Fatalf("P=%d: estimate %v vs exact %v, rel err %.3f > 0.10", nodes, res.Count, exact, rel)
		}
		if i == 0 {
			first = res.Count
		} else if math.Abs(res.Count-first) > 1e-6*math.Abs(first) {
			t.Fatalf("P=%d: estimate %v differs from P=1 estimate %v", nodes, res.Count, first)
		}
	}
}

func TestTCBytesReduction(t *testing.T) {
	// On a skewed graph the raw-CSR protocol must move strictly more
	// bytes than the fixed-size sketch protocol at every node count.
	g := graph.Kronecker(10, 12, 701)
	o := g.Orient(0)
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 1, Est: core.EstBFL, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{2, 4, 8, 16} {
		ex, err := TC(g, o, nil, nodes, ShipNeighborhoods)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := TC(g, o, pg, nodes, ShipSketches)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Net.Bytes <= sk.Net.Bytes {
			t.Fatalf("P=%d: CSR bytes %d <= sketch bytes %d", nodes, ex.Net.Bytes, sk.Net.Bytes)
		}
		if ex.Net.Fetches != sk.Net.Fetches {
			t.Fatalf("P=%d: protocols disagree on fetch count: %d vs %d", nodes, ex.Net.Fetches, sk.Net.Fetches)
		}
	}
}

func TestNetAccountingInvariants(t *testing.T) {
	g := graph.Kronecker(9, 10, 31)
	o := g.Orient(0)
	res, err := TC(g, o, nil, 8, ShipNeighborhoods)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Net
	if s.Bytes <= 0 || s.Messages <= 0 || s.Fetches <= 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
	if s.Messages != 2*s.Fetches {
		t.Fatalf("messages %d != 2 * fetches %d", s.Messages, s.Fetches)
	}
	var out, in, mout, min NodeTraffic
	for _, tr := range s.PerNode {
		out.BytesOut += tr.BytesOut
		in.BytesIn += tr.BytesIn
		mout.MsgsOut += tr.MsgsOut
		min.MsgsIn += tr.MsgsIn
	}
	if out.BytesOut != s.Bytes || in.BytesIn != s.Bytes {
		t.Fatalf("per-node bytes (out %d, in %d) disagree with total %d", out.BytesOut, in.BytesIn, s.Bytes)
	}
	if mout.MsgsOut != s.Messages || min.MsgsIn != s.Messages {
		t.Fatalf("per-node messages (out %d, in %d) disagree with total %d", mout.MsgsOut, min.MsgsIn, s.Messages)
	}
}

func TestDeterminismAcrossRunsAndSchedulers(t *testing.T) {
	g := graph.Kronecker(9, 10, 31)
	o := g.Orient(0)
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 1, Est: core.EstBFL, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ShipNeighborhoods, ShipSketches} {
		var base *Result
		for run := 0; run < 4; run++ {
			// Vary the scheduler: different GOMAXPROCS each repetition.
			prev := runtime.GOMAXPROCS(1 + run%3)
			res, err := TC(g, o, pg, 8, mode)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res
				continue
			}
			if res.Count != base.Count {
				t.Fatalf("%v run %d: count %v != %v", mode, run, res.Count, base.Count)
			}
			if !reflect.DeepEqual(res.Net, base.Net) {
				t.Fatalf("%v run %d: NetStats drifted:\n%+v\n%+v", mode, run, res.Net, base.Net)
			}
		}
	}
}

func TestSimShipNeighborhoodsIsExact(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, m := range []mining.Measure{mining.Jaccard, mining.Overlap, mining.CommonNeighbors, mining.TotalNeighbors} {
			var want float64
			g.Edges(func(u, v uint32) { want += mining.ExactSimilarity(g, u, v, m) })
			want /= float64(g.NumEdges())
			for _, nodes := range []int{1, 2, 5, 8} {
				res, err := Sim(g, nil, nodes, ShipNeighborhoods, m)
				if err != nil {
					t.Fatalf("%s %v P=%d: %v", name, m, nodes, err)
				}
				if math.Abs(res.Count-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s %v P=%d: mean %v, exact %v", name, m, nodes, res.Count, want)
				}
			}
		}
	}
}

func TestSimShipSketchesAccuracy(t *testing.T) {
	// The community workload of the distsim experiment: dense modules,
	// large per-edge intersections, Bloom sketches at a 25% budget.
	g := graph.CommunityGraph(1024, 20000, 16, 48, 701)
	pg, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	g.Edges(func(u, v uint32) { want += mining.ExactSimilarity(g, u, v, mining.Jaccard) })
	want /= float64(g.NumEdges())
	for _, nodes := range []int{2, 8} {
		ex, err := Sim(g, nil, nodes, ShipNeighborhoods, mining.Jaccard)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := Sim(g, pg, nodes, ShipSketches, mining.Jaccard)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(sk.Count-want) / want; rel > 0.10 {
			t.Fatalf("P=%d: mean %v vs exact %v, rel err %.3f > 0.10", nodes, sk.Count, want, rel)
		}
		if ex.Net.Bytes <= sk.Net.Bytes {
			t.Fatalf("P=%d: CSR bytes %d <= sketch bytes %d", nodes, ex.Net.Bytes, sk.Net.Bytes)
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	g := graph.Complete(8)
	o := g.Orient(0)
	opg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small := graph.Complete(4)
	spg, err := core.Build(small, core.Config{Kind: core.BF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TC(g, o, nil, 0, ShipNeighborhoods); err == nil {
		t.Fatal("nodes=0 accepted")
	}
	if _, err := TC(g, o, opg, 2, Mode(99)); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := TC(g, o, nil, 2, ShipSketches); err == nil {
		t.Fatal("ShipSketches without a ProbGraph accepted")
	}
	if _, err := TC(g, o, spg, 2, ShipSketches); err == nil {
		t.Fatal("ProbGraph of the wrong graph accepted")
	}
	if _, err := TC(nil, o, nil, 2, ShipNeighborhoods); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Sim(g, nil, 2, ShipNeighborhoods, mining.AdamicAdar); err == nil {
		t.Fatal("weighted measure accepted: no wire protocol ships witness identities")
	}
	if _, err := Sim(g, opg, 2, ShipSketches, mining.Jaccard); err == nil {
		t.Fatal("oriented sketches accepted by Sim, which needs full neighborhoods")
	}
}

func TestModeString(t *testing.T) {
	if ShipNeighborhoods.String() == ShipSketches.String() {
		t.Fatal("modes indistinguishable")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
}
