package dist

import "testing"

// TestBlockPartitionEdgeCases table-drives the block decomposition over
// the shapes a real deployment hits: more nodes than vertices (surplus
// blocks must be empty), non-divisible sizes (block sizes differ by at
// most one), the single-node degenerate case, and the empty graph.
func TestBlockPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		n, p int
	}{
		{"empty graph", 0, 1},
		{"empty graph, many nodes", 0, 4},
		{"single vertex", 1, 1},
		{"single node", 17, 1},
		{"fewer vertices than nodes", 3, 5},
		{"one vertex per node", 5, 5},
		{"non-divisible", 10, 3},
		{"non-divisible, remainder 1", 7, 2},
		{"non-divisible, large remainder", 100, 7},
		{"divisible", 64, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			part := BlockPartition(tc.n, tc.p)
			if part.N != tc.n || part.P != tc.p {
				t.Fatalf("partition echoes N=%d P=%d, want %d/%d", part.N, part.P, tc.n, tc.p)
			}
			// Blocks must tile [0, n) contiguously in node order, and the
			// balanced decomposition bounds every size gap by one.
			next := uint32(0)
			minSz, maxSz := tc.n, 0
			for i := 0; i < tc.p; i++ {
				lo, hi := part.Block(i)
				if lo != next {
					t.Fatalf("block %d starts at %d, want %d (blocks must tile)", i, lo, next)
				}
				if hi < lo {
					t.Fatalf("block %d is inverted: [%d, %d)", i, lo, hi)
				}
				sz := int(hi - lo)
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				next = hi
			}
			if int(next) != tc.n {
				t.Fatalf("blocks cover [0, %d), graph has %d vertices", next, tc.n)
			}
			if tc.n > 0 && maxSz-minSz > 1 {
				t.Fatalf("block sizes range [%d, %d]; balanced blocks differ by at most one", minSz, maxSz)
			}
			if tc.p > tc.n {
				// Surplus blocks are empty, never out of range.
				for i := tc.n; i < tc.p; i++ {
					if lo, hi := part.Block(i); lo != hi {
						t.Fatalf("surplus block %d is non-empty: [%d, %d)", i, lo, hi)
					}
				}
			}
			// Ownership round-trip: every vertex's owner's block contains
			// it — Owner and Block are inverse views of one decomposition.
			for v := uint32(0); int(v) < tc.n; v++ {
				owner := part.Owner(v)
				if owner < 0 || owner >= tc.p {
					t.Fatalf("Owner(%d) = %d, out of [0, %d)", v, owner, tc.p)
				}
				lo, hi := part.Block(owner)
				if v < lo || v >= hi {
					t.Fatalf("Owner(%d) = %d but Block(%d) = [%d, %d) does not contain it", v, owner, owner, lo, hi)
				}
			}
		})
	}
}
