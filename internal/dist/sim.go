package dist

import (
	"context"
	"fmt"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/pgio"
)

// Sim runs distributed vertex similarity (Listing 3) over the same
// partition and fetch machinery as TC: every undirected edge (u, v)
// with u < v is scored by the owner of u, which holds N_u locally and
// fetches vertex v's row when v is remote —
//
//   - ShipNeighborhoods: the raw CSR list N_v crosses the wire and the
//     score is exact (pg may be nil);
//   - ShipSketches: v's fixed-size sketch row crosses the wire and
//     |N_u ∩ N_v| is estimated. pg must hold full-neighborhood sketches
//     (core.Build, not BuildOriented).
//
// The Result's Count is the mean similarity over all edges — the
// aggregate the Jarvis–Patrick threshold of Listing 4 is calibrated
// against. Only the counting-based measures (Jaccard, Overlap,
// CommonNeighbors, TotalNeighbors) are supported: the weighted ones
// need witness identities, which neither wire protocol ships.
func Sim(g *graph.Graph, pg *core.PG, nodes int, mode Mode, m mining.Measure) (*Result, error) {
	return SimCtx(context.Background(), g, pg, nodes, mode, m)
}

// SimCtx is Sim with cooperative cancellation: every simulated worker
// checks the context once per owned vertex and a cancelled run returns
// ctx.Err().
func SimCtx(ctx context.Context, g *graph.Graph, pg *core.PG, nodes int, mode Mode, m mining.Measure) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("dist: Sim needs a graph")
	}
	if !m.Counting() {
		return nil, fmt.Errorf("dist: measure %v needs witness identities; only counting measures are distributable", m)
	}
	n := g.NumVertices()
	if err := validateRun(nodes, mode); err != nil {
		return nil, err
	}
	if mode == ShipSketches {
		if pg == nil {
			return nil, fmt.Errorf("dist: ShipSketches needs a ProbGraph (core.Build over full neighborhoods)")
		}
		if pg.NumVertices() != n {
			return nil, fmt.Errorf("dist: ProbGraph covers %d vertices, graph has %d", pg.NumVertices(), n)
		}
		for v := 0; v < n; v++ {
			if pg.SetSize(uint32(v)) != g.Degree(uint32(v)) {
				return nil, fmt.Errorf("dist: sketch of vertex %d covers %d elements, degree is %d — Sim needs full-neighborhood sketches (core.Build)",
					v, pg.SetSize(uint32(v)), g.Degree(uint32(v)))
			}
		}
	}

	c := newCluster(n, nodes)
	res := &Result{Nodes: nodes, Mode: mode}
	sums := make([]float64, nodes)
	done := ctx.Done()

	// The worker bodies are the shared plan partials of plan.go (see the
	// note in tc.go), wrapped around this substrate's transport.
	switch mode {
	case ShipNeighborhoods:
		serve := func(v uint32) payload {
			return payload{data: pgio.AppendNeighborhood(nil, g.Neighbors(v))}
		}
		res.Net = c.run(serve, func(nd *node) {
			rows := func(v uint32) []uint32 {
				if nd.owns(v) {
					return g.Neighbors(v)
				}
				if nv, ok := nd.lists[v]; ok {
					return nv
				}
				nv := decodeList(nd.fetch(v))
				nd.lists[v] = nv
				return nv
			}
			sums[nd.id], _ = SimPartialExact(g, nd.lo, nd.hi, m, rows, done)
		})
	case ShipSketches:
		serve := func(v uint32) payload {
			return payload{data: pgio.AppendSketchRow(nil, pg, v)}
		}
		res.Net = c.run(serve, func(nd *node) {
			need := func(v uint32) {
				if !nd.owns(v) && !nd.seen[v] {
					nd.fetch(v)
					nd.seen[v] = true
				}
			}
			sums[nd.id], _ = SimPartialSketch(g, pg, nd.lo, nd.hi, m, need, done)
		})
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var total float64
	for _, s := range sums {
		total += s
	}
	if me := g.NumEdges(); me > 0 {
		res.Count = total / float64(me)
	}
	return res, nil
}
