package dist

// Partition block-partitions n vertices across p nodes: node i owns the
// contiguous vertex range Block(i), blocks differ in size by at most
// one, and ownership is computable in O(1) on every node (the standard
// 1D block decomposition of distributed graph processing — contiguous
// CSR rows keep each node's local adjacency a single slice).
type Partition struct {
	N, P int
	q, r int // first r blocks have q+1 vertices, the rest q
}

// BlockPartition builds the balanced block partition of [0, n) into p
// blocks. p may exceed n; the surplus blocks are empty.
func BlockPartition(n, p int) Partition {
	return Partition{N: n, P: p, q: n / p, r: n % p}
}

// Owner returns the node that owns vertex v.
func (pt Partition) Owner(v uint32) int {
	t := pt.r * (pt.q + 1)
	if int(v) < t {
		return int(v) / (pt.q + 1)
	}
	return pt.r + (int(v)-t)/pt.q
}

// Block returns node i's owned vertex range [lo, hi).
func (pt Partition) Block(i int) (lo, hi uint32) {
	if i < pt.r {
		l := i * (pt.q + 1)
		return uint32(l), uint32(l + pt.q + 1)
	}
	l := pt.r*(pt.q+1) + (i-pt.r)*pt.q
	return uint32(l), uint32(l + pt.q)
}
