package dist

import (
	"context"
	"fmt"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
)

// TC runs the oriented triangle-count kernel (Listing 1) over `nodes`
// simulated distributed-memory nodes. Vertices are block-partitioned;
// each node evaluates tc_v = Σ_{u∈N+_v} |N+_v ∩ N+_u| for its local
// block, fetching rows of remote endpoints u on demand:
//
//   - ShipNeighborhoods: the owner ships the raw CSR neighborhood N_u
//     (4 B/ID); the requester derives N+_u with the replicated rank
//     array, caches it, and intersects exactly. pg may be nil; the
//     count equals mining.ExactTC.
//   - ShipSketches: the owner ships u's fixed-size sketch row; the
//     requester estimates |N+_v ∩ N+_u| with the sketch estimator. pg
//     must hold oriented sketches built with core.BuildOriented over o.
//
// The returned Result carries the count and the NetStats the fetches
// generated; both are deterministic for a given graph, orientation,
// sketch, node count, and mode.
func TC(g *graph.Graph, o *graph.Oriented, pg *core.PG, nodes int, mode Mode) (*Result, error) {
	return TCCtx(context.Background(), g, o, pg, nodes, mode)
}

// TCCtx is TC with cooperative cancellation: every simulated worker
// checks the context once per owned vertex, so a cancelled run winds
// down within one vertex's worth of work per node and returns ctx.Err().
func TCCtx(ctx context.Context, g *graph.Graph, o *graph.Oriented, pg *core.PG, nodes int, mode Mode) (*Result, error) {
	if g == nil || o == nil {
		return nil, fmt.Errorf("dist: TC needs a graph and its orientation")
	}
	n := g.NumVertices()
	if o.NumVertices() != n {
		return nil, fmt.Errorf("dist: orientation covers %d vertices, graph has %d", o.NumVertices(), n)
	}
	if err := validateRun(nodes, mode); err != nil {
		return nil, err
	}
	if mode == ShipSketches {
		if pg == nil {
			return nil, fmt.Errorf("dist: ShipSketches needs a ProbGraph (BuildOriented over the same orientation)")
		}
		if pg.NumVertices() != n {
			return nil, fmt.Errorf("dist: ProbGraph covers %d vertices, graph has %d", pg.NumVertices(), n)
		}
	}

	c := newCluster(n, nodes)
	res := &Result{Nodes: nodes, Mode: mode}
	done := ctx.Done()

	// The worker bodies are the shared plan partials of plan.go — the
	// same code the real cluster's shards run — wrapped around this
	// substrate's transport: the node's fetch channel and row caches.
	switch mode {
	case ShipNeighborhoods:
		counts := make([]int64, nodes)
		serve := func(u uint32) payload {
			return payload{data: pgio.AppendNeighborhood(nil, g.Neighbors(u))}
		}
		res.Net = c.run(serve, func(nd *node) {
			rank := o.Rank
			rows := func(u uint32) []uint32 {
				if nd.owns(u) {
					return o.NPlus(u)
				}
				if nu, ok := nd.lists[u]; ok {
					return nu
				}
				nu := OrientFilter(decodeList(nd.fetch(u)), rank, rank[u])
				nd.lists[u] = nu
				return nu
			}
			counts[nd.id], _ = TCPartialExact(o, nd.lo, nd.hi, rows, done)
		})
		var total int64
		for _, tc := range counts {
			total += tc
		}
		res.Count = float64(total)
	case ShipSketches:
		sums := make([]float64, nodes)
		serve := func(u uint32) payload {
			return payload{data: pgio.AppendSketchRow(nil, pg, u)}
		}
		res.Net = c.run(serve, func(nd *node) {
			need := func(u uint32) {
				if !nd.owns(u) && !nd.seen[u] {
					nd.fetch(u)
					nd.seen[u] = true
				}
			}
			sums[nd.id], _ = TCPartialSketch(o, pg, nd.lo, nd.hi, need, done)
		})
		var total float64
		for _, s := range sums {
			total += s
		}
		res.Count = total
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// clampInter clips a pairwise intersection estimate to its cardinality
// bound [0, min(|X|, |Y|)]. Both sizes are known to the requester — its
// own exactly, the remote one from the cardinality every sketch
// response carries (cardBytes) — and the clamp removes the estimator's
// out-of-range excursions on the small oriented sets.
func clampInter(est float64, dx, dy int) float64 {
	if est < 0 {
		return 0
	}
	mx := float64(dx)
	if dy < dx {
		mx = float64(dy)
	}
	if est > mx {
		return mx
	}
	return est
}

// decodeList decodes a fetched neighborhood payload. The in-process
// transport cannot corrupt bytes between encode and decode, so a
// failure here is an invariant violation, not an input error.
func decodeList(p payload) []uint32 {
	l, err := pgio.DecodeNeighborhood(p.data)
	if err != nil {
		panic(fmt.Sprintf("dist: undecodable neighborhood payload: %v", err))
	}
	return l
}
