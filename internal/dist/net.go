package dist

import (
	"sync"
	"sync/atomic"

	"probgraph/internal/obs"
)

// payload is the body of a response message: the actually-encoded wire
// bytes of the owner's row, produced by the internal/pgio row codec.
// The accounting layer measures len(data) — NetStats reports what a
// real transport would have carried, not a declared estimate. (In
// ShipNeighborhoods mode the requester decodes data back into a vertex
// list; in ShipSketches mode the requester estimates through its own
// replica of the sketch parameters, so the bytes are measured and the
// content is checked by tests, but not re-read on the hot path.)
type payload struct {
	data []byte
}

// request asks the owner of vertex for its row; the response is sent on
// reply. Exactly one request per requester is ever outstanding, so a
// reply channel of capacity 1 can never block the serving node.
type request struct {
	from   int
	vertex uint32
	reply  chan payload
}

// traffic is the atomically-updated accounting cell behind NodeTraffic.
type traffic struct {
	bytesOut, bytesIn atomic.Int64
	msgsOut, msgsIn   atomic.Int64
}

// network connects the nodes of one run: an inbox channel per node plus
// the byte/message accounting. Accounting uses atomics because a node's
// inbound counters are bumped by its peers' goroutines; the totals are
// nevertheless deterministic, because the per-node caches make the set
// of messages a pure function of graph, partition, and protocol.
type network struct {
	part    Partition
	inboxes []chan request
	cells   []traffic
	fetches atomic.Int64

	// freeze makes stats idempotent: the accounting is snapshotted (and
	// folded into the process-wide obs counters) exactly once per run,
	// so a second call — or two concurrent callers racing at the end of
	// a run — can neither double-count the observability totals nor
	// observe a half-frozen snapshot.
	freeze sync.Once
	frozen NetStats
}

func newNetwork(part Partition) *network {
	nw := &network{
		part:    part,
		inboxes: make([]chan request, part.P),
		cells:   make([]traffic, part.P),
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = make(chan request, part.P)
	}
	return nw
}

// account records one message of the given size from node `from` to
// node `to`.
func (nw *network) account(from, to, bytes int) {
	nw.cells[from].bytesOut.Add(int64(bytes))
	nw.cells[from].msgsOut.Add(1)
	nw.cells[to].bytesIn.Add(int64(bytes))
	nw.cells[to].msgsIn.Add(1)
}

// fetch performs one remote fetch round trip on behalf of node `from`:
// request to the owner, blocking wait for the response, both messages
// accounted.
func (nw *network) fetch(from int, v uint32, reply chan payload) payload {
	owner := nw.part.Owner(v)
	nw.account(from, owner, reqBytes)
	nw.inboxes[owner] <- request{from: from, vertex: v, reply: reply}
	p := <-reply
	nw.account(owner, from, respHeaderBytes+len(p.data))
	nw.fetches.Add(1)
	return p
}

// stats freezes the accounting into a NetStats value. Call after every
// worker has finished; repeated calls return the same frozen snapshot
// without re-folding the observability counters.
func (nw *network) stats() NetStats {
	nw.freeze.Do(func() {
		s := NetStats{PerNode: make([]NodeTraffic, len(nw.cells)), Fetches: nw.fetches.Load()}
		for i := range nw.cells {
			c := &nw.cells[i]
			t := NodeTraffic{
				BytesOut: c.bytesOut.Load(), BytesIn: c.bytesIn.Load(),
				MsgsOut: c.msgsOut.Load(), MsgsIn: c.msgsIn.Load(),
			}
			s.PerNode[i] = t
			s.Bytes += t.BytesOut
			s.Messages += t.MsgsOut
		}
		// Fold this run into the process-wide observability counters —
		// once per run, at the single point every distributed kernel
		// funnels through. NetStats itself stays deterministic per run.
		r := obs.Default()
		r.Counter("probgraph_dist_bytes_shipped_total",
			"Wire bytes shipped across all simulated distributed runs.").Add(s.Bytes)
		r.Counter("probgraph_dist_messages_total",
			"Messages exchanged across all simulated distributed runs.").Add(s.Messages)
		r.Counter("probgraph_dist_fetches_total",
			"Remote row fetch round-trips across all simulated distributed runs.").Add(s.Fetches)
		r.Counter("probgraph_dist_runs_total",
			"Completed simulated distributed runs.").Inc()
		nw.frozen = s
	})
	return nw.frozen
}
