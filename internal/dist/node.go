package dist

import "sync"

// node is one simulated machine: a contiguous vertex block, a reusable
// reply channel, and a cache of remote rows. A node's worker goroutine
// is the only accessor of its cache, so no locking is needed there.
type node struct {
	id     int
	lo, hi uint32 // owned vertex block [lo, hi)
	nw     *network
	reply  chan payload

	// lists caches fetched (and post-processed) remote adjacency lists
	// in ShipNeighborhoods mode; seen marks fetched sketch rows in
	// ShipSketches mode. Either way each remote vertex is transferred
	// at most once per node.
	lists map[uint32][]uint32
	seen  map[uint32]bool
}

// owns reports whether v is in the node's local block.
func (nd *node) owns(v uint32) bool { return v >= nd.lo && v < nd.hi }

// fetch pulls vertex v's row from its owner over the network.
func (nd *node) fetch(v uint32) payload {
	return nd.nw.fetch(nd.id, v, nd.reply)
}

// cluster is one run's worth of simulated machines.
type cluster struct {
	part  Partition
	nw    *network
	nodes []*node
}

func newCluster(n, p int) *cluster {
	part := BlockPartition(n, p)
	nw := newNetwork(part)
	c := &cluster{part: part, nw: nw, nodes: make([]*node, p)}
	for i := 0; i < p; i++ {
		lo, hi := part.Block(i)
		c.nodes[i] = &node{
			id: i, lo: lo, hi: hi, nw: nw,
			reply: make(chan payload, 1),
			lists: make(map[uint32][]uint32),
			seen:  make(map[uint32]bool),
		}
	}
	return c
}

// run starts one server goroutine and one worker goroutine per node,
// waits for every worker to finish, then shuts the servers down and
// returns the frozen network accounting. serve is the owner-side
// protocol handler (it must be safe for concurrent reads of shared
// graph/sketch storage); worker is the kernel body over one node.
func (c *cluster) run(serve func(v uint32) payload, worker func(nd *node)) NetStats {
	var servers, workers sync.WaitGroup
	for _, nd := range c.nodes {
		servers.Add(1)
		go func(inbox chan request) {
			defer servers.Done()
			for req := range inbox {
				req.reply <- serve(req.vertex)
			}
		}(c.nw.inboxes[nd.id])
	}
	for _, nd := range c.nodes {
		workers.Add(1)
		go func(nd *node) {
			defer workers.Done()
			worker(nd)
		}(nd)
	}
	workers.Wait()
	for _, inbox := range c.nw.inboxes {
		close(inbox)
	}
	servers.Wait()
	return c.nw.stats()
}
