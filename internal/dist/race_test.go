package dist

import (
	"sync"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
)

// TestStatsFreezeIdempotent pins the NetStats snapshotting contract:
// freezing is once-per-run. A second stats() call (or two callers racing
// at the end of a run) returns the same snapshot and must not fold the
// run into the process-wide observability counters twice.
func TestStatsFreezeIdempotent(t *testing.T) {
	nw := newNetwork(BlockPartition(10, 2))
	nw.account(0, 1, 100)
	nw.account(1, 0, 250)
	nw.fetches.Add(1)

	runs := obs.Default().Counter("probgraph_dist_runs_total",
		"Completed simulated distributed runs.")
	bytes := obs.Default().Counter("probgraph_dist_bytes_shipped_total",
		"Wire bytes shipped across all simulated distributed runs.")
	runs0, bytes0 := runs.Value(), bytes.Value()

	var wg sync.WaitGroup
	snaps := make([]NetStats, 4)
	for i := range snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snaps[i] = nw.stats()
		}(i)
	}
	wg.Wait()

	for i, s := range snaps {
		if s.Bytes != 350 || s.Messages != 2 || s.Fetches != 1 {
			t.Fatalf("snapshot %d: got bytes=%d msgs=%d fetches=%d, want 350/2/1", i, s.Bytes, s.Messages, s.Fetches)
		}
	}
	if d := runs.Value() - runs0; d != 1 {
		t.Fatalf("run counter advanced by %d across repeated stats() calls, want exactly 1", d)
	}
	if d := bytes.Value() - bytes0; d != 350 {
		t.Fatalf("byte counter advanced by %d, want exactly 350 (no double fold)", d)
	}
}

// TestConcurrentKernels runs several distributed kernels at once (the
// serving layer's reality: global queries land concurrently) and checks
// every run's count and accounting against a sequential reference.
// Under -race this also proves the per-run accounting cells and the
// process-wide fold are data-race free across overlapping runs.
func TestConcurrentKernels(t *testing.T) {
	g := graph.Kronecker(9, 8, 7)
	o := g.Orient(1)
	cfg := core.Config{Kind: core.BF, Budget: 0.25, Seed: 7}
	opg, err := core.BuildOriented(o, g.SizeBits(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fpg, err := core.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 4

	wantTC, err := TC(g, o, opg, nodes, ShipSketches)
	if err != nil {
		t.Fatal(err)
	}
	wantSim, err := Sim(g, fpg, nodes, ShipSketches, 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				res, err := TC(g, o, opg, nodes, ShipSketches)
				if err != nil {
					errs <- err
					return
				}
				if res.Count != wantTC.Count || res.Net.Bytes != wantTC.Net.Bytes || res.Net.Fetches != wantTC.Net.Fetches {
					t.Errorf("concurrent TC run diverged: count %v bytes %d, want %v / %d",
						res.Count, res.Net.Bytes, wantTC.Count, wantTC.Net.Bytes)
				}
			} else {
				res, err := Sim(g, fpg, nodes, ShipSketches, 0)
				if err != nil {
					errs <- err
					return
				}
				if res.Count != wantSim.Count || res.Net.Bytes != wantSim.Net.Bytes {
					t.Errorf("concurrent Sim run diverged: count %v bytes %d, want %v / %d",
						res.Count, res.Net.Bytes, wantSim.Count, wantSim.Net.Bytes)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
