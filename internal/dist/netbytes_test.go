package dist

import (
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
)

// replayFetches recomputes, in plain sequential code, the deterministic
// set of remote fetches a TC (oriented) or Sim (full-neighborhood) run
// performs: per node, each remote endpoint is fetched once. It returns
// the fetch multiset as (requester-node, vertex) counts folded into
// total payload byte sums under both accounting schemes.
func replayFetches(t *testing.T, g *graph.Graph, o *graph.Oriented, pg *core.PG, nodes int, oriented bool) (fetches int64, measured int64, declared int64) {
	t.Helper()
	part := BlockPartition(g.NumVertices(), nodes)
	for nd := 0; nd < nodes; nd++ {
		lo, hi := part.Block(nd)
		seen := map[uint32]bool{}
		visit := func(u uint32) {
			if u >= lo && u < hi || seen[u] {
				return
			}
			seen[u] = true
			fetches++
			measured += reqBytes + respHeaderBytes
			declared += reqBytes + respHeaderBytes
			if pg != nil {
				measured += int64(pgio.SketchRowSize(pg, u))
				declared += int64(4 + pg.RowBytes(u)) // old heuristic: cardBytes + row
			} else {
				measured += int64(4 + 4*g.Degree(u))
				declared += int64(4 * g.Degree(u)) // old heuristic: 4 B per ID
			}
		}
		for v := lo; v < hi; v++ {
			if oriented {
				for _, u := range o.NPlus(v) {
					visit(u)
				}
			} else {
				for _, u := range g.Neighbors(v) {
					if u > v {
						visit(u)
					}
				}
			}
		}
	}
	return fetches, measured, declared
}

// TestMeasuredBytesMatchEncodedPayloads pins the tentpole change in the
// accounting layer: NetStats.Bytes now equals the sum of
// len(encoded payload) + framing over the deterministic fetch set, for
// both protocols and for fixed- and variable-stride sketch rows.
func TestMeasuredBytesMatchEncodedPayloads(t *testing.T) {
	g := graph.Kronecker(9, 8, 7)
	o := g.Orient(1)
	const nodes = 4

	t.Run("neighborhoods/tc", func(t *testing.T) {
		res, err := TC(g, o, nil, nodes, ShipNeighborhoods)
		if err != nil {
			t.Fatal(err)
		}
		fetches, measured, _ := replayFetches(t, g, o, nil, nodes, true)
		if res.Net.Fetches != fetches {
			t.Fatalf("run fetched %d rows, replay says %d", res.Net.Fetches, fetches)
		}
		if res.Net.Bytes != measured {
			t.Fatalf("measured %d bytes, replay of the codec says %d", res.Net.Bytes, measured)
		}
	})

	for _, kind := range []core.Kind{core.BF, core.OneHash} {
		t.Run("sketches/tc/"+kind.String(), func(t *testing.T) {
			pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: kind, Budget: 0.25, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			res, err := TC(g, o, pg, nodes, ShipSketches)
			if err != nil {
				t.Fatal(err)
			}
			_, measured, _ := replayFetches(t, g, o, pg, nodes, true)
			if res.Net.Bytes != measured {
				t.Fatalf("%v: measured %d bytes, replay of the codec says %d", kind, res.Net.Bytes, measured)
			}
		})
	}

	t.Run("sketches/sim", func(t *testing.T) {
		pg, err := core.Build(g, core.Config{Kind: core.KMV, Budget: 0.25, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sim(g, pg, nodes, ShipSketches, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, measured, _ := replayFetches(t, g, nil, pg, nodes, false)
		if res.Net.Bytes != measured {
			t.Fatalf("measured %d bytes, replay of the codec says %d", res.Net.Bytes, measured)
		}
	})
}

// TestMeasuredVsDeclaredHeuristic documents the delta between the
// measured accounting and the declared-size heuristic it replaced: a
// self-delimiting wire format pays one u32 count per neighborhood and
// one u32 prefix-length per variable-stride (1H/KMV) sketch row — 4
// bytes per fetch — while fixed-stride rows (BF, kH, HLL) cost exactly
// what the heuristic declared. The old numbers are reproducible from
// the new ones, so historical BENCH records stay interpretable.
func TestMeasuredVsDeclaredHeuristic(t *testing.T) {
	g := graph.Kronecker(9, 8, 7)
	o := g.Orient(1)
	const nodes = 4

	// Neighborhoods: measured = declared + 4*fetches.
	res, err := TC(g, o, nil, nodes, ShipNeighborhoods)
	if err != nil {
		t.Fatal(err)
	}
	fetches, measured, declared := replayFetches(t, g, o, nil, nodes, true)
	if measured-declared != 4*fetches {
		t.Fatalf("neighborhood replay delta %d, want 4 B per %d fetches", measured-declared, fetches)
	}
	if res.Net.Bytes != declared+4*res.Net.Fetches {
		t.Fatalf("measured %d is not declared %d + 4*%d", res.Net.Bytes, declared, res.Net.Fetches)
	}

	// Fixed-stride sketch rows: measured == declared, bit for bit.
	pgBF, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resBF, err := TC(g, o, pgBF, nodes, ShipSketches)
	if err != nil {
		t.Fatal(err)
	}
	_, measuredBF, declaredBF := replayFetches(t, g, o, pgBF, nodes, true)
	if measuredBF != declaredBF {
		t.Fatalf("BF replay: measured %d != declared %d (fixed-stride rows must agree)", measuredBF, declaredBF)
	}
	if resBF.Net.Bytes != measuredBF {
		t.Fatalf("BF run measured %d, replay says %d", resBF.Net.Bytes, measuredBF)
	}

	// Variable-stride rows: measured = declared + 4*fetches (the
	// explicit prefix length the old accounting left implied).
	pg1H, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.OneHash, Budget: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res1H, err := TC(g, o, pg1H, nodes, ShipSketches)
	if err != nil {
		t.Fatal(err)
	}
	f1H, measured1H, declared1H := replayFetches(t, g, o, pg1H, nodes, true)
	if measured1H-declared1H != 4*f1H {
		t.Fatalf("1H replay delta %d, want 4 B per %d fetches", measured1H-declared1H, f1H)
	}
	if res1H.Net.Bytes != measured1H {
		t.Fatalf("1H run measured %d, replay says %d", res1H.Net.Bytes, measured1H)
	}

	// The §VIII-F headline survives measurement: sketch rows still move
	// far fewer bytes than raw neighborhoods on a skewed graph.
	if resBF.Net.Bytes >= res.Net.Bytes {
		t.Fatalf("sketch protocol (%d B) must beat neighborhoods (%d B)", resBF.Net.Bytes, res.Net.Bytes)
	}
}
