package dist

import (
	"sort"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/par"
)

// planBufs is the per-partial scratch of the batched sketch kernels;
// estimates are still clamped and summed in neighbor order, so batched
// partials stay bit-identical to the scalar loops (and therefore the
// cluster stays bit-identical to the simulator).
type planBufs struct {
	cnt []int32
	out []float64
}

func (b *planBufs) size(n int) ([]int32, []float64) {
	if n > cap(b.cnt) {
		b.cnt = make([]int32, n)
		b.out = make([]float64, n)
	}
	return b.cnt[:n], b.out[:n]
}

// This file is the communication plan shared by the in-process simulator
// (tc.go, sim.go) and the real multi-process cluster (internal/cluster):
// the per-block partial-kernel bodies, factored out of the simulator's
// worker goroutines. Both substrates run the same partial over the same
// block partition and reduce the per-block sums in block order, so a
// cluster answer is bit-identical to the simulator's by construction —
// which is what lets internal/cluster use dist as its oracle.
//
// Row transport is abstracted behind two closure shapes:
//
//   - rows func(u) []uint32 returns the (post-processed) adjacency rows
//     the exact kernels intersect — local rows directly, remote rows
//     fetched/decoded/cached however the substrate likes;
//   - need func(u) announces that vertex u's sketch row is about to be
//     consumed, so the substrate can ship it (once) for byte accounting.
//     The estimate itself always reads the local sketch replica, exactly
//     as the simulator does (see the payload doc in net.go).
//
// Every partial checks done once per owned vertex — the simulator's
// cooperative-cancellation granularity — and reports whether it ran to
// completion. A partial cut short returns its partial sum and false.

// TCPartialExact computes one block's oriented triangle-count partial,
// tc = Σ_{v∈[lo,hi)} Σ_{u∈N+_v} |N+_v ∩ N+_u|, with rows(u) supplying
// N+_u for every endpoint u (local or remote).
func TCPartialExact(o *graph.Oriented, lo, hi uint32, rows func(uint32) []uint32, done <-chan struct{}) (int64, bool) {
	var tc int64
	for v := lo; v < hi; v++ {
		if par.Cancelled(done) {
			return tc, false
		}
		nv := o.NPlus(v)
		for _, u := range nv {
			tc += int64(graph.IntersectCount(nv, rows(u)))
		}
	}
	return tc, true
}

// TCPartialSketch computes one block's sketched triangle-count partial
// over oriented sketches (core.BuildOriented): each |N+_v ∩ N+_u| is
// estimated from the local sketch replica and clamped to its cardinality
// bound; need(u) is called before every endpoint's estimate so the
// substrate can transfer the row once per block.
func TCPartialSketch(o *graph.Oriented, pg *core.PG, lo, hi uint32, need func(uint32), done <-chan struct{}) (float64, bool) {
	var s float64
	var bufs planBufs
	for v := lo; v < hi; v++ {
		if par.Cancelled(done) {
			return s, false
		}
		nv := o.NPlus(v)
		if len(nv) == 0 {
			continue
		}
		// Announce every endpoint first, then estimate the whole row in
		// one batched pass; each need(u) still precedes u's estimate,
		// and the clamped sum keeps the scalar loop's neighbor order.
		for _, u := range nv {
			need(u)
		}
		cnt, out := bufs.size(len(nv))
		pg.IntCardMany(v, nv, cnt, out)
		sv := pg.SetSize(v)
		for i, u := range nv {
			s += clampInter(out[i], sv, pg.SetSize(u))
		}
	}
	return s, true
}

// SimPartialExact computes one block's exact edge-similarity partial:
// every undirected edge (u, v) with u < v and u in [lo, hi) is scored
// from the exact intersection, with rows(v) supplying N_v for the far
// endpoint. The caller divides the reduced total by the edge count.
func SimPartialExact(g *graph.Graph, lo, hi uint32, m mining.Measure, rows func(uint32) []uint32, done <-chan struct{}) (float64, bool) {
	var s float64
	for u := lo; u < hi; u++ {
		if par.Cancelled(done) {
			return s, false
		}
		nu := g.Neighbors(u)
		for _, v := range nu {
			if v <= u {
				continue // each undirected edge once, at the owner of min(u,v)
			}
			nv := rows(v)
			inter := float64(graph.IntersectCount(nu, nv))
			s += mining.SimFromInter(m, inter, len(nu), len(nv))
		}
	}
	return s, true
}

// SimPartialSketch computes one block's sketched edge-similarity partial
// over full-neighborhood sketches (core.Build), estimating from the
// local replica with the cardinality clamp; need(v) announces the far
// endpoint before each estimate.
func SimPartialSketch(g *graph.Graph, pg *core.PG, lo, hi uint32, m mining.Measure, need func(uint32), done <-chan struct{}) (float64, bool) {
	var s float64
	var bufs planBufs
	for u := lo; u < hi; u++ {
		if par.Cancelled(done) {
			return s, false
		}
		nu := g.Neighbors(u)
		// Each undirected edge once, at the owner of min(u,v): the v > u
		// half is the suffix of the sorted neighbor list.
		k := sort.Search(len(nu), func(i int) bool { return nu[i] > u })
		cands := nu[k:]
		if len(cands) == 0 {
			continue
		}
		for _, v := range cands {
			need(v)
		}
		cnt, out := bufs.size(len(cands))
		pg.IntCardMany(u, cands, cnt, out)
		su := pg.SetSize(u)
		for i, v := range cands {
			inter := clampInter(out[i], su, pg.SetSize(v))
			s += mining.SimFromInter(m, inter, su, pg.SetSize(v))
		}
	}
	return s, true
}

// OrientFilter derives N+_u from a full, ID-sorted neighborhood N_u: the
// neighbors ranked above u, in the same ID order the orientation stores
// them. It is how a requester reconstructs the oriented row from a raw
// CSR neighborhood fetched off the wire, in both the simulator and the
// real cluster.
func OrientFilter(full []uint32, rank []int32, ru int32) []uint32 {
	out := make([]uint32, 0, len(full)/2)
	for _, w := range full {
		if rank[w] > ru {
			out = append(out, w)
		}
	}
	return out
}
