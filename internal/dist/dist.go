// Package dist is a simulated distributed-memory execution substrate for
// the ProbGraph mining kernels (§VIII-F of the paper). The vertex set is
// block-partitioned across `nodes` workers, each backed by its own
// goroutine; workers are connected by a byte-counting message network
// over Go channels. A kernel runs over its local partition and fetches
// remote neighborhoods on demand through one of two wire protocols:
//
//   - ShipNeighborhoods: the owner replies with the raw CSR neighborhood
//     N_u encoded through the pgio row codec (a u32 count plus 4 bytes
//     per vertex ID) — the baseline a CSR-partitioned system pays, and
//     the requester decodes it and computes exactly;
//   - ShipSketches: the owner replies with vertex u's fixed-size
//     ProbGraph sketch row (pgio.AppendSketchRow), and the requester
//     estimates.
//
// Every node keeps a cache of remote rows so each (requester, vertex)
// pair crosses the network at most once — the communication volume is
// therefore a deterministic function of the graph and the partition,
// independent of goroutine scheduling, and so are the reported counts
// (each node scans its block in ascending vertex order and accumulates
// privately; per-node partial results are reduced in node order).
//
// The paper's §VIII-F observation drops out of the two protocols: raw
// neighborhoods are fetched hub-heavily (a hub appears in many remote
// adjacency lists) and hubs have the largest payloads, while sketch rows
// cost the same few cache lines regardless of degree — cutting the bytes
// on the wire by multiples on skewed graphs.
//
// Static metadata (the vertex partition and the degree-order rank array
// used to orient fetched neighborhoods) is replicated on every node at
// load time, as distributed triangle-count systems do; it is O(n) once,
// not per-query traffic, and is excluded from NetStats.
package dist

import (
	"fmt"
)

// Mode selects the wire protocol for remote neighborhood fetches.
type Mode int

const (
	// ShipNeighborhoods ships full raw CSR adjacency lists (4 B/vertex
	// ID); kernels compute exactly.
	ShipNeighborhoods Mode = iota
	// ShipSketches ships one fixed-size ProbGraph sketch row per vertex;
	// kernels estimate.
	ShipSketches
)

// String returns the protocol name used in the experiment tables.
func (m Mode) String() string {
	switch m {
	case ShipNeighborhoods:
		return "ship-neighborhoods"
	case ShipSketches:
		return "ship-sketches"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

func (m Mode) valid() bool { return m == ShipNeighborhoods || m == ShipSketches }

// Wire-format constants. Every remote fetch is one request message and
// one response message; both protocols pay the same fixed framing, so
// the reduction the tables report comes from payload sizes alone.
// Payloads themselves are produced by the internal/pgio row codec
// (AppendNeighborhood / AppendSketchRow) and accounted at their encoded
// length — NetStats is measured from real bytes, not declared from a
// size formula. The sketch row codec ships the exact set cardinality
// inline: the estimators and the cardinality clamp consume |N_u|
// (PG.SetSize), which e.g. a Bloom filter row does not encode.
const (
	// reqBytes frames a fetch request: 4 B vertex ID + 4 B requester ID.
	reqBytes = 8
	// respHeaderBytes frames a response: 4 B vertex ID + 4 B payload length.
	respHeaderBytes = 8
)

// NodeTraffic is the per-node view of the network accounting.
type NodeTraffic struct {
	BytesOut, BytesIn int64
	MsgsOut, MsgsIn   int64
}

// NetStats is the byte-accounting layer of a simulated run: the total
// traffic all fetches generated, with a per-node breakdown. It is the
// measured quantity behind the §VIII-F communication-reduction table.
type NetStats struct {
	Bytes    int64 // total bytes on the wire, requests + responses
	Messages int64 // total messages (2 per remote fetch)
	Fetches  int64 // remote rows transferred (cache misses)
	PerNode  []NodeTraffic
}

// Result is the outcome of one distributed kernel run.
type Result struct {
	// Count is the kernel's result: the exact value in ShipNeighborhoods
	// mode, the sketch estimate in ShipSketches mode. For TC it is the
	// triangle count; for Sim the mean edge similarity.
	Count float64
	// Nodes and Mode echo the run configuration.
	Nodes int
	Mode  Mode
	// Net is the network traffic the run generated.
	Net NetStats
}

// validateRun checks the arguments shared by every kernel.
func validateRun(nodes int, mode Mode) error {
	if nodes < 1 {
		return fmt.Errorf("dist: node count %d < 1", nodes)
	}
	if !mode.valid() {
		return fmt.Errorf("dist: unknown mode %v", mode)
	}
	return nil
}
