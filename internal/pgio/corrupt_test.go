package pgio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// failWriter fails after `allow` bytes — the same failure-injection
// harness graph/io_fail_test.go uses for the IO paths.
type failWriter struct {
	allow   int
	written int
}

var errInjected = errors.New("injected write failure")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.allow {
		can := w.allow - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, errInjected
	}
	w.written += len(p)
	return len(p), nil
}

// encodeGood returns one well-formed artifact file.
func encodeGood(t *testing.T) []byte {
	t.Helper()
	a := buildArtifact(t)
	var buf bytes.Buffer
	if _, err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeFailurePaths(t *testing.T) {
	a := buildArtifact(t)
	for _, allow := range []int{0, 10, 100} {
		if _, err := Encode(&failWriter{allow: allow}, a); !errors.Is(err, errInjected) {
			t.Fatalf("allow=%d: want injected write failure, got %v", allow, err)
		}
	}
	if _, err := Encode(&failWriter{allow: 0}, nil); err == nil {
		t.Fatal("nil artifact accepted")
	}
	if _, err := Encode(&failWriter{allow: 0}, &Artifact{}); err == nil {
		t.Fatal("graphless artifact accepted")
	}
	// Cross-section drift is refused at encode time too.
	small := graph.Complete(4)
	pg, err := core.Build(small, core.Config{Kind: core.BF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Artifact{G: a.G, PGs: map[core.Kind]*core.PG{core.BF: pg}}
	if _, err := Encode(&failWriter{allow: 1 << 20}, bad); err == nil {
		t.Fatal("PG over a different graph accepted")
	}
}

// TestDecodeCorruptions is the table-driven corruption matrix the issue
// asks for: truncation, bad magic, wrong version, CRC damage, and
// structural drift each map to their typed sentinel error — and never a
// panic.
func TestDecodeCorruptions(t *testing.T) {
	good := encodeGood(t)

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		sentinel error
	}{
		{"empty input", func(b []byte) []byte { return nil }, ErrTruncated},
		{"header cut", func(b []byte) []byte { return b[:headerBytes-1] }, ErrTruncated},
		{"table cut", func(b []byte) []byte { return b[:headerBytes+5] }, ErrTruncated},
		{"payload cut", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		{"mid-section cut", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], Version+1)
			return b
		}, ErrVersion},
		{"absurd section count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 1<<30)
			return b
		}, ErrCorrupt},
		{"table bit flip", func(b []byte) []byte { b[headerBytes+2] ^= 0x40; return b }, ErrChecksum},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b }, ErrChecksum},
		{"first payload bit flip", func(b []byte) []byte {
			// Damage the first payload byte (the graph section), located
			// via its table offset — alignment fill sits before it.
			off := binary.LittleEndian.Uint64(b[headerBytes+8:])
			b[off] ^= 0x80
			return b
		}, ErrChecksum},
		{"nonzero alignment fill", func(b []byte) []byte {
			// The v2 gap between table end and the first 64-byte-aligned
			// payload must be all zeros; a stray byte there is corruption
			// the payload CRCs cannot see.
			nSec := binary.LittleEndian.Uint32(b[8:])
			b[headerBytes+tableEntryBytes*int(nSec)] ^= 0x80
			return b
		}, ErrCorrupt},
		{"misaligned v2 payload", func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[headerBytes+8:])
			binary.LittleEndian.PutUint64(b[headerBytes+8:], off+4)
			return fixTableCRC(b)
		}, ErrCorrupt},
		{"overlapping v2 payloads", func(b []byte) []byte {
			// Point section 1 at section 0's extent: aligned, zero-filled
			// gap, but overlapping — only the layout invariant catches it.
			off0 := binary.LittleEndian.Uint64(b[headerBytes+8:])
			binary.LittleEndian.PutUint64(b[headerBytes+tableEntryBytes+8:], off0)
			return fixTableCRC(b)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			_, err := Decode(bytes.NewReader(b))
			if err == nil {
				t.Fatal("corrupted artifact decoded cleanly")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("error %v does not wrap %v", err, tc.sentinel)
			}
		})
	}
}

// craft builds a syntactically valid file (correct CRCs and table) from
// arbitrary section payloads, so decode-side structural validation is
// reachable past the checksum layer.
func craft(secs ...section) []byte {
	data, _ := assemble(secs)
	return data
}

// fixTableCRC recomputes the header's table CRC after a test mutated a
// table entry, so the mutation reaches the layout checks behind it.
func fixTableCRC(b []byte) []byte {
	nSec := binary.LittleEndian.Uint32(b[8:])
	table := b[headerBytes : headerBytes+tableEntryBytes*int(nSec)]
	binary.LittleEndian.PutUint32(b[12:], crc32.Checksum(table, castagnoli))
	return b
}

// TestDecodeStructuralDrift exercises drift that checksums cannot catch:
// internally consistent bytes whose content contradicts itself.
func TestDecodeStructuralDrift(t *testing.T) {
	g := graph.Kronecker(7, 6, 5)
	ge := enc{pad: true}
	ge.u64(uint64(g.NumVertices()))
	ge.i64s(g.Offsets)
	ge.u32s(g.Neigh)
	graphSec := section{secGraph, "graph", ge.b}

	pg, err := core.Build(g, core.Config{Kind: core.OneHash, Seed: 3, StoreElems: true})
	if err != nil {
		t.Fatal(err)
	}

	small := graph.Complete(4)
	smallPG, err := core.Build(small, core.Config{Kind: core.BF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		file []byte
	}{
		{"no graph section", craft(section{secPG, "pg", encodePG(pg, roleFull, true)})},
		{"duplicate graph", craft(graphSec, graphSec)},
		{"duplicate sketch kind", craft(graphSec,
			section{secPG, "pg", encodePG(pg, roleFull, true)},
			section{secPG, "pg", encodePG(pg, roleFull, true)})},
		{"sketches over a different graph", craft(graphSec,
			section{secPG, "pg", encodePG(smallPG, roleFull, true)})},
		{"unknown PG role", craft(graphSec,
			section{secPG, "pg", mutatePG(encodePG(pg, roleFull, true), func(b []byte) { b[0] = 9 })})},
		{"unknown sketch kind", craft(graphSec,
			section{secPG, "pg", mutatePG(encodePG(pg, roleFull, true), func(b []byte) { b[1] = 200 })})},
		{"unknown estimator", craft(graphSec,
			section{secPG, "pg", mutatePG(encodePG(pg, roleFull, true), func(b []byte) { b[2] = 200 })})},
		{"prefix length beyond k", craft(graphSec,
			section{secPG, "pg", breakLens(t, pg)})},
		// Allocation-driving scalars a hostile file can inflate without
		// growing the payload: both must die as ErrCorrupt, not OOM.
		{"absurd Bloom hash count", craft(graphSec,
			section{secPG, "pg", mutatePG(encodePG(smallBF(t, g), roleFull, true), func(b []byte) {
				b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff // numHashes u32
			})})},
		{"absurd sketch k on an empty universe", craft(emptyGraphSection(),
			section{secPG, "pg", mutatePG(encodePG(emptyKHash(t), roleFull, true), func(b []byte) {
				b[16], b[17], b[18], b[19] = 0xff, 0xff, 0xff, 0xff // k u32
			})})},
		{"graph with broken CSR", craft(brokenGraphSection(g))},
		{"oriented without matching n", craft(graphSec, orientedSection(graph.Complete(3).Orient(0)))},
		// K5's sizes array is 5 i32s = 20 bytes, so the v2 layout inserts
		// 4 zero bytes after it (payload bytes 84..87); a nonzero byte
		// there passes the CRC (it is covered and recomputed by craft)
		// and must die on the padding check instead.
		{"nonzero intra-payload padding", craft(completeGraphSection(5),
			section{secPG, "pg", mutatePG(encodePG(completeBF(t, 5), roleFull, true), func(b []byte) { b[84] = 1 })})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.file))
			if err == nil {
				t.Fatal("drifted artifact decoded cleanly")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}

	// Unknown section types are skipped, not fatal (forward compat).
	ok := craft(graphSec, section{99, "mystery", []byte{1, 2, 3}})
	a, info, err := DecodeWithInfo(bytes.NewReader(ok))
	if err != nil {
		t.Fatalf("unknown section type must be skipped: %v", err)
	}
	if a.G == nil || info.Sections[1].Name != "unknown" {
		t.Fatal("unknown section handling lost the surrounding artifact")
	}
}

// mutatePG applies fn to a copy of one encoded PG payload.
func mutatePG(b []byte, fn func([]byte)) []byte {
	out := append([]byte(nil), b...)
	fn(out)
	return out
}

// breakLens encodes pg with one bottom-k prefix length pushed past K —
// geometry drift FromRaw must refuse.
func breakLens(t *testing.T, pg *core.PG) []byte {
	t.Helper()
	clone := pg.Clone()
	clone.Raw().Lens[0] = int32(clone.Cfg.K + 1) // Raw aliases the clone's storage
	return encodePG(clone, roleFull, true)
}

// smallBF builds BF sketches over g for the scalar-cap cases.
func smallBF(t *testing.T, g *graph.Graph) *core.PG {
	t.Helper()
	pg, err := core.Build(g, core.Config{Kind: core.BF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// emptyKHash builds kH sketches over the 0-vertex graph — the shape
// whose empty arrays vacuously satisfy every payload-proportional
// length check, leaving the config scalars as the only guard.
func emptyKHash(t *testing.T) *core.PG {
	t.Helper()
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := core.Build(g, core.Config{Kind: core.KHash, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// completeGraphSection encodes K_n as a padded v2 graph section.
func completeGraphSection(n int) section {
	g := graph.Complete(n)
	e := enc{pad: true}
	e.u64(uint64(g.NumVertices()))
	e.i64s(g.Offsets)
	e.u32s(g.Neigh)
	return section{secGraph, "graph", e.b}
}

// completeBF builds BF sketches over K_n.
func completeBF(t *testing.T, n int) *core.PG {
	t.Helper()
	pg, err := core.Build(graph.Complete(n), core.Config{Kind: core.BF, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func emptyGraphSection() section {
	e := enc{pad: true}
	e.u64(0)
	e.i64s([]int64{0})
	e.u32s(nil)
	return section{secGraph, "graph", e.b}
}

// brokenGraphSection encodes a CSR whose adjacency violates the strict
// sortedness invariant (K4 with vertex 0's list rewritten to 3,2,3).
func brokenGraphSection(*graph.Graph) section {
	g := graph.Complete(4)
	g.Neigh[0] = 3
	e := enc{pad: true}
	e.u64(uint64(g.NumVertices()))
	e.i64s(g.Offsets)
	e.u32s(g.Neigh)
	return section{secGraph, "graph", e.b}
}

func orientedSection(o *graph.Oriented) section {
	e := enc{pad: true}
	e.u64(uint64(o.NumVertices()))
	e.i64s(o.Offsets)
	e.u32s(o.Neigh)
	e.i32s(o.Rank)
	return section{secOriented, "oriented", e.b}
}
