package pgio

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"unsafe"
)

// Decode mode strings reported by Mapped.Mode, /v1/stats, and the obs
// gauges.
const (
	// ModeMmap: sections are used in place from a read-only mapping.
	ModeMmap = "mmap"
	// ModeCopy: sections were copied onto the heap (v1 file, non-linux
	// platform, or big-endian host).
	ModeCopy = "copy"
)

// Mapped is an artifact opened by Mmap: the decoded Artifact plus the
// mapping backing it. On the zero-copy path every CSR array and sketch
// row aliases the mapping, so the Artifact must not outlive Close — the
// serving layer ties Close to serve-epoch retirement for exactly this
// reason. On the fallback path (v1 file, unsupported platform) the
// Artifact owns ordinary heap copies and Close is a no-op.
type Mapped struct {
	A    *Artifact
	Info *FileInfo

	data   []byte // the raw mapping; nil on the copying fallback
	closed atomic.Bool
	mode   string
}

// Mode reports how the artifact was decoded: ModeMmap or ModeCopy.
func (m *Mapped) Mode() string { return m.mode }

// MappedBytes reports the size of the live mapping (0 on the copying
// fallback or after Close).
func (m *Mapped) MappedBytes() int64 {
	if m.mode != ModeMmap || m.closed.Load() {
		return 0
	}
	return int64(len(m.data))
}

// Close releases the mapping. Idempotent. After Close every slice of a
// zero-copy Artifact is invalid — callers (the serving layer's epoch
// retirement) must guarantee no reader is left. A copying Mapped closes
// trivially.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if err := unmapFile(data); err != nil {
		return fmt.Errorf("pgio: unmapping artifact: %w", err)
	}
	return nil
}

// hostLittleEndian reports whether this machine stores integers the way
// the format does; a big-endian host must fall back to the converting
// copy decoder.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Mmap opens a .pg artifact for zero-copy serving: the file is mapped
// read-only, every CRC is verified once against the mapping, and the
// decoded sections alias it — cold start costs page table setup plus one
// checksum sweep instead of a full heap copy, resident pages are shared
// through the page cache by every process mapping the same file, and a
// graph larger than RAM pages in on demand. Sketch sections are advised
// MADV_RANDOM (point probes touch scattered rows), CSR sections
// MADV_SEQUENTIAL (kernel sweeps walk them in order).
//
// Falls back to the copying decoder — same Artifact, Mode() == ModeCopy,
// no mapping to manage — when the platform has no mmap, the host is
// big-endian, or the file is an unaligned v1 artifact.
func Mmap(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pgio: opening artifact: %w", err)
	}
	defer f.Close()

	zeroCopy := mmapSupported && hostLittleEndian()
	if zeroCopy {
		// Peek the header: a v1 file carries no alignment guarantee and
		// must take the copying path (pgpack -upgrade converts it).
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:], 0); err == nil &&
			binary.LittleEndian.Uint32(hdr[0:]) == Magic &&
			binary.LittleEndian.Uint32(hdr[4:]) != Version2 {
			zeroCopy = false
		}
	}
	if !zeroCopy {
		a, info, err := DecodeWithInfo(f)
		if err != nil {
			return nil, err
		}
		return &Mapped{A: a, Info: info, mode: ModeCopy}, nil
	}

	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("pgio: stat artifact: %w", err)
	}
	if st.Size() == 0 {
		return nil, fmt.Errorf("pgio: empty artifact file: %w", ErrTruncated)
	}
	data, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("pgio: mapping artifact: %w", err)
	}
	a, info, err := decodeBytes(data, true)
	if err != nil {
		_ = unmapFile(data)
		return nil, err
	}
	adviseSections(data, info)
	return &Mapped{A: a, Info: info, data: data, mode: ModeMmap}, nil
}

// adviseSections hands the kernel per-section access-pattern hints.
// Ranges are widened to page boundaries (madvise requires page-aligned
// addresses); where a sketch section and a CSR section share a page the
// later hint wins for that page, which is harmless.
func adviseSections(data []byte, info *FileInfo) {
	for _, s := range info.Sections {
		if s.Bytes == 0 {
			continue
		}
		start := s.Offset &^ (pageSize - 1)
		end := s.Offset + s.Bytes
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		seg := data[start:end]
		if strings.HasPrefix(s.Name, "pg:") || strings.HasPrefix(s.Name, "opg:") {
			adviseRandom(seg)
		} else {
			adviseSequential(seg)
		}
	}
}

var pageSize = int64(os.Getpagesize())
