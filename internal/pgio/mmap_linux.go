//go:build linux

package pgio

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy path: true where the stdlib exposes
// the mmap family.
const mmapSupported = true

// mapFile maps the whole file read-only and shared, so resident pages
// are the page cache's — every process mapping the same artifact shares
// them, and RSS charges only the pages a process actually touches.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}

// adviseRandom hints scattered point access (sketch rows): no readahead.
func adviseRandom(seg []byte) {
	if len(seg) > 0 {
		_ = syscall.Madvise(seg, syscall.MADV_RANDOM)
	}
}

// adviseSequential hints in-order sweeps (CSR arrays): aggressive
// readahead.
func adviseSequential(seg []byte) {
	if len(seg) > 0 {
		_ = syscall.Madvise(seg, syscall.MADV_SEQUENTIAL)
	}
}
