package pgio

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

// writeArtifactFile encodes a (version-parameterized) artifact to a temp
// file and returns its path.
func writeArtifactFile(t *testing.T, a *Artifact, version uint32) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.pg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encodeVersion(f, a, version); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMmapBitIdentity is the zero-copy contract: a mapped artifact holds
// the same graph, orientation, and sketch arrays as a heap decode, every
// estimator answer is Float64bits-identical, and the PGs report borrowed.
func TestMmapBitIdentity(t *testing.T) {
	a := buildArtifact(t)
	path := writeArtifactFile(t, a, Version)

	m, err := Mmap(path)
	if err != nil {
		t.Fatalf("Mmap: %v", err)
	}
	defer m.Close()
	if runtime.GOOS == "linux" {
		if m.Mode() != ModeMmap {
			t.Fatalf("Mode() = %q on linux, want %q", m.Mode(), ModeMmap)
		}
		if m.MappedBytes() != m.Info.Bytes {
			t.Fatalf("MappedBytes() = %d, file is %d", m.MappedBytes(), m.Info.Bytes)
		}
		for _, k := range m.A.Kinds {
			if !m.A.PGs[k].Borrowed() {
				t.Fatalf("%v: mapped PG does not report Borrowed()", k)
			}
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, heapInfo, err := DecodeWithInfo(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Info, heapInfo) {
		t.Fatalf("mapped FileInfo %+v differs from heap decode %+v", m.Info, heapInfo)
	}
	if !reflect.DeepEqual(m.A.G.Offsets, heap.G.Offsets) || !reflect.DeepEqual(m.A.G.Neigh, heap.G.Neigh) {
		t.Fatal("mapped CSR differs from heap decode")
	}
	if !reflect.DeepEqual(m.A.O, heap.O) {
		t.Fatal("mapped orientation differs from heap decode")
	}
	if !reflect.DeepEqual(m.A.Kinds, heap.Kinds) {
		t.Fatalf("mapped kind order %v, want %v", m.A.Kinds, heap.Kinds)
	}
	n := uint32(heap.G.NumVertices())
	for _, k := range heap.Kinds {
		mr, hr := m.A.PGs[k].Raw(), heap.PGs[k].Raw()
		if !reflect.DeepEqual(mr, hr) {
			t.Fatalf("%v: mapped raw arrays differ from heap decode", k)
		}
		// The acceptance criterion verbatim: Float64bits identity between
		// heap-decoded and mmap-decoded estimates, for every sketch kind.
		for i := uint32(0); i < 128; i++ {
			u, v := (i*37)%n, (i*101+13)%n
			hb := math.Float64bits(heap.PGs[k].IntCard(u, v))
			mb := math.Float64bits(m.A.PGs[k].IntCard(u, v))
			if hb != mb {
				t.Fatalf("%v: IntCard(%d,%d) bits %x (mmap) != %x (heap)", k, u, v, mb, hb)
			}
		}
	}
	if !reflect.DeepEqual(m.A.OrientedPGs[a.OrientedKinds[0]].Raw(), heap.OrientedPGs[a.OrientedKinds[0]].Raw()) {
		t.Fatal("mapped oriented sketches differ from heap decode")
	}
}

// TestMmapV1Fallback: a v1 file opens through Mmap but on the copying
// path — same content, no mapping to manage.
func TestMmapV1Fallback(t *testing.T) {
	a := buildArtifact(t)
	path := writeArtifactFile(t, a, VersionV1)
	m, err := Mmap(path)
	if err != nil {
		t.Fatalf("Mmap(v1): %v", err)
	}
	if m.Mode() != ModeCopy {
		t.Fatalf("Mode() = %q for a v1 file, want %q", m.Mode(), ModeCopy)
	}
	if m.MappedBytes() != 0 {
		t.Fatalf("MappedBytes() = %d on the copying path", m.MappedBytes())
	}
	for _, k := range m.A.Kinds {
		if m.A.PGs[k].Borrowed() {
			t.Fatalf("%v: copy-decoded PG reports Borrowed()", k)
		}
	}
	if m.A.G.NumVertices() != a.G.NumVertices() || m.A.G.NumEdges() != a.G.NumEdges() {
		t.Fatal("v1 fallback lost the graph")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close on copying path: %v", err)
	}
}

// TestMmapCloseIdempotent: Close twice is safe, and MappedBytes drops to
// zero after the first.
func TestMmapCloseIdempotent(t *testing.T) {
	a := buildArtifact(t)
	m, err := Mmap(writeArtifactFile(t, a, Version))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if m.MappedBytes() != 0 {
		t.Fatalf("MappedBytes() = %d after Close", m.MappedBytes())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMmapCorrupt: corruption surfaces as the same typed errors the
// copying decoder returns, with the transient mapping torn down.
func TestMmapCorrupt(t *testing.T) {
	a := buildArtifact(t)
	path := writeArtifactFile(t, a, Version)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x01 // payload damage
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Mmap(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Mmap of a damaged file: got %v, want ErrChecksum", err)
	}
	if _, err := Mmap(filepath.Join(t.TempDir(), "missing.pg")); err == nil {
		t.Fatal("Mmap of a missing file succeeded")
	}
}

// countingReaderAt counts the bytes served, so TestReadInfoHeaderOnly
// can prove the fast path never touches payload bodies.
type countingReaderAt struct {
	r    *bytes.Reader
	read int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.read += int64(n)
	return n, err
}

// TestReadInfoHeaderOnly: ReadInfo reproduces Encode's structural
// summary from the header, table, and 2-byte PG name prefixes alone.
func TestReadInfoHeaderOnly(t *testing.T) {
	a := buildArtifact(t)
	for _, version := range []uint32{VersionV1, Version2} {
		var buf bytes.Buffer
		wantInfo, err := encodeVersion(&buf, a, version)
		if err != nil {
			t.Fatal(err)
		}
		cr := &countingReaderAt{r: bytes.NewReader(buf.Bytes())}
		info, err := ReadInfo(cr)
		if err != nil {
			t.Fatalf("ReadInfo(v%d): %v", version, err)
		}
		if !reflect.DeepEqual(info, wantInfo) {
			t.Fatalf("v%d: ReadInfo %+v differs from encode-side %+v", version, info, wantInfo)
		}
		budget := int64(headerBytes + tableEntryBytes*len(info.Sections) + 2*len(info.Sections))
		if cr.read > budget {
			t.Fatalf("v%d: ReadInfo read %d bytes of a %d-byte file (budget %d) — it is touching payloads",
				version, cr.read, buf.Len(), budget)
		}
	}

	// Damage that ReadInfo must still catch without payload access.
	var buf bytes.Buffer
	if _, err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadInfo(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[headerBytes+2] ^= 0x40
	if _, err := ReadInfo(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("table damage: got %v", err)
	}
	if _, err := ReadInfo(bytes.NewReader(good[:headerBytes-1])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header cut: got %v", err)
	}
}
