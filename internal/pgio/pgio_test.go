package pgio

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// allKinds is every sketch representation the codec must round-trip.
var allKinds = []core.Kind{core.BF, core.KHash, core.OneHash, core.KMV, core.HLL}

// buildArtifact assembles a full artifact over one Kronecker graph: the
// CSR, its orientation, one full-neighborhood PG per kind (1H with
// stored elements, exercising the aligned element array), and one
// oriented BF PG.
func buildArtifact(t *testing.T) *Artifact {
	t.Helper()
	g := graph.Kronecker(9, 8, 5)
	o := g.Orient(0)
	a := &Artifact{
		G: g, O: o,
		PGs:         make(map[core.Kind]*core.PG),
		OrientedPGs: make(map[core.Kind]*core.PG),
	}
	for _, k := range allKinds {
		cfg := core.Config{Kind: k, Budget: 0.25, Seed: 99}
		if k == core.OneHash {
			cfg.StoreElems = true
		}
		pg, err := core.Build(g, cfg)
		if err != nil {
			t.Fatalf("build %v: %v", k, err)
		}
		a.PGs[k] = pg
		a.Kinds = append(a.Kinds, k)
	}
	opg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	a.OrientedPGs[core.BF] = opg
	a.OrientedKinds = []core.Kind{core.BF}
	return a
}

// TestRoundTripBitIdentity is the tentpole contract: for every sketch
// kind, Decode(Encode(pg)) is bit-identical to the source PG — same
// arrays, same configuration, same re-derived hash family — and the
// graph and orientation survive untouched.
func TestRoundTripBitIdentity(t *testing.T) {
	a := buildArtifact(t)
	var buf bytes.Buffer
	info, err := Encode(&buf, a)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if info.Bytes != int64(buf.Len()) {
		t.Fatalf("FileInfo.Bytes = %d, wrote %d", info.Bytes, buf.Len())
	}
	got, gotInfo, err := DecodeWithInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(info, gotInfo) {
		t.Fatalf("decode FileInfo %+v differs from encode-side %+v", gotInfo, info)
	}

	if !reflect.DeepEqual(got.G.Offsets, a.G.Offsets) || !reflect.DeepEqual(got.G.Neigh, a.G.Neigh) {
		t.Fatal("decoded graph CSR differs")
	}
	if !reflect.DeepEqual(got.O, a.O) {
		t.Fatal("decoded orientation differs")
	}
	if !reflect.DeepEqual(got.Kinds, a.Kinds) {
		t.Fatalf("decoded kind order %v, want %v", got.Kinds, a.Kinds)
	}
	for _, k := range allKinds {
		if !reflect.DeepEqual(got.PGs[k], a.PGs[k]) {
			t.Fatalf("%v: decoded PG is not bit-identical to the source", k)
		}
		// Behavioral identity on top of structural: the decoded sketches
		// answer the hot-path estimator exactly like the originals.
		n := uint32(a.G.NumVertices())
		for i := uint32(0); i < 64; i++ {
			u, v := (i*37)%n, (i*101+13)%n
			if a.PGs[k].IntCard(u, v) != got.PGs[k].IntCard(u, v) {
				t.Fatalf("%v: IntCard(%d,%d) differs after round trip", k, u, v)
			}
		}
	}
	if !reflect.DeepEqual(got.OrientedPGs[core.BF], a.OrientedPGs[core.BF]) {
		t.Fatal("oriented BF sketches are not bit-identical after round trip")
	}
}

// TestDecodeMatchesFreshBuild asserts the other direction of identity:
// a decoded PG equals a from-scratch core.Build with the same
// configuration — decoding really is a substitute for rebuilding.
func TestDecodeMatchesFreshBuild(t *testing.T) {
	a := buildArtifact(t)
	var buf bytes.Buffer
	if _, err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range allKinds {
		fresh, err := core.Build(got.G, got.PGs[k].Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, got.PGs[k]) {
			t.Fatalf("%v: decoded PG differs from a fresh build of the same config", k)
		}
	}
}

// TestInfoSections pins the structural summary: section names, the
// payload-size accounting, and SectionBytes.
func TestInfoSections(t *testing.T) {
	a := buildArtifact(t)
	var buf bytes.Buffer
	info, err := Encode(&buf, a)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"graph", "oriented", "pg:BF", "pg:kH", "pg:1H", "pg:KMV", "pg:HLL", "opg:BF"}
	if len(info.Sections) != len(wantNames) {
		t.Fatalf("%d sections, want %d", len(info.Sections), len(wantNames))
	}
	var payload, padding int64
	for i, s := range info.Sections {
		if s.Name != wantNames[i] {
			t.Fatalf("section %d is %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Bytes <= 0 {
			t.Fatalf("section %q has non-positive size %d", s.Name, s.Bytes)
		}
		if s.Offset%PayloadAlign != 0 {
			t.Fatalf("section %q payload at offset %d is not %d-byte aligned", s.Name, s.Offset, PayloadAlign)
		}
		if s.Padding < 0 || s.Padding >= PayloadAlign {
			t.Fatalf("section %q has alignment fill %d outside [0,%d)", s.Name, s.Padding, PayloadAlign)
		}
		payload += s.Bytes
		padding += s.Padding
	}
	overhead := int64(headerBytes + tableEntryBytes*len(info.Sections))
	if payload+padding+overhead != info.Bytes {
		t.Fatalf("payload %d + padding %d + overhead %d != file size %d", payload, padding, overhead, info.Bytes)
	}
	if got := info.SectionBytes()["pg:BF"]; got != info.Sections[2].Bytes {
		t.Fatalf("SectionBytes[pg:BF] = %d, want %d", got, info.Sections[2].Bytes)
	}
}

// TestV1Compat pins backward compatibility: a version-1 (unaligned)
// artifact still decodes on the copying path, bit-identically to the v2
// decode of the same content, with the summary reporting version 1 and
// zero alignment fill everywhere.
func TestV1Compat(t *testing.T) {
	a := buildArtifact(t)
	var v1, v2 bytes.Buffer
	info1, err := encodeVersion(&v1, a, VersionV1)
	if err != nil {
		t.Fatalf("encode v1: %v", err)
	}
	if _, err := Encode(&v2, a); err != nil {
		t.Fatalf("encode v2: %v", err)
	}
	if info1.Version != VersionV1 {
		t.Fatalf("v1 summary reports version %d", info1.Version)
	}
	if v1.Len() >= v2.Len() {
		t.Fatalf("v1 file (%d bytes) is not smaller than padded v2 (%d bytes)", v1.Len(), v2.Len())
	}
	got1, gotInfo1, err := DecodeWithInfo(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	got2, _, err := DecodeWithInfo(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	if gotInfo1.Version != VersionV1 {
		t.Fatalf("decoded v1 summary reports version %d", gotInfo1.Version)
	}
	for _, s := range gotInfo1.Sections {
		if s.Padding != 0 {
			t.Fatalf("v1 section %q reports %d bytes of alignment fill", s.Name, s.Padding)
		}
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("v1 decode differs from v2 decode of the same artifact")
	}
	// A v1 image must be refused by the zero-copy path (no alignment
	// guarantee) with a version error pointing at pgpack -upgrade.
	if _, _, err := decodeBytes(v1.Bytes(), true); !errors.Is(err, ErrVersion) {
		t.Fatalf("borrowed decode of a v1 image: got %v, want ErrVersion", err)
	}
	if _, _, err := decodeBytes(v2.Bytes(), true); err != nil {
		t.Fatalf("borrowed decode of a v2 image: %v", err)
	}
}

// TestGraphOnlyArtifact covers the minimal artifact (no orientation, no
// sketches) and the empty graph corner.
func TestGraphOnlyArtifact(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Complete(5),
		mustGraph(t, 0, nil),
		mustGraph(t, 3, nil), // vertices, no edges
	} {
		var buf bytes.Buffer
		if _, err := Encode(&buf, &Artifact{G: g}); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.G.NumVertices() != g.NumVertices() || got.G.NumEdges() != g.NumEdges() {
			t.Fatalf("decoded shape (%d,%d), want (%d,%d)",
				got.G.NumVertices(), got.G.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		if got.O != nil || len(got.Kinds) != 0 {
			t.Fatal("minimal artifact decoded with phantom sections")
		}
	}
}

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestNeighborhoodRowCodec round-trips the dist wire encoding of raw
// CSR neighborhoods.
func TestNeighborhoodRowCodec(t *testing.T) {
	for _, list := range [][]uint32{nil, {7}, {1, 2, 3, 500000}} {
		b := AppendNeighborhood(nil, list)
		if len(b) != 4+4*len(list) {
			t.Fatalf("encoded %d elements into %d bytes", len(list), len(b))
		}
		got, err := DecodeNeighborhood(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, list) && !(len(got) == 0 && len(list) == 0) {
			t.Fatalf("round trip %v -> %v", list, got)
		}
	}
	if _, err := DecodeNeighborhood(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
	if _, err := DecodeNeighborhood([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Fatal("count/length mismatch must fail")
	}
}

// TestSketchRowSize pins SketchRowSize == len(AppendSketchRow) for
// every kind and a spread of vertices — the accounting dist relies on.
func TestSketchRowSize(t *testing.T) {
	a := buildArtifact(t)
	for _, k := range allKinds {
		pg := a.PGs[k]
		for v := uint32(0); v < uint32(pg.NumVertices()); v += 17 {
			b := AppendSketchRow(nil, pg, v)
			if len(b) != SketchRowSize(pg, v) {
				t.Fatalf("%v row %d: encoded %d bytes, SketchRowSize says %d", k, v, len(b), SketchRowSize(pg, v))
			}
		}
	}
}
