//go:build !linux

package pgio

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy path; on platforms without a ported
// mmap shim, Mmap silently degrades to the copying decoder.
const mmapSupported = false

var errNoMmap = errors.New("pgio: memory mapping is not supported on this platform")

func mapFile(*os.File, int64) ([]byte, error) { return nil, errNoMmap }
func unmapFile([]byte) error                  { return nil }
func adviseRandom([]byte)                     {}
func adviseSequential([]byte)                 {}
