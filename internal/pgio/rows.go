package pgio

import (
	"encoding/binary"
	"fmt"

	"probgraph/internal/core"
)

// This file is the row-level wire codec: the per-vertex payloads the
// §VIII-F distributed protocols actually put on the wire. internal/dist
// used to *declare* payload sizes from a formula; it now encodes rows
// through these functions and accounts len() of the produced bytes, so
// NetStats is measured, not estimated. Rows are self-delimiting (count
// and length prefixes are explicit) — the honest cost of a payload a
// receiver can decode without out-of-band context.

// AppendNeighborhood appends the wire form of one raw CSR neighborhood:
// u32 element count followed by the sorted u32 vertex IDs.
func AppendNeighborhood(dst []byte, list []uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(list)))
	dst = growBy(dst, 4*len(list))
	for _, v := range list {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// DecodeNeighborhood parses a payload written by AppendNeighborhood.
func DecodeNeighborhood(b []byte) ([]uint32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("pgio: neighborhood payload is %d bytes, shorter than its count prefix: %w", len(b), ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+4*n {
		return nil, fmt.Errorf("pgio: neighborhood payload is %d bytes, count prefix says %d elements: %w", len(b), n, ErrCorrupt)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4+4*i:])
	}
	return out, nil
}

// AppendSketchRow appends the wire form of vertex v's sketch row: the
// u32 exact set cardinality (the estimators and the cardinality clamp
// consume |N_v|, which e.g. a Bloom row does not encode), then the
// kind-specific payload —
//
//   - BF: the fixed-size filter words;
//   - kH: the K signature slots;
//   - 1H/KMV: u32 occupied-prefix length, the sorted hashes, and the
//     aligned element IDs when the sketch stores them;
//   - HLL: the 2^p registers.
func AppendSketchRow(dst []byte, pg *core.PG, v uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(pg.SetSize(v)))
	switch pg.Cfg.Kind {
	case core.BF:
		row := pg.BloomRow(v)
		dst = growBy(dst, 8*len(row))
		for _, w := range row {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	case core.KHash:
		row := pg.KHashRow(v)
		dst = growBy(dst, 8*len(row))
		for _, s := range row {
			dst = binary.LittleEndian.AppendUint64(dst, s)
		}
	case core.OneHash, core.KMV:
		row := pg.BottomKRow(v)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(row.Hashes)))
		dst = growBy(dst, 8*len(row.Hashes)+4*len(row.Elems))
		for _, h := range row.Hashes {
			dst = binary.LittleEndian.AppendUint64(dst, h)
		}
		for _, e := range row.Elems {
			dst = binary.LittleEndian.AppendUint32(dst, e)
		}
	case core.HLL:
		dst = append(dst, pg.HLLRow(v)...)
	}
	return dst
}

// SketchRowSize returns len(AppendSketchRow(nil, pg, v)) without
// encoding — the measured wire size of one sketch row.
func SketchRowSize(pg *core.PG, v uint32) int {
	const card = 4
	switch pg.Cfg.Kind {
	case core.BF, core.KHash, core.HLL:
		return card + pg.RowBytes(v)
	case core.OneHash, core.KMV:
		return card + 4 + pg.RowBytes(v) // explicit prefix-length field
	}
	return card
}
