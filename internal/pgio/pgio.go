// Package pgio is the binary artifact layer of ProbGraph: a versioned
// little-endian on-disk format for the derived state every other layer
// consumes — the CSR graph, its orientation, and one fixed-stride sketch
// set (core.PG) per representation — plus the row-level wire codec the
// simulated distributed substrate ships fetches through.
//
// The paper's premise (§V–§VI, Table V) is that fixed-stride per-vertex
// sketches are cheap to store and move; this package makes that literal.
// An artifact holds the flat arrays exactly as they sit in memory, so
// decoding is a memory-bandwidth operation: no edge-list parsing, no
// re-hashing, no re-orientation. Decode(Encode(x)) is bit-identical to x
// for every section and every sketch kind.
//
// File layout (all integers little-endian; see docs/FORMAT.md for the
// normative specification):
//
//	header        magic "PGAF" | version u32 | section count u32 |
//	              table CRC32-C u32 | reserved u64
//	section table per section: type u32 | payload CRC32-C u32 |
//	              offset u64 | length u64 | reserved u64
//	payloads      concatenated section bodies (v2: each payload starts
//	              64-byte aligned, zero fill between payloads)
//
// Sections carry their own CRC32-C, so corruption is detected per
// section before any content is interpreted. Unknown section types are
// skipped (forward compatibility); versions other than 1 and 2 are
// refused. Version 2 adds alignment padding so payloads can be used in
// place from a memory mapping (see Mmap); version 1 files still decode
// on the copying path. Every failure mode maps to one of the typed
// sentinel errors below — decode never panics on hostile input.
package pgio

import (
	"errors"
	"hash/crc32"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

const (
	// Magic identifies a ProbGraph artifact file: the bytes "PGAF".
	Magic uint32 = 0x46414750
	// Version is the current artifact format version. Version 2 adds
	// alignment: every section payload starts on a PayloadAlign (64-byte)
	// file offset and every array inside a payload is padded with zeros
	// to an 8-byte boundary, so a mapped file can be used in place
	// without copying. Both versions decode; only v2 is written.
	Version uint32 = Version2
	// VersionV1 is the original unaligned format (PR 5). It still
	// decodes on the copying path and can still be written (see
	// pgpack -upgrade's compatibility tests), but mmap serving refuses
	// it: its payloads carry no alignment guarantee.
	VersionV1 uint32 = 1
	// Version2 is the aligned format this build writes.
	Version2 uint32 = 2

	// PayloadAlign is the file-offset alignment of every v2 section
	// payload: one cache line, so the first sketch row of a mapped
	// section never straddles a line and u64 arrays can be reinterpreted
	// in place on any architecture Go supports.
	PayloadAlign = 64
	// arrayAlign is the intra-payload alignment of every v2 array: the
	// widest element (u64/i64/f64) must land on a natural boundary for
	// the zero-copy cast to be legal.
	arrayAlign = 8

	headerBytes       = 24
	tableEntryBytes   = 32
	maxSections       = 1 << 10 // sanity cap: a header claiming more is corrupt
	maxSectionPayload = 1 << 40 // sanity cap on one section's length

	// Sanity caps on the PG configuration scalars that drive
	// allocations not bounded by the payload itself (hash.NewFamily
	// allocates NumHashes resp. K seeds). Real configs sit orders of
	// magnitude below: the paper uses b=2 Bloom hashes, and K derives
	// from the per-vertex storage budget. A file claiming more is
	// hostile, not misconfigured.
	maxNumHashes = 1 << 16
	maxSketchK   = 1 << 16
)

// Section type codes.
const (
	secGraph    uint32 = 1 // CSR graph
	secOriented uint32 = 2 // degree-ordered N+ orientation with rank
	secPG       uint32 = 3 // one sketch set (role byte: full or oriented)
)

// PG section role byte.
const (
	roleFull     uint8 = 0 // full-neighborhood sketches (core.Build)
	roleOriented uint8 = 1 // oriented N+ sketches (core.BuildOriented)
)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed decode failures. Errors returned by Decode wrap exactly one of
// these, so callers can dispatch with errors.Is.
var (
	// ErrBadMagic: the input is not a ProbGraph artifact at all.
	ErrBadMagic = errors.New("pgio: bad magic (not a ProbGraph artifact)")
	// ErrVersion: the artifact was written by an incompatible format version.
	ErrVersion = errors.New("pgio: unsupported artifact version")
	// ErrTruncated: the input ends before the structure it declares.
	ErrTruncated = errors.New("pgio: truncated artifact")
	// ErrChecksum: a section's payload does not match its recorded CRC.
	ErrChecksum = errors.New("pgio: checksum mismatch")
	// ErrCorrupt: a section decodes but contradicts itself (geometry or
	// configuration drift, invalid CSR, duplicate or missing sections).
	ErrCorrupt = errors.New("pgio: corrupt artifact")
	// ErrMismatch: the artifact is internally consistent but does not
	// provide what the caller asked for (e.g. a sketch kind that is not
	// resident). Returned by consumers such as serve.OpenArtifact.
	ErrMismatch = errors.New("pgio: artifact does not match the requested configuration")
)

// Artifact is the in-memory form of one artifact file: the graph,
// optionally its orientation, and the resident sketch sets keyed by
// representation. Kind order is preserved (Kinds[0] is the default a
// serving snapshot restored from the artifact answers with).
type Artifact struct {
	G *graph.Graph
	O *graph.Oriented // nil when the artifact carries no orientation

	// Kinds lists the full-neighborhood sketch kinds in section order;
	// PGs holds the sketches themselves.
	Kinds []core.Kind
	PGs   map[core.Kind]*core.PG

	// OrientedKinds/OrientedPGs are the oriented (N+) sketch sets, used
	// by the clique kernels; most artifacts carry none.
	OrientedKinds []core.Kind
	OrientedPGs   map[core.Kind]*core.PG
}

// SectionInfo describes one encoded section: its human-readable name
// ("graph", "oriented", "pg:BF", "opg:BF"), payload size, CRC, file
// offset, and the zero-fill inserted before the payload to align it
// (always 0 for v1 artifacts).
type SectionInfo struct {
	Name    string `json:"name"`
	Bytes   int64  `json:"bytes"`
	CRC     uint32 `json:"crc"`
	Offset  int64  `json:"offset"`
	Padding int64  `json:"padding"`
}

// FileInfo is the artifact's structural summary: what pgpack prints and
// what the serving layer surfaces in /v1/stats next to MemoryBytes.
type FileInfo struct {
	Version  uint32        `json:"version"`
	Bytes    int64         `json:"bytes"` // total file size, header included
	Sections []SectionInfo `json:"sections"`
}

// SectionBytes returns the per-section payload sizes keyed by name.
func (fi *FileInfo) SectionBytes() map[string]int64 {
	out := make(map[string]int64, len(fi.Sections))
	for _, s := range fi.Sections {
		out[s.Name] += s.Bytes
	}
	return out
}

// sectionName renders the Info name of a section.
func sectionName(typ uint32, role uint8, kind core.Kind) string {
	switch typ {
	case secGraph:
		return "graph"
	case secOriented:
		return "oriented"
	case secPG:
		if role == roleOriented {
			return "opg:" + kind.String()
		}
		return "pg:" + kind.String()
	}
	return "unknown"
}
