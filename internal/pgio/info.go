package pgio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"probgraph/internal/core"
)

// ReadInfo is the header-only fast path: it reads the 24-byte header,
// the section table, and — to render sketch section names — the 2-byte
// role/kind prefix of each PG payload, never the payload bodies. For a
// multi-gigabyte artifact that is a few hundred bytes of IO instead of
// the whole file, which is what pgpack -info wants when it lists section
// layout. The table CRC is verified; payload CRCs are not (use Decode or
// Mmap for content verification). Offsets and padding are validated the
// same way the full decoder validates them, minus the zero-fill sweep.
func ReadInfo(r io.ReaderAt) (*FileInfo, error) {
	var hdr [headerBytes]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("pgio: reading artifact header: %w", ErrTruncated)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != Magic {
		return nil, fmt.Errorf("pgio: magic %#08x, want %#08x: %w", magic, Magic, ErrBadMagic)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != Version2 && version != VersionV1 {
		return nil, fmt.Errorf("pgio: artifact version %d, this build reads %d and %d: %w", version, VersionV1, Version2, ErrVersion)
	}
	nSections := binary.LittleEndian.Uint32(hdr[8:])
	if nSections > maxSections {
		return nil, fmt.Errorf("pgio: header claims %d sections (cap %d): %w", nSections, maxSections, ErrCorrupt)
	}
	table := make([]byte, tableEntryBytes*int(nSections))
	if _, err := r.ReadAt(table, headerBytes); err != nil {
		return nil, fmt.Errorf("pgio: input ends inside the section table: %w", ErrTruncated)
	}
	if got, want := crc32.Checksum(table, castagnoli), binary.LittleEndian.Uint32(hdr[12:]); got != want {
		return nil, fmt.Errorf("pgio: section table CRC %#08x, recorded %#08x: %w", got, want, ErrChecksum)
	}

	info := &FileInfo{Version: version}
	prevEnd := uint64(headerBytes + tableEntryBytes*int(nSections))
	info.Bytes = int64(prevEnd)
	for i := 0; i < int(nSections); i++ {
		ent := table[i*tableEntryBytes:]
		typ := binary.LittleEndian.Uint32(ent[0:])
		crc := binary.LittleEndian.Uint32(ent[4:])
		offset := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		if length > maxSectionPayload || offset+length < offset {
			return nil, fmt.Errorf("pgio: section %d claims an absurd extent [%d, %d): %w", i, offset, offset+length, ErrCorrupt)
		}
		padding := int64(0)
		if version >= Version2 {
			if offset%PayloadAlign != 0 {
				return nil, fmt.Errorf("pgio: v2 section %d payload at offset %d is not %d-byte aligned: %w",
					i, offset, PayloadAlign, ErrCorrupt)
			}
			if offset < prevEnd {
				return nil, fmt.Errorf("pgio: v2 section %d at offset %d overlaps the previous extent ending at %d: %w",
					i, offset, prevEnd, ErrCorrupt)
			}
			padding = int64(offset - prevEnd)
			prevEnd = offset + length
		}
		name := sectionName(typ, 0, 0)
		if typ == secPG {
			// Only the 2-byte role/kind prefix is needed for the name.
			var pre [2]byte
			if length < 2 {
				return nil, fmt.Errorf("pgio: PG section %d is %d bytes, shorter than its role/kind prefix: %w", i, length, ErrCorrupt)
			}
			if _, err := r.ReadAt(pre[:], int64(offset)); err != nil {
				return nil, fmt.Errorf("pgio: section %d payload is unreadable at offset %d: %w", i, offset, ErrTruncated)
			}
			name = sectionName(secPG, pre[0], core.Kind(pre[1]))
		}
		info.Sections = append(info.Sections, SectionInfo{
			Name: name, Bytes: int64(length), CRC: crc,
			Offset: int64(offset), Padding: padding,
		})
		if end := int64(offset + length); end > info.Bytes {
			info.Bytes = end
		}
	}
	return info, nil
}
