package pgio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"probgraph/internal/core"
)

// enc is a growing little-endian byte encoder. Arrays are written with a
// u64 element-count prefix, so every payload is self-describing. With
// pad set (format v2), every array is followed by zero fill up to the
// next 8-byte boundary, so each count prefix — and therefore each
// array's element data — sits 8-byte aligned within the payload.
type enc struct {
	b   []byte
	pad bool
}

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// align8 pads the buffer with zeros to the next 8-byte boundary (v2
// layouts only) — called after every array body.
func (e *enc) align8() {
	if !e.pad {
		return
	}
	for len(e.b)%arrayAlign != 0 {
		e.b = append(e.b, 0)
	}
}

func (e *enc) u8s(v []uint8) {
	e.u64(uint64(len(v)))
	e.b = append(e.b, v...)
	e.align8()
}
func (e *enc) u32s(v []uint32) {
	e.u64(uint64(len(v)))
	e.b = growBy(e.b, 4*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint32(e.b, x)
	}
	e.align8()
}
func (e *enc) i32s(v []int32) {
	e.u64(uint64(len(v)))
	e.b = growBy(e.b, 4*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint32(e.b, uint32(x))
	}
	e.align8()
}
func (e *enc) u64s(v []uint64) {
	e.u64(uint64(len(v)))
	e.b = growBy(e.b, 8*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint64(e.b, x)
	}
}
func (e *enc) i64s(v []int64) {
	e.u64(uint64(len(v)))
	e.b = growBy(e.b, 8*len(v))
	for _, x := range v {
		e.b = binary.LittleEndian.AppendUint64(e.b, uint64(x))
	}
}

// growBy reserves capacity for n more bytes without changing the length,
// so the append loops above never re-allocate mid-array.
func growBy(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// section is one encoded section awaiting assembly.
type section struct {
	typ     uint32
	name    string
	payload []byte
}

// Encode writes the artifact in the current format version (v2: every
// section payload starts 64-byte aligned, every array within a payload
// 8-byte aligned) and returns its structural summary. The graph section
// is mandatory; the orientation and any sketch sections are written
// when present. Sketch kind order follows a.Kinds (resp. a.OrientedKinds)
// when set, otherwise ascending kind value.
func Encode(w io.Writer, a *Artifact) (*FileInfo, error) {
	return encodeVersion(w, a, Version)
}

// encodeVersion is Encode parameterized by format version. Version 1
// (unaligned, no padding) remains writable so the upgrade tool and the
// compatibility tests can produce legacy files.
func encodeVersion(w io.Writer, a *Artifact, version uint32) (*FileInfo, error) {
	if version != Version && version != VersionV1 {
		return nil, fmt.Errorf("pgio: cannot encode format version %d: %w", version, ErrVersion)
	}
	if a == nil || a.G == nil {
		return nil, fmt.Errorf("pgio: encode needs an artifact with a graph")
	}
	pad := version >= Version2
	n := a.G.NumVertices()
	var sections []section

	ge := enc{pad: pad}
	ge.u64(uint64(n))
	ge.i64s(a.G.Offsets)
	ge.u32s(a.G.Neigh)
	sections = append(sections, section{secGraph, "graph", ge.b})

	if a.O != nil {
		if a.O.NumVertices() != n {
			return nil, fmt.Errorf("pgio: orientation covers %d vertices, graph has %d", a.O.NumVertices(), n)
		}
		oe := enc{pad: pad}
		oe.u64(uint64(n))
		oe.i64s(a.O.Offsets)
		oe.u32s(a.O.Neigh)
		oe.i32s(a.O.Rank)
		sections = append(sections, section{secOriented, "oriented", oe.b})
	}

	for _, pgs := range []struct {
		role  uint8
		kinds []core.Kind
		m     map[core.Kind]*core.PG
	}{
		{roleFull, a.Kinds, a.PGs},
		{roleOriented, a.OrientedKinds, a.OrientedPGs},
	} {
		order, err := kindOrder(pgs.kinds, pgs.m)
		if err != nil {
			return nil, err
		}
		for _, k := range order {
			pg := pgs.m[k]
			if pg.NumVertices() != n {
				return nil, fmt.Errorf("pgio: %v sketches cover %d vertices, graph has %d", k, pg.NumVertices(), n)
			}
			sections = append(sections, section{
				secPG, sectionName(secPG, pgs.role, k), encodePG(pg, pgs.role, pad),
			})
		}
	}

	data, info := assembleVersion(sections, version)
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("pgio: writing artifact: %w", err)
	}
	return info, nil
}

// assemble lays out header, section table and payloads into one buffer
// in the current format version — the corruption tests' entry point for
// crafting structurally valid files from arbitrary payloads.
func assemble(sections []section) ([]byte, *FileInfo) {
	return assembleVersion(sections, Version)
}

// assembleVersion lays out header, section table and payloads into one
// buffer. Offsets are from file start; CRCs cover each payload (its
// internal padding included), and the header CRC covers the table. In
// v2, each payload's file offset is rounded up to PayloadAlign with
// zero fill; v1 concatenates payloads back to back.
func assembleVersion(sections []section, version uint32) ([]byte, *FileInfo) {
	info := &FileInfo{Version: version}
	offset := uint64(headerBytes + tableEntryBytes*len(sections))
	var table enc
	for _, s := range sections {
		pad := uint64(0)
		if version >= Version2 {
			aligned := (offset + PayloadAlign - 1) / PayloadAlign * PayloadAlign
			pad = aligned - offset
			offset = aligned
		}
		crc := crc32.Checksum(s.payload, castagnoli)
		table.u32(s.typ)
		table.u32(crc)
		table.u64(offset)
		table.u64(uint64(len(s.payload)))
		table.u64(0) // reserved
		info.Sections = append(info.Sections, SectionInfo{
			Name: s.name, Bytes: int64(len(s.payload)), CRC: crc,
			Offset: int64(offset), Padding: int64(pad),
		})
		offset += uint64(len(s.payload))
	}
	var out enc
	out.u32(Magic)
	out.u32(version)
	out.u32(uint32(len(sections)))
	out.u32(crc32.Checksum(table.b, castagnoli))
	out.u64(0) // reserved
	out.b = append(out.b, table.b...)
	for i, s := range sections {
		for n := info.Sections[i].Padding; n > 0; n-- {
			out.b = append(out.b, 0)
		}
		out.b = append(out.b, s.payload...)
	}
	info.Bytes = int64(offset)
	return out.b, info
}

// kindOrder resolves the section order of one sketch map: the explicit
// order when given (every listed kind must be present, duplicates are
// rejected), ascending kind value otherwise.
func kindOrder(kinds []core.Kind, m map[core.Kind]*core.PG) ([]core.Kind, error) {
	if len(kinds) == 0 {
		out := make([]core.Kind, 0, len(m))
		for k, pg := range m {
			if pg == nil {
				continue
			}
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	seen := make(map[core.Kind]bool, len(kinds))
	out := make([]core.Kind, 0, len(kinds))
	for _, k := range kinds {
		if seen[k] {
			return nil, fmt.Errorf("pgio: duplicate sketch kind %v in artifact order", k)
		}
		seen[k] = true
		if m[k] == nil {
			return nil, fmt.Errorf("pgio: artifact order names %v but no such sketches are attached", k)
		}
		out = append(out, k)
	}
	return out, nil
}

// encodePG serializes one sketch set as a PG section payload: the fixed
// 56-byte configuration block, then every flat array with a count
// prefix. The arrays are written exactly as core.Build laid them out,
// so decoding reconstitutes a bit-identical PG without re-hashing
// anything — and, in v2, each array's element data lands 8-byte aligned
// so a mapped payload can be used in place.
func encodePG(pg *core.PG, role uint8, pad bool) []byte {
	r := pg.Raw()
	e := enc{pad: pad}
	e.u8(role)
	e.u8(uint8(r.Cfg.Kind))
	e.u8(uint8(r.Cfg.Est))
	e.u8(boolByte(r.Cfg.StoreElems))
	e.u8(r.HLLP)
	e.u8(0)
	e.u8(0)
	e.u8(0) // reserved padding
	e.u32(uint32(r.Cfg.NumHashes))
	e.u32(uint32(r.Cfg.BloomBits))
	e.u32(uint32(r.Cfg.K))
	e.u32(uint32(r.Cfg.Workers)) // build provenance; inert after construction
	e.f64(r.Cfg.Budget)
	e.u64(r.Cfg.Seed)
	e.i64(r.CSRBits)
	e.u64(uint64(r.N))
	e.i32s(r.Sizes)
	e.u64s(r.Bits)
	e.u64s(r.Sigs)
	e.u64s(r.Hashes)
	e.i32s(r.Lens)
	e.u32s(r.Elems)
	e.u8s(r.HLLReg)
	return e.b
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
