package pgio

import (
	"bytes"
	"reflect"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// FuzzArtifactRoundTrip drives the codec over randomized small graphs
// and sketch configurations: whatever Build accepts must encode, decode
// without error, and come back bit-identical. The graph is synthesized
// from the fuzzed bytes as an edge list, so the space covers empty
// graphs, isolated vertices, stars, and dense blobs alike.
func FuzzArtifactRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(2), int64(42), uint16(100), false, []byte{1, 2, 2, 3, 3, 1})
	f.Add(uint8(1), uint8(1), int64(7), uint16(50), false, []byte{0, 1})
	f.Add(uint8(2), uint8(3), int64(9), uint16(10), true, []byte{5, 6, 6, 7})
	f.Add(uint8(3), uint8(2), int64(1), uint16(0), false, []byte{})
	f.Add(uint8(4), uint8(4), int64(3), uint16(200), false, []byte{9, 9, 0, 9})
	f.Fuzz(func(t *testing.T, kindB, budgetB uint8, seed int64, nCap uint16, storeElems bool, edgeBytes []byte) {
		kind := core.Kind(int(kindB) % 5)
		budget := 0.05 + float64(budgetB%20)/20.0 // (0, 1]
		n := int(nCap)%256 + 1

		edges := make([]graph.Edge, 0, len(edgeBytes)/2)
		for i := 0; i+1 < len(edgeBytes); i += 2 {
			edges = append(edges, graph.Edge{
				U: uint32(edgeBytes[i]) % uint32(n),
				V: uint32(edgeBytes[i+1]) % uint32(n),
			})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Fatalf("FromEdges: %v", err)
		}
		cfg := core.Config{Kind: kind, Budget: budget, Seed: uint64(seed), StoreElems: storeElems}
		pg, err := core.Build(g, cfg)
		if err != nil {
			t.Fatalf("Build(%v): %v", kind, err)
		}
		a := &Artifact{
			G:     g,
			O:     g.Orient(1),
			Kinds: []core.Kind{kind},
			PGs:   map[core.Kind]*core.PG{kind: pg},
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, a); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode of our own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(got.G.Offsets, a.G.Offsets) || !equalU32(got.G.Neigh, a.G.Neigh) {
			t.Fatal("graph CSR changed across the round trip")
		}
		if !reflect.DeepEqual(got.O.Offsets, a.O.Offsets) || !equalU32(got.O.Neigh, a.O.Neigh) ||
			!reflect.DeepEqual(got.O.Rank, a.O.Rank) {
			t.Fatal("orientation changed across the round trip")
		}
		if !equalPG(pg, got.PGs[kind]) {
			t.Fatalf("%v PG changed across the round trip", kind)
		}
	})
}

// FuzzDecodeNeverPanics throws arbitrary bytes at the decoder: every
// outcome must be a clean (artifact, error) return. The corpus seeds a
// valid artifact so mutation explores deep structure, not just headers.
func FuzzDecodeNeverPanics(f *testing.F) {
	g := graph.Complete(6)
	pg, err := core.Build(g, core.Config{Kind: core.BF, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, &Artifact{G: g, PGs: map[core.Kind]*core.PG{core.BF: pg}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PGAF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, _, err := DecodeWithInfo(bytes.NewReader(data))
		if err == nil && (a == nil || a.G == nil) {
			t.Fatal("nil-error decode returned no graph")
		}
	})
}

// equalU32 compares slices treating nil and empty as equal (an empty
// neighborhood has no bit content to differ on).
func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalPG is the nil/empty-insensitive bit-identity check used where
// degenerate shapes (n = 0) can make Build allocate zero-length arrays
// that decode as nil.
func equalPG(a, b *core.PG) bool {
	ra, rb := a.Raw(), b.Raw()
	if ra.Cfg != rb.Cfg || ra.N != rb.N || ra.CSRBits != rb.CSRBits || ra.HLLP != rb.HLLP {
		return false
	}
	eq32 := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eq64 := func(x, y []uint64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq32(ra.Sizes, rb.Sizes) && eq64(ra.Bits, rb.Bits) && eq64(ra.Sigs, rb.Sigs) &&
		eq64(ra.Hashes, rb.Hashes) && eq32(ra.Lens, rb.Lens) &&
		equalU32(ra.Elems, rb.Elems) && bytes.Equal(ra.HLLReg, rb.HLLReg)
}
