package pgio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// dec is a bounds-checked little-endian reader over one section payload.
// Every read reports underflow instead of panicking, so hostile input
// degrades to a typed error. With pad set (format v2) each array is
// followed by zero fill to the next 8-byte boundary, which the reader
// consumes and verifies. With borrow set the multi-byte array readers
// alias the payload instead of copying — legal only on a little-endian
// host over an aligned v2 payload, which the mmap open path guarantees.
type dec struct {
	b      []byte
	off    int
	err    error
	pad    bool
	borrow bool
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("section payload ends mid-field at byte %d: %w", d.off, ErrCorrupt)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.fail()
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// align8 consumes the zero fill that v2 layouts insert after every
// array; a nonzero padding byte means the writer and the table disagree
// about the layout, which is corruption, not slack.
func (d *dec) align8() {
	if !d.pad || d.err != nil {
		return
	}
	rem := d.off % arrayAlign
	if rem == 0 {
		return
	}
	pad := d.take(arrayAlign - rem)
	for i, b := range pad {
		if b != 0 {
			d.err = fmt.Errorf("nonzero padding byte %#02x at payload byte %d: %w", b, d.off-len(pad)+i, ErrCorrupt)
			return
		}
	}
}

// misaligned flags an array whose element data does not sit on its
// natural boundary — a v2 file with a table offset the encoder would
// never produce.
func (d *dec) misaligned(align int) {
	if d.err == nil {
		d.err = fmt.Errorf("array at payload byte %d is not %d-byte aligned for in-place use: %w", d.off, align, ErrCorrupt)
	}
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads an array-length prefix and checks it against the bytes
// actually remaining, so a hostile length cannot drive an allocation
// beyond the payload it claims to describe.
func (d *dec) count(elemBytes int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off)/uint64(elemBytes) {
		d.fail()
		return 0
	}
	return int(n)
}

// Array readers return nil for count zero, matching how core.Build
// leaves unused representations unallocated (bit-identity includes
// nil-ness of absent arrays).
func (d *dec) u8s() []uint8 {
	n := d.count(1)
	if d.err != nil || n == 0 {
		d.align8()
		return nil
	}
	raw := d.take(n)
	d.align8()
	if d.err != nil {
		return nil
	}
	if d.borrow {
		return raw
	}
	out := make([]uint8, n)
	copy(out, raw)
	return out
}
func (d *dec) u32s() []uint32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		d.align8()
		return nil
	}
	raw := d.take(4 * n)
	d.align8()
	if d.err != nil {
		return nil
	}
	if d.borrow {
		if uintptr(unsafe.Pointer(&raw[0]))%4 != 0 {
			d.misaligned(4)
			return nil
		}
		return unsafe.Slice((*uint32)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return out
}
func (d *dec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		d.align8()
		return nil
	}
	raw := d.take(4 * n)
	d.align8()
	if d.err != nil {
		return nil
	}
	if d.borrow {
		if uintptr(unsafe.Pointer(&raw[0]))%4 != 0 {
			d.misaligned(4)
			return nil
		}
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}
func (d *dec) u64s() []uint64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		d.align8()
		return nil
	}
	raw := d.take(8 * n)
	d.align8()
	if d.err != nil {
		return nil
	}
	if d.borrow {
		if uintptr(unsafe.Pointer(&raw[0]))%8 != 0 {
			d.misaligned(8)
			return nil
		}
		return unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return out
}
func (d *dec) i64s() []int64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		d.align8()
		return nil
	}
	raw := d.take(8 * n)
	d.align8()
	if d.err != nil {
		return nil
	}
	if d.borrow {
		if uintptr(unsafe.Pointer(&raw[0]))%8 != 0 {
			d.misaligned(8)
			return nil
		}
		return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// Decode reads an artifact. See DecodeWithInfo for the form that also
// returns the structural summary.
func Decode(r io.Reader) (*Artifact, error) {
	a, _, err := DecodeWithInfo(r)
	return a, err
}

// DecodeWithInfo reads and validates an artifact: header and table
// checks, per-section CRC verification, then section decoding with full
// geometry validation (the graph's CSR invariants included). Both format
// versions are accepted; every section is copied into fresh heap slices
// (the zero-copy alternative is Mmap). The returned FileInfo mirrors
// what Encode reported when the file was written.
func DecodeWithInfo(r io.Reader) (*Artifact, *FileInfo, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("pgio: reading artifact: %w", err)
	}
	return decodeBytes(buf, false)
}

// decodeBytes validates and decodes one complete in-memory artifact
// image. With borrow set (the mmap path) the decoded structures alias
// buf instead of copying, which requires a v2 image — v1 payloads carry
// no alignment guarantee and are refused with ErrVersion.
func decodeBytes(buf []byte, borrow bool) (*Artifact, *FileInfo, error) {
	if len(buf) < headerBytes {
		return nil, nil, fmt.Errorf("pgio: %d-byte input is shorter than the %d-byte header: %w", len(buf), headerBytes, ErrTruncated)
	}
	magic := binary.LittleEndian.Uint32(buf[0:])
	if magic != Magic {
		return nil, nil, fmt.Errorf("pgio: magic %#08x, want %#08x: %w", magic, Magic, ErrBadMagic)
	}
	version := binary.LittleEndian.Uint32(buf[4:])
	if version != Version2 && version != VersionV1 {
		return nil, nil, fmt.Errorf("pgio: artifact version %d, this build reads %d and %d: %w", version, VersionV1, Version2, ErrVersion)
	}
	if borrow && version != Version2 {
		return nil, nil, fmt.Errorf("pgio: zero-copy decode needs an aligned v%d artifact, file is v%d (run pgpack -upgrade): %w", Version2, version, ErrVersion)
	}
	nSections := binary.LittleEndian.Uint32(buf[8:])
	if nSections > maxSections {
		return nil, nil, fmt.Errorf("pgio: header claims %d sections (cap %d): %w", nSections, maxSections, ErrCorrupt)
	}
	tableEnd := headerBytes + tableEntryBytes*int(nSections)
	if len(buf) < tableEnd {
		return nil, nil, fmt.Errorf("pgio: input ends inside the section table: %w", ErrTruncated)
	}
	table := buf[headerBytes:tableEnd]
	if got, want := crc32.Checksum(table, castagnoli), binary.LittleEndian.Uint32(buf[12:]); got != want {
		return nil, nil, fmt.Errorf("pgio: section table CRC %#08x, recorded %#08x: %w", got, want, ErrChecksum)
	}

	a := &Artifact{
		PGs:         make(map[core.Kind]*core.PG),
		OrientedPGs: make(map[core.Kind]*core.PG),
	}
	info := &FileInfo{Version: version, Bytes: int64(len(buf))}
	prevEnd := uint64(tableEnd)
	for i := 0; i < int(nSections); i++ {
		ent := table[i*tableEntryBytes:]
		typ := binary.LittleEndian.Uint32(ent[0:])
		wantCRC := binary.LittleEndian.Uint32(ent[4:])
		offset := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		if length > maxSectionPayload || offset > uint64(len(buf)) || offset+length > uint64(len(buf)) || offset+length < offset {
			return nil, nil, fmt.Errorf("pgio: section %d spans [%d, %d) beyond the %d-byte file: %w",
				i, offset, offset+length, len(buf), ErrTruncated)
		}
		padding := int64(0)
		if version >= Version2 {
			// v2 layout invariants: payloads sit in table order on
			// 64-byte boundaries, separated only by zero fill. A file
			// violating them was not produced by any encoder.
			if offset%PayloadAlign != 0 {
				return nil, nil, fmt.Errorf("pgio: v2 section %d payload at offset %d is not %d-byte aligned: %w",
					i, offset, PayloadAlign, ErrCorrupt)
			}
			if offset < prevEnd {
				return nil, nil, fmt.Errorf("pgio: v2 section %d at offset %d overlaps the previous extent ending at %d: %w",
					i, offset, prevEnd, ErrCorrupt)
			}
			padding = int64(offset - prevEnd)
			for j := prevEnd; j < offset; j++ {
				if buf[j] != 0 {
					return nil, nil, fmt.Errorf("pgio: nonzero alignment fill byte %#02x at file offset %d: %w",
						buf[j], j, ErrCorrupt)
				}
			}
			prevEnd = offset + length
		}
		payload := buf[offset : offset+length]
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return nil, nil, fmt.Errorf("pgio: section %d payload CRC %#08x, recorded %#08x: %w", i, got, wantCRC, ErrChecksum)
		}
		name, err := decodeSection(a, typ, payload, version, borrow)
		if err != nil {
			return nil, nil, err
		}
		info.Sections = append(info.Sections, SectionInfo{
			Name: name, Bytes: int64(length), CRC: wantCRC,
			Offset: int64(offset), Padding: padding,
		})
	}
	if a.G == nil {
		return nil, nil, fmt.Errorf("pgio: artifact carries no graph section: %w", ErrCorrupt)
	}
	// Cross-section consistency: everything must cover the graph.
	n := a.G.NumVertices()
	if a.O != nil && a.O.NumVertices() != n {
		return nil, nil, fmt.Errorf("pgio: orientation covers %d vertices, graph has %d: %w", a.O.NumVertices(), n, ErrCorrupt)
	}
	for _, set := range []map[core.Kind]*core.PG{a.PGs, a.OrientedPGs} {
		for k, pg := range set {
			if pg.NumVertices() != n {
				return nil, nil, fmt.Errorf("pgio: %v sketches cover %d vertices, graph has %d: %w", k, pg.NumVertices(), n, ErrCorrupt)
			}
		}
	}
	return a, info, nil
}

// decodeSection dispatches one verified payload; unknown types are
// skipped for forward compatibility.
func decodeSection(a *Artifact, typ uint32, payload []byte, version uint32, borrow bool) (string, error) {
	pad := version >= Version2
	switch typ {
	case secGraph:
		if a.G != nil {
			return "", fmt.Errorf("pgio: duplicate graph section: %w", ErrCorrupt)
		}
		g, err := decodeGraph(payload, pad, borrow)
		if err != nil {
			return "", err
		}
		a.G = g
		return "graph", nil
	case secOriented:
		if a.O != nil {
			return "", fmt.Errorf("pgio: duplicate oriented section: %w", ErrCorrupt)
		}
		o, err := decodeOriented(payload, pad, borrow)
		if err != nil {
			return "", err
		}
		a.O = o
		return "oriented", nil
	case secPG:
		return decodePGSection(a, payload, pad, borrow)
	}
	return "unknown", nil
}

func decodeGraph(payload []byte, pad, borrow bool) (*graph.Graph, error) {
	d := &dec{b: payload, pad: pad, borrow: borrow}
	n := d.u64()
	offsets := d.i64s()
	neigh := d.u32s()
	if d.err != nil {
		return nil, fmt.Errorf("pgio: graph section: %w", d.err)
	}
	if n > uint64(len(payload)) || len(offsets) != int(n)+1 {
		return nil, fmt.Errorf("pgio: graph section has %d offsets for %d vertices: %w", len(offsets), n, ErrCorrupt)
	}
	g := &graph.Graph{Offsets: offsets, Neigh: neigh}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pgio: graph section: %v: %w", err, ErrCorrupt)
	}
	return g, nil
}

func decodeOriented(payload []byte, pad, borrow bool) (*graph.Oriented, error) {
	d := &dec{b: payload, pad: pad, borrow: borrow}
	n := d.u64()
	offsets := d.i64s()
	neigh := d.u32s()
	rank := d.i32s()
	if d.err != nil {
		return nil, fmt.Errorf("pgio: oriented section: %w", d.err)
	}
	if n > uint64(len(payload)) || len(offsets) != int(n)+1 || len(rank) != int(n) {
		return nil, fmt.Errorf("pgio: oriented section arrays do not cover %d vertices: %w", n, ErrCorrupt)
	}
	if offsets[0] != 0 || offsets[n] != int64(len(neigh)) {
		return nil, fmt.Errorf("pgio: oriented section offsets do not span the adjacency: %w", ErrCorrupt)
	}
	for v := 0; v < int(n); v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("pgio: oriented section offsets not monotone at vertex %d: %w", v, ErrCorrupt)
		}
	}
	for _, u := range neigh {
		if uint64(u) >= n {
			return nil, fmt.Errorf("pgio: oriented section has out-of-range neighbor %d: %w", u, ErrCorrupt)
		}
	}
	return &graph.Oriented{Offsets: offsets, Neigh: neigh, Rank: rank}, nil
}

func decodePGSection(a *Artifact, payload []byte, pad, borrow bool) (string, error) {
	d := &dec{b: payload, pad: pad, borrow: borrow}
	role := d.u8()
	var r core.Raw
	r.Cfg.Kind = core.Kind(d.u8())
	r.Cfg.Est = core.Estimator(d.u8())
	r.Cfg.StoreElems = d.u8() != 0
	r.HLLP = d.u8()
	d.u8()
	d.u8()
	d.u8() // reserved padding
	r.Cfg.NumHashes = int(d.u32())
	r.Cfg.BloomBits = int(d.u32())
	r.Cfg.K = int(d.u32())
	r.Cfg.Workers = int(d.u32())
	r.Cfg.Budget = d.f64()
	r.Cfg.Seed = d.u64()
	r.CSRBits = d.i64()
	r.N = int(d.u64())
	r.Sizes = d.i32s()
	r.Bits = d.u64s()
	r.Sigs = d.u64s()
	r.Hashes = d.u64s()
	r.Lens = d.i32s()
	r.Elems = d.u32s()
	r.HLLReg = d.u8s()
	if d.err != nil {
		return "", fmt.Errorf("pgio: PG section: %w", d.err)
	}
	if role != roleFull && role != roleOriented {
		return "", fmt.Errorf("pgio: PG section has unknown role %d: %w", role, ErrCorrupt)
	}
	if r.Cfg.Est < core.EstAuto || r.Cfg.Est > core.Est1HSimple {
		return "", fmt.Errorf("pgio: PG section has unknown estimator %d: %w", int(r.Cfg.Est), ErrCorrupt)
	}
	// Cap the scalars that size allocations the payload does not bound
	// (the hash family has NumHashes resp. K seeds): a hostile file must
	// fail with a typed error, never drive an OOM.
	if r.Cfg.NumHashes > maxNumHashes {
		return "", fmt.Errorf("pgio: PG section claims %d Bloom hash functions (cap %d): %w", r.Cfg.NumHashes, maxNumHashes, ErrCorrupt)
	}
	if r.Cfg.K > maxSketchK {
		return "", fmt.Errorf("pgio: PG section claims %d sketch slots per vertex (cap %d): %w", r.Cfg.K, maxSketchK, ErrCorrupt)
	}
	var pg *core.PG
	var err error
	if borrow {
		pg, err = core.FromRawBorrowed(r)
	} else {
		pg, err = core.FromRaw(r)
	}
	if err != nil {
		return "", fmt.Errorf("pgio: PG section: %v: %w", err, ErrCorrupt)
	}
	kinds, set := &a.Kinds, a.PGs
	if role == roleOriented {
		kinds, set = &a.OrientedKinds, a.OrientedPGs
	}
	if _, dup := set[r.Cfg.Kind]; dup {
		return "", fmt.Errorf("pgio: duplicate %s section: %w", sectionName(secPG, role, r.Cfg.Kind), ErrCorrupt)
	}
	set[r.Cfg.Kind] = pg
	*kinds = append(*kinds, r.Cfg.Kind)
	return sectionName(secPG, role, r.Cfg.Kind), nil
}
