package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// A bijection has no collisions; spot-check a dense range plus edges.
	seen := make(map[uint64]uint64)
	inputs := []uint64{0, 1, 2, 3, math.MaxUint64, math.MaxUint64 - 1}
	for i := uint64(0); i < 10000; i++ {
		inputs = append(inputs, i)
	}
	for _, x := range inputs {
		h := Mix64(x)
		if prev, ok := seen[h]; ok && prev != x {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", x, prev)
		}
		seen[h] = x
	}
}

func TestMurmur64KnownValues(t *testing.T) {
	// fmix64 fixed points / reference values computed from the algorithm.
	if Murmur64(0) != 0 {
		t.Fatal("fmix64(0) must be 0")
	}
	if Murmur64(1) == Murmur64(2) {
		t.Fatal("unexpected collision")
	}
}

func TestU32SeedSensitivity(t *testing.T) {
	if U32(42, 1) == U32(42, 2) {
		t.Fatal("different seeds must give different hashes (w.h.p.)")
	}
	if U32(42, 1) != U32(42, 1) {
		t.Fatal("hash must be deterministic")
	}
}

func TestRangeWithinBounds(t *testing.T) {
	f := func(h uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := Range(h, m)
		return r >= 0 && r < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeUniformity(t *testing.T) {
	// Hash 0..N-1 into 16 buckets; each bucket should get roughly N/16.
	const n, buckets = 1 << 16, 16
	counts := make([]int, buckets)
	for i := uint32(0); i < n; i++ {
		counts[Range(U32(i, 99), buckets)]++
	}
	expect := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.1*expect {
			t.Fatalf("bucket %d has %d items, expected ~%.0f", b, c, expect)
		}
	}
}

func TestUnitRange(t *testing.T) {
	f := func(h uint64) bool {
		u := Unit(h)
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Unit(0) <= 0 {
		t.Fatal("Unit(0) must be > 0")
	}
	if Unit(math.MaxUint64) > 1 {
		t.Fatal("Unit(max) must be <= 1")
	}
}

func TestUnitMeanIsHalf(t *testing.T) {
	var sum float64
	const n = 1 << 16
	for i := uint32(0); i < n; i++ {
		sum += Unit(U32(i, 7))
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Unit hashes = %.4f, want ~0.5", mean)
	}
}

func TestFamilyDeterminismAndIndependence(t *testing.T) {
	f1 := NewFamily(123, 8)
	f2 := NewFamily(123, 8)
	f3 := NewFamily(124, 8)
	if f1.K() != 8 {
		t.Fatalf("K = %d", f1.K())
	}
	for i := 0; i < 8; i++ {
		if f1.Hash(i, 55) != f2.Hash(i, 55) {
			t.Fatal("same seed must reproduce the family")
		}
		if f1.Hash(i, 55) == f3.Hash(i, 55) {
			t.Fatal("different master seeds should differ (w.h.p.)")
		}
		for j := i + 1; j < 8; j++ {
			if f1.Seed(i) == f1.Seed(j) {
				t.Fatal("family seeds must be distinct")
			}
		}
	}
}

func TestFamilyMinK(t *testing.T) {
	if NewFamily(1, 0).K() != 1 {
		t.Fatal("k is clamped to at least 1")
	}
	if NewFamily(1, -3).K() != 1 {
		t.Fatal("negative k is clamped to 1")
	}
}

// Reference vectors for MurmurHash3 x64-128, generated with the canonical
// C++ implementation (smhasher).
func TestMurmur3ReferenceVectors(t *testing.T) {
	cases := []struct {
		in     string
		seed   uint32
		h1, h2 uint64
	}{
		{"", 0, 0x0000000000000000, 0x0000000000000000},
		{"", 1, 0x4610abe56eff5cb5, 0x51622daa78f83583},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		// The commonly published hex digest 6c1b07bc7bbc4be3... is the
		// little-endian byte dump; as native uint64 halves it reads:
		{"The quick brown fox jumps over the lazy dog", 0, 0xe34bbc7bbc071b6c, 0x7a433ca9c49a9347},
	}
	for _, c := range cases {
		h1, h2 := Murmur3x64_128([]byte(c.in), c.seed)
		if h1 != c.h1 || h2 != c.h2 {
			t.Errorf("Murmur3(%q, %d) = (%#x, %#x), want (%#x, %#x)",
				c.in, c.seed, h1, h2, c.h1, c.h2)
		}
	}
}

func TestMurmur3AllTailLengths(t *testing.T) {
	// Exercise every tail-switch branch (lengths 0..33) and check
	// determinism plus length sensitivity.
	data := make([]byte, 33)
	for i := range data {
		data[i] = byte(i * 7)
	}
	seen := make(map[[2]uint64]int)
	for n := 0; n <= len(data); n++ {
		h1, h2 := Murmur3x64_128(data[:n], 42)
		g1, g2 := Murmur3x64_128(data[:n], 42)
		if h1 != g1 || h2 != g2 {
			t.Fatalf("len %d: nondeterministic", n)
		}
		key := [2]uint64{h1, h2}
		if prev, ok := seen[key]; ok {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[key] = n
	}
}

func BenchmarkU32(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += U32(uint32(i), 12345)
	}
	benchSink = s
}

func BenchmarkMurmur3_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		h1, _ := Murmur3x64_128(data, 0)
		benchSink = h1
	}
}

var benchSink uint64
