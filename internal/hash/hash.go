// Package hash provides the hash machinery behind every ProbGraph sketch:
// fast seeded integer mixers for vertex IDs, seeded hash families (the b
// Bloom-filter functions and the k MinHash functions of §II-D), unbiased
// range mapping, and a full MurmurHash3 x64-128 implementation (the hash
// the paper uses, §VI-C) for arbitrary byte data.
//
// Contract: every function here is a pure function of its arguments —
// no package state, no allocation — and its values are frozen. Sketch
// rows built from these hashes are persisted (docs/FORMAT.md) and
// compared bit-for-bit across processes and machines (the cluster's
// decode-don't-rehash design), so changing any constant or rounding
// path is a breaking format change, not a tuning knob. The seeded
// families are deterministic in (seed, index): two builds with the same
// Config produce identical rows on any platform.
package hash

import (
	"encoding/binary"
	"math/bits"
)

// Mix64 is the splitmix64 finalizer: a fast, high-quality 64-bit mixer.
// It is bijective, so distinct inputs never collide.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Murmur64 is the MurmurHash3 64-bit finalizer (fmix64); bijective.
func Murmur64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// U32 hashes a 32-bit value (e.g., a vertex ID) under a seed.
func U32(x uint32, seed uint64) uint64 {
	return Mix64(uint64(x) ^ Murmur64(seed))
}

// Range maps a 64-bit hash onto [0, n) without modulo bias using the
// Lemire multiply-shift reduction.
func Range(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}

// Unit maps a 64-bit hash to (0, 1], the KMV convention (§IX): hashes are
// treated as uniform draws from the unit interval, never exactly zero.
func Unit(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}

// Family is a family of k seeded hash functions h_1..h_k, assumed
// independent (the usual MinHash/Bloom assumption, §II-D). The zero value
// is not useful; construct with NewFamily.
type Family struct {
	seeds []uint64
}

// NewFamily derives k independent-looking hash functions from a master
// seed. The same (seed, k) always yields the same family, which makes
// sketches reproducible across runs.
func NewFamily(seed uint64, k int) *Family {
	if k < 1 {
		k = 1
	}
	seeds := make([]uint64, k)
	s := Murmur64(seed ^ 0xa0761d6478bd642f)
	for i := range seeds {
		s = Mix64(s + uint64(i)*0x9e3779b97f4a7c15)
		seeds[i] = s
	}
	return &Family{seeds: seeds}
}

// K returns the number of functions in the family.
func (f *Family) K() int { return len(f.seeds) }

// Hash evaluates the i-th function on x.
func (f *Family) Hash(i int, x uint32) uint64 {
	return U32(x, f.seeds[i])
}

// Seed returns the internal seed of the i-th function; used by tests and
// by flat kernels that inline the mixing.
func (f *Family) Seed(i int) uint64 { return f.seeds[i] }

// --- MurmurHash3 x64-128 -------------------------------------------------

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Murmur3x64_128 computes the 128-bit MurmurHash3 (x64 variant) of data
// with the given seed, returning the two 64-bit halves. It matches the
// reference implementation by Appleby, which the paper uses (§VI-C).
func Murmur3x64_128(data []byte, seed uint32) (uint64, uint64) {
	h1 := uint64(seed)
	h2 := uint64(seed)
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = Murmur64(h1)
	h2 = Murmur64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}
