package cluster

import (
	"fmt"
	"testing"
)

func TestRowCacheEpochKeying(t *testing.T) {
	c := newRowCache(8)
	old := rowKey{epoch: 1, space: rowNeighborhood, vertex: 7}
	c.put(old, []byte("epoch1"))
	if row, ok := c.get(old); !ok || string(row) != "epoch1" {
		t.Fatalf("get(epoch 1) = %q, %v", row, ok)
	}
	// The same row address under a new epoch is a distinct key: a shard
	// swap must never serve stale bytes.
	fresh := rowKey{epoch: 2, space: rowNeighborhood, vertex: 7}
	if _, ok := c.get(fresh); ok {
		t.Fatal("epoch 2 key hit an epoch 1 entry")
	}
	c.put(fresh, []byte("epoch2"))
	if row, _ := c.get(fresh); string(row) != "epoch2" {
		t.Fatalf("get(epoch 2) = %q", row)
	}
	if row, _ := c.get(old); string(row) != "epoch1" {
		t.Fatalf("epoch 1 entry clobbered: %q", row)
	}
}

func TestRowCacheEviction(t *testing.T) {
	c := newRowCache(4)
	for v := uint32(0); v < 4; v++ {
		c.put(rowKey{epoch: 1, vertex: v}, []byte{byte(v)})
	}
	c.get(rowKey{epoch: 1, vertex: 0}) // refresh 0: vertex 1 is now oldest
	c.put(rowKey{epoch: 1, vertex: 9}, []byte{9})
	if c.len() != 4 {
		t.Fatalf("len = %d, want 4", c.len())
	}
	if _, ok := c.get(rowKey{epoch: 1, vertex: 1}); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	for _, v := range []uint32{0, 2, 3, 9} {
		if _, ok := c.get(rowKey{epoch: 1, vertex: v}); !ok {
			t.Fatalf("vertex %d evicted out of LRU order", v)
		}
	}
}

func TestRowCacheDisabled(t *testing.T) {
	c := newRowCache(-1)
	c.put(rowKey{epoch: 1, vertex: 0}, []byte("x"))
	if _, ok := c.get(rowKey{epoch: 1, vertex: 0}); ok {
		t.Fatal("disabled cache returned a row")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.len())
	}
}

func TestRowCacheCounters(t *testing.T) {
	c := newRowCache(2)
	c.put(rowKey{vertex: 1}, []byte("a"))
	c.get(rowKey{vertex: 1})
	c.get(rowKey{vertex: 2})
	if h, m := c.hits.Load(), c.misses.Load(); h != 1 || m != 1 {
		t.Fatal(fmt.Sprintf("hits=%d misses=%d, want 1/1", h, m))
	}
}
