package cluster

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// rowKey identifies one cached row: the owning shard's serving epoch
// plus the row address. Epoch-keying is what the per-node cache of
// dist/node.go becomes when promoted to a long-lived router: a shard
// swap advances its epoch, new fetches key under the new epoch, and the
// stale rows age out of the LRU — the same invalidation-for-free the
// serve result cache gets from snapshot epochs.
type rowKey struct {
	epoch  uint64
	space  uint8
	kind   uint8
	vertex uint32
}

// rowCache is a mutex-protected LRU of row payloads (pgio codec bytes)
// with hit/miss counters, sized in entries.
type rowCache struct {
	mu    sync.Mutex
	cap   int
	items map[rowKey]*list.Element
	order *list.List // front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type rowEntry struct {
	key rowKey
	row []byte
}

// newRowCache returns a cache of up to capacity rows; capacity <= 0
// disables caching.
func newRowCache(capacity int) *rowCache {
	return &rowCache{
		cap:   capacity,
		items: make(map[rowKey]*list.Element, max(capacity, 0)),
		order: list.New(),
	}
}

// get returns the cached row, refreshing its recency. The returned slice
// is shared: callers must not mutate it.
func (c *rowCache) get(key rowKey) ([]byte, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var row []byte
	if ok {
		c.order.MoveToFront(el)
		row = el.Value.(*rowEntry).row
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return row, true
}

// put inserts (or refreshes) a row, evicting the least recently used
// entry when over capacity.
func (c *rowCache) put(key rowKey, row []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*rowEntry).row = row
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&rowEntry{key: key, row: row})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*rowEntry).key)
	}
}

// len returns the current entry count.
func (c *rowCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
