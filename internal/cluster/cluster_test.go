package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/serve"
)

// packArtifact snapshots g and writes the binary artifact to dir.
func packArtifact(t *testing.T, g *graph.Graph, dir, name string) string {
	t.Helper()
	snap, err := serve.Open(g, serve.SnapshotConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// bootCluster starts n in-process shards over one artifact plus a router
// fronting them — real listeners, real TCP, real frames; only the
// process boundary is elided (the binaries add nothing but flag
// parsing). Workers == 1 keeps every float bit-deterministic.
func bootCluster(t *testing.T, artifact string, n int) (*Router, []*Shard) {
	return bootClusterMode(t, artifact, n, false)
}

func bootClusterMode(t *testing.T, artifact string, n int, mmap bool) (*Router, []*Shard) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	shards := make([]*Shard, n)
	for i := range shards {
		s, err := NewShard(ShardConfig{Index: i, Shards: n, Peers: addrs, Workers: 1, Mmap: mmap}, artifact)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
		go s.Serve(lns[i])
		t.Cleanup(s.Close)
	}
	r, err := Dial(RouterConfig{Addrs: addrs, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, shards
}

// openOracle loads the same artifact the shards serve and derives the
// simulator inputs from it: the graph, the orientation, the resident
// full sketch, and the oriented sketch rebuilt with the resident
// sketch's exact configuration — byte-identical to every shard's
// replica.
func openOracle(t *testing.T, artifact string) (*serve.Snapshot, *core.PG) {
	t.Helper()
	f, err := os.Open(artifact)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := serve.OpenArtifact(f, serve.SnapshotConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	opg, err := core.BuildOriented(snap.O, snap.G.SizeBits(), snap.PG(core.BF).Cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snap, opg
}

// TestClusterOracle is the tentpole's acceptance test: a 3-shard cluster
// must answer global kernels bit-identically to the internal/dist
// simulator on the same graph, partitioning, and sketch configuration —
// same Count bits, same fetch count — and point queries identically to a
// single-process engine over the same artifact.
func TestClusterOracle(t *testing.T) {
	g := graph.Kronecker(8, 8, 7)
	artifact := packArtifact(t, g, t.TempDir(), "g.pg")
	r, _ := bootCluster(t, artifact, 3)
	snap, opg := openOracle(t, artifact)
	ctx := context.Background()

	kernels := []struct {
		req  KernelRequest
		want func() (*dist.Result, error)
	}{
		{KernelRequest{Kernel: "tc", Mode: "neighborhoods"},
			func() (*dist.Result, error) { return dist.TC(snap.G, snap.O, nil, 3, dist.ShipNeighborhoods) }},
		{KernelRequest{Kernel: "tc", Mode: "sketches"},
			func() (*dist.Result, error) { return dist.TC(snap.G, snap.O, opg, 3, dist.ShipSketches) }},
		{KernelRequest{Kernel: "sim", Mode: "neighborhoods", Measure: "jaccard"},
			func() (*dist.Result, error) {
				return dist.Sim(snap.G, snap.PG(core.BF), 3, dist.ShipNeighborhoods, mining.Jaccard)
			}},
		{KernelRequest{Kernel: "sim", Mode: "sketches", Measure: "jaccard"},
			func() (*dist.Result, error) {
				return dist.Sim(snap.G, snap.PG(core.BF), 3, dist.ShipSketches, mining.Jaccard)
			}},
	}
	for _, k := range kernels {
		want, err := k.want()
		if err != nil {
			t.Fatalf("%s/%s oracle: %v", k.req.Kernel, k.req.Mode, err)
		}
		got, err := r.Kernel(ctx, k.req)
		if err != nil {
			t.Fatalf("%s/%s cluster: %v", k.req.Kernel, k.req.Mode, err)
		}
		if got.Degraded || len(got.Missing) > 0 {
			t.Fatalf("%s/%s degraded on a healthy cluster: %+v", k.req.Kernel, k.req.Mode, got)
		}
		if math.Float64bits(got.Value) != math.Float64bits(want.Count) {
			t.Fatalf("%s/%s: cluster %v (%#x) != simulator %v (%#x)", k.req.Kernel, k.req.Mode,
				got.Value, math.Float64bits(got.Value), want.Count, math.Float64bits(want.Count))
		}
		if got.Fetches != want.Net.Fetches {
			t.Fatalf("%s/%s: cluster fetched %d remote rows, simulator %d",
				k.req.Kernel, k.req.Mode, got.Fetches, want.Net.Fetches)
		}
		// The cluster's frame overhead differs from the simulator's (5 B
		// header + 6 B row request vs the simulator's 8/8 constants), so
		// wire bytes are asserted measured-positive and payload-dominated
		// rather than equal.
		if got.Fetches > 0 && got.WireBytes <= got.Fetches*int64(frameHeaderBytes+6) {
			t.Fatalf("%s/%s: wire bytes %d don't cover %d fetches' payloads",
				k.req.Kernel, k.req.Mode, got.WireBytes, got.Fetches)
		}
	}

	// Point queries: bit-identical to a single-process engine over the
	// same artifact at Workers == 1.
	eng := serve.New(snap, serve.Options{Workers: 1})
	defer eng.Close()
	points := []serve.Query{
		{Op: serve.OpTC},
		{Op: serve.OpLocalTC, U: 5},
		{Op: serve.OpSimilarity, U: 2, V: 9, Measure: mining.Jaccard},
		{Op: serve.OpTopK, U: 3, K: 5, Measure: mining.Jaccard},
		{Op: serve.OpNeighbors, U: 4},
	}
	for _, q := range points {
		want, err := eng.QueryCtx(ctx, q)
		if err != nil {
			t.Fatalf("op %v local: %v", q.Op, err)
		}
		got, err := r.QueryCtx(ctx, q)
		if err != nil {
			t.Fatalf("op %v cluster: %v", q.Op, err)
		}
		if got.Degraded {
			t.Fatalf("op %v degraded on a healthy cluster", q.Op)
		}
		got.Cached, want.Cached = false, false
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("op %v: cluster %+v != local %+v", q.Op, got, want)
		}
	}

	// Out-of-range and malformed queries surface the shard's error, not a
	// failover storm.
	if _, err := r.QueryCtx(ctx, serve.Query{Op: serve.OpLocalTC, U: uint32(g.NumVertices() + 10)}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	} else if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("out-of-range vertex: got %T (%v), want *RemoteError", err, err)
	}
	if r.Healthy() != 3 {
		t.Fatalf("healthy = %d after an application-level error, want 3", r.Healthy())
	}
}

// TestClusterRowCache exercises the router's epoch-keyed row cache: a
// repeated neighbors query is served without any shard RPC.
func TestClusterRowCache(t *testing.T) {
	g := graph.Kronecker(7, 8, 11)
	artifact := packArtifact(t, g, t.TempDir(), "g.pg")
	r, _ := bootCluster(t, artifact, 2)
	ctx := context.Background()

	q := serve.Query{Op: serve.OpNeighbors, U: 6}
	first, err := r.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first neighbors fetch reported cached")
	}
	second, err := r.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second neighbors fetch missed the row cache")
	}
	if !reflect.DeepEqual(first.Neighbors, second.Neighbors) {
		t.Fatal("cached row decoded differently")
	}
	if s := r.Stats(); s.Cache.Hits < 1 || s.Cache.Len < 1 {
		t.Fatalf("cache stats after a hit: %+v", s.Cache)
	}
}

// TestClusterShardKill is the failure-semantics acceptance test: with
// one shard down, point queries fail over and global gathers merge the
// surviving blocks — both degraded, neither failed — and with every
// shard down the router answers a typed 503, not a bare error.
func TestClusterShardKill(t *testing.T) {
	g := graph.Kronecker(8, 8, 7)
	artifact := packArtifact(t, g, t.TempDir(), "g.pg")
	r, shards := bootCluster(t, artifact, 3)
	snap, _ := openOracle(t, artifact)
	eng := serve.New(snap, serve.Options{Workers: 1})
	defer eng.Close()
	ctx := context.Background()

	lo, _ := shards[1].Block()
	shards[1].Close()

	// A point query owned by the dead shard fails over to a replica and
	// still answers correctly — Degraded marks the reduced redundancy.
	q := serve.Query{Op: serve.OpLocalTC, U: lo}
	want, err := eng.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.QueryCtx(ctx, q)
	if err != nil {
		t.Fatalf("point query with a dead owner: %v", err)
	}
	if !got.Degraded {
		t.Fatal("failover answer not marked degraded")
	}
	if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
		t.Fatalf("failover answer %v != replica answer %v", got.Value, want.Value)
	}

	// A global gather merges the surviving blocks: missing shard 1,
	// degraded, and the dead owner's rows come from local replicas.
	res, err := r.Kernel(ctx, KernelRequest{Kernel: "tc", Mode: "neighborhoods"})
	if err != nil {
		t.Fatalf("gather with a dead shard: %v", err)
	}
	if !res.Degraded || !reflect.DeepEqual(res.Missing, []int{1}) {
		t.Fatalf("gather = %+v, want degraded with missing [1]", res)
	}
	if res.LocalFallbacks == 0 {
		t.Fatal("no local fallbacks recorded although the dead shard owned fetched rows")
	}

	if r.Healthy() != 2 {
		t.Fatalf("healthy = %d, want 2", r.Healthy())
	}

	// Everything down: typed 503, so the HTTP layer never emits a bare
	// 500 and clients can distinguish outage from bad request.
	shards[0].Close()
	shards[2].Close()
	_, err = r.QueryCtx(ctx, serve.Query{Op: serve.OpLocalTC, U: 0})
	var sc serve.StatusCoder
	if err == nil {
		t.Fatal("query against a dead cluster succeeded")
	}
	if ok := errAs(err, &sc); !ok || sc.HTTPStatus() != http.StatusServiceUnavailable {
		t.Fatalf("dead-cluster error %v is not a typed 503", err)
	}
	if _, err := r.Kernel(ctx, KernelRequest{Kernel: "tc"}); err == nil {
		t.Fatal("gather against a dead cluster succeeded")
	}
}

// errAs is errors.As without the import noise in assertions.
func errAs(err error, target *serve.StatusCoder) bool {
	for err != nil {
		if sc, ok := err.(serve.StatusCoder); ok {
			*target = sc
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestClusterHTTP drives the router through its HTTP surface — the
// drop-in pgserve API plus the cluster endpoints — including the
// degraded healthz transition on a shard kill.
func TestClusterHTTP(t *testing.T) {
	g := graph.Kronecker(7, 8, 3)
	artifact := packArtifact(t, g, t.TempDir(), "g.pg")
	r, shards := bootCluster(t, artifact, 3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// The pgserve client helpers work against the router unchanged.
	do := serve.HTTPDoer(nil, srv.URL)
	res, err := do(serve.Query{Op: serve.OpSimilarity, U: 1, V: 2, Measure: mining.Jaccard})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("healthy cluster answered degraded over HTTP")
	}
	stats, err := serve.FetchStats(nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Vertices != g.NumVertices() || stats.Epoch != 1 {
		t.Fatalf("stats = n=%d epoch=%d, want n=%d epoch=1", stats.Vertices, stats.Epoch, g.NumVertices())
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthz
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Up != 3 {
		t.Fatalf("healthz = %d %+v, want 200 ok 3/3", resp.StatusCode, h)
	}

	// Kernel endpoint round trip.
	kresp, err := http.Post(srv.URL+"/v1/cluster/kernel", "application/json",
		strings.NewReader(`{"kernel":"tc","mode":"sketches"}`))
	if err != nil {
		t.Fatal(err)
	}
	var kres KernelResult
	json.NewDecoder(kresp.Body).Decode(&kres)
	kresp.Body.Close()
	if kresp.StatusCode != http.StatusOK || kres.Shards != 3 || kres.Value <= 0 {
		t.Fatalf("kernel = %d %+v", kresp.StatusCode, kres)
	}

	// Kill a shard: healthz flips to degraded 503 (the router stays
	// usable; the status pulls it from naive rotation), queries answer
	// degraded, and no surface emits a 500.
	shards[2].Close()
	if _, err := do(serve.Query{Op: serve.OpLocalTC, U: 0}); err != nil {
		t.Fatalf("query after shard kill: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && h.Status == "degraded" && h.Up == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never degraded: %d %+v", resp.StatusCode, h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterRollingSwap swaps the fleet onto a second artifact one
// shard at a time and checks every shard lands on the next epoch with
// gathers still bit-consistent afterwards.
func TestClusterRollingSwap(t *testing.T) {
	dir := t.TempDir()
	g := graph.Kronecker(7, 8, 5)
	artifact := packArtifact(t, g, dir, "g1.pg")
	g2 := graph.Kronecker(7, 8, 9)
	artifact2 := packArtifact(t, g2, dir, "g2.pg")
	r, shards := bootCluster(t, artifact, 3)
	ctx := context.Background()

	steps, err := r.RollingSwap(ctx, artifact2)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("swap touched %d shards, want 3", len(steps))
	}
	for _, st := range steps {
		if st.Epoch != 2 {
			t.Fatalf("shard %d landed on epoch %d, want 2", st.Index, st.Epoch)
		}
	}
	for i, s := range shards {
		if s.Epoch() != 2 {
			t.Fatalf("shard %d serves epoch %d, want 2", i, s.Epoch())
		}
	}

	// The gather after the swap answers over the new artifact,
	// bit-identical to the simulator on the new graph.
	f, err := os.Open(artifact2)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := serve.OpenArtifact(f, serve.SnapshotConfig{Workers: 1})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dist.TC(snap2.G, snap2.O, nil, 3, dist.ShipNeighborhoods)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Kernel(ctx, KernelRequest{Kernel: "tc", Mode: "neighborhoods"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || math.Float64bits(got.Value) != math.Float64bits(want.Count) {
		t.Fatalf("post-swap gather = epoch %d value %v, want epoch 2 value %v", got.Epoch, got.Value, want.Count)
	}
	if s := r.Stats(); s.Swaps != 1 || s.Epoch != 2 || s.Vertices != g2.NumVertices() {
		t.Fatalf("post-swap stats = %+v", s)
	}
}

// TestClusterSwapResync: shard-local epoch counters can diverge (a
// halted rolling swap, a restarted shard); while they disagree, gathers
// fail typed-retryable, and the next completed rolling swap must drive
// every shard to one target epoch (max+1) so the fleet re-converges.
func TestClusterSwapResync(t *testing.T) {
	dir := t.TempDir()
	g := graph.Kronecker(7, 8, 5)
	artifact := packArtifact(t, g, dir, "g1.pg")
	g2 := graph.Kronecker(7, 8, 9)
	artifact2 := packArtifact(t, g2, dir, "g2.pg")
	r, shards := bootCluster(t, artifact, 3)
	ctx := context.Background()

	// Desync: swap shard 1 out-of-band (the state a halted rolling swap
	// leaves behind). It alone advances to epoch 2.
	body, err := json.Marshal(swapReq{Artifact: artifact2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shards[1].handleSwap(body); err != nil {
		t.Fatal(err)
	}
	if e := shards[1].Epoch(); e != 2 {
		t.Fatalf("shard 1 epoch = %d, want 2", e)
	}

	// Mixed-epoch gathers refuse, typed and retryable — never a wrong
	// merge.
	if _, err := r.Kernel(ctx, KernelRequest{Kernel: "tc", Mode: "neighborhoods"}); err == nil {
		t.Fatal("mixed-epoch gather succeeded, want typed refusal")
	} else {
		var sc serve.StatusCoder
		if !errAs(err, &sc) || sc.HTTPStatus() != http.StatusServiceUnavailable {
			t.Fatalf("mixed-epoch gather error = %v, want typed 503", err)
		}
	}

	// A completed rolling swap re-synchronizes: every shard lands on
	// max(epochs)+1 = 3, not on its own counter+1.
	steps, err := r.RollingSwap(ctx, artifact2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		if st.Epoch != 3 {
			t.Fatalf("shard %d landed on epoch %d, want 3", st.Index, st.Epoch)
		}
	}
	for i, s := range shards {
		if s.Epoch() != 3 {
			t.Fatalf("shard %d serves epoch %d, want 3", i, s.Epoch())
		}
	}
	got, err := r.Kernel(ctx, KernelRequest{Kernel: "tc", Mode: "neighborhoods"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Degraded {
		t.Fatalf("post-resync gather = epoch %d degraded %v, want epoch 3 healthy", got.Epoch, got.Degraded)
	}

	// The shard itself refuses a target it has already passed: stale
	// control planes cannot drag an epoch backwards.
	body, err = json.Marshal(swapReq{Artifact: artifact2, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shards[0].handleSwap(body); err == nil {
		t.Fatal("backwards swap target accepted, want refusal")
	}
}

// TestClusterMmap runs the oracle comparison over zero-copy shards:
// every shard serves rows and sketches straight out of a shared
// read-only mapping of the artifact, answers must stay bit-identical to
// the heap-decoded oracle, and a rolling swap onto a second artifact —
// which retires the first epoch while its mapping is deliberately held
// until shard shutdown — must leave gathers bit-consistent on the new
// file.
func TestClusterMmap(t *testing.T) {
	dir := t.TempDir()
	g := graph.Kronecker(8, 8, 7)
	artifact := packArtifact(t, g, dir, "g1.pg")
	g2 := graph.Kronecker(8, 8, 9)
	artifact2 := packArtifact(t, g2, dir, "g2.pg")
	r, shards := bootClusterMode(t, artifact, 3, true)
	snap, opg := openOracle(t, artifact)
	ctx := context.Background()

	want, err := dist.TC(snap.G, snap.O, opg, 3, dist.ShipSketches)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Kernel(ctx, KernelRequest{Kernel: "tc", Mode: "sketches"})
	if err != nil {
		t.Fatalf("mmap cluster gather: %v", err)
	}
	if math.Float64bits(got.Value) != math.Float64bits(want.Count) {
		t.Fatalf("mmap gather %v != oracle %v", got.Value, want.Count)
	}
	eng := serve.New(snap, serve.Options{Workers: 1})
	defer eng.Close()
	n := uint32(g.NumVertices())
	for i := uint32(0); i < 24; i++ {
		q := serve.Query{Op: serve.OpSimilarity, U: (i * 37) % n, V: (i*101 + 13) % n}
		wr, err := eng.QueryCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := r.QueryCtx(ctx, q)
		if err != nil {
			t.Fatalf("mmap point query: %v", err)
		}
		if math.Float64bits(gr.Value) != math.Float64bits(wr.Value) {
			t.Fatalf("%v: mmap cluster %v != oracle %v", q, gr.Value, wr.Value)
		}
	}

	// Rolling swap: the new epoch maps g2.pg while the old mapping stays
	// open (peers may still be reading rows); answers follow the new file.
	if _, err := r.RollingSwap(ctx, artifact2); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(artifact2)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := serve.OpenArtifact(f, serve.SnapshotConfig{Workers: 1})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want2, err := dist.TC(snap2.G, snap2.O, nil, 3, dist.ShipNeighborhoods)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := r.Kernel(ctx, KernelRequest{Kernel: "tc", Mode: "neighborhoods"})
	if err != nil {
		t.Fatalf("post-swap mmap gather: %v", err)
	}
	if got2.Epoch != 2 || math.Float64bits(got2.Value) != math.Float64bits(want2.Count) {
		t.Fatalf("post-swap mmap gather = epoch %d value %v, want epoch 2 value %v", got2.Epoch, got2.Value, want2.Count)
	}
	// Shutdown releases every accumulated mapping (both epochs').
	for _, s := range shards {
		s.Close()
	}
}
