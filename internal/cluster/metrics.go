package cluster

import (
	"strconv"
	"time"

	"probgraph/internal/obs"
)

// RegisterMetrics exposes the router's live state on an obs.Registry,
// func-backed like serve's: scrapes read the same atomics /v1/stats
// reads, so the two surfaces can never disagree.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("probgraph_cluster_shards",
		"Configured shard count.",
		func() float64 { return float64(len(r.refs)) })
	reg.GaugeFunc("probgraph_cluster_shards_up",
		"Shards currently answering health probes.",
		func() float64 { return float64(r.Healthy()) })
	reg.GaugeFunc("probgraph_cluster_uptime_seconds",
		"Seconds since the router started.",
		func() float64 { return time.Since(r.start).Seconds() })
	reg.CounterFunc("probgraph_cluster_gathers_total",
		"Global kernel scatter-gathers executed.",
		func() float64 { return float64(r.gathers.Load()) })
	reg.CounterFunc("probgraph_cluster_degraded_total",
		"Responses answered degraded (failover, missing shard, or local fallback).",
		func() float64 { return float64(r.degraded.Load()) })
	reg.CounterFunc("probgraph_cluster_rolling_swaps_total",
		"Rolling swaps completed across the whole fleet.",
		func() float64 { return float64(r.swaps.Load()) })

	reg.CounterFunc("probgraph_cluster_rowcache_hits_total",
		"Router row-cache hits.",
		func() float64 { return float64(r.rows.hits.Load()) })
	reg.CounterFunc("probgraph_cluster_rowcache_misses_total",
		"Router row-cache misses.",
		func() float64 { return float64(r.rows.misses.Load()) })
	reg.GaugeFunc("probgraph_cluster_rowcache_entries",
		"Rows currently resident in the router row cache.",
		func() float64 { return float64(r.rows.len()) })

	for _, ref := range r.refs {
		ref := ref
		shard := strconv.Itoa(ref.index)
		reg.GaugeFunc("probgraph_cluster_shard_up",
			"1 when the shard answers, 0 when it is marked down.",
			func() float64 {
				if ref.healthy.Load() {
					return 1
				}
				return 0
			}, obs.L("shard", shard))
		reg.GaugeFunc("probgraph_cluster_shard_epoch",
			"Serving epoch the shard last reported.",
			func() float64 { return float64(ref.epoch.Load()) },
			obs.L("shard", shard))
		reg.CounterFunc("probgraph_cluster_shard_rpcs_total",
			"RPCs the router issued to the shard.",
			func() float64 { c, _ := ref.client.Calls(); return float64(c) },
			obs.L("shard", shard))
		reg.CounterFunc("probgraph_cluster_shard_rpc_errors_total",
			"Transport failures talking to the shard.",
			func() float64 { _, e := ref.client.Calls(); return float64(e) },
			obs.L("shard", shard))
		reg.CounterFunc("probgraph_cluster_shard_wire_bytes_total",
			"Framed wire bytes between router and shard, by direction.",
			func() float64 { out, _ := ref.client.WireBytes(); return float64(out) },
			obs.L("shard", shard), obs.L("dir", "to"))
		reg.CounterFunc("probgraph_cluster_shard_wire_bytes_total",
			"Framed wire bytes between router and shard, by direction.",
			func() float64 { _, in := ref.client.WireBytes(); return float64(in) },
			obs.L("shard", shard), obs.L("dir", "from"))
		reg.CounterFunc("probgraph_cluster_shard_fetch_bytes_total",
			"Shard-interconnect row bytes this shard's kernel partials reported.",
			func() float64 { return float64(ref.icBytes.Load()) },
			obs.L("shard", shard))
		reg.CounterFunc("probgraph_cluster_shard_fetches_total",
			"Remote row fetches this shard's kernel partials reported.",
			func() float64 { return float64(ref.icFetches.Load()) },
			obs.L("shard", shard))
		reg.RegisterHistogram("probgraph_cluster_shard_rpc_seconds",
			"RPC latency against the shard as the router observed it.",
			ref.hist, obs.L("shard", shard))
	}
}
