package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/dist"
	"probgraph/internal/obs"
	"probgraph/internal/serve"
)

// Error is a typed cluster failure carrying the HTTP status the router's
// API surfaces it with — degraded and unavailable states map to 503 (a
// retryable outage), never a bare 500. It implements serve.StatusCoder,
// so serve.QueryHandler picks the status up through errors.As.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string   { return e.Msg }
func (e *Error) HTTPStatus() int { return e.Status }

// unavailable builds the typed 503.
func unavailable(format string, args ...any) *Error {
	return &Error{Status: http.StatusServiceUnavailable, Msg: fmt.Sprintf(format, args...)}
}

// RouterConfig parameterizes Dial.
type RouterConfig struct {
	// Addrs lists every shard's RPC address in shard-index order.
	Addrs []string
	// CacheSize bounds the router-side row cache in entries (0: 65536,
	// negative: disabled).
	CacheSize int
	// Timeout bounds point/row RPCs (<= 0: 10s); PartialTimeout bounds
	// one shard's block partial (<= 0: 2m).
	Timeout        time.Duration
	PartialTimeout time.Duration
	// ConnectWait bounds how long Dial retries unreachable shards before
	// failing (<= 0: 5s) — absorbs the boot race of starting shards and
	// the router together.
	ConnectWait time.Duration
	// HealthInterval paces the background shard health probe (<= 0:
	// 500ms).
	HealthInterval time.Duration
}

func (cfg RouterConfig) withDefaults() RouterConfig {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1 << 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.PartialTimeout <= 0 {
		cfg.PartialTimeout = 2 * time.Minute
	}
	if cfg.ConnectWait <= 0 {
		cfg.ConnectWait = 5 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	return cfg
}

// shardRef is the router's view of one shard: its client, health, and
// the per-shard accounting the metrics layer and /v1/stats expose.
type shardRef struct {
	index  int
	client *Client

	healthy atomic.Bool
	epoch   atomic.Uint64
	lastErr atomic.Pointer[string]

	// hist records this shard's RPC latency as seen from the router.
	hist *obs.Hist

	// Interconnect accounting reported by this shard's partials: remote
	// row fetches it performed against its peers.
	icFetches, icBytes, icMsgs atomic.Int64
}

// markDown records a transport failure.
func (ref *shardRef) markDown(err error) {
	msg := err.Error()
	ref.lastErr.Store(&msg)
	ref.healthy.Store(false)
}

// Router fronts N shards with the pgserve HTTP API: point queries route
// to the owning shard (failing over to any replica when the owner is
// down — answers then carry Degraded), global kernels scatter to every
// live shard and gather partials in shard order, and a rolling swap
// walks the fleet one shard at a time. It implements serve.Querier, so
// serve.QueryHandler serves it unchanged.
type Router struct {
	cfg  RouterConfig
	refs []*shardRef
	rows *rowCache

	vertices atomic.Int64
	edges    atomic.Int64
	kinds    []string
	defKind  string

	gathers  atomic.Int64
	degraded atomic.Int64 // responses answered degraded
	swaps    atomic.Int64 // completed rolling swaps
	start    time.Time

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Dial connects to every shard, validates the cluster's self-description
// (each shard must report the configured index and count, and all must
// agree on the graph shape), and starts the background health probe.
func Dial(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard address")
	}
	r := &Router{
		cfg:   cfg,
		refs:  make([]*shardRef, len(cfg.Addrs)),
		rows:  newRowCache(cfg.CacheSize),
		start: time.Now(),
		stop:  make(chan struct{}),
	}
	deadline := time.Now().Add(cfg.ConnectWait)
	for i, addr := range cfg.Addrs {
		ref := &shardRef{index: i, client: NewClient(addr, cfg.Timeout), hist: obs.NewHist()}
		var info infoResp
		var err error
		for {
			if info, err = ref.client.Info(); err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("cluster: shard %d (%s) unreachable: %w", i, addr, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
		if info.Index != i || info.Shards != len(cfg.Addrs) {
			return nil, fmt.Errorf("cluster: shard at %s identifies as %d/%d, configured as %d/%d",
				addr, info.Index, info.Shards, i, len(cfg.Addrs))
		}
		if i == 0 {
			r.vertices.Store(int64(info.Vertices))
			r.edges.Store(int64(info.Edges))
			r.kinds = info.Kinds
			r.defKind = info.DefaultKind
		} else if info.Vertices != int(r.vertices.Load()) || info.Edges != int(r.edges.Load()) {
			return nil, fmt.Errorf("cluster: shard %d serves n=%d m=%d, shard 0 serves n=%d m=%d — mixed artifacts",
				i, info.Vertices, info.Edges, r.vertices.Load(), r.edges.Load())
		}
		ref.healthy.Store(true)
		ref.epoch.Store(info.Epoch)
		r.refs[i] = ref
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Close stops the health probe and drops every shard connection.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	for _, ref := range r.refs {
		ref.client.Close()
	}
}

// healthLoop probes every shard on a fixed cadence: a dead shard is
// retried until it answers again (it rejoins with its current epoch),
// and a live shard's epoch tracks its swaps so the row cache keys stay
// current.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		allAgree := true
		n, m := -1, -1
		for _, ref := range r.refs {
			info, err := ref.client.Info()
			if err != nil {
				ref.markDown(err)
				allAgree = false
				continue
			}
			ref.healthy.Store(true)
			ref.epoch.Store(info.Epoch)
			if n == -1 {
				n, m = info.Vertices, info.Edges
			} else if info.Vertices != n || info.Edges != m {
				allAgree = false
			}
		}
		// The routing partition follows the graph shape only once every
		// live shard serves it — mid rolling swap the shapes may differ,
		// and moving the partition early would misroute against shards
		// still on the old epoch.
		if allAgree && n >= 0 {
			r.vertices.Store(int64(n))
			r.edges.Store(int64(m))
		}
	}
}

// Healthy returns how many shards currently answer.
func (r *Router) Healthy() int {
	n := 0
	for _, ref := range r.refs {
		if ref.healthy.Load() {
			n++
		}
	}
	return n
}

// Shards returns the configured shard count.
func (r *Router) Shards() int { return len(r.refs) }

// partition returns the routing partition over the current graph shape.
func (r *Router) partition() dist.Partition {
	return dist.BlockPartition(int(r.vertices.Load()), len(r.refs))
}

// observe times one RPC against a shard.
func (ref *shardRef) observe(t0 time.Time) { ref.hist.Record(time.Since(t0)) }

// candidates returns the failover order for a point op: the owner
// first, then every other shard ascending — deterministic, so repeated
// failovers land on the same replica and its caches.
func (r *Router) candidates(owner int) []*shardRef {
	out := make([]*shardRef, 0, len(r.refs))
	if owner >= 0 && owner < len(r.refs) {
		out = append(out, r.refs[owner])
	}
	for i, ref := range r.refs {
		if i != owner {
			out = append(out, ref)
		}
	}
	return out
}

// QueryCtx implements serve.Querier over the cluster: the same /v1/query
// semantics pgserve has, routed. Answers computed without full
// redundancy — a failover, or any shard currently down — carry
// Degraded.
func (r *Router) QueryCtx(ctx context.Context, q serve.Query) (serve.Result, error) {
	if err := ctx.Err(); err != nil {
		return serve.Result{}, err
	}
	owner := 0
	if q.Op != serve.OpTC && int64(q.U) < r.vertices.Load() {
		owner = r.partition().Owner(q.U)
	}
	if q.Op == serve.OpNeighbors && int64(q.U) < r.vertices.Load() {
		return r.neighbors(owner, q)
	}
	// OpTC routes like a point op with owner 0: the designated shard's
	// engine memoizes the whole-graph kernel per epoch, exactly as a
	// single pgserve does. The scatter-gather form lives on Kernel.
	res, ref, err := r.point(owner, q)
	if err != nil {
		return serve.Result{}, err
	}
	if ref.index != owner || r.Healthy() < len(r.refs) {
		res.Degraded = true
		r.degraded.Add(1)
	}
	return res, nil
}

// point sends one point query down the failover chain and returns the
// answer plus the shard that produced it.
func (r *Router) point(owner int, q serve.Query) (serve.Result, *shardRef, error) {
	body, err := json.Marshal(serve.FromQuery(q))
	if err != nil {
		return serve.Result{}, nil, err
	}
	var lastErr error
	for _, ref := range r.candidates(owner) {
		if !ref.healthy.Load() {
			continue
		}
		t0 := time.Now()
		resp, err := ref.client.Call(msgPoint, body, r.cfg.Timeout)
		ref.observe(t0)
		if err != nil {
			if _, remote := err.(*RemoteError); remote {
				// A live shard refused the query (bad vertex, unknown
				// kind…): authoritative, no point retrying elsewhere.
				return serve.Result{}, nil, err
			}
			ref.markDown(err)
			lastErr = err
			continue
		}
		var res serve.Result
		if err := json.Unmarshal(resp, &res); err != nil {
			return serve.Result{}, nil, fmt.Errorf("cluster: shard %d: undecodable result: %w", ref.index, err)
		}
		return res, ref, nil
	}
	if lastErr != nil {
		return serve.Result{}, nil, unavailable("cluster: no shard could answer (%d/%d healthy): %v",
			r.Healthy(), len(r.refs), lastErr)
	}
	return serve.Result{}, nil, unavailable("cluster: no healthy shard (%d configured)", len(r.refs))
}

// neighbors answers OpNeighbors through the epoch-keyed row cache: a hit
// costs no shard RPC at all, a miss fetches the owner's encoded row once
// per epoch.
func (r *Router) neighbors(owner int, q serve.Query) (serve.Result, error) {
	row, served, err := r.fetchRow(owner, rowNeighborhood, 0, q.U)
	if err != nil {
		return serve.Result{}, err
	}
	list, derr := decodeNeighborRow(row)
	if derr != nil {
		return serve.Result{}, derr
	}
	res := serve.Result{Neighbors: list, Cached: served == nil}
	if (served != nil && served.index != owner) || r.Healthy() < len(r.refs) {
		res.Degraded = true
		r.degraded.Add(1)
	}
	return res, nil
}

// FetchRow returns one row's pgio codec bytes through the router cache —
// the neighbors path uses it for adjacency rows; sketch-row spaces are
// exercised by the tests and available to future router-side estimation.
// The returned slice is shared with the cache: treat it as read-only.
func (r *Router) FetchRow(space, kind uint8, v uint32) ([]byte, error) {
	if int64(v) >= r.vertices.Load() {
		return nil, fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, r.vertices.Load())
	}
	row, _, err := r.fetchRow(r.partition().Owner(v), space, kind, v)
	return row, err
}

// fetchRow consults the cache under the owner's current epoch, then
// walks the failover chain. served is nil on a cache hit.
func (r *Router) fetchRow(owner int, space, kind uint8, v uint32) ([]byte, *shardRef, error) {
	epoch := r.refs[owner].epoch.Load()
	key := rowKey{epoch: epoch, space: space, kind: kind, vertex: v}
	if row, ok := r.rows.get(key); ok {
		return row, nil, nil
	}
	var lastErr error
	for _, ref := range r.candidates(owner) {
		if !ref.healthy.Load() {
			continue
		}
		t0 := time.Now()
		row, err := ref.client.Row(space, kind, v)
		ref.observe(t0)
		if err != nil {
			if _, remote := err.(*RemoteError); remote {
				return nil, nil, err
			}
			ref.markDown(err)
			lastErr = err
			continue
		}
		// Cache under the serving shard's epoch: on failover that is the
		// replica that actually produced the bytes.
		r.rows.put(rowKey{epoch: ref.epoch.Load(), space: space, kind: kind, vertex: v}, row)
		return row, ref, nil
	}
	if lastErr != nil {
		return nil, nil, unavailable("cluster: no shard could serve row %d (%d/%d healthy): %v",
			v, r.Healthy(), len(r.refs), lastErr)
	}
	return nil, nil, unavailable("cluster: no healthy shard (%d configured)", len(r.refs))
}

// KernelRequest names one global kernel run: the /v1/cluster/kernel wire
// form and the Kernel argument.
type KernelRequest struct {
	Kernel  string `json:"kernel"`            // "tc" | "sim"
	Mode    string `json:"mode,omitempty"`    // "neighborhoods" | "sketches" (default)
	Kind    string `json:"kind,omitempty"`    // sketch kind (default: shard default)
	Measure string `json:"measure,omitempty"` // sim only
}

// KernelResult is a gathered global kernel answer plus the run's
// distributed accounting.
type KernelResult struct {
	Kernel   string  `json:"kernel"`
	Mode     string  `json:"mode"`
	Kind     string  `json:"kind,omitempty"`
	Measure  string  `json:"measure,omitempty"`
	Value    float64 `json:"value"`
	Exact    bool    `json:"exact"`
	Shards   int     `json:"shards"`
	Epoch    uint64  `json:"epoch"`
	Degraded bool    `json:"degraded,omitempty"`
	Missing  []int   `json:"missing_shards,omitempty"`
	// Fetches/WireBytes/WireMsgs aggregate the shard-interconnect row
	// traffic this run generated — the cluster's measured counterpart of
	// the simulator's NetStats.
	Fetches        int64 `json:"fetches"`
	WireBytes      int64 `json:"wire_bytes"`
	WireMsgs       int64 `json:"wire_msgs"`
	LocalFallbacks int64 `json:"local_fallbacks,omitempty"`
}

// Kernel scatters one global kernel to every live shard and gathers the
// block partials in shard order — the simulator's node-order reduction,
// which keeps the float merge bit-identical to dist.TC / dist.Sim. A
// dead shard degrades the answer (its block is missing from the sum)
// rather than failing it; shards disagreeing on shape or epoch (mid
// rolling swap) fail typed, since such a sum would be meaningless.
func (r *Router) Kernel(ctx context.Context, req KernelRequest) (KernelResult, error) {
	mode, err := ParseMode(req.Mode)
	if err != nil {
		return KernelResult{}, err
	}
	if req.Kernel != "tc" && req.Kernel != "sim" {
		return KernelResult{}, fmt.Errorf("cluster: unknown kernel %q", req.Kernel)
	}
	r.gathers.Add(1)
	ctx, sp := obs.StartSpan(ctx, "cluster/"+req.Kernel)
	defer sp.End()

	preq := partialReq{Kernel: req.Kernel, Mode: ModeName(mode), Kind: req.Kind, Measure: req.Measure}
	if req.Kernel == "sim" && preq.Measure == "" {
		preq.Measure = "jaccard"
	}
	resps := make([]*partialResp, len(r.refs))
	var firstRemote atomic.Pointer[RemoteError]
	var wg sync.WaitGroup
	for _, ref := range r.refs {
		if !ref.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(ref *shardRef) {
			defer wg.Done()
			var resp partialResp
			t0 := time.Now()
			err := ref.client.callJSON(msgPartial, preq, &resp, r.cfg.PartialTimeout)
			ref.observe(t0)
			if err != nil {
				if remote, ok := err.(*RemoteError); ok {
					firstRemote.CompareAndSwap(nil, remote)
				} else {
					ref.markDown(err)
				}
				return
			}
			ref.icFetches.Add(resp.Fetches)
			ref.icBytes.Add(resp.RowBytes)
			ref.icMsgs.Add(resp.RowMsgs)
			resps[ref.index] = &resp
		}(ref)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return KernelResult{}, err
	}
	if remote := firstRemote.Load(); remote != nil {
		// A live shard could not compute its partial (replica
		// divergence, bad request): the gather is invalid, not merely
		// incomplete.
		return KernelResult{}, unavailable("cluster: partial failed: %v", remote)
	}

	res := KernelResult{
		Kernel: req.Kernel, Mode: ModeName(mode), Kind: req.Kind, Measure: preq.Measure,
		Shards: len(r.refs),
	}
	if req.Kernel == "tc" {
		res.Measure = ""
	}
	// Merge in shard-index order — the oracle's node-order reduction.
	var total float64
	var triTotal int64
	var live []*partialResp
	for i, resp := range resps {
		if resp == nil {
			res.Missing = append(res.Missing, i)
			continue
		}
		live = append(live, resp)
		total += resp.Sum
		triTotal += resp.TriSum
		res.Fetches += resp.Fetches
		res.WireBytes += resp.RowBytes
		res.WireMsgs += resp.RowMsgs
		res.LocalFallbacks += resp.LocalFallbacks
	}
	if len(live) == 0 {
		return KernelResult{}, unavailable("cluster: no healthy shard answered the gather (%d configured)", len(r.refs))
	}
	first := live[0]
	for _, resp := range live[1:] {
		if resp.Epoch != first.Epoch || resp.Vertices != first.Vertices || resp.Edges != first.Edges {
			return KernelResult{}, unavailable(
				"cluster: shards disagree on serving state (epoch %d n=%d vs epoch %d n=%d) — rolling swap in progress, retry",
				first.Epoch, first.Vertices, resp.Epoch, resp.Vertices)
		}
	}
	res.Epoch = first.Epoch
	res.Exact = first.Exact
	switch {
	case req.Kernel == "tc" && res.Exact:
		res.Value = float64(triTotal)
	case req.Kernel == "sim":
		if first.Edges > 0 {
			res.Value = total / float64(first.Edges)
		}
	default:
		res.Value = total
	}
	if len(res.Missing) > 0 || res.LocalFallbacks > 0 || r.Healthy() < len(r.refs) {
		res.Degraded = true
		r.degraded.Add(1)
	}
	sp.Attr("value", fmt.Sprintf("%g", res.Value))
	return res, nil
}

// SwapStep reports one shard's rolling-swap outcome.
type SwapStep struct {
	Index int    `json:"index"`
	Epoch uint64 `json:"epoch"`
}

// RollingSwap walks the fleet shard by shard, swapping each onto the
// artifact at path and confirming its new epoch before moving on — at
// most one shard is mid-swap at any time, so point queries always have
// N-1 settled replicas to fail over to. Global gathers briefly observe
// mixed epochs and fail typed (retryable) until the roll completes. The
// artifact path is resolved by each shard process, so it must be
// reachable on every shard's filesystem.
func (r *Router) RollingSwap(ctx context.Context, artifact string) ([]SwapStep, error) {
	if artifact == "" {
		return nil, fmt.Errorf("cluster: rolling swap needs an artifact path")
	}
	// Drive every shard to one explicit target epoch rather than letting
	// each bump its own counter: shard-local epochs diverge after a
	// halted swap or a shard restart, and +1 steps can never re-converge
	// them — which would leave every gather failing the equal-epoch
	// check. max+1 makes any completed rolling swap re-synchronize the
	// fleet. Epochs are probed fresh (not read from the health cache):
	// a stale view would pick a target a shard has already passed, and
	// that shard would reject the step.
	var target uint64
	for _, ref := range r.refs {
		e := ref.epoch.Load()
		if ref.healthy.Load() {
			if info, err := ref.client.Info(); err == nil {
				e = info.Epoch
				ref.epoch.Store(e)
			}
		}
		if e > target {
			target = e
		}
	}
	target++
	var steps []SwapStep
	for _, ref := range r.refs {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		if !ref.healthy.Load() {
			return steps, unavailable("cluster: rolling swap halted: shard %d is down", ref.index)
		}
		var resp swapResp
		t0 := time.Now()
		err := ref.client.callJSON(msgSwap, swapReq{Artifact: artifact, Epoch: target}, &resp, r.cfg.PartialTimeout)
		ref.observe(t0)
		if err != nil {
			if _, remote := err.(*RemoteError); !remote {
				ref.markDown(err)
			}
			return steps, fmt.Errorf("cluster: rolling swap halted at shard %d: %w", ref.index, err)
		}
		ref.epoch.Store(resp.Epoch)
		steps = append(steps, SwapStep{Index: ref.index, Epoch: resp.Epoch})
	}
	r.swaps.Add(1)
	// Refresh the routing shape immediately: the new artifact may have a
	// different graph.
	for _, ref := range r.refs {
		if info, err := ref.client.Info(); err == nil {
			r.vertices.Store(int64(info.Vertices))
			r.edges.Store(int64(info.Edges))
			break
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].Index < steps[j].Index })
	return steps, nil
}
