package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

// ShardConfig identifies one shard within its cluster and tunes its
// serving engine. Peers lists every shard's RPC address in index order
// (Peers[Index] is this shard; it never dials itself).
type ShardConfig struct {
	Index  int
	Shards int
	Peers  []string

	// Workers / Kinds / Est / CacheSize parameterize the artifact boot
	// and the embedded serve.Engine, as pgserve's flags do. Workers == 1
	// makes every engine answer bit-deterministic across processes.
	Workers   int
	Kinds     []core.Kind
	Est       core.Estimator
	CacheSize int

	// QueryTimeout bounds one point query's evaluation (<= 0: 30s).
	QueryTimeout time.Duration

	// Mmap opens artifacts zero-copy (serve.OpenArtifactMmap): rows and
	// sketches are served straight from a read-only mapping of the file.
	// Because a shard serves raw rows to peers outside any engine query
	// bracket, mappings are NOT retired per epoch — each stays open until
	// Shard.Close, so a rolling swap holds two mappings' address space
	// (cheap: the pages are shared and reclaimable) rather than risking a
	// peer's partial reading unmapped rows.
	Mmap bool
}

// shardState is one epoch's complete serving state: the full-replica
// snapshot, the engine answering point queries over it, the block
// partition this shard is responsible for, and the lazily-built oriented
// sketch replicas TC partials estimate from. Immutable once published;
// swap replaces the whole value.
type shardState struct {
	epoch uint64
	snap  *serve.Snapshot
	eng   *serve.Engine
	part  dist.Partition
	lo    uint32
	hi    uint32

	mu       sync.Mutex
	oriented map[core.Kind]*core.PG
}

// owns reports whether v is in this shard's responsibility block.
func (st *shardState) owns(v uint32) bool { return v >= st.lo && v < st.hi }

// orientedPG returns (building on first use) the oriented sketch replica
// of one kind: core.BuildOriented over the artifact's orientation with
// the resident full sketch's exact build configuration. The build is
// deterministic, so every shard's replica — and the oracle test's local
// build from the same artifact — is bit-identical.
func (st *shardState) orientedPG(kind core.Kind) (*core.PG, error) {
	full := st.snap.PG(kind)
	if full == nil {
		return nil, fmt.Errorf("cluster: sketch kind %v not resident", kind)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if pg := st.oriented[kind]; pg != nil {
		return pg, nil
	}
	pg, err := core.BuildOriented(st.snap.O, st.snap.G.SizeBits(), full.Cfg)
	if err != nil {
		return nil, err
	}
	st.oriented[kind] = pg
	return pg, nil
}

// Shard is one pgshard worker: a full replica of the serving artifact,
// responsible for one block of the vertex partition, speaking the framed
// TCP protocol of proto.go. Point queries evaluate on the embedded
// serve.Engine; partial requests run the shared dist plan over the owned
// block, fetching remote rows from peer shards over the real network.
type Shard struct {
	cfg ShardConfig
	cur atomic.Pointer[shardState]

	swapMu sync.Mutex // serializes msgSwap state rebuilds

	peerMu sync.Mutex
	peers  []*Client // lazily dialled; nil at own index

	ln     net.Listener
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	done   chan struct{}

	closerMu sync.Mutex
	closers  []io.Closer  // detached artifact mappings, released at Close
	rows     atomic.Int64 // rows served to peers/router
	queries  atomic.Int64 // point queries evaluated
	parts    atomic.Int64 // partials computed
}

// NewShard boots a shard from an artifact file.
func NewShard(cfg ShardConfig, artifact string) (*Shard, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", cfg.Shards)
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Shards {
		return nil, fmt.Errorf("cluster: shard index %d out of [0, %d)", cfg.Index, cfg.Shards)
	}
	if len(cfg.Peers) != cfg.Shards {
		return nil, fmt.Errorf("cluster: %d peer addresses for %d shards", len(cfg.Peers), cfg.Shards)
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 30 * time.Second
	}
	s := &Shard{
		cfg:   cfg,
		peers: make([]*Client, cfg.Shards),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	st, err := s.load(artifact, 1)
	if err != nil {
		return nil, err
	}
	s.cur.Store(st)
	return s, nil
}

// load builds one epoch's state from an artifact file.
func (s *Shard) load(artifact string, epoch uint64) (*shardState, error) {
	cfg := serve.SnapshotConfig{
		Kinds: s.cfg.Kinds, Est: s.cfg.Est, Workers: s.cfg.Workers,
	}
	var snap *serve.Snapshot
	if s.cfg.Mmap {
		m, err := serve.OpenArtifactMmap(artifact, cfg)
		if err != nil {
			return nil, err
		}
		// Detach the mapping from the snapshot: the engine's per-epoch
		// retirement must not unmap rows this shard still serves to peers
		// outside query brackets. The shard owns it until Close.
		if c := m.DetachCloser(); c != nil {
			s.closerMu.Lock()
			s.closers = append(s.closers, c)
			s.closerMu.Unlock()
		}
		snap = m
	} else {
		f, err := os.Open(artifact)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if snap, err = serve.OpenArtifact(f, cfg); err != nil {
			return nil, err
		}
	}
	part := dist.BlockPartition(snap.G.NumVertices(), s.cfg.Shards)
	lo, hi := part.Block(s.cfg.Index)
	return &shardState{
		epoch: epoch,
		snap:  snap,
		eng: serve.New(snap, serve.Options{
			Workers: s.cfg.Workers, CacheSize: s.cfg.CacheSize,
		}),
		part:     part,
		lo:       lo,
		hi:       hi,
		oriented: make(map[core.Kind]*core.PG),
	}, nil
}

// peer returns (dialling lazily) the client for peer shard i, nil for
// this shard's own index.
func (s *Shard) peer(i int) *Client {
	if i < 0 || i >= s.cfg.Shards || i == s.cfg.Index {
		return nil
	}
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.peers[i] == nil {
		s.peers[i] = NewClient(s.cfg.Peers[i], 0)
	}
	return s.peers[i]
}

// Epoch returns the serving epoch.
func (s *Shard) Epoch() uint64 { return s.cur.Load().epoch }

// Block returns the shard's owned vertex range [lo, hi).
func (s *Shard) Block() (lo, hi uint32) {
	st := s.cur.Load()
	return st.lo, st.hi
}

// Serve accepts and serves protocol connections on ln until Close.
func (s *Shard) Serve(ln net.Listener) error {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Close stops the listener, severs every connection (in-flight partials
// observe the done channel and wind down), and releases the engine and
// peer clients.
func (s *Shard) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.done)
	if s.ln != nil {
		s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	s.peerMu.Lock()
	for _, cl := range s.peers {
		if cl != nil {
			cl.Close()
		}
	}
	s.peerMu.Unlock()
	s.cur.Load().eng.Close()
	// Every connection is severed and the engine drained: the artifact
	// mappings accumulated across swaps can finally be released.
	s.closerMu.Lock()
	for _, c := range s.closers {
		c.Close()
	}
	s.closers = nil
	s.closerMu.Unlock()
}

// serveConn runs the request loop of one connection: framed requests in,
// framed responses out, in order. A handler error becomes a msgErr frame
// and the connection stays usable; a transport error ends the loop.
func (s *Shard) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		typ, body, _, err := readFrame(br)
		if err != nil {
			return
		}
		rtyp, resp := s.dispatch(typ, body)
		if _, err := writeFrame(bw, rtyp, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch routes one request frame to its handler.
func (s *Shard) dispatch(typ uint8, body []byte) (uint8, []byte) {
	var resp []byte
	var err error
	switch typ {
	case msgRow:
		resp, err = s.handleRow(body)
	case msgPoint:
		resp, err = s.handlePoint(body)
	case msgPartial:
		resp, err = s.handlePartial(body)
	case msgInfo:
		resp, err = s.handleInfo()
	case msgSwap:
		resp, err = s.handleSwap(body)
	default:
		err = fmt.Errorf("cluster: unknown message type %d", typ)
	}
	if err != nil {
		return msgErr, []byte(err.Error())
	}
	return typ, resp
}

// handleRow serves one row payload through the pgio codec — the byte
// stream the wire-byte accounting measures.
func (s *Shard) handleRow(body []byte) ([]byte, error) {
	space, kindByte, v, err := decodeRowReq(body)
	if err != nil {
		return nil, err
	}
	st := s.cur.Load()
	if int(v) >= st.snap.G.NumVertices() {
		return nil, fmt.Errorf("cluster: vertex %d out of range [0,%d)", v, st.snap.G.NumVertices())
	}
	s.rows.Add(1)
	switch space {
	case rowNeighborhood:
		return pgio.AppendNeighborhood(nil, st.snap.G.Neighbors(v)), nil
	case rowSketch:
		pg := st.snap.PG(core.Kind(kindByte))
		if pg == nil {
			return nil, fmt.Errorf("cluster: sketch kind %v not resident", core.Kind(kindByte))
		}
		return pgio.AppendSketchRow(nil, pg, v), nil
	case rowSketchOriented:
		pg, err := st.orientedPG(core.Kind(kindByte))
		if err != nil {
			return nil, err
		}
		return pgio.AppendSketchRow(nil, pg, v), nil
	}
	return nil, fmt.Errorf("cluster: unknown row space %d", space)
}

// handlePoint evaluates one point query on the shard's engine — the
// same evaluation path, and with Workers == 1 the same bits, a
// single-process pgserve produces.
func (s *Shard) handlePoint(body []byte) ([]byte, error) {
	var wq serve.WireQuery
	if err := json.Unmarshal(body, &wq); err != nil {
		return nil, fmt.Errorf("cluster: decoding query: %w", err)
	}
	q, err := wq.ToQuery()
	if err != nil {
		return nil, err
	}
	s.queries.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
	defer cancel()
	res, err := s.cur.Load().eng.QueryCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// handleInfo describes the shard.
func (s *Shard) handleInfo() ([]byte, error) {
	st := s.cur.Load()
	info := infoResp{
		Index:       s.cfg.Index,
		Shards:      s.cfg.Shards,
		Vertices:    st.snap.G.NumVertices(),
		Edges:       st.snap.G.NumEdges(),
		Epoch:       st.epoch,
		DefaultKind: st.snap.DefaultKind().String(),
	}
	for _, k := range st.snap.Kinds() {
		info.Kinds = append(info.Kinds, k.String())
	}
	return json.Marshal(info)
}

// handleSwap reloads the shard from a new artifact and swaps it in:
// one step of the router's rolling swap. In-flight queries finish on
// the epoch they captured; the displaced engine is then released.
func (s *Shard) handleSwap(body []byte) ([]byte, error) {
	var req swapReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("cluster: decoding swap: %w", err)
	}
	if req.Artifact == "" {
		return nil, fmt.Errorf("cluster: swap needs an artifact path")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	next := s.cur.Load().epoch + 1
	if req.Epoch != 0 {
		if req.Epoch < next {
			return nil, fmt.Errorf("cluster: swap target epoch %d not beyond current %d", req.Epoch, next-1)
		}
		next = req.Epoch
	}
	st, err := s.load(req.Artifact, next)
	if err != nil {
		return nil, fmt.Errorf("cluster: swap: %w", err)
	}
	old := s.cur.Swap(st)
	old.eng.Close()
	return json.Marshal(swapResp{Epoch: st.epoch})
}

// rowFetcher is the per-partial transport: it pulls remote rows from
// their owning peers with full byte accounting, falls back to the local
// replica when an owner is unreachable (counted, so the router can mark
// the gather degraded), and surfaces replica divergence — a live peer
// whose bytes disagree with the local replica, e.g. mid rolling swap —
// as a hard error rather than a silently meaningless sum.
type rowFetcher struct {
	s     *Shard
	st    *shardState
	space uint8
	kind  uint8

	fetches, bytes, msgs, fallbacks int64
	err                             error
}

// fetch pulls vertex v's row from its owner; nil means "use the local
// replica" (owner unreachable — recorded as a fallback).
func (f *rowFetcher) fetch(v uint32) []byte {
	if f.err != nil {
		return nil
	}
	cl := f.s.peer(f.st.part.Owner(v))
	if cl != nil {
		payload, err := cl.Row(f.space, f.kind, v)
		if err == nil {
			f.fetches++
			f.msgs += 2
			f.bytes += int64(frameHeaderBytes+6) + int64(frameHeaderBytes+len(payload))
			return payload
		}
		if remote, ok := err.(*RemoteError); ok {
			// The owner is alive and refused: configuration or epoch
			// disagreement, not an outage. Fail the partial.
			f.err = remote
			return nil
		}
	}
	f.fallbacks++
	return nil
}

// verify checks a fetched row against the local replica's encoding of
// the same row; disagreement fails the partial.
func (f *rowFetcher) verify(v uint32, fetched, local []byte) {
	if f.err == nil && fetched != nil && !bytes.Equal(fetched, local) {
		f.err = fmt.Errorf("cluster: replica divergence at vertex %d: owner shipped %d bytes that differ from the local replica (mixed epochs?)", v, len(fetched))
	}
}

// handlePartial runs one block partial of a global kernel over the
// shard's owned vertex range, through the shared dist plan functions —
// the same code the simulator's workers run, which is what makes the
// router's gathered answer bit-identical to the oracle's.
func (s *Shard) handlePartial(body []byte) ([]byte, error) {
	var req partialReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("cluster: decoding partial: %w", err)
	}
	mode, err := ParseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	st := s.cur.Load()
	kind := st.snap.DefaultKind()
	if req.Kind != "" {
		if kind, err = core.ParseKind(req.Kind); err != nil {
			return nil, err
		}
	}
	s.parts.Add(1)

	resp := partialResp{
		Epoch:    st.epoch,
		Vertices: st.snap.G.NumVertices(),
		Edges:    st.snap.G.NumEdges(),
	}
	var f *rowFetcher
	var completed bool

	switch {
	case req.Kernel == "tc" && mode == dist.ShipNeighborhoods:
		f = &rowFetcher{s: s, st: st, space: rowNeighborhood}
		o, rank := st.snap.O, st.snap.O.Rank
		lists := make(map[uint32][]uint32)
		rows := func(u uint32) []uint32 {
			if st.owns(u) {
				return o.NPlus(u)
			}
			if nu, ok := lists[u]; ok {
				return nu
			}
			full := st.snap.G.Neighbors(u) // local replica; overridden by the wire copy below
			if raw := f.fetch(u); raw != nil {
				decoded, err := pgio.DecodeNeighborhood(raw)
				if err != nil {
					f.err = fmt.Errorf("cluster: undecodable neighborhood row for vertex %d: %w", u, err)
				} else {
					full = decoded
				}
			}
			nu := dist.OrientFilter(full, rank, rank[u])
			lists[u] = nu
			return nu
		}
		resp.TriSum, completed = dist.TCPartialExact(o, st.lo, st.hi, rows, s.done)
		resp.Exact = true

	case req.Kernel == "tc" && mode == dist.ShipSketches:
		opg, err := st.orientedPG(kind)
		if err != nil {
			return nil, err
		}
		f = &rowFetcher{s: s, st: st, space: rowSketchOriented, kind: uint8(kind)}
		seen := make(map[uint32]bool)
		need := func(u uint32) {
			if st.owns(u) || seen[u] {
				return
			}
			seen[u] = true
			if raw := f.fetch(u); raw != nil {
				f.verify(u, raw, pgio.AppendSketchRow(nil, opg, u))
			}
		}
		resp.Sum, completed = dist.TCPartialSketch(st.snap.O, opg, st.lo, st.hi, need, s.done)

	case req.Kernel == "sim":
		m, err := serve.ParseMeasure(req.Measure)
		if err != nil {
			return nil, err
		}
		if !m.Counting() {
			return nil, fmt.Errorf("cluster: measure %v needs witness identities; only counting measures are distributable", m)
		}
		g := st.snap.G
		if mode == dist.ShipNeighborhoods {
			f = &rowFetcher{s: s, st: st, space: rowNeighborhood}
			lists := make(map[uint32][]uint32)
			rows := func(v uint32) []uint32 {
				if st.owns(v) {
					return g.Neighbors(v)
				}
				if nv, ok := lists[v]; ok {
					return nv
				}
				nv := g.Neighbors(v)
				if raw := f.fetch(v); raw != nil {
					decoded, err := pgio.DecodeNeighborhood(raw)
					if err != nil {
						f.err = fmt.Errorf("cluster: undecodable neighborhood row for vertex %d: %w", v, err)
					} else {
						nv = decoded
					}
				}
				lists[v] = nv
				return nv
			}
			resp.Sum, completed = dist.SimPartialExact(g, st.lo, st.hi, m, rows, s.done)
			resp.Exact = true
		} else {
			pg := st.snap.PG(kind)
			if pg == nil {
				return nil, fmt.Errorf("cluster: sketch kind %v not resident", kind)
			}
			f = &rowFetcher{s: s, st: st, space: rowSketch, kind: uint8(kind)}
			seen := make(map[uint32]bool)
			need := func(v uint32) {
				if st.owns(v) || seen[v] {
					return
				}
				seen[v] = true
				if raw := f.fetch(v); raw != nil {
					f.verify(v, raw, pgio.AppendSketchRow(nil, pg, v))
				}
			}
			resp.Sum, completed = dist.SimPartialSketch(g, pg, st.lo, st.hi, m, need, s.done)
		}

	default:
		return nil, fmt.Errorf("cluster: unknown kernel %q", req.Kernel)
	}

	if f.err != nil {
		return nil, f.err
	}
	if !completed {
		return nil, fmt.Errorf("cluster: partial cancelled: shard shutting down")
	}
	resp.Fetches, resp.RowBytes, resp.RowMsgs, resp.LocalFallbacks = f.fetches, f.bytes, f.msgs, f.fallbacks
	return json.Marshal(resp)
}

// ParseMode parses the wire protocol name of a partial request.
func ParseMode(s string) (dist.Mode, error) {
	switch s {
	case "neighborhoods", "ship-neighborhoods", "exact":
		return dist.ShipNeighborhoods, nil
	case "", "sketches", "ship-sketches":
		return dist.ShipSketches, nil
	}
	return 0, fmt.Errorf("cluster: unknown mode %q", s)
}

// ModeName is ParseMode's inverse for the partial wire form.
func ModeName(m dist.Mode) string {
	if m == dist.ShipNeighborhoods {
		return "neighborhoods"
	}
	return "sketches"
}
