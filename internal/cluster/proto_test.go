package cluster

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ  uint8
		body []byte
	}{
		{msgInfo, nil},
		{msgErr, []byte("boom")},
		{msgRow, rowReq(rowSketch, 2, 12345)},
		{msgPartial, bytes.Repeat([]byte{0xAB}, 1<<16)},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		wn, err := writeFrame(&buf, tc.typ, tc.body)
		if err != nil {
			t.Fatalf("writeFrame(%d): %v", tc.typ, err)
		}
		if wn != frameHeaderBytes+len(tc.body) || wn != buf.Len() {
			t.Fatalf("writeFrame reported %d bytes, buffer holds %d, want %d",
				wn, buf.Len(), frameHeaderBytes+len(tc.body))
		}
		typ, body, rn, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if typ != tc.typ || !bytes.Equal(body, tc.body) || rn != wn {
			t.Fatalf("round trip: got (%d, %d bytes, n=%d), want (%d, %d bytes, n=%d)",
				typ, len(body), rn, tc.typ, len(tc.body), wn)
		}
	}
}

func TestFrameOversize(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, msgRow, make([]byte, maxFrameBytes+1)); err == nil {
		t.Fatal("writeFrame accepted an oversized body")
	}
	// A hostile length prefix must be refused before allocation.
	hdr := make([]byte, frameHeaderBytes)
	binary.LittleEndian.PutUint32(hdr, uint32(maxFrameBytes+1))
	if _, _, _, err := readFrame(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("readFrame on oversized prefix: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, msgPoint, []byte(`{"op":"tc"}`))
	whole := buf.Bytes()
	for _, cut := range []int{1, frameHeaderBytes - 1, frameHeaderBytes + 3} {
		if _, _, _, err := readFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("readFrame accepted a frame truncated to %d bytes", cut)
		}
	}
}

func TestRowReqRoundTrip(t *testing.T) {
	b := rowReq(rowSketchOriented, 3, 0xDEADBEEF)
	space, kind, v, err := decodeRowReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if space != rowSketchOriented || kind != 3 || v != 0xDEADBEEF {
		t.Fatalf("decodeRowReq = (%d, %d, %#x)", space, kind, v)
	}
	if _, _, _, err := decodeRowReq(b[:5]); err == nil {
		t.Fatal("decodeRowReq accepted a short body")
	}
}
