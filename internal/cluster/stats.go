package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

// ShardStats is one shard's router-side view: health, serving epoch, the
// RPC traffic the router exchanged with it, and the shard-interconnect
// row traffic its partials reported.
type ShardStats struct {
	Index   int    `json:"index"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Epoch   uint64 `json:"epoch"`
	// RPCs/Errors/BytesTo/BytesFrom measure router↔shard traffic: framed
	// wire bytes as the socket carried them.
	RPCs      int64 `json:"rpcs"`
	Errors    int64 `json:"errors"`
	BytesTo   int64 `json:"bytes_to"`
	BytesFrom int64 `json:"bytes_from"`
	// Fetches/FetchBytes/FetchMsgs aggregate the shard→shard row traffic
	// this shard's kernel partials generated.
	Fetches    int64 `json:"fetches"`
	FetchBytes int64 `json:"fetch_bytes"`
	FetchMsgs  int64 `json:"fetch_msgs"`
	// RPC latency quantiles as the router observed them, microseconds.
	P50US     float64 `json:"p50_us,omitempty"`
	P99US     float64 `json:"p99_us,omitempty"`
	LastError string  `json:"last_error,omitempty"`
}

// ClusterStats is the cluster section of the router's /v1/stats.
type ClusterStats struct {
	Shards   int          `json:"shards"`
	Healthy  int          `json:"healthy"`
	Gathers  int64        `json:"gathers"`
	Degraded int64        `json:"degraded_responses"`
	Shard    []ShardStats `json:"shard"`
}

// Stats is the router's /v1/stats payload. The top-level fields mirror
// serve.Stats field-for-field (epoch, vertices, kinds, cache, batch,
// swaps, uptime), so pgserve clients — pgload among them — decode it
// unchanged; Cluster carries what only a router has: per-shard health
// and traffic.
type Stats struct {
	Epoch       uint64           `json:"epoch"`
	Swaps       int64            `json:"swaps"`
	Vertices    int              `json:"vertices"`
	Edges       int              `json:"edges"`
	Kinds       []string         `json:"kinds"`
	DefaultKind string           `json:"default_kind"`
	Cache       serve.CacheStats `json:"cache"`
	Batch       serve.BatchStats `json:"batch"` // always zero: the router does not batch
	UptimeSec   float64          `json:"uptime_sec"`
	Cluster     ClusterStats     `json:"cluster"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	s := Stats{
		Swaps:       r.swaps.Load(),
		Vertices:    int(r.vertices.Load()),
		Edges:       int(r.edges.Load()),
		Kinds:       r.kinds,
		DefaultKind: r.defKind,
		Cache: serve.CacheStats{
			Hits:   r.rows.hits.Load(),
			Misses: r.rows.misses.Load(),
			Len:    r.rows.len(),
			Cap:    r.rows.cap,
		},
		UptimeSec: time.Since(r.start).Seconds(),
		Cluster: ClusterStats{
			Shards:   len(r.refs),
			Gathers:  r.gathers.Load(),
			Degraded: r.degraded.Load(),
		},
	}
	for _, ref := range r.refs {
		calls, errs := ref.client.Calls()
		out, in := ref.client.WireBytes()
		ss := ShardStats{
			Index:      ref.index,
			Addr:       ref.client.Addr(),
			Healthy:    ref.healthy.Load(),
			Epoch:      ref.epoch.Load(),
			RPCs:       calls,
			Errors:     errs,
			BytesTo:    out,
			BytesFrom:  in,
			Fetches:    ref.icFetches.Load(),
			FetchBytes: ref.icBytes.Load(),
			FetchMsgs:  ref.icMsgs.Load(),
		}
		if ref.hist.Count() > 0 {
			const us = float64(time.Microsecond)
			ss.P50US = float64(ref.hist.Quantile(0.50)) / us
			ss.P99US = float64(ref.hist.Quantile(0.99)) / us
		}
		if msg := ref.lastErr.Load(); msg != nil {
			ss.LastError = *msg
		}
		if ss.Healthy {
			// Epoch reports the oldest epoch a live shard serves: during a
			// rolling swap it trails until the fleet converges.
			if s.Cluster.Healthy == 0 || ss.Epoch < s.Epoch {
				s.Epoch = ss.Epoch
			}
			s.Cluster.Healthy++
		}
		s.Cluster.Shard = append(s.Cluster.Shard, ss)
	}
	return s
}

// decodeNeighborRow turns a cached/fetched adjacency row back into a
// vertex list.
func decodeNeighborRow(row []byte) ([]uint32, error) {
	list, err := pgio.DecodeNeighborhood(row)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad neighborhood row: %w", err)
	}
	return list, nil
}

// jsonError writes the same JSON error envelope pgserve uses.
func jsonError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// healthz is the router's health document.
type healthz struct {
	Status string `json:"status"` // "ok" | "degraded" | "down"
	Shards int    `json:"shards"`
	Up     int    `json:"up"`
}

// Handler exposes the cluster over HTTP. The /v1/query and /v1/stats
// surfaces are pgserve's — existing clients work against a router
// unchanged — plus the cluster-only endpoints:
//
//	POST /v1/query          point queries, routed to the owning shard
//	GET  /v1/stats          serve.Stats-shaped + "cluster" section
//	POST /v1/cluster/kernel {"kernel":"tc","mode":"sketches"} → KernelResult
//	POST /v1/cluster/swap   {"artifact":"path.pg"} → rolling swap steps
//	GET  /healthz           {"status","shards","up"}; 503 unless all up
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", serve.QueryHandler(r))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Stats())
	})
	mux.HandleFunc("POST /v1/cluster/kernel", func(w http.ResponseWriter, req *http.Request) {
		var kr KernelRequest
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&kr); err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("decoding kernel request: %w", err))
			return
		}
		res, err := r.Kernel(req.Context(), kr)
		if err != nil {
			if ce, ok := err.(*Error); ok {
				jsonError(w, ce.HTTPStatus(), err)
			} else {
				jsonError(w, http.StatusBadRequest, err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("POST /v1/cluster/swap", func(w http.ResponseWriter, req *http.Request) {
		var sr swapReq
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&sr); err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("decoding swap request: %w", err))
			return
		}
		steps, err := r.RollingSwap(req.Context(), sr.Artifact)
		if err != nil {
			code := http.StatusBadRequest
			if ce, ok := err.(*Error); ok {
				code = ce.HTTPStatus()
			}
			jsonError(w, code, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Steps []SwapStep `json:"steps"`
		}{Steps: steps})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		h := healthz{Shards: len(r.refs), Up: r.Healthy()}
		code := http.StatusOK
		switch {
		case h.Up == h.Shards:
			h.Status = "ok"
		case h.Up > 0:
			// Point queries fail over, gathers miss blocks: degraded, and
			// a 503 so naive probes pull the router from rotation while
			// clients that read the body can keep using it.
			h.Status = "degraded"
			code = http.StatusServiceUnavailable
		default:
			h.Status = "down"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, req *http.Request) {
		jsonError(w, http.StatusNotImplemented,
			fmt.Errorf("cluster: ingest is not served by the router; stream into the artifact pipeline and roll the fleet with /v1/cluster/swap"))
	})
	return mux
}
