// Package cluster is the real multi-process sharded serving subsystem:
// pgshard worker processes each own one block of the vertex partition
// (dist.BlockPartition — the same decomposition the §VIII-F simulator
// uses) and speak a length-prefixed TCP protocol whose row payloads are
// the internal/pgio row codec; pgrouter fronts N shards with the same
// HTTP /v1/* API pgserve exposes, scattering global kernels as per-shard
// partials and gathering them in shard order.
//
// Every shard holds a full replica of the serving artifact. The block
// partition decides *responsibility*, not *residency*: point queries
// route to the owning shard, global kernels run the owned block's
// partial on each shard, and the remote rows a partial consumes cross
// the real network from their owners (measured bytes), exactly as in the
// simulator. Because the partial bodies are the shared plan functions of
// internal/dist (plan.go) and the router reduces per-shard sums in shard
// order — the simulator's node-order reduction — a cluster answer is
// bit-identical to the simulator's on the same graph, partition, and
// sketch configuration. internal/dist is therefore the oracle the
// end-to-end tests check the cluster against.
//
// See docs/CLUSTER.md for topology, framing, failure semantics, and the
// rolling-swap procedure.
package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout: u32le body length | u8 message type | body. The response
// to a request frame reuses the request's type on success and msgErr
// (body = UTF-8 error text) on failure. One request is answered by
// exactly one response on the same connection, in order.
const (
	frameHeaderBytes = 5
	// maxFrameBytes bounds one frame's body — far above any sketch row
	// or neighborhood, so an oversized length prefix means a corrupt or
	// hostile peer, not a big graph.
	maxFrameBytes = 64 << 20
)

// Message types.
const (
	// msgErr is the failure response: body is the error text.
	msgErr uint8 = iota
	// msgRow fetches one row: body is space u8 | kind u8 | vertex u32le;
	// the response body is the pgio row payload (AppendNeighborhood or
	// AppendSketchRow output, verbatim).
	msgRow
	// msgPoint evaluates one point query on the shard's engine: body is
	// a JSON serve.WireQuery; the response a JSON serve.Result.
	msgPoint
	// msgPartial runs one block partial of a global kernel: JSON
	// partialReq in, JSON partialResp out.
	msgPartial
	// msgInfo describes the shard: empty body in, JSON infoResp out.
	msgInfo
	// msgSwap hot-swaps the shard onto a new artifact: JSON swapReq in,
	// JSON swapResp out.
	msgSwap
)

// Row spaces: which row family a msgRow addresses.
const (
	// rowNeighborhood is the raw CSR adjacency N_v (kind ignored).
	rowNeighborhood uint8 = iota
	// rowSketch is vertex v's full-neighborhood sketch row (core.Build).
	rowSketch
	// rowSketchOriented is v's oriented sketch row (core.BuildOriented
	// over the artifact's degree orientation) — what TC partials ship.
	rowSketchOriented
)

// writeFrame writes one frame and returns the wire bytes it occupied.
func writeFrame(w io.Writer, typ uint8, body []byte) (int, error) {
	if len(body) > maxFrameBytes {
		return 0, fmt.Errorf("cluster: frame body %d bytes exceeds limit %d", len(body), maxFrameBytes)
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return frameHeaderBytes + len(body), nil
}

// readFrame reads one frame and returns its type, body, and the wire
// bytes it occupied.
func readFrame(r io.Reader) (uint8, []byte, int, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return 0, nil, 0, fmt.Errorf("cluster: frame length %d exceeds limit %d", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, fmt.Errorf("cluster: truncated frame body: %w", err)
	}
	return hdr[4], body, frameHeaderBytes + int(n), nil
}

// rowReq encodes a msgRow body.
func rowReq(space, kind uint8, v uint32) []byte {
	b := make([]byte, 6)
	b[0], b[1] = space, kind
	binary.LittleEndian.PutUint32(b[2:], v)
	return b
}

// decodeRowReq parses a msgRow body.
func decodeRowReq(b []byte) (space, kind uint8, v uint32, err error) {
	if len(b) != 6 {
		return 0, 0, 0, fmt.Errorf("cluster: row request is %d bytes, want 6", len(b))
	}
	return b[0], b[1], binary.LittleEndian.Uint32(b[2:]), nil
}

// infoResp describes one shard: its identity within the cluster, the
// served graph shape, and the serving epoch. The router validates every
// shard's self-description against its configured position and requires
// live shards to agree on the graph shape before merging partials.
type infoResp struct {
	Index       int      `json:"index"`
	Shards      int      `json:"shards"`
	Vertices    int      `json:"vertices"`
	Edges       int      `json:"edges"`
	Epoch       uint64   `json:"epoch"`
	Kinds       []string `json:"kinds"`
	DefaultKind string   `json:"default_kind"`
}

// partialReq names one block partial: which kernel, which wire protocol
// (the dist.Mode vocabulary), which sketch kind (empty = the shard's
// default), and — for sim — the similarity measure.
type partialReq struct {
	Kernel  string `json:"kernel"`            // "tc" | "sim"
	Mode    string `json:"mode"`              // "neighborhoods" | "sketches"
	Kind    string `json:"kind,omitempty"`    // sketch kind; sketches mode only
	Measure string `json:"measure,omitempty"` // sim only; counting measures
}

// partialResp carries one block's partial sum plus the accounting the
// partial generated. Exact partials ride in TriSum (an int64 survives
// JSON without rounding concerns at these magnitudes and keeps the
// router's merge in integer arithmetic, like the simulator's); sketched
// partials ride in Sum.
type partialResp struct {
	Sum      float64 `json:"sum"`
	TriSum   int64   `json:"tri_sum"`
	Exact    bool    `json:"exact"`
	Epoch    uint64  `json:"epoch"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	// Fetches / RowBytes / RowMsgs measure the shard-interconnect
	// traffic this partial generated: remote row round-trips and their
	// framed wire bytes in both directions.
	Fetches  int64 `json:"fetches"`
	RowBytes int64 `json:"row_bytes"`
	RowMsgs  int64 `json:"row_msgs"`
	// LocalFallbacks counts rows served from the local replica because
	// their owner was unreachable — the partial completed, but its
	// traffic no longer proves the owner holds the same bits, so the
	// router marks the gather degraded.
	LocalFallbacks int64 `json:"local_fallbacks,omitempty"`
}

// swapReq asks a shard to reload from a new artifact file (rolling-swap
// step); swapResp reports the epoch now being served. Epoch, when
// non-zero, is the exact epoch the shard must serve the new artifact
// under (it must exceed the current one); the router uses it to drive
// every shard to the same number, re-synchronizing a fleet whose
// shard-local counters diverged (halted swap, shard restart). Zero
// keeps the legacy current+1 behavior.
type swapReq struct {
	Artifact string `json:"artifact"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

type swapResp struct {
	Epoch uint64 `json:"epoch"`
}
