package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteError is an application-level failure a live shard answered
// with (a msgErr frame): the transport is healthy, the request was
// refused. The router propagates these verbatim (e.g. a vertex out of
// range) instead of failing over — the shard's answer is authoritative.
type RemoteError struct {
	Addr string
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("shard %s: %s", e.Addr, e.Msg) }

// Client is a framed RPC client for one shard: a single lazily-dialled
// connection with one outstanding request at a time (requests on one
// connection are answered in order, so a mutex around the write/read
// pair is the whole protocol state machine). Safe for concurrent use; a
// transport error drops the connection and the next call redials, with
// one transparent in-call retry so a shard restart costs one reconnect,
// not one failed request.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Measured wire bytes and call counts, both directions, for the
	// metrics layer. Frame bytes, not payload bytes: what the socket
	// actually carried.
	bytesOut, bytesIn atomic.Int64
	calls, errs       atomic.Int64
}

// NewClient returns a client for one shard address. timeout bounds each
// call's dial+write+read round trip; <= 0 means 10s.
func NewClient(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{addr: addr, timeout: timeout}
}

// Addr returns the shard address this client targets.
func (c *Client) Addr() string { return c.addr }

// WireBytes returns the cumulative framed bytes this client has written
// to and read from the shard.
func (c *Client) WireBytes() (out, in int64) { return c.bytesOut.Load(), c.bytesIn.Load() }

// Calls returns the cumulative RPC and transport-error counts.
func (c *Client) Calls() (calls, errs int64) { return c.calls.Load(), c.errs.Load() }

// Close drops the connection; a later call redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drop()
}

// drop closes the resident connection. Caller holds mu.
func (c *Client) drop() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br, c.bw = nil, nil, nil
	return err
}

// ensure dials if no connection is resident. Caller holds mu.
func (c *Client) ensure() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	return nil
}

// Call performs one RPC with the given timeout (<= 0: the client
// default) and returns the response body. A msgErr response surfaces as
// *RemoteError; transport failures close the connection and — after one
// transparent retry on a fresh dial — return the underlying error.
func (c *Client) Call(typ uint8, body []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = c.timeout
	}
	c.calls.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call(typ, body, timeout)
	if err != nil {
		if _, remote := err.(*RemoteError); remote {
			return nil, err
		}
		// Transport failure: the resident connection may have been a
		// stale one (shard restarted, idle timeout). Retry once on a
		// fresh dial before reporting the shard down.
		resp, err = c.call(typ, body, timeout)
		if err != nil {
			if _, remote := err.(*RemoteError); !remote {
				c.errs.Add(1)
			}
			return nil, err
		}
	}
	return resp, nil
}

// call does one round trip on the resident (or freshly dialled)
// connection. Caller holds mu.
func (c *Client) call(typ uint8, body []byte, timeout time.Duration) ([]byte, error) {
	if err := c.ensure(); err != nil {
		return nil, err
	}
	c.conn.SetDeadline(time.Now().Add(timeout))
	n, err := writeFrame(c.bw, typ, body)
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.drop()
		return nil, err
	}
	c.bytesOut.Add(int64(n))
	rtyp, resp, rn, err := readFrame(c.br)
	if err != nil {
		c.drop()
		return nil, err
	}
	c.bytesIn.Add(int64(rn))
	switch rtyp {
	case typ:
		return resp, nil
	case msgErr:
		return nil, &RemoteError{Addr: c.addr, Msg: string(resp)}
	}
	c.drop() // desynchronized peer: resync on a fresh connection
	return nil, fmt.Errorf("cluster: shard %s answered type %d to request type %d", c.addr, rtyp, typ)
}

// Info fetches the shard's self-description.
func (c *Client) Info() (infoResp, error) {
	body, err := c.Call(msgInfo, nil, 0)
	if err != nil {
		return infoResp{}, err
	}
	var info infoResp
	if err := json.Unmarshal(body, &info); err != nil {
		return infoResp{}, fmt.Errorf("cluster: shard %s: undecodable info: %w", c.addr, err)
	}
	return info, nil
}

// Row fetches one row payload (pgio codec bytes, verbatim).
func (c *Client) Row(space, kind uint8, v uint32) ([]byte, error) {
	return c.Call(msgRow, rowReq(space, kind, v), 0)
}

// callJSON round-trips a JSON-bodied request.
func (c *Client) callJSON(typ uint8, req, resp any, timeout time.Duration) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	out, err := c.Call(typ, body, timeout)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(out, resp); err != nil {
		return fmt.Errorf("cluster: shard %s: undecodable response: %w", c.addr, err)
	}
	return nil
}
