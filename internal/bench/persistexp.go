package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

// PersistBench measures the binary artifact layer on a fixed Kronecker
// graph: encode and decode bandwidth of the pgio codec, and the
// cold-start comparison the layer exists for — booting a serving
// snapshot from an artifact (pure IO: decode + install) versus
// rebuilding it from edge-list text (parse + orient + sketch). The
// artifact path must win; the experiment fails otherwise, so the CI
// gate rechecks the claim continuously alongside the ns/op trajectory.
func PersistBench(opts Opts) ([]BenchRecord, error) {
	opts = opts.withDefaults()
	scale := 11
	if opts.Quick {
		scale = 10
	}
	g := graph.Kronecker(scale, 16, opts.Seed)
	cfg := serve.SnapshotConfig{
		Kinds: []core.Kind{core.BF, core.OneHash}, Budget: 0.25, Seed: opts.Seed, Workers: opts.Workers,
	}
	snap, err := serve.Open(g, cfg)
	if err != nil {
		return nil, err
	}

	var rows []BenchRecord
	mbps := func(bytes int64, d time.Duration) float64 {
		return float64(bytes) / (1 << 20) / d.Seconds()
	}

	// Encode bandwidth: snapshot -> artifact bytes, in memory (no disk
	// noise; PersistFile adds only the write syscalls on top).
	var buf bytes.Buffer
	info, err := snap.Save(&buf)
	if err != nil {
		return nil, err
	}
	encT := Measure(opts.Runs, func() {
		buf.Reset()
		if _, err := snap.Save(&buf); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/encode",
		Config:     "BF+1H",
		Value:      mbps(info.Bytes, encT.Median),
		NsPerOp:    int64(encT.Median),
	})

	// Decode bandwidth: artifact bytes -> validated graph + sketches.
	data := buf.Bytes()
	decT := Measure(opts.Runs, func() {
		if _, err := pgio.Decode(bytes.NewReader(data)); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/decode",
		Config:     "BF+1H",
		Value:      mbps(info.Bytes, decT.Median),
		NsPerOp:    int64(decT.Median),
	})

	// Cold start, the warm path: decode the artifact and install it as
	// a serving snapshot — what pgserve -artifact pays at boot.
	warmT := Measure(opts.Runs, func() {
		if _, err := serve.OpenArtifact(bytes.NewReader(data), serve.SnapshotConfig{Workers: opts.Workers}); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/cold-start",
		Config:     "artifact",
		Value:      float64(g.NumEdges()),
		NsPerOp:    int64(warmT.Median),
	})

	// Cold start, the rebuild path: parse the edge-list text and build
	// everything — what every pgserve boot paid before this layer.
	var el bytes.Buffer
	if err := graph.WriteEdgeList(&el, g); err != nil {
		return nil, err
	}
	elData := el.Bytes()
	rebuildT := Measure(opts.Runs, func() {
		g2, err := graph.ReadEdgeList(bytes.NewReader(elData))
		if err != nil {
			panic(err)
		}
		if _, err := serve.Open(g2, cfg); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/cold-start",
		Config:     "rebuild",
		Value:      float64(g.NumEdges()),
		NsPerOp:    int64(rebuildT.Median),
	})

	if warmT.Median >= rebuildT.Median {
		return nil, fmt.Errorf(
			"persist bench: cold start from artifact (%v) did not beat rebuild from edge list (%v) — the persistence layer is not paying for itself",
			warmT.Median, rebuildT.Median)
	}

	if opts.JSON != nil {
		enc := json.NewEncoder(opts.JSON)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return nil, fmt.Errorf("persist bench: writing JSON record: %w", err)
			}
		}
	}

	section(opts.Out, "Persistence benchmark (graph: kron scale %d, artifact %d bytes, %d sections)",
		scale, info.Bytes, len(info.Sections))
	t := NewTable(opts.Out, "experiment", "config", "value", "ns/op")
	for _, r := range rows {
		t.Row(r.Experiment, r.Config, r.Value, r.NsPerOp)
	}
	t.Flush()
	fmt.Fprintf(opts.Out,
		"cold start: artifact %.3gms vs rebuild %.3gms (%.2fx faster); codec %.0f MB/s encode, %.0f MB/s decode\n",
		float64(warmT.Median)/1e6, float64(rebuildT.Median)/1e6,
		float64(rebuildT.Median)/float64(warmT.Median),
		rows[0].Value, rows[1].Value)
	return rows, nil
}
