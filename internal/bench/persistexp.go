package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/pgio"
	"probgraph/internal/serve"
)

// PersistBench measures the binary artifact layer on a fixed Kronecker
// graph: encode and decode bandwidth of the pgio codec, and the
// cold-start comparison the layer exists for — booting a serving
// snapshot from an artifact (pure IO: decode + install) versus
// rebuilding it from edge-list text (parse + orient + sketch). The
// artifact path must win; the experiment fails otherwise, so the CI
// gate rechecks the claim continuously alongside the ns/op trajectory.
func PersistBench(opts Opts) ([]BenchRecord, error) {
	opts = opts.withDefaults()
	scale := 11
	if opts.Quick {
		scale = 10
	}
	g := graph.Kronecker(scale, 16, opts.Seed)
	cfg := serve.SnapshotConfig{
		Kinds: []core.Kind{core.BF, core.OneHash}, Budget: 0.25, Seed: opts.Seed, Workers: opts.Workers,
	}
	snap, err := serve.Open(g, cfg)
	if err != nil {
		return nil, err
	}

	var rows []BenchRecord
	mbps := func(bytes int64, d time.Duration) float64 {
		return float64(bytes) / (1 << 20) / d.Seconds()
	}

	// Encode bandwidth: snapshot -> artifact bytes, in memory (no disk
	// noise; PersistFile adds only the write syscalls on top).
	var buf bytes.Buffer
	info, err := snap.Save(&buf)
	if err != nil {
		return nil, err
	}
	encT := Measure(opts.Runs, func() {
		buf.Reset()
		if _, err := snap.Save(&buf); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/encode",
		Config:     "BF+1H",
		Value:      mbps(info.Bytes, encT.Median),
		NsPerOp:    int64(encT.Median),
	})

	// Decode bandwidth: artifact bytes -> validated graph + sketches.
	data := buf.Bytes()
	decT := Measure(opts.Runs, func() {
		if _, err := pgio.Decode(bytes.NewReader(data)); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/decode",
		Config:     "BF+1H",
		Value:      mbps(info.Bytes, decT.Median),
		NsPerOp:    int64(decT.Median),
	})

	// Cold start, the warm path: decode the artifact and install it as
	// a serving snapshot — what pgserve -artifact pays at boot.
	warmT := Measure(opts.Runs, func() {
		if _, err := serve.OpenArtifact(bytes.NewReader(data), serve.SnapshotConfig{Workers: opts.Workers}); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/cold-start",
		Config:     "artifact",
		Value:      float64(g.NumEdges()),
		NsPerOp:    int64(warmT.Median),
	})

	// Cold start, the rebuild path: parse the edge-list text and build
	// everything — what every pgserve boot paid before this layer.
	var el bytes.Buffer
	if err := graph.WriteEdgeList(&el, g); err != nil {
		return nil, err
	}
	elData := el.Bytes()
	rebuildT := Measure(opts.Runs, func() {
		g2, err := graph.ReadEdgeList(bytes.NewReader(elData))
		if err != nil {
			panic(err)
		}
		if _, err := serve.Open(g2, cfg); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/cold-start",
		Config:     "rebuild",
		Value:      float64(g.NumEdges()),
		NsPerOp:    int64(rebuildT.Median),
	})

	if warmT.Median >= rebuildT.Median {
		return nil, fmt.Errorf(
			"persist bench: cold start from artifact (%v) did not beat rebuild from edge list (%v) — the persistence layer is not paying for itself",
			warmT.Median, rebuildT.Median)
	}

	// Cold start, the zero-copy path: map the artifact and alias its
	// arrays in place — what pgserve -mmap pays at boot. Mapping needs a
	// real file, written once outside the timed region; the page cache
	// is warm for both contenders, so the comparison isolates what mmap
	// actually removes: the array copies and sketch allocations.
	dir, err := os.MkdirTemp("", "pgbench-persist-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	artPath := filepath.Join(dir, "bench.pg")
	if err := os.WriteFile(artPath, data, 0o644); err != nil {
		return nil, err
	}
	mmapT := Measure(opts.Runs, func() {
		s, err := serve.OpenArtifactMmap(artPath, serve.SnapshotConfig{Workers: opts.Workers})
		if err != nil {
			panic(err)
		}
		if err := s.Close(); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "persist/cold-start",
		Config:     "mmap",
		Value:      float64(g.NumEdges()),
		NsPerOp:    int64(mmapT.Median),
	})
	if mmapT.Median >= warmT.Median {
		return nil, fmt.Errorf(
			"persist bench: zero-copy cold start (%v) did not beat the heap decode (%v) — borrowing is not paying for itself",
			mmapT.Median, warmT.Median)
	}

	// Resident-set delta: Go-heap bytes each snapshot keeps live. The
	// heap decode materializes every array as an allocation; the
	// zero-copy snapshot retains headers and derived LUTs only, with the
	// arrays living in the (shared, evictable) page cache. Informational
	// records — value is bytes, no timing — so pgci skips them but the
	// trajectory stays in the baseline file.
	heapRes, err := heapRetained(func() (*serve.Snapshot, error) {
		f, err := os.Open(artPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return serve.OpenArtifact(f, serve.SnapshotConfig{Workers: opts.Workers})
	})
	if err != nil {
		return nil, err
	}
	mmapRes, err := heapRetained(func() (*serve.Snapshot, error) {
		return serve.OpenArtifactMmap(artPath, serve.SnapshotConfig{Workers: opts.Workers})
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		BenchRecord{Experiment: "persist/resident-heap-bytes", Config: "copy", Value: float64(heapRes)},
		BenchRecord{Experiment: "persist/resident-heap-bytes", Config: "mmap", Value: float64(mmapRes)},
	)

	// Zero-copy correctness across the full sketch matrix: every kind
	// must answer Float64bits-identically whether its rows were
	// heap-decoded or borrowed from the mapping.
	probes, err := mmapIdentity(dir, opts)
	if err != nil {
		return nil, err
	}

	if opts.JSON != nil {
		enc := json.NewEncoder(opts.JSON)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return nil, fmt.Errorf("persist bench: writing JSON record: %w", err)
			}
		}
	}

	section(opts.Out, "Persistence benchmark (graph: kron scale %d, artifact %d bytes, %d sections)",
		scale, info.Bytes, len(info.Sections))
	t := NewTable(opts.Out, "experiment", "config", "value", "ns/op")
	for _, r := range rows {
		t.Row(r.Experiment, r.Config, r.Value, r.NsPerOp)
	}
	t.Flush()
	fmt.Fprintf(opts.Out,
		"cold start: artifact %.3gms vs rebuild %.3gms (%.2fx faster); codec %.0f MB/s encode, %.0f MB/s decode\n",
		float64(warmT.Median)/1e6, float64(rebuildT.Median)/1e6,
		float64(rebuildT.Median)/float64(warmT.Median),
		rows[0].Value, rows[1].Value)
	fmt.Fprintf(opts.Out,
		"zero-copy: mmap %.3gms vs heap decode %.3gms (%.2fx faster); resident heap %d B vs %d B; %d probes × 5 kinds bit-identical\n",
		float64(mmapT.Median)/1e6, float64(warmT.Median)/1e6,
		float64(warmT.Median)/float64(mmapT.Median),
		mmapRes, heapRes, probes)
	return rows, nil
}

// heapRetained reports the Go-heap bytes a snapshot keeps live once
// open: HeapAlloc delta across the open, both sides measured after a
// forced GC so transient decode garbage does not count.
func heapRetained(open func() (*serve.Snapshot, error)) (int64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	s, err := open()
	if err != nil {
		return 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}
	return delta, s.Close()
}

// mmapIdentity packs a small graph with every sketch kind, then decodes
// it twice — heap copy and zero-copy mapping — and demands bit-identical
// IntCard and Jaccard answers from each kind over a deterministic probe
// set. Returns the probe count per kind. On platforms where Mmap falls
// back to the copying decoder the comparison still runs (and is then a
// decode-determinism check rather than a borrow check).
func mmapIdentity(dir string, opts Opts) (int, error) {
	const probes = 256
	g := graph.Kronecker(9, 8, opts.Seed)
	snap, err := serve.Open(g, serve.SnapshotConfig{
		Kinds:  []core.Kind{core.BF, core.KHash, core.OneHash, core.KMV, core.HLL},
		Budget: 0.25, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return 0, err
	}
	path := filepath.Join(dir, "identity.pg")
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if _, err := snap.Save(f); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}

	f, err = os.Open(path)
	if err != nil {
		return 0, err
	}
	heap, err := pgio.Decode(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	m, err := pgio.Mmap(path)
	if err != nil {
		return 0, err
	}
	defer m.Close()

	n := uint32(g.NumVertices())
	for _, k := range heap.Kinds {
		hp, mp := heap.PGs[k], m.A.PGs[k]
		if mp == nil {
			return 0, fmt.Errorf("persist bench: mapped artifact lacks %v sketches", k)
		}
		for i := uint32(0); i < probes; i++ {
			u, v := (i*2654435761)%n, (i*40503+977)%n
			hi, mi := hp.IntCard(u, v), mp.IntCard(u, v)
			if math.Float64bits(hi) != math.Float64bits(mi) {
				return 0, fmt.Errorf(
					"persist bench: %v IntCard(%d,%d) differs between heap (%v) and mmap (%v) decode", k, u, v, hi, mi)
			}
			hj, mj := hp.Jaccard(u, v), mp.Jaccard(u, v)
			if math.Float64bits(hj) != math.Float64bits(mj) {
				return 0, fmt.Errorf(
					"persist bench: %v Jaccard(%d,%d) differs between heap (%v) and mmap (%v) decode", k, u, v, hj, mj)
			}
		}
	}
	return probes, nil
}
