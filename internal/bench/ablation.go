package bench

import (
	"fmt"

	"probgraph/internal/bitset"
	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/sketch"
	"probgraph/internal/stats"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Study  string
	Config string
	Value  float64 // study-specific metric (error, time ratio, ...)
	Extra  float64 // secondary metric
}

// Ablation runs the design-choice sweeps DESIGN.md calls out:
//
//  1. adaptive intersection: merge-only vs gallop-only vs adaptive on
//     skewed pairs (the CSR baseline tuning);
//  2. BF linear-estimator scaling factor δ (§IV-B's bias–variance
//     trade-off around δ = 1/b);
//  3. 1-Hash Jaccard: union-restricted vs the plain /k estimator;
//  4. 4-clique MH: sampled-C3 path vs min-of-pairwise fallback
//     (accuracy and speed);
//  5. BF hash count b at fixed storage (accuracy sweet spot).
func Ablation(opts Opts) ([]AblationRow, error) {
	opts = opts.withDefaults()
	var rows []AblationRow

	r1, err := ablationIntersections(opts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r1...)
	rows = append(rows, ablationDelta(opts)...)
	r3, err := ablationOneHashVariants(opts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r3...)
	r4, err := ablationSampled4Clique(opts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r4...)
	r5, err := ablationHashCount(opts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r5...)

	section(opts.Out, "Ablations: design-choice sweeps")
	t := NewTable(opts.Out, "study", "config", "metric", "secondary")
	for _, r := range rows {
		t.Row(r.Study, r.Config, r.Value, r.Extra)
	}
	t.Flush()
	return rows, nil
}

// ablationIntersections times the three exact intersection strategies on
// pairs with skewed size ratios.
func ablationIntersections(opts Opts) ([]AblationRow, error) {
	g := graph.Kronecker(11, 16, 17) // skewed degrees: galloping matters
	type pair struct{ u, v uint32 }
	var skewed, balanced []pair
	g.Edges(func(u, v uint32) {
		du, dv := g.Degree(u), g.Degree(v)
		if du > 16*dv || dv > 16*du {
			if len(skewed) < 2000 {
				skewed = append(skewed, pair{u, v})
			}
		} else if len(balanced) < 2000 {
			balanced = append(balanced, pair{u, v})
		}
	})
	perPair := func(pairs []pair, f func(a, b []uint32) int) float64 {
		t := Measure(opts.Runs, func() {
			s := 0
			for _, p := range pairs {
				a, b := g.Neighbors(p.u), g.Neighbors(p.v)
				if len(a) > len(b) { // GallopCount wants the smaller set first
					a, b = b, a
				}
				s += f(a, b)
			}
			benchSink = s
		})
		return float64(t.Median.Nanoseconds()) / float64(len(pairs))
	}
	var rows []AblationRow
	for _, set := range []struct {
		name  string
		pairs []pair
	}{{"skewed", skewed}, {"balanced", balanced}} {
		if len(set.pairs) == 0 {
			continue
		}
		rows = append(rows,
			AblationRow{"intersection/" + set.name, "merge", perPair(set.pairs, graph.MergeCount), 0},
			AblationRow{"intersection/" + set.name, "gallop", perPair(set.pairs, graph.GallopCount), 0},
			AblationRow{"intersection/" + set.name, "adaptive", perPair(set.pairs, graph.IntersectCount), 0},
		)
	}
	return rows, nil
}

var benchSink int

// ablationDelta sweeps the linear BF estimator's scaling factor around
// the canonical 1/b (§IV-B): measured mean relative error per δ.
func ablationDelta(opts Opts) []AblationRow {
	const sizeBits, b, sizeX, sizeY, overlap = 1 << 13, 2, 300, 300, 100
	xs := make([]uint32, sizeX)
	for i := range xs {
		xs[i] = uint32(i)
	}
	ys := make([]uint32, sizeY)
	for i := range ys {
		ys[i] = uint32(sizeX - overlap + i)
	}
	var rows []AblationRow
	for _, mult := range []float64{0.5, 0.75, 1.0, 1.25, 1.5} {
		delta := mult / b
		var errs []float64
		for seed := uint64(0); seed < 20; seed++ {
			fx := sketch.NewBloom(sizeBits, b, seed)
			fy := sketch.NewBloom(sizeBits, b, seed)
			for _, x := range xs {
				fx.Add(x)
			}
			for _, y := range ys {
				fy.Add(y)
			}
			ones := bitset.AndCount(fx.Bits(), fy.Bits())
			errs = append(errs, stats.RelativeError(delta*float64(ones), overlap))
		}
		rows = append(rows, AblationRow{"bf-delta", fmt.Sprintf("%.2g/b", mult), stats.Mean(errs), delta})
	}
	return rows
}

// ablationOneHashVariants compares the union-restricted 1-Hash Jaccard
// against the paper's plain /k on a TC workload.
func ablationOneHashVariants(opts Opts) ([]AblationRow, error) {
	g := graph.CommunityGraph(2000, 60000, 40, 160, 23)
	exact := float64(mining.ExactTC(g.Orient(opts.Workers), opts.Workers))
	var rows []AblationRow
	for _, v := range []struct {
		name string
		est  core.Estimator
	}{{"union-restricted", core.EstAuto}, {"plain /k", core.Est1HSimple}} {
		pg, err := core.Build(g, core.Config{Kind: core.OneHash, Est: v.est, Budget: 0.25, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		est := mining.PGTC(g, pg, opts.Workers)
		rows = append(rows, AblationRow{"1h-jaccard", v.name, stats.RelativeError(est, exact), est})
	}
	return rows, nil
}

// ablationSampled4Clique compares the sampled-C3 MH 4-clique path with
// the min-of-pairwise fallback, on accuracy and runtime.
func ablationSampled4Clique(opts Opts) ([]AblationRow, error) {
	g := graph.CommunityGraph(1200, 50000, 40, 160, 29)
	o := g.Orient(opts.Workers)
	exact := float64(mining.Exact4Clique(o, opts.Workers))
	if exact == 0 {
		return nil, nil
	}
	var rows []AblationRow
	for _, v := range []struct {
		name       string
		storeElems bool
	}{{"sampled-C3", true}, {"min-pairwise", false}} {
		pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{
			Kind: core.OneHash, Budget: 0.25, StoreElems: v.storeElems, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		var est float64
		tm := Measure(opts.Runs, func() { est = mining.PG4Clique(o, pg, opts.Workers) })
		rows = append(rows, AblationRow{"mh-4clique", v.name,
			stats.RelativeError(est, exact), float64(tm.Median.Nanoseconds()) / 1e6})
	}
	return rows, nil
}

// ablationHashCount sweeps b at a fixed storage budget: more hash
// functions reduce false positives per query but load the filter faster
// (§VIII-G: b ∈ {1, 2} wins).
func ablationHashCount(opts Opts) ([]AblationRow, error) {
	g := graph.CommunityGraph(2000, 70000, 50, 200, 31)
	exact := float64(mining.ExactTC(g.Orient(opts.Workers), opts.Workers))
	var rows []AblationRow
	for _, b := range []int{1, 2, 4, 8} {
		pg, err := core.Build(g, core.Config{Kind: core.BF, NumHashes: b, Budget: 0.25, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		var est float64
		tm := Measure(opts.Runs, func() { est = mining.PGTC(g, pg, opts.Workers) })
		rows = append(rows, AblationRow{"bf-hashcount", fmt.Sprintf("b=%d", b),
			stats.RelativeError(est, exact), float64(tm.Median.Nanoseconds()) / 1e6})
	}
	return rows, nil
}
