package bench

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/serve"
)

// ServeRow is one mode of the end-to-end serving benchmark.
type ServeRow struct {
	Mode      string // "engine" (in-process) or "http" (full wire path)
	Queries   int64
	Errors    int64
	QPS       float64
	P50, P99  time.Duration
	HitRate   float64
	MeanBatch float64
}

// ServeExperiment is the repo's first end-to-end serving benchmark: it
// builds a Kronecker snapshot, then drives the query engine closed-loop
// with the default mix (Zipf-skewed vertex picks, so the cache sees
// realistic hot keys) — once calling the engine in-process and once
// through the full HTTP JSON path on a loopback listener. The gap
// between the two rows is the wire tax; the in-process row is the
// sketch-serving ceiling.
func ServeExperiment(opts Opts) ([]ServeRow, error) {
	opts = opts.withDefaults()
	scale, deg := 13, 16
	dur := 2 * time.Second
	if opts.Quick {
		scale, deg = 10, 8
		dur = 700 * time.Millisecond
	}
	g := graph.Kronecker(scale, deg, opts.Seed)
	snap, err := serve.Open(g, serve.SnapshotConfig{
		Kinds: []core.Kind{core.BF}, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	loadOpts := serve.LoadOpts{
		Workers:  4,
		Duration: dur,
		Vertices: g.NumVertices(),
		Zipf:     1.2,
		Seed:     opts.Seed,
	}

	var rows []ServeRow

	// Mode 1: in-process engine calls (no serialization, no sockets).
	eng := serve.New(snap, serve.Options{Workers: opts.Workers})
	rep, err := serve.RunLoad(loadOpts, eng.Query)
	if err != nil {
		eng.Close()
		return nil, err
	}
	rows = append(rows, serveRow("engine", rep, eng.Stats()))
	eng.Close()

	// Mode 2: the full HTTP JSON path over loopback.
	eng = serve.New(snap, serve.Options{Workers: opts.Workers})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.Handler(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	do := serve.HTTPDoer(client, "http://"+ln.Addr().String())
	rep, err = serve.RunLoad(loadOpts, do)
	if err != nil {
		return nil, err
	}
	rows = append(rows, serveRow("http", rep, eng.Stats()))

	section(opts.Out, "online serving: closed-loop default mix (kron scale=%d, n=%d, m=%d)",
		scale, g.NumVertices(), g.NumEdges())
	t := NewTable(opts.Out, "mode", "queries", "errors", "q/s", "p50", "p99", "cache hits", "avg batch")
	for _, r := range rows {
		t.Row(r.Mode, r.Queries, r.Errors, r.QPS, r.P50, r.P99,
			fmt.Sprintf("%.1f%%", 100*r.HitRate), r.MeanBatch)
	}
	t.Flush()
	return rows, nil
}

func serveRow(mode string, rep *serve.LoadReport, st serve.Stats) ServeRow {
	return ServeRow{
		Mode:      mode,
		Queries:   rep.Queries,
		Errors:    rep.Errors,
		QPS:       rep.Throughput(),
		P50:       rep.Hist.Quantile(0.50),
		P99:       rep.Hist.Quantile(0.99),
		HitRate:   st.Cache.HitRate(),
		MeanBatch: st.Batch.MeanSize(),
	}
}
