package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/serve"
	"probgraph/internal/stats"
	"probgraph/internal/stream"
)

// StreamBench measures the streaming layer on a fixed Kronecker graph:
// ingest throughput of incremental sketch maintenance (per
// representation), the per-epoch Freeze cost, the from-scratch rebuild
// cost it amortizes away, and query throughput/latency while epochs
// churn underneath the serving engine. One BenchRecord per row is
// appended to opts.JSON when set — the records the CI perf-regression
// gate (cmd/pgci) tracks alongside the session benchmark.
func StreamBench(opts Opts) ([]BenchRecord, error) {
	opts = opts.withDefaults()
	scale := 11
	if opts.Quick {
		scale = 10
	}
	final := graph.Kronecker(scale, 16, opts.Seed)
	edges := final.EdgeList()
	cut := len(edges) * 8 / 10
	initial, err := graph.FromEdges(final.NumVertices(), edges[:cut])
	if err != nil {
		return nil, err
	}
	streamed := edges[cut:]
	const batchSize = 1024

	var rows []BenchRecord

	// Ingest throughput: apply the streamed 20% in batches, fresh
	// dynamic state per timed run (re-applying to warm state would
	// measure duplicate detection, not insertion). Only the ApplyBatch
	// loop is timed — the initial bulk build in stream.New is setup, and
	// folding it in would hide regressions in the incremental path.
	for _, kind := range []core.Kind{core.BF, core.OneHash} {
		cfg := serve.SnapshotConfig{Kinds: []core.Kind{kind}, Seed: opts.Seed, Workers: opts.Workers}
		ns, err := medianNs(opts.Runs, func() (time.Duration, error) {
			d, err := stream.New(initial, cfg)
			if err != nil {
				return 0, err
			}
			t0 := time.Now()
			for i := 0; i < len(streamed); i += batchSize {
				end := min(i+batchSize, len(streamed))
				if _, err := d.ApplyBatch(streamed[i:end], nil); err != nil {
					return 0, err
				}
			}
			return time.Since(t0), nil
		})
		if err != nil {
			return nil, fmt.Errorf("stream bench ingest/%v: %w", kind, err)
		}
		perEdge := ns / int64(len(streamed))
		rows = append(rows, BenchRecord{
			Experiment: "stream/ingest",
			Config:     kind.String(),
			Value:      float64(len(streamed)) / (float64(ns) / float64(time.Second)),
			NsPerOp:    perEdge,
		})
	}

	// Freeze cost (one epoch publish) vs the from-scratch sketch rebuild
	// a non-incremental system would pay per batch.
	d, err := stream.New(initial, serve.SnapshotConfig{Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	if _, err := d.ApplyBatch(streamed, nil); err != nil {
		return nil, err
	}
	freezeT := Measure(opts.Runs, func() {
		if _, err := d.Freeze(); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "stream/freeze",
		Config:     "BF",
		Value:      float64(final.NumEdges()),
		NsPerOp:    int64(freezeT.Median),
	})
	snap, err := d.Freeze()
	if err != nil {
		return nil, err
	}
	pinned := snap.PG(core.BF).Cfg
	rebuildT := Measure(opts.Runs, func() {
		if _, err := core.Build(snap.G, pinned); err != nil {
			panic(err)
		}
	})
	rows = append(rows, BenchRecord{
		Experiment: "stream/rebuild",
		Config:     "BF",
		Value:      float64(final.NumEdges()),
		NsPerOp:    int64(rebuildT.Median),
	})

	// Query latency under churn: an in-process engine hot-swapping
	// epochs while a closed-loop driver hammers point queries.
	churn, err := queryUnderChurn(opts, initial, streamed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, churn)

	if opts.JSON != nil {
		enc := json.NewEncoder(opts.JSON)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return nil, fmt.Errorf("stream bench: writing JSON record: %w", err)
			}
		}
	}

	section(opts.Out, "Streaming benchmark (graph: kron scale %d, %d streamed edges)", scale, len(streamed))
	t := NewTable(opts.Out, "experiment", "config", "value", "ns/op")
	for _, r := range rows {
		t.Row(r.Experiment, r.Config, r.Value, r.NsPerOp)
	}
	t.Flush()
	fmt.Fprintf(opts.Out,
		"amortization: incremental upkeep %d ns/streamed edge (BF); a rebuild-per-batch system pays a %.3gms full re-sketch every batch on top of the %.3gms epoch publish both designs share\n",
		rows[0].NsPerOp, float64(rebuildT.Median)/1e6, float64(freezeT.Median)/1e6)
	return rows, nil
}

// queryUnderChurn drives a mixed point-query load against an engine
// while a feeder ingests the streamed edges batch by batch, hot-swapping
// an epoch per batch. Any query error fails the experiment — the
// zero-error-across-swaps contract, continuously rechecked.
func queryUnderChurn(opts Opts, initial *graph.Graph, streamed []graph.Edge) (BenchRecord, error) {
	d, err := stream.New(initial, serve.SnapshotConfig{Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return BenchRecord{}, err
	}
	snap, err := d.Freeze()
	if err != nil {
		return BenchRecord{}, err
	}
	eng := serve.New(snap, serve.Options{Workers: opts.Workers})
	defer eng.Close()
	feeder := stream.NewFeeder(d, eng)

	dur := 1500 * time.Millisecond
	if opts.Quick {
		dur = 800 * time.Millisecond
	}
	stop := make(chan struct{})
	ingestDone := make(chan error, 1)
	go func() {
		// Spread the stream across the run: one epoch swap per interval.
		const batches = 16
		chunk := (len(streamed) + batches - 1) / batches
		interval := dur / batches
		for i := 0; i < len(streamed); i += chunk {
			end := min(i+chunk, len(streamed))
			if _, err := feeder.Ingest(streamed[i:end], nil); err != nil {
				ingestDone <- err
				return
			}
			select {
			case <-stop:
				ingestDone <- nil
				return
			case <-time.After(interval):
			}
		}
		ingestDone <- nil
	}()

	rep, err := serve.RunLoad(serve.LoadOpts{
		Workers:  4,
		Duration: dur,
		Vertices: initial.NumVertices(),
		Zipf:     1.2,
		Seed:     opts.Seed,
	}, func(q serve.Query) (serve.Result, error) { return eng.Query(q) })
	close(stop)
	if err != nil {
		return BenchRecord{}, err
	}
	if ierr := <-ingestDone; ierr != nil {
		return BenchRecord{}, fmt.Errorf("stream bench churn ingest: %w", ierr)
	}
	if rep.Errors > 0 {
		return BenchRecord{}, fmt.Errorf("stream bench: %d query errors across %d hot-swaps", rep.Errors, eng.Swaps())
	}
	if rep.Queries == 0 {
		return BenchRecord{}, fmt.Errorf("stream bench: no queries completed under churn")
	}
	fmt.Fprintf(opts.Out, "churn latency: p50 %v  p99 %v across %d hot-swaps\n",
		rep.Hist.Quantile(0.50), rep.Hist.Quantile(0.99), eng.Swaps())
	// The gated ns_per_op is the mean time per completed query (inverse
	// throughput over ~thousands of queries) — a p99 recorded while
	// goroutines race hot-swaps is far too scheduler-noisy to regress-gate
	// on shared CI runners; the tail is printed above instead.
	return BenchRecord{
		Experiment: "stream/query-under-churn",
		Config:     "BF",
		Value:      rep.Throughput(),
		NsPerOp:    int64(float64(time.Second) / rep.Throughput()),
	}, nil
}

// medianNs runs f (which owns its own fresh state per call and reports
// how long the measured region alone took) with the harness's
// warmup+median protocol, returning the median in nanoseconds.
func medianNs(runs int, f func() (time.Duration, error)) (int64, error) {
	if runs < 1 {
		runs = 1
	}
	if _, err := f(); err != nil { // warmup, discarded
		return 0, err
	}
	samples := make([]float64, runs)
	for i := range samples {
		el, err := f()
		if err != nil {
			return 0, err
		}
		samples[i] = float64(el)
	}
	return int64(stats.MedianCI(samples, 0.95).Point), nil
}
