package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"probgraph/internal/stats"
)

// Opts controls an experiment run.
type Opts struct {
	Quick   bool      // shrink graphs and repetition counts
	Runs    int       // timed repetitions per measurement (default 5, quick 3)
	Workers int       // parallel workers (<=0: GOMAXPROCS)
	Seed    uint64    // master seed
	Out     io.Writer // destination for the printed tables
	JSON    io.Writer // optional JSON-lines sink for machine-readable records
}

// withDefaults normalizes options.
func (o Opts) withDefaults() Opts {
	if o.Runs <= 0 {
		if o.Quick {
			o.Runs = 3
		} else {
			o.Runs = 5
		}
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// scale returns the dataset scale factor for this run.
func (o Opts) scale() float64 {
	if o.Quick {
		return 0.4
	}
	return 1.0
}

// Timing is a robust runtime measurement: median of repeated runs with a
// nonparametric 95% CI, after a warmup run is discarded (the paper omits
// the first 1% of measurements as warmup; with few repetitions that is
// one run).
type Timing struct {
	Median  time.Duration
	Lo, Hi  time.Duration
	Samples int
}

// Measure times f: one discarded warmup run, then `runs` timed runs.
func Measure(runs int, f func()) Timing {
	if runs < 1 {
		runs = 1
	}
	f() // warmup, discarded
	samples := make([]float64, runs)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = float64(time.Since(start))
	}
	ci := stats.MedianCI(samples, 0.95)
	return Timing{
		Median:  time.Duration(ci.Point),
		Lo:      time.Duration(ci.Lo),
		Hi:      time.Duration(ci.Hi),
		Samples: runs,
	}
}

// Speedup returns baseline/approx as a ratio (>1 means approx is faster).
func Speedup(baseline, approx Timing) float64 {
	if approx.Median <= 0 {
		return 0
	}
	return float64(baseline.Median) / float64(approx.Median)
}

// Table is a fixed-column text table writer for experiment output.
type Table struct {
	w  *tabwriter.Writer
	nc int
}

// NewTable starts a table with the given header columns.
func NewTable(out io.Writer, columns ...string) *Table {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	t := &Table{w: tw, nc: len(columns)}
	for i, c := range columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	return t
}

// Row appends one row; values are formatted with %v, floats with %.3g.
func (t *Table) Row(values ...any) {
	for i, v := range values {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch x := v.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.4g", x)
		case time.Duration:
			fmt.Fprintf(t.w, "%.3gms", float64(x)/1e6)
		default:
			fmt.Fprintf(t.w, "%v", x)
		}
	}
	fmt.Fprintln(t.w)
}

// Flush renders the table.
func (t *Table) Flush() { t.w.Flush() }

// section prints an experiment banner.
func section(out io.Writer, format string, args ...any) {
	fmt.Fprintf(out, "\n=== "+format+" ===\n", args...)
}
