package bench

import (
	"fmt"

	"probgraph/internal/baselines"
	"probgraph/internal/bitset"
	"probgraph/internal/core"
	"probgraph/internal/estimator"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
)

// tableGraph is the shared instance for the table experiments.
func tableGraph(quick bool) *graph.Graph {
	if quick {
		return graph.Kronecker(10, 12, 901)
	}
	return graph.Kronecker(12, 16, 901)
}

// Table4Row is one representation's measured intersection kernel cost
// next to its theoretical work term (Table IV).
type Table4Row struct {
	Repr     string
	WorkTerm string // the Table IV formula
	WorkOps  float64
	NsPerOp  float64
}

// Table4 measures the per-pair |N_u∩N_v| kernels of Table IV on sampled
// adjacent pairs: exact merge, exact galloping, adaptive, BF AND, k-Hash
// agreement, 1-Hash merge, KMV union, and reports the theoretical work
// term each one realizes.
func Table4(opts Opts) ([]Table4Row, error) {
	opts = opts.withDefaults()
	g := tableGraph(opts.Quick)
	bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	kh, err := core.Build(g, core.Config{Kind: core.KHash, Budget: 0.25, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	oh, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	kmv, err := core.Build(g, core.Config{Kind: core.KMV, Budget: 0.25, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}

	// Sample adjacent pairs.
	type pair struct{ u, v uint32 }
	var pairs []pair
	g.Edges(func(u, v uint32) {
		if len(pairs) < 4096 {
			pairs = append(pairs, pair{u, v})
		}
	})
	var sumDeg float64
	for _, p := range pairs {
		sumDeg += float64(g.Degree(p.u) + g.Degree(p.v))
	}
	avgDeg := sumDeg / float64(len(pairs))

	kernel := func(f func(u, v uint32) float64) float64 {
		var sink float64
		t := Measure(opts.Runs, func() {
			for _, p := range pairs {
				sink += f(p.u, p.v)
			}
		})
		_ = sink
		return float64(t.Median.Nanoseconds()) / float64(len(pairs))
	}

	rows := []Table4Row{
		{"CSR(merge)", "O(du+dv)", avgDeg,
			kernel(func(u, v uint32) float64 {
				return float64(graph.IntersectCount(g.Neighbors(u), g.Neighbors(v)))
			})},
		{"BF", "O(B/W)", float64(bf.Cfg.BloomBits / bitset.WordBits),
			kernel(func(u, v uint32) float64 { return bf.IntCard(u, v) })},
		{"kHash", "O(k)", float64(kh.Cfg.K),
			kernel(func(u, v uint32) float64 { return kh.IntCard(u, v) })},
		{"1Hash", "O(k)", float64(oh.Cfg.K),
			kernel(func(u, v uint32) float64 { return oh.IntCard(u, v) })},
		{"KMV", "O(k)", float64(kmv.Cfg.K),
			kernel(func(u, v uint32) float64 { return kmv.IntCard(u, v) })},
	}
	section(opts.Out, "Table IV: |N_u∩N_v| kernel cost per representation (n=%d, m=%d, avg du+dv=%.0f)",
		g.NumVertices(), g.NumEdges(), avgDeg)
	t := NewTable(opts.Out, "representation", "work term", "work units", "ns/intersection")
	for _, r := range rows {
		t.Row(r.Repr, r.WorkTerm, r.WorkOps, r.NsPerOp)
	}
	t.Flush()
	return rows, nil
}

// Table5Row reports construction cost for one representation (Table V +
// the §VIII-G construction-cost analysis).
type Table5Row struct {
	Repr        string
	B           int // hash count (BF only)
	Construct   Timing
	Algorithm   Timing  // one PG TC pass using the sketch
	CostFrac    float64 // construction / algorithm runtime
	SketchBits  int64
	RelativeMem float64
}

// Table5 measures parallel sketch construction (Table V) and relates it
// to one algorithm execution (§VIII-G): construction should stay below
// ~50% of algorithm runtime except for large b.
func Table5(opts Opts) ([]Table5Row, error) {
	opts = opts.withDefaults()
	g := tableGraph(opts.Quick)
	var rows []Table5Row
	addBF := func(b int) error {
		cfg := core.Config{Kind: core.BF, Budget: 0.25, NumHashes: b, Seed: opts.Seed}
		var pg *core.PG
		var err error
		ct := Measure(opts.Runs, func() { pg, err = core.Build(g, cfg) })
		if err != nil {
			return err
		}
		at := Measure(opts.Runs, func() { mining.PGTC(g, pg, opts.Workers) })
		rows = append(rows, Table5Row{
			Repr: "BF", B: b, Construct: ct, Algorithm: at,
			CostFrac:   float64(ct.Median) / float64(at.Median),
			SketchBits: pg.MemoryBits(), RelativeMem: pg.RelativeMemory(),
		})
		return nil
	}
	for _, b := range []int{1, 2, 4, 8} {
		if err := addBF(b); err != nil {
			return nil, err
		}
	}
	for _, kind := range []core.Kind{core.KHash, core.OneHash, core.KMV} {
		cfg := core.Config{Kind: kind, Budget: 0.25, Seed: opts.Seed}
		var pg *core.PG
		var err error
		ct := Measure(opts.Runs, func() { pg, err = core.Build(g, cfg) })
		if err != nil {
			return nil, err
		}
		at := Measure(opts.Runs, func() { mining.PGTC(g, pg, opts.Workers) })
		rows = append(rows, Table5Row{
			Repr: kind.String(), Construct: ct, Algorithm: at,
			CostFrac:   float64(ct.Median) / float64(at.Median),
			SketchBits: pg.MemoryBits(), RelativeMem: pg.RelativeMemory(),
		})
	}
	section(opts.Out, "Table V / §VIII-G: construction cost per representation")
	t := NewTable(opts.Out, "representation", "b", "construct", "one TC pass", "constr/algo", "rel.mem")
	for _, r := range rows {
		t.Row(r.Repr, r.B, r.Construct.Median, r.Algorithm.Median, r.CostFrac, r.RelativeMem)
	}
	t.Flush()
	return rows, nil
}

// Table6Row compares the theoretical work terms of Table VI, evaluated
// on the actual graph, with measured runtimes.
type Table6Row struct {
	Problem  Problem
	Scheme   string
	WorkTerm string
	WorkOps  float64
	Time     Timing
}

// Table6 evaluates the work formulas of Table VI on the benchmark graph
// and sets measured runtimes next to them: the PG work terms are
// asymptotically smaller, and the measured times track that.
func Table6(opts Opts) ([]Table6Row, error) {
	opts = opts.withDefaults()
	g := tableGraph(opts.Quick)
	o := g.Orient(opts.Workers)
	bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	mh, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	n := float64(g.NumVertices())
	m := float64(g.NumEdges())
	d := float64(g.MaxDegree())
	BW := float64(bf.Cfg.BloomBits / bitset.WordBits)
	k := float64(mh.Cfg.K)

	var rows []Table6Row
	add := func(p Problem, scheme, term string, ops float64, f func()) {
		rows = append(rows, Table6Row{Problem: p, Scheme: scheme, WorkTerm: term, WorkOps: ops, Time: Measure(opts.Runs, f)})
	}
	add(ProblemTC, "CSR", "O(n d^2)", n*d*d, func() { mining.ExactTC(o, opts.Workers) })
	add(ProblemTC, "PG(BF)", "O(m B/W)", m*BW, func() { mining.PGTC(g, bf, opts.Workers) })
	add(ProblemTC, "PG(MH)", "O(m k)", m*k, func() { mining.PGTC(g, mh, opts.Workers) })
	tau := clusterTau[ProblemClusterCN]
	add(ProblemClusterCN, "CSR", "O(n d^2)", n*d*d, func() {
		mining.JarvisPatrickExact(g, mining.CommonNeighbors, tau, opts.Workers)
	})
	add(ProblemClusterCN, "PG(BF)", "O(m B/W)", m*BW, func() {
		mining.JarvisPatrickPG(g, bf, mining.CommonNeighbors, tau, opts.Workers)
	})
	add(ProblemClusterCN, "PG(MH)", "O(m k)", m*k, func() {
		mining.JarvisPatrickPG(g, mh, mining.CommonNeighbors, tau, opts.Workers)
	})
	section(opts.Out, "Table VI: work terms (evaluated) vs measured runtime")
	t := NewTable(opts.Out, "problem", "scheme", "work term", "work (ops)", "time")
	for _, r := range rows {
		t.Row(string(r.Problem), r.Scheme, r.WorkTerm, r.WorkOps, r.Time.Median)
	}
	t.Flush()
	return rows, nil
}

// Table7Row compares TC estimators end to end (Table VII's measurable
// columns: construction time, memory, estimation time, plus accuracy).
type Table7Row struct {
	Scheme    string
	Construct Timing
	Estimate  Timing
	MemBits   int64
	RelErr    float64
	Bounds    string // the Table VII bound class
}

// Table7 reproduces the measurable half of Table VII: ProbGraph's three
// TC estimators against Doulion and Colorful, with construction time,
// memory, estimation time and achieved accuracy; the bound class column
// records the theoretical comparison.
func Table7(opts Opts) ([]Table7Row, error) {
	opts = opts.withDefaults()
	g := tableGraph(opts.Quick)
	o := g.Orient(opts.Workers)
	exact := float64(mining.ExactTC(o, opts.Workers))
	var rows []Table7Row

	addPG := func(name string, cfg core.Config, bound string) error {
		var pg *core.PG
		var err error
		ct := Measure(opts.Runs, func() { pg, err = core.Build(g, cfg) })
		if err != nil {
			return err
		}
		var est float64
		et := Measure(opts.Runs, func() { est = mining.PGTC(g, pg, opts.Workers) })
		relErr := 0.0
		if exact > 0 {
			relErr = (est - exact) / exact
			if relErr < 0 {
				relErr = -relErr
			}
		}
		rows = append(rows, Table7Row{Scheme: name, Construct: ct, Estimate: et,
			MemBits: pg.MemoryBits(), RelErr: relErr, Bounds: bound})
		return nil
	}
	if err := addPG("PG TC-AND (BF)", core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed}, "polynomial"); err != nil {
		return nil, err
	}
	if err := addPG("PG TC-kH (MH)", core.Config{Kind: core.KHash, Budget: 0.25, Seed: opts.Seed}, "exponential+MLE"); err != nil {
		return nil, err
	}
	if err := addPG("PG TC-1H (MH)", core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed}, "exponential"); err != nil {
		return nil, err
	}
	addSampler := func(name string, f func() float64, bound string) {
		var est float64
		et := Measure(opts.Runs, func() { est = f() })
		relErr := 0.0
		if exact > 0 {
			relErr = est/exact - 1
			if relErr < 0 {
				relErr = -relErr
			}
		}
		rows = append(rows, Table7Row{Scheme: name, Estimate: et, RelErr: relErr, Bounds: bound})
	}
	addSampler("Doulion", func() float64 {
		return baselines.DoulionTC(g, fig6DoulionP, opts.Seed, opts.Workers)
	}, "none")
	addSampler("Colorful", func() float64 {
		return baselines.ColorfulTC(g, fig6Colors, opts.Seed, opts.Workers)
	}, "polynomial")

	section(opts.Out, "Table VII: TC estimators end to end (exact TC = %.0f)", exact)
	t := NewTable(opts.Out, "scheme", "construct", "estimate", "mem bits", "rel.err", "bounds")
	for _, r := range rows {
		t.Row(r.Scheme, r.Construct.Median, r.Estimate.Median, r.MemBits, r.RelErr, r.Bounds)
	}
	t.Flush()
	return rows, nil
}

// TheoryReport prints the Table II/III property summaries together with
// evaluated bound values on a representative configuration — making the
// theory chapter executable.
func TheoryReport(opts Opts) error {
	opts = opts.withDefaults()
	out := opts.Out
	section(out, "Tables II/III: estimator properties and bounds (static + evaluated)")
	t := NewTable(out, "estimator", "class", "AU", "CN", "ML", "IN", "AE", "bound")
	t.Row("|X|_S (Eq.1)", "BF", "yes", "yes", "no", "no", "no", "polynomial (MSE)")
	t.Row("|X∩Y|_AND (Eq.2)", "BF", "yes", "yes", "no", "no", "no", "polynomial (MSE)")
	t.Row("|X∩Y|_L (Eq.4)", "BF", "yes", "yes", "no", "no", "no", "polynomial (MSE)")
	t.Row("|X∩Y|_kH (Eq.5)", "k-Hash", "yes", "yes", "yes", "yes", "yes", "exponential")
	t.Row("|X∩Y|_1H (§IV-D)", "1-Hash", "yes", "yes", "no", "no", "no", "exponential")
	t.Flush()

	fmt.Fprintln(out, "\nEvaluated bounds for |X|=|Y|=200, |X∩Y|=80, B=16384 bits, b=2, k=64:")
	t2 := NewTable(out, "bound", "value")
	mse, valid := estimator.BFMSEBound(80, 16384, 2)
	t2.Row("Prop IV.1 MSE(AND)", mse)
	t2.Row("  precondition holds", valid)
	t2.Row("Eq.(3) P(|err|>=10)", estimator.BFTail(80, 16384, 2, 10))
	t2.Row("Prop IV.2/3 P(|err|>=40)", estimator.MinHashTail(200, 200, 64, 40))
	t2.Row("MinHash 95% deviation", estimator.MinHashDeviation(200, 200, 64, 0.95))
	t2.Row("Prop A.2 MSE(delta=1/b)", estimator.BFLinearMSEBound(80, 16384, 2, 0.5))
	t2.Row("KMV P(|X| err<=40) cover", estimator.KMVCardInterval(320, 64, 40))
	t2.Flush()

	g := tableGraph(true)
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(uint32(v))
	}
	gm := estimator.Moments(degs, g.NumEdges())
	exact := float64(mining.ExactTC(g.Orient(opts.Workers), opts.Workers))
	fmt.Fprintf(out, "\nTheorem VII.1 on Kronecker graph (n=%d, m=%d, TC=%.0f):\n",
		g.NumVertices(), g.NumEdges(), exact)
	t3 := NewTable(out, "bound", "value")
	tail, valid := estimator.TCBoundBF(gm, 1<<20, 2, exact*0.2)
	t3.Row("BF P(|TC err| >= 20%)", tail)
	t3.Row("  precondition holds", valid)
	t3.Row("MH P(|TC err| >= 20%) (SumDeg2)", estimator.TCBoundMinHash(gm, 64, exact*0.2))
	t3.Row("MH P(|TC err| >= 20%) (deg-refined)", estimator.TCBoundMinHashDegree(gm, 64, exact*0.2))
	t3.Row("MH 95% TC deviation", estimator.TCDeviationMinHash(gm, 64, 0.95))
	t3.Flush()
	return nil
}
