package bench

import (
	"fmt"
	"math"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/stats"
)

// Fig3Config is one (storage budget, hash count) cell of Fig. 3.
type Fig3Config struct {
	S float64
	B int
}

// Fig3Configs are the four panels of Fig. 3.
var Fig3Configs = []Fig3Config{
	{S: 0.33, B: 1},
	{S: 0.33, B: 4},
	{S: 0.10, B: 4},
	{S: 0.10, B: 1},
}

// Fig3Row is the boxplot summary of per-edge relative differences for one
// (graph, config, estimator) cell.
type Fig3Row struct {
	Graph     string
	S         float64
	B         int
	Estimator string
	Box       stats.Box
	Pairs     int
}

// maxFig3Pairs caps the number of adjacent pairs evaluated per graph so
// dense stand-ins do not dominate runtime.
const maxFig3Pairs = 20000

// Fig3 reproduces the Fig. 3 analysis: for each graph and each
// (s, b) configuration, the distribution of relative differences
// |est − |N_u∩N_v|| / |N_u∩N_v| over adjacent vertex pairs, for the
// estimators AND, L (Bloom), 1H, kH (MinHash), plus the OR and KMV
// estimators as extensions. Pairs with an empty exact intersection are
// skipped (their relative difference is undefined).
func Fig3(opts Opts) ([]Fig3Row, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(Fig3Graphs, opts.scale())
	if err != nil {
		return nil, err
	}
	var rows []Fig3Row
	for _, cfg := range Fig3Configs {
		for _, ng := range graphs {
			g := ng.Graph
			exact := exactPairCards(g)
			type estCase struct {
				name string
				pg   *core.PG
			}
			var cases []estCase
			bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: cfg.S, NumHashes: cfg.B, Seed: opts.Seed + 1})
			if err != nil {
				return nil, err
			}
			cases = append(cases, estCase{"AND", bf})
			bfL, err := core.Build(g, core.Config{Kind: core.BF, Est: core.EstBFL, Budget: cfg.S, NumHashes: cfg.B, Seed: opts.Seed + 1})
			if err != nil {
				return nil, err
			}
			cases = append(cases, estCase{"L", bfL})
			bfOR, err := core.Build(g, core.Config{Kind: core.BF, Est: core.EstBFOr, Budget: cfg.S, NumHashes: cfg.B, Seed: opts.Seed + 1})
			if err != nil {
				return nil, err
			}
			cases = append(cases, estCase{"OR", bfOR})
			oneH, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: cfg.S, Seed: opts.Seed + 2})
			if err != nil {
				return nil, err
			}
			cases = append(cases, estCase{"1H", oneH})
			kH, err := core.Build(g, core.Config{Kind: core.KHash, Budget: cfg.S, Seed: opts.Seed + 3})
			if err != nil {
				return nil, err
			}
			cases = append(cases, estCase{"kH", kH})
			kmv, err := core.Build(g, core.Config{Kind: core.KMV, Budget: cfg.S, Seed: opts.Seed + 4})
			if err != nil {
				return nil, err
			}
			cases = append(cases, estCase{"KMV", kmv})

			for _, c := range cases {
				var diffs []float64
				for _, pc := range exact {
					est := c.pg.IntCard(pc.u, pc.v)
					diffs = append(diffs, math.Abs(est-float64(pc.card))/float64(pc.card))
				}
				rows = append(rows, Fig3Row{
					Graph: ng.Name, S: cfg.S, B: cfg.B, Estimator: c.name,
					Box: stats.Boxplot(diffs), Pairs: len(diffs),
				})
			}
		}
	}
	printFig3(opts, rows)
	return rows, nil
}

// pairCard is an adjacent pair with its exact intersection cardinality.
type pairCard struct {
	u, v uint32
	card int
}

// exactPairCards lists adjacent pairs with nonzero |N_u ∩ N_v|, capped.
func exactPairCards(g *graph.Graph) []pairCard {
	var out []pairCard
	g.Edges(func(u, v uint32) {
		if len(out) >= maxFig3Pairs {
			return
		}
		c := graph.IntersectCount(g.Neighbors(u), g.Neighbors(v))
		if c > 0 {
			out = append(out, pairCard{u, v, c})
		}
	})
	return out
}

func printFig3(opts Opts, rows []Fig3Row) {
	section(opts.Out, "Fig. 3: accuracy of |X∩Y| estimators (relative difference boxplots)")
	t := NewTable(opts.Out, "s", "b", "graph", "estimator", "median", "Q1", "Q3", "max", "outliers", "pairs")
	for _, r := range rows {
		t.Row(fmt.Sprintf("%.0f%%", r.S*100), r.B, r.Graph, r.Estimator,
			r.Box.Median, r.Box.Q1, r.Box.Q3, r.Box.Max, r.Box.Outliers, r.Pairs)
	}
	t.Flush()
}
