package bench

import (
	"runtime"

	"probgraph/internal/baselines"
	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
)

// ScalingRow is one point of a Fig. 8/9 scaling curve.
type ScalingRow struct {
	Problem Problem
	Scheme  string
	Threads int
	MN      float64 // m/n of the instance (weak scaling only)
	Time    Timing
}

// threadSeries returns the powers of two up to the host's core count
// (capped at 32, the paper's machine).
func threadSeries(quick bool) []int {
	maxT := runtime.GOMAXPROCS(0)
	if maxT > 32 {
		maxT = 32
	}
	if quick && maxT > 8 {
		maxT = 8
	}
	var ts []int
	for t := 1; t <= maxT; t *= 2 {
		ts = append(ts, t)
	}
	return ts
}

// strongGraph builds the fixed instance for strong scaling.
func strongGraph(quick bool) *graph.Graph {
	if quick {
		return graph.Kronecker(11, 12, 801)
	}
	return graph.Kronecker(13, 16, 801)
}

// Fig8Strong reproduces the strong-scaling panels of Fig. 8 (a–d):
// runtime vs thread count on a fixed Kronecker graph for TC (vs Doulion
// and Colorful) and for the three clustering variants (PG BF vs 1H, with
// the exact baseline).
func Fig8Strong(opts Opts) ([]ScalingRow, error) {
	opts = opts.withDefaults()
	g := strongGraph(opts.Quick)
	o := g.Orient(0)
	bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 41})
	if err != nil {
		return nil, err
	}
	oneH, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed + 42})
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, threads := range threadSeries(opts.Quick) {
		tds := threads
		add := func(p Problem, scheme string, f func()) {
			rows = append(rows, ScalingRow{Problem: p, Scheme: scheme, Threads: tds, Time: Measure(opts.Runs, f)})
		}
		// Panel (a): TC.
		add(ProblemTC, "Exact", func() { mining.ExactTC(o, tds) })
		add(ProblemTC, "Doulion", func() { baselines.DoulionTC(g, fig6DoulionP, opts.Seed, tds) })
		add(ProblemTC, "Colorful", func() { baselines.ColorfulTC(g, fig6Colors, opts.Seed, tds) })
		add(ProblemTC, "PG-BF", func() { mining.PGTC(g, bf, tds) })
		add(ProblemTC, "PG-1H", func() { mining.PGTC(g, oneH, tds) })
		// Panels (b–d): clustering variants.
		for _, p := range []Problem{ProblemClusterCN, ProblemClusterJacc, ProblemClusterOver} {
			m, tau := clusterMeasure(p), clusterTau[p]
			add(p, "Exact", func() { mining.JarvisPatrickExact(g, m, tau, tds) })
			add(p, "PG-BF", func() { mining.JarvisPatrickPG(g, bf, m, tau, tds) })
			add(p, "PG-1H", func() { mining.JarvisPatrickPG(g, oneH, m, tau, tds) })
		}
	}
	printScaling(opts, "Fig. 8 (a-d): strong scaling (fixed Kronecker graph)", rows, false)
	return rows, nil
}

// weakStep describes one weak-scaling instance: threads and edge factor.
type weakStep struct {
	threads int
	ef      int
}

// weakSeries mirrors the paper's setup: edges grow at twice the thread
// rate, sweeping m/n across orders of magnitude (the paper reaches
// m/n ≈ 1806 on a 1TB machine; the offline series is scaled down but
// preserves the geometric progression).
func weakSeries(quick bool) (scale int, steps []weakStep) {
	ts := threadSeries(quick)
	scale = 13
	if quick {
		scale = 10
	}
	ef := 4
	for _, t := range ts {
		steps = append(steps, weakStep{threads: t, ef: ef})
		ef *= 4 // edge count grows 2x faster than the doubling threads
	}
	// Cap the largest edge factor to keep memory in check.
	maxEF := 256
	if quick {
		maxEF = 64
	}
	for i := range steps {
		if steps[i].ef > maxEF {
			steps[i].ef = maxEF
		}
	}
	return scale, steps
}

// Fig8Weak reproduces the weak-scaling panels of Fig. 8 (e–h): the
// vertex count stays fixed while edges grow faster than threads,
// stressing load balancing exactly as discussed in §VIII-E (hub
// neighborhoods grow; PG sketches stay fixed-size).
func Fig8Weak(opts Opts) ([]ScalingRow, error) {
	opts = opts.withDefaults()
	scale, steps := weakSeries(opts.Quick)
	var rows []ScalingRow
	for _, st := range steps {
		g := graph.Kronecker(scale, st.ef, opts.Seed+uint64(st.ef))
		o := g.Orient(0)
		mn := float64(g.NumEdges()) / float64(g.NumVertices())
		bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 43})
		if err != nil {
			return nil, err
		}
		oneH, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed + 44})
		if err != nil {
			return nil, err
		}
		tds := st.threads
		add := func(p Problem, scheme string, f func()) {
			rows = append(rows, ScalingRow{Problem: p, Scheme: scheme, Threads: tds, MN: mn, Time: Measure(opts.Runs, f)})
		}
		add(ProblemTC, "Exact", func() { mining.ExactTC(o, tds) })
		add(ProblemTC, "Doulion", func() { baselines.DoulionTC(g, fig6DoulionP, opts.Seed, tds) })
		add(ProblemTC, "Colorful", func() { baselines.ColorfulTC(g, fig6Colors, opts.Seed, tds) })
		add(ProblemTC, "PG-BF", func() { mining.PGTC(g, bf, tds) })
		add(ProblemTC, "PG-1H", func() { mining.PGTC(g, oneH, tds) })
		for _, p := range []Problem{ProblemClusterCN, ProblemClusterJacc, ProblemClusterOver} {
			m, tau := clusterMeasure(p), clusterTau[p]
			add(p, "Exact", func() { mining.JarvisPatrickExact(g, m, tau, tds) })
			add(p, "PG-BF", func() { mining.JarvisPatrickPG(g, bf, m, tau, tds) })
			add(p, "PG-1H", func() { mining.JarvisPatrickPG(g, oneH, m, tau, tds) })
		}
	}
	printScaling(opts, "Fig. 8 (e-h): weak scaling (edges grow 2x faster than threads)", rows, true)
	return rows, nil
}

// Fig9 isolates the Clustering (Common Neighbors) BF-vs-1H comparison of
// Fig. 9: both strong and weak scaling series restricted to that problem.
func Fig9(opts Opts) ([]ScalingRow, error) {
	opts = opts.withDefaults()
	strong, err := Fig8Strong(Opts{Quick: opts.Quick, Runs: opts.Runs, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	weak, err := Fig8Weak(Opts{Quick: opts.Quick, Runs: opts.Runs, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, r := range append(strong, weak...) {
		if r.Problem == ProblemClusterCN && (r.Scheme == "PG-BF" || r.Scheme == "PG-1H") {
			rows = append(rows, r)
		}
	}
	printScaling(opts, "Fig. 9: Clustering (Common Neighbors), BF vs 1H", rows, true)
	return rows, nil
}

func printScaling(opts Opts, title string, rows []ScalingRow, weak bool) {
	section(opts.Out, "%s", title)
	if weak {
		t := NewTable(opts.Out, "problem", "scheme", "threads", "m/n", "time")
		for _, r := range rows {
			t.Row(string(r.Problem), r.Scheme, r.Threads, r.MN, r.Time.Median)
		}
		t.Flush()
		return
	}
	t := NewTable(opts.Out, "problem", "scheme", "threads", "time")
	for _, r := range rows {
		t.Row(string(r.Problem), r.Scheme, r.Threads, r.Time.Median)
	}
	t.Flush()
}
