package bench

import (
	"math"

	"probgraph/internal/baselines"
	"probgraph/internal/core"
	"probgraph/internal/mining"
)

// Fig6Row is one (graph, scheme) bar triple of Fig. 6: speedup over the
// exact baseline, relative count, and relative additional memory.
type Fig6Row struct {
	Graph    string
	Scheme   string
	Time     Timing
	Speedup  float64
	RelCount float64
	RelMem   float64
}

// Heuristic/baseline parameters for Fig. 6, chosen to give every scheme
// a comparable work reduction (~3-10x less work than exact).
const (
	fig6DoulionP    = 0.3
	fig6Colors      = 2
	fig6HeuristFrac = 0.3
)

// Fig6 reproduces the per-graph Triangle Counting comparison of Fig. 6:
// ProbGraph (BF and MH) against the theoretically grounded samplers
// (Doulion, Colorful) and the guarantee-free heuristics (Reduced
// Execution, Partial Graph Processing, AutoApprox 1/2), all relative to
// the exact tuned node iterator.
func Fig6(opts Opts) ([]Fig6Row, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(nil, opts.scale())
	if err != nil {
		return nil, err
	}
	if opts.Quick {
		graphs = graphs[:6]
	}
	var rows []Fig6Row
	for _, ng := range graphs {
		g := ng.Graph
		o := g.Orient(opts.Workers)
		var exactCount int64
		exactT := Measure(opts.Runs, func() { exactCount = mining.ExactTC(o, opts.Workers) })
		exact := float64(exactCount)
		rows = append(rows, Fig6Row{Graph: ng.Name, Scheme: "Exact", Time: exactT, Speedup: 1, RelCount: 1})

		bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 21})
		if err != nil {
			return nil, err
		}
		mh, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed + 22})
		if err != nil {
			return nil, err
		}

		add := func(scheme string, relMem float64, f func() float64) {
			var count float64
			tm := Measure(opts.Runs, func() { count = f() })
			rc := 0.0
			if exact != 0 {
				rc = count / exact
			}
			if math.IsNaN(rc) || math.IsInf(rc, 0) {
				rc = 0
			}
			rows = append(rows, Fig6Row{
				Graph: ng.Name, Scheme: scheme, Time: tm,
				Speedup: Speedup(exactT, tm), RelCount: rc, RelMem: relMem,
			})
		}

		add("PG-BF", bf.RelativeMemory(), func() float64 { return mining.PGTC(g, bf, opts.Workers) })
		add("PG-MH", mh.RelativeMemory(), func() float64 { return mining.PGTC(g, mh, opts.Workers) })
		add("ReducedExec", 0, func() float64 {
			return baselines.ReducedExecutionTC(o, fig6HeuristFrac, opts.Seed+23, opts.Workers)
		})
		add("PartialProc", 0, func() float64 {
			return baselines.PartialProcessingTC(o, fig6HeuristFrac, opts.Seed+24, opts.Workers)
		})
		add("AutoApprox1", 0, func() float64 {
			return baselines.AutoApprox1TC(g, fig6HeuristFrac, opts.Seed+25, opts.Workers)
		})
		add("AutoApprox2", 0, func() float64 {
			return baselines.AutoApprox2TC(g, fig6HeuristFrac, opts.Seed+26, opts.Workers)
		})
		add("Doulion", 0, func() float64 {
			return baselines.DoulionTC(g, fig6DoulionP, opts.Seed+27, opts.Workers)
		})
		add("Colorful", 0, func() float64 {
			return baselines.ColorfulTC(g, fig6Colors, opts.Seed+28, opts.Workers)
		})
	}
	section(opts.Out, "Fig. 6: Triangle Counting vs baselines and heuristics (per graph)")
	t := NewTable(opts.Out, "graph", "scheme", "time", "speedup", "rel.count", "rel.mem")
	for _, r := range rows {
		t.Row(r.Graph, r.Scheme, r.Time.Median, r.Speedup, r.RelCount, r.RelMem)
	}
	t.Flush()
	return rows, nil
}

// Fig7Row is one (graph, scheme) bar triple of Fig. 7 (Clustering with
// the Jaccard similarity); relative cluster counts above the paper's
// presentation cutoff of 10 are clamped, as in the figure.
type Fig7Row struct {
	Graph    string
	Scheme   string
	Time     Timing
	Speedup  float64
	RelCount float64
	Clamped  bool
	RelMem   float64
}

// Fig7 reproduces the per-graph Clustering (Jaccard vertex similarity)
// comparison of Fig. 7.
func Fig7(opts Opts) ([]Fig7Row, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(nil, opts.scale())
	if err != nil {
		return nil, err
	}
	if opts.Quick {
		graphs = graphs[:6]
	}
	tau := clusterTau[ProblemClusterJacc]
	var rows []Fig7Row
	for _, ng := range graphs {
		g := ng.Graph
		var exactClusters int
		exactT := Measure(opts.Runs, func() {
			exactClusters = mining.JarvisPatrickExact(g, mining.Jaccard, tau, opts.Workers).NumClusters
		})
		rows = append(rows, Fig7Row{Graph: ng.Name, Scheme: "Exact", Time: exactT, Speedup: 1, RelCount: 1})

		for _, sch := range []struct {
			name string
			cfg  core.Config
		}{
			{"PG-BF", core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 31}},
			{"PG-MH", core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed + 32}},
		} {
			pg, err := core.Build(g, sch.cfg)
			if err != nil {
				return nil, err
			}
			var clusters int
			tm := Measure(opts.Runs, func() {
				clusters = mining.JarvisPatrickPG(g, pg, mining.Jaccard, tau, opts.Workers).NumClusters
			})
			rc := 0.0
			if exactClusters != 0 {
				rc = float64(clusters) / float64(exactClusters)
			}
			clamped := false
			if rc > 10 { // the paper's presentation cutoff
				rc, clamped = 10, true
			}
			rows = append(rows, Fig7Row{
				Graph: ng.Name, Scheme: sch.name, Time: tm,
				Speedup: Speedup(exactT, tm), RelCount: rc, Clamped: clamped,
				RelMem: pg.RelativeMemory(),
			})
		}
	}
	section(opts.Out, "Fig. 7: Clustering (Jaccard) vs exact (per graph, cutoff 10)")
	t := NewTable(opts.Out, "graph", "scheme", "time", "speedup", "rel.clusters", "rel.mem")
	for _, r := range rows {
		mark := ""
		if r.Clamped {
			mark = ">=10"
		}
		if mark != "" {
			t.Row(r.Graph, r.Scheme, r.Time.Median, r.Speedup, mark, r.RelMem)
		} else {
			t.Row(r.Graph, r.Scheme, r.Time.Median, r.Speedup, r.RelCount, r.RelMem)
		}
	}
	t.Flush()
	return rows, nil
}
