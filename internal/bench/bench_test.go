package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpts runs every experiment in its smallest configuration.
func quickOpts(buf *bytes.Buffer) Opts {
	return Opts{Quick: true, Runs: 1, Seed: 1, Out: buf}
}

func TestCatalogBuildsValidGraphs(t *testing.T) {
	for _, s := range Catalog {
		g := s.Build(0.15)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: degenerate graph", s.Name)
		}
	}
}

func TestCatalogDensityClasses(t *testing.T) {
	// Dense stand-ins must occupy a large fraction of all vertex pairs
	// (their originals are near-complete); sparse ones must not.
	for _, s := range Catalog {
		g := s.Build(0.3)
		n := int64(g.NumVertices())
		frac := float64(g.NumEdges()) / (float64(n*(n-1)) / 2)
		switch s.Model {
		case ModelDense:
			if frac < 0.3 {
				t.Errorf("%s: dense stand-in fills only %.2f of pairs", s.Name, frac)
			}
		case ModelBA:
			if frac > 0.5 {
				t.Errorf("%s: BA stand-in fills %.2f of pairs", s.Name, frac)
			}
		}
	}
}

func TestFindAndNames(t *testing.T) {
	if _, err := Find("bio-CE-PG"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("no-such-graph"); err == nil {
		t.Fatal("unknown graph must fail")
	}
	if len(Names()) != len(Catalog) {
		t.Fatal("Names length")
	}
}

func TestLoadSetErrors(t *testing.T) {
	if _, err := LoadSet([]string{"nope"}, 0.2); err == nil {
		t.Fatal("unknown dataset must fail")
	}
	set, err := LoadSet([]string{"bio-SC-GT", "econ-beacxc"}, 0.2)
	if err != nil || len(set) != 2 {
		t.Fatalf("LoadSet: %v (%d graphs)", err, len(set))
	}
}

func TestMeasureAndSpeedup(t *testing.T) {
	calls := 0
	tm := Measure(3, func() { calls++ })
	if calls != 4 { // 1 warmup + 3 timed
		t.Fatalf("Measure ran f %d times, want 4", calls)
	}
	if tm.Samples != 3 || tm.Median < 0 {
		t.Fatalf("timing: %+v", tm)
	}
	if Speedup(Timing{Median: 100}, Timing{Median: 50}) != 2 {
		t.Fatal("speedup")
	}
	if Speedup(Timing{Median: 100}, Timing{}) != 0 {
		t.Fatal("zero-time speedup guarded")
	}
}

func TestFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig3(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// 4 configs x 5 graphs x 6 estimators.
	if want := 4 * 5 * 6; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Fatalf("%+v: no pairs evaluated", r)
		}
		if r.Box.Median < 0 {
			t.Fatalf("%+v: negative relative difference", r)
		}
	}
	if !strings.Contains(buf.String(), "Fig. 3") {
		t.Fatal("missing report banner")
	}
	// Sanity: at s=33%, BF AND medians should mostly be small (<50%).
	bad := 0
	for _, r := range rows {
		if r.S == 0.33 && r.B == 4 && r.Estimator == "AND" && r.Box.Median > 0.5 {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("AND estimator median error > 50%% on %d/5 graphs at s=33%%,b=4", bad)
	}
}

func TestFig4Fig5Quick(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	rows, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	seenProblems := map[Problem]bool{}
	for _, r := range rows {
		seenProblems[r.Problem] = true
		if r.Scheme == "Exact" && r.RelCount != 1 {
			t.Fatalf("exact rel count must be 1: %+v", r)
		}
		if r.RelMem > 0.45 {
			t.Fatalf("memory budget blown: %+v", r)
		}
	}
	if len(seenProblems) != 4 {
		t.Fatalf("problems covered: %v", seenProblems)
	}
	rows5, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) == 0 {
		t.Fatal("no fig5 rows")
	}
}

func TestFig6Fig7Quick(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	rows, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	schemes := map[string]bool{}
	for _, r := range rows {
		schemes[r.Scheme] = true
	}
	for _, want := range []string{"Exact", "PG-BF", "PG-MH", "ReducedExec", "PartialProc", "AutoApprox1", "AutoApprox2", "Doulion", "Colorful"} {
		if !schemes[want] {
			t.Fatalf("scheme %s missing from Fig6", want)
		}
	}
	rows7, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows7) == 0 {
		t.Fatal("no fig7 rows")
	}
	for _, r := range rows7 {
		if r.RelCount > 10 {
			t.Fatalf("cutoff not applied: %+v", r)
		}
	}
}

func TestScalingQuick(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	strong, err := Fig8Strong(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(strong) == 0 {
		t.Fatal("no strong-scaling rows")
	}
	weak, err := Fig8Weak(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range weak {
		if r.MN <= 0 {
			t.Fatalf("weak scaling row missing m/n: %+v", r)
		}
	}
	nine, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range nine {
		if r.Problem != ProblemClusterCN {
			t.Fatalf("fig9 must be CN clustering only: %+v", r)
		}
	}
}

func TestTablesQuick(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	t4, err := Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != 5 {
		t.Fatalf("table4 rows = %d", len(t4))
	}
	t5, err := Table5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 7 { // 4 BF b-values + 3 MH/KMV kinds
		t.Fatalf("table5 rows = %d", len(t5))
	}
	t6, err := Table6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6) != 6 {
		t.Fatalf("table6 rows = %d", len(t6))
	}
	t7, err := Table7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7) != 5 {
		t.Fatalf("table7 rows = %d", len(t7))
	}
	for _, r := range t7 {
		if r.RelErr > 1.5 {
			t.Fatalf("TC estimator way off: %+v", r)
		}
	}
	if err := TheoryReport(opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem VII.1") {
		t.Fatal("theory report incomplete")
	}
}

func TestDistExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := DistExperiment(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reduction < 1 {
			t.Fatalf("sketches must reduce communication at P=%d: %+v", r.Nodes, r)
		}
	}
}

func TestDistSimExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := DistSimExperiment(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Reduction < 1 {
			t.Fatalf("sketches must reduce similarity traffic at P=%d: %+v", r.Nodes, r)
		}
		if r.SketchRelErr > 0.10 {
			t.Fatalf("distributed similarity estimate off at P=%d: %+v", r.Nodes, r)
		}
	}
}

func TestAblationQuick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Ablation(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	studies := map[string]bool{}
	for _, r := range rows {
		studies[r.Study] = true
	}
	for _, want := range []string{"bf-delta", "1h-jaccard", "mh-4clique", "bf-hashcount"} {
		if !studies[want] {
			t.Errorf("study %s missing", want)
		}
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Fatal("banner missing")
	}
}

func TestLinkPredAndSimQuick(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	lp, err := LinkPred(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != 3*3*2 {
		t.Fatalf("linkpred rows = %d", len(lp))
	}
	for _, r := range lp {
		if r.Efficiency < 0 || r.Efficiency > 1 {
			t.Fatalf("efficiency out of range: %+v", r)
		}
	}
	sim, err := VertexSim(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 3*3*4 {
		t.Fatalf("sim rows = %d", len(sim))
	}
}

// TestPatternBenchQuick pins the pattern experiment's contract: six
// records in experiment order, the sketch-pruned count bit-identical to
// exact, and — the acceptance criterion the pgci gate tracks — pruned
// enumeration faster than exact-only across the pattern set. The
// speedup is asserted on the summed medians, not per pattern: the
// per-pattern margins (1.1–1.3x at the bench scale, see
// BENCH_baseline.json) are real but individually within shared-runner
// noise on a bad day, while the aggregate stays robustly ahead.
func TestPatternBenchQuick(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	opts.Runs = 3 // median-of-3: the speedup assertion needs a stable NsPerOp
	rows, err := PatternBench(opts)
	if err != nil {
		t.Fatalf("PatternBench: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d records, want 6: %+v", len(rows), rows)
	}
	byKey := make(map[string]BenchRecord, len(rows))
	for _, r := range rows {
		byKey[r.Experiment+"/"+r.Config] = r
	}
	var exactTotal, prunedTotal int64
	for _, pat := range []string{"diamond", "4cycle"} {
		exact := byKey["pattern/"+pat+"/exact"]
		pruned := byKey["pattern/"+pat+"/BF-pruned"]
		est := byKey["pattern/"+pat+"/BF-est"]
		if exact.NsPerOp <= 0 || pruned.NsPerOp <= 0 || est.NsPerOp <= 0 {
			t.Fatalf("%s: missing configs: %+v", pat, rows)
		}
		if pruned.Value != exact.Value {
			t.Errorf("%s: pruned count %v != exact %v", pat, pruned.Value, exact.Value)
		}
		if est.Value == exact.Value {
			t.Errorf("%s: estimate %v suspiciously exact", pat, est.Value)
		}
		exactTotal += exact.NsPerOp
		prunedTotal += pruned.NsPerOp
	}
	if prunedTotal >= exactTotal {
		t.Errorf("sketch-pruned total %dns not faster than exact total %dns", prunedTotal, exactTotal)
	}
	if !strings.Contains(buf.String(), "Pattern mining benchmark") {
		t.Error("missing table banner")
	}
}
