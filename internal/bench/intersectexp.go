package bench

import (
	"encoding/json"
	"fmt"
	"math"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/kernels"
)

// IntersectBench micro-benchmarks the internal/kernels set-algebra
// layer in isolation — the hot path every mining kernel rides on:
//
//   - bf-pair: the BF intersect-popcount estimator, scalar one-call-
//     per-pair (pre-kernel shape) vs the batched row-resident sweep
//     (core.IntCardMany/IntCardSum) the mining kernels now use;
//   - bf-and3: the three-row variant behind IntCard3 (4-clique closing
//     level), scalar vs batched;
//   - exact: the sorted-adjacency intersection over oriented edges,
//     merge-only vs gallop-only vs the adaptive dispatch of
//     kernels.IntersectCount.
//
// Each scalar/batched (and merge/gallop/adaptive) pairing computes the
// same workload; the experiment errors out if the results are not
// bit-identical, so the perf rows double as an identity check.
func IntersectBench(opts Opts) ([]BenchRecord, error) {
	opts = opts.withDefaults()
	scale := 11
	if opts.Quick {
		scale = 10
	}
	g := graph.Kronecker(scale, 16, opts.Seed)
	pg, err := core.Build(g, core.Config{Kind: core.BF, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("intersect bench: %w", err)
	}
	o := g.Orient(opts.Workers)
	n := g.NumVertices()

	var rows []BenchRecord
	record := func(name, config string, f func() float64) float64 {
		var got float64
		timing := Measure(opts.Runs, func() { got = f() })
		rows = append(rows, BenchRecord{
			Experiment: "intersect/" + name,
			Config:     config,
			Value:      got,
			NsPerOp:    int64(timing.Median),
		})
		return got
	}

	// bf-pair: Σ_u Σ_{v∈N_u, v>u} |N_u ∩ N_v|̂ — the TC numerator.
	suffix := func(u int) []uint32 {
		nv := g.Neighbors(uint32(u))
		lo := 0
		for lo < len(nv) && nv[lo] <= uint32(u) {
			lo++
		}
		return nv[lo:]
	}
	// The scalar references keep the batched paths' per-row subtotal
	// grouping, so float association is identical and the scalar/batched
	// values compare bit-for-bit; only the call granularity differs.
	scalarPair := record("bf-pair", "scalar", func() float64 {
		var s float64
		for u := 0; u < n; u++ {
			var t float64
			for _, v := range suffix(u) {
				t += pg.IntCard(uint32(u), v)
			}
			s += t
		}
		return s
	})
	var bufs struct {
		cnt []int32
		tmp []uint64
	}
	bufs.tmp = make([]uint64, pg.RowWords())
	grow := func(k int) []int32 {
		if k > cap(bufs.cnt) {
			bufs.cnt = make([]int32, k)
		}
		return bufs.cnt[:k]
	}
	batchedPair := record("bf-pair", "batched", func() float64 {
		var s float64
		for u := 0; u < n; u++ {
			cands := suffix(u)
			if len(cands) == 0 {
				continue
			}
			s += pg.IntCardSum(uint32(u), cands, grow(len(cands)))
		}
		return s
	})
	if math.Float64bits(scalarPair) != math.Float64bits(batchedPair) {
		return nil, fmt.Errorf("intersect bench: bf-pair batched diverges: %v vs %v", batchedPair, scalarPair)
	}

	// bf-and3: per vertex, close the wedge (u, nv[0]) against the rest of
	// N_u — the 4-clique closing shape.
	scalar3 := record("bf-and3", "scalar", func() float64 {
		var s float64
		for u := 0; u < n; u++ {
			nv := g.Neighbors(uint32(u))
			if len(nv) < 2 {
				continue
			}
			var t float64
			for _, w := range nv[1:] {
				t += pg.IntCard3(w, uint32(u), nv[0])
			}
			s += t
		}
		return s
	})
	batched3 := record("bf-and3", "batched", func() float64 {
		var s float64
		for u := 0; u < n; u++ {
			nv := g.Neighbors(uint32(u))
			if len(nv) < 2 {
				continue
			}
			ws := nv[1:]
			s += pg.IntCard3Sum(uint32(u), nv[0], ws, bufs.tmp, grow(len(ws)))
		}
		return s
	})
	if math.Float64bits(scalar3) != math.Float64bits(batched3) {
		return nil, fmt.Errorf("intersect bench: bf-and3 batched diverges: %v vs %v", batched3, scalar3)
	}

	// exact: Σ over oriented edges of |N+_v ∩ N+_u| — the ExactTC inner
	// loop — under each fixed strategy and the adaptive dispatch.
	exactSweep := func(count func(a, b []uint32) int) float64 {
		var s int64
		for v := 0; v < n; v++ {
			nv := o.NPlus(uint32(v))
			for _, u := range nv {
				s += int64(count(nv, o.NPlus(u)))
			}
		}
		return float64(s)
	}
	ordered := func(count func(a, b []uint32) int) func(a, b []uint32) int {
		return func(a, b []uint32) int {
			if len(a) > len(b) {
				a, b = b, a
			}
			if len(a) == 0 {
				return 0
			}
			return count(a, b)
		}
	}
	merge := record("exact", "merge", func() float64 { return exactSweep(kernels.MergeCount) })
	gallop := record("exact", "gallop", func() float64 { return exactSweep(ordered(kernels.GallopCount)) })
	adaptive := record("exact", "adaptive", func() float64 { return exactSweep(kernels.IntersectCount) })
	if merge != gallop || merge != adaptive {
		return nil, fmt.Errorf("intersect bench: exact strategies disagree: merge=%v gallop=%v adaptive=%v", merge, gallop, adaptive)
	}

	if opts.JSON != nil {
		enc := json.NewEncoder(opts.JSON)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return nil, fmt.Errorf("intersect bench: writing JSON record: %w", err)
			}
		}
	}

	section(opts.Out, "Set-algebra kernel microbench (graph: kron scale %d)", scale)
	t := NewTable(opts.Out, "experiment", "config", "value", "ns/op")
	for _, r := range rows {
		t.Row(r.Experiment, r.Config, r.Value, r.NsPerOp)
	}
	t.Flush()
	return rows, nil
}
