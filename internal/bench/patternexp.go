package bench

import (
	"context"
	"encoding/json"
	"fmt"

	"probgraph/internal/graph"
	"probgraph/internal/pattern"
	"probgraph/internal/session"
)

// PatternBench benchmarks the compiled-plan pattern miner on the
// session-bench Kronecker graph, three configurations per pattern:
//
//   - exact: plan enumeration with exact adjacency verification only
//   - BF-pruned: the same enumeration with candidate extensions first
//     probed against the Bloom rows (sound rejects only) — the answer is
//     bit-identical to exact, so NsPerOp isolates the pruning speedup
//     the pgci gate tracks
//   - BF-est: sketch-estimated counting with the generalized Thm VII.1
//     machinery (Value is the estimate, not the exact count)
//
// One BenchRecord per row lands in the JSON sink; the bench test pins
// BF-pruned strictly faster than exact on the same pattern.
func PatternBench(opts Opts) ([]BenchRecord, error) {
	opts = opts.withDefaults()
	// Scale 11 even in quick mode: at scale 10 the working set sits in
	// cache, exact adjacency checks are cheap, and the pruned-vs-exact
	// margin drops into run-to-run noise — the speedup assertion and the
	// recorded baseline both need the memory-bound regime.
	const scale = 11
	g := graph.Kronecker(scale, 16, opts.Seed)
	sess, err := session.New(g,
		session.WithSeed(opts.Seed),
		session.WithWorkers(opts.Workers),
		session.WithBudget(0.25),
	)
	if err != nil {
		return nil, err
	}

	var cases []struct {
		name, config string
		kernel       session.Kernel
	}
	for _, p := range []*pattern.Pattern{pattern.Diamond(), pattern.FourCycle()} {
		name := p.String()
		cases = append(cases,
			struct {
				name, config string
				kernel       session.Kernel
			}{name, "exact", session.PatternCount{P: p, Mode: session.Exact}},
			struct {
				name, config string
				kernel       session.Kernel
			}{name, "BF-pruned", session.PatternCount{P: p, Mode: session.Exact, Prune: true}},
			struct {
				name, config string
				kernel       session.Kernel
			}{name, "BF-est", session.PatternCount{P: p, Mode: session.Sketched}},
		)
	}

	ctx := context.Background()
	var rows []BenchRecord
	for _, c := range cases {
		var res session.Result
		var runErr error
		timing := Measure(opts.Runs, func() {
			res, runErr = sess.Run(ctx, c.kernel)
		})
		if runErr != nil {
			return nil, fmt.Errorf("pattern bench %s/%s: %w", c.name, c.config, runErr)
		}
		rows = append(rows, BenchRecord{
			Experiment: "pattern/" + c.name,
			Config:     c.config,
			Value:      res.Value,
			NsPerOp:    int64(timing.Median),
		})
	}

	if opts.JSON != nil {
		enc := json.NewEncoder(opts.JSON)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return nil, fmt.Errorf("pattern bench: writing JSON record: %w", err)
			}
		}
	}

	section(opts.Out, "Pattern mining benchmark (graph: kron scale %d)", scale)
	t := NewTable(opts.Out, "experiment", "config", "value", "ns/op")
	for _, r := range rows {
		t.Row(r.Experiment, r.Config, r.Value, r.NsPerOp)
	}
	t.Flush()
	return rows, nil
}
