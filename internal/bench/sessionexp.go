package bench

import (
	"context"
	"encoding/json"
	"fmt"

	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/session"
)

// BenchRecord is one machine-readable measurement of the session
// benchmark: the BENCH_session.json line format (JSON Lines) the CI perf
// trajectory consumes. BytesShipped is nonzero only for the distributed
// kernels, where it is the wire traffic of one run.
type BenchRecord struct {
	Experiment   string  `json:"experiment"`
	Config       string  `json:"config"`
	Value        float64 `json:"value"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesShipped int64   `json:"bytes_shipped,omitempty"`
}

// SessionBench benchmarks the Session API end to end on a small fixed
// Kronecker graph: every kernel runs through sess.Run, timed with the
// harness's median-of-runs protocol (sketch builds land in the discarded
// warmup, so NsPerOp is the steady-state kernel cost a resident Session
// delivers). When opts.JSON is set, one BenchRecord per row is appended
// as a JSON line.
func SessionBench(opts Opts) ([]BenchRecord, error) {
	opts = opts.withDefaults()
	scale := 11
	if opts.Quick {
		scale = 10
	}
	g := graph.Kronecker(scale, 16, opts.Seed)
	base, err := session.New(g,
		session.WithSeed(opts.Seed),
		session.WithWorkers(opts.Workers),
		session.WithBudget(0.25),
	)
	if err != nil {
		return nil, err
	}
	view := func(k core.Kind) *session.Session {
		s, err := base.With(session.WithKind(k))
		if err != nil {
			panic(err) // unreachable: WithKind always validates
		}
		return s
	}

	cases := []struct {
		name, config string
		sess         *session.Session
		kernel       session.Kernel
	}{
		{"tc", "exact", base, session.TC{Mode: session.Exact}},
		{"tc", "BF", base, session.TC{Mode: session.Sketched}},
		{"tc", "kH", view(core.KHash), session.TC{Mode: session.Sketched}},
		{"tc", "1H", view(core.OneHash), session.TC{Mode: session.Sketched}},
		{"4clique", "exact", base, session.KClique{K: 4, Mode: session.Exact}},
		{"4clique", "BF", base, session.KClique{K: 4, Mode: session.Sketched}},
		{"cluster", "exact", base, session.JarvisPatrick{Measure: mining.CommonNeighbors, Tau: 3, Mode: session.Exact}},
		{"cluster", "BF", base, session.JarvisPatrick{Measure: mining.CommonNeighbors, Tau: 3, Mode: session.Sketched}},
		{"dist-tc", "ship-neighborhoods", base, session.DistTC{Nodes: 4, Ship: dist.ShipNeighborhoods}},
		{"dist-tc", "ship-sketches", base, session.DistTC{Nodes: 4, Ship: dist.ShipSketches}},
	}

	ctx := context.Background()
	var rows []BenchRecord
	for _, c := range cases {
		var res session.Result
		var runErr error
		timing := Measure(opts.Runs, func() {
			res, runErr = c.sess.Run(ctx, c.kernel)
		})
		if runErr != nil {
			return nil, fmt.Errorf("session bench %s/%s: %w", c.name, c.config, runErr)
		}
		rec := BenchRecord{
			Experiment: "session/" + c.name,
			Config:     c.config,
			Value:      res.Value,
			NsPerOp:    int64(timing.Median),
		}
		if res.Net != nil {
			rec.BytesShipped = res.Net.Bytes
		}
		rows = append(rows, rec)
	}

	if opts.JSON != nil {
		enc := json.NewEncoder(opts.JSON)
		for _, r := range rows {
			if err := enc.Encode(r); err != nil {
				return nil, fmt.Errorf("session bench: writing JSON record: %w", err)
			}
		}
	}

	section(opts.Out, "Session API benchmark (graph: kron scale %d)", scale)
	t := NewTable(opts.Out, "experiment", "config", "value", "ns/op", "bytes shipped")
	for _, r := range rows {
		t.Row(r.Experiment, r.Config, r.Value, r.NsPerOp, r.BytesShipped)
	}
	t.Flush()
	return rows, nil
}
