package bench

import (
	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/stats"
)

// DistRow is one node-count point of the §VIII-F distributed experiment.
type DistRow struct {
	Nodes        int
	ExactBytes   int64
	SketchBytes  int64
	Reduction    float64 // exact bytes / sketch bytes
	SketchRelErr float64 // accuracy of the distributed sketch count
}

// DistExperiment reproduces §VIII-F: a block-partitioned triangle count
// where remote neighborhoods are fetched over the (simulated) network,
// shipping either the full CSR neighborhoods or the fixed-size sketches.
// The paper reports communication-time reductions of up to ~4×; the
// measured quantity here is the communication volume that drives them.
func DistExperiment(opts Opts) ([]DistRow, error) {
	opts = opts.withDefaults()
	var g *graph.Graph
	if opts.Quick {
		g = graph.Kronecker(10, 12, 701)
	} else {
		g = graph.Kronecker(12, 16, 701)
	}
	o := g.Orient(opts.Workers)
	exactTC := float64(mining.ExactTC(o, opts.Workers))
	// Bloom rows with one hash and the Eq. (4) limiting estimator: the
	// most seed-robust configuration for sums over the small oriented
	// sets — samples-based sketches share one hash family across all
	// vertices, so their per-pair errors correlate and the TC sum does
	// not average them out.
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 1, Est: core.EstBFL, Seed: opts.Seed + 51})
	if err != nil {
		return nil, err
	}
	var rows []DistRow
	for _, p := range []int{2, 4, 8, 16} {
		ex, err := dist.TC(g, o, nil, p, dist.ShipNeighborhoods)
		if err != nil {
			return nil, err
		}
		sk, err := dist.TC(g, o, pg, p, dist.ShipSketches)
		if err != nil {
			return nil, err
		}
		red := 0.0
		if sk.Net.Bytes > 0 {
			red = float64(ex.Net.Bytes) / float64(sk.Net.Bytes)
		}
		rows = append(rows, DistRow{
			Nodes: p, ExactBytes: ex.Net.Bytes, SketchBytes: sk.Net.Bytes,
			Reduction:    red,
			SketchRelErr: stats.RelativeError(sk.Count, exactTC),
		})
	}
	section(opts.Out, "§VIII-F: distributed TC communication volume (n=%d, m=%d)", g.NumVertices(), g.NumEdges())
	t := NewTable(opts.Out, "nodes", "CSR bytes", "sketch bytes", "reduction", "sketch rel.err")
	for _, r := range rows {
		t.Row(r.Nodes, r.ExactBytes, r.SketchBytes, r.Reduction, r.SketchRelErr)
	}
	t.Flush()
	return rows, nil
}
