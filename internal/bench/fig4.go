package bench

import (
	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
)

// Problem identifies a Fig. 4/5 graph problem.
type Problem string

// The four problems of Fig. 4 plus the Fig. 5 problem.
const (
	ProblemTC           Problem = "TriangleCounting"
	ProblemClusterJacc  Problem = "Clustering(Jaccard)"
	ProblemClusterOver  Problem = "Clustering(Overlap)"
	ProblemClusterCN    Problem = "Clustering(CommonNeigh)"
	ProblemFourClique   Problem = "4-CliqueCounting"
	ProblemVertexSim    Problem = "VertexSimilarity"
	ProblemLinkPredict  Problem = "LinkPrediction"
	ProblemLocalCluster Problem = "LocalClusteringCoeff"
)

// Thresholds used by the clustering problems (τ of Listing 4); chosen so
// that the exact clusterings are nondegenerate on the stand-ins.
var clusterTau = map[Problem]float64{
	ProblemClusterJacc: 0.15,
	ProblemClusterOver: 0.40,
	ProblemClusterCN:   3,
}

// TradeoffRow is one data point of Figs. 4/5: a scheme on a graph with
// its three evaluation axes (speedup, relative count, relative memory).
type TradeoffRow struct {
	Problem  Problem
	Graph    string
	Scheme   string // Exact, PG-BF, PG-MH
	Time     Timing
	Speedup  float64 // vs exact
	RelCount float64 // scheme count / exact count (1.0 for exact)
	RelMem   float64 // additional sketch memory / CSR memory
}

// fig4Graphs is the real-world subset used for the upper Fig. 4 panel;
// the lower panel uses KroneckerSeries.
var fig4Graphs = []string{
	"bio-CE-PG", "bio-SC-GT", "bio-HS-LC", "econ-beacxc", "econ-mbeacxc",
	"bn-mouse-brain-1", "dimacs-c500-9", "ch-Si10H16",
}

// Fig4 reproduces the Fig. 4 tradeoff analysis: TC and three clustering
// variants, exact vs PG(BF, b=2, AND) vs PG(MH, 1-Hash), on real-world
// stand-ins and Kronecker graphs, all axes reported per data point.
func Fig4(opts Opts) ([]TradeoffRow, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(fig4Graphs, opts.scale())
	if err != nil {
		return nil, err
	}
	graphs = append(graphs, KroneckerSeries(opts.Quick)...)
	problems := []Problem{ProblemTC, ProblemClusterJacc, ProblemClusterOver, ProblemClusterCN}
	var rows []TradeoffRow
	for _, p := range problems {
		for _, ng := range graphs {
			r, err := tradeoffOn(p, ng, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r...)
		}
	}
	printTradeoff(opts, "Fig. 4: TC and Clustering speedup/accuracy/memory", rows)
	return rows, nil
}

// tradeoffOn evaluates one problem on one graph for the three schemes.
func tradeoffOn(p Problem, ng NamedGraph, opts Opts) ([]TradeoffRow, error) {
	g := ng.Graph
	bfCfg := core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 11}
	mhCfg := core.Config{Kind: core.OneHash, Budget: 0.25, Seed: opts.Seed + 12}
	bf, err := core.Build(g, bfCfg)
	if err != nil {
		return nil, err
	}
	mh, err := core.Build(g, mhCfg)
	if err != nil {
		return nil, err
	}

	var exactCount, bfCount, mhCount float64
	var exactT, bfT, mhT Timing
	switch p {
	case ProblemTC:
		o := g.Orient(opts.Workers)
		exactT = Measure(opts.Runs, func() { exactCount = float64(mining.ExactTC(o, opts.Workers)) })
		// PG timings include the orientation-free full-neighborhood pass.
		bfT = Measure(opts.Runs, func() { bfCount = mining.PGTC(g, bf, opts.Workers) })
		mhT = Measure(opts.Runs, func() { mhCount = mining.PGTC(g, mh, opts.Workers) })
	case ProblemClusterJacc, ProblemClusterOver, ProblemClusterCN:
		m := clusterMeasure(p)
		tau := clusterTau[p]
		exactT = Measure(opts.Runs, func() {
			exactCount = float64(mining.JarvisPatrickExact(g, m, tau, opts.Workers).NumClusters)
		})
		bfT = Measure(opts.Runs, func() {
			bfCount = float64(mining.JarvisPatrickPG(g, bf, m, tau, opts.Workers).NumClusters)
		})
		mhT = Measure(opts.Runs, func() {
			mhCount = float64(mining.JarvisPatrickPG(g, mh, m, tau, opts.Workers).NumClusters)
		})
	case ProblemFourClique:
		o := g.Orient(opts.Workers)
		obf, err := core.BuildOriented(o, g.SizeBits(), bfCfg)
		if err != nil {
			return nil, err
		}
		// The sampled MH path needs element IDs in the sketches.
		mhCfg.StoreElems = true
		omh, err := core.BuildOriented(o, g.SizeBits(), mhCfg)
		if err != nil {
			return nil, err
		}
		exactT = Measure(opts.Runs, func() { exactCount = float64(mining.Exact4Clique(o, opts.Workers)) })
		bfT = Measure(opts.Runs, func() { bfCount = mining.PG4Clique(o, obf, opts.Workers) })
		mhT = Measure(opts.Runs, func() { mhCount = mining.PG4Clique(o, omh, opts.Workers) })
		bf, mh = obf, omh // report oriented sketch memory
	default:
		exactT = Measure(opts.Runs, func() {
			exactCount = mining.LocalClusteringCoefficient(g, opts.Workers)
		})
		bfT = Measure(opts.Runs, func() {
			bfCount = mining.PGLocalClusteringCoefficient(g, bf, opts.Workers)
		})
		mhT = Measure(opts.Runs, func() {
			mhCount = mining.PGLocalClusteringCoefficient(g, mh, opts.Workers)
		})
	}
	rel := func(c float64) float64 {
		if exactCount == 0 {
			return 0
		}
		return c / exactCount
	}
	return []TradeoffRow{
		{Problem: p, Graph: ng.Name, Scheme: "Exact", Time: exactT, Speedup: 1, RelCount: 1, RelMem: 0},
		{Problem: p, Graph: ng.Name, Scheme: "PG-BF", Time: bfT, Speedup: Speedup(exactT, bfT), RelCount: rel(bfCount), RelMem: bf.RelativeMemory()},
		{Problem: p, Graph: ng.Name, Scheme: "PG-MH", Time: mhT, Speedup: Speedup(exactT, mhT), RelCount: rel(mhCount), RelMem: mh.RelativeMemory()},
	}, nil
}

func clusterMeasure(p Problem) mining.Measure {
	switch p {
	case ProblemClusterJacc:
		return mining.Jaccard
	case ProblemClusterOver:
		return mining.Overlap
	default:
		return mining.CommonNeighbors
	}
}

// fig5Graphs keeps 4-clique counting tractable.
var fig5Graphs = []string{"bio-SC-GT", "bio-CE-PG", "econ-beacxc", "bn-mouse-brain-1"}

// Fig5 reproduces the 4-clique counting tradeoff (Fig. 5) on real-world
// and Kronecker stand-ins.
func Fig5(opts Opts) ([]TradeoffRow, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(fig5Graphs, opts.scale())
	if err != nil {
		return nil, err
	}
	kron := KroneckerSeries(true) // small scales: C4 grows fast
	graphs = append(graphs, kron...)
	var rows []TradeoffRow
	for _, ng := range graphs {
		r, err := tradeoffOn(ProblemFourClique, ng, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	printTradeoff(opts, "Fig. 5: 4-Clique Counting speedup/accuracy/memory", rows)
	return rows, nil
}

func printTradeoff(opts Opts, title string, rows []TradeoffRow) {
	section(opts.Out, "%s", title)
	t := NewTable(opts.Out, "problem", "graph", "scheme", "time", "speedup", "rel.count", "rel.mem")
	for _, r := range rows {
		t.Row(string(r.Problem), r.Graph, r.Scheme, r.Time.Median, r.Speedup, r.RelCount, r.RelMem)
	}
	t.Flush()
}

// Orient is re-exported graph orientation for callers that already hold a
// NamedGraph (keeps cmd/pgbench free of graph-package imports).
func Orient(g *graph.Graph, workers int) *graph.Oriented { return g.Orient(workers) }
