package bench

import (
	"probgraph/internal/core"
	"probgraph/internal/dist"
	"probgraph/internal/graph"
	"probgraph/internal/mining"
	"probgraph/internal/stats"
)

// DistSimRow is one node-count point of the distributed vertex-similarity
// experiment — the §VIII-F protocol comparison applied to the second
// distributed kernel.
type DistSimRow struct {
	Nodes        int
	ExactBytes   int64
	SketchBytes  int64
	Reduction    float64 // exact bytes / sketch bytes
	MeanExact    float64 // exact mean edge Jaccard
	MeanSketch   float64 // sketch-estimated mean edge Jaccard
	SketchRelErr float64
}

// DistSimExperiment extends §VIII-F beyond triangle counting: mean edge
// Jaccard similarity — the kernel behind the §III-A community workloads
// (Listing 3 similarity feeding Listing 4 clustering) — over the same
// simulated cluster, shipping either full CSR neighborhoods or
// full-neighborhood sketches. The dataset is the modular community
// graph that workload runs on; its dense communities give every edge a
// large intersection, which is exactly where the Bloom estimator is
// sharp at a 25% budget.
func DistSimExperiment(opts Opts) ([]DistSimRow, error) {
	opts = opts.withDefaults()
	var g *graph.Graph
	if opts.Quick {
		g = graph.CommunityGraph(1024, 20000, 16, 48, 701)
	} else {
		g = graph.CommunityGraph(4096, 80000, 16, 64, 701)
	}
	pg, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 52})
	if err != nil {
		return nil, err
	}
	var rows []DistSimRow
	for _, p := range []int{2, 4, 8, 16} {
		ex, err := dist.Sim(g, nil, p, dist.ShipNeighborhoods, mining.Jaccard)
		if err != nil {
			return nil, err
		}
		sk, err := dist.Sim(g, pg, p, dist.ShipSketches, mining.Jaccard)
		if err != nil {
			return nil, err
		}
		red := 0.0
		if sk.Net.Bytes > 0 {
			red = float64(ex.Net.Bytes) / float64(sk.Net.Bytes)
		}
		rows = append(rows, DistSimRow{
			Nodes: p, ExactBytes: ex.Net.Bytes, SketchBytes: sk.Net.Bytes,
			Reduction:    red,
			MeanExact:    ex.Count,
			MeanSketch:   sk.Count,
			SketchRelErr: stats.RelativeError(sk.Count, ex.Count),
		})
	}
	section(opts.Out, "§VIII-F bis: distributed mean edge Jaccard (n=%d, m=%d)", g.NumVertices(), g.NumEdges())
	t := NewTable(opts.Out, "nodes", "CSR bytes", "sketch bytes", "reduction", "exact mean", "sketch mean", "rel.err")
	for _, r := range rows {
		t.Row(r.Nodes, r.ExactBytes, r.SketchBytes, r.Reduction, r.MeanExact, r.MeanSketch, r.SketchRelErr)
	}
	t.Flush()
	return rows, nil
}
