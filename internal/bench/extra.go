package bench

import (
	"probgraph/internal/core"
	"probgraph/internal/mining"
	"probgraph/internal/stats"
)

// LinkPredRow is one (graph, measure, scheme) cell of the Listing 5
// link-prediction evaluation.
type LinkPredRow struct {
	Graph      string
	Measure    string
	Scheme     string
	Efficiency float64
	Time       Timing
}

// linkPredGraphs keeps the quadratic candidate enumeration tractable.
var linkPredGraphs = []string{"bio-SC-GT", "bio-CE-PG", "econ-beacxc"}

// LinkPred runs the Listing 5 harness on a subset of stand-ins with the
// local similarity measures, comparing the exact scorer with the PG(BF)
// scorer — the vertex-similarity application of §III.
func LinkPred(opts Opts) ([]LinkPredRow, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(linkPredGraphs, opts.scale()*0.6)
	if err != nil {
		return nil, err
	}
	measures := []mining.Measure{mining.CommonNeighbors, mining.Jaccard, mining.AdamicAdar}
	pgCfg := core.Config{Kind: core.BF, Budget: 0.25, NumHashes: 2, Seed: opts.Seed + 61}
	var rows []LinkPredRow
	for _, ng := range graphs {
		for _, m := range measures {
			var exact *mining.LinkPredResult
			exactT := Measure(opts.Runs, func() {
				exact, err = mining.EvaluateLinkPrediction(ng.Graph, m, 0.1, opts.Seed, nil, opts.Workers)
			})
			if err != nil {
				return nil, err
			}
			var approx *mining.LinkPredResult
			approxT := Measure(opts.Runs, func() {
				approx, err = mining.EvaluateLinkPrediction(ng.Graph, m, 0.1, opts.Seed, &pgCfg, opts.Workers)
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows,
				LinkPredRow{ng.Name, m.String(), "Exact", exact.Efficiency, exactT},
				LinkPredRow{ng.Name, m.String(), "PG-BF", approx.Efficiency, approxT},
			)
		}
	}
	section(opts.Out, "Listing 5: link-prediction effectiveness, exact vs PG")
	t := NewTable(opts.Out, "graph", "measure", "scheme", "efficiency", "time")
	for _, r := range rows {
		t.Row(r.Graph, r.Measure, r.Scheme, r.Efficiency, r.Time.Median)
	}
	t.Flush()
	return rows, nil
}

// SimRow is one (graph, measure, representation) cell of the
// vertex-similarity sweep.
type SimRow struct {
	Graph   string
	Measure string
	Repr    string
	MeanErr float64 // mean |sim_PG - sim| over adjacent pairs with sim > 0
	Time    Timing
}

// simGraphs for the vertex-similarity sweep.
var simGraphs = []string{"bio-CE-PG", "econ-beacxc", "ch-Si10H16"}

// VertexSim sweeps the Listing 3 similarity measures over all adjacent
// pairs per representation — the fourth problem of the evaluation
// ("vertex similarity", §I), reported as mean absolute score error plus
// the all-pairs runtime.
func VertexSim(opts Opts) ([]SimRow, error) {
	opts = opts.withDefaults()
	graphs, err := LoadSet(simGraphs, opts.scale())
	if err != nil {
		return nil, err
	}
	measures := []mining.Measure{mining.Jaccard, mining.Overlap, mining.CommonNeighbors, mining.AdamicAdar}
	kinds := []core.Kind{core.BF, core.KHash, core.OneHash}
	var rows []SimRow
	for _, ng := range graphs {
		g := ng.Graph
		edges := g.EdgeList()
		if len(edges) > 20000 {
			edges = edges[:20000]
		}
		for _, kind := range kinds {
			pg, err := core.Build(g, core.Config{Kind: kind, Budget: 0.25, StoreElems: kind == core.OneHash, Seed: opts.Seed + 62})
			if err != nil {
				return nil, err
			}
			for _, m := range measures {
				var errs []float64
				tm := Measure(opts.Runs, func() {
					errs = errs[:0]
					for _, e := range edges {
						exact := mining.ExactSimilarity(g, e.U, e.V, m)
						if exact <= 0 {
							continue
						}
						approx := mining.PGSimilarity(g, pg, e.U, e.V, m)
						errs = append(errs, stats.RelativeError(approx, exact))
					}
				})
				rows = append(rows, SimRow{ng.Name, m.String(), kind.String(), stats.Mean(errs), tm})
			}
		}
	}
	section(opts.Out, "Vertex similarity: per-measure estimator accuracy")
	t := NewTable(opts.Out, "graph", "measure", "repr", "mean rel.err", "time")
	for _, r := range rows {
		t.Row(r.Graph, r.Measure, r.Repr, r.MeanErr, r.Time.Median)
	}
	t.Flush()
	return rows, nil
}
