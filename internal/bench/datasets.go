// Package bench is the evaluation harness: it regenerates every table
// and figure of the paper's §VIII on synthetic stand-ins for the Table
// VIII datasets, following the Hoefler–Belli measurement methodology the
// paper adopts (warmup discard, medians, 95% nonparametric CIs).
package bench

import (
	"fmt"
	"sort"

	"probgraph/internal/graph"
)

// Model selects the generator family for a dataset stand-in.
type Model int

const (
	// ModelBA: modular community graphs with heavy-tailed degrees
	// (the bio-*/int-*/soc-* networks — unions of dense functional
	// modules, i.e. high clustering).
	ModelBA Model = iota
	// ModelER: uniform random — near-regular dense matrices
	// (econ-*, bn-*, sc-*, ch-* graphs).
	ModelER
	// ModelKron: stochastic Kronecker — the paper's own synthetic model,
	// maximal degree skew.
	ModelKron
	// ModelDense: planted partition with very high internal density —
	// the DIMACS clique-benchmark instances.
	ModelDense
)

// Spec describes one dataset stand-in: the paper graph it substitutes,
// the generator that reproduces its (n, m) and density class, and the
// original Table VIII size for the record. Scaled specs (ScaleNote) are
// shrunk from the original to keep the offline evaluation tractable;
// the density m/n is preserved.
type Spec struct {
	Name      string
	Class     string // bio, econ, chem, dimacs, bn, int, sc
	N, M      int    // generated size
	PaperN    int
	PaperM    int
	Model     Model
	Seed      uint64
	ScaleNote string
}

// Catalog lists the stand-ins in the order Fig. 6 presents them.
// Graphs whose original size would dominate runtime are scaled down
// (ScaleNote), preserving m/n.
var Catalog = []Spec{
	{Name: "ch-SiO", Class: "chem", N: 4175, M: 84400, PaperN: 33400, PaperM: 675500, Model: ModelBA, Seed: 101, ScaleNote: "1/8 scale"},
	{Name: "int-citAsPh", Class: "int", N: 5966, M: 65600, PaperN: 17900, PaperM: 197000, Model: ModelBA, Seed: 102, ScaleNote: "1/3 scale"},
	{Name: "ch-Si10H16", Class: "chem", N: 4250, M: 111600, PaperN: 17000, PaperM: 446500, Model: ModelBA, Seed: 103, ScaleNote: "1/4 scale"},
	{Name: "bio-WormNet-v3", Class: "bio", N: 4075, M: 190700, PaperN: 16300, PaperM: 762800, Model: ModelBA, Seed: 104, ScaleNote: "1/4 scale"},
	{Name: "bio-CE-GN", Class: "bio", N: 2200, M: 53700, PaperN: 2200, PaperM: 53700, Model: ModelBA, Seed: 105},
	{Name: "sc-ThermAB", Class: "sc", N: 2650, M: 130600, PaperN: 10600, PaperM: 522400, Model: ModelBA, Seed: 106, ScaleNote: "1/4 scale"},
	{Name: "bio-HS-CX", Class: "bio", N: 4400, M: 108800, PaperN: 4400, PaperM: 108800, Model: ModelBA, Seed: 107},
	{Name: "bio-HS-LC", Class: "bio", N: 4200, M: 39000, PaperN: 4200, PaperM: 39000, Model: ModelBA, Seed: 108},
	{Name: "bio-DM-CX", Class: "bio", N: 4000, M: 77000, PaperN: 4000, PaperM: 77000, Model: ModelBA, Seed: 109},
	{Name: "bio-DR-CX", Class: "bio", N: 3300, M: 85000, PaperN: 3300, PaperM: 85000, Model: ModelBA, Seed: 110},
	{Name: "econ-psmigr1", Class: "econ", N: 1550, M: 135750, PaperN: 3100, PaperM: 543000, Model: ModelER, Seed: 111, ScaleNote: "1/2 scale"},
	{Name: "econ-psmigr2", Class: "econ", N: 1550, M: 135000, PaperN: 3100, PaperM: 540000, Model: ModelER, Seed: 112, ScaleNote: "1/2 scale"},
	{Name: "econ-orani678", Class: "econ", N: 2500, M: 90100, PaperN: 2500, PaperM: 90100, Model: ModelER, Seed: 113},
	{Name: "bio-SC-HT", Class: "bio", N: 2000, M: 63000, PaperN: 2000, PaperM: 63000, Model: ModelBA, Seed: 114},
	{Name: "bio-CE-PG", Class: "bio", N: 1900, M: 48000, PaperN: 1900, PaperM: 48000, Model: ModelBA, Seed: 115},
	{Name: "bio-SC-GT", Class: "bio", N: 1700, M: 34000, PaperN: 1700, PaperM: 34000, Model: ModelBA, Seed: 116},
	{Name: "dimacs-hat1500-3", Class: "dimacs", N: 750, M: 211750, PaperN: 1500, PaperM: 847000, Model: ModelDense, Seed: 117, ScaleNote: "1/2 scale"},
	{Name: "econ-beaflw", Class: "econ", N: 508, M: 53400, PaperN: 508, PaperM: 53400, Model: ModelER, Seed: 118},
	{Name: "econ-beacxc", Class: "econ", N: 498, M: 50400, PaperN: 498, PaperM: 50400, Model: ModelER, Seed: 119},
	{Name: "econ-mbeacxc", Class: "econ", N: 493, M: 49900, PaperN: 493, PaperM: 49900, Model: ModelER, Seed: 120},
	{Name: "bn-mouse-brain-1", Class: "bn", N: 213, M: 21800, PaperN: 213, PaperM: 21800, Model: ModelDense, Seed: 121},
	{Name: "dimacs-c500-9", Class: "dimacs", N: 501, M: 112000, PaperN: 501, PaperM: 112000, Model: ModelDense, Seed: 122},
}

// Fig3Graphs are the five stand-ins Fig. 3 uses.
var Fig3Graphs = []string{
	"ch-Si10H16", "bio-CE-PG", "dimacs-hat1500-3", "bn-mouse-brain-1", "econ-beacxc",
}

// Find returns the spec with the given name.
func Find(name string) (Spec, error) {
	for _, s := range Catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("bench: unknown dataset %q", name)
}

// Names lists all catalog names in presentation order.
func Names() []string {
	out := make([]string, len(Catalog))
	for i, s := range Catalog {
		out[i] = s.Name
	}
	return out
}

// Build generates the stand-in graph at the given scale factor
// (scale 1.0 = the catalog size; quick runs use scale < 1). Scaling
// shrinks n and preserves the density m/n, capped at 95% of all pairs —
// the dense DIMACS/bn stand-ins are near-complete graphs at any scale,
// exactly like their originals.
func (s Spec) Build(scale float64) *graph.Graph {
	n := s.N
	if scale > 0 && scale != 1 {
		n = int(float64(s.N) * scale)
		if n < 64 {
			n = 64
		}
	}
	density := float64(s.M) / float64(s.N)
	m := int(density * float64(n))
	if maxM := int(int64(n) * int64(n-1) / 2 * 19 / 20); m > maxM {
		m = maxM
	}
	if m < n {
		m = n
	}
	switch s.Model {
	case ModelBA:
		// Modular community graph: the bio/int originals (gene
		// functional-association and interaction networks) are unions of
		// dense modules — very high clustering with skewed degrees.
		// Community sizes span [d̄, 4d̄] so internal densities land in the
		// 0.3–0.7 range of such networks.
		davg := 2 * m / n
		minC := davg
		if minC < 10 {
			minC = 10
		}
		return graph.CommunityGraph(n, m, minC, 4*minC, s.Seed)
	case ModelKron:
		scaleLog := 0
		for v := 1; v < n; v <<= 1 {
			scaleLog++
		}
		ef := m / (1 << scaleLog)
		if ef < 1 {
			ef = 1
		}
		return graph.Kronecker(scaleLog, ef, s.Seed)
	default:
		// ModelER and ModelDense: G(n, m). The dense stand-ins land in
		// the complement-sampled near-complete regime of the generator.
		return graph.ErdosRenyi(n, m, s.Seed)
	}
}

// KroneckerSeries returns the synthetic Kronecker graphs used in the
// lower panels of Fig. 4/5 (varying scale, fixed edge factor).
func KroneckerSeries(quick bool) []NamedGraph {
	scales := []int{10, 11, 12}
	ef := 16
	if quick {
		scales = []int{9, 10}
		ef = 8
	}
	var out []NamedGraph
	for _, sc := range scales {
		out = append(out, NamedGraph{
			Name:  fmt.Sprintf("kron-s%d-e%d", sc, ef),
			Graph: graph.Kronecker(sc, ef, uint64(200+sc)),
		})
	}
	return out
}

// NamedGraph pairs a graph with its dataset name.
type NamedGraph struct {
	Name  string
	Graph *graph.Graph
}

// LoadSet builds a subset of catalog graphs (all when names is empty),
// sorted in catalog order, at the given scale.
func LoadSet(names []string, scale float64) ([]NamedGraph, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []NamedGraph
	for _, s := range Catalog {
		if len(names) > 0 && !want[s.Name] {
			continue
		}
		out = append(out, NamedGraph{Name: s.Name, Graph: s.Build(scale)})
	}
	if len(names) > 0 && len(out) != len(names) {
		have := map[string]bool{}
		for _, g := range out {
			have[g.Name] = true
		}
		var missing []string
		for n := range want {
			if !have[n] {
				missing = append(missing, n)
			}
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("bench: unknown datasets %v", missing)
	}
	return out, nil
}
