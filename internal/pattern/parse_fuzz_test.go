package pattern

import (
	"errors"
	"testing"
)

// FuzzParse is the parser's corruption contract (the pgio style, for
// query specs): arbitrary input never panics; failures are one of the
// typed errors; accepted patterns compile and round-trip through their
// canonical String.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"triangle", "diamond", "4path", "4cycle", "star4", "clique4",
		"0-1,1-2,2-0", "0-1", "0-1,1-2,2-3,3-0", "star999", "clique0",
		"", " ", ",", "-", "0--1", "1-1", "0-1,0-1", "0-2", "0-1,2-3",
		"a-b", "0-1,", "7-6,5-4", "0-99999999999999999999", "star-1",
		"0-1,1-2,2-0,0-3,1-3,2-3", "tri\x00angle", "０-１",
	} {
		f.Add(s)
	}
	typed := []error{ErrEmpty, ErrSyntax, ErrSelfLoop, ErrDuplicateEdge,
		ErrVertexRange, ErrVertexGap, ErrDisconnected}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q): pattern and error both non-nil", s)
			}
			for _, e := range typed {
				if errors.Is(err, e) {
					return
				}
			}
			t.Fatalf("Parse(%q): untyped error %v", s, err)
		}
		// Accepted input: canonical form must round-trip to the same
		// pattern, and the pattern must compile to a usable plan.
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical %q rejected: %v", s, p.String(), err)
		}
		if q.String() != p.String() || q.K() != p.K() || q.NumEdges() != p.NumEdges() {
			t.Fatalf("Parse(%q): round trip %q != %q", s, q, p)
		}
		pl, err := Compile(p)
		if err != nil {
			t.Fatalf("Parse(%q) ok but Compile failed: %v", s, err)
		}
		if len(pl.Order) != p.K() || pl.RelaxF < 1 {
			t.Fatalf("Parse(%q): degenerate plan %+v", s, pl)
		}
	})
}
