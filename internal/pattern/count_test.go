package pattern

import (
	"context"
	"math"
	"testing"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// bruteCount is the oracle: all injective monomorphisms divided by
// |Aut(P)| — one count per subgraph image, matching the plan's
// symmetry-broken semantics. O(n^k); keep n tiny.
func bruteCount(g *graph.Graph, p *Pattern) int64 {
	n := uint32(g.NumVertices())
	k := p.K()
	used := make([]bool, n)
	mapped := make([]uint32, k)
	var ordered int64
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			ordered++
			return
		}
		for v := uint32(0); v < n; v++ {
			if used[v] {
				continue
			}
			ok := true
			for j := 0; j < i; j++ {
				if p.HasEdge(j, i) && !g.HasEdge(mapped[j], v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapped[i] = v
			used[v] = true
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return ordered / int64(len(p.automorphisms()))
}

var testSpecs = []string{"triangle", "diamond", "4path", "4cycle", "star3", "star4", "clique4", "0-1,1-2,2-3,3-4,4-0", "0-1,1-2,0-2,2-3,3-4"}

func TestExactMatchesBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er14":    graph.ErdosRenyi(14, 30, 7),
		"er12":    graph.ErdosRenyi(12, 40, 3),
		"k7":      graph.Complete(7),
		"cycle9":  graph.Cycle(9),
		"star1+9": graph.Star(10),
		"grid3x4": graph.Grid(3, 4),
	}
	for gname, g := range graphs {
		for _, spec := range testSpecs {
			pl := compile(t, spec)
			got, st, err := CountExact(context.Background(), g, pl, nil, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, spec, err)
			}
			want := bruteCount(g, pl.P)
			if got != want {
				t.Errorf("%s/%s: CountExact = %d, brute force = %d", gname, spec, got, want)
			}
			if st.Embeddings != got {
				t.Errorf("%s/%s: stats.Embeddings = %d != count %d", gname, spec, st.Embeddings, got)
			}
		}
	}
}

func buildPG(t *testing.T, g *graph.Graph, kind core.Kind) *core.PG {
	t.Helper()
	pg, err := core.Build(g, core.Config{Kind: kind, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

var allKinds = []core.Kind{core.BF, core.KHash, core.OneHash, core.KMV, core.HLL}

// TestPrunedBitIdentity is the acceptance-criteria test: with sketch
// pruning on, exact-verify counts are bit-identical to exact-only for
// every built-in pattern and every sketch kind — CertainAbsent never
// falsely dismisses.
func TestPrunedBitIdentity(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Kronecker(8, 8, 1),
		graph.ErdosRenyi(300, 2400, 5),
	}
	for _, g := range graphs {
		baseline := map[string]int64{}
		for _, spec := range testSpecs {
			pl := compile(t, spec)
			n, _, err := CountExact(context.Background(), g, pl, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			baseline[spec] = n
		}
		for _, kind := range allKinds {
			pg := buildPG(t, g, kind)
			for _, spec := range testSpecs {
				pl := compile(t, spec)
				n, st, err := CountExact(context.Background(), g, pl, pg, 2)
				if err != nil {
					t.Fatalf("%v/%s: %v", kind, spec, err)
				}
				if n != baseline[spec] {
					t.Errorf("%v/%s: pruned count %d != exact %d (pruned %d of %d candidates)",
						kind, spec, n, baseline[spec], st.SketchPruned, st.Candidates)
				}
			}
		}
		// The BF oracle must actually fire on chord-closing patterns,
		// otherwise "pruned" silently degenerates to exact-only.
		pg := buildPG(t, g, core.BF)
		pl := compile(t, "diamond")
		_, st, err := CountExact(context.Background(), g, pl, pg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st.SketchPruned == 0 {
			t.Error("BF diamond: no candidates sketch-pruned")
		}
	}
}

// TestDeterministicAcrossWorkers pins the serving contract: counts,
// estimates, and stats are bit-identical for any worker count (fixed
// chunk size, chunk-ordered merge).
func TestDeterministicAcrossWorkers(t *testing.T) {
	g := graph.Kronecker(9, 8, 3)
	pg := buildPG(t, g, core.BF)
	for _, spec := range []string{"diamond", "4cycle", "triangle", "star4"} {
		pl := compile(t, spec)
		refN, refSt, err := CountExact(context.Background(), g, pl, pg, 1)
		if err != nil {
			t.Fatal(err)
		}
		refE, refESt, err := CountEstimate(context.Background(), g, pl, pg, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 7, 16} {
			n, st, err := CountExact(context.Background(), g, pl, pg, w)
			if err != nil {
				t.Fatal(err)
			}
			if n != refN || st != refSt {
				t.Errorf("%s workers=%d: exact %d/%+v != %d/%+v", spec, w, n, st, refN, refSt)
			}
			e, est, err := CountEstimate(context.Background(), g, pl, pg, w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(e) != math.Float64bits(refE) || est != refESt {
				t.Errorf("%s workers=%d: estimate %v != %v", spec, w, e, refE)
			}
		}
	}
}

// TestRelaxationMultiplicity pins the estimate-mode theory with no
// sketch noise: enumerating under the relaxed constraint subset and
// closing each partial with the EXACT extension count must equal
// exact_count × RelaxF — i.e. the compile-time uniformity check
// really does make the overcount image-independent on real graphs.
func TestRelaxationMultiplicity(t *testing.T) {
	graphs := []*graph.Graph{
		graph.ErdosRenyi(14, 30, 7),
		graph.Complete(7),
		graph.Grid(3, 4),
		graph.Cycle(9),
		graph.ErdosRenyi(16, 60, 11),
	}
	for _, g := range graphs {
		n := uint32(g.NumVertices())
		for _, spec := range testSpecs {
			pl := compile(t, spec)
			k := pl.P.K()
			exact, _, err := CountExact(context.Background(), g, pl, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			var mapped [MaxVertices]uint32
			var rec func(i int)
			rec = func(i int) {
				if i == k-1 {
					backs := pl.Back[k-1]
				closing:
					for w := uint32(0); w < n; w++ {
						for j := 0; j < k-1; j++ {
							if mapped[j] == w {
								continue closing
							}
						}
						for _, b := range backs {
							if !g.HasEdge(mapped[b], w) {
								continue closing
							}
						}
						total++
					}
					return
				}
			cand:
				for v := uint32(0); v < n; v++ {
					for j := 0; j < i; j++ {
						if mapped[j] == v {
							continue cand
						}
					}
					for _, b := range pl.Back[i] {
						if !g.HasEdge(mapped[b], v) {
							continue cand
						}
					}
					for _, j := range pl.EstGt[i] {
						if v <= mapped[j] {
							continue cand
						}
					}
					for _, j := range pl.EstLt[i] {
						if v >= mapped[j] {
							continue cand
						}
					}
					mapped[i] = v
					rec(i + 1)
				}
			}
			rec(0)
			if total != exact*int64(pl.RelaxF) {
				t.Errorf("%s: relaxed total %d != exact %d × F %d", spec, total, exact, pl.RelaxF)
			}
		}
	}
}

// TestEstimateTreePatternsExact: patterns whose closing level has one
// back-edge (paths, stars) estimate from exact degrees, so the
// "estimate" equals the exact count.
func TestEstimateTreePatternsExact(t *testing.T) {
	g := graph.Kronecker(8, 8, 2)
	pg := buildPG(t, g, core.BF)
	for _, spec := range []string{"4path", "star3", "star4", "0-1,1-2"} {
		pl := compile(t, spec)
		exact, _, err := CountExact(context.Background(), g, pl, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		est, st, err := CountEstimate(context.Background(), g, pl, pg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st.EstPairs != 0 || st.EstTriples != 0 {
			t.Errorf("%s: tree pattern made estimator calls: %+v", spec, st)
		}
		if math.Abs(est-float64(exact)) > 1e-6*math.Max(1, float64(exact)) {
			t.Errorf("%s: estimate %v, exact %d", spec, est, exact)
		}
	}
}

// TestEstimateAccuracy: sketch estimates land in a generous band
// around the truth for chord-closing patterns (tight accuracy is the
// estimator package's business; this pins the plumbing — relaxation
// factor, corrections, signs).
func TestEstimateAccuracy(t *testing.T) {
	g := graph.Kronecker(9, 12, 4)
	for _, kind := range allKinds {
		pg := buildPG(t, g, kind)
		for _, spec := range []string{"triangle", "diamond", "4cycle"} {
			pl := compile(t, spec)
			exact, _, err := CountExact(context.Background(), g, pl, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			est, st, err := CountEstimate(context.Background(), g, pl, pg, 2)
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, spec, err)
			}
			if st.EstPairs == 0 {
				t.Errorf("%v/%s: no pairwise estimator calls", kind, spec)
			}
			lo, hi := 0.3*float64(exact), 3.0*float64(exact)
			if kind == core.HLL {
				// Inclusion–exclusion on register sketches: by far the
				// noisiest intersection (§IX); only pin the order of
				// magnitude.
				lo, hi = 0.05*float64(exact), 20.0*float64(exact)
			}
			if est < lo || est > hi {
				t.Errorf("%v/%s: estimate %.1f outside [%.1f, %.1f] (exact %d)", kind, spec, est, lo, hi, exact)
			}
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	g := graph.ErdosRenyi(20, 60, 1)
	pg := buildPG(t, g, core.BF)
	// clique5's closing vertex has 4 back-edges: beyond IntCard3.
	p, err := Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CountEstimate(context.Background(), g, pl, pg, 1); err == nil {
		t.Error("clique5 estimate must fail (4 closing back-edges)")
	}
	if _, _, err := CountEstimate(context.Background(), g, compile(t, "triangle"), nil, 1); err == nil {
		t.Error("estimate without a sketch must fail")
	}
}

func TestCancellation(t *testing.T) {
	g := graph.Kronecker(10, 16, 6)
	pg := buildPG(t, g, core.BF)
	pl := compile(t, "diamond")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CountExact(ctx, g, pl, pg, 2); err == nil {
		t.Error("pre-cancelled exact run must error")
	}
	if _, _, err := CountEstimate(ctx, g, pl, pg, 2); err == nil {
		t.Error("pre-cancelled estimate run must error")
	}

	// Cancel mid-plan: the run must return promptly with ctx.Err().
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		start := time.Now()
		_, _, err := CountExact(ctx, g, pl, pg, workers)
		cancel()
		if err == nil {
			t.Skip("graph too small to outlast the timeout") // count finished first; fine
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("workers=%d: cancellation took %v", workers, elapsed)
		}
	}
}
