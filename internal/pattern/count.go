package pattern

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/par"
)

// ErrEstimate is returned by CountEstimate for patterns its closing
// step cannot handle (more than 3 back-edges at the final level, or a
// symmetry relaxation without a uniform overcount factor).
var ErrEstimate = errors.New("pattern: estimate mode unsupported for this pattern")

// Stats describes one plan execution. All counters are deterministic
// for a fixed (graph, plan, sketch) regardless of worker count.
type Stats struct {
	// Embeddings is the number of symmetry-unique embeddings found
	// (exact modes) or relaxed partial embeddings closed (estimate).
	Embeddings int64 `json:"embeddings"`
	// Candidates is the number of candidate extensions considered
	// after ordering-window filtering, across all levels.
	Candidates int64 `json:"candidates"`
	// SketchPruned counts candidates rejected by a sound sketch
	// membership probe before any exact adjacency check.
	SketchPruned int64 `json:"sketch_pruned"`
	// EdgeChecks counts exact adjacency verifications performed.
	EdgeChecks int64 `json:"edge_checks"`
	// EstPairs / EstTriples count closing-level estimator calls
	// (pairwise IntCard and triple IntCard3 respectively).
	EstPairs   int64 `json:"est_pairs,omitempty"`
	EstTriples int64 `json:"est_triples,omitempty"`
	// SumSizes accumulates Σ(|N_u|+|N_v|) over EstPairs calls — the
	// size term of the MinHash pattern deviation bound.
	SumSizes float64 `json:"sum_sizes,omitempty"`
}

func (s *Stats) add(o Stats) {
	s.Embeddings += o.Embeddings
	s.Candidates += o.Candidates
	s.SketchPruned += o.SketchPruned
	s.EdgeChecks += o.EdgeChecks
	s.EstPairs += o.EstPairs
	s.EstTriples += o.EstTriples
	s.SumSizes += o.SumSizes
}

// chunkSize is the fixed root-vertex chunk width. It is deliberately
// independent of the worker count: per-chunk partial results are
// merged in chunk order, so counts AND float estimates are
// bit-identical across any -workers setting (the serving determinism
// contract the cluster smoke test asserts).
const chunkSize = 256

// CountExact counts the symmetry-unique embeddings of the plan's
// pattern in g. With pg == nil every candidate extension is verified
// by exact adjacency alone; with a pg, candidates are first probed
// with core.PG.CertainAbsent — a reject there is a proof of absence,
// so the returned count is bit-identical either way (only the work
// differs, visible in Stats).
func CountExact(ctx context.Context, g *graph.Graph, plan *Plan, pg *core.PG, workers int) (int64, Stats, error) {
	outs, err := run(ctx, g, plan, pg, workers, false)
	if err != nil {
		return 0, Stats{}, err
	}
	var st Stats
	var total int64
	for _, o := range outs {
		total += o.st.Embeddings
		st.add(o.st)
	}
	return total, st, nil
}

// CountEstimate estimates the embedding count: the plan runs with its
// last level's symmetry constraints relaxed, every partial embedding's
// closing extension count is taken from the sketch (degree for one
// back-edge, IntCard for two, IntCard3 for three — Listings 1/2
// generalized) with mapped vertices corrected exactly, and the total
// is divided by the compile-time relaxation factor RelaxF.
func CountEstimate(ctx context.Context, g *graph.Graph, plan *Plan, pg *core.PG, workers int) (float64, Stats, error) {
	if pg == nil {
		return 0, Stats{}, fmt.Errorf("%w: no sketch", ErrEstimate)
	}
	if r := len(plan.Back[plan.P.k-1]); r > 3 {
		return 0, Stats{}, fmt.Errorf("%w: closing level has %d back-edges (max 3)", ErrEstimate, r)
	}
	outs, err := run(ctx, g, plan, pg, workers, true)
	if err != nil {
		return 0, Stats{}, err
	}
	var st Stats
	var sum float64
	for _, o := range outs { // chunk order: deterministic float sum
		sum += o.est
		st.add(o.st)
	}
	return sum / float64(plan.RelaxF), st, nil
}

type chunkOut struct {
	est float64
	st  Stats
}

// run sweeps DFS roots over all vertices in fixed-size chunks and
// returns the per-chunk partials in chunk order.
func run(ctx context.Context, g *graph.Graph, plan *Plan, pg *core.PG, workers int, estimate bool) ([]chunkOut, error) {
	n := g.NumVertices()
	numChunks := (n + chunkSize - 1) / chunkSize
	outs := make([]chunkOut, numChunks)
	done := ctx.Done()
	err := par.ForChunkedCtx(ctx, numChunks, workers, 1, func(clo, chi int) {
		e := &exec{g: g, pg: pg, plan: plan, estimate: estimate, done: done}
		if pg != nil {
			// BF probes go through the hoisted Prober (the fast path the
			// bench speedup rides on); 1H/KMV keep the general oracle.
			e.probe = pg.Prober()
			e.pruneOn = e.probe != nil || pg.Cfg.Kind == core.OneHash || pg.Cfg.Kind == core.KMV
			if e.probe != nil {
				e.sigMem = make([]core.ProbePos, MaxVertices*e.probe.B())
			}
		}
		if estimate {
			e.levels = plan.P.k - 1
			e.closeBack = plan.Back[plan.P.k-1]
			e.gt, e.lt = plan.EstGt, plan.EstLt
		} else {
			e.levels = plan.P.k
			e.gt, e.lt = plan.Gt, plan.Lt
		}
		for ci := clo; ci < chi; ci++ {
			lo, hi := ci*chunkSize, (ci+1)*chunkSize
			if hi > n {
				hi = n
			}
			e.out = &outs[ci]
			for v := lo; v < hi; v++ {
				if par.Cancelled(e.done) {
					return
				}
				e.mapped[0] = uint32(v)
				e.extend(1)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return outs, nil
}

// exec is one worker's DFS state; out points at the current chunk's
// result slot.
type exec struct {
	g        *graph.Graph
	pg       *core.PG
	plan     *Plan
	done     <-chan struct{}
	out      *chunkOut
	estimate bool
	pruneOn  bool
	probe    *core.Prober // non-nil iff BF
	// sigs[j] is mapped[j]'s precomputed probe signature for the
	// current extension level; sigMem is its backing storage.
	sigs   [MaxVertices][]core.ProbePos
	sigMem []core.ProbePos
	// absent[i] is level i's batched first-back-edge probe result,
	// aligned with the level's candidate window (see extend).
	absent [MaxVertices][]bool
	// levels is the number of DFS levels to enumerate (k, or k-1 in
	// estimate mode where the last level is closed by an estimator).
	levels    int
	closeBack []int
	// gt/lt are the active ordering constraints: the full plan sets in
	// exact mode, the uniform relaxed subset in estimate mode.
	gt, lt [][]int
	mapped [MaxVertices]uint32
}

// extend matches level i and recurses. Candidates come from the
// smallest-degree back-neighbor's exact adjacency list, windowed by
// the symmetry constraints (lists are sorted, so the lower bound is a
// binary search and the upper bound a break), then filtered by
// injectivity, sketch probes (sound rejects only), and exact adjacency.
func (e *exec) extend(i int) {
	if i == e.levels {
		if e.estimate {
			e.close()
		} else {
			e.out.st.Embeddings++
		}
		return
	}
	backs := e.plan.Back[i]
	src := backs[0]
	for _, b := range backs[1:] {
		if e.g.Degree(e.mapped[b]) < e.g.Degree(e.mapped[src]) {
			src = b
		}
	}
	cands := e.g.Neighbors(e.mapped[src])

	var low uint32
	for _, j := range e.gt[i] {
		if m := e.mapped[j] + 1; m > low {
			low = m
		}
	}
	high := uint32(1<<32 - 1)
	for _, j := range e.lt[i] {
		if m := e.mapped[j]; m < high {
			high = m
		}
	}
	// Both window bounds resolve by binary search (lists are sorted), so
	// the loop's exact candidate window is known up front — which is what
	// lets the first back edge's probe run batched over it.
	lo := 0
	if low > 0 {
		lo = sort.Search(len(cands), func(t int) bool { return cands[t] >= low })
	}
	win := cands[lo:]
	if hi := sort.Search(len(win), func(t int) bool { return win[t] >= high }); hi < len(win) {
		win = win[:hi]
	}

	// Hoist the back vertices' probe signatures: the candidate loop then
	// tests each back against the CANDIDATE's row — edge symmetry — at
	// one load per hash function, with no per-candidate hashing. The
	// FIRST non-src back edge goes further: its probe is evaluated for
	// the whole window in one batched kernel pass (core.AbsentAtMany),
	// and the per-candidate loop just consumes the precomputed bit. Only
	// the first back is batched — later backs run rarely (they execute
	// only for candidates the earlier filters admitted), so probing them
	// for every window member would be wasted work. Stats are untouched:
	// SketchPruned/EdgeChecks increments still happen exactly where the
	// scalar probes did.
	first := -1
	if e.probe != nil {
		b := e.probe.B()
		for _, j := range backs {
			if j != src {
				if first < 0 {
					first = j
				}
				e.sigs[j] = e.probe.SigInto(e.mapped[j], e.sigMem[j*b:(j+1)*b])
			}
		}
		if first >= 0 && len(win) > 0 {
			if cap(e.absent[i]) < len(win) {
				e.absent[i] = make([]bool, len(win))
			}
			e.absent[i] = e.absent[i][:len(win)]
			e.probe.AbsentAtMany(e.sigs[first], win, e.absent[i])
		}
	}

	checkCancel := i == 1 // bound staleness by one root's level-1 frontier
	for ci, c := range win {
		if checkCancel && par.Cancelled(e.done) {
			return
		}
		e.out.st.Candidates++
		ok := true
		for j := 0; j < i; j++ {
			if e.mapped[j] == c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, j := range backs {
			if j == src {
				continue
			}
			u := e.mapped[j]
			if e.pruneOn {
				absent := false
				switch {
				case j == first:
					absent = e.absent[i][ci]
				case e.probe != nil:
					absent = e.probe.AbsentAt(e.sigs[j], c)
				default:
					absent = e.pg.CertainAbsent(u, c)
				}
				if absent {
					e.out.st.SketchPruned++
					ok = false
					break
				}
			}
			e.out.st.EdgeChecks++
			if !e.g.HasEdge(u, c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e.mapped[i] = c
		e.extend(i + 1)
	}
}

// close finishes one relaxed partial embedding in estimate mode: the
// closing vertex's extension count is estimated from the sketch and
// the mapped vertices that the estimator would wrongly include are
// subtracted exactly, so injectivity costs no accuracy.
func (e *exec) close() {
	backs := e.closeBack
	var term float64
	switch len(backs) {
	case 1:
		term = float64(e.g.Degree(e.mapped[backs[0]]))
	case 2:
		u, v := e.mapped[backs[0]], e.mapped[backs[1]]
		term = e.pg.IntCard(u, v)
		e.out.st.EstPairs++
		e.out.st.SumSizes += float64(e.g.Degree(u) + e.g.Degree(v))
	case 3:
		term = e.pg.IntCard3(e.mapped[backs[0]], e.mapped[backs[1]], e.mapped[backs[2]])
		e.out.st.EstTriples++
	}
	corr := 0
	for lvl := 0; lvl < e.levels; lvl++ {
		w := e.mapped[lvl]
		in := true
		for _, j := range backs {
			u := e.mapped[j]
			if w == u || !e.g.HasEdge(u, w) {
				in = false
				break
			}
		}
		if in {
			corr++
		}
	}
	e.out.est += term - float64(corr)
	e.out.st.Embeddings++
}
