package pattern

import (
	"fmt"
	"sort"
)

// Plan is a compiled exploration plan: a matching order over the
// pattern vertices, per-level back-edge sets, and symmetry-breaking
// ordering constraints so that each embedding (vertex-induced match up
// to automorphism) is discovered exactly once.
type Plan struct {
	P *Pattern

	// Order[i] is the pattern vertex matched at DFS level i: the
	// highest-degree vertex first, then greedily the vertex with the
	// most already-ordered neighbors (ties to higher pattern degree,
	// then lower label). Connectivity guarantees every level > 0 has
	// at least one back-edge.
	Order []int

	// Back[i] lists the earlier levels j < i whose mapped data vertex
	// must be adjacent to the candidate at level i.
	Back [][]int

	// Gt[i] / Lt[i] list earlier levels j whose mapped vertex must be
	// < (resp. >) the candidate at level i — the symmetry-breaking
	// constraints, attached to the later endpoint of each constrained
	// pair.
	Gt, Lt [][]int

	// Constraints holds the raw symmetry constraints as pattern-vertex
	// pairs (a, b) meaning image(a) < image(b); exposed for tests and
	// docs.
	Constraints [][2]int

	// Aut is |Aut(P)|, the automorphism count the constraints break.
	Aut int

	// EstConstraints is the symmetry-constraint subset estimate mode
	// enumerates under: constraints never touching the last-ordered
	// vertex, further restricted so that each pattern image is
	// discovered the SAME number of times (RelaxF) regardless of how
	// its data-vertex order interleaves — verified exhaustively at
	// compile time. (E.g. triangle keeps {0<1} with RelaxF = 3, the
	// /3 of Listing 2; the 4-cycle must drop 0<2 and keeps {0<1} with
	// RelaxF = 4, because under the dihedral group the full relaxed
	// set has image-dependent multiplicity.) The fallback — no
	// constraints, RelaxF = |Aut| — is always uniform, so estimate
	// mode is well-defined for every pattern.
	EstConstraints [][2]int

	// EstGt / EstLt are EstConstraints mapped to levels, as Gt/Lt.
	EstGt, EstLt [][]int

	// RelaxF is the estimate-mode overcount: relaxed totals are
	// divided by it. Always ≥ 1.
	RelaxF int
}

// Compile builds the exploration plan for p.
func Compile(p *Pattern) (*Plan, error) {
	if p == nil || p.k < 2 {
		return nil, fmt.Errorf("%w: nil or trivial pattern", ErrEmpty)
	}
	pl := &Plan{P: p}
	pl.Order = matchingOrder(p)

	level := make([]int, p.k) // pattern vertex -> level
	for i, v := range pl.Order {
		level[v] = i
	}
	pl.Back = make([][]int, p.k)
	for i, v := range pl.Order {
		for j := 0; j < i; j++ {
			if p.HasEdge(v, pl.Order[j]) {
				pl.Back[i] = append(pl.Back[i], j)
			}
		}
	}

	auts := p.automorphisms()
	pl.Aut = len(auts)
	pl.Constraints = symmetryConstraints(p, pl.Order, auts)

	pl.Gt = make([][]int, p.k)
	pl.Lt = make([][]int, p.k)
	for _, c := range pl.Constraints {
		a, b := c[0], c[1] // image(a) < image(b)
		if level[a] < level[b] {
			pl.Gt[level[b]] = append(pl.Gt[level[b]], level[a])
		} else {
			pl.Lt[level[a]] = append(pl.Lt[level[a]], level[b])
		}
	}

	pl.EstConstraints, pl.RelaxF = relaxConstraints(p, auts, pl.Constraints, pl.Order[p.k-1])
	pl.EstGt = make([][]int, p.k)
	pl.EstLt = make([][]int, p.k)
	for _, c := range pl.EstConstraints {
		a, b := c[0], c[1]
		if level[a] < level[b] {
			pl.EstGt[level[b]] = append(pl.EstGt[level[b]], level[a])
		} else {
			pl.EstLt[level[a]] = append(pl.EstLt[level[a]], level[b])
		}
	}
	return pl, nil
}

// relaxConstraints picks the estimate-mode constraint set and its
// overcount F. Enumerating under a constraint subset D discovers each
// pattern image |{σ ∈ Aut : τ∘σ satisfies D}| times, where τ ranks
// the pattern vertices by their data IDs in the canonical (fully
// constrained) labeling — so dividing by a constant F is only sound
// when that multiplicity is the same for EVERY total order τ
// consistent with the full constraints. Candidate constraints are
// those not touching the last-ordered vertex (the closing level is
// estimated, never enumerated); uniformity is checked exhaustively
// (exactly one τ per Aut-orbit is consistent, so the check costs ≤ k!
// constraint evaluations per subset). The empty set is always uniform
// with F = |Aut|, so a valid plan always exists.
func relaxConstraints(p *Pattern, auts [][]int, cons [][2]int, last int) ([][2]int, int) {
	var rel [][2]int
	for _, c := range cons {
		if c[0] != last && c[1] != last {
			rel = append(rel, c)
		}
	}
	// Collect the consistent total orders once (τ[v] = rank of v).
	var taus [][]int
	τ := make([]int, p.k)
	for i := range τ {
		τ[i] = i
	}
	permute(τ, 0, func(τ []int) {
		for _, c := range cons {
			if τ[c[0]] >= τ[c[1]] {
				return
			}
		}
		cp := make([]int, p.k)
		copy(cp, τ)
		taus = append(taus, cp)
	})
	uniform := func(set [][2]int) (int, bool) {
		f := -1
		for _, τ := range taus {
			n := 0
			for _, σ := range auts {
				sat := true
				for _, c := range set {
					if τ[σ[c[0]]] >= τ[σ[c[1]]] {
						sat = false
						break
					}
				}
				if sat {
					n++
				}
			}
			if f < 0 {
				f = n
			} else if f != n {
				return 0, false
			}
		}
		return f, f >= 1
	}
	if f, ok := uniform(rel); ok {
		return rel, f
	}
	// Greedy: grow a uniform subset one constraint at a time. Each
	// kept constraint shrinks the relaxed search space; anything
	// non-uniform is dropped and divided out via a larger F instead.
	var kept [][2]int
	f := len(auts)
	for _, c := range rel {
		trial := append(kept[:len(kept):len(kept)], c)
		if tf, ok := uniform(trial); ok {
			kept, f = trial, tf
		}
	}
	return kept, f
}

// matchingOrder picks the exploration order: start at a
// maximum-degree vertex, then repeatedly take the unordered vertex
// with the most back-edges into the prefix (ties: higher degree, then
// lower label). Dense vertices early keeps candidate frontiers small.
func matchingOrder(p *Pattern) []int {
	order := make([]int, 0, p.k)
	used := make([]bool, p.k)
	best := 0
	for v := 1; v < p.k; v++ {
		if p.Degree(v) > p.Degree(best) {
			best = v
		}
	}
	order = append(order, best)
	used[best] = true
	for len(order) < p.k {
		cand, candBack := -1, -1
		for v := 0; v < p.k; v++ {
			if used[v] {
				continue
			}
			back := 0
			for _, u := range order {
				if p.HasEdge(v, u) {
					back++
				}
			}
			if back > candBack ||
				(back == candBack && p.Degree(v) > p.Degree(cand)) {
				cand, candBack = v, back
			}
		}
		order = append(order, cand)
		used[cand] = true
	}
	return order
}

// symmetryConstraints derives a complete set of ordering constraints
// via the orbit–stabilizer construction (GraphZero/Peregrine): walk
// the matching order; at each vertex v, every u ≠ v in v's orbit under
// the remaining automorphism group gets a constraint image(v) <
// image(u), then the group is restricted to the stabilizer of v.
// Exactly one labeling per automorphism class satisfies all
// constraints.
func symmetryConstraints(p *Pattern, order []int, auts [][]int) [][2]int {
	var cons [][2]int
	group := auts
	for _, v := range order {
		orbit := map[int]bool{}
		for _, σ := range group {
			orbit[σ[v]] = true
		}
		us := make([]int, 0, len(orbit))
		for u := range orbit {
			if u != v {
				us = append(us, u)
			}
		}
		sort.Ints(us)
		for _, u := range us {
			cons = append(cons, [2]int{v, u})
		}
		var stab [][]int
		for _, σ := range group {
			if σ[v] == v {
				stab = append(stab, σ)
			}
		}
		group = stab
		if len(group) == 1 {
			break // only identity left; no further constraints arise
		}
	}
	return cons
}
