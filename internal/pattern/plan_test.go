package pattern

import (
	"testing"
)

func compile(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestCompileTriangle(t *testing.T) {
	pl := compile(t, "triangle")
	if len(pl.Constraints) != 3 {
		t.Errorf("constraints = %v, want the 3 pairwise orderings", pl.Constraints)
	}
	if pl.RelaxF != 3 {
		t.Errorf("RelaxF = %d, want 3 — the /3 of Listing 2", pl.RelaxF)
	}
	if pl.Aut != 6 {
		t.Errorf("Aut = %d, want 6", pl.Aut)
	}
}

func TestCompileStructure(t *testing.T) {
	for _, spec := range []string{"triangle", "diamond", "4path", "4cycle", "star3", "star5", "clique4", "0-1", "0-1,1-2"} {
		pl := compile(t, spec)
		k := pl.P.K()
		if len(pl.Order) != k {
			t.Fatalf("%s: order %v", spec, pl.Order)
		}
		seen := map[int]bool{}
		for _, v := range pl.Order {
			seen[v] = true
		}
		if len(seen) != k {
			t.Fatalf("%s: order %v is not a permutation", spec, pl.Order)
		}
		// Connectivity ⇒ every level past the root has a back-edge.
		for i := 1; i < k; i++ {
			if len(pl.Back[i]) == 0 {
				t.Errorf("%s: level %d has no back-edges", spec, i)
			}
			for _, j := range pl.Back[i] {
				if j >= i || !pl.P.HasEdge(pl.Order[i], pl.Order[j]) {
					t.Errorf("%s: bad back-edge %d->%d", spec, i, j)
				}
			}
		}
		// Constraint references only point to earlier levels.
		for i := 0; i < k; i++ {
			for _, j := range append(append([]int{}, pl.Gt[i]...), pl.Lt[i]...) {
				if j >= i {
					t.Errorf("%s: constraint at level %d references level %d", spec, i, j)
				}
			}
		}
		if pl.RelaxF < 1 {
			t.Errorf("%s: RelaxF=%d", spec, pl.RelaxF)
		}
		// Estimate-mode constraints never touch the closing level.
		if len(pl.EstGt[k-1]) != 0 || len(pl.EstLt[k-1]) != 0 {
			t.Errorf("%s: estimate constraints reach the closing level", spec)
		}
		// The root is a maximum-degree pattern vertex.
		for v := 0; v < k; v++ {
			if pl.P.Degree(v) > pl.P.Degree(pl.Order[0]) {
				t.Errorf("%s: root %d is not max degree", spec, pl.Order[0])
			}
		}
	}
}

// TestConstraintsBreakAllSymmetry checks the orbit–stabilizer
// guarantee directly: for every total order of the pattern vertices,
// exactly one automorphism image satisfies the full constraint set —
// so plan enumeration discovers each subgraph image exactly once.
func TestConstraintsBreakAllSymmetry(t *testing.T) {
	for _, spec := range []string{"triangle", "diamond", "4path", "4cycle", "star4", "clique4", "0-1,1-2,2-3,3-4,4-0", "0-1,1-2,2-3,0-3,0-2,2-4"} {
		pl := compile(t, spec)
		auts := pl.P.automorphisms()
		τ := make([]int, pl.P.K())
		for i := range τ {
			τ[i] = i
		}
		orders, hits := 0, 0
		permute(τ, 0, func(τ []int) {
			orders++
			n := 0
			for _, σ := range auts {
				ok := true
				for _, c := range pl.Constraints {
					if τ[σ[c[0]]] >= τ[σ[c[1]]] {
						ok = false
						break
					}
				}
				if ok {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("%s: order %v satisfied by %d automorphism images, want exactly 1", spec, τ, n)
			}
			hits++
		})
		if orders == 0 || hits != orders {
			t.Fatalf("%s: checked %d/%d orders", spec, hits, orders)
		}
	}
}

func TestRelaxFactorValues(t *testing.T) {
	for spec, want := range map[string]int{
		"triangle": 3, // Listing 2's /3
		"0-1":      2, // single edge: both endpoints relax
		"0-1,1-2":  2, // wedge from the center: both leaves relax
		"diamond":  2, // chord fixed, tips relax
		"4cycle":   4, // keeps one uniform constraint of the dihedral 8
	} {
		pl := compile(t, spec)
		if pl.RelaxF != want {
			t.Errorf("%s: RelaxF = %d, want %d", spec, pl.RelaxF, want)
		}
	}
}

func TestCompileRejectsTrivial(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Error("Compile(nil) must error")
	}
}
