package pattern

import (
	"errors"
	"testing"
)

func TestBuiltins(t *testing.T) {
	star4, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	clique4, err := Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p          *Pattern
		k, m, auts int
	}{
		{Triangle(), 3, 3, 6},
		{Diamond(), 4, 5, 4},
		{FourPath(), 4, 3, 2},
		{FourCycle(), 4, 4, 8},
		{star4, 5, 4, 24}, // 4! leaf permutations
		{clique4, 4, 6, 24},
	}
	for _, c := range cases {
		if c.p.K() != c.k || c.p.NumEdges() != c.m {
			t.Errorf("%s: got k=%d m=%d, want k=%d m=%d", c.p, c.p.K(), c.p.NumEdges(), c.k, c.m)
		}
		if got := len(c.p.automorphisms()); got != c.auts {
			t.Errorf("%s: |Aut| = %d, want %d", c.p, got, c.auts)
		}
	}
}

func TestParseBuiltinAliases(t *testing.T) {
	for spec, want := range map[string]string{
		"triangle":            "triangle",
		"Triangle":            "triangle",
		"k3":                  "triangle",
		"diamond":             "diamond",
		"triangle-with-chord": "diamond",
		"4path":               "4path",
		"p4":                  "4path",
		"4cycle":              "4cycle",
		"square":              "4cycle",
		"star3":               "star3",
		"clique4":             "clique4",
		" triangle ":          "triangle",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.String() != want {
			t.Errorf("Parse(%q) = %s, want %s", spec, p, want)
		}
	}
}

func TestParseEdgeList(t *testing.T) {
	p, err := Parse("1-2, 2-0,0-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "0-1,0-2,1-2" {
		t.Errorf("canonical form = %q", p.String())
	}
	if p.K() != 3 || p.NumEdges() != 3 {
		t.Errorf("k=%d m=%d", p.K(), p.NumEdges())
	}
	// Canonical form round-trips.
	q, err := Parse(p.String())
	if err != nil || q.String() != p.String() {
		t.Errorf("round trip: %v %v", q, err)
	}
}

func TestParseTypedErrors(t *testing.T) {
	cases := []struct {
		spec string
		want error
	}{
		{"", ErrEmpty},
		{"   ", ErrEmpty},
		{"bogus", ErrSyntax},
		{"0-1,,1-2", ErrSyntax},
		{"0--1", ErrSyntax},
		{"0-", ErrSyntax},
		{"-1", ErrSyntax},
		{"a-b", ErrSyntax},
		{"0-999999999", ErrSyntax},
		{"1-1", ErrSelfLoop},
		{"0-1,1-0", ErrDuplicateEdge},
		{"0-1,0-1", ErrDuplicateEdge},
		{"0-9", ErrVertexRange},
		{"star1", ErrVertexRange},
		{"star99", ErrVertexRange},
		{"clique9", ErrVertexRange},
		{"0-2", ErrVertexGap},
		{"0-1,3-4", ErrVertexGap},
		{"0-1,2-3", ErrDisconnected},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if !errors.Is(err, c.want) {
			t.Errorf("Parse(%q): err = %v, want %v", c.spec, err, c.want)
		}
		if err != nil && p != nil {
			t.Errorf("Parse(%q): non-nil pattern with error", c.spec)
		}
	}
}

func TestPatternAccessors(t *testing.T) {
	d := Diamond()
	if !d.HasEdge(0, 2) || d.HasEdge(1, 3) {
		t.Error("diamond adjacency wrong")
	}
	if d.Degree(0) != 3 || d.Degree(1) != 2 {
		t.Error("diamond degrees wrong")
	}
	if d.HasEdge(-1, 0) || d.HasEdge(0, 99) {
		t.Error("out-of-range HasEdge must be false")
	}
	edges := d.Edges()
	edges[0] = Edge{7, 7} // callers get a copy
	if d.Edges()[0] == (Edge{7, 7}) {
		t.Error("Edges leaked internal slice")
	}
}
