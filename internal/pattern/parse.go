package pattern

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Typed parse/validation errors. Malformed user input maps to exactly
// one of these (wrapped with detail, test with errors.Is) and never
// panics — the pgio corruption-error contract applied to query specs.
var (
	// ErrEmpty is returned for an empty or all-whitespace spec.
	ErrEmpty = errors.New("pattern: empty spec")
	// ErrSyntax is returned for token-level noise: a token that is
	// neither a known builtin name nor a "u-v" edge.
	ErrSyntax = errors.New("pattern: malformed spec")
	// ErrSelfLoop is returned for an edge "v-v".
	ErrSelfLoop = errors.New("pattern: self-loop")
	// ErrDuplicateEdge is returned when an edge appears twice (in
	// either orientation).
	ErrDuplicateEdge = errors.New("pattern: duplicate edge")
	// ErrVertexRange is returned for labels outside 0..MaxVertices-1
	// or builtin parameters outside their range.
	ErrVertexRange = errors.New("pattern: vertex label out of range")
	// ErrVertexGap is returned when the labels used do not cover
	// 0..k-1 contiguously.
	ErrVertexGap = errors.New("pattern: vertex labels not contiguous")
	// ErrDisconnected is returned for patterns whose edges do not form
	// a single connected component.
	ErrDisconnected = errors.New("pattern: disconnected")
)

// Parse resolves a pattern spec: a builtin name ("triangle", "diamond"
// aka "triangle-with-chord", "4path", "4cycle", "star<k>", "clique<k>",
// case-insensitive) or a user-supplied edge list like "0-1,1-2,2-0"
// with contiguous labels 0..k-1, k ≤ MaxVertices. Errors are typed
// (ErrSyntax, ErrSelfLoop, ErrDuplicateEdge, ErrVertexRange,
// ErrVertexGap, ErrDisconnected, ErrEmpty).
func Parse(spec string) (*Pattern, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, ErrEmpty
	}
	if p, ok, err := builtin(strings.ToLower(s)); ok {
		return p, err
	}
	var edges []Edge
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("%w: empty edge token in %q", ErrSyntax, spec)
		}
		u, v, ok := splitEdge(tok)
		if !ok {
			return nil, fmt.Errorf("%w: token %q (want \"u-v\" with u,v in 0..%d, or a builtin name)", ErrSyntax, tok, MaxVertices-1)
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	return New(edges)
}

// splitEdge parses "u-v". Labels are checked for numeric syntax only;
// range, loops, and duplicates are New's job so that every edge-shaped
// token funnels into the same typed errors.
func splitEdge(tok string) (u, v int, ok bool) {
	i := strings.IndexByte(tok, '-')
	if i <= 0 || i == len(tok)-1 {
		return 0, 0, false
	}
	a, err1 := strconv.Atoi(strings.TrimSpace(tok[:i]))
	b, err2 := strconv.Atoi(strings.TrimSpace(tok[i+1:]))
	if err1 != nil || err2 != nil || a < 0 || b < 0 {
		return 0, 0, false
	}
	// Cap before New so absurd labels ("0-999999999") stay a range
	// error rather than allocating anything.
	if a >= 1<<16 || b >= 1<<16 {
		return 0, 0, false
	}
	return a, b, true
}

func builtin(name string) (*Pattern, bool, error) {
	switch name {
	case "triangle", "tri", "k3", "clique3":
		return Triangle(), true, nil
	case "diamond", "triangle-with-chord", "trichord":
		return Diamond(), true, nil
	case "4path", "path4", "p4", "4-path":
		return FourPath(), true, nil
	case "4cycle", "cycle4", "c4", "4-cycle", "square":
		return FourCycle(), true, nil
	}
	for _, prefix := range []string{"star", "clique"} {
		if strings.HasPrefix(name, prefix) {
			k, err := strconv.Atoi(name[len(prefix):])
			if err != nil || k < 0 || k > 1<<16 {
				continue // not a parameterized builtin; try the edge-list path
			}
			var p *Pattern
			if prefix == "star" {
				p, err = Star(k)
			} else {
				p, err = Clique(k)
			}
			return p, true, err // out-of-range k is a typed ErrVertexRange
		}
	}
	return nil, false, nil
}
