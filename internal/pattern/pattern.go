// Package pattern implements sketch-accelerated small-pattern mining:
// the generalization of ProbGraph's triangle machinery (§V, Thm VII.1)
// to arbitrary connected query patterns on up to MaxVertices vertices.
//
// A Pattern (built-in or user-supplied edge list, see Parse) is compiled
// by Compile into a Plan: a degree-ordered, symmetry-broken exploration
// plan in the Peregrine tradition. The plan is executed by CountExact
// (exact enumeration, optionally pre-filtering candidate extensions with
// sound sketch membership rejects so the count stays bit-identical) or
// CountEstimate (the closing level of every partial embedding is
// estimated from sketch intersections à la Listing 1/2, with per-pattern
// deviation bounds from internal/estimator).
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// MaxVertices bounds pattern size. Plans brute-force the automorphism
// group over all k! labelings, so k is kept small; 8 vertices already
// covers every pattern the mining literature calls "small".
const MaxVertices = 8

// Edge is an undirected pattern edge between vertex labels U < V.
type Edge struct {
	U, V int
}

// Pattern is a small connected undirected query graph on vertex labels
// 0..K()-1. Construct with a builtin (Triangle, Diamond, FourPath,
// FourCycle, Star, Clique), with Parse, or with New. Patterns are
// immutable after construction.
type Pattern struct {
	name  string // builtin name; "" for user-supplied patterns
	k     int
	edges []Edge              // normalized: U < V, sorted lexicographically
	adj   [MaxVertices]uint16 // adjacency bitmask per vertex
}

// New builds a pattern from an explicit edge list. Vertex labels must
// cover 0..k-1 contiguously for some k ≤ MaxVertices; self-loops,
// duplicate edges, and disconnected patterns are rejected with typed
// errors (the same ones Parse returns).
func New(edges []Edge) (*Pattern, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("%w: no edges", ErrEmpty)
	}
	p := &Pattern{}
	maxLabel := -1
	var seen uint16
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= MaxVertices {
			return nil, fmt.Errorf("%w: edge %d-%d (labels must be in 0..%d)", ErrVertexRange, e.U, e.V, MaxVertices-1)
		}
		if u == v {
			return nil, fmt.Errorf("%w: %d-%d", ErrSelfLoop, e.U, e.V)
		}
		if p.adj[u]&(1<<uint(v)) != 0 {
			return nil, fmt.Errorf("%w: %d-%d", ErrDuplicateEdge, u, v)
		}
		p.adj[u] |= 1 << uint(v)
		p.adj[v] |= 1 << uint(u)
		seen |= 1<<uint(u) | 1<<uint(v)
		if v > maxLabel {
			maxLabel = v
		}
		p.edges = append(p.edges, Edge{U: u, V: v})
	}
	p.k = maxLabel + 1
	if seen != uint16(1<<uint(p.k))-1 {
		return nil, fmt.Errorf("%w: labels must cover 0..%d contiguously", ErrVertexGap, maxLabel)
	}
	if !connected(p) {
		return nil, fmt.Errorf("%w: %d vertices, %d edges", ErrDisconnected, p.k, len(p.edges))
	}
	sort.Slice(p.edges, func(i, j int) bool {
		if p.edges[i].U != p.edges[j].U {
			return p.edges[i].U < p.edges[j].U
		}
		return p.edges[i].V < p.edges[j].V
	})
	return p, nil
}

func connected(p *Pattern) bool {
	var reach uint16 = 1 // BFS over bitmasks from vertex 0
	for {
		next := reach
		for v := 0; v < p.k; v++ {
			if reach&(1<<uint(v)) != 0 {
				next |= p.adj[v]
			}
		}
		if next == reach {
			break
		}
		reach = next
	}
	return reach == uint16(1<<uint(p.k))-1
}

func mustNew(name string, edges []Edge) *Pattern {
	p, err := New(edges)
	if err != nil {
		panic("pattern: bad builtin " + name + ": " + err.Error())
	}
	p.name = name
	return p
}

// Triangle is K3: the pattern behind the TC kernel, here as a plan.
func Triangle() *Pattern {
	return mustNew("triangle", []Edge{{0, 1}, {0, 2}, {1, 2}})
}

// Diamond is the triangle-with-chord (two triangles sharing an edge;
// equivalently a 4-cycle plus one chord). Vertices 0 and 2 are the
// chord endpoints.
func Diamond() *Pattern {
	return mustNew("diamond", []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}})
}

// FourPath is the simple path on 4 vertices (3 edges).
func FourPath() *Pattern {
	return mustNew("4path", []Edge{{0, 1}, {1, 2}, {2, 3}})
}

// FourCycle is the chordless cycle on 4 vertices.
func FourCycle() *Pattern {
	return mustNew("4cycle", []Edge{{0, 1}, {0, 3}, {1, 2}, {2, 3}})
}

// Star returns the k-star: one center adjacent to k leaves
// (k+1 vertices total), for 2 ≤ k ≤ MaxVertices-1.
func Star(k int) (*Pattern, error) {
	if k < 2 || k > MaxVertices-1 {
		return nil, fmt.Errorf("%w: star%d (k must be in 2..%d)", ErrVertexRange, k, MaxVertices-1)
	}
	edges := make([]Edge, k)
	for i := range edges {
		edges[i] = Edge{0, i + 1}
	}
	return mustNew(fmt.Sprintf("star%d", k), edges), nil
}

// Clique returns K_k for 3 ≤ k ≤ MaxVertices.
func Clique(k int) (*Pattern, error) {
	if k < 3 || k > MaxVertices {
		return nil, fmt.Errorf("%w: clique%d (k must be in 3..%d)", ErrVertexRange, k, MaxVertices)
	}
	var edges []Edge
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{u, v})
		}
	}
	return mustNew(fmt.Sprintf("clique%d", k), edges), nil
}

// K returns the number of pattern vertices.
func (p *Pattern) K() int { return p.k }

// NumEdges returns the number of pattern edges.
func (p *Pattern) NumEdges() int { return len(p.edges) }

// Edges returns a copy of the normalized edge list (U < V, sorted).
func (p *Pattern) Edges() []Edge {
	out := make([]Edge, len(p.edges))
	copy(out, p.edges)
	return out
}

// HasEdge reports whether pattern vertices a and b are adjacent.
func (p *Pattern) HasEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= p.k || b >= p.k {
		return false
	}
	return p.adj[a]&(1<<uint(b)) != 0
}

// Degree returns the pattern degree of vertex a.
func (p *Pattern) Degree(a int) int {
	return popcount16(p.adj[a])
}

// Name returns the builtin name, or "" for user-supplied patterns.
func (p *Pattern) Name() string { return p.name }

// String returns the canonical spec: the builtin name when there is
// one, otherwise the normalized edge list ("0-1,0-2,1-2"). The result
// always round-trips through Parse to an identical pattern.
func (p *Pattern) String() string {
	if p.name != "" {
		return p.name
	}
	parts := make([]string, len(p.edges))
	for i, e := range p.edges {
		parts[i] = fmt.Sprintf("%d-%d", e.U, e.V)
	}
	return strings.Join(parts, ",")
}

// automorphisms enumerates Aut(P) by brute force over all k!
// permutations (k ≤ MaxVertices, so at most 40320). Each returned
// permutation σ satisfies adj(a,b) ⇔ adj(σa,σb).
func (p *Pattern) automorphisms() [][]int {
	perm := make([]int, p.k)
	for i := range perm {
		perm[i] = i
	}
	var out [][]int
	permute(perm, 0, func(σ []int) {
		for a := 0; a < p.k; a++ {
			for b := a + 1; b < p.k; b++ {
				if p.HasEdge(a, b) != p.HasEdge(σ[a], σ[b]) {
					return
				}
			}
		}
		cp := make([]int, p.k)
		copy(cp, σ)
		out = append(out, cp)
	})
	return out
}

// permute visits all permutations of s[i:] via Heap-style swaps.
func permute(s []int, i int, visit func([]int)) {
	if i == len(s) {
		visit(s)
		return
	}
	for j := i; j < len(s); j++ {
		s[i], s[j] = s[j], s[i]
		permute(s, i+1, visit)
		s[i], s[j] = s[j], s[i]
	}
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
