package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample variance with n-1 denominator: sum of squared devs = 32, /7.
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton edge cases")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("singleton quantile")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	b := Boxplot(xs)
	if b.Min != 1 || b.Max != 100 || b.Median != 3 || b.N != 5 {
		t.Fatalf("Box = %+v", b)
	}
	if b.Outliers != 1 {
		t.Fatalf("Outliers = %d, want 1 (the 100)", b.Outliers)
	}
	empty := Boxplot(nil)
	if !math.IsNaN(empty.Median) {
		t.Fatal("empty boxplot should be NaN-filled")
	}
}

func TestMedianCICoversTrueMedian(t *testing.T) {
	// Sample from a known distribution; the 95% CI should contain the true
	// median in the vast majority of trials.
	rng := rand.New(rand.NewPCG(42, 0))
	hits := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 101)
		for i := range xs {
			xs[i] = rng.NormFloat64() // true median 0
		}
		ci := MedianCI(xs, 0.95)
		if ci.Lo <= 0 && 0 <= ci.Hi {
			hits++
		}
		if ci.Lo > ci.Point || ci.Hi < ci.Point {
			t.Fatal("CI must contain point estimate")
		}
	}
	if hits < int(0.88*trials) {
		t.Fatalf("CI covered true median only %d/%d times", hits, trials)
	}
}

func TestMedianCISmallSamples(t *testing.T) {
	ci := MedianCI([]float64{3, 1, 2}, 0.95)
	if ci.Lo != 1 || ci.Hi != 3 {
		t.Fatalf("small-sample CI should be the range, got %+v", ci)
	}
	empty := MedianCI(nil, 0.95)
	if !math.IsNaN(empty.Lo) {
		t.Fatal("empty CI should be NaN")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.995, 2.575829}, {0.84134, 0.999997},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almost(got, c.want, 1e-4) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles must be infinite")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(90, 100) != 0.1 {
		t.Fatal("RelativeError(90,100)")
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("x/0 should be Inf")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almost(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(a,b) symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(3, 5, 0.4) + RegIncBeta(5, 3, 0.6); !almost(got, 1, 1e-10) {
		t.Errorf("symmetry violated: %v", got)
	}
	// I_0.5(2,2) = 0.5 by symmetry of Beta(2,2).
	if got := RegIncBeta(2, 2, 0.5); !almost(got, 0.5, 1e-10) {
		t.Errorf("I_0.5(2,2) = %v", got)
	}
	// Beta(2,1) CDF is x^2.
	if got := RegIncBeta(2, 1, 0.3); !almost(got, 0.09, 1e-10) {
		t.Errorf("I_0.3(2,1) = %v", got)
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundaries")
	}
	if !math.IsNaN(RegIncBeta(-1, 2, 0.5)) {
		t.Fatal("invalid parameters should be NaN")
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := RegIncBeta(4.5, 2.5, x)
		if v < prev-1e-12 {
			t.Fatalf("I_x(4.5,2.5) not monotone at x=%v", x)
		}
		prev = v
	}
}

func TestRegIncBetaMatchesBinomialTail(t *testing.T) {
	// For integer a, b: I_p(a, n-a+1) = P(Bin(n,p) >= a).
	n, a, p := 20, 7, 0.3
	var tail float64
	for k := a; k <= n; k++ {
		tail += BinomialPMF(n, k, p)
	}
	if got := RegIncBeta(float64(a), float64(n-a+1), p); !almost(got, tail, 1e-10) {
		t.Fatalf("I_p(a,n-a+1) = %v, binomial tail = %v", got, tail)
	}
}

func TestLogBinomial(t *testing.T) {
	if got := math.Exp(LogBinomial(10, 3)); !almost(got, 120, 1e-9) {
		t.Fatalf("C(10,3) = %v", got)
	}
	if !math.IsInf(LogBinomial(5, 9), -1) || !math.IsInf(LogBinomial(5, -1), -1) {
		t.Fatal("out-of-range binomial should be -Inf")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	n, p := 25, 0.37
	var s float64
	for k := 0; k <= n; k++ {
		s += BinomialPMF(n, k, p)
	}
	if !almost(s, 1, 1e-10) {
		t.Fatalf("PMF sums to %v", s)
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 5, 1) != 1 {
		t.Fatal("degenerate p")
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	N, K, n := 30, 12, 9
	var s, mean float64
	for k := 0; k <= n; k++ {
		p := HypergeometricPMF(N, K, n, k)
		s += p
		mean += float64(k) * p
	}
	if !almost(s, 1, 1e-10) {
		t.Fatalf("PMF sums to %v", s)
	}
	wantMean, wantVar := HypergeometricMoments(N, K, n)
	if !almost(mean, wantMean, 1e-9) {
		t.Fatalf("mean %v vs formula %v", mean, wantMean)
	}
	var variance float64
	for k := 0; k <= n; k++ {
		d := float64(k) - mean
		variance += d * d * HypergeometricPMF(N, K, n, k)
	}
	if !almost(variance, wantVar, 1e-9) {
		t.Fatalf("var %v vs formula %v", variance, wantVar)
	}
}

func TestBinomialMoments(t *testing.T) {
	m, v := BinomialMoments(10, 0.25)
	if m != 2.5 || !almost(v, 1.875, 1e-12) {
		t.Fatalf("moments = %v, %v", m, v)
	}
}

func TestKHashExpectationSanity(t *testing.T) {
	// With J=0 expectation is 0; with J=1 expectation is (|X|+|Y|)/2 = |X|.
	if got := KHashExpectation(10, 10, 16, 0); got != 0 {
		t.Fatalf("E[J=0] = %v", got)
	}
	if got := KHashExpectation(10, 10, 16, 1); !almost(got, 10, 1e-9) {
		t.Fatalf("E[J=1] = %v, want 10", got)
	}
	// Expectation grows with J.
	if KHashExpectation(10, 10, 16, 0.2) >= KHashExpectation(10, 10, 16, 0.6) {
		t.Fatal("expectation should increase with Jaccard")
	}
}

func TestOneHashExpectationSanity(t *testing.T) {
	if got := OneHashExpectation(10, 10, 0, 8); got != 0 {
		t.Fatalf("E[inter=0] = %v", got)
	}
	// Full overlap: X == Y, union=10, k=8 draws all land in intersection:
	// Ĵ = 1 so estimate = 20·(1/2) = 10 exactly.
	if got := OneHashExpectation(10, 10, 10, 8); !almost(got, 10, 1e-9) {
		t.Fatalf("E[full overlap] = %v", got)
	}
	if OneHashExpectation(0, 0, 0, 4) != 0 {
		t.Fatal("empty sets")
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: boxplot respects ordering min<=Q1<=median<=Q3<=max.
func TestBoxplotOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 100; trial++ {
		n := rng.IntN(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		b := Boxplot(xs)
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max) {
			t.Fatalf("boxplot out of order: %+v (xs=%v)", b, xs)
		}
		sort.Float64s(xs)
		if b.Min != xs[0] || b.Max != xs[n-1] {
			t.Fatal("min/max mismatch")
		}
	}
}
