// Package stats provides the statistical machinery used by the ProbGraph
// evaluation and theory: descriptive statistics and boxplot summaries
// (Fig. 3), nonparametric 95% confidence intervals following the
// benchmarking methodology of Hoefler & Belli that the paper adopts
// (§VIII-A), and the special functions and distribution moments required
// by the estimator bounds (regularized incomplete beta for KMV,
// binomial/hypergeometric moments for MinHash, Eqs. 23–24).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than
// two samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation between order statistics (type-7, the R default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Box is a five-number boxplot summary plus the count of whisker-outliers,
// matching the presentation of Fig. 3.
type Box struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
	Outliers                 int // points beyond Q3+1.5·IQR or below Q1-1.5·IQR
}

// Boxplot computes the boxplot summary of xs.
func Boxplot(xs []float64) Box {
	n := len(xs)
	if n == 0 {
		nan := math.NaN()
		return Box{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := Box{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[n-1],
		N:      n,
	}
	iqr := b.Q3 - b.Q1
	lo, hi := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	for _, x := range s {
		if x < lo || x > hi {
			b.Outliers++
		}
	}
	return b
}

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point, Lo, Hi float64
	Level         float64
}

// MedianCI returns the median of xs together with a distribution-free
// confidence interval at the given level (e.g. 0.95), derived from the
// binomial order-statistic bounds — the nonparametric CI recommended by
// Hoefler & Belli and used for all timings in the evaluation.
func MedianCI(xs []float64, level float64) CI {
	n := len(xs)
	ci := CI{Point: Median(xs), Level: level}
	if n == 0 {
		ci.Lo, ci.Hi = math.NaN(), math.NaN()
		return ci
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n < 6 {
		// Too few samples for a meaningful interval: report the range.
		ci.Lo, ci.Hi = s[0], s[n-1]
		return ci
	}
	// Normal approximation to Binomial(n, 1/2) order-statistic ranks.
	alpha := 1 - level
	z := NormalQuantile(1 - alpha/2)
	d := z * math.Sqrt(float64(n)) / 2
	lo := int(math.Floor(float64(n)/2 - d))
	hi := int(math.Ceil(float64(n)/2+d)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi < lo {
		hi = lo
	}
	ci.Lo, ci.Hi = s[lo], s[hi]
	return ci
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation (relative error
// below 1.15e-9 over (0,1)).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// RelativeError returns |est-exact|/|exact|; if exact is 0 it returns 0
// when est is also 0 and +Inf otherwise. This is the accuracy measure
// |cnt_PG - cnt_EX|/cnt_EX of §VIII-A.
func RelativeError(est, exact float64) float64 {
	if exact == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-exact) / math.Abs(exact)
}
