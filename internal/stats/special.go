package stats

import "math"

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the Lentz continued-fraction expansion, as required by the KMV
// concentration bounds (Prop. A.7–A.9 in the appendix). Accuracy is
// ~1e-12 for moderate a, b.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	// Use the symmetry relation to keep the continued fraction convergent.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function
// (Numerical Recipes form) with the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// LogBinomial returns log C(n, k), using log-gamma for large arguments.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// BinomialPMF returns P(X = k) for X ~ Bin(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(LogBinomial(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// BinomialMoments returns the mean np and variance np(1-p) of Bin(n, p);
// the moments behind the k-Hash estimator (|M_X∩M_Y| ~ Bin(k, J), §IV-C).
func BinomialMoments(n int, p float64) (mean, variance float64) {
	nf := float64(n)
	return nf * p, nf * p * (1 - p)
}

// HypergeometricPMF returns P(X = k) for X ~ Hyper(N, K, n): drawing n
// items from a population of N containing K successes.
func HypergeometricPMF(N, K, n, k int) float64 {
	if k < 0 || k > n || k > K || n-k > N-K {
		return 0
	}
	return math.Exp(LogBinomial(K, k) + LogBinomial(N-K, n-k) - LogBinomial(N, n))
}

// HypergeometricMoments returns the mean and variance of Hyper(N, K, n);
// the moments behind the 1-Hash estimator
// (|M¹_X∩M¹_Y| ~ Hyper(|X∪Y|, |X∩Y|, k), §IV-D).
func HypergeometricMoments(N, K, n int) (mean, variance float64) {
	if N <= 0 {
		return 0, 0
	}
	Nf, Kf, nf := float64(N), float64(K), float64(n)
	mean = nf * Kf / Nf
	if N <= 1 {
		return mean, 0
	}
	variance = nf * (Kf / Nf) * (1 - Kf/Nf) * (Nf - nf) / (Nf - 1)
	return mean, variance
}

// KHashExpectation evaluates Eq. (23): the exact expectation of the
// k-Hash intersection estimator (|X|+|Y|)·Σ_s Bin(k,J;s)·s/(k+s).
func KHashExpectation(sizeX, sizeY, k int, jaccard float64) float64 {
	var e float64
	for s := 0; s <= k; s++ {
		e += BinomialPMF(k, s, jaccard) * float64(s) / float64(k+s)
	}
	return float64(sizeX+sizeY) * e
}

// OneHashExpectation evaluates Eq. (24): the exact expectation of the
// 1-Hash intersection estimator under the hypergeometric law.
func OneHashExpectation(sizeX, sizeY, inter, k int) float64 {
	union := sizeX + sizeY - inter
	if union <= 0 {
		return 0
	}
	if k > union {
		k = union
	}
	var e float64
	for s := 0; s <= k; s++ {
		e += HypergeometricPMF(union, inter, k, s) * float64(s) / float64(k+s)
	}
	return float64(sizeX+sizeY) * e
}
