package mining

import (
	"context"
	"math/rand/v2"
	"sort"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/par"
)

// LinkPredResult is the outcome of the Listing 5 evaluation harness.
type LinkPredResult struct {
	Removed    int     // |E_rndm|, links hidden from the predictor
	Predicted  int     // |E_predict|, top-scored candidate pairs
	Hits       int     // |E_predict ∩ E_rndm|
	Efficiency float64 // hits / removed — the normalized effectiveness ef
}

// scoredPair is a candidate non-edge with its similarity score.
type scoredPair struct {
	u, v  uint32
	score float64
}

// EvaluateLinkPrediction implements Listing 5: remove a random fraction
// of edges (E_rndm), score candidate pairs on the sparsified graph with
// the similarity measure, predict the |E_rndm| highest-scored pairs, and
// report how many removed links were recovered.
//
// The candidate set (V×V)\E_sparse of the listing is quadratic; as is
// standard for link prediction with local similarity measures (and
// documented in DESIGN.md), candidates are restricted to 2-hop pairs —
// every pair with a positive common-neighbor score is 2-hop, so no
// recoverable candidate is lost for the Listing 3 measures.
//
// If pgCfg is nil the scorer is exact; otherwise a ProbGraph is built on
// the sparsified graph and the PG similarity is used.
func EvaluateLinkPrediction(g *graph.Graph, m Measure, removeFrac float64, seed uint64, pgCfg *core.Config, workers int) (*LinkPredResult, error) {
	return EvaluateLinkPredictionCtx(context.Background(), g, m, removeFrac, seed, pgCfg, workers)
}

// EvaluateLinkPredictionCtx is EvaluateLinkPrediction with cooperative
// cancellation: the context is observed between the harness's phases and
// at the chunk boundaries of the parallel candidate-scoring loop.
func EvaluateLinkPredictionCtx(ctx context.Context, g *graph.Graph, m Measure, removeFrac float64, seed uint64, pgCfg *core.Config, workers int) (*LinkPredResult, error) {
	edges := g.EdgeList()
	r := rand.New(rand.NewPCG(seed, 0xdecafbad))
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	nRemove := int(removeFrac * float64(len(edges)))
	if nRemove < 1 {
		nRemove = 1
	}
	if nRemove > len(edges) {
		nRemove = len(edges)
	}
	removed := edges[:nRemove]
	sparseEdges := edges[nRemove:]
	sparse, err := graph.FromEdges(g.NumVertices(), sparseEdges)
	if err != nil {
		return nil, err
	}

	removedSet := make(map[uint64]struct{}, len(removed))
	for _, e := range removed {
		removedSet[pairKey(e.U, e.V)] = struct{}{}
	}

	var score scoreFunc
	if pgCfg != nil {
		pg, err := core.Build(sparse, *pgCfg)
		if err != nil {
			return nil, err
		}
		score = func(u, v uint32) float64 { return PGSimilarity(sparse, pg, u, v, m) }
	} else {
		score = func(u, v uint32) float64 { return ExactSimilarity(sparse, u, v, m) }
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	candidates := twoHopCandidates(sparse)
	scored := make([]scoredPair, len(candidates))
	if err := par.ForCtx(ctx, len(candidates), workers, func(i int) {
		c := candidates[i]
		scored[i] = scoredPair{c.U, c.V, score(c.U, c.V)}
	}); err != nil {
		return nil, err
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].score != scored[j].score {
			return scored[i].score > scored[j].score
		}
		// Deterministic tie-break.
		return pairKey(scored[i].u, scored[i].v) < pairKey(scored[j].u, scored[j].v)
	})
	if len(scored) > nRemove {
		scored = scored[:nRemove]
	}
	hits := 0
	for _, s := range scored {
		if _, ok := removedSet[pairKey(s.u, s.v)]; ok {
			hits++
		}
	}
	return &LinkPredResult{
		Removed:    nRemove,
		Predicted:  len(scored),
		Hits:       hits,
		Efficiency: float64(hits) / float64(nRemove),
	}, nil
}

// twoHopCandidates lists non-adjacent pairs connected by at least one
// 2-hop path, deduplicated.
func twoHopCandidates(g *graph.Graph) []graph.Edge {
	seen := make(map[uint64]struct{})
	var out []graph.Edge
	for w := 0; w < g.NumVertices(); w++ {
		nw := g.Neighbors(uint32(w))
		for i := 0; i < len(nw); i++ {
			for j := i + 1; j < len(nw); j++ {
				u, v := nw[i], nw[j]
				if g.HasEdge(u, v) {
					continue
				}
				key := pairKey(u, v)
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, graph.Edge{U: u, V: v})
			}
		}
	}
	return out
}

func pairKey(u, v uint32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}
