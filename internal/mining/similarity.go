package mining

import (
	"math"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/sketch"
)

// Measure identifies a vertex-similarity scheme from Listing 3.
type Measure int

const (
	// Jaccard is S_J = |A∩B| / |A∪B|.
	Jaccard Measure = iota
	// Overlap is S_O = |A∩B| / min(|A|, |B|).
	Overlap
	// CommonNeighbors is S_C = |N_v ∩ N_u|.
	CommonNeighbors
	// TotalNeighbors is S_T = |N_v ∪ N_u|.
	TotalNeighbors
	// AdamicAdar is S_A = Σ_{w∈N_v∩N_u} 1/log|N_w|.
	AdamicAdar
	// ResourceAllocation is S_R = Σ_{w∈N_v∩N_u} 1/|N_w|.
	ResourceAllocation
)

// String returns the measure name as used in the paper's figures.
func (m Measure) String() string {
	switch m {
	case Jaccard:
		return "Jaccard"
	case Overlap:
		return "Overlap"
	case CommonNeighbors:
		return "CommonNeighbors"
	case TotalNeighbors:
		return "TotalNeighbors"
	case AdamicAdar:
		return "AdamicAdar"
	case ResourceAllocation:
		return "ResourceAllocation"
	}
	return "Measure(?)"
}

// weight returns the per-witness weight of the weighted measures.
func weight(m Measure, dw int) float64 {
	switch m {
	case AdamicAdar:
		if dw <= 1 {
			return 0 // 1/log(1) diverges; degree-1 witnesses carry no signal
		}
		return 1 / math.Log(float64(dw))
	case ResourceAllocation:
		if dw == 0 {
			return 0
		}
		return 1 / float64(dw)
	}
	return 1
}

// simFromInter converts an intersection cardinality into the similarity
// score for the counting-based measures.
func simFromInter(m Measure, inter float64, du, dv int) float64 {
	switch m {
	case Jaccard:
		union := float64(du+dv) - inter
		if union <= 0 {
			return 0
		}
		return inter / union
	case Overlap:
		mn := du
		if dv < mn {
			mn = dv
		}
		if mn == 0 {
			return 0
		}
		return inter / float64(mn)
	case CommonNeighbors:
		return inter
	case TotalNeighbors:
		return float64(du+dv) - inter
	}
	return inter
}

// Counting reports whether m is computable from the intersection
// cardinality |N_u ∩ N_v| alone; the weighted measures (Adamic–Adar,
// Resource Allocation) also need the witness identities.
func (m Measure) Counting() bool {
	switch m {
	case Jaccard, Overlap, CommonNeighbors, TotalNeighbors:
		return true
	}
	return false
}

// SimFromInter converts an intersection cardinality (exact or estimated)
// into the score of a counting-based measure. Exported for the
// distributed kernels, which compute the cardinality from rows shipped
// over the simulated network.
func SimFromInter(m Measure, inter float64, du, dv int) float64 {
	return simFromInter(m, inter, du, dv)
}

// ExactSimilarity evaluates a Listing 3 measure exactly on the CSR graph.
func ExactSimilarity(g *graph.Graph, u, v uint32, m Measure) float64 {
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	switch m {
	case AdamicAdar, ResourceAllocation:
		var s float64
		common := graph.Intersect(nu, nv, nil)
		for _, w := range common {
			s += weight(m, g.Degree(w))
		}
		return s
	default:
		return simFromInter(m, float64(graph.IntersectCount(nu, nv)), len(nu), len(nv))
	}
}

// PGSimilarity evaluates a Listing 3 measure with the sketch estimator in
// place of |N_u ∩ N_v|. The weighted measures (Adamic–Adar, Resource
// Allocation) need the intersection's elements, not just its size:
//   - BF answers membership queries, so the smaller exact neighborhood is
//     streamed against the other side's filter (O(d·b), still avoiding
//     the merge of two large lists);
//   - 1-Hash sketches built with StoreElems expose a uniform sample of
//     the intersection; the sampled weight sum is rescaled by
//     |̂X∩Y| / |sample|;
//   - other representations fall back to the unweighted estimate times
//     the graph's average witness weight contribution, documented as a
//     coarse heuristic (the paper only evaluates the counting measures).
func PGSimilarity(g *graph.Graph, pg *core.PG, u, v uint32, m Measure) float64 {
	du, dv := pg.SetSize(u), pg.SetSize(v)
	switch m {
	case AdamicAdar, ResourceAllocation:
		return pgWeighted(g, pg, u, v, m)
	default:
		return simFromInter(m, pg.IntCard(u, v), du, dv)
	}
}

func pgWeighted(g *graph.Graph, pg *core.PG, u, v uint32, m Measure) float64 {
	switch pg.Cfg.Kind {
	case core.BF:
		// Stream the smaller exact neighborhood against the larger side's
		// Bloom filter (set membership is the other PG primitive, §X).
		if g.Degree(u) > g.Degree(v) {
			u, v = v, u
		}
		var s float64
		for _, w := range g.Neighbors(u) {
			if pg.Contains(v, w) {
				s += weight(m, g.Degree(w))
			}
		}
		return s
	case core.OneHash:
		a, b := pg.BottomKRow(u), pg.BottomKRow(v)
		if a.Elems != nil && b.Elems != nil {
			common := sketch.CommonElems(a, b, nil)
			if len(common) == 0 {
				return 0
			}
			var s float64
			for _, w := range common {
				s += weight(m, g.Degree(w))
			}
			return s * pg.IntCard(u, v) / float64(len(common))
		}
	}
	// Coarse fallback: unweighted intersection estimate scaled by the
	// average weight of u's neighbors' neighbors.
	inter := pg.IntCard(u, v)
	if inter == 0 {
		return 0
	}
	var wsum float64
	var cnt int
	for _, w := range g.Neighbors(u) {
		wsum += weight(m, g.Degree(w))
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return inter * wsum / float64(cnt)
}
