package mining

import (
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// BenchmarkPGTC tracks the batched BF triangle kernel in isolation —
// the pgbench "intersect"/"session" experiments are the gated numbers;
// this is the quick inner-loop view for profiling.
func BenchmarkPGTC(b *testing.B) {
	g := graph.Kronecker(10, 16, 1)
	pg, err := core.Build(g, core.Config{Kind: core.BF, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PGTC(g, pg, 4)
	}
}
