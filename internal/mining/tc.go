// Package mining implements the graph-mining algorithms of §III both in
// their exact tuned form (the CSR baselines of the evaluation) and in
// their ProbGraph-enhanced form, where every |X∩Y| marked blue in
// Listings 1–5 is replaced by a sketch estimator. All algorithms are
// parallel over the loops the listings mark "[in par]".
//
// Every parallel kernel has a context-aware variant (the *Ctx form) that
// observes cancellation at the chunk boundaries of internal/par and
// returns ctx.Err(); the plain form is a thin wrapper over a background
// context, preserved for callers that cannot be cancelled.
package mining

import (
	"context"
	"math"
	"sort"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/par"
)

// batchBufs is the per-chunk scratch of the batched IntCard kernels:
// one popcount buffer and one estimate buffer, grown to the largest
// candidate window the chunk sees. Summation stays in candidate order,
// so batched kernels remain bit-identical to the scalar loops.
type batchBufs struct {
	cnt []int32
	out []float64
}

func (b *batchBufs) size(n int) ([]int32, []float64) {
	if n > cap(b.cnt) {
		b.cnt = make([]int32, n)
		b.out = make([]float64, n)
	}
	return b.cnt[:n], b.out[:n]
}

// ExactTC counts triangles with the node-iterator algorithm of Listing 1:
// vertices are ranked by degree, every edge is oriented toward the
// higher-ranked endpoint, and tc = Σ_v Σ_{u∈N+_v} |N+_v ∩ N+_u| with the
// adaptive merge/galloping intersection. Work O(n·d²), depth O(log d).
func ExactTC(o *graph.Oriented, workers int) int64 {
	tc, _ := ExactTCCtx(context.Background(), o, workers)
	return tc
}

// ExactTCCtx is ExactTC with cooperative cancellation.
func ExactTCCtx(ctx context.Context, o *graph.Oriented, workers int) (int64, error) {
	n := o.NumVertices()
	return par.ReduceInt64Ctx(ctx, n, workers, func(lo, hi int) int64 {
		var tc int64
		for v := lo; v < hi; v++ {
			nv := o.NPlus(uint32(v))
			for _, u := range nv {
				tc += int64(graph.IntersectCount(nv, o.NPlus(u)))
			}
		}
		return tc
	})
}

// PGTC estimates the triangle count with the §VII estimator
// T̂C = (1/3)·Σ_{(u,v)∈E} |N_u ∩ N_v|̂ over full-neighborhood sketches.
// The estimator inherits the statistical properties of the underlying
// |X∩Y| estimator (MLE and exponential concentration for k-Hash).
func PGTC(g *graph.Graph, pg *core.PG, workers int) float64 {
	tc, _ := PGTCCtx(context.Background(), g, pg, workers)
	return tc
}

// PGTCCtx is PGTC with cooperative cancellation.
func PGTCCtx(ctx context.Context, g *graph.Graph, pg *core.PG, workers int) (float64, error) {
	n := g.NumVertices()
	sum, err := par.ReduceFloat64Ctx(ctx, n, workers, func(lo, hi int) float64 {
		var bufs batchBufs
		var s float64
		for u := lo; u < hi; u++ {
			nv := g.Neighbors(uint32(u))
			// Each undirected edge once: neighbor lists are sorted
			// ascending, so the v > u half is the suffix.
			k := sort.Search(len(nv), func(i int) bool { return nv[i] > uint32(u) })
			cands := nv[k:]
			if len(cands) == 0 {
				continue
			}
			// Flat accumulation into s, matching the original scalar
			// loop's addition order bit-for-bit (the fused Sum form
			// would regroup per row).
			cnt, out := bufs.size(len(cands))
			pg.IntCardMany(uint32(u), cands, cnt, out)
			for _, est := range out {
				s += est
			}
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return sum / 3, nil
}

// RoundCount rounds a non-negative estimate to the nearest integer count.
func RoundCount(est float64) int64 {
	if est < 0 {
		return 0
	}
	return int64(math.Round(est))
}

// LocalClusteringCoefficient returns the average local clustering
// coefficient computed exactly: for each vertex, triangles through it
// over d_v(d_v-1)/2. One of the §III-A applications (network cohesion).
func LocalClusteringCoefficient(g *graph.Graph, workers int) float64 {
	cc, _ := LocalClusteringCoefficientCtx(context.Background(), g, workers)
	return cc
}

// LocalClusteringCoefficientCtx is LocalClusteringCoefficient with
// cooperative cancellation.
func LocalClusteringCoefficientCtx(ctx context.Context, g *graph.Graph, workers int) (float64, error) {
	n := g.NumVertices()
	if n == 0 {
		return 0, nil
	}
	sum, err := par.ReduceFloat64Ctx(ctx, n, workers, func(lo, hi int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			nv := g.Neighbors(uint32(v))
			d := len(nv)
			if d < 2 {
				continue
			}
			var tri int64
			for _, u := range nv {
				tri += int64(graph.IntersectCount(nv, g.Neighbors(u)))
			}
			// Each triangle at v is counted twice (once per other corner).
			s += float64(tri) / float64(d*(d-1))
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return sum / float64(n), nil
}

// PGLocalClusteringCoefficient is the PG-enhanced variant: the per-vertex
// triangle count uses sketch intersections over the vertex's neighbors.
func PGLocalClusteringCoefficient(g *graph.Graph, pg *core.PG, workers int) float64 {
	cc, _ := PGLocalClusteringCoefficientCtx(context.Background(), g, pg, workers)
	return cc
}

// PGLocalClusteringCoefficientCtx is PGLocalClusteringCoefficient with
// cooperative cancellation.
func PGLocalClusteringCoefficientCtx(ctx context.Context, g *graph.Graph, pg *core.PG, workers int) (float64, error) {
	n := g.NumVertices()
	if n == 0 {
		return 0, nil
	}
	sum, err := par.ReduceFloat64Ctx(ctx, n, workers, func(lo, hi int) float64 {
		var bufs batchBufs
		var s float64
		for v := lo; v < hi; v++ {
			nv := g.Neighbors(uint32(v))
			d := len(nv)
			if d < 2 {
				continue
			}
			cnt, _ := bufs.size(d)
			s += pg.IntCardSum(uint32(v), nv, cnt) / float64(d*(d-1))
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return sum / float64(n), nil
}

// Cohesion computes the exact network cohesion TC/C(n,3) of §III-A for
// the whole graph.
func Cohesion(g *graph.Graph, o *graph.Oriented, workers int) float64 {
	n := float64(g.NumVertices())
	denom := n * (n - 1) * (n - 2) / 6
	if denom == 0 {
		return 0
	}
	return float64(ExactTC(o, workers)) / denom
}

// LocalTC computes the exact per-vertex triangle counts: tc[v] is the
// number of triangles through v. Per-vertex triangle participation is
// the §III-A signal for spam detection and community discovery (spam
// and legitimate pages differ in the triangle counts they belong to).
func LocalTC(g *graph.Graph, workers int) []int64 {
	counts, _ := LocalTCCtx(context.Background(), g, workers)
	return counts
}

// LocalTCCtx is LocalTC with cooperative cancellation; on cancellation
// the partially-filled slice is discarded and ctx.Err() returned.
func LocalTCCtx(ctx context.Context, g *graph.Graph, workers int) ([]int64, error) {
	n := g.NumVertices()
	counts := make([]int64, n)
	err := par.ForCtx(ctx, n, workers, func(v int) {
		nv := g.Neighbors(uint32(v))
		var c int64
		for _, u := range nv {
			c += int64(graph.IntersectCount(nv, g.Neighbors(u)))
		}
		counts[v] = c / 2 // each triangle at v seen via both other corners
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// PGLocalTC estimates the per-vertex triangle counts through sketch
// intersections: work O(d_v · B/W) per vertex instead of O(d_v · d).
func PGLocalTC(g *graph.Graph, pg *core.PG, workers int) []float64 {
	counts, _ := PGLocalTCCtx(context.Background(), g, pg, workers)
	return counts
}

// PGLocalTCCtx is PGLocalTC with cooperative cancellation.
func PGLocalTCCtx(ctx context.Context, g *graph.Graph, pg *core.PG, workers int) ([]float64, error) {
	n := g.NumVertices()
	counts := make([]float64, n)
	err := par.ForChunkedCtx(ctx, n, workers, 0, func(lo, hi int) {
		var bufs batchBufs
		for v := lo; v < hi; v++ {
			nv := g.Neighbors(uint32(v))
			if len(nv) == 0 {
				counts[v] = 0
				continue
			}
			cnt, _ := bufs.size(len(nv))
			counts[v] = pg.IntCardSum(uint32(v), nv, cnt) / 2
		}
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}
