package mining

import (
	"math"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/stats"
)

func TestPGKCliqueMatchesPG4Clique(t *testing.T) {
	// The generic BF recursion at k=4 must agree with the specialized
	// PG4Clique BF path (same estimator composition).
	g := graph.Kronecker(8, 12, 7)
	o := g.Orient(0)
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.33, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	generic, err := PGKClique(o, pg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	specialized := PG4Clique(o, pg, 0)
	if math.Abs(generic-specialized) > 1e-6*math.Max(1, specialized) {
		t.Fatalf("k=4 generic %v != specialized %v", generic, specialized)
	}
}

func TestPGKCliqueMatchesPGTCAtK3(t *testing.T) {
	// At k=3 the recursion degenerates to the oriented node iterator
	// with estimated intersections.
	g := graph.Kronecker(8, 10, 3)
	o := g.Orient(0)
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.33, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PGKClique(o, pg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for v := 0; v < o.NumVertices(); v++ {
		for _, u := range o.NPlus(uint32(v)) {
			want += pg.IntCard(uint32(v), u)
		}
	}
	if math.Abs(got-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("k=3: %v vs %v", got, want)
	}
}

func TestPGKCliqueAccuracyOnCompleteGraph(t *testing.T) {
	g := graph.Complete(24)
	o := g.Orient(0)
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.33, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k <= 5; k++ {
		exact := float64(ExactKClique(o, k, 0))
		got, err := PGKClique(o, pg, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e := stats.RelativeError(got, exact); e > 0.5 {
			t.Errorf("k=%d: est %v vs exact %v (rel err %.3f)", k, got, exact, e)
		}
	}
}

func TestPGKCliqueErrors(t *testing.T) {
	g := graph.Complete(8)
	o := g.Orient(0)
	bf, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PGKClique(o, bf, 2, 0); err == nil {
		t.Fatal("k < 3 must fail")
	}
	mh, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.OneHash, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PGKClique(o, mh, 4, 0); err == nil {
		t.Fatal("non-BF representation must fail")
	}
}

func TestPGKCliqueTriangleFree(t *testing.T) {
	g := graph.Grid(6, 6)
	o := g.Orient(0)
	pg, err := core.BuildOriented(o, g.SizeBits(), core.Config{Kind: core.BF, Budget: 0.33, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PGKClique(o, pg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle-free: candidate lists are empty immediately; only BF
	// noise at depth 2 could leak, but there are no 2-level prefixes.
	if got > float64(g.NumEdges()) {
		t.Fatalf("triangle-free 4-clique estimate too high: %v", got)
	}
}
