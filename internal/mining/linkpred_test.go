package mining

import (
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

func TestLinkPredictionRecoversCliqueEdges(t *testing.T) {
	// In a dense clique-like graph, removed edges have many common
	// neighbors and should be ranked at the top.
	g := graph.Complete(20)
	res, err := EvaluateLinkPrediction(g, CommonNeighbors, 0.1, 1, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed < 1 || res.Predicted > res.Removed {
		t.Fatalf("bad shape: %+v", res)
	}
	// Removed clique edges are the *only* 2-hop non-edges, so recovery
	// must be perfect.
	if res.Efficiency != 1 {
		t.Fatalf("efficiency on K20 = %v, want 1", res.Efficiency)
	}
}

func TestLinkPredictionPGVariant(t *testing.T) {
	g := graph.PlantedPartition(80, 4, 0.6, 0.02, 3)
	cfg := core.Config{Kind: core.BF, Budget: 0.33, Seed: 5}
	res, err := EvaluateLinkPrediction(g, CommonNeighbors, 0.1, 7, &cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EvaluateLinkPrediction(g, CommonNeighbors, 0.1, 7, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency < 0 || res.Efficiency > 1 {
		t.Fatalf("efficiency out of range: %v", res.Efficiency)
	}
	// PG should be in the neighborhood of the exact predictor on a graph
	// with strong community signal.
	if exact.Efficiency > 0.2 && res.Efficiency < exact.Efficiency/4 {
		t.Fatalf("PG efficiency %v far below exact %v", res.Efficiency, exact.Efficiency)
	}
}

func TestLinkPredictionDeterministicSeed(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, 9)
	a, err := EvaluateLinkPrediction(g, Jaccard, 0.15, 42, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateLinkPrediction(g, Jaccard, 0.15, 42, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hits != b.Hits || a.Removed != b.Removed {
		t.Fatal("same seed must reproduce the experiment")
	}
}

func TestLinkPredictionEdgeCases(t *testing.T) {
	// Tiny graph: removal fraction clamps to at least one edge.
	g := graph.Path(3)
	res, err := EvaluateLinkPrediction(g, CommonNeighbors, 0.0001, 1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 {
		t.Fatalf("removed = %d, want 1", res.Removed)
	}
	// Full removal leaves nothing to score against: efficiency 0.
	res, err = EvaluateLinkPrediction(g, CommonNeighbors, 1.0, 1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency != 0 {
		t.Fatalf("full removal efficiency = %v", res.Efficiency)
	}
}

func TestTwoHopCandidates(t *testing.T) {
	// Path 0-1-2: the single 2-hop pair is (0,2).
	g := graph.Path(3)
	cands := twoHopCandidates(g)
	if len(cands) != 1 || cands[0].U != 0 || cands[0].V != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	// Complete graph: no non-adjacent pairs at all.
	if got := twoHopCandidates(graph.Complete(5)); len(got) != 0 {
		t.Fatalf("K5 candidates = %v", got)
	}
}
