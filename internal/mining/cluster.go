package mining

import (
	"context"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/par"
)

// Clustering is the output of Jarvis–Patrick clustering (Listing 4): the
// kept edge set C ⊆ E and the connected-component structure it induces,
// which is how the evaluation counts clusters (Fig. 7).
type Clustering struct {
	Kept        []graph.Edge // edges whose similarity exceeded τ
	NumClusters int          // connected components of (V, Kept), incl. singletons
	Labels      []int32      // component label per vertex
}

// scoreFunc scores an edge; exact and PG variants plug in here.
type scoreFunc func(u, v uint32) float64

// clusterWith runs Listing 4 with the given edge scorer: every edge is
// scored in parallel, edges above the threshold survive, and the kept
// graph's components are extracted with union-find.
func clusterWith(ctx context.Context, g *graph.Graph, tau float64, workers int, score scoreFunc) (*Clustering, error) {
	edges := g.EdgeList()
	keep := make([]bool, len(edges))
	err := par.ForCtx(ctx, len(edges), workers, func(i int) {
		keep[i] = score(edges[i].U, edges[i].V) > tau
	})
	if err != nil {
		return nil, err
	}
	var kept []graph.Edge
	for i, k := range keep {
		if k {
			kept = append(kept, edges[i])
		}
	}
	labels, num := components(g.NumVertices(), kept)
	return &Clustering{Kept: kept, NumClusters: num, Labels: labels}, nil
}

// JarvisPatrickExact clusters with exact similarities (the CSR baseline).
func JarvisPatrickExact(g *graph.Graph, m Measure, tau float64, workers int) *Clustering {
	c, _ := JarvisPatrickExactCtx(context.Background(), g, m, tau, workers)
	return c
}

// JarvisPatrickExactCtx is JarvisPatrickExact with cooperative
// cancellation of the edge-scoring loop.
func JarvisPatrickExactCtx(ctx context.Context, g *graph.Graph, m Measure, tau float64, workers int) (*Clustering, error) {
	return clusterWith(ctx, g, tau, workers, func(u, v uint32) float64 {
		return ExactSimilarity(g, u, v, m)
	})
}

// JarvisPatrickPG clusters with the PG similarity estimator; pg must hold
// full-neighborhood sketches.
func JarvisPatrickPG(g *graph.Graph, pg *core.PG, m Measure, tau float64, workers int) *Clustering {
	c, _ := JarvisPatrickPGCtx(context.Background(), g, pg, m, tau, workers)
	return c
}

// JarvisPatrickPGCtx is JarvisPatrickPG with cooperative cancellation of
// the edge-scoring loop.
func JarvisPatrickPGCtx(ctx context.Context, g *graph.Graph, pg *core.PG, m Measure, tau float64, workers int) (*Clustering, error) {
	return clusterWith(ctx, g, tau, workers, func(u, v uint32) float64 {
		return PGSimilarity(g, pg, u, v, m)
	})
}

// components runs path-halving union-find over the kept edges and
// returns per-vertex labels plus the component count.
func components(n int, edges []graph.Edge) ([]int32, int) {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(int32(e.U)), find(int32(e.V))
		if ru != rv {
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	labels := make([]int32, n)
	num := 0
	seen := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		r := find(int32(v))
		lbl, ok := seen[r]
		if !ok {
			lbl = int32(num)
			seen[r] = lbl
			num++
		}
		labels[v] = lbl
	}
	return labels, num
}
