package mining

import (
	"math"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/stats"
)

func TestExactSimilarityClosedForms(t *testing.T) {
	// K4: adjacent u,v share the other 2 vertices.
	g := graph.Complete(4)
	if got := ExactSimilarity(g, 0, 1, CommonNeighbors); got != 2 {
		t.Fatalf("CN = %v", got)
	}
	// |N0 ∪ N1| = 3+3-2 = 4.
	if got := ExactSimilarity(g, 0, 1, TotalNeighbors); got != 4 {
		t.Fatalf("TN = %v", got)
	}
	if got := ExactSimilarity(g, 0, 1, Jaccard); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Jaccard = %v", got)
	}
	if got := ExactSimilarity(g, 0, 1, Overlap); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Overlap = %v", got)
	}
	// Witnesses 2, 3 both have degree 3: AA = 2/ln 3, RA = 2/3.
	if got := ExactSimilarity(g, 0, 1, AdamicAdar); math.Abs(got-2/math.Log(3)) > 1e-12 {
		t.Fatalf("AA = %v", got)
	}
	if got := ExactSimilarity(g, 0, 1, ResourceAllocation); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("RA = %v", got)
	}
}

func TestSimilarityDisjointNeighborhoods(t *testing.T) {
	g := graph.Path(5) // N(0)={1}, N(4)={3}: disjoint
	for _, m := range []Measure{Jaccard, Overlap, CommonNeighbors, AdamicAdar, ResourceAllocation} {
		if got := ExactSimilarity(g, 0, 4, m); got != 0 {
			t.Errorf("%v on disjoint = %v", m, got)
		}
	}
	if got := ExactSimilarity(g, 0, 4, TotalNeighbors); got != 2 {
		t.Fatalf("TN disjoint = %v", got)
	}
}

func TestAdamicAdarDegreeOneWitness(t *testing.T) {
	// Path 0-1-2: witness 1 has degree 2 -> AA = 1/ln2. Star witnesses
	// with degree 1 contribute 0 (guarded divergence).
	p := graph.Path(3)
	if got := ExactSimilarity(p, 0, 2, AdamicAdar); math.Abs(got-1/math.Log(2)) > 1e-12 {
		t.Fatalf("AA path = %v", got)
	}
}

func TestPGSimilarityAllKindsReasonable(t *testing.T) {
	g := graph.Complete(30)
	for _, kind := range []core.Kind{core.BF, core.KHash, core.OneHash, core.KMV} {
		pg, err := core.Build(g, core.Config{Kind: kind, Budget: 0.33, Seed: 11, StoreElems: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Measure{Jaccard, Overlap, CommonNeighbors, TotalNeighbors} {
			exact := ExactSimilarity(g, 0, 1, m)
			got := PGSimilarity(g, pg, 0, 1, m)
			if exact == 0 {
				continue
			}
			if math.Abs(got-exact)/exact > 0.5 {
				t.Errorf("%v/%v: PG = %v, exact = %v", kind, m, got, exact)
			}
		}
	}
}

func TestPGWeightedSimilarity(t *testing.T) {
	g := graph.Complete(30)
	exactAA := ExactSimilarity(g, 0, 1, AdamicAdar)
	// BF path: membership streaming.
	bf, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.33, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := PGSimilarity(g, bf, 0, 1, AdamicAdar); math.Abs(got-exactAA)/exactAA > 0.3 {
		t.Errorf("BF AA = %v, exact %v", got, exactAA)
	}
	// 1-Hash with elements: sample rescaling.
	oh, err := core.Build(g, core.Config{Kind: core.OneHash, Budget: 0.33, Seed: 13, StoreElems: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := PGSimilarity(g, oh, 0, 1, AdamicAdar); math.Abs(got-exactAA)/exactAA > 0.5 {
		t.Errorf("1H AA = %v, exact %v", got, exactAA)
	}
	// KMV: coarse fallback must still be finite and nonnegative.
	kmv, err := core.Build(g, core.Config{Kind: core.KMV, Budget: 0.33, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := PGSimilarity(g, kmv, 0, 1, ResourceAllocation); got < 0 || math.IsNaN(got) {
		t.Errorf("KMV RA fallback = %v", got)
	}
}

func TestJarvisPatrickTwoCliques(t *testing.T) {
	// Two K5s joined by a single bridge edge: with CN threshold τ=1 the
	// bridge (0 common neighbors) is dropped and both cliques survive.
	var edges []graph.Edge
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
			edges = append(edges, graph.Edge{U: uint32(u + 5), V: uint32(v + 5)})
		}
	}
	edges = append(edges, graph.Edge{U: 4, V: 5}) // bridge
	g, err := graph.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	c := JarvisPatrickExact(g, CommonNeighbors, 1, 2)
	if c.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", c.NumClusters)
	}
	if len(c.Kept) != 20 {
		t.Fatalf("kept %d edges, want 20 (two K5s)", len(c.Kept))
	}
	if c.Labels[0] == c.Labels[9] {
		t.Fatal("the two cliques must get different labels")
	}
	if c.Labels[0] != c.Labels[4] || c.Labels[5] != c.Labels[9] {
		t.Fatal("clique members must share labels")
	}
}

func TestJarvisPatrickThresholdExtremes(t *testing.T) {
	g := graph.Complete(6)
	all := JarvisPatrickExact(g, CommonNeighbors, -1, 2)
	if all.NumClusters != 1 || len(all.Kept) != g.NumEdges() {
		t.Fatal("τ below all scores keeps everything")
	}
	none := JarvisPatrickExact(g, CommonNeighbors, 1e9, 2)
	if none.NumClusters != 6 || len(none.Kept) != 0 {
		t.Fatal("τ above all scores keeps nothing: every vertex is a singleton cluster")
	}
}

func TestJarvisPatrickPGTracksExact(t *testing.T) {
	// Component counts are hypersensitive to single bridge edges, so the
	// robust comparison is at the edge level: the PG keep/drop decision
	// should agree with the exact one on the vast majority of edges.
	g := graph.PlantedPartition(120, 4, 0.5, 0.01, 21)
	tau := 3.0
	exact := JarvisPatrickExact(g, CommonNeighbors, tau, 0)
	pg, err := core.Build(g, core.Config{Kind: core.BF, Budget: 0.33, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	approx := JarvisPatrickPG(g, pg, CommonNeighbors, tau, 0)

	keptExact := make(map[uint64]bool, len(exact.Kept))
	for _, e := range exact.Kept {
		keptExact[pairKey(e.U, e.V)] = true
	}
	keptPG := make(map[uint64]bool, len(approx.Kept))
	for _, e := range approx.Kept {
		keptPG[pairKey(e.U, e.V)] = true
	}
	agree := 0
	g.Edges(func(u, v uint32) {
		if keptExact[pairKey(u, v)] == keptPG[pairKey(u, v)] {
			agree++
		}
	})
	if frac := float64(agree) / float64(g.NumEdges()); frac < 0.85 {
		t.Fatalf("edge-decision agreement %.3f (PG kept %d, exact kept %d)",
			frac, len(approx.Kept), len(exact.Kept))
	}
}

func TestClusteringKeptSubsetOfEdges(t *testing.T) {
	g := graph.Kronecker(8, 8, 31)
	c := JarvisPatrickExact(g, Jaccard, 0.2, 0)
	for _, e := range c.Kept {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("kept edge %v not in graph", e)
		}
	}
}

func TestComponentsIsolatedAndEmpty(t *testing.T) {
	labels, num := components(3, nil)
	if num != 3 || len(labels) != 3 {
		t.Fatal("edgeless components")
	}
	_, num = components(0, nil)
	if num != 0 {
		t.Fatal("empty graph components")
	}
}

// Property: vertices joined by kept edges share a label, and every label
// is in range — on random graphs, thresholds, and measures.
func TestClusterLabelConsistencyProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		g := graph.Kronecker(7, 4+trial%5, uint64(trial))
		m := []Measure{CommonNeighbors, Jaccard, Overlap}[trial%3]
		tau := []float64{0, 0.05, 1, 2}[trial%4]
		c := JarvisPatrickExact(g, m, tau, 0)
		if len(c.Labels) != g.NumVertices() {
			t.Fatal("label array size")
		}
		for _, e := range c.Kept {
			if c.Labels[e.U] != c.Labels[e.V] {
				t.Fatalf("trial %d: kept edge %v crosses clusters", trial, e)
			}
		}
		for _, l := range c.Labels {
			if l < 0 || int(l) >= c.NumClusters {
				t.Fatalf("label %d out of range [0,%d)", l, c.NumClusters)
			}
		}
	}
}

// Statistical check: exact TC on G(n,m) matches the expectation
// C(n,3)·p³ with p = m/C(n,2), averaged over seeds.
func TestExactTCMatchesERExpectation(t *testing.T) {
	const n, m = 300, 4000
	pairs := float64(n) * float64(n-1) / 2
	p := float64(m) / pairs
	expect := pairs * float64(n-2) / 3 * p * p * p
	var sum float64
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		g := graph.ErdosRenyi(n, m, seed)
		sum += float64(ExactTC(g.Orient(0), 0))
	}
	got := sum / trials
	if e := stats.RelativeError(got, expect); e > 0.15 {
		t.Fatalf("mean TC %.0f vs ER expectation %.0f (err %.3f)", got, expect, e)
	}
}
